module vliwmt

go 1.24
