# Development targets. The repo is plain `go build ./...` / `go test
# ./...`; make exists for the composite perf workflows.

# Pipelines must fail when `go test -bench` fails, not report the JSON
# emitter's status — otherwise a panicking benchmark would silently
# write a partial BENCH_simcore.json and keep CI green.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

SIMCORE_BENCHES = BenchmarkTable1$$|BenchmarkSimulator$$|BenchmarkStallHeavy$$|BenchmarkStallHeavyRef$$|BenchmarkMergeSelect$$|BenchmarkMergeSelectRef$$|BenchmarkStoreColdSweep$$|BenchmarkBatchedSweep$$|BenchmarkStoreWarmSweep$$|BenchmarkFabricSweep$$|BenchmarkGeneratedSweepCold$$|BenchmarkGeneratedSweepWarm$$

.PHONY: test lint check-allocs golden golden-check bench-simcore bench-simcore-ci

test:
	go build ./... && go test ./...

# lint is the *static* half of the invariant enforcement story:
#   - go vet: the stock correctness checks
#   - vliwvet: this repo's own analyzers (cmd/vliwvet) — determinism of
#     the simulation packages (detpure, detmap), the zero-alloc contract
#     of //vliw:hotpath functions (hotalloc), and wire/telemetry hygiene
#     (wiretag)
#   - staticcheck: when installed locally (CI always runs it)
# The *dynamic* half is `make check-allocs`: vliwvet proves "no
# allocating construct appears in an annotated function" at the syntax
# level; AllocsPerRun measures what the compiled binary actually does,
# catching anything the analyzer cannot see (escape-analysis changes,
# allocations inside callees). Keep both — each catches regressions the
# other misses, and the static one runs before a single test compiles.
lint:
	go vet ./...
	go run ./cmd/vliwvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it)"; \
	fi

# check-allocs is the allocation guard on the (instrumented) hot path:
# the AllocsPerRun tests pinning the simulator's zero-allocs/cycle
# invariant, the compiled selectors' zero-alloc selection and the
# telemetry hot-path increments. bench-simcore depends on it so the
# committed perf record can never be refreshed from a build whose
# cycle loop has started allocating.
check-allocs:
	go test -run 'ZeroAllocs$$|AllocFree$$' ./internal/sim ./internal/merge ./internal/telemetry

# golden regenerates the committed golden conformance corpus
# (testdata/golden/corpus.json) from the current simulator — the
# "bless" step after an intentional behaviour change. Review the diff
# before committing: every changed metric is a deliberate claim that
# the new numbers are right. TestGoldenCorpus replays the committed
# corpus on every `go test ./...`.
golden:
	go run ./cmd/vliwgolden

# golden-check re-runs the committed corpus and fails on any bit-level
# divergence (the standalone spelling of TestGoldenCorpus).
golden-check:
	go run ./cmd/vliwgolden -check

# bench-simcore runs the simulator-core benchmarks at measurement
# quality and rewrites BENCH_simcore.json, the committed machine-readable
# perf record (ns/op, allocs/op, cycles/s; see DESIGN.md). Run it on a
# quiet machine when a PR touches the hot path, and commit the result so
# the perf trajectory stays diffable.
bench-simcore: check-allocs
	go test -run '^$$' -bench '$(SIMCORE_BENCHES)' -benchmem -benchtime 2s -count 1 . \
		| tee /dev/stderr | go run ./cmd/benchjson > BENCH_simcore.json

# bench-simcore-ci is the cheap CI variant: one iteration per benchmark,
# just enough to prove the harness and the JSON emitter stay healthy.
# CI machines are too noisy for the committed numbers, so the output
# goes to a scratch file, not BENCH_simcore.json.
bench-simcore-ci:
	go test -run '^$$' -bench '$(SIMCORE_BENCHES)' -benchmem -benchtime 1x -count 1 . \
		| go run ./cmd/benchjson > /tmp/bench_simcore_ci.json
	cat /tmp/bench_simcore_ci.json
