package vliwmt

import (
	"time"

	"vliwmt/internal/sweep"
	"vliwmt/internal/telemetry"
)

// MetricsSnapshot is a point-in-time copy of the process-wide
// telemetry registry: every counter, gauge and histogram the library
// maintains (sweep_jobs_*, store_*, sim_*, server_* families; the full
// table is in the README's Observability section). Counters are
// process-lifetime values — embedders and tests assert on deltas
// between two snapshots, not on absolute numbers.
type MetricsSnapshot = telemetry.Snapshot

// MetricsHistogram is one histogram inside a MetricsSnapshot.
type MetricsHistogram = telemetry.HistogramSnapshot

// Metrics snapshots the process-wide telemetry registry. The same
// values are served by vliwserve's GET /metrics in Prometheus text
// format; this is the in-process spelling for embedders and tests:
//
//	before := vliwmt.Metrics()
//	results, _ := runner.Sweep(ctx, grid)
//	after := vliwmt.Metrics()
//	hits := after.Counter("store_hits_total") - before.Counter("store_hits_total")
func Metrics() MetricsSnapshot { return telemetry.Default().Snapshot() }

// SweepSummary is the lifecycle roll-up of one finished sweep: job,
// error and store-hit counts, per-job latency percentiles (p50/p99)
// and throughput. Its String method renders the one-line form
// `vliwsweep -stats` prints; the server attaches the wire form to
// terminal sweep statuses.
type SweepSummary = sweep.Summary

// SummarizeSweep rolls a result slice up into a SweepSummary. wall is
// the sweep's end-to-end wall-clock time (0 leaves throughput unset).
// It works identically on in-process results and results fetched from
// a remote server — cached jobs carry the replayed original elapsed
// times either way.
func SummarizeSweep(results []SweepResult, wall time.Duration) SweepSummary {
	return sweep.Summarize(results, wall)
}
