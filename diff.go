package vliwmt

import (
	"vliwmt/internal/resultstore"
)

// ResultSnapshot is a diffable corpus of deterministic job results,
// sorted by content key: the unit of comparison of the golden
// conformance harness. Snapshots come from three places — a completed
// sweep (SnapshotResults), a result store directory, or a snapshot
// JSON file (both via LoadSnapshot) — and two snapshots of the same
// jobs diff clean exactly when the simulator's output is bit-identical.
type ResultSnapshot = resultstore.Snapshot

// SnapshotEntry is one job inside a ResultSnapshot: its content key,
// label, wire-form job and full simulation result.
type SnapshotEntry = resultstore.Entry

// ResultDiff is the comparison of two ResultSnapshots: how many jobs
// are bit-identical, and every divergence (changed metrics, or jobs
// present on one side only) in key order. See DiffSnapshots.
type ResultDiff = resultstore.Diff

// ResultEntryDiff is one diverging job of a ResultDiff.
type ResultEntryDiff = resultstore.EntryDiff

// MetricDelta is one metric that moved between two snapshots of the
// same job.
type MetricDelta = resultstore.FieldDelta

// JobKey returns the job's canonical content hash — the key the result
// store files it under. Two jobs share a key exactly when the
// determinism contract guarantees identical results: the scheme is
// reduced to its canonical tree (registered names, paper names and
// inlined trees all hash alike), labels are ignored, and machine,
// caches, memory model, budget, seed and the result-schema version are
// all hashed.
func JobKey(j SweepJob) (string, error) { return resultstore.Key(j) }

// SnapshotResults builds a snapshot from a completed sweep. Every job
// must have succeeded: a snapshot vouches for each entry it contains.
func SnapshotResults(results []SweepResult) (ResultSnapshot, error) {
	return resultstore.SnapshotResults(results)
}

// LoadSnapshot reads a snapshot from a result-store directory or a
// snapshot JSON file (as written by WriteSnapshot or cmd/vliwgolden).
func LoadSnapshot(path string) (ResultSnapshot, error) {
	return resultstore.SnapshotFrom(path)
}

// WriteSnapshot writes the snapshot as deterministic JSON — the
// committed-baseline format of testdata/golden.
func WriteSnapshot(path string, s ResultSnapshot) error {
	return resultstore.WriteSnapshot(path, s)
}

// DiffSnapshots compares two snapshots by job content key and reports
// every divergence: per-metric deltas for jobs whose results changed,
// plus jobs present in only one snapshot. A Clean diff is the
// conformance harness's "this commit did not change simulator output".
func DiffSnapshots(old, new ResultSnapshot) ResultDiff {
	return resultstore.DiffSnapshots(old, new)
}
