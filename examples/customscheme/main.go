// Customscheme: design a merge-control tree that is not one of the
// paper's sixteen, register it under a name, and evaluate it against
// the paper's recommendation — the "handle any topology" workflow of
// the first-class Scheme API.
//
// The custom scheme "asym4" merges threads T0..T2 in one serial
// cluster-level (CSMT) node, then folds T3 in at operation level
// (SMT): cheap conflict-free merging for three threads plus one
// slot-filling SMT stage.
package main

import (
	"fmt"
	"log"

	"vliwmt"
)

func main() {
	log.SetFlags(0)

	// Build the tree with the node-level builders. The same scheme
	// could be parsed from its canonical expression:
	//   vliwmt.ParseScheme("S(C(T0,T1,T2),T3)")
	asym, err := vliwmt.NewScheme("asym4",
		vliwmt.OpNode(
			vliwmt.ClusterNode(vliwmt.Thread(0), vliwmt.Thread(1), vliwmt.Thread(2)),
			vliwmt.Thread(3)))
	if err != nil {
		log.Fatal(err)
	}

	// Registering makes "asym4" resolvable anywhere a scheme name is
	// accepted: Config.Scheme, Grid.Schemes, Cost, the CLIs — and
	// Client inlines the tree when submitting to a remote vliwserve.
	if err := vliwmt.RegisterScheme("asym4", asym); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("asym4 = %s\n       (%s)\n\n", asym, asym.Describe())

	cfg := vliwmt.DefaultConfig()
	cfg.InstrLimit = 300_000
	cfg.TimesliceCycles = 10_000

	fmt.Printf("%-6s %-22s %8s %12s %11s\n", "scheme", "structure", "IPC", "transistors", "gate delays")
	for _, scheme := range []string{"2SC3", "3CCC", "asym4"} {
		cfg.Scheme = scheme // "asym4" resolves through the registry
		res, err := vliwmt.RunMix(cfg, "LLHH")
		if err != nil {
			log.Fatal(err)
		}
		c, err := vliwmt.Cost(cfg.Machine, scheme)
		if err != nil {
			log.Fatal(err)
		}
		desc, _ := vliwmt.DescribeScheme(scheme)
		fmt.Printf("%-6s %-22s %8.3f %12d %11d\n", scheme, desc, res.IPC, c.Transistors, c.GateDelays)
	}

	// The typed field runs the identical scheme without the registry:
	// name-based and typed paths are bit-identical by construction.
	cfg.Scheme = ""
	cfg.Merge = asym
	typed, err := vliwmt.RunMix(cfg, "LLHH")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntyped Config.Merge run: IPC %.3f (identical to the name-based run)\n", typed.IPC)
}
