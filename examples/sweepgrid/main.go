// Example sweepgrid drives the public sweep API over the paper's full
// evaluation grid — all sixteen merging schemes on all nine workload
// mixes — on every core, with a live progress callback, then prints the
// per-scheme average IPC in Figure 10 style.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	"vliwmt"
)

func main() {
	log.SetFlags(0)
	grid := vliwmt.Grid{
		// Empty Schemes/Mixes select the paper's sixteen schemes and
		// nine mixes; a modest budget keeps the example interactive.
		InstrLimit: 50_000,
		Seed:       1,
	}
	opts := &vliwmt.SweepOptions{
		Progress: func(done, total int, r vliwmt.SweepResult) {
			fmt.Fprintf(os.Stderr, "\r%3d/%d %-14s", done, total, r.Job.Describe())
		},
	}
	results, err := vliwmt.Sweep(context.Background(), grid, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr)

	// Average each scheme over the nine mixes.
	sum := map[string]float64{}
	n := map[string]int{}
	for _, r := range results {
		ipc, err := r.IPC()
		if err != nil {
			log.Fatal(err)
		}
		sum[r.Job.Scheme] += ipc
		n[r.Job.Scheme]++
	}
	type avg struct {
		scheme string
		ipc    float64
	}
	var avgs []avg
	for s := range sum {
		avgs = append(avgs, avg{s, sum[s] / float64(n[s])})
	}
	sort.Slice(avgs, func(i, j int) bool { return avgs[i].ipc > avgs[j].ipc })
	fmt.Println("scheme   avg IPC over the nine mixes")
	for _, a := range avgs {
		fmt.Printf("%-8s %.3f\n", a.scheme, a.ipc)
	}
}
