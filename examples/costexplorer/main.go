// Costexplorer: sweep every merging scheme across all nine Table 2
// workloads, combine performance with the gate-level cost model, and print
// the Pareto frontier of merge-control designs (the actionable summary of
// the paper's Figures 11 and 12), plus how each control scales with the
// thread count.
package main

import (
	"fmt"
	"log"
	"sort"

	"vliwmt"
)

func main() {
	log.SetFlags(0)
	machine := vliwmt.DefaultMachine()

	type point struct {
		scheme      string
		ipc         float64
		transistors int
		delays      int
	}
	var pts []point
	for _, scheme := range vliwmt.Schemes() {
		sch, err := vliwmt.ParseScheme(scheme)
		if err != nil {
			log.Fatal(err)
		}
		cfg := vliwmt.DefaultConfig()
		cfg.Contexts = sch.Ports()
		cfg.Merge = sch
		cfg.InstrLimit = 120_000
		cfg.TimesliceCycles = 5_000
		sum := 0.0
		for _, mix := range vliwmt.Mixes() {
			res, err := vliwmt.RunMix(cfg, mix.Name)
			if err != nil {
				log.Fatal(err)
			}
			sum += res.IPC
		}
		c, err := vliwmt.Cost(machine, scheme)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, point{scheme, sum / float64(len(vliwmt.Mixes())), c.Transistors, c.GateDelays})
	}

	// Pareto frontier on (transistors down, IPC up).
	sort.Slice(pts, func(i, j int) bool { return pts[i].transistors < pts[j].transistors })
	fmt.Printf("%-7s %8s %12s %8s %s\n", "scheme", "avg IPC", "transistors", "delays", "pareto")
	bestIPC := 0.0
	for _, p := range pts {
		mark := ""
		if p.ipc > bestIPC {
			mark = "*"
			bestIPC = p.ipc
		}
		fmt.Printf("%-7s %8.3f %12d %8d %s\n", p.scheme, p.ipc, p.transistors, p.delays, mark)
	}
	fmt.Println("\n* = Pareto-optimal: no cheaper scheme performs better.")

	fmt.Println("\nmerge-control scaling with thread count:")
	scaling, err := vliwmt.CostScaling(machine, 2, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%7s %14s %14s %14s\n", "threads", "CSMT serial", "CSMT parallel", "SMT")
	for _, p := range scaling {
		fmt.Printf("%7d %10d tr  %10d tr  %10d tr\n",
			p.Threads, p.CSMTSerial.Transistors, p.CSMTParallel.Transistors, p.SMT.Transistors)
	}
	fmt.Println("\nCSMT-serial scales linearly, CSMT-parallel exponentially (crossing")
	fmt.Println("SMT around seven threads), SMT per added thread costs a full merge block.")
}
