// Customkernel: author a new workload with the kernel builder — a FIR
// filter over a streaming signal — compile it at several unroll factors,
// inspect the schedule the clustering compiler produces, and measure how
// four copies of the filter share the machine under CSMT and SMT merging.
package main

import (
	"fmt"
	"log"

	"vliwmt"
)

// fir builds one FIR tap-loop: load a sample, multiply-accumulate across
// four taps (two parallel pairs), store the result. The accumulator is a
// loop-carried dependence, so compiler unrolling keeps it serial while the
// tap products parallelise.
func fir() *vliwmt.Kernel {
	k := vliwmt.NewKernel("fir4")
	signal := k.Stream(vliwmt.MemStream{Kind: vliwmt.StreamStride, Base: 0x100000, Stride: 4, Footprint: 1 << 20})
	out := k.Stream(vliwmt.MemStream{Kind: vliwmt.StreamStride, Base: 0x200000, Stride: 4, Footprint: 1 << 20})
	k.Block("taps")
	x := k.Load(signal)
	p0 := k.Mul(x)
	p1 := k.Mul(x)
	p2 := k.Mul(x)
	p3 := k.Mul(x)
	s0 := k.ALU(p0, p1)
	s1 := k.ALU(p2, p3)
	acc := k.ALU(s0, s1)
	k.Carry(acc, acc) // accumulator carried across iterations
	k.Store(out, acc)
	k.Branch("taps", vliwmt.Loop(256))
	kern, err := k.Finish()
	if err != nil {
		log.Fatal(err)
	}
	return kern
}

func main() {
	log.SetFlags(0)
	machine := vliwmt.DefaultMachine()

	fmt.Println("compiling fir4 at several unroll factors:")
	var best *vliwmt.Program
	for _, unroll := range []int{1, 2, 4} {
		prog, err := vliwmt.CompileKernel(fir(), machine, unroll)
		if err != nil {
			log.Fatal(err)
		}
		ipcp, err := vliwmt.SingleThreadIPC(machine, prog, 100_000, true)
		if err != nil {
			log.Fatal(err)
		}
		ipcr, err := vliwmt.SingleThreadIPC(machine, prog, 100_000, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  unroll %d: %2d instrs/iteration, %.2f static ops/instr, IPCp %.2f, IPCr %.2f\n",
			unroll, prog.NumInstructions(), prog.StaticOpsPerInstr(), ipcp, ipcr)
		best = prog
	}

	fmt.Println("\nschedule at unroll 4 (first lines):")
	dis := best.Disassemble()
	for i, line := 0, 0; i < len(dis) && line < 8; i++ {
		if dis[i] == '\n' {
			line++
		}
		if line < 8 {
			fmt.Print(string(dis[i]))
		}
	}
	fmt.Println()

	fmt.Println("four fir4 instances sharing the machine:")
	for _, scheme := range []string{"3CCC", "2SC3", "3SSS"} {
		cfg := vliwmt.DefaultConfig()
		cfg.Scheme = scheme
		cfg.InstrLimit = 100_000
		tasks := make([]vliwmt.Task, 4)
		for i := range tasks {
			tasks[i] = vliwmt.Task{Name: fmt.Sprintf("fir%d", i), Prog: best}
		}
		res, err := vliwmt.Run(cfg, tasks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s IPC %.3f\n", scheme, res.IPC)
	}
}
