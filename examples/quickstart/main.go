// Quickstart: simulate the paper's LLHH workload (two low-ILP and two
// high-ILP programs) on the 4-thread clustered VLIW processor under three
// merge controls — 4-thread SMT (3SSS), 4-thread CSMT (3CCC) and the
// paper's recommended hybrid 2SC3 — and compare throughput and hardware
// cost.
package main

import (
	"fmt"
	"log"

	"vliwmt"
)

func main() {
	log.SetFlags(0)
	cfg := vliwmt.DefaultConfig()
	cfg.InstrLimit = 300_000
	cfg.TimesliceCycles = 10_000

	fmt.Println("LLHH workload (mcf, blowfish, x264, idct) on a", cfg.Machine.String())
	fmt.Println()
	fmt.Printf("%-6s %-22s %8s %12s %11s\n", "scheme", "structure", "IPC", "transistors", "gate delays")
	for _, scheme := range []string{"3SSS", "3CCC", "2SC3"} {
		cfg.Scheme = scheme
		res, err := vliwmt.RunMix(cfg, "LLHH")
		if err != nil {
			log.Fatal(err)
		}
		c, err := vliwmt.Cost(cfg.Machine, scheme)
		if err != nil {
			log.Fatal(err)
		}
		desc, _ := vliwmt.DescribeScheme(scheme)
		fmt.Printf("%-6s %-22s %8.3f %12d %11d\n", scheme, desc, res.IPC, c.Transistors, c.GateDelays)
	}
	fmt.Println()
	fmt.Println("2SC3 merges two threads at operation level (SMT) and folds two more")
	fmt.Println("in at cluster level (CSMT): most of the SMT performance at roughly")
	fmt.Println("the hardware cost of a 2-thread SMT merge control.")
}
