// Mediaserver: the paper's motivating deployment — an embedded media
// processor where high-ILP signal-processing jobs (imaging pipeline,
// colour-space conversion) share the machine with low-ILP control code
// (compression, protocol handling). Given a transistor budget for the
// thread merge control, pick the merging scheme that maximises
// throughput on the production workload mix, then validate the pick
// under a generated multi-tenant request stream (the steady-state mix
// generalised into a load model: synthetic 4-thread mixes arriving
// with exponential interarrivals across several tenants).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"vliwmt"
)

const transistorBudget = 3000 // merge-control budget from the area plan

func main() {
	log.SetFlags(0)
	machine := vliwmt.DefaultMachine()

	// The server's steady-state job mix: one imaging job, one codec job,
	// and two bursts of control-dominated work.
	jobs := []string{"imgpipe", "colorspace", "bzip2", "gsmencode"}
	var tasks []vliwmt.Task
	for _, j := range jobs {
		p, err := vliwmt.CompileBenchmark(j, machine)
		if err != nil {
			log.Fatal(err)
		}
		tasks = append(tasks, vliwmt.Task{Name: j, Prog: p})
	}

	type design struct {
		scheme      string
		ipc         float64
		transistors int
		delays      int
	}
	var feasible, rejected []design
	for _, scheme := range vliwmt.Schemes() {
		c, err := vliwmt.Cost(machine, scheme)
		if err != nil {
			log.Fatal(err)
		}
		sch, err := vliwmt.ParseScheme(scheme)
		if err != nil {
			log.Fatal(err)
		}
		cfg := vliwmt.DefaultConfig()
		cfg.Machine = machine
		cfg.Contexts = sch.Ports()
		cfg.Merge = sch
		cfg.InstrLimit = 200_000
		cfg.TimesliceCycles = 10_000
		res, err := vliwmt.Run(cfg, tasks)
		if err != nil {
			log.Fatal(err)
		}
		d := design{scheme, res.IPC, c.Transistors, c.GateDelays}
		if c.Transistors <= transistorBudget {
			feasible = append(feasible, d)
		} else {
			rejected = append(rejected, d)
		}
	}
	sort.Slice(feasible, func(i, j int) bool { return feasible[i].ipc > feasible[j].ipc })
	sort.Slice(rejected, func(i, j int) bool { return rejected[i].ipc > rejected[j].ipc })

	fmt.Printf("media server mix: %v\n", jobs)
	fmt.Printf("merge-control transistor budget: %d\n\n", transistorBudget)
	fmt.Printf("%-8s %-7s %8s %12s %8s\n", "status", "scheme", "IPC", "transistors", "delays")
	for _, d := range feasible {
		fmt.Printf("%-8s %-7s %8.3f %12d %8d\n", "OK", d.scheme, d.ipc, d.transistors, d.delays)
	}
	for _, d := range rejected {
		fmt.Printf("%-8s %-7s %8.3f %12d %8d\n", "over", d.scheme, d.ipc, d.transistors, d.delays)
	}
	if len(feasible) == 0 {
		log.Fatal("no scheme fits the budget")
	}
	best := feasible[0]
	fmt.Printf("\nselected: %s (%.3f IPC in %d transistors", best.scheme, best.ipc, best.transistors)
	if top := rejected; len(top) > 0 && top[0].ipc > best.ipc {
		fmt.Printf("; the unconstrained best, %s, is only %.1f%% faster at %.1fx the area",
			top[0].scheme, 100*(top[0].ipc-best.ipc)/best.ipc,
			float64(top[0].transistors)/float64(best.transistors))
	}
	fmt.Println(")")

	// Validate the pick beyond the four hand-written kernels: a
	// generated request stream models the server's production day —
	// three tenants submitting synthetic 4-thread mixes drawn from the
	// full ILP-class palette, arrivals exponentially spaced. Everything
	// below is a pure function of the stream seed, so this scenario
	// reruns bit-identically (and its jobs cache in a result store like
	// any others).
	reqs, err := vliwmt.GenerateStream(vliwmt.GenStreamOptions{
		Requests:         12,
		Tenants:          3,
		MeanInterarrival: 50_000,
		Schemes:          []string{best.scheme},
	}, 2009)
	if err != nil {
		log.Fatal(err)
	}
	results, err := vliwmt.SweepJobs(context.Background(), vliwmt.StreamJobs(reqs, 50_000), nil)
	if err != nil {
		log.Fatal(err)
	}

	type tenantLoad struct {
		requests int
		cycles   int64
		ops      int64
	}
	loads := map[int]*tenantLoad{}
	var totalCycles, totalOps int64
	for i, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Job.Describe(), r.Err)
		}
		tl := loads[reqs[i].Tenant]
		if tl == nil {
			tl = &tenantLoad{}
			loads[reqs[i].Tenant] = tl
		}
		tl.requests++
		tl.cycles += r.Res.Cycles
		tl.ops += r.Res.Ops
		totalCycles += r.Res.Cycles
		totalOps += r.Res.Ops
	}

	fmt.Printf("\ngenerated load model under %s: %d requests, %d tenants\n",
		best.scheme, len(reqs), len(loads))
	fmt.Printf("%-7s %9s %12s %12s %7s\n", "tenant", "requests", "cycles", "ops", "IPC")
	for tenant := 0; tenant < 3; tenant++ {
		tl := loads[tenant]
		if tl == nil {
			continue
		}
		fmt.Printf("%-7d %9d %12d %12d %7.3f\n",
			tenant, tl.requests, tl.cycles, tl.ops, float64(tl.ops)/float64(tl.cycles))
	}
	fmt.Printf("%-7s %9d %12d %12d %7.3f\n",
		"all", len(reqs), totalCycles, totalOps, float64(totalOps)/float64(totalCycles))
}
