package vliwmt

import (
	"fmt"

	"vliwmt/internal/cost"
	"vliwmt/internal/merge"
)

// Scheme is a first-class merge scheme: a merge-control tree (or one
// of the IMT/BMT baselines) that can be passed anywhere a scheme-name
// string is accepted today. Build one with ParseScheme, the
// constructors (CascadeScheme, BalancedScheme, ParallelCSMT), or the
// node-level builders (OpNode, ClusterNode, Thread, NewScheme), and
// assign it to Config.Merge or SweepJob.Merge; the zero Scheme means
// "unset" and defers to the name field.
type Scheme = merge.Scheme

// MergeKind selects the merge type of a node or cascade level.
type MergeKind = merge.Kind

const (
	// OpMerge merges at operation level (the paper's SMT): operations
	// are rerouted between issue slots of the same cluster.
	OpMerge MergeKind = merge.SMT
	// ClusterMerge merges at cluster level (the paper's CSMT): inputs
	// must occupy disjoint clusters.
	ClusterMerge MergeKind = merge.CSMT
)

// MergeInput is one ordered input of a merge node under construction:
// a hardware thread port (Thread) or a nested node (OpNode,
// ClusterNode, ParallelClusterNode).
type MergeInput = merge.Input

// Thread returns a leaf input for hardware thread port p.
func Thread(p int) MergeInput { return merge.Leaf(p) }

// OpNode returns an operation-level (SMT) merge node over the inputs,
// merged greedily in priority order.
func OpNode(inputs ...MergeInput) MergeInput {
	return merge.Sub(&merge.Node{Kind: merge.SMT, Inputs: inputs})
}

// ClusterNode returns a serial cluster-level (CSMT) merge node over
// the inputs.
func ClusterNode(inputs ...MergeInput) MergeInput {
	return merge.Sub(&merge.Node{Kind: merge.CSMT, Inputs: inputs})
}

// ParallelClusterNode returns a parallel cluster-level (CSMT) merge
// node: all candidate subsets are checked at once in hardware. The
// selection is identical to the serial ClusterNode; only the hardware
// cost differs.
func ParallelClusterNode(inputs ...MergeInput) MergeInput {
	return merge.Sub(&merge.Node{Kind: merge.CSMT, Parallel: true, Inputs: inputs})
}

// NewScheme builds a Scheme from an explicit node tree, mirroring
// merge.NewTree: root must be a node whose leaves cover thread ports
// 0..n-1 exactly once; the port count is derived from the leaves. An
// empty name selects the canonical tree rendering.
func NewScheme(name string, root MergeInput) (Scheme, error) {
	if root.Node == nil {
		return Scheme{}, fmt.Errorf("vliwmt: scheme root must be a merge node, not a thread leaf")
	}
	t, err := merge.TreeFromNode(name, root.Node)
	if err != nil {
		return Scheme{}, err
	}
	return merge.FromTree(t)
}

// ParseScheme resolves a scheme name into a first-class Scheme. It
// accepts everything the name-based entry points do: the paper's
// names ("3SSS", "2SC3", "C4", ...), the IMT/BMT baselines, names
// registered with RegisterScheme, and canonical tree expressions such
// as "C(S(T0,T1),T2,T3)". Unknown names are an error.
func ParseScheme(name string) (Scheme, error) { return merge.Resolve(name) }

// CascadeScheme builds the serial left-deep cascade merging
// len(kinds)+1 threads — the paper's 3XYZ family — named in the
// paper's convention (e.g. "3SCC").
func CascadeScheme(kinds ...MergeKind) (Scheme, error) {
	name := fmt.Sprintf("%d", len(kinds))
	for _, k := range kinds {
		name += k.Letter()
	}
	t, err := merge.Cascade(name, kinds...)
	if err != nil {
		return Scheme{}, err
	}
	return merge.FromTree(t)
}

// BalancedScheme builds the paper's two-level balanced tree for four
// threads: groups (T0,T1) and (T2,T3) merge with the group kind and
// the two results merge with the root kind ("2CC".."2SS").
func BalancedScheme(group, root MergeKind) (Scheme, error) {
	t, err := merge.Balanced("2"+group.Letter()+root.Letter(), group, root)
	if err != nil {
		return Scheme{}, err
	}
	return merge.FromTree(t)
}

// ParallelCSMT builds the single-level parallel CSMT scheme merging n
// threads at once (the paper's C4 for n = 4).
func ParallelCSMT(n int) (Scheme, error) {
	t, err := merge.ParallelCSMT(fmt.Sprintf("C%d", n), n)
	if err != nil {
		return Scheme{}, err
	}
	return merge.FromTree(t)
}

// RegisterScheme adds a custom scheme to the process-wide registry, so
// name resolves anywhere a scheme-name string is accepted: Config,
// SweepJob and Grid scheme fields, Cost, DescribeScheme, and the
// vliwsim/vliwsweep CLIs. Names that collide with the built-in grammar
// (paper names, baselines, tree expressions) are rejected;
// re-registering a name replaces the previous scheme. Submitting a
// registered scheme through Client inlines its tree, so the remote
// server needs no matching registration.
func RegisterScheme(name string, s Scheme) error { return merge.Register(name, s) }

// UnregisterScheme removes a registered custom scheme; unknown names
// are a no-op.
func UnregisterScheme(name string) { merge.Unregister(name) }

// RegisteredSchemes returns every registered custom scheme, sorted by
// name.
func RegisteredSchemes() []Scheme { return merge.Registered() }

// SchemeCostFor computes the transistor count and gate-delay depth of
// a first-class scheme's merge control on machine m. The IMT/BMT
// baselines have no merge control and are an error.
func SchemeCostFor(m Machine, s Scheme) (SchemeCost, error) {
	t := s.Tree()
	if t == nil {
		return SchemeCost{}, fmt.Errorf("vliwmt: scheme %s has no merge control to cost", s.Name())
	}
	return cost.ForTree(m, t)
}
