// Benchmark harness: one testing.B benchmark per table/figure of the
// paper (regenerating it at reduced scale and reporting the headline
// metric), micro-benchmarks of the core components, and ablation benches
// for the design choices called out in DESIGN.md.
//
// Full-size regeneration with text output is cmd/paperfigs; these benches
// make the experiments repeatable under `go test -bench`.
package vliwmt_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"vliwmt"
	"vliwmt/internal/cache"
	"vliwmt/internal/experiments"
	"vliwmt/internal/fabric"
	"vliwmt/internal/isa"
	"vliwmt/internal/logic"
	"vliwmt/internal/merge"
	"vliwmt/internal/refsim"
	"vliwmt/internal/server"
	"vliwmt/internal/sim"
	"vliwmt/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.DefaultOptions().Scale(30_000)
}

// BenchmarkTable1 regenerates Table 1 (per-benchmark IPCr/IPCp) and
// reports the measured average IPCp across the twelve benchmarks.
func BenchmarkTable1(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		s := 0.0
		for _, r := range rows {
			s += r.IPCp
		}
		avg = s / float64(len(rows))
	}
	b.ReportMetric(avg, "avg-IPCp")
}

// BenchmarkFigure4 regenerates Figure 4 and reports the 4-thread-over-
// 2-thread SMT advantage in percent (the paper reports +61%).
func BenchmarkFigure4(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		adv = 100 * (f.FourThread - f.TwoThread) / f.TwoThread
	}
	b.ReportMetric(adv, "4T-vs-2T-%")
}

// BenchmarkFigure5 regenerates Figure 5 (merge-control scaling 2..8
// threads) and reports the CSMT-parallel/SMT transistor ratio at 8 threads
// (the paper's crossover: above 1 means the parallel form overtook SMT).
func BenchmarkFigure5(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig5(isa.Default())
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		ratio = float64(last.CSMTParallel.Transistors) / float64(last.SMT.Transistors)
	}
	b.ReportMetric(ratio, "PL/SMT-tr@8")
}

// BenchmarkFigure6 regenerates Figure 6 and reports the average SMT
// advantage over CSMT in percent (the paper reports +27%).
func BenchmarkFigure6(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		adv = rows[len(rows)-1].AdvantagePc
	}
	b.ReportMetric(adv, "SMT-vs-CSMT-%")
}

// BenchmarkFigure9 regenerates Figure 9 (cost of all sixteen schemes) and
// reports the 2SC3/1S transistor ratio (the paper's headline: close to 1).
func BenchmarkFigure9(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		costs, err := experiments.Fig9(isa.Default())
		if err != nil {
			b.Fatal(err)
		}
		by := map[string]int{}
		for _, c := range costs {
			by[c.Scheme] = c.Transistors
		}
		ratio = float64(by["2SC3"]) / float64(by["1S"])
	}
	b.ReportMetric(ratio, "2SC3/1S-tr")
}

// BenchmarkFigure10 regenerates Figure 10 (all schemes on all mixes) and
// reports the 2SC3 average IPC.
func BenchmarkFigure10(b *testing.B) {
	var ipc float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		ipc = rows[len(rows)-1].IPC["2SC3"]
	}
	b.ReportMetric(ipc, "2SC3-IPC")
}

// BenchmarkFigure11And12 regenerates the cost/performance trade-off
// scatter data and reports 2SC3's fraction of 3SSS performance (the paper:
// within 11%, i.e. about 0.89).
func BenchmarkFigure11And12(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		rows, err := experiments.Fig10(opts)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := experiments.Tradeoffs(opts.Machine, rows)
		if err != nil {
			b.Fatal(err)
		}
		var sc3, sss float64
		for _, p := range pts {
			switch p.Scheme {
			case "2SC3":
				sc3 = p.IPC
			case "3SSS":
				sss = p.IPC
			}
		}
		frac = sc3 / sss
	}
	b.ReportMetric(frac, "2SC3/3SSS-IPC")
}

// --- Sweep engine benches ---------------------------------------------

// benchSweep pushes the full Figure 10 grid (16 schemes x 9 mixes, 144
// jobs) through the public sweep API and reports throughput.
func benchSweep(b *testing.B, workers int) {
	grid := vliwmt.Grid{InstrLimit: 10_000, Seed: 1}
	jobs := 0
	for i := 0; i < b.N; i++ {
		results, err := vliwmt.Sweep(context.Background(), grid, &vliwmt.SweepOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if _, err := r.IPC(); err != nil {
				b.Fatal(err)
			}
			jobs++
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

// BenchmarkSweepGrid runs the grid at full parallelism (one worker per
// core); compare with BenchmarkSweepGridSerial for the engine's speedup.
func BenchmarkSweepGrid(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSweepGridSerial pins the same sweep to a single worker — the
// serial baseline the worker pool is measured against.
func BenchmarkSweepGridSerial(b *testing.B) { benchSweep(b, 1) }

// storeBenchGrid is the grid both result-store benches sweep: the
// paper's sixteen schemes over two mixes (32 jobs) at a scaled-down
// budget — large enough that per-job simulation dominates per-job
// setup, as in real sweeps (the CLI default budget is 300k).
func storeBenchGrid() vliwmt.Grid {
	return vliwmt.Grid{Mixes: []string{"LLHH", "HHHH"}, InstrLimit: 100_000, Seed: 1}
}

// BenchmarkStoreColdSweep measures a sweep into an empty result store:
// every job simulates and persists, so the delta against
// BenchmarkSweepGrid is the store's write-path overhead. Each
// iteration gets a fresh directory (a fresh Runner with an empty
// compile cache, too, so cold means cold). Batching is pinned off —
// this is the single-job execution baseline BenchmarkBatchedSweep is
// measured against.
func BenchmarkStoreColdSweep(b *testing.B) {
	grid := storeBenchGrid()
	jobs := 0
	for i := 0; i < b.N; i++ {
		r := vliwmt.NewRunner(vliwmt.WithResultStore(b.TempDir()), vliwmt.WithBatch(1))
		results, err := r.Sweep(context.Background(), grid)
		if err != nil {
			b.Fatal(err)
		}
		jobs += len(results)
		if st := r.Store().Stats(); st.Hits != 0 {
			b.Fatalf("cold sweep hit the store: %+v", st)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

// BenchmarkBatchedSweep is BenchmarkStoreColdSweep with the batched
// simulation core on (the default): shape-compatible jobs advance
// through one shared cycle loop with shared compiled plans and the
// packed selection dictionary. Same grid, same cold store,
// bit-identical results —
// the jobs/s ratio against BenchmarkStoreColdSweep is the batching
// speedup the sweep engine delivers on one core.
func BenchmarkBatchedSweep(b *testing.B) {
	grid := storeBenchGrid()
	jobs := 0
	for i := 0; i < b.N; i++ {
		r := vliwmt.NewRunner(vliwmt.WithResultStore(b.TempDir()))
		results, err := r.Sweep(context.Background(), grid)
		if err != nil {
			b.Fatal(err)
		}
		jobs += len(results)
		if st := r.Store().Stats(); st.Hits != 0 {
			b.Fatalf("cold sweep hit the store: %+v", st)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

// BenchmarkStoreWarmSweep measures the same sweep served entirely from
// a warm store: zero compiles, zero simulations, pure disk reads. The
// ratio to BenchmarkStoreColdSweep is the cache's speedup on repeated
// experiments (and its jobs/s is the replay ceiling of a conformance
// run over a committed corpus).
func BenchmarkStoreWarmSweep(b *testing.B) {
	grid := storeBenchGrid()
	dir := b.TempDir()
	warm := vliwmt.NewRunner(vliwmt.WithResultStore(dir))
	if _, err := warm.Sweep(context.Background(), grid); err != nil {
		b.Fatal(err)
	}
	jobs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := vliwmt.NewRunner(vliwmt.WithResultStore(dir))
		results, err := r.Sweep(context.Background(), grid)
		if err != nil {
			b.Fatal(err)
		}
		jobs += len(results)
		if st := r.Store().Stats(); st.Misses != 0 {
			b.Fatalf("warm sweep missed the store: %+v", st)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

// generatedBenchGrid is storeBenchGrid over synthetic workloads: two
// generated mixes named canonically, so every iteration regenerates
// the kernels from their names before compiling — the full
// name -> profile -> IR -> compile -> simulate pipeline the generative
// conformance harness exercises, at the store benches' budget.
func generatedBenchGrid() vliwmt.Grid {
	return vliwmt.Grid{
		Mixes:      []string{"genmix:LLHH:s1", "genmix:HHHH:s3"},
		InstrLimit: 100_000,
		Seed:       1,
	}
}

// BenchmarkGeneratedSweepCold measures a cold sweep over generated
// workloads: fresh store and compile cache each iteration, so kernel
// generation and compilation are inside the measurement. The delta
// against BenchmarkBatchedSweep (same shape over hand-written
// benchmarks) is what generation costs a real sweep.
func BenchmarkGeneratedSweepCold(b *testing.B) {
	grid := generatedBenchGrid()
	jobs := 0
	for i := 0; i < b.N; i++ {
		r := vliwmt.NewRunner(vliwmt.WithResultStore(b.TempDir()))
		results, err := r.Sweep(context.Background(), grid)
		if err != nil {
			b.Fatal(err)
		}
		jobs += len(results)
		if st := r.Store().Stats(); st.Hits != 0 {
			b.Fatalf("cold sweep hit the store: %+v", st)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

// BenchmarkGeneratedSweepWarm is the same generated sweep served from
// a warm store: generated jobs hash to the same content keys every
// time (their canonical names are in the key), so the store serves
// them without regenerating or simulating anything — proof that
// generated workloads cache exactly like hand-written ones.
func BenchmarkGeneratedSweepWarm(b *testing.B) {
	grid := generatedBenchGrid()
	dir := b.TempDir()
	warm := vliwmt.NewRunner(vliwmt.WithResultStore(dir))
	if _, err := warm.Sweep(context.Background(), grid); err != nil {
		b.Fatal(err)
	}
	jobs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := vliwmt.NewRunner(vliwmt.WithResultStore(dir))
		results, err := r.Sweep(context.Background(), grid)
		if err != nil {
			b.Fatal(err)
		}
		jobs += len(results)
		if st := r.Store().Stats(); st.Misses != 0 {
			b.Fatalf("warm sweep missed the store: %+v", st)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(jobs)/sec, "jobs/s")
	}
}

// BenchmarkRunnerReuse quantifies the Runner session's shared-compile-
// cache win: repeated RunMix calls on one long-lived Runner (kernels
// compiled once, every later call served from the cache) against the
// worst case of a fresh private-cache Runner per call (the pre-session
// behaviour of the top-level functions, which compiled the mix from
// scratch every time).
func BenchmarkRunnerReuse(b *testing.B) {
	cfg := vliwmt.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 5_000
	cfg.TimesliceCycles = 1_000
	b.Run("SharedRunner", func(b *testing.B) {
		r := vliwmt.NewRunner()
		for i := 0; i < b.N; i++ {
			if _, err := r.RunMix(cfg, "LLHH"); err != nil {
				b.Fatal(err)
			}
		}
		compiles, hits := r.Cache().Stats()
		b.ReportMetric(float64(compiles), "compiles")
		b.ReportMetric(float64(hits), "cache-hits")
	})
	b.Run("FreshRunner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vliwmt.NewRunner().RunMix(cfg, "LLHH"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Micro-benchmarks -----------------------------------------------

// mergeSelectSets builds 256 random candidate sets in the Selector
// convention (value slice + valid bitmask).
func mergeSelectSets() ([][]isa.Occupancy, []uint32) {
	r := rand.New(rand.NewSource(1))
	var sets [][]isa.Occupancy
	var valids []uint32
	for i := 0; i < 256; i++ {
		cands := make([]isa.Occupancy, 4)
		var valid uint32
		for p := range cands {
			if r.Intn(5) == 0 {
				continue
			}
			var ops []isa.Op
			for j := 0; j < 1+r.Intn(6); j++ {
				ops = append(ops, isa.Op{Class: isa.OpALU, Cluster: uint8(r.Intn(4))})
			}
			cands[p] = isa.OccupancyOf(ops)
			valid |= 1 << uint(p)
		}
		sets = append(sets, cands)
		valids = append(valids, valid)
	}
	return sets, valids
}

// BenchmarkMergeSelect measures the compiled merge-stage selection
// throughput of the recommended scheme — the evaluator sim.Run drives
// every cycle.
func BenchmarkMergeSelect(b *testing.B) {
	m := isa.Default()
	tree, err := merge.Parse("2SC3", 4)
	if err != nil {
		b.Fatal(err)
	}
	sel := merge.Compile(tree)
	sets, valids := mergeSelectSets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select(&m, sets[i%len(sets)], valids[i%len(valids)])
	}
}

// BenchmarkMergeSelectRef measures the recursive reference tree walk on
// the same inputs — the pre-compilation selection path, kept as the
// refsim oracle. The gap to BenchmarkMergeSelect is the compiled
// selector's win.
func BenchmarkMergeSelectRef(b *testing.B) {
	m := isa.Default()
	tree, err := merge.Parse("2SC3", 4)
	if err != nil {
		b.Fatal(err)
	}
	sets, valids := mergeSelectSets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Select(&m, sets[i%len(sets)], valids[i%len(valids)])
	}
}

// BenchmarkSimulator measures raw simulation speed (cycles per second) on
// the 4-thread LLHH workload under 2SC3.
func BenchmarkSimulator(b *testing.B) {
	cfg := vliwmt.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 20_000
	cfg.TimesliceCycles = 5_000
	mix, err := workload.MixByName("LLHH")
	if err != nil {
		b.Fatal(err)
	}
	var tasks []sim.Task
	for _, name := range mix.Members {
		p, err := vliwmt.CompileBenchmark(name, cfg.Machine)
		if err != nil {
			b.Fatal(err)
		}
		tasks = append(tasks, sim.Task{Name: name, Prog: p})
	}
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, tasks)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(cycles)/sec, "cycles/s")
	}
}

// stallHeavyConfig is the miss-dominated regime of the realistic-memory
// experiments, exaggerated: a small data cache with a long miss penalty,
// so all four threads spend most cycles stalled together. This is the
// workload the stall fast-forward exists for (DESIGN.md) — the naive
// loop burns one iteration per stalled cycle, the optimized loop jumps
// straight to the next wake-up.
func stallHeavyConfig() vliwmt.Config {
	cfg := vliwmt.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 20_000
	cfg.TimesliceCycles = 5_000
	cfg.DCache = cache.Config{Size: 2 << 10, LineSize: 64, Ways: 2, MissPenalty: 200}
	return cfg
}

func stallHeavyTasks(b *testing.B, cfg vliwmt.Config) []sim.Task {
	b.Helper()
	mix, err := workload.MixByName("LLLL")
	if err != nil {
		b.Fatal(err)
	}
	var tasks []sim.Task
	for _, name := range mix.Members {
		p, err := vliwmt.CompileBenchmark(name, cfg.Machine)
		if err != nil {
			b.Fatal(err)
		}
		tasks = append(tasks, sim.Task{Name: name, Prog: p})
	}
	return tasks
}

// benchStall runs the miss-heavy workload through run and reports
// simulated cycles per second.
func benchStall(b *testing.B, run func(vliwmt.Config, []sim.Task) (*vliwmt.Result, error)) {
	cfg := stallHeavyConfig()
	tasks := stallHeavyTasks(b, cfg)
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(cfg, tasks)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(cycles)/sec, "cycles/s")
	}
}

// BenchmarkStallHeavy measures the optimized simulator on the
// miss-dominated workload (stall fast-forward active).
func BenchmarkStallHeavy(b *testing.B) { benchStall(b, sim.Run) }

// BenchmarkStallHeavyRef measures the naive reference loop (the
// pre-optimization simulator, kept as the refsim oracle) on the same
// workload; the ratio to BenchmarkStallHeavy is the fast-forward win.
func BenchmarkStallHeavyRef(b *testing.B) { benchStall(b, refsim.Run) }

// BenchmarkCompile measures compilation of the widest kernel.
func BenchmarkCompile(b *testing.B) {
	bench, err := workload.ByName("colorspace")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Compile(isa.Default()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAccess measures the set-associative cache model.
func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(cache.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)], i%7 == 0)
	}
}

// BenchmarkCircuitBuild measures gate-level construction of the most
// expensive merge control (8-thread parallel CSMT).
func BenchmarkCircuitBuild(b *testing.B) {
	m := isa.Default()
	for i := 0; i < b.N; i++ {
		tree, err := merge.ParallelCSMT("C8", 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := logic.BuildScheme(&m, tree); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches -------------------------------------------------

// BenchmarkAblationPriorityRotation compares round-robin priority rotation
// against fixed priority on 4-thread CSMT and reports the rotation gain.
func BenchmarkAblationPriorityRotation(b *testing.B) {
	run := func(fixed bool) float64 {
		cfg := vliwmt.DefaultConfig()
		cfg.Scheme = "3CCC"
		cfg.InstrLimit = 20_000
		cfg.TimesliceCycles = 5_000
		cfg.FixedPriority = fixed
		res, err := vliwmt.RunMix(cfg, "MMMM")
		if err != nil {
			b.Fatal(err)
		}
		return res.IPC
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = 100 * (run(false) - run(true)) / run(true)
	}
	b.ReportMetric(gain, "rotation-gain-%")
}

// BenchmarkAblationBalancedVsCascade compares the balanced trees against
// their cascades (2CC vs 3CCC and 2SS vs 3SSS): lower delay, but the
// all-or-nothing sub-packet rule costs performance.
func BenchmarkAblationBalancedVsCascade(b *testing.B) {
	run := func(scheme string) float64 {
		cfg := vliwmt.DefaultConfig()
		cfg.Scheme = scheme
		cfg.InstrLimit = 20_000
		cfg.TimesliceCycles = 5_000
		res, err := vliwmt.RunMix(cfg, "LLMM")
		if err != nil {
			b.Fatal(err)
		}
		return res.IPC
	}
	var lossC float64
	for i := 0; i < b.N; i++ {
		lossC = 100 * (run("3CCC") - run("2CC")) / run("3CCC")
	}
	b.ReportMetric(lossC, "2CC-loss-vs-3CCC-%")
}

// BenchmarkAblationUnroll sweeps the compiler unroll factor on the
// colorspace kernel and reports the IPC spread (the taken-branch penalty
// amortisation DESIGN.md calls out).
func BenchmarkAblationUnroll(b *testing.B) {
	bench, err := workload.ByName("colorspace")
	if err != nil {
		b.Fatal(err)
	}
	m := isa.Default()
	var spread float64
	for i := 0; i < b.N; i++ {
		ipcs := map[int]float64{}
		for _, u := range []int{1, 2, 4} {
			prog, err := vliwmt.CompileKernel(bench.Build(), m, u)
			if err != nil {
				b.Fatal(err)
			}
			ipc, err := vliwmt.SingleThreadIPC(m, prog, 20_000, true)
			if err != nil {
				b.Fatal(err)
			}
			ipcs[u] = ipc
		}
		spread = 100 * (ipcs[4] - ipcs[1]) / ipcs[1]
	}
	b.ReportMetric(spread, "unroll4-vs-1-%")
}

// BenchmarkAblationBaselines compares the classic multithreading baselines
// (IMT, BMT) against merged issue on the same workload, reporting the
// 2SC3-over-IMT gain.
func BenchmarkAblationBaselines(b *testing.B) {
	run := func(scheme string) float64 {
		cfg := vliwmt.DefaultConfig()
		cfg.Scheme = scheme
		cfg.InstrLimit = 20_000
		cfg.TimesliceCycles = 5_000
		res, err := vliwmt.RunMix(cfg, "LLMM")
		if err != nil {
			b.Fatal(err)
		}
		return res.IPC
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		imt := run("IMT")
		_ = run("BMT")
		gain = 100 * (run("2SC3") - imt) / imt
	}
	b.ReportMetric(gain, "2SC3-vs-IMT-%")
}

// BenchmarkExtension8Threads runs the beyond-the-paper scaling experiment
// (eight hardware threads) and reports the buildable hybrid's fraction of
// full 8-thread SMT performance.
func BenchmarkExtension8Threads(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Scaling8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var hybrid, smt float64
		for _, r := range rows {
			switch r.Scheme {
			case "4SC3C3C3":
				hybrid = r.IPC
			case "7SSSSSSS":
				smt = r.IPC
			}
		}
		frac = hybrid / smt
	}
	b.ReportMetric(frac, "hybrid/SMT-IPC")
}

// BenchmarkFabricSweep measures the distributed sweep path end to end:
// a fabric coordinator sharding the store-bench grid (32 jobs) across
// two local vliwserve workers over real HTTP and merging the results
// in index order. On one box the delta against BenchmarkSweepGrid is
// the fabric's wire, sharding and coordination overhead; across boxes
// that overhead buys the fan-out the ROADMAP's cluster-scale target
// needs.
func BenchmarkFabricSweep(b *testing.B) {
	jobs, err := storeBenchGrid().Jobs()
	if err != nil {
		b.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		wsrv := server.New(server.Options{})
		wts := httptest.NewServer(wsrv.Handler())
		b.Cleanup(wts.Close)
		b.Cleanup(wsrv.Close)
		addrs = append(addrs, wts.URL)
	}
	coord, err := fabric.New(fabric.Options{Workers: addrs, ShardJobs: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(coord.Close)

	done := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := coord.Run(context.Background(), jobs, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		done += len(results)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(done)/sec, "jobs/s")
	}
}
