package vliwmt_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"vliwmt"
)

// TestGoldenCorpus is the golden conformance gate: it replays the
// committed corpus (testdata/golden/corpus.json — the 16 paper schemes
// plus IMT/BMT, each under real caches and perfect memory) and fails
// on any bit-level divergence from the committed results. A failure
// means this change altered simulator output; if the change is
// intentional, bless a new baseline with `make golden` and commit the
// reviewed diff.
func TestGoldenCorpus(t *testing.T) {
	path := filepath.Join("testdata", "golden", "corpus.json")
	golden, err := vliwmt.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}

	// The corpus must keep its promised coverage: every paper scheme
	// and both baselines, each under both memory models.
	want := append(vliwmt.Schemes(), "IMT", "BMT")
	covered := map[string]map[bool]bool{}
	for _, e := range golden.Entries {
		j, err := e.Job.Sweep()
		if err != nil {
			t.Fatalf("entry %s: %v", e.Key, err)
		}
		if covered[j.Scheme] == nil {
			covered[j.Scheme] = map[bool]bool{}
		}
		covered[j.Scheme][j.PerfectMemory] = true
	}
	for _, s := range want {
		if !covered[s][false] || !covered[s][true] {
			t.Errorf("corpus does not cover scheme %s under both memory models", s)
		}
	}

	jobs, err := golden.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := vliwmt.SweepJobs(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	live, err := vliwmt.SnapshotResults(results)
	if err != nil {
		t.Fatal(err)
	}
	if d := vliwmt.DiffSnapshots(golden, live); !d.Clean() {
		var b strings.Builder
		d.WriteText(&b, "golden", "this build")
		t.Fatalf("simulator output diverges from the golden corpus (bless intentional changes with `make golden`):\n%s", b.String())
	}
}
