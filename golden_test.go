package vliwmt_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"vliwmt"
)

// TestGoldenCorpus is the golden conformance gate: it replays the
// committed corpus (testdata/golden/corpus.json — the 16 paper schemes
// plus IMT/BMT, each under real caches and perfect memory) and fails
// on any bit-level divergence from the committed results. A failure
// means this change altered simulator output; if the change is
// intentional, bless a new baseline with `make golden` and commit the
// reviewed diff.
func TestGoldenCorpus(t *testing.T) {
	path := filepath.Join("testdata", "golden", "corpus.json")
	golden, err := vliwmt.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}

	// The corpus must keep its promised coverage: every paper scheme
	// and both baselines, each under both memory models.
	want := append(vliwmt.Schemes(), "IMT", "BMT")
	covered := map[string]map[bool]bool{}
	for _, e := range golden.Entries {
		j, err := e.Job.Sweep()
		if err != nil {
			t.Fatalf("entry %s: %v", e.Key, err)
		}
		if covered[j.Scheme] == nil {
			covered[j.Scheme] = map[bool]bool{}
		}
		covered[j.Scheme][j.PerfectMemory] = true
	}
	for _, s := range want {
		if !covered[s][false] || !covered[s][true] {
			t.Errorf("corpus does not cover scheme %s under both memory models", s)
		}
	}

	jobs, err := golden.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := vliwmt.SweepJobs(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	live, err := vliwmt.SnapshotResults(results)
	if err != nil {
		t.Fatal(err)
	}
	if d := vliwmt.DiffSnapshots(golden, live); !d.Clean() {
		var b strings.Builder
		d.WriteText(&b, "golden", "this build")
		t.Fatalf("simulator output diverges from the golden corpus (bless intentional changes with `make golden`):\n%s", b.String())
	}
}

// TestGeneratedGoldenCorpus replays the committed generated-workload
// corpus (testdata/golden/generated.json — three generated mixes, six
// schemes, both memory models). Its jobs name benchmarks by canonical
// "gen:" names, so a replay regenerates every kernel from scratch: a
// divergence means either the simulator or the workload generator
// changed behaviour. Both are blessed the same way (`make golden`),
// with the added duty for generator changes of noting in the commit
// that all existing "gen:" names now mean different kernels.
func TestGeneratedGoldenCorpus(t *testing.T) {
	path := filepath.Join("testdata", "golden", "generated.json")
	golden, err := vliwmt.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every job must draw its threads from generated benchmarks — the
	// point of this corpus — and cover both memory models.
	perMem := map[bool]int{}
	for _, e := range golden.Entries {
		j, err := e.Job.Sweep()
		if err != nil {
			t.Fatalf("entry %s: %v", e.Key, err)
		}
		perMem[j.PerfectMemory]++
		for _, b := range j.Benchmarks {
			if !strings.HasPrefix(b, "gen:") {
				t.Errorf("entry %s carries non-generated benchmark %q", e.Key, b)
			}
		}
	}
	if perMem[false] == 0 || perMem[true] == 0 {
		t.Errorf("corpus memory-model coverage %v; want both real and perfect", perMem)
	}

	jobs, err := golden.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := vliwmt.SweepJobs(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	live, err := vliwmt.SnapshotResults(results)
	if err != nil {
		t.Fatal(err)
	}
	if d := vliwmt.DiffSnapshots(golden, live); !d.Clean() {
		var b strings.Builder
		d.WriteText(&b, "golden", "this build")
		t.Fatalf("generated workloads diverge from the committed corpus (bless intentional simulator or generator changes with `make golden`):\n%s", b.String())
	}
}
