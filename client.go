package vliwmt

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"time"

	"vliwmt/internal/api"
	"vliwmt/internal/merge"
)

// Client submits sweeps to a remote vliwserve instance (cmd/vliwserve)
// over its versioned HTTP API and returns the same SweepResults as an
// in-process call. The determinism contract crosses the wire: a grid
// swept remotely is bit-identical (modulo wall-clock fields) to the
// same grid swept in-process with the same seed, at any worker count
// on either side.
type Client struct {
	baseURL string
	httpc   *http.Client
}

// NewClient returns a client for the server at baseURL, e.g.
// "http://localhost:8080". A bare host:port is given an http scheme.
func NewClient(baseURL string) *Client {
	u := strings.TrimRight(baseURL, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return &Client{baseURL: u, httpc: &http.Client{}}
}

// Ping checks that the server is up.
func (c *Client) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("vliwmt: server health check: %s", resp.Status)
	}
	return nil
}

// Sweep submits the grid to the server, which expands it with the same
// defaulting as in-process Grid.Jobs, streams progress into
// opts.Progress, and returns the index-ordered results. Cancelling ctx
// cancels the remote sweep (best-effort DELETE) and returns ctx's
// error with any results the server had aggregated.
//
// Scheme names that resolve only through this process's registry
// (vliwmt.RegisterScheme) do not exist on the server, so such grids
// are expanded client-side — Grid.Jobs is deterministic and identical
// on both ends — and submitted as explicit jobs whose merge trees
// travel inline. Results are bit-identical either way.
func (c *Client) Sweep(ctx context.Context, g Grid, opts *SweepOptions) ([]SweepResult, error) {
	for _, s := range g.Schemes {
		if _, ok := merge.Lookup(s); ok {
			jobs, err := g.Jobs()
			if err != nil {
				return nil, err
			}
			return c.SweepJobs(ctx, jobs, opts)
		}
	}
	ag := api.GridFrom(g)
	return c.submit(ctx, api.SweepRequest{Grid: &ag}, opts)
}

// SweepJobs submits an explicit job set; see Sweep.
func (c *Client) SweepJobs(ctx context.Context, jobs []SweepJob, opts *SweepOptions) ([]SweepResult, error) {
	req := api.SweepRequest{Jobs: make([]api.Job, len(jobs))}
	for i, j := range jobs {
		req.Jobs[i] = api.JobFrom(j)
	}
	return c.submit(ctx, req, opts)
}

func (c *Client) submit(ctx context.Context, sreq api.SweepRequest, opts *SweepOptions) ([]SweepResult, error) {
	var o SweepOptions
	if opts != nil {
		o = *opts
	}
	sreq.Workers = o.Workers

	var body bytes.Buffer
	if err := api.EncodeSweepRequest(&body, sreq); err != nil {
		return nil, err
	}
	st, err := c.postJSON(ctx, "/v1/sweeps", body.Bytes())
	if err != nil {
		return nil, err
	}

	// Follow the event stream for progress and completion; if the
	// stream breaks while the context is still live, fall back to
	// polling the status endpoint.
	delivered := map[int]bool{}
	progress := o.Progress
	if progress != nil {
		inner := progress
		progress = func(done, total int, r SweepResult) {
			delivered[r.Index] = true
			inner(done, total, r)
		}
	}
	if err := c.follow(ctx, st.ID, st.Total, progress); err != nil {
		if ctx.Err() != nil {
			return c.abandon(st.ID, ctx.Err())
		}
		if err = c.poll(ctx, st.ID); err != nil {
			if ctx.Err() != nil {
				return c.abandon(st.ID, ctx.Err())
			}
			return nil, err
		}
	}

	final, err := c.status(ctx, st.ID)
	if err != nil {
		if ctx.Err() != nil {
			return c.abandon(st.ID, ctx.Err())
		}
		return nil, err
	}
	results := api.SweepResults(final.Results)
	// A sweep that finished before the event stream attached replays
	// only its terminal event, and a stream that broke mid-sweep
	// delivered only a prefix; synthesize callbacks for the jobs the
	// stream missed so the sink always sees every job exactly once.
	if o.Progress != nil {
		done := len(delivered)
		for _, r := range results {
			if !delivered[r.Index] {
				done++
				o.Progress(done, len(results), r)
			}
		}
	}
	if final.State == api.StateCanceled {
		// Surface remote cancellation as context.Canceled so callers'
		// errors.Is checks behave exactly as for in-process sweeps.
		return results, fmt.Errorf("vliwmt: sweep %s canceled remotely: %w", final.ID, context.Canceled)
	}
	if final.Error != "" {
		return results, errors.New(final.Error)
	}
	return results, nil
}

// abandon cancels the remote sweep and returns whatever the server had
// aggregated, mirroring the in-process partial-results contract.
func (c *Client) abandon(id string, cause error) ([]SweepResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.baseURL+"/v1/sweeps/"+id, nil)
	if err == nil {
		if resp, derr := c.httpc.Do(req); derr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	var results []SweepResult
	if st, serr := c.waitTerminal(ctx, id); serr == nil {
		results = api.SweepResults(st.Results)
	}
	return results, cause
}

// follow consumes the NDJSON event stream until the terminal event.
func (c *Client) follow(ctx context.Context, id string, total int, progress func(done, total int, r SweepResult)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("vliwmt: event stream: %s: %s", resp.Status, readError(resp.Body))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.Event
		if err := ev.UnmarshalLine(line); err != nil {
			return err
		}
		if ev.Result != nil && progress != nil {
			progress(ev.Done, ev.Total, ev.Result.Sweep())
		}
		if ev.Terminal() {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("vliwmt: event stream for sweep %s ended before the terminal event", id)
}

// poll watches the status endpoint until the sweep is terminal.
func (c *Client) poll(ctx context.Context, id string) error {
	_, err := c.waitTerminal(ctx, id)
	return err
}

// pollFailureBudget bounds the consecutive transient status failures
// the polling loop rides out — at pollInterval apart, about five
// seconds of server restart or network flap — before giving up.
const (
	pollInterval      = 100 * time.Millisecond
	pollFailureBudget = 50
)

func (c *Client) waitTerminal(ctx context.Context, id string) (api.SweepStatus, error) {
	failures := 0
	for {
		st, err := c.status(ctx, id)
		switch {
		case err == nil:
			failures = 0
			if st.State.Terminal() {
				return st, nil
			}
		case isTransient(err) && ctx.Err() == nil:
			// A flaky or restarting server answers again shortly; the
			// sweep itself is unaffected (runs survive on the server,
			// results are re-fetchable). Keep polling for a while.
			if failures++; failures > pollFailureBudget {
				return st, err
			}
		default:
			return st, err
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(pollInterval):
		}
	}
}

func (c *Client) status(ctx context.Context, id string) (api.SweepStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/sweeps/"+id, nil)
	if err != nil {
		return api.SweepStatus{}, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return api.SweepStatus{}, &transientError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("vliwmt: sweep %s status: %s: %s", id, resp.Status, readError(resp.Body))
		if transientStatus(resp.StatusCode) {
			return api.SweepStatus{}, &transientError{err}
		}
		return api.SweepStatus{}, err
	}
	return api.DecodeSweepStatus(resp.Body)
}

// submitAttempts bounds postJSON's tries: the first submission plus
// three retries of transient failures.
const submitAttempts = 4

// postJSON submits the request body, retrying transient failures —
// transport errors and 502/503/504 responses from a worker mid-restart
// or an overloaded proxy — with exponential backoff and jitter. The
// body is a byte slice precisely so every attempt can resend it from
// the start. Non-transient rejections (e.g. a 400 for a malformed
// grid) fail immediately.
func (c *Client) postJSON(ctx context.Context, path string, body []byte) (api.SweepStatus, error) {
	var lastErr error
	for attempt := 0; attempt < submitAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return api.SweepStatus{}, ctx.Err()
			case <-time.After(retryDelay(attempt)):
			}
		}
		st, err := c.postJSONOnce(ctx, path, body)
		if err == nil || !isTransient(err) || ctx.Err() != nil {
			return st, err
		}
		lastErr = err
	}
	return api.SweepStatus{}, fmt.Errorf("vliwmt: submit failed after %d attempts: %w", submitAttempts, lastErr)
}

func (c *Client) postJSONOnce(ctx context.Context, path string, body []byte) (api.SweepStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return api.SweepStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return api.SweepStatus{}, &transientError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("vliwmt: submit sweep: %s: %s", resp.Status, readError(resp.Body))
		if transientStatus(resp.StatusCode) {
			return api.SweepStatus{}, &transientError{err}
		}
		return api.SweepStatus{}, err
	}
	return api.DecodeSweepStatus(resp.Body)
}

// retryDelay is the backoff before the attempt-th retry: 100ms
// doubling per attempt, jittered to half-to-full so a burst of
// clients doesn't re-submit in lockstep.
func retryDelay(attempt int) time.Duration {
	d := 100 * time.Millisecond << (attempt - 1)
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// transientError marks a failure worth retrying: the request may never
// have reached the server, or the server signalled a temporary
// condition.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func isTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// transientStatus reports whether an HTTP status signals a temporary
// server-side condition rather than a rejected request.
func transientStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// readError drains a small error body for diagnostics.
func readError(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4<<10))
	return strings.TrimSpace(string(b))
}
