package vliwmt_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"vliwmt"
	"vliwmt/internal/server"
)

// TestTypedAndNamedPathsBitIdentical is the API-redesign acceptance
// criterion: every paper scheme plus the IMT/BMT baselines must
// produce bit-identical Results whether the merge control is named
// via Config.Scheme or passed as a typed Scheme via Config.Merge.
func TestTypedAndNamedPathsBitIdentical(t *testing.T) {
	names := append(vliwmt.Schemes(), "IMT", "BMT")
	for _, name := range names {
		sch, err := vliwmt.ParseScheme(name)
		if err != nil {
			t.Fatalf("ParseScheme(%s): %v", name, err)
		}
		cfg := vliwmt.DefaultConfig()
		cfg.Contexts = sch.Ports()
		cfg.InstrLimit = 5_000
		cfg.TimesliceCycles = 1_000
		cfg.Scheme = name

		named, err := vliwmt.RunMix(cfg, "LLHH")
		if err != nil {
			t.Fatalf("%s named run: %v", name, err)
		}
		cfg.Scheme = ""
		cfg.Merge = sch
		typed, err := vliwmt.RunMix(cfg, "LLHH")
		if err != nil {
			t.Fatalf("%s typed run: %v", name, err)
		}
		if !reflect.DeepEqual(named, typed) {
			t.Errorf("%s: named and typed runs differ:\nnamed %+v\ntyped %+v", name, named, typed)
		}
	}
}

// TestSchemeConstructors checks that the typed constructors build the
// same trees the paper names denote.
func TestSchemeConstructors(t *testing.T) {
	cases := []struct {
		name string
		got  func() (vliwmt.Scheme, error)
	}{
		{"3SCC", func() (vliwmt.Scheme, error) {
			return vliwmt.CascadeScheme(vliwmt.OpMerge, vliwmt.ClusterMerge, vliwmt.ClusterMerge)
		}},
		{"2CS", func() (vliwmt.Scheme, error) {
			return vliwmt.BalancedScheme(vliwmt.ClusterMerge, vliwmt.OpMerge)
		}},
		{"C4", func() (vliwmt.Scheme, error) { return vliwmt.ParallelCSMT(4) }},
	}
	for _, tc := range cases {
		built, err := tc.got()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		parsed, err := vliwmt.ParseScheme(tc.name)
		if err != nil {
			t.Fatalf("ParseScheme(%s): %v", tc.name, err)
		}
		if built.Name() != tc.name || built.String() != parsed.String() {
			t.Errorf("%s: constructor built %s (%s), parse gives %s", tc.name, built.Name(), built, parsed)
		}
	}

	// Node-level builder: ports derive from leaves, names default to
	// the canonical rendering, and invalid trees fail eagerly.
	sch, err := vliwmt.NewScheme("", vliwmt.ParallelClusterNode(
		vliwmt.OpNode(vliwmt.Thread(0), vliwmt.Thread(1)),
		vliwmt.OpNode(vliwmt.Thread(2), vliwmt.Thread(3)),
		vliwmt.Thread(4)))
	if err != nil {
		t.Fatal(err)
	}
	if sch.Ports() != 5 || sch.Name() != "C3(S(T0,T1),S(T2,T3),T4)" {
		t.Errorf("built %s over %d ports", sch.Name(), sch.Ports())
	}
	if _, err := vliwmt.NewScheme("bad", vliwmt.Thread(0)); err == nil {
		t.Error("leaf root accepted")
	}
	if _, err := vliwmt.NewScheme("bad", vliwmt.OpNode(vliwmt.Thread(0), vliwmt.Thread(2))); err == nil {
		t.Error("port gap accepted")
	}
	if _, err := vliwmt.SchemeCostFor(vliwmt.DefaultMachine(), sch); err != nil {
		t.Errorf("SchemeCostFor on a custom tree: %v", err)
	}
}

// TestUnknownSchemesFailEagerly pins the PortsFor satellite fix:
// unknown scheme names must fail at validation time with a clear
// error, not default to a 4-thread machine.
func TestUnknownSchemesFailEagerly(t *testing.T) {
	if _, err := vliwmt.ParseScheme("NOPE"); err == nil {
		t.Error("ParseScheme accepted an unknown name")
	}
	grid := vliwmt.Grid{Schemes: []string{"NOPE"}, Mixes: []string{"LLHH"}, InstrLimit: 1000}
	if _, err := vliwmt.Sweep(context.Background(), grid, nil); err == nil {
		t.Error("Sweep accepted a grid with an unknown scheme")
	}
	// The deprecated forgiving helper keeps its documented default.
	if got := vliwmt.SchemeThreads("NOPE"); got != 4 {
		t.Errorf("SchemeThreads(NOPE) = %d, want the documented default 4", got)
	}
}

// TestCustomSchemeRemoteMatchesInProcess is the service acceptance
// criterion: a custom registered tree submitted through Client to a
// vliwserve instance returns results identical to the in-process run
// modulo wall-clock fields.
func TestCustomSchemeRemoteMatchesInProcess(t *testing.T) {
	sch, err := vliwmt.NewScheme("e2ecustom",
		vliwmt.OpNode(
			vliwmt.ClusterNode(vliwmt.Thread(0), vliwmt.Thread(1), vliwmt.Thread(2)),
			vliwmt.Thread(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := vliwmt.RegisterScheme("e2ecustom", sch); err != nil {
		t.Fatal(err)
	}
	defer vliwmt.UnregisterScheme("e2ecustom")

	grid := vliwmt.Grid{
		Schemes:    []string{"e2ecustom", "2SC3"},
		Mixes:      []string{"LLHH"},
		InstrLimit: 20_000,
		Seed:       3,
	}
	local, err := vliwmt.Sweep(context.Background(), grid, nil)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	compare := func(t *testing.T, remote []vliwmt.SweepResult) {
		t.Helper()
		if len(remote) != len(local) {
			t.Fatalf("remote returned %d results, local %d", len(remote), len(local))
		}
		for i := range local {
			l, r := local[i], remote[i]
			if l.Err != nil || r.Err != nil {
				t.Fatalf("job %d errs: local %v, remote %v", i, l.Err, r.Err)
			}
			if !reflect.DeepEqual(l.Res, r.Res) {
				t.Errorf("job %d: remote result differs from in-process:\nlocal  %+v\nremote %+v", i, l.Res, r.Res)
			}
			if l.Job.Label != r.Job.Label || l.Job.Seed != r.Job.Seed {
				t.Errorf("job %d: envelope drifted: local %s/%d, remote %s/%d",
					i, l.Job.Label, l.Job.Seed, r.Job.Label, r.Job.Seed)
			}
		}
	}

	// Grid path: the client notices the registry-resolved name and
	// expands the grid client-side, inlining the tree.
	remote, err := vliwmt.NewClient(ts.URL).Sweep(context.Background(), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	compare(t, remote)

	// Jobs path with nothing registered anywhere: the typed Merge
	// field alone must carry the tree across the wire. The httptest
	// server shares this process's registry, so unregistering first
	// proves the spec is self-contained.
	jobs, err := grid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	vliwmt.UnregisterScheme("e2ecustom")
	for i := range jobs {
		if jobs[i].Scheme == "e2ecustom" {
			jobs[i].Merge = sch
		}
	}
	remote, err = vliwmt.NewClient(ts.URL).SweepJobs(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	compare(t, remote)
}
