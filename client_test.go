package vliwmt_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"vliwmt"
	"vliwmt/internal/fabric"
	"vliwmt/internal/server"
)

// cutter is a ResponseWriter that aborts the connection after limit
// newlines — a mid-stream disconnect as the client sees it.
type cutter struct {
	http.ResponseWriter
	limit int
	lines int
}

func (c *cutter) Write(b []byte) (int, error) {
	if c.lines >= c.limit {
		panic(http.ErrAbortHandler)
	}
	c.lines += strings.Count(string(b), "\n")
	return c.ResponseWriter.Write(b)
}

func (c *cutter) Flush() {
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// TestClientFollowDisconnectFallsBackToPolling cuts the NDJSON event
// stream after two lines: the client must fall back to polling and
// still deliver ordered, complete results with exactly one progress
// callback per job.
func TestClientFollowDisconnectFallsBackToPolling(t *testing.T) {
	g := runnerTestGrid()
	local, err := vliwmt.Sweep(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.Options{})
	defer srv.Close()
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			inner.ServeHTTP(&cutter{ResponseWriter: w, limit: 2}, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	var calls atomic.Int64
	last := 0
	remote, err := vliwmt.NewClient(ts.URL).Sweep(context.Background(), g, &vliwmt.SweepOptions{
		Progress: func(done, total int, r vliwmt.SweepResult) {
			calls.Add(1)
			if done != last+1 {
				t.Errorf("progress done=%d after %d", done, last)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatalf("sweep failed after stream cut: %v", err)
	}
	if n := calls.Load(); n != int64(len(local)) {
		t.Errorf("progress called %d times for %d jobs", n, len(local))
	}
	if got := sweepKeys(t, remote); !reflect.DeepEqual(got, sweepKeys(t, local)) {
		t.Error("results after stream cut differ from in-process run")
	}
}

// TestClientServerRestartFallsBackToPolling simulates a server restart
// window: the event stream dies instantly and the status endpoint
// answers 503 for a while before recovering. The polling fallback must
// ride the 503s out and return complete, ordered results.
func TestClientServerRestartFallsBackToPolling(t *testing.T) {
	g := runnerTestGrid()
	local, err := vliwmt.Sweep(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.Options{})
	defer srv.Close()
	inner := srv.Handler()
	var unavailable atomic.Int64
	unavailable.Store(5) // status calls rejected before "the restart finishes"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/events"):
			panic(http.ErrAbortHandler)
		case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/sweeps/"):
			if unavailable.Add(-1) >= 0 {
				http.Error(w, "restarting", http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		default:
			inner.ServeHTTP(w, r)
		}
	}))
	defer ts.Close()

	var calls int
	remote, err := vliwmt.NewClient(ts.URL).Sweep(context.Background(), g, &vliwmt.SweepOptions{
		Progress: func(done, total int, r vliwmt.SweepResult) { calls++ },
	})
	if err != nil {
		t.Fatalf("sweep failed across restart window: %v", err)
	}
	if calls != len(local) {
		t.Errorf("progress called %d times for %d jobs", calls, len(local))
	}
	if got := sweepKeys(t, remote); !reflect.DeepEqual(got, sweepKeys(t, local)) {
		t.Error("results across restart window differ from in-process run")
	}
}

// TestClientSubmitRetriesTransientFailures: the submission POST rides
// out transient 503s with backoff instead of failing the sweep.
func TestClientSubmitRetriesTransientFailures(t *testing.T) {
	g := runnerTestGrid()
	srv := server.New(server.Options{})
	defer srv.Close()
	inner := srv.Handler()
	var posts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && posts.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	remote, err := vliwmt.NewClient(ts.URL).Sweep(context.Background(), g, nil)
	if err != nil {
		t.Fatalf("submission did not survive transient 503s: %v", err)
	}
	if n := posts.Load(); n != 3 {
		t.Errorf("submission POSTed %d times, want 3 (two 503s then success)", n)
	}
	if len(remote) == 0 {
		t.Fatal("no results")
	}
}

// TestClientSubmitRejectsPermanentFailure: a 400 is not retried.
func TestClientSubmitRejectsPermanentFailure(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var posted atomic.Int64
	counting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posted.Add(1)
		http.Error(w, "no", http.StatusBadRequest)
	}))
	defer counting.Close()

	_, err := vliwmt.NewClient(counting.URL).Sweep(context.Background(), runnerTestGrid(), nil)
	if err == nil {
		t.Fatal("400 submission reported success")
	}
	if n := posted.Load(); n != 1 {
		t.Errorf("permanent 400 retried: %d POSTs, want 1", n)
	}
}

// TestClientHealth exercises the public Health probe against a live
// server's GET /v1/healthz.
func TestClientHealth(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	h, err := vliwmt.NewClient(ts.URL).Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Service != "vliwserve" {
		t.Errorf("health service %q, want vliwserve", h.Service)
	}
	if h.ActiveSweeps != 0 {
		t.Errorf("idle server reports %d active sweeps", h.ActiveSweeps)
	}
}

// TestFabricClientEndToEnd drives the full public path: a coordinator
// serving the wire API with two vliwserve workers behind it, submitted
// to via FabricClient — results bit-identical to in-process, with
// worker/shard attribution preserved across the wire.
func TestFabricClientEndToEnd(t *testing.T) {
	g := runnerTestGrid()
	local, err := vliwmt.Sweep(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}

	var workers []string
	for i := 0; i < 2; i++ {
		wsrv := server.New(server.Options{})
		wts := httptest.NewServer(wsrv.Handler())
		defer wts.Close()
		defer wsrv.Close()
		workers = append(workers, wts.URL)
	}
	coord, err := fabric.New(fabric.Options{Workers: workers, ShardJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	csrv := server.New(server.Options{Execute: coord.Run, Service: "vliwfabric"})
	defer csrv.Close()
	cts := httptest.NewServer(csrv.Handler())
	defer cts.Close()

	fc := vliwmt.NewFabricClient(cts.URL)
	if h, err := fc.Health(context.Background()); err != nil || h.Service != "vliwfabric" {
		t.Fatalf("coordinator health: %+v, %v", h, err)
	}
	remote, err := fc.Sweep(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepKeys(t, remote); !reflect.DeepEqual(got, sweepKeys(t, local)) {
		t.Error("fabric results differ from in-process run")
	}
	for _, r := range remote {
		if r.Worker == "" || r.Shard == 0 {
			t.Fatalf("job %d lost its attribution over the wire: worker=%q shard=%d",
				r.Index, r.Worker, r.Shard)
		}
	}
}
