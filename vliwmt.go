// Package vliwmt is a cycle-level model of multithreaded clustered VLIW
// processors and of the thread merging schemes from Gupta, Sánchez and
// Llosa, "Thread Merging Schemes for Multithreaded Clustered VLIW
// Processors" (ICPP 2009).
//
// The library bundles everything needed to reproduce and extend the
// paper's evaluation:
//
//   - a VEX/Lx-like clustered VLIW machine model (Machine),
//   - a dataflow-IR kernel builder and optimising compiler
//     (NewKernel, CompileKernel) standing in for the VEX C compiler,
//   - the merge-control schemes — SMT, CSMT, and the paper's sixteen
//     cascade/tree combinations such as 2SC3 — selectable by name or
//     built as first-class typed merge trees (Scheme, ParseScheme,
//     CascadeScheme, OpNode/ClusterNode, RegisterScheme),
//   - a multithreaded cycle-level simulator with shared caches, taken
//     branch squash and a multitasking OS model (Run, RunMix),
//   - the twelve Table 1 benchmarks and nine Table 2 workload mixes
//     (Benchmarks, Mixes),
//   - a gate-level hardware cost model of every merge control
//     (SchemeCost, CostScaling),
//   - a parallel sweep engine that runs scheme x mix experiment grids on
//     a worker pool with a shared compile cache and deterministic
//     aggregation (Sweep, Grid, SweepResult),
//   - a long-lived session API (Runner) and an HTTP client (Client) that
//     submits the same grids to a remote vliwserve instance,
//   - a persistent, content-addressed result store (WithResultStore)
//     that serves repeated jobs from disk, and a golden conformance
//     harness (JobKey, SnapshotResults, DiffSnapshots, cmd/vliwdiff,
//     cmd/vliwgolden) that makes simulator regressions diffable across
//     commits.
//
// The quickest start, by scheme name:
//
//	cfg := vliwmt.DefaultConfig()
//	cfg.Scheme = "2SC3"
//	res, err := vliwmt.RunMix(cfg, "LLHH")
//	fmt.Println(res.IPC)
//
// # First-class merge schemes
//
// Scheme names are one spelling of a typed value: a Scheme wraps the
// merge-control tree itself. The same run with a typed scheme:
//
//	sch, err := vliwmt.ParseScheme("2SC3") // or "C3(S(T0,T1),T2,T3)"
//	cfg := vliwmt.DefaultConfig()
//	cfg.Merge = sch
//	res, err := vliwmt.RunMix(cfg, "LLHH")
//
// Beyond the paper's sixteen names, trees compose freely from
// constructors (CascadeScheme, BalancedScheme, ParallelCSMT) or node
// builders:
//
//	sch, err := vliwmt.NewScheme("hybrid",
//	    vliwmt.OpNode(vliwmt.ClusterNode(vliwmt.Thread(0), vliwmt.Thread(1), vliwmt.Thread(2)),
//	        vliwmt.Thread(3)))
//	vliwmt.RegisterScheme("hybrid", sch) // "hybrid" now works everywhere a name does
//
// Registered names resolve process-wide — Config.Scheme, Grid.Schemes,
// Cost, the CLIs — and Client inlines their trees on the wire, so a
// remote vliwserve needs no matching registration. Canonical tree
// expressions (the grammar DescribeScheme emits, e.g.
// "C(S(T0,T1),T2,T3)") are accepted anywhere a name is.
//
// # Runners and the top-level functions
//
// A Runner is a long-lived experiment session whose methods (Run,
// RunMix, Sweep, SweepJobs) share one compile cache, configured with
// functional options — workers, cache, seed policy, progress sink,
// result persistence:
//
//	r := vliwmt.NewRunner(vliwmt.WithWorkers(8), vliwmt.WithSeed(7))
//	res, err := r.RunMix(cfg, "LLHH")          // compiles LLHH once
//	res, err = r.RunMix(cfg, "LLHH")           // served from the cache
//	results, err := r.Sweep(ctx, vliwmt.Grid{})
//
// The package-level Run, RunMix, Sweep and SweepJobs functions are thin
// wrappers over a default Runner attached to the process-wide compile
// cache; they remain the simplest entry point and their behaviour is
// unchanged. Construct your own Runner when you want an isolated or
// explicitly shared cache, a fixed worker budget, a default seed, a
// progress sink that outlives one call, or on-disk result persistence
// (WithResultStore).
//
// Sweeps can also run remotely: cmd/vliwserve serves the sweep engine
// over HTTP (POST /v1/sweeps, status, NDJSON progress events), and
// Client submits a Grid to it, returning the same deterministic
// SweepResults as an in-process call — bit-identical modulo wall-clock
// fields, at any worker count on either side of the wire.
package vliwmt

import (
	"context"
	"fmt"

	"vliwmt/internal/cache"
	"vliwmt/internal/compiler"
	"vliwmt/internal/cost"
	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/program"
	"vliwmt/internal/sim"
	"vliwmt/internal/sweep"
	"vliwmt/internal/workload"
)

// Machine describes the clustered VLIW processor (clusters, issue width,
// functional units, latencies, branch penalty).
type Machine = isa.Machine

// DefaultMachine returns the paper's 4-cluster, 4-issue-per-cluster
// configuration.
func DefaultMachine() Machine { return isa.Default() }

// CacheConfig describes one cache (size, line, ways, miss penalty).
type CacheConfig = cache.Config

// DefaultCache returns the paper's 64KB 4-way 20-cycle-miss cache.
func DefaultCache() CacheConfig { return cache.DefaultConfig() }

// Config parameterises a simulation run.
type Config = sim.Config

// DefaultConfig returns the paper's processor and OS configuration:
// 4 hardware contexts, 4-thread SMT merging, 64KB caches, 1M-cycle
// timeslices and a 1M-instruction budget.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Task is one software thread: a name and a compiled program.
type Task = sim.Task

// Result carries the outcome of a run: cycles, retired operations, IPC,
// the merge histogram, per-thread statistics and cache statistics.
type Result = sim.Result

// Program is compiled clustered-VLIW code ready for simulation.
type Program = program.Program

// defaultRunner backs the package-level Run/RunMix/Sweep functions: a
// session on the process-wide compile cache, so top-level calls and
// Runners constructed with WithSharedCache reuse each other's kernels.
var defaultRunner = NewRunner(WithSharedCache())

// Run simulates the given software threads under cfg.
func Run(cfg Config, tasks []Task) (*Result, error) { return defaultRunner.Run(cfg, tasks) }

// Benchmark describes one of the paper's Table 1 benchmarks.
type Benchmark = workload.Benchmark

// Benchmarks returns the twelve Table 1 benchmarks.
func Benchmarks() []Benchmark { return workload.Benchmarks() }

// CompileBenchmark compiles the named Table 1 benchmark for machine m.
func CompileBenchmark(name string, m Machine) (*Program, error) {
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return b.Compile(m)
}

// Mix is one of the paper's Table 2 workload configurations.
type Mix = workload.Mix

// Mixes returns the nine Table 2 workload mixes (LLLL .. HHHH).
func Mixes() []Mix { return workload.Mixes() }

// MixByName returns the named workload mix: a Table 2 name, or a
// canonical generated "genmix:" name (GeneratedMix) expanded into four
// generated benchmarks.
func MixByName(name string) (Mix, error) { return workload.MixByName(name) }

// RunMix compiles the named Table 2 mix (through the process-wide
// compile cache) and simulates it under cfg.
func RunMix(cfg Config, mixName string) (*Result, error) {
	return defaultRunner.RunMix(cfg, mixName)
}

// Schemes returns the sixteen merging schemes of the paper's Figure 9,
// in its order. Scheme names parse as described in the paper: "3SCC" is a
// three-level cascade (SMT first, then two CSMT levels), "2SC3" merges two
// threads by SMT and the result with two more threads by parallel CSMT,
// "C4" is single-level parallel CSMT, "2CC".."2SS" are balanced trees, and
// "1S" is the 2-thread SMT reference.
func Schemes() []string { return merge.PaperSchemes4() }

// SchemeThreads returns how many hardware threads the named scheme
// merges, and 4 when the name cannot be resolved (the paper's machine
// width) — including for the IMT/BMT baselines, which run at any
// width.
//
// Deprecated: the silent 4-thread fallback cannot distinguish
// "merges 4 threads" from "unknown name"; it is kept for existing
// callers that size contexts before validation. Prefer
// ParseScheme(name) and Scheme.Ports, which report unknown names as
// errors — as Config and SweepJob resolution now does.
func SchemeThreads(name string) int { return merge.PortsFor(name) }

// DescribeScheme renders the merge tree of a scheme in the canonical
// grammar ParseScheme accepts back, e.g. "C3(S(T0,T1),T2,T3)" for
// 2SC3. Registered custom schemes and tree expressions resolve too;
// the IMT/BMT baselines, which have no tree, yield a prose
// description.
func DescribeScheme(name string) (string, error) {
	s, err := merge.Resolve(name)
	if err != nil {
		return "", err
	}
	if s.Tree() == nil {
		return s.Describe(), nil
	}
	return s.String(), nil
}

// SchemeCost is the gate-level hardware cost of one merge control.
type SchemeCost = cost.SchemeCost

// Cost computes the transistor count and gate-delay depth of the named
// scheme's thread merge control on machine m (the paper's Figure 9).
// The name resolves like ParseScheme, so registered custom schemes and
// tree expressions are costed too; see SchemeCostFor for the typed
// equivalent.
func Cost(m Machine, scheme string) (SchemeCost, error) {
	return cost.ForScheme(m, scheme)
}

// ControlPoint is one thread-count sample of the merge-control scaling
// comparison (the paper's Figure 5).
type ControlPoint = cost.ControlPoint

// CostScaling compares CSMT-serial, CSMT-parallel and SMT merge controls
// from minThreads to maxThreads on machine m.
func CostScaling(m Machine, minThreads, maxThreads int) ([]ControlPoint, error) {
	return cost.ControlScaling(m, minThreads, maxThreads)
}

// KernelBuilder constructs custom workload kernels in the dataflow IR:
// blocks of operations with explicit dependencies, loop/branch behaviours
// and memory address streams.
type KernelBuilder = ir.Builder

// NewKernel starts a custom kernel with the given name.
func NewKernel(name string) *KernelBuilder { return ir.NewBuilder(name) }

// Kernel is a finished IR function, ready to compile.
type Kernel = ir.Function

// MemStream describes the address behaviour of a memory reference site.
type MemStream = ir.MemStream

// Address stream generators for MemStream.Kind.
const (
	StreamStride = ir.StreamStride
	StreamRandom = ir.StreamRandom
	StreamChase  = ir.StreamChase
)

// Branch behaviours for KernelBuilder.Branch.
var (
	Loop      = ir.Loop
	Bernoulli = ir.Bernoulli
	Always    = ir.Always
	Never     = ir.Never
)

// CompileKernel lowers a kernel for machine m, optionally unrolling
// self-loop blocks by the given factor (values below 2 disable unrolling).
func CompileKernel(k *Kernel, m Machine, unroll int) (*Program, error) {
	return compiler.Compile(k, compiler.Options{Machine: m, Unroll: unroll})
}

// Grid declares a scheme x workload-mix cross-product for Sweep: which
// merge schemes to evaluate on which Table 2 mixes, on what machine and
// budget. Zero-valued fields assume the paper's defaults; see the field
// documentation for seeding modes (per-job derived seeds versus a shared
// seed for scheme-identity comparisons).
type Grid = sweep.Grid

// SweepJob is one independent simulation of a sweep: a benchmark list
// run under one merge scheme on one machine configuration.
type SweepJob = sweep.Job

// SweepResult is one job's outcome. Results are always delivered ordered
// by job index, independent of completion order, so aggregated output is
// bit-identical at any worker count.
type SweepResult = sweep.Result

// SweepOptions tunes sweep execution.
type SweepOptions struct {
	// Workers bounds the worker pool; 0 selects runtime.NumCPU().
	Workers int
	// Progress, when set, is called after each job completes (done jobs,
	// total jobs, the completed result). Calls are serialised.
	Progress func(done, total int, r SweepResult)
	// ResultDir, when set, roots a persistent result store there:
	// previously completed jobs are served from disk (marked Cached)
	// and fresh simulations are persisted. See WithResultStore.
	ResultDir string
	// Batch caps how many shape-compatible jobs are advanced through
	// one batched cycle loop: 0 groups automatically, 1 disables
	// batching. Results are bit-identical at every setting; see
	// WithBatch.
	Batch int
}

// runner builds a one-call Runner on the process-wide compile cache
// from legacy SweepOptions.
func (o SweepOptions) runner() *Runner {
	return NewRunner(WithSharedCache(), WithWorkers(o.Workers), WithProgress(o.Progress),
		WithResultStore(o.ResultDir), WithBatch(o.Batch))
}

// Sweep expands the grid into jobs and executes them on a bounded worker
// pool with a shared compile cache: each benchmark kernel is compiled
// once per sweep, independent simulations run in parallel, and results
// come back deterministically ordered. Cancelling ctx stops dispatching
// and returns the partial results with ctx's error. It is a thin
// wrapper over Runner.Sweep on the process-wide compile cache.
func Sweep(ctx context.Context, g Grid, opts *SweepOptions) ([]SweepResult, error) {
	var o SweepOptions
	if opts != nil {
		o = *opts
	}
	return o.runner().Sweep(ctx, g)
}

// SweepJobs executes an explicit job set on the worker pool; see Sweep.
func SweepJobs(ctx context.Context, jobs []SweepJob, opts *SweepOptions) ([]SweepResult, error) {
	var o SweepOptions
	if opts != nil {
		o = *opts
	}
	return o.runner().SweepJobs(ctx, jobs)
}

// SingleThreadIPC is a convenience wrapper: it runs one program alone on
// the machine and reports its IPC, with real caches (perfect=false) or an
// ideal memory system (perfect=true) — the paper's IPCr and IPCp.
func SingleThreadIPC(m Machine, p *Program, instrLimit int64, perfect bool) (float64, error) {
	cfg := DefaultConfig()
	cfg.Machine = m
	cfg.Contexts = 1
	cfg.PerfectMemory = perfect
	cfg.InstrLimit = instrLimit
	res, err := Run(cfg, []Task{{Name: p.Name, Prog: p}})
	if err != nil {
		return 0, err
	}
	if res.TimedOut {
		return 0, fmt.Errorf("vliwmt: run timed out after %d cycles", res.Cycles)
	}
	return res.IPC, nil
}
