package vliwmt_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"vliwmt"
	"vliwmt/internal/server"
)

func runnerTestGrid() vliwmt.Grid {
	return vliwmt.Grid{
		Schemes:    []string{"2SC3", "3SSS"},
		Mixes:      []string{"LLHH", "HHHH"},
		InstrLimit: 5_000,
		Seed:       7,
	}
}

// resultKey renders every deterministic field of a result; Elapsed is
// deliberately excluded (the only wall-clock field).
func resultKey(t *testing.T, r vliwmt.SweepResult) string {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("job %d (%s): %v", r.Index, r.Job.Describe(), r.Err)
	}
	return fmt.Sprintf("%d %s seed=%d cycles=%d instrs=%d ops=%d ipc=%.12f hist=%v ic=%+v dc=%+v",
		r.Index, r.Job.Label, r.Job.Seed, r.Res.Cycles, r.Res.Instrs, r.Res.Ops, r.Res.IPC,
		r.Res.MergeHist, r.Res.ICache, r.Res.DCache)
}

func sweepKeys(t *testing.T, results []vliwmt.SweepResult) []string {
	t.Helper()
	keys := make([]string, len(results))
	for i, r := range results {
		keys[i] = resultKey(t, r)
	}
	return keys
}

// TestRunnerSharesCompileCacheAcrossCalls checks the session contract:
// repeated RunMix and Sweep calls on one Runner compile each
// (benchmark, machine) kernel exactly once, and results are identical
// to the top-level functions.
func TestRunnerSharesCompileCacheAcrossCalls(t *testing.T) {
	r := vliwmt.NewRunner()
	cfg := vliwmt.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 5_000
	cfg.TimesliceCycles = 1_000

	first, err := r.RunMix(cfg, "LLHH")
	if err != nil {
		t.Fatal(err)
	}
	compiles, _ := r.Cache().Stats()
	if compiles == 0 || compiles > 4 {
		t.Fatalf("first RunMix compiled %d kernels, want 1..4", compiles)
	}
	second, err := r.RunMix(cfg, "LLHH")
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := r.Cache().Stats(); again != compiles {
		t.Errorf("second RunMix recompiled: %d -> %d", compiles, again)
	}
	if first.IPC != second.IPC || first.Cycles != second.Cycles {
		t.Errorf("cached compile changed the simulation: %v vs %v", first.IPC, second.IPC)
	}

	// The top-level wrapper produces the identical result.
	top, err := vliwmt.RunMix(cfg, "LLHH")
	if err != nil {
		t.Fatal(err)
	}
	if top.IPC != first.IPC || top.Cycles != first.Cycles {
		t.Errorf("top-level RunMix differs from Runner.RunMix: %v vs %v", top.IPC, first.IPC)
	}

	// A Sweep on the same Runner reuses the kernels RunMix compiled.
	if _, err := r.Sweep(context.Background(), vliwmt.Grid{
		Schemes: []string{"2SC3"}, Mixes: []string{"LLHH"}, InstrLimit: 2_000,
	}); err != nil {
		t.Fatal(err)
	}
	if again, _ := r.Cache().Stats(); again != compiles {
		t.Errorf("Sweep after RunMix recompiled: %d -> %d", compiles, again)
	}
}

// TestRunnerSeedPolicy checks WithSeed fills only grids that left Seed
// zero.
func TestRunnerSeedPolicy(t *testing.T) {
	r := vliwmt.NewRunner(vliwmt.WithSeed(99))
	g := vliwmt.Grid{Schemes: []string{"1S"}, Mixes: []string{"LLHH"}, InstrLimit: 1_000, SharedSeed: true}
	results, err := r.Sweep(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Job.Seed != 99 {
		t.Errorf("default seed not applied: %d", results[0].Job.Seed)
	}
	g.Seed = 3
	results, err = r.Sweep(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Job.Seed != 3 {
		t.Errorf("explicit seed overridden: %d", results[0].Job.Seed)
	}
}

// TestRunnerResultStoreServesRepeats checks result persistence across
// Runner lifetimes: a second Runner pointed at the same store serves
// the identical sweep from disk — per job, without compiling or
// simulating — with every result marked Cached and the original
// elapsed times replayed.
func TestRunnerResultStoreServesRepeats(t *testing.T) {
	dir := t.TempDir()
	g := runnerTestGrid()

	first := vliwmt.NewRunner(vliwmt.WithResultStore(dir))
	a, err := first.Sweep(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a {
		if r.Cached {
			t.Errorf("cold job %s claims to be cached", r.Job.Describe())
		}
	}
	if st := first.Store().Stats(); st.Puts != int64(len(a)) || st.Hits != 0 {
		t.Errorf("cold sweep store stats: %+v, want %d puts, 0 hits", st, len(a))
	}

	var replayed int
	second := vliwmt.NewRunner(
		vliwmt.WithResultStore(dir),
		vliwmt.WithProgress(func(done, total int, r vliwmt.SweepResult) { replayed++ }),
	)
	b, err := second.Sweep(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if compiles, _ := second.Cache().Stats(); compiles != 0 {
		t.Errorf("disk-served sweep compiled %d kernels, want 0", compiles)
	}
	if st := second.Store().Stats(); st.Hits != int64(len(a)) || st.Misses != 0 {
		t.Errorf("warm sweep store stats: %+v, want %d hits, 0 misses", st, len(a))
	}
	if replayed != len(a) {
		t.Errorf("progress made %d calls, want %d", replayed, len(a))
	}
	if !reflect.DeepEqual(sweepKeys(t, a), sweepKeys(t, b)) {
		t.Error("disk-served results differ from the original run")
	}
	for i, r := range b {
		if !r.Cached {
			t.Errorf("warm job %s not marked cached", r.Job.Describe())
		}
		if r.Elapsed != a[i].Elapsed {
			t.Errorf("warm job %s elapsed %v, want the cold run's %v replayed", r.Job.Describe(), r.Elapsed, a[i].Elapsed)
		}
	}

	// A different seed is a different experiment and simulates afresh.
	g.Seed = 8
	if _, err := second.Sweep(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if compiles, _ := second.Cache().Stats(); compiles == 0 {
		t.Error("different-seed sweep was wrongly served from disk")
	}

	// A partial overlap re-simulates only the new jobs: the same grid
	// with one extra mix serves the old jobs from disk.
	g = runnerTestGrid()
	g.Mixes = append(g.Mixes, "LLLL")
	third := vliwmt.NewRunner(vliwmt.WithResultStore(dir))
	c, err := third.Sweep(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	var cached int
	for _, r := range c {
		if r.Cached {
			cached++
		}
	}
	if cached != len(a) {
		t.Errorf("overlapping sweep reused %d jobs, want %d", cached, len(a))
	}
}

// TestClientSweepMatchesInProcess runs the acceptance criterion
// in-process: the same grid through vliwmt.Client against a live
// server and through vliwmt.Sweep must agree on every deterministic
// field, at several worker counts, with progress streamed to the
// client.
func TestClientSweepMatchesInProcess(t *testing.T) {
	g := runnerTestGrid()
	local, err := vliwmt.Sweep(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sweepKeys(t, local)

	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := vliwmt.NewClient(ts.URL)
	if err := client.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var progress int
		remote, err := client.Sweep(context.Background(), g, &vliwmt.SweepOptions{
			Workers: workers,
			Progress: func(done, total int, r vliwmt.SweepResult) {
				progress++
				if total != len(local) {
					t.Errorf("progress total %d, want %d", total, len(local))
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if progress != len(local) {
			t.Errorf("workers=%d: %d progress events, want %d", workers, progress, len(local))
		}
		if got := sweepKeys(t, remote); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: remote sweep differs from in-process:\n%s\nvs\n%s",
				workers, strings.Join(got, "\n"), strings.Join(want, "\n"))
		}
	}

	// Explicit job sets travel too.
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := client.SweepJobs(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepKeys(t, remote); !reflect.DeepEqual(got, want) {
		t.Error("SweepJobs over the wire differs from in-process")
	}
}

// TestClientRejectsBadGrid checks server-side validation surfaces as a
// descriptive client error.
func TestClientRejectsBadGrid(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := vliwmt.NewClient(ts.URL)
	_, err := client.Sweep(context.Background(), vliwmt.Grid{Schemes: []string{"bogus!"}}, nil)
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("bad scheme error not surfaced: %v", err)
	}
}
