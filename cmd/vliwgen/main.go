// Command vliwgen emits synthetic workloads from the deterministic
// generator in internal/wgen: kernel names and profiles, Table-2-style
// generated mixes, declarative sweep grids over generated mixes, and
// multi-tenant request-stream scenarios — all as JSON consumable by
// vliwsweep (-jobs) and vliwserve (POST /v1/sweeps).
//
//	vliwgen -emit kernels -n 8 -class H -seed 1     # canonical names + profiles
//	vliwgen -emit kernels -n 1 -ir                  # include the generated IR
//	vliwgen -emit mixes -n 4 -combos LLHH,HHHH      # genmix names
//	vliwgen -emit grid -combos LLHH -schemes 2SC3,C4 | vliwsweep -jobs -
//	vliwgen -emit stream -requests 64 -tenants 3 | vliwsweep -jobs -
//
// Everything vliwgen prints is a pure function of its flags: the same
// invocation always emits byte-identical JSON, so generated scenarios
// are reproducible from the command line that made them. Benchmarks
// travel as canonical "gen:" names (mixes as "genmix:" names), which
// every consumer — vliwsweep, vliwserve, the fabric — regenerates
// deterministically; no kernel bytes cross the wire.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vliwmt"
	"vliwmt/internal/api"
	"vliwmt/internal/merge"
	"vliwmt/internal/wgen"
)

// kernelDoc is one emitted kernel: its canonical name, the profile it
// encodes, and optionally the generated IR itself.
type kernelDoc struct {
	Name    string         `json:"name"`
	Profile wgen.Profile   `json:"profile"`
	Seed    uint64         `json:"seed"`
	IR      *vliwmt.Kernel `json:"ir,omitempty"`
}

// mixDoc is one emitted generated mix.
type mixDoc struct {
	Name    string    `json:"name"`
	Members [4]string `json:"members"`
}

// parseClasses expands -class: empty cycles L,M,H; otherwise a comma
// list of class letters.
func parseClasses(s string) ([]wgen.Class, error) {
	if s == "" {
		return []wgen.Class{wgen.Low, wgen.Medium, wgen.High}, nil
	}
	var out []wgen.Class
	for _, part := range strings.Split(s, ",") {
		c, err := wgen.ParseClass(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// splitList splits a comma list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run() error {
	var (
		emit     = flag.String("emit", "kernels", "what to emit: kernels, mixes, grid or stream")
		n        = flag.Int("n", 4, "how many kernels or mixes to emit")
		class    = flag.String("class", "", "ILP classes for -emit kernels, comma-separated L/M/H (empty: cycle through all three)")
		combos   = flag.String("combos", "", "4-letter ILP-class combinations for mixes/grid/stream, comma-separated (empty: the default palette)")
		schemes  = flag.String("schemes", "", "merge schemes for -emit grid (grid default: the paper's sixteen) and -emit stream (stream default: none, single-context multitasking)")
		seed     = flag.Uint64("seed", 1, "generator seed; every emitted document derives from it deterministically")
		instr    = flag.Int64("instr", 0, "per-thread instruction budget for grid/stream jobs (0: the sweep default of 300k)")
		requests = flag.Int("requests", 32, "stream length for -emit stream")
		tenants  = flag.Int("tenants", 1, "tenant count for -emit stream")
		mean     = flag.Float64("mean", 10_000, "mean exponential interarrival in cycles for -emit stream")
		withIR   = flag.Bool("ir", false, "include the generated IR in -emit kernels output")
	)
	flag.Parse()
	if *n < 1 || *n > 4096 {
		return fmt.Errorf("-n %d outside [1, 4096]", *n)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	switch *emit {
	case "kernels":
		cls, err := parseClasses(*class)
		if err != nil {
			return err
		}
		rng := wgen.NewRand(*seed)
		docs := make([]kernelDoc, *n)
		for i := range docs {
			p := wgen.RandomProfile(rng, cls[i%len(cls)])
			ks := rng.Uint64()
			d := kernelDoc{Name: wgen.BenchmarkName(p, ks), Profile: p.Quantize(), Seed: ks}
			if *withIR {
				d.IR = wgen.MustGenerate(p, ks)
			}
			docs[i] = d
		}
		return enc.Encode(docs)

	case "mixes":
		palette := splitList(*combos)
		if len(palette) == 0 {
			palette = wgen.DefaultCombos
		}
		rng := wgen.NewRand(*seed)
		docs := make([]mixDoc, *n)
		for i := range docs {
			combo := palette[i%len(palette)]
			ms := rng.Uint64()
			name, err := wgen.MixName(combo, ms)
			if err != nil {
				return err
			}
			members, err := wgen.MixMembers(combo, ms)
			if err != nil {
				return err
			}
			docs[i] = mixDoc{Name: name, Members: members}
		}
		return enc.Encode(docs)

	case "grid":
		palette := splitList(*combos)
		if len(palette) == 0 {
			palette = wgen.DefaultCombos
		}
		schemeList := splitList(*schemes)
		for _, s := range schemeList {
			if _, err := merge.Resolve(s); err != nil {
				return fmt.Errorf("scheme %s: %w", s, err)
			}
		}
		rng := wgen.NewRand(*seed)
		var mixNames []string
		for i := 0; i < *n; i++ {
			name, err := wgen.MixName(palette[i%len(palette)], rng.Uint64())
			if err != nil {
				return err
			}
			mixNames = append(mixNames, name)
		}
		req := api.SweepRequest{
			Version: api.Version,
			Grid: &api.Grid{
				Schemes:    schemeList,
				Mixes:      mixNames,
				InstrLimit: *instr,
				Seed:       *seed,
			},
		}
		return api.EncodeSweepRequest(os.Stdout, req)

	case "stream":
		reqs, err := wgen.GenerateStream(wgen.StreamOptions{
			Requests:         *requests,
			Tenants:          *tenants,
			MeanInterarrival: *mean,
			Combos:           splitList(*combos),
			Schemes:          splitList(*schemes),
		}, *seed)
		if err != nil {
			return err
		}
		for _, s := range splitList(*schemes) {
			if _, err := merge.Resolve(s); err != nil {
				return fmt.Errorf("scheme %s: %w", s, err)
			}
		}
		jobs := vliwmt.StreamJobs(reqs, *instr)
		wire := make([]api.Job, len(jobs))
		for i, j := range jobs {
			wire[i] = api.JobFrom(j)
		}
		return api.EncodeSweepRequest(os.Stdout, api.SweepRequest{Version: api.Version, Jobs: wire})

	default:
		return fmt.Errorf("unknown -emit %q (want kernels, mixes, grid or stream)", *emit)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vliwgen: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}
