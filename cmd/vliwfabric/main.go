// Command vliwfabric runs the distributed sweep coordinator: an
// ordinary vliwserve endpoint whose sweeps execute on a pool of remote
// vliwserve workers instead of the local engine. Jobs are sharded by
// result-store content key, fanned out over the v3 wire format, work-
// stolen between workers, retried with backoff, and merged back in
// index order — bit-identical to a single-box run of the same grid.
//
// Usage:
//
//	vliwfabric -workers 10.0.0.1:8080,10.0.0.2:8080
//	vliwfabric -workers-file workers.txt -results /var/cache/vliwmt
//	vliwsweep -fabric coordinator:8080 ...      # submit through it
//
// The coordinator speaks the same endpoints as vliwserve (POST
// /v1/sweeps, NDJSON /events, GET /v1/healthz, GET /metrics with the
// fabric_* instrument families), so every existing client — vliwsweep,
// vliwmt.Client, another coordinator — works unchanged against it.
//
// A workers file lists one address per line; blank lines and
// #-comments are ignored. -results names a shared result store: jobs
// already stored are served from the coordinator without touching a
// worker, and every merged result is written back.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vliwmt/internal/fabric"
	"vliwmt/internal/resultstore"
	"vliwmt/internal/server"
	"vliwmt/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vliwfabric: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		workers     = flag.String("workers", "", "comma-separated worker addresses (host:port or URLs)")
		workersFile = flag.String("workers-file", "", "file with one worker address per line (# comments)")
		results     = flag.String("results", "", "directory for the shared result store (empty: disabled)")
		shardJobs   = flag.Int("shard-jobs", 0, "unique jobs per shard (0: fabric default)")
		retries     = flag.Int("retries", 0, "max re-dispatches per shard (0: fabric default)")
		ping        = flag.Duration("ping", 0, "worker health-probe interval (0: fabric default)")
		quiet       = flag.Bool("quiet", false, "suppress request and sweep lifecycle logging")
		debug       = flag.Bool("debug", true, "serve GET /metrics (Prometheus text format) and /debug/pprof/")
		logLevel    = flag.String("log-level", "info", "structured-trace level: debug, info, warn or error")
		logJSON     = flag.Bool("log-json", false, "emit structured traces as JSON lines instead of text")
	)
	flag.Parse()

	if _, err := telemetry.ConfigureSlog(os.Stderr, *logLevel, *logJSON); err != nil {
		log.Fatal(err)
	}
	pool, err := workerList(*workers, *workersFile)
	if err != nil {
		log.Fatal(err)
	}

	var store *resultstore.Store
	if *results != "" {
		store = resultstore.Open(*results)
	}
	coord, err := fabric.New(fabric.Options{
		Workers:      pool,
		Store:        store,
		ShardJobs:    *shardJobs,
		MaxRetries:   *retries,
		PingInterval: *ping,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	opts := server.Options{
		Store:        store,
		Execute:      coord.Run,
		Service:      "vliwfabric",
		DisableDebug: !*debug,
	}
	if !*quiet {
		opts.Log = log.Default()
	}
	srv := server.New(opts)
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("listening on http://%s, %d workers: %s",
		ln.Addr(), len(pool), strings.Join(coord.Workers(), ", "))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		stop()
		// Cancel in-flight sweeps first so wait-mode handlers return,
		// then drain the listener.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	log.Print("shut down")
}

// workerList merges the -workers flag and -workers-file contents into
// one address pool.
func workerList(flat, file string) ([]string, error) {
	var pool []string
	for _, a := range strings.Split(flat, ",") {
		if a = strings.TrimSpace(a); a != "" {
			pool = append(pool, a)
		}
	}
	if file != "" {
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			pool = append(pool, line)
		}
	}
	if len(pool) == 0 {
		return nil, errors.New("no workers: set -workers or -workers-file")
	}
	return pool, nil
}
