// Command paperfigs regenerates every table and figure of the paper's
// evaluation section from the simulator and the gate-level cost model:
//
//	Table 1   per-benchmark IPCr/IPCp
//	Table 2   workload mixes
//	Figure 4  SMT IPC vs hardware thread count
//	Figure 5  merge control cost vs thread count (CSMT SL/PL, SMT)
//	Figure 6  SMT advantage over CSMT per workload
//	Figure 9  cost of the sixteen merging schemes
//	Figure 10 per-workload IPC of every scheme
//	Figure 11 performance vs transistors
//	Figure 12 performance vs gate delays
//
// Absolute values depend on this repository's synthetic kernels and gate
// library; the relations between schemes are the reproduction target
// (see EXPERIMENTS.md).
//
// Usage:
//
//	paperfigs -all -instrs 2000000
//	paperfigs -fig10 -fig11
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"vliwmt/internal/experiments"
	"vliwmt/internal/profiling"
	"vliwmt/internal/report"
	"vliwmt/internal/sweep"
	"vliwmt/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")
	var (
		all        = flag.Bool("all", false, "emit every table and figure")
		table1     = flag.Bool("table1", false, "Table 1")
		table2     = flag.Bool("table2", false, "Table 2")
		fig4       = flag.Bool("fig4", false, "Figure 4")
		fig5       = flag.Bool("fig5", false, "Figure 5")
		fig6       = flag.Bool("fig6", false, "Figure 6")
		fig9       = flag.Bool("fig9", false, "Figure 9")
		fig10      = flag.Bool("fig10", false, "Figure 10")
		fig11      = flag.Bool("fig11", false, "Figure 11")
		fig12      = flag.Bool("fig12", false, "Figure 12")
		ext8       = flag.Bool("ext8", false, "extension: 8-thread scaling (beyond the paper)")
		instrs     = flag.Int64("instrs", 500_000, "per-thread instruction budget")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		workers    = flag.Int("workers", 0, "sweep worker pool size (0: all cores); results are identical at any count")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the regeneration to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	)
	flag.Parse()
	stopProf, perr := profiling.Start(*cpuprofile, *memprofile)
	if perr != nil {
		log.Fatal(perr)
	}
	// Fatal paths go through fatal() so an error mid-regeneration still
	// flushes the profiles instead of leaving a truncated cpu.prof.
	fatal := func(v ...any) {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
		log.Fatal(v...)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()
	opts := experiments.DefaultOptions().Scale(*instrs)
	opts.Seed = *seed
	opts.Workers = *workers
	effWorkers := sweep.PoolSize(*workers)
	w := os.Stdout

	// timed prints each figure's wall-clock cost, making the sweep
	// engine's parallel speedup visible: compare -workers 1 with the
	// default.
	timed := func(name string) func() {
		start := time.Now()
		return func() {
			fmt.Fprintf(w, "[%s: %.2fs wall clock at %d workers]\n\n", name, time.Since(start).Seconds(), effWorkers)
		}
	}

	any := false
	want := func(f *bool) bool {
		if *all || *f {
			any = true
			return true
		}
		return false
	}

	if want(table1) {
		done := timed("Table 1")
		rows, err := experiments.Table1(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "== Table 1: benchmarks (measured vs paper) ==")
		var tr [][]string
		for _, r := range rows {
			tr = append(tr, []string{r.Name, r.Class.String(), r.Description,
				report.F(r.IPCr), report.F(r.IPCp),
				report.F(r.PaperIPCr), report.F(r.PaperIPCp)})
		}
		report.Table(w, []string{"benchmark", "ilp", "description", "IPCr", "IPCp", "paper IPCr", "paper IPCp"}, tr)
		done()
	}

	if want(table2) {
		fmt.Fprintln(w, "== Table 2: workload configurations ==")
		var tr [][]string
		for _, m := range workload.Mixes() {
			tr = append(tr, append([]string{m.Name}, m.Members[:]...))
		}
		report.Table(w, []string{"ilp comb", "thread 0", "thread 1", "thread 2", "thread 3"}, tr)
		fmt.Fprintln(w)
	}

	if want(fig4) {
		done := timed("Figure 4")
		f, err := experiments.Fig4(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "== Figure 4: SMT performance vs thread count ==")
		report.BarChart(w, "average IPC over the nine workloads",
			[]string{"Single-thread", "2-Thread SMT (1S)", "4-Thread SMT (3SSS)"},
			[]float64{f.SingleThread, f.TwoThread, f.FourThread}, 48)
		fmt.Fprintf(w, "4-thread over 2-thread advantage: %s (paper: +61%%)\n",
			report.Percent(100*(f.FourThread-f.TwoThread)/f.TwoThread))
		done()
	}

	if want(fig5) {
		pts, err := experiments.Fig5(opts.Machine)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "== Figure 5: thread merge control cost vs threads ==")
		var tr [][]string
		var labels []string
		var sl, pl, smt []float64
		for _, p := range pts {
			tr = append(tr, []string{fmt.Sprint(p.Threads),
				fmt.Sprint(p.CSMTSerial.Transistors), fmt.Sprint(p.CSMTSerial.GateDelays),
				fmt.Sprint(p.CSMTParallel.Transistors), fmt.Sprint(p.CSMTParallel.GateDelays),
				fmt.Sprint(p.SMT.Transistors), fmt.Sprint(p.SMT.GateDelays)})
			labels = append(labels, fmt.Sprint(p.Threads))
			sl = append(sl, float64(p.CSMTSerial.Transistors))
			pl = append(pl, float64(p.CSMTParallel.Transistors))
			smt = append(smt, float64(p.SMT.Transistors))
		}
		report.Table(w, []string{"threads", "csmt-sl tr", "delay", "csmt-pl tr", "delay", "smt tr", "delay"}, tr)
		xs := make([]float64, 0, 3*len(pts))
		ys := make([]float64, 0, 3*len(pts))
		var lab []string
		for i, p := range pts {
			xs = append(xs, float64(p.Threads), float64(p.Threads), float64(p.Threads))
			ys = append(ys, sl[i], pl[i], smt[i])
			lab = append(lab, fmt.Sprintf("SL/%d", p.Threads), fmt.Sprintf("PL/%d", p.Threads), fmt.Sprintf("SMT/%d", p.Threads))
		}
		report.Scatter(w, "Figure 5a (log transistors vs threads)", "threads", "transistors", lab, xs, ys, true)
		fmt.Fprintln(w)
	}

	if want(fig6) {
		done := timed("Figure 6")
		rows, err := experiments.Fig6(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "== Figure 6: SMT performance advantage over CSMT (4 threads) ==")
		var labels []string
		var values []float64
		var tr [][]string
		for _, r := range rows {
			labels = append(labels, r.Mix)
			values = append(values, r.AdvantagePc)
			if r.Mix == "Average" {
				tr = append(tr, []string{r.Mix, "", "", report.Percent(r.AdvantagePc)})
				continue
			}
			tr = append(tr, []string{r.Mix, report.F(r.SMT), report.F(r.CSMT), report.Percent(r.AdvantagePc)})
		}
		report.Table(w, []string{"workload", "SMT IPC", "CSMT IPC", "advantage"}, tr)
		report.BarChart(w, "advantage (%)", labels, values, 40)
		fmt.Fprintln(w, "(paper: average +27%, maximum +58% on LLHH)")
		done()
	}

	if want(fig9) {
		costs, err := experiments.Fig9(opts.Machine)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "== Figure 9: merging hardware cost per scheme ==")
		var tr [][]string
		var labels []string
		var delays []float64
		for _, c := range costs {
			tr = append(tr, []string{c.Scheme, fmt.Sprint(c.Transistors), fmt.Sprint(c.GateDelays)})
			labels = append(labels, c.Scheme)
			delays = append(delays, float64(c.GateDelays))
		}
		report.Table(w, []string{"scheme", "transistors", "gate delays"}, tr)
		report.BarChart(w, "gate delays", labels, delays, 40)
		fmt.Fprintln(w)
	}

	var fig10Rows []experiments.Figure10Row
	fig10Needed := *all || *fig10 || *fig11 || *fig12
	if fig10Needed {
		done := timed("Figure 10 sweep (16 schemes x 9 mixes)")
		var err error
		fig10Rows, err = experiments.Fig10(opts)
		if err != nil {
			fatal(err)
		}
		done()
		any = true
	}

	if *all || *fig10 {
		fmt.Fprintln(w, "== Figure 10: merging schemes performance (IPC) ==")
		schemes := experiments.Fig10Schemes()
		headers := append([]string{"workload"}, schemes...)
		var tr [][]string
		for _, r := range fig10Rows {
			row := []string{r.Mix}
			for _, s := range schemes {
				row = append(row, report.F(r.IPC[s]))
			}
			tr = append(tr, row)
		}
		report.Table(w, headers, tr)
		fmt.Fprintln(w)
	}

	if *all || *fig11 || *fig12 {
		pts, err := experiments.Tradeoffs(opts.Machine, fig10Rows)
		if err != nil {
			fatal(err)
		}
		if *all || *fig11 {
			fmt.Fprintln(w, "== Figure 11: performance vs transistors ==")
			printTradeoff(w, pts, false)
		}
		if *all || *fig12 {
			fmt.Fprintln(w, "== Figure 12: performance vs gate delays ==")
			printTradeoff(w, pts, true)
		}
	}

	if want(ext8) {
		done := timed("Extension: 8 threads")
		rows, err := experiments.Scaling8(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "== Extension: 8 hardware threads (beyond the paper) ==")
		var tr [][]string
		for _, r := range rows {
			tr = append(tr, []string{r.Scheme, r.Structure, report.F(r.IPC),
				fmt.Sprint(r.Transistors), fmt.Sprint(r.GateDelays)})
		}
		report.Table(w, []string{"scheme", "structure", "IPC", "transistors", "gate delays"}, tr)
		done()
	}

	if !any {
		fmt.Fprintln(w, "nothing selected; use -all or individual flags (-table1 ... -fig12, -ext8)")
	}
}

func printTradeoff(w *os.File, pts []experiments.TradeoffPoint, delays bool) {
	var labels []string
	var xs, ys []float64
	var tr [][]string
	for _, p := range pts {
		labels = append(labels, p.Scheme)
		cost := float64(p.Transistors)
		if delays {
			cost = float64(p.GateDelays)
		}
		xs = append(xs, p.IPC)
		ys = append(ys, cost)
		tr = append(tr, []string{p.Scheme, report.F(p.IPC), fmt.Sprint(p.Transistors), fmt.Sprint(p.GateDelays)})
	}
	report.Table(w, []string{"scheme", "avg IPC", "transistors", "gate delays"}, tr)
	name := "transistors"
	if delays {
		name = "gate delays"
	}
	report.Scatter(w, "IPC (x) vs "+name+" (y)", "IPC", name, labels, xs, ys, false)
	fmt.Fprintln(w, strings.Repeat("-", 70))
}
