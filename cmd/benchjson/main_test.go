package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: vliwmt
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulator-8    236   9986496 ns/op   4500277 cycles/s   66016 B/op   50 allocs/op
BenchmarkMergeSelect-8  40176591   56.56 ns/op   0 B/op   0 allocs/op
PASS
ok   vliwmt  18.418s
`
	rep, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Package != "vliwmt" || rep.CPU == "" {
		t.Errorf("header not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	sim := rep.Benchmarks[0]
	if sim.Name != "BenchmarkSimulator" || sim.Iterations != 236 || sim.NsPerOp != 9986496 {
		t.Errorf("simulator line wrong: %+v", sim)
	}
	if sim.Metrics["cycles/s"] != 4500277 {
		t.Errorf("custom metric wrong: %+v", sim.Metrics)
	}
	if sim.BytesPerOp == nil || *sim.BytesPerOp != 66016 || sim.AllocsPerOp == nil || *sim.AllocsPerOp != 50 {
		t.Errorf("benchmem pair wrong: %+v", sim)
	}
	ms := rep.Benchmarks[1]
	if ms.NsPerOp != 56.56 || *ms.AllocsPerOp != 0 {
		t.Errorf("merge-select line wrong: %+v", ms)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber 12 ns/op",
		"BenchmarkX 10 nan.x ns/op",
	} {
		if _, err := parseLine(line); err == nil {
			t.Errorf("parseLine(%q) succeeded", line)
		}
	}
}
