// Command benchjson converts `go test -bench` text output (read from
// stdin) into machine-readable JSON (written to stdout), so benchmark
// results can be committed and diffed across PRs:
//
//	go test -run '^$' -bench 'BenchmarkSimulator$' -benchmem . | benchjson > BENCH_simcore.json
//
// Standard pairs (ns/op, B/op, allocs/op) become dedicated fields;
// every custom b.ReportMetric pair (cycles/s, avg-IPCp, ...) lands in
// the metrics map. `make bench-simcore` and the CI benchmark step use
// it to track the simulator-core perf trajectory in BENCH_simcore.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, *b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line: name-GOMAXPROCS, the iteration
// count, then (value, unit) pairs.
func parseLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, fmt.Errorf("malformed benchmark line %q", line)
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	b := &Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}
