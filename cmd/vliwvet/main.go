// Command vliwvet runs the repository's custom static analyzers over
// the module and reports violations of the invariants the simulator
// depends on: determinism of the simulation packages (detpure,
// detmap), the zero-allocation contract of //vliw:hotpath functions
// (hotalloc), and wire/telemetry hygiene (wiretag).
//
// Usage:
//
//	vliwvet                    # analyze every package in the module
//	vliwvet ./internal/sim     # analyze specific patterns
//	vliwvet -dir /path/to/repo ./...
//	vliwvet -list              # print the analyzer suite and exit
//
// Findings print one per line as file:line:col: [analyzer] message.
// The exit status is 1 when any finding is reported, 2 on load or
// internal errors, 0 otherwise — so `vliwvet ./...` slots directly
// into `make lint` and CI.
//
// Suppression: a line (or the line above it) may carry
// `//vliwvet:allow <analyzer> <reason>`. The reason is mandatory;
// malformed directives are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"vliwmt/internal/analysis/vliwvet"
)

func main() {
	dir := flag.String("dir", ".", "module directory to analyze")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vliwvet [-dir module] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range vliwvet.Suite() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	findings, err := vliwvet.CheckModule(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vliwvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vliwvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
