// Command mergecost reports the gate-level hardware cost of thread merge
// controls: per scheme (the paper's Figure 9) and as a function of thread
// count (Figure 5).
//
// Usage:
//
//	mergecost                  # all sixteen schemes
//	mergecost -scheme 2SC3
//	mergecost -scheme 'S(C(T0,T1,T2),T3)'   # any custom merge tree
//	mergecost -scaling 2-8     # CSMT SL / CSMT PL / SMT curves
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vliwmt"
	"vliwmt/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mergecost: ")
	var (
		scheme  = flag.String("scheme", "", "single scheme to cost")
		scaling = flag.String("scaling", "", "thread range for control scaling, e.g. 2-8")
	)
	flag.Parse()
	m := vliwmt.DefaultMachine()

	switch {
	case *scheme != "":
		sc, err := vliwmt.Cost(m, *scheme)
		if err != nil {
			log.Fatal(err)
		}
		desc, _ := vliwmt.DescribeScheme(*scheme)
		fmt.Printf("%s = %s\ntransistors: %d\ngate delays: %d\n", sc.Scheme, desc, sc.Transistors, sc.GateDelays)

	case *scaling != "":
		var lo, hi int
		if _, err := fmt.Sscanf(*scaling, "%d-%d", &lo, &hi); err != nil {
			log.Fatalf("bad -scaling %q: %v", *scaling, err)
		}
		pts, err := vliwmt.CostScaling(m, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		var rows [][]string
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprint(p.Threads),
				fmt.Sprint(p.CSMTSerial.Transistors), fmt.Sprint(p.CSMTSerial.GateDelays),
				fmt.Sprint(p.CSMTParallel.Transistors), fmt.Sprint(p.CSMTParallel.GateDelays),
				fmt.Sprint(p.SMT.Transistors), fmt.Sprint(p.SMT.GateDelays),
			})
		}
		report.Table(os.Stdout,
			[]string{"threads", "csmt-sl tr", "delays", "csmt-pl tr", "delays", "smt tr", "delays"}, rows)

	default:
		var rows [][]string
		for _, s := range vliwmt.Schemes() {
			sc, err := vliwmt.Cost(m, s)
			if err != nil {
				log.Fatal(err)
			}
			desc, _ := vliwmt.DescribeScheme(s)
			rows = append(rows, []string{s, fmt.Sprint(sc.Transistors), fmt.Sprint(sc.GateDelays), desc})
		}
		report.Table(os.Stdout, []string{"scheme", "transistors", "gate delays", "structure"}, rows)
	}
}
