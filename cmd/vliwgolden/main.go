// Command vliwgolden maintains the committed golden conformance
// corpus: a snapshot of deterministic simulation results covering the
// paper's sixteen merge schemes plus the IMT/BMT baselines, each under
// both memory models (real caches and perfect memory).
//
//	vliwgolden                     # regenerate testdata/golden/corpus.json
//	vliwgolden -check              # re-run the corpus and diff against it
//	vliwgolden -out other.json     # write a corpus elsewhere
//
// Regenerating writes deterministic bytes: the same simulator always
// produces the same file, so `git diff testdata/golden` after a code
// change answers "did this change simulator output?" metric by metric.
// The committed corpus is also replayed by the tier-1 test suite
// (TestGoldenCorpus) and diffable against any result store or live run
// with vliwdiff.
//
// Blessing a new baseline after an intentional behaviour change:
//
//	go run ./cmd/vliwgolden        # or: make golden
//	git diff testdata/golden       # review every metric that moved
//	git add testdata/golden && git commit
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"vliwmt"
)

// corpusJobs is the golden job set: every paper scheme plus the
// IMT/BMT baselines, crossed with both memory models, on the paper's
// default machine over one mixed workload. The budget is scaled down
// so the whole corpus replays in seconds while still exercising every
// merge control, the OS scheduler and both cache configurations.
func corpusJobs(instr int64, seed uint64) ([]vliwmt.SweepJob, error) {
	var members []string
	for _, m := range vliwmt.Mixes() {
		if m.Name == "LLHH" {
			members = m.Members[:]
		}
	}
	if members == nil {
		return nil, fmt.Errorf("mix LLHH not found")
	}
	schemes := append(vliwmt.Schemes(), "IMT", "BMT")
	var jobs []vliwmt.SweepJob
	for _, scheme := range schemes {
		for _, perfect := range []bool{false, true} {
			mem := "real"
			if perfect {
				mem = "perfect"
			}
			jobs = append(jobs, vliwmt.SweepJob{
				Label:           "LLHH/" + scheme + "/" + mem,
				Scheme:          scheme,
				Benchmarks:      append([]string(nil), members...),
				Machine:         vliwmt.DefaultMachine(),
				ICache:          vliwmt.DefaultCache(),
				DCache:          vliwmt.DefaultCache(),
				PerfectMemory:   perfect,
				InstrLimit:      instr,
				TimesliceCycles: 1_000,
				Seed:            seed,
			})
		}
	}
	return jobs, nil
}

func run() error {
	var (
		out     = flag.String("out", "testdata/golden/corpus.json", "corpus snapshot path")
		instr   = flag.Int64("instr", 20_000, "per-thread instruction budget of the corpus jobs")
		seed    = flag.Uint64("seed", 1, "seed shared by every corpus job")
		workers = flag.Int("workers", 0, "worker pool size (0: runtime.NumCPU())")
		check   = flag.Bool("check", false, "re-run the committed corpus and fail on any divergence instead of rewriting it")
	)
	flag.Parse()

	if *check {
		golden, err := vliwmt.LoadSnapshot(*out)
		if err != nil {
			return err
		}
		// Replay exactly the committed jobs (not the generator's current
		// defaults), so -check stays meaningful even if the corpus was
		// built with non-default flags.
		jobs, err := golden.Jobs()
		if err != nil {
			return err
		}
		results, err := vliwmt.SweepJobs(context.Background(), jobs, &vliwmt.SweepOptions{Workers: *workers})
		if err != nil {
			return err
		}
		live, err := vliwmt.SnapshotResults(results)
		if err != nil {
			return err
		}
		d := vliwmt.DiffSnapshots(golden, live)
		if !d.Clean() {
			d.WriteText(os.Stderr, *out, "this build")
			return fmt.Errorf("simulator output diverges from the golden corpus (bless intentional changes with `make golden`)")
		}
		fmt.Printf("golden corpus %s: %d jobs bit-identical\n", *out, d.Identical)
		return nil
	}

	jobs, err := corpusJobs(*instr, *seed)
	if err != nil {
		return err
	}
	results, err := vliwmt.SweepJobs(context.Background(), jobs, &vliwmt.SweepOptions{Workers: *workers})
	if err != nil {
		return err
	}
	snap, err := vliwmt.SnapshotResults(results)
	if err != nil {
		return err
	}
	if err := vliwmt.WriteSnapshot(*out, snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d jobs (%d schemes x 2 memory models)\n", *out, len(snap.Entries), len(snap.Entries)/2)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vliwgolden: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}
