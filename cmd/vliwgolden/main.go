// Command vliwgolden maintains the committed golden conformance
// corpora: testdata/golden/corpus.json — deterministic simulation
// results covering the paper's sixteen merge schemes plus the IMT/BMT
// baselines, each under both memory models (real caches and perfect
// memory) — and testdata/golden/generated.json, the same contract over
// synthetic workloads from the internal/wgen generator (three
// generated mixes spanning the ILP-class space, a six-scheme subset,
// both memory models). The generated corpus pins the generator itself
// as well as the simulator: regenerating a "gen:" benchmark must
// reproduce the committed bits, so generator algorithm changes surface
// here exactly like simulator changes.
//
//	vliwgolden                     # regenerate both committed corpora
//	vliwgolden -check              # re-run both corpora and diff against them
//	vliwgolden -out other.json     # write the classic corpus elsewhere
//
// Regenerating writes deterministic bytes: the same simulator always
// produces the same file, so `git diff testdata/golden` after a code
// change answers "did this change simulator output?" metric by metric.
// The committed corpus is also replayed by the tier-1 test suite
// (TestGoldenCorpus) and diffable against any result store or live run
// with vliwdiff.
//
// Blessing a new baseline after an intentional behaviour change:
//
//	go run ./cmd/vliwgolden        # or: make golden
//	git diff testdata/golden       # review every metric that moved
//	git add testdata/golden && git commit
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"vliwmt"
)

// corpusJobs is the golden job set: every paper scheme plus the
// IMT/BMT baselines, crossed with both memory models, on the paper's
// default machine over one mixed workload. The budget is scaled down
// so the whole corpus replays in seconds while still exercising every
// merge control, the OS scheduler and both cache configurations.
func corpusJobs(instr int64, seed uint64) ([]vliwmt.SweepJob, error) {
	var members []string
	for _, m := range vliwmt.Mixes() {
		if m.Name == "LLHH" {
			members = m.Members[:]
		}
	}
	if members == nil {
		return nil, fmt.Errorf("mix LLHH not found")
	}
	schemes := append(vliwmt.Schemes(), "IMT", "BMT")
	var jobs []vliwmt.SweepJob
	for _, scheme := range schemes {
		for _, perfect := range []bool{false, true} {
			mem := "real"
			if perfect {
				mem = "perfect"
			}
			jobs = append(jobs, vliwmt.SweepJob{
				Label:           "LLHH/" + scheme + "/" + mem,
				Scheme:          scheme,
				Benchmarks:      append([]string(nil), members...),
				Machine:         vliwmt.DefaultMachine(),
				ICache:          vliwmt.DefaultCache(),
				DCache:          vliwmt.DefaultCache(),
				PerfectMemory:   perfect,
				InstrLimit:      instr,
				TimesliceCycles: 1_000,
				Seed:            seed,
			})
		}
	}
	return jobs, nil
}

// generatedCorpusJobs is the generated golden job set: three generated
// mixes spanning the ILP-class space (their canonical names pin the
// member profiles and seeds completely), a six-scheme subset covering
// cascade, balanced-tree, single-level-CSMT and baseline merge
// controls, both memory models. Small enough to replay in seconds,
// wide enough that a generator or simulator change cannot hide.
func generatedCorpusJobs(instr int64, seed uint64) ([]vliwmt.SweepJob, error) {
	mixes := []string{"genmix:LLHH:s1", "genmix:LMMH:s2", "genmix:HHHH:s3"}
	schemes := []string{"2SC3", "3SSS", "2SS", "C4", "IMT", "BMT"}
	var jobs []vliwmt.SweepJob
	for _, mixName := range mixes {
		mix, err := vliwmt.MixByName(mixName)
		if err != nil {
			return nil, err
		}
		for _, scheme := range schemes {
			for _, perfect := range []bool{false, true} {
				mem := "real"
				if perfect {
					mem = "perfect"
				}
				jobs = append(jobs, vliwmt.SweepJob{
					Label:           mixName + "/" + scheme + "/" + mem,
					Scheme:          scheme,
					Benchmarks:      append([]string(nil), mix.Members[:]...),
					Machine:         vliwmt.DefaultMachine(),
					ICache:          vliwmt.DefaultCache(),
					DCache:          vliwmt.DefaultCache(),
					PerfectMemory:   perfect,
					InstrLimit:      instr,
					TimesliceCycles: 1_000,
					Seed:            seed,
				})
			}
		}
	}
	return jobs, nil
}

// checkCorpus replays the committed snapshot at path and fails on any
// bit-level divergence.
func checkCorpus(path string, workers int) error {
	golden, err := vliwmt.LoadSnapshot(path)
	if err != nil {
		return err
	}
	// Replay exactly the committed jobs (not the generator's current
	// defaults), so -check stays meaningful even if the corpus was
	// built with non-default flags.
	jobs, err := golden.Jobs()
	if err != nil {
		return err
	}
	results, err := vliwmt.SweepJobs(context.Background(), jobs, &vliwmt.SweepOptions{Workers: workers})
	if err != nil {
		return err
	}
	live, err := vliwmt.SnapshotResults(results)
	if err != nil {
		return err
	}
	d := vliwmt.DiffSnapshots(golden, live)
	if !d.Clean() {
		d.WriteText(os.Stderr, path, "this build")
		return fmt.Errorf("simulator output diverges from the golden corpus %s (bless intentional changes with `make golden`)", path)
	}
	fmt.Printf("golden corpus %s: %d jobs bit-identical\n", path, d.Identical)
	return nil
}

// writeCorpus sweeps jobs and writes their snapshot to path.
func writeCorpus(path string, jobs []vliwmt.SweepJob, workers int) error {
	results, err := vliwmt.SweepJobs(context.Background(), jobs, &vliwmt.SweepOptions{Workers: workers})
	if err != nil {
		return err
	}
	snap, err := vliwmt.SnapshotResults(results)
	if err != nil {
		return err
	}
	if err := vliwmt.WriteSnapshot(path, snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d jobs\n", path, len(snap.Entries))
	return nil
}

func run() error {
	var (
		out       = flag.String("out", "testdata/golden/corpus.json", "corpus snapshot path")
		generated = flag.String("generated", "testdata/golden/generated.json", "generated-workload corpus snapshot path (empty: skip it)")
		instr     = flag.Int64("instr", 20_000, "per-thread instruction budget of the corpus jobs")
		seed      = flag.Uint64("seed", 1, "seed shared by every corpus job")
		workers   = flag.Int("workers", 0, "worker pool size (0: runtime.NumCPU())")
		check     = flag.Bool("check", false, "re-run the committed corpora and fail on any divergence instead of rewriting them")
	)
	flag.Parse()

	paths := []string{*out}
	if *generated != "" {
		paths = append(paths, *generated)
	}

	if *check {
		for _, p := range paths {
			if err := checkCorpus(p, *workers); err != nil {
				return err
			}
		}
		return nil
	}

	jobs, err := corpusJobs(*instr, *seed)
	if err != nil {
		return err
	}
	if err := writeCorpus(*out, jobs, *workers); err != nil {
		return err
	}
	if *generated != "" {
		gjobs, err := generatedCorpusJobs(*instr, *seed)
		if err != nil {
			return err
		}
		if err := writeCorpus(*generated, gjobs, *workers); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vliwgolden: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}
