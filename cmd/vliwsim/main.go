// Command vliwsim runs one workload on the multithreaded clustered VLIW
// simulator and reports performance and merge statistics.
//
// Usage:
//
//	vliwsim -mix LLHH -scheme 2SC3 -instrs 1000000
//	vliwsim -mix LLHH -scheme 'S(C(T0,T1,T2),T3)'
//	vliwsim -bench mcf,x264 -scheme 1S -contexts 2
//	vliwsim -bench colorspace -contexts 1 -perfect
//
// Schemes are named by the paper's grammar ("3SSS", "2SC3", "C4"), the
// IMT/BMT baselines, or any custom merge tree written in the canonical
// tree-expression grammar of vliwmt.DescribeScheme.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vliwmt"
	"vliwmt/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vliwsim: ")
	var (
		mixName  = flag.String("mix", "", "Table 2 workload mix to run (LLLL .. HHHH)")
		benches  = flag.String("bench", "", "comma-separated benchmark list (alternative to -mix)")
		scheme   = flag.String("scheme", "2SC3", "merging scheme: a name (see -list), IMT/BMT, or a tree expression like 'C(S(T0,T1),T2,T3)'")
		contexts = flag.Int("contexts", 4, "hardware thread contexts")
		instrs   = flag.Int64("instrs", 1_000_000, "per-thread instruction budget")
		slice    = flag.Int64("timeslice", 0, "OS timeslice in cycles (default instrs/100)")
		perfect  = flag.Bool("perfect", false, "perfect memory (no caches)")
		fixed    = flag.Bool("fixed-priority", false, "disable round-robin priority rotation")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		list     = flag.Bool("list", false, "list benchmarks, mixes and schemes, then exit")
	)
	flag.Parse()

	if *list {
		printLists()
		return
	}

	cfg := vliwmt.DefaultConfig()
	cfg.Contexts = *contexts
	cfg.Scheme = *scheme
	// An explicit -contexts wins; otherwise size the machine to the
	// scheme, so e.g. -scheme 'C(S(T0,T1),T2)' runs on 3 contexts
	// without further flags.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if !explicit["contexts"] {
		if sch, err := vliwmt.ParseScheme(*scheme); err == nil && sch.Ports() > 0 {
			cfg.Contexts = sch.Ports()
		}
	}
	cfg.InstrLimit = *instrs
	cfg.PerfectMemory = *perfect
	cfg.FixedPriority = *fixed
	cfg.Seed = *seed
	if *slice > 0 {
		cfg.TimesliceCycles = *slice
	} else {
		cfg.TimesliceCycles = max64(*instrs/100, 1000)
	}

	var res *vliwmt.Result
	var err error
	switch {
	case *mixName != "" && *benches != "":
		log.Fatal("use either -mix or -bench, not both")
	case *mixName != "":
		res, err = vliwmt.RunMix(cfg, *mixName)
	case *benches != "":
		var tasks []vliwmt.Task
		for _, name := range strings.Split(*benches, ",") {
			name = strings.TrimSpace(name)
			p, cerr := vliwmt.CompileBenchmark(name, cfg.Machine)
			if cerr != nil {
				log.Fatal(cerr)
			}
			tasks = append(tasks, vliwmt.Task{Name: name, Prog: p})
		}
		res, err = vliwmt.Run(cfg, tasks)
	default:
		log.Fatal("specify -mix or -bench (try -list)")
	}
	if err != nil {
		log.Fatal(err)
	}
	printResult(cfg, res)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func printLists() {
	fmt.Println("Benchmarks (Table 1):")
	for _, b := range vliwmt.Benchmarks() {
		fmt.Printf("  %-11s %s  %s (paper IPCr %.2f, IPCp %.2f)\n", b.Name, b.Class, b.Description, b.PaperIPCr, b.PaperIPCp)
	}
	fmt.Println("\nMixes (Table 2):")
	for _, m := range vliwmt.Mixes() {
		fmt.Printf("  %-5s %s\n", m.Name, strings.Join(m.Members[:], " "))
	}
	fmt.Println("\nSchemes (Figure 9 order):")
	printScheme := func(name string) {
		sch, err := vliwmt.ParseScheme(name)
		if err != nil {
			fmt.Printf("  %-8s %v\n", name, err)
			return
		}
		tree := ""
		if t := sch.Tree(); t != nil {
			tree = t.String()
		}
		fmt.Printf("  %-8s %-28s %s\n", name, tree, sch.Describe())
	}
	for _, s := range vliwmt.Schemes() {
		printScheme(s)
	}
	printScheme("IMT")
	printScheme("BMT")
	if reg := vliwmt.RegisteredSchemes(); len(reg) > 0 {
		fmt.Println("\nRegistered custom schemes:")
		for _, sch := range reg {
			printScheme(sch.Name())
		}
	}
	fmt.Println("\nAny canonical tree expression also names a scheme, e.g. -scheme 'S(C(T0,T1,T2),T3)'.")
}

func printResult(cfg vliwmt.Config, res *vliwmt.Result) {
	fmt.Printf("machine: %s, scheme %s, %d contexts\n", cfg.Machine, cfg.Scheme, cfg.Contexts)
	if res.TimedOut {
		fmt.Println("WARNING: run hit the cycle bound before any thread finished")
	}
	fmt.Printf("cycles %d   instructions %d   operations %d   IPC %.3f\n\n",
		res.Cycles, res.Instrs, res.Ops, res.IPC)

	var rows [][]string
	for _, th := range res.Threads {
		rows = append(rows, []string{
			th.Name,
			fmt.Sprint(th.Instrs),
			fmt.Sprint(th.Ops),
			fmt.Sprint(th.ConflictCycles),
			fmt.Sprint(th.StallMem),
			fmt.Sprint(th.StallFetch),
			fmt.Sprint(th.StallBranch),
		})
	}
	report.Table(os.Stdout, []string{"thread", "instrs", "ops", "conflict", "stall-mem", "stall-fetch", "stall-br"}, rows)

	fmt.Println()
	labels := make([]string, len(res.MergeHist))
	values := make([]float64, len(res.MergeHist))
	for k := range res.MergeHist {
		labels[k] = fmt.Sprintf("%d threads/cycle", k)
		values[k] = float64(res.MergeHist[k])
	}
	report.BarChart(os.Stdout, "merge distribution (cycles by threads issued together)", labels, values, 40)

	if !cfg.PerfectMemory {
		fmt.Printf("\nICache: %d accesses, %d misses (%.2f%%)   DCache: %d accesses, %d misses (%.2f%%)\n",
			res.ICache.Accesses, res.ICache.Misses, 100*res.ICache.MissRate(),
			res.DCache.Accesses, res.DCache.Misses, 100*res.DCache.MissRate())
	}
}
