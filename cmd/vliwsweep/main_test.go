package main

import (
	"bytes"
	"context"
	"testing"

	"vliwmt"
)

// table1Jobs builds the paper's Table 1 grid as an explicit job set:
// every benchmark alone on the default machine, under real caches
// (IPCr) and perfect memory (IPCp), at a scaled-down budget.
func table1Jobs(instr int64) []vliwmt.SweepJob {
	var jobs []vliwmt.SweepJob
	for _, b := range vliwmt.Benchmarks() {
		for _, perfect := range []bool{false, true} {
			mem := "real"
			if perfect {
				mem = "perfect"
			}
			jobs = append(jobs, vliwmt.SweepJob{
				Label:           b.Name + "/" + mem,
				Benchmarks:      []string{b.Name},
				Contexts:        1,
				Machine:         vliwmt.DefaultMachine(),
				ICache:          vliwmt.DefaultCache(),
				DCache:          vliwmt.DefaultCache(),
				PerfectMemory:   perfect,
				InstrLimit:      instr,
				TimesliceCycles: 1_000,
				Seed:            1,
			})
		}
	}
	return jobs
}

func csvOf(t *testing.T, results []vliwmt.SweepResult) []byte {
	t.Helper()
	rows := rowsFrom(results, func(err error) { t.Fatal(err) })
	if len(rows) != len(results) {
		t.Fatalf("%d rows from %d results", len(rows), len(results))
	}
	var buf bytes.Buffer
	if err := writeCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmStoreZeroSimulations is the acceptance criterion of the
// persistent result store: repeating the Table 1 grid against a warm
// store performs zero simulations — every job is a store hit, nothing
// is compiled — and the emitted CSV is byte-identical to the cold
// run's, elapsed_sec column included (cached results replay the
// original times).
func TestWarmStoreZeroSimulations(t *testing.T) {
	dir := t.TempDir()
	jobs := table1Jobs(10_000)

	cold := vliwmt.NewRunner(vliwmt.WithResultStore(dir))
	a, err := cold.SweepJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Store().Stats(); st.Hits != 0 || st.Misses != int64(len(jobs)) || st.Puts != int64(len(jobs)) {
		t.Fatalf("cold run store stats %+v, want %d misses and puts", st, len(jobs))
	}
	coldCSV := csvOf(t, a)

	// A fresh Runner with a fresh compile cache: any simulation would
	// have to compile first, so zero compiles proves zero simulations.
	warm := vliwmt.NewRunner(vliwmt.WithResultStore(dir))
	b, err := warm.SweepJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Store().Stats(); st.Hits != int64(len(jobs)) || st.Misses != 0 || st.Puts != 0 {
		t.Errorf("warm run store stats %+v, want %d hits and nothing else", st, len(jobs))
	}
	if compiles, _ := warm.Cache().Stats(); compiles != 0 {
		t.Errorf("warm run compiled %d kernels, want 0 (zero simulations)", compiles)
	}
	for _, r := range b {
		if !r.Cached {
			t.Errorf("warm job %s not served from the store", r.Job.Describe())
		}
	}
	if warmCSV := csvOf(t, b); !bytes.Equal(coldCSV, warmCSV) {
		t.Errorf("warm CSV differs from cold CSV:\ncold:\n%s\nwarm:\n%s", coldCSV, warmCSV)
	}
}

// TestBatchFlagIdenticalRows pins the -batch contract at the CLI
// boundary: the same grid swept with batching disabled (-batch 1),
// auto-grouped (-batch 0) and explicitly capped emits identical output
// rows — elapsed_sec excluded, as the only wall-clock column.
func TestBatchFlagIdenticalRows(t *testing.T) {
	grid := vliwmt.Grid{
		Schemes:    []string{"2SC3", "3SSS"},
		Mixes:      []string{"LLHH", "HHHH"},
		InstrLimit: 10_000,
		Seed:       5,
	}
	var want []row
	for _, batch := range []int{1, 0, 3} {
		results, err := vliwmt.Sweep(context.Background(), grid, &vliwmt.SweepOptions{Batch: batch})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		rows := rowsFrom(results, func(err error) { t.Fatal(err) })
		for i := range rows {
			rows[i].ElapsedSec = 0
		}
		if want == nil {
			want = rows
			continue
		}
		if len(rows) != len(want) {
			t.Fatalf("batch=%d: %d rows, want %d", batch, len(rows), len(want))
		}
		for i := range rows {
			if rows[i] != want[i] {
				t.Errorf("batch=%d row %d = %+v, want %+v", batch, i, rows[i], want[i])
			}
		}
	}
}
