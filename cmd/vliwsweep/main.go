// Command vliwsweep runs arbitrary merge-scheme x workload-mix grids on
// the parallel sweep engine and emits the results as a text table, JSON
// or CSV.
//
// Usage:
//
//	vliwsweep                                  # all 16 schemes x 9 mixes
//	vliwsweep -schemes 2SC3,3SSS -mixes LLHH   # a sub-grid
//	vliwsweep -schemes '2SC3,S(C(T0,T1,T2),T3)' -mixes LLHH  # custom tree
//	vliwsweep -workers 8 -instr 1000000 -seed 3 -format json
//	vliwsweep -batch 1 -mixes LLHH             # disable batched execution
//	vliwsweep -sharedseed -progress
//	vliwsweep -store results/ -mixes LLHH      # persistent result store
//	vliwsweep -addr localhost:8080 -mixes LLHH # same grid, remote vliwserve
//	vliwsweep -fabric coord:8080 -mixes LLHH   # same grid, distributed fabric
//	vliwsweep -stats -mixes LLHH               # lifecycle summary on stderr
//	vliwsweep -log-level debug -log-json       # structured sweep tracing
//
// Every job derives its seed from -seed and its index, so output is
// bit-identical at any -workers count; -sharedseed gives every job the
// same seed instead (required when comparing schemes the paper treats as
// functionally identical, e.g. C4 vs 3CCC).
//
// In-process sweeps batch shape-compatible jobs (same machine, same
// benchmark list) through one shared cycle loop for throughput; -batch
// caps the unit size, with 0 grouping automatically and 1 running every
// job solo. Batching never changes results — only jobs/s.
//
// With -addr the grid is submitted to a running vliwserve instance
// instead of the in-process engine; the determinism contract crosses
// the wire, so the output is identical modulo the wall-clock fields
// (elapsed_sec / time). With -fabric it is submitted to a vliwfabric
// coordinator, which shards it across a worker pool — same contract,
// same output, many boxes.
//
// With -store, completed jobs persist in a content-addressed store at
// the given directory and later sweeps serve identical jobs from disk
// instead of re-simulating them — a repeated sweep against a warm
// store performs zero simulations and emits byte-identical output
// (cached results replay the original elapsed times). The store is
// diffable against another store or a committed baseline with
// vliwdiff.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"vliwmt"
	"vliwmt/internal/api"
	"vliwmt/internal/merge"
	"vliwmt/internal/profiling"
	"vliwmt/internal/report"
	"vliwmt/internal/sweep"
	"vliwmt/internal/telemetry"
)

// row is one job's flattened result, shared by the JSON, CSV and text
// emitters.
type row struct {
	Mix        string  `json:"mix"`
	Scheme     string  `json:"scheme"`
	Contexts   int     `json:"contexts"`
	Seed       uint64  `json:"seed"`
	IPC        float64 `json:"ipc"`
	Cycles     int64   `json:"cycles"`
	Instrs     int64   `json:"instrs"`
	Ops        int64   `json:"ops"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

// rowsFrom flattens successful results into output rows, reporting
// failed or timed-out jobs through warn. Cached results flatten
// exactly like fresh ones (the store replays the original elapsed
// time), so warm and cold sweeps emit identical rows.
func rowsFrom(results []vliwmt.SweepResult, warn func(error)) []row {
	var rows []row
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		ipc, ierr := r.IPC()
		if ierr != nil {
			warn(ierr)
			continue
		}
		mix, _, _ := strings.Cut(r.Job.Label, "/")
		rows = append(rows, row{
			Mix:        mix,
			Scheme:     r.Job.Scheme,
			Contexts:   r.Job.EffectiveContexts(),
			Seed:       r.Job.Seed,
			IPC:        ipc,
			Cycles:     r.Res.Cycles,
			Instrs:     r.Res.Instrs,
			Ops:        r.Res.Ops,
			ElapsedSec: r.Elapsed.Seconds(),
		})
	}
	return rows
}

// writeCSV emits the -format csv document.
func writeCSV(w io.Writer, rows []row) error {
	headers := []string{"mix", "scheme", "contexts", "seed", "ipc", "cycles", "instrs", "ops", "elapsed_sec"}
	var tr [][]string
	for _, r := range rows {
		tr = append(tr, []string{r.Mix, r.Scheme, fmt.Sprint(r.Contexts), fmt.Sprint(r.Seed),
			report.F(r.IPC), fmt.Sprint(r.Cycles), fmt.Sprint(r.Instrs), fmt.Sprint(r.Ops),
			fmt.Sprintf("%.3f", r.ElapsedSec)})
	}
	return report.CSV(w, headers, tr)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vliwsweep: ")
	var (
		addr       = flag.String("addr", "", "submit the grid to a remote vliwserve at this address instead of running in-process")
		jobsFile   = flag.String("jobs", "", "read a sweep-request JSON document (a grid or an explicit job set, e.g. emitted by vliwgen) from this file, - for stdin; replaces -schemes/-mixes")
		fabric     = flag.String("fabric", "", "submit the grid to a vliwfabric coordinator at this address (sharded across its worker pool)")
		schemes    = flag.String("schemes", "", "comma-separated merge schemes — names or tree expressions like C(S(T0,T1),T2,T3) (default: the paper's sixteen)")
		mixes      = flag.String("mixes", "", "comma-separated Table 2 mixes (default: all nine)")
		workers    = flag.Int("workers", 0, "worker pool size (0: runtime.NumCPU())")
		batch      = flag.Int("batch", 0, "jobs per batched simulation unit for in-process sweeps (0: auto-group shape-compatible jobs; 1: run every job solo) — results are identical at any setting")
		seed       = flag.Uint64("seed", 1, "sweep seed; per-job seeds derive from it")
		instr      = flag.Int64("instr", 300_000, "per-thread instruction budget")
		timeslice  = flag.Int64("timeslice", 0, "OS quantum in cycles (0: budget/100)")
		sharedSeed = flag.Bool("sharedseed", false, "give every job the sweep seed verbatim")
		store      = flag.String("store", "", "persistent result store directory: serve repeated jobs from disk, persist fresh ones")
		format     = flag.String("format", "text", "output format: text, json or csv")
		progress   = flag.Bool("progress", false, "report per-job progress on stderr")
		stats      = flag.Bool("stats", false, "print the sweep lifecycle summary (jobs, store hit ratio, p50/p99 job latency, jobs/s) on stderr")
		logLevel   = flag.String("log-level", "", "enable structured sweep tracing on stderr at this level: debug, info, warn or error (empty: off; debug adds a line per job)")
		logJSON    = flag.Bool("log-json", false, "emit structured traces as JSON lines instead of text (implies -log-level info)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	)
	flag.Parse()
	switch *format {
	case "text", "json", "csv":
	default:
		log.Fatalf("unknown -format %q (want text, json or csv)", *format)
	}
	if *logLevel != "" || *logJSON {
		lv := *logLevel
		if lv == "" {
			lv = "info"
		}
		if _, err := telemetry.ConfigureSlog(os.Stderr, lv, *logJSON); err != nil {
			log.Fatal(err)
		}
	}
	if *addr != "" && *fabric != "" {
		log.Fatal("-addr and -fabric both name a remote endpoint; pick one")
	}
	if (*addr != "" || *fabric != "") && *store != "" {
		// The remote server owns its own store (vliwserve -results,
		// vliwfabric -results); silently ignoring -store would look
		// like caching that never happens.
		log.Fatal("-store applies to in-process sweeps; with -addr or -fabric, configure the store on the server (-results)")
	}
	// Profiling starts only after flag validation, and fatal paths go
	// through fatal() below so an error mid-sweep still flushes the
	// profiles instead of leaving a truncated cpu.prof.
	stopProf, perr := profiling.Start(*cpuprofile, *memprofile)
	if perr != nil {
		log.Fatal(perr)
	}
	fatal := func(v ...any) {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
		log.Fatal(v...)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	grid := vliwmt.Grid{
		Schemes:         merge.SplitNames(*schemes),
		Mixes:           merge.SplitNames(*mixes),
		InstrLimit:      *instr,
		TimesliceCycles: *timeslice,
		Seed:            *seed,
		SharedSeed:      *sharedSeed,
	}
	// -jobs replaces the flag-built grid with a decoded request: a
	// declarative grid, or an explicit job set (a vliwgen stream
	// scenario) executed verbatim.
	var jobs []vliwmt.SweepJob
	if *jobsFile != "" {
		if *schemes != "" || *mixes != "" {
			fatal("-jobs carries its own grid or job set; drop -schemes/-mixes")
		}
		in := os.Stdin
		if *jobsFile != "-" {
			f, err := os.Open(*jobsFile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		req, err := api.DecodeSweepRequest(in)
		if err != nil {
			fatal(err)
		}
		switch {
		case len(req.Jobs) > 0:
			for _, wj := range req.Jobs {
				j, err := wj.Sweep()
				if err != nil {
					fatal(err)
				}
				jobs = append(jobs, j)
			}
		case req.Grid != nil:
			grid = req.Grid.Sweep()
		default:
			fatal("-jobs document carries neither a grid nor a job set")
		}
	}
	opts := &vliwmt.SweepOptions{Workers: *workers, ResultDir: *store, Batch: *batch}
	if *progress {
		opts.Progress = func(done, total int, r vliwmt.SweepResult) {
			status := "ok"
			if r.Err != nil {
				status = r.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-12s %6.2fs  %s\n",
				done, total, r.Job.Describe(), r.Elapsed.Seconds(), status)
		}
	}

	// Ctrl-C cancels the sweep; completed jobs are still reported. Once
	// cancelled, stop() restores default signal handling so a second
	// Ctrl-C kills the process instead of being swallowed while
	// in-flight jobs drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	start := time.Now()
	var results []vliwmt.SweepResult
	var err error
	switch {
	case *addr != "" && jobs != nil:
		results, err = vliwmt.NewClient(*addr).SweepJobs(ctx, jobs, opts)
	case *addr != "":
		results, err = vliwmt.NewClient(*addr).Sweep(ctx, grid, opts)
	case *fabric != "" && jobs != nil:
		results, err = vliwmt.NewFabricClient(*fabric).SweepJobs(ctx, jobs, opts)
	case *fabric != "":
		results, err = vliwmt.NewFabricClient(*fabric).Sweep(ctx, grid, opts)
	case jobs != nil:
		results, err = vliwmt.SweepJobs(ctx, jobs, opts)
	default:
		results, err = vliwmt.Sweep(ctx, grid, opts)
	}
	elapsed := time.Since(start)
	if err != nil && results == nil {
		fatal(err)
	}

	rows := rowsFrom(results, func(err error) { log.Print(err) })

	w := os.Stdout
	switch *format {
	case "json":
		if jerr := report.JSON(w, rows); jerr != nil {
			fatal(jerr)
		}
	case "csv":
		if cerr := writeCSV(w, rows); cerr != nil {
			fatal(cerr)
		}
	case "text":
		var tr [][]string
		for _, r := range rows {
			tr = append(tr, []string{r.Mix, r.Scheme, fmt.Sprint(r.Contexts),
				report.F(r.IPC), fmt.Sprint(r.Cycles), fmt.Sprintf("%.2fs", r.ElapsedSec)})
		}
		report.Table(w, []string{"mix", "scheme", "threads", "IPC", "cycles", "time"}, tr)
		fmt.Fprintf(w, "\n%d/%d jobs in %.2fs (workers=%d)\n",
			len(rows), len(results), elapsed.Seconds(), sweep.PoolSize(*workers))
	}
	if *stats {
		// The lifecycle summary goes to stderr so -format json/csv
		// stdout stays machine-readable. Computed from the results
		// either way, so it works for -addr sweeps too (cached jobs
		// carry the replayed original elapsed times).
		fmt.Fprintln(os.Stderr, vliwmt.SummarizeSweep(results, elapsed))
	}
	if err != nil {
		fatal(err)
	}
}
