// Command vliwdiff makes simulator regressions diffable: it compares
// two snapshots of deterministic sweep results and prints per-metric
// deltas for every job whose output changed, exiting 1 on any
// divergence (and 0 when everything is bit-identical).
//
// A snapshot source is either a result-store directory (as written by
// `vliwsweep -store`, `vliwserve -results` or WithResultStore) or a
// snapshot JSON file (as written by vliwgolden or -save):
//
//	vliwdiff old-store/ new-store/         # two stores, e.g. two worktrees
//	vliwdiff testdata/golden/corpus.json new-store/
//
// With grid flags instead of a second source, the grid is run live
// in-process and compared against the baseline — "does my working tree
// still produce the committed numbers?" as one command:
//
//	vliwdiff -schemes 2SC3,3SSS -mixes LLHH -instr 20000 baseline.json
//	vliwdiff -live testdata/golden/corpus.json   # re-run the baseline's own jobs
//
// Comparison is keyed by job content hash — the canonical hash of
// (scheme tree, machine, caches, memory model, budget, seed, schema
// version) — so only jobs with identical configurations are compared,
// and jobs present on one side only are reported rather than silently
// dropped.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"vliwmt"
	"vliwmt/internal/merge"
)

func run() (clean bool, err error) {
	var (
		schemes    = flag.String("schemes", "", "live mode: comma-separated merge schemes to run against the baseline")
		mixes      = flag.String("mixes", "", "live mode: comma-separated Table 2 mixes")
		instr      = flag.Int64("instr", 300_000, "live mode: per-thread instruction budget")
		timeslice  = flag.Int64("timeslice", 0, "live mode: OS quantum in cycles (0: budget/100)")
		seed       = flag.Uint64("seed", 1, "live mode: sweep seed")
		sharedSeed = flag.Bool("sharedseed", false, "live mode: give every job the sweep seed verbatim")
		live       = flag.Bool("live", false, "re-run the baseline's own jobs live instead of reading a second source")
		workers    = flag.Int("workers", 0, "worker pool size for live runs (0: runtime.NumCPU())")
		save       = flag.String("save", "", "also write the new/live snapshot to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage:\n  vliwdiff [flags] OLD NEW\n  vliwdiff [flags] -live BASELINE\n  vliwdiff [grid flags] BASELINE\n\n"+
				"OLD, NEW and BASELINE are result-store directories or snapshot JSON files.\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()

	gridMode := *schemes != "" || *mixes != ""
	var oldName, newName string
	var oldSnap, newSnap vliwmt.ResultSnapshot

	switch {
	case len(args) == 2 && !gridMode && !*live:
		oldName, newName = args[0], args[1]
		if oldSnap, err = vliwmt.LoadSnapshot(oldName); err != nil {
			return false, err
		}
		if newSnap, err = vliwmt.LoadSnapshot(newName); err != nil {
			return false, err
		}
	case len(args) == 1:
		if *live && gridMode {
			// Silently preferring one over the other would compare a job
			// set the user never asked about.
			return false, fmt.Errorf("-live replays the baseline's own jobs; it cannot be combined with grid flags (-schemes/-mixes)")
		}
		oldName, newName = args[0], "live run"
		if oldSnap, err = vliwmt.LoadSnapshot(oldName); err != nil {
			return false, err
		}
		var jobs []vliwmt.SweepJob
		if *live {
			// Replay the baseline's own jobs, whatever grid produced them.
			if jobs, err = oldSnap.Jobs(); err != nil {
				return false, err
			}
		} else {
			if !gridMode {
				return false, fmt.Errorf("one source given but no grid flags; pass -live to re-run the baseline's own jobs")
			}
			g := vliwmt.Grid{
				Schemes:         merge.SplitNames(*schemes),
				Mixes:           merge.SplitNames(*mixes),
				InstrLimit:      *instr,
				TimesliceCycles: *timeslice,
				Seed:            *seed,
				SharedSeed:      *sharedSeed,
			}
			if jobs, err = g.Jobs(); err != nil {
				return false, err
			}
		}
		results, err := vliwmt.SweepJobs(context.Background(), jobs, &vliwmt.SweepOptions{Workers: *workers})
		if err != nil {
			return false, err
		}
		if newSnap, err = vliwmt.SnapshotResults(results); err != nil {
			return false, err
		}
	default:
		flag.Usage()
		return false, fmt.Errorf("want two snapshot sources, or one source plus grid flags or -live")
	}

	if *save != "" {
		if err := vliwmt.WriteSnapshot(*save, newSnap); err != nil {
			return false, err
		}
	}
	d := vliwmt.DiffSnapshots(oldSnap, newSnap)
	d.WriteText(os.Stdout, oldName, newName)
	return d.Clean(), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vliwdiff: ")
	clean, err := run()
	if err != nil {
		log.Fatal(err)
	}
	if !clean {
		os.Exit(1)
	}
}
