// Command vliwserve serves the sweep engine over HTTP: a remote client
// POSTs a scheme x mix grid (or an explicit job set), streams NDJSON
// progress, and fetches deterministically aggregated results. The
// companion client is vliwmt.Client, and `vliwsweep -addr` submits the
// same grids it runs locally.
//
// Usage:
//
//	vliwserve                                  # listen on :8080
//	vliwserve -addr :9090 -workers 8
//	vliwserve -results /var/cache/vliwmt       # serve repeat sweeps from disk
//
// Endpoints (versioned JSON wire format):
//
//	POST   /v1/sweeps             submit (202; ?wait=1 blocks, disconnect cancels)
//	GET    /v1/sweeps             list sweeps
//	GET    /v1/sweeps/{id}         status + results once finished
//	GET    /v1/sweeps/{id}/events  NDJSON progress stream
//	DELETE /v1/sweeps/{id}         cancel
//	GET    /healthz               liveness probe
//	GET    /metrics               Prometheus text format (disable with -debug=false)
//	GET    /debug/pprof/          net/http/pprof      (disable with -debug=false)
//
// All sweeps share one compile cache for the life of the process, and
// results are bit-identical to an in-process run of the same grid and
// seed at any worker count. SIGINT/SIGTERM drain the listener and
// cancel in-flight sweeps.
//
// Structured tracing goes to stderr via log/slog: every sweep logs
// span-style start/finish events tagged with its ID (-log-level debug
// adds a line per job; -log-json switches to JSON lines for log
// shippers).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vliwmt/internal/server"
	"vliwmt/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vliwserve: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		workers  = flag.Int("workers", 0, "default per-sweep worker pool size (0: runtime.NumCPU())")
		results  = flag.String("results", "", "directory for result persistence (empty: disabled)")
		quiet    = flag.Bool("quiet", false, "suppress request and sweep lifecycle logging")
		debug    = flag.Bool("debug", true, "serve GET /metrics (Prometheus text format) and /debug/pprof/")
		logLevel = flag.String("log-level", "info", "structured-trace level: debug, info, warn or error (debug adds a line per job)")
		logJSON  = flag.Bool("log-json", false, "emit structured traces as JSON lines instead of text")
	)
	flag.Parse()

	if _, err := telemetry.ConfigureSlog(os.Stderr, *logLevel, *logJSON); err != nil {
		log.Fatal(err)
	}
	opts := server.Options{Workers: *workers, ResultDir: *results, DisableDebug: !*debug}
	if !*quiet {
		opts.Log = log.Default()
	}
	srv := server.New(opts)
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("listening on http://%s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		stop()
		// Cancel in-flight sweeps first so wait-mode handlers return,
		// then drain the listener.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	// Serve returns ErrServerClosed as soon as Shutdown begins; wait for
	// the drain to finish before exiting the process.
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	log.Print("shut down")
}
