// Command vliwasm compiles a Table 1 benchmark kernel and prints its
// scheduled clustered-VLIW code, static statistics, or binary encoding —
// the repository's equivalent of a compiler's -S output.
//
// Usage:
//
//	vliwasm -bench idct
//	vliwasm -bench mcf -stats
//	vliwasm -bench x264 -encode | xxd | head
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vliwmt"
	"vliwmt/internal/isa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vliwasm: ")
	var (
		bench  = flag.String("bench", "", "benchmark to compile (see vliwsim -list)")
		stats  = flag.Bool("stats", false, "print static statistics only")
		encode = flag.Bool("encode", false, "write the binary encoding to stdout")
	)
	flag.Parse()
	if *bench == "" {
		log.Fatal("specify -bench")
	}
	m := vliwmt.DefaultMachine()
	p, err := vliwmt.CompileBenchmark(*bench, m)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *stats:
		ni, no := p.NumInstructions(), p.NumOps()
		fmt.Printf("program:       %s\n", p.Name)
		fmt.Printf("blocks:        %d\n", len(p.Blocks))
		fmt.Printf("instructions:  %d\n", ni)
		fmt.Printf("operations:    %d\n", no)
		fmt.Printf("ops/instr:     %.2f (static issue density)\n", p.StaticOpsPerInstr())
		fmt.Printf("code size:     %d bytes\n", p.CodeSize)
		fmt.Printf("branch sites:  %d\n", p.NumBranchSites)
	case *encode:
		var buf []byte
		for bi := range p.Blocks {
			for _, in := range p.Blocks[bi].Instrs {
				buf = isa.AppendEncoded(buf, in)
			}
		}
		if _, err := os.Stdout.Write(buf); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Print(p.Disassemble())
	}
}
