package vliwmt

import (
	"context"
	"fmt"
	"net/http"

	"vliwmt/internal/api"
)

// ServerHealth is the structured liveness document served by
// GET /v1/healthz on vliwserve and vliwfabric: build identity, current
// load and (when persistence is configured) result-store traffic.
type ServerHealth = api.Health

// FabricClient submits sweeps through a vliwfabric coordinator
// (cmd/vliwfabric), which shards them by content key and fans them out
// to its registered worker pool. The coordinator speaks the same wire
// format as a single vliwserve box, so FabricClient is a Client — the
// distinction is documentary: what you get back is still bit-identical
// to an in-process run, it just arrived from many machines, with each
// Result's Worker and Shard recording where it was computed.
type FabricClient struct {
	*Client
}

// NewFabricClient returns a client for the coordinator at addr, e.g.
// "coordinator:8080". A bare host:port is given an http scheme.
func NewFabricClient(addr string) *FabricClient {
	return &FabricClient{Client: NewClient(addr)}
}

// Health fetches the server's structured health document — a richer
// probe than Ping, exposing active sweeps and store counters. Both
// vliwserve and vliwfabric serve it.
func (c *Client) Health(ctx context.Context) (ServerHealth, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/healthz", nil)
	if err != nil {
		return ServerHealth{}, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return ServerHealth{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ServerHealth{}, fmt.Errorf("vliwmt: health: %s: %s", resp.Status, readError(resp.Body))
	}
	return api.DecodeHealth(resp.Body)
}
