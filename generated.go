package vliwmt

import (
	"fmt"

	"vliwmt/internal/wgen"
)

// Synthetic workloads. The generator in internal/wgen emits IR kernels
// from a typed parameter profile; a generated benchmark is identified
// everywhere by its canonical "gen:" name, which encodes the profile
// and seed completely. CompileBenchmark, SweepJob.Benchmarks,
// Grid.Mixes ("genmix:" names), Runner, Client and the sweep fabric
// all accept generated names exactly like Table 1 names.

// GenClass is the generator's ILP class axis.
type GenClass = wgen.Class

// Generator ILP classes.
const (
	GenLowILP    = wgen.Low
	GenMediumILP = wgen.Medium
	GenHighILP   = wgen.High
)

// GenProfile is the typed parameter point a synthetic kernel is
// generated from: ILP class, kernel shape (blocks, ops per block),
// memory/multiply densities, branch density and taken bias, loop trip
// counts and compiler unroll factor. See the field documentation in
// internal/wgen for the legal ranges.
type GenProfile = wgen.Profile

// GenStreamOptions parameterizes a generated multi-tenant request
// stream (a load-model scenario).
type GenStreamOptions = wgen.StreamOptions

// GenRequest is one arrival in a generated request stream.
type GenRequest = wgen.Request

// GenerateKernel emits the synthetic kernel of the (profile, seed)
// point: deterministic, byte-identical for equal inputs. The kernel
// compiles with CompileKernel like any hand-built one.
func GenerateKernel(p GenProfile, seed uint64) (*Kernel, error) {
	return wgen.Generate(p, seed)
}

// GeneratedBenchmark validates the profile and returns the canonical
// benchmark name of the (profile, seed) point, e.g.
// "gen:H:b2:o32:m1500:u2000:x500:p2500:t64:r1:s42". The name is
// accepted wherever a Table 1 benchmark name is.
func GeneratedBenchmark(p GenProfile, seed uint64) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	return wgen.BenchmarkName(p, seed), nil
}

// ParseGeneratedBenchmark decodes a canonical generated benchmark name
// back to its profile and seed.
func ParseGeneratedBenchmark(name string) (GenProfile, uint64, error) {
	return wgen.Parse(name)
}

// RandomGenProfile draws a random profile of the given ILP class,
// deterministically from the seed — the sampler behind generated
// mixes and corpora.
func RandomGenProfile(c GenClass, seed uint64) GenProfile {
	return wgen.RandomProfile(wgen.NewRand(seed), c)
}

// GeneratedMix returns the canonical name of a generated 4-thread mix
// for a Table-2-style ILP-class combination ("LMHH") and seed, e.g.
// "genmix:LMHH:s7". The name is accepted wherever a Table 2 mix name
// is (RunMix, Grid.Mixes), and expands deterministically to four
// generated benchmarks.
func GeneratedMix(combo string, seed uint64) (string, error) {
	return wgen.MixName(combo, seed)
}

// GenerateStream emits a deterministic multi-tenant request stream:
// exponential interarrivals, each request a generated 4-thread mix
// drawn from a class-combination palette, with optional round-robin
// scheme assignment — the mediaserver deployment generalised into a
// load model.
func GenerateStream(opt GenStreamOptions, seed uint64) ([]GenRequest, error) {
	return wgen.GenerateStream(opt, seed)
}

// StreamJobs lowers a generated request stream to sweep jobs on the
// paper's default machine and budget (instrLimit 0 selects the sweep
// default of 300k instructions; the timeslice is 1% of the budget,
// floored at 1000 cycles). Each request becomes one job carrying the
// request's members, scheme and seed, so the whole scenario runs
// through SweepJobs, a Runner, a Client or the fabric unchanged.
func StreamJobs(reqs []GenRequest, instrLimit int64) []SweepJob {
	if instrLimit <= 0 {
		instrLimit = 300_000
	}
	slice := instrLimit / 100
	if slice < 1000 {
		slice = 1000
	}
	jobs := make([]SweepJob, len(reqs))
	for i, r := range reqs {
		label := fmt.Sprintf("req%04d/%s", r.Index, r.Mix)
		if r.Scheme != "" {
			label += "/" + r.Scheme
		}
		jobs[i] = SweepJob{
			Label:           label,
			Scheme:          r.Scheme,
			Benchmarks:      append([]string(nil), r.Members[:]...),
			Machine:         DefaultMachine(),
			ICache:          DefaultCache(),
			DCache:          DefaultCache(),
			InstrLimit:      instrLimit,
			TimesliceCycles: slice,
			Seed:            r.Seed,
		}
	}
	return jobs
}
