package vliwmt_test

import (
	"context"
	"strings"
	"testing"

	"vliwmt"
)

func fastConfig(contexts int, scheme string) vliwmt.Config {
	cfg := vliwmt.DefaultConfig()
	cfg.Contexts = contexts
	cfg.Scheme = scheme
	cfg.InstrLimit = 40_000
	cfg.TimesliceCycles = 2_000
	return cfg
}

func TestRunMixEndToEnd(t *testing.T) {
	res, err := vliwmt.RunMix(fastConfig(4, "2SC3"), "LLHH")
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 1 {
		t.Errorf("LLHH under 2SC3 IPC = %.3f, expected multithreaded speedup", res.IPC)
	}
	if len(res.Threads) != 4 {
		t.Errorf("got %d thread stats", len(res.Threads))
	}
	if _, err := vliwmt.RunMix(fastConfig(4, "2SC3"), "ZZZZ"); err == nil {
		t.Error("RunMix accepted unknown mix")
	}
	if _, err := vliwmt.RunMix(fastConfig(4, "NOPE"), "LLHH"); err == nil {
		t.Error("RunMix accepted unknown scheme")
	}
}

func TestSchemesMetadata(t *testing.T) {
	schemes := vliwmt.Schemes()
	if len(schemes) != 16 {
		t.Fatalf("got %d schemes", len(schemes))
	}
	for _, s := range schemes {
		desc, err := vliwmt.DescribeScheme(s)
		if err != nil {
			t.Errorf("DescribeScheme(%s): %v", s, err)
		}
		if !strings.Contains(desc, "T0") {
			t.Errorf("DescribeScheme(%s) = %q", s, desc)
		}
		n := vliwmt.SchemeThreads(s)
		if n != 2 && n != 4 {
			t.Errorf("SchemeThreads(%s) = %d", s, n)
		}
	}
	if desc, _ := vliwmt.DescribeScheme("2SC3"); desc != "C3(S(T0,T1),T2,T3)" {
		t.Errorf("2SC3 tree = %q", desc)
	}
}

func TestCostAPI(t *testing.T) {
	m := vliwmt.DefaultMachine()
	c2sc3, err := vliwmt.Cost(m, "2SC3")
	if err != nil {
		t.Fatal(err)
	}
	c3sss, err := vliwmt.Cost(m, "3SSS")
	if err != nil {
		t.Fatal(err)
	}
	if c2sc3.Transistors >= c3sss.Transistors {
		t.Errorf("2SC3 (%d tr) not cheaper than 3SSS (%d tr)", c2sc3.Transistors, c3sss.Transistors)
	}
	pts, err := vliwmt.CostScaling(m, 2, 4)
	if err != nil || len(pts) != 3 {
		t.Fatalf("CostScaling: %v, %d points", err, len(pts))
	}
}

func TestCustomKernelFlow(t *testing.T) {
	k := vliwmt.NewKernel("axpy")
	x := k.Stream(vliwmt.MemStream{Kind: vliwmt.StreamStride, Stride: 8, Footprint: 1 << 16})
	k.Block("body")
	v := k.Load(x)
	w := k.Mul(v)
	k.Store(x, k.ALU(w))
	k.Branch("body", vliwmt.Loop(32))
	kern, err := k.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := vliwmt.DefaultMachine()
	prog, err := vliwmt.CompileKernel(kern, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	ipcP, err := vliwmt.SingleThreadIPC(m, prog, 20_000, true)
	if err != nil {
		t.Fatal(err)
	}
	ipcR, err := vliwmt.SingleThreadIPC(m, prog, 20_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if ipcR > ipcP+1e-9 {
		t.Errorf("IPCr %.3f above IPCp %.3f", ipcR, ipcP)
	}
	if ipcP <= 0 {
		t.Error("no progress")
	}
}

func TestCompileBenchmarkAndDisassemble(t *testing.T) {
	m := vliwmt.DefaultMachine()
	p, err := vliwmt.CompileBenchmark("idct", m)
	if err != nil {
		t.Fatal(err)
	}
	if text := p.Disassemble(); !strings.Contains(text, "program idct") {
		t.Error("disassembly missing header")
	}
	if _, err := vliwmt.CompileBenchmark("nonesuch", m); err == nil {
		t.Error("CompileBenchmark accepted unknown name")
	}
}

func TestBenchmarksAndMixes(t *testing.T) {
	if len(vliwmt.Benchmarks()) != 12 {
		t.Error("not 12 benchmarks")
	}
	if len(vliwmt.Mixes()) != 9 {
		t.Error("not 9 mixes")
	}
}

func TestSweepEndToEnd(t *testing.T) {
	grid := vliwmt.Grid{
		Schemes:    []string{"2SC3", "3SSS"},
		Mixes:      []string{"LLHH", "MMMM"},
		InstrLimit: 10_000,
		Seed:       1,
	}
	var calls int
	results, err := vliwmt.Sweep(context.Background(), grid,
		&vliwmt.SweepOptions{Workers: 4, Progress: func(done, total int, r vliwmt.SweepResult) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || calls != 4 {
		t.Fatalf("got %d results, %d progress calls, want 4 and 4", len(results), calls)
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d: aggregation not ordered", i, r.Index)
		}
		ipc, err := r.IPC()
		if err != nil {
			t.Fatal(err)
		}
		if ipc <= 0 {
			t.Errorf("%s: non-positive IPC", r.Job.Label)
		}
	}
	if _, err := vliwmt.Sweep(context.Background(), vliwmt.Grid{Mixes: []string{"nonesuch"}}, nil); err == nil {
		t.Error("Sweep accepted an unknown mix")
	}
}
