// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the CLIs, so future perf work on the simulator hot path can be
// profiled on real workloads without editing code:
//
//	vliwsweep -mixes LLHH -cpuprofile cpu.prof
//	paperfigs -table1 -memprofile mem.prof
//	go tool pprof cpu.prof
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). Either path may be empty; with both empty
// Start is a no-op. Call stop once, when the measured work is done.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize final heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
