package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"vliwmt/internal/isa"
)

func testOpts() Options {
	return DefaultOptions().Scale(60_000)
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.IPCr > r.IPCp+1e-9 {
			t.Errorf("%s: IPCr %.3f above IPCp %.3f", r.Name, r.IPCr, r.IPCp)
		}
		if r.IPCp <= 0 {
			t.Errorf("%s: non-positive IPCp", r.Name)
		}
		// Within 25% of the paper at this reduced budget.
		if rel := math.Abs(r.IPCp-r.PaperIPCp) / r.PaperIPCp; rel > 0.25 {
			t.Errorf("%s: IPCp %.3f vs paper %.2f (%.0f%%)", r.Name, r.IPCp, r.PaperIPCp, rel*100)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	f, err := Fig4(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !(f.SingleThread < f.TwoThread && f.TwoThread < f.FourThread) {
		t.Fatalf("IPC not increasing with threads: %+v", f)
	}
	// The paper reports a 61% advantage of 4-thread over 2-thread SMT.
	adv := 100 * (f.FourThread - f.TwoThread) / f.TwoThread
	if adv < 30 || adv > 95 {
		t.Errorf("4T over 2T advantage = %.0f%%, want the paper's ballpark (61%%)", adv)
	}
}

func TestFig5Shape(t *testing.T) {
	pts, err := Fig5(isa.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 || pts[0].Threads != 2 || pts[6].Threads != 8 {
		t.Fatalf("unexpected thread range: %+v", pts)
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 9 mixes + average", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.Mix != "Average" {
		t.Fatalf("last row is %q", avg.Mix)
	}
	// SMT wins on every workload; the average advantage is in the
	// paper's ballpark (27%).
	for _, r := range rows[:9] {
		if r.AdvantagePc <= 0 {
			t.Errorf("%s: SMT not ahead of CSMT (%.1f%%)", r.Mix, r.AdvantagePc)
		}
	}
	if avg.AdvantagePc < 15 || avg.AdvantagePc > 45 {
		t.Errorf("average advantage %.1f%%, want paper ballpark (27%%)", avg.AdvantagePc)
	}
}

// TestFig10WorkerCountInvariance asserts the acceptance criterion of the
// sweep-engine refactor: the full 16-scheme x 9-mix sweep produces
// byte-identical numbers at every worker count.
func TestFig10WorkerCountInvariance(t *testing.T) {
	render := func(rows []Figure10Row) string {
		var b strings.Builder
		for _, r := range rows {
			fmt.Fprintf(&b, "%s:", r.Mix)
			for _, s := range Fig10Schemes() {
				fmt.Fprintf(&b, " %s=%.15f", s, r.IPC[s])
			}
			fmt.Fprintln(&b)
		}
		return b.String()
	}
	// A small budget keeps this affordable under -race in CI; the
	// engine-level 1/4/16 invariance test lives in internal/sweep.
	opts := DefaultOptions().Scale(5_000)
	var want string
	for _, workers := range []int{1, 16} {
		opts.Workers = workers
		rows, err := Fig10(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := render(rows)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("workers=%d changed the Fig10 numbers", workers)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget Fig10 sweep (144 simulations) skipped in -short")
	}
	opts := testOpts()
	rows, err := Fig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	avg := rows[len(rows)-1].IPC

	// Functional identities: schemes the paper groups as identical.
	for _, pair := range [][2]string{{"C4", "3CCC"}, {"2SC3", "3SCC"}, {"2C3S", "3CCS"}} {
		if math.Abs(avg[pair[0]]-avg[pair[1]]) > 1e-9 {
			t.Errorf("%s and %s differ: %.4f vs %.4f", pair[0], pair[1], avg[pair[0]], avg[pair[1]])
		}
	}
	// 3SSS is the peak; 1S the floor.
	for s, v := range avg {
		if v > avg["3SSS"]+1e-9 {
			t.Errorf("%s (%.3f) above 3SSS (%.3f)", s, v, avg["3SSS"])
		}
		if v < avg["1S"]-1e-9 {
			t.Errorf("%s (%.3f) below 1S (%.3f)", s, v, avg["1S"])
		}
	}
	// The single-SMT-block schemes beat 4-thread CSMT and land within
	// ~15% of 4-thread SMT (the paper reports +14% and -11%).
	for _, s := range []string{"2SC3", "3SCC", "3CSC", "3CCS", "2C3S"} {
		if avg[s] <= avg["3CCC"] {
			t.Errorf("%s (%.3f) not above 3CCC (%.3f)", s, avg[s], avg["3CCC"])
		}
		if avg[s] < 0.85*avg["3SSS"] {
			t.Errorf("%s (%.3f) more than 15%% below 3SSS (%.3f)", s, avg[s], avg["3SSS"])
		}
	}
	// The near-SMT schemes sit within ~8% of the peak (paper: 5.6%).
	for _, s := range []string{"3CSS", "3SCS", "3SSC"} {
		if avg[s] < 0.92*avg["3SSS"] {
			t.Errorf("%s (%.3f) more than 8%% below 3SSS (%.3f)", s, avg[s], avg["3SSS"])
		}
	}
	// Balanced CSMT merges less than the serial cascade.
	if avg["2CC"] >= avg["3CCC"] {
		t.Errorf("2CC (%.3f) not below 3CCC (%.3f)", avg["2CC"], avg["3CCC"])
	}

	// Tradeoffs combine with Figure 9 costs.
	pts, err := Tradeoffs(opts.Machine, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig10Schemes()) {
		t.Fatalf("got %d tradeoff points", len(pts))
	}
	by := map[string]TradeoffPoint{}
	for _, p := range pts {
		by[p.Scheme] = p
		if p.IPC <= 0 || p.Transistors <= 0 || p.GateDelays <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
	// The paper's conclusion: 2SC3 dominates 2SC (more performance for
	// fewer transistors) and approaches 3SSS at a fraction of its cost.
	if by["2SC3"].Transistors >= by["2SC"].Transistors || by["2SC3"].IPC < by["2SC"].IPC-1e-9 {
		t.Errorf("2SC3 does not dominate 2SC: %+v vs %+v", by["2SC3"], by["2SC"])
	}
	if by["2SC3"].Transistors > by["3SSS"].Transistors/2 {
		t.Errorf("2SC3 costs %d transistors, not well below 3SSS's %d",
			by["2SC3"].Transistors, by["3SSS"].Transistors)
	}
}

func TestTradeoffsValidation(t *testing.T) {
	if _, err := Tradeoffs(isa.Default(), nil); err == nil {
		t.Error("Tradeoffs accepted empty input")
	}
	if _, err := Tradeoffs(isa.Default(), []Figure10Row{{Mix: "LLLL"}}); err == nil {
		t.Error("Tradeoffs accepted rows without average")
	}
}
