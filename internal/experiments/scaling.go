package experiments

import (
	"fmt"

	"vliwmt/internal/cost"
	"vliwmt/internal/merge"
	"vliwmt/internal/sweep"
)

// ScalingRow is one 8-thread design point: performance on an
// eight-benchmark workload plus merge-control hardware cost.
type ScalingRow struct {
	Scheme      string
	Structure   string
	IPC         float64
	Transistors int
	GateDelays  int
}

// Scaling8Schemes lists the 8-thread merge controls evaluated by the
// extension experiment, from all-CSMT to all-SMT:
//
//	C8        single-level parallel CSMT
//	7CCCCCCC  serial CSMT cascade
//	2SC7      one SMT pair, rest folded in by parallel CSMT
//	4SC3C3C3  one SMT pair, three parallel-CSMT levels
//	7SSSSSSS  full 8-thread SMT (the upper bound the paper deems
//	          unimplementable in hardware)
func Scaling8Schemes() []string {
	return []string{"C8", "7CCCCCCC", "2SC7", "4SC3C3C3", "7SSSSSSS"}
}

// scaling8Workload is the eight-thread job mix: the paper's class balance
// (half low-ILP, a quarter medium, a quarter high) extended to eight
// threads.
var scaling8Workload = []string{
	"mcf", "bzip2", "blowfish", "gsmencode",
	"g721encode", "djpeg", "x264", "colorspace",
}

// Scaling8 runs the extension experiment the paper's motivation points
// to: beyond four threads, SMT merging is unbuildable but mixed schemes
// keep most of its performance at CSMT-like cost. Returns one row per
// scheme in Scaling8Schemes order.
func Scaling8(opts Options) ([]ScalingRow, error) {
	schemes := Scaling8Schemes()
	var jobs []sweep.Job
	for _, scheme := range schemes {
		jobs = append(jobs, opts.job("8T/"+scheme, scheme, 8, false, scaling8Workload...))
	}
	ipcs, err := opts.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for i, scheme := range schemes {
		tree, err := merge.Parse(scheme, 8)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling scheme %s: %w", scheme, err)
		}
		sc, err := cost.ForScheme(opts.Machine, scheme)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Scheme:      scheme,
			Structure:   tree.String(),
			IPC:         ipcs[i],
			Transistors: sc.Transistors,
			GateDelays:  sc.GateDelays,
		})
	}
	return rows, nil
}
