// Package experiments reproduces each table and figure of the paper's
// evaluation: one driver per experiment, shared by cmd/paperfigs (full-size
// runs), the root-level benchmark harness and the test suite (scaled-down
// runs).
package experiments

import (
	"fmt"

	"vliwmt/internal/cache"
	"vliwmt/internal/cost"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/program"
	"vliwmt/internal/sim"
	"vliwmt/internal/workload"
)

// Options scales and seeds the simulation-based experiments.
type Options struct {
	Machine isa.Machine
	ICache  cache.Config
	DCache  cache.Config
	// InstrLimit is the per-thread instruction budget (the paper runs
	// 100M; scaled-down runs converge long before that because the
	// kernels are loops).
	InstrLimit int64
	// Timeslice is the OS scheduling quantum in cycles.
	Timeslice int64
	Seed      uint64
}

// DefaultOptions returns the paper's machine with a 300k-instruction
// budget (adequate for stable IPC on the synthetic kernels). The OS
// quantum keeps the paper's proportions: the paper slices 1M cycles
// against a 100M-instruction budget, so scaled-down runs slice
// InstrLimit/100 cycles (Fig4's single-context configuration must rotate
// through all four threads many times per run, exactly as the paper's
// multitasking setup does).
func DefaultOptions() Options {
	o := Options{
		Machine:    isa.Default(),
		ICache:     cache.DefaultConfig(),
		DCache:     cache.DefaultConfig(),
		InstrLimit: 300_000,
		Seed:       1,
	}
	o.Timeslice = o.InstrLimit / 100
	return o
}

// Scale adjusts the instruction budget, keeping the timeslice proportional
// (1% of the budget, as in the paper).
func (o Options) Scale(instrLimit int64) Options {
	o.InstrLimit = instrLimit
	o.Timeslice = instrLimit / 100
	if o.Timeslice < 1000 {
		o.Timeslice = 1000
	}
	return o
}

// compiled caches compiled programs per benchmark.
type compiled map[string]*program.Program

func compileAll(opts Options) (compiled, error) {
	out := compiled{}
	for _, b := range workload.Benchmarks() {
		p, err := b.Compile(opts.Machine)
		if err != nil {
			return nil, fmt.Errorf("experiments: compile %s: %w", b.Name, err)
		}
		out[b.Name] = p
	}
	return out, nil
}

func (c compiled) tasks(names ...string) []sim.Task {
	var ts []sim.Task
	for _, n := range names {
		ts = append(ts, sim.Task{Name: n, Prog: c[n]})
	}
	return ts
}

func (opts Options) config(contexts int, scheme string, perfect bool) sim.Config {
	return sim.Config{
		Machine:         opts.Machine,
		ICache:          opts.ICache,
		DCache:          opts.DCache,
		PerfectMemory:   perfect,
		Contexts:        contexts,
		Scheme:          scheme,
		TimesliceCycles: opts.Timeslice,
		InstrLimit:      opts.InstrLimit,
		Seed:            opts.Seed,
	}
}

// Table1Row is one benchmark's measured single-thread behaviour next to
// the paper's published values.
type Table1Row struct {
	Name        string
	Class       workload.ILPClass
	Description string
	IPCr, IPCp  float64
	PaperIPCr   float64
	PaperIPCp   float64
}

// Table1 measures IPCr (real caches) and IPCp (perfect memory) for every
// benchmark on a single-thread processor.
func Table1(opts Options) ([]Table1Row, error) {
	progs, err := compileAll(opts)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, b := range workload.Benchmarks() {
		row := Table1Row{Name: b.Name, Class: b.Class, Description: b.Description,
			PaperIPCr: b.PaperIPCr, PaperIPCp: b.PaperIPCp}
		for _, perfect := range []bool{false, true} {
			res, err := sim.Run(opts.config(1, "", perfect), progs.tasks(b.Name))
			if err != nil {
				return nil, fmt.Errorf("experiments: table1 %s: %w", b.Name, err)
			}
			if perfect {
				row.IPCp = res.IPC
			} else {
				row.IPCr = res.IPC
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runMix simulates one Table 2 mix under the given context count and
// scheme, returning the achieved IPC.
func runMix(opts Options, progs compiled, mix workload.Mix, contexts int, scheme string) (float64, error) {
	res, err := sim.Run(opts.config(contexts, scheme, false), progs.tasks(mix.Members[:]...))
	if err != nil {
		return 0, fmt.Errorf("experiments: mix %s scheme %s: %w", mix.Name, scheme, err)
	}
	if res.TimedOut {
		return 0, fmt.Errorf("experiments: mix %s scheme %s timed out", mix.Name, scheme)
	}
	return res.IPC, nil
}

// Figure4 holds the average SMT IPC at one, two and four hardware threads
// over the nine workloads.
type Figure4 struct {
	SingleThread float64
	TwoThread    float64
	FourThread   float64
}

// Fig4 computes Figure 4.
func Fig4(opts Options) (Figure4, error) {
	progs, err := compileAll(opts)
	if err != nil {
		return Figure4{}, err
	}
	var f Figure4
	n := 0
	for _, mix := range workload.Mixes() {
		one, err := runMix(opts, progs, mix, 1, "")
		if err != nil {
			return f, err
		}
		two, err := runMix(opts, progs, mix, 2, "1S")
		if err != nil {
			return f, err
		}
		four, err := runMix(opts, progs, mix, 4, "3SSS")
		if err != nil {
			return f, err
		}
		f.SingleThread += one
		f.TwoThread += two
		f.FourThread += four
		n++
	}
	f.SingleThread /= float64(n)
	f.TwoThread /= float64(n)
	f.FourThread /= float64(n)
	return f, nil
}

// Fig5 computes Figure 5 (merge control cost versus thread count).
func Fig5(m isa.Machine) ([]cost.ControlPoint, error) {
	return cost.ControlScaling(m, 2, 8)
}

// Figure6Row is one workload's SMT-over-CSMT performance advantage.
type Figure6Row struct {
	Mix         string
	SMT, CSMT   float64
	AdvantagePc float64
}

// Fig6 computes Figure 6: the 4-thread SMT (3SSS) advantage over 4-thread
// CSMT (3CCC) per workload, plus the average as the final row.
func Fig6(opts Options) ([]Figure6Row, error) {
	progs, err := compileAll(opts)
	if err != nil {
		return nil, err
	}
	var rows []Figure6Row
	var sum float64
	for _, mix := range workload.Mixes() {
		smt, err := runMix(opts, progs, mix, 4, "3SSS")
		if err != nil {
			return nil, err
		}
		csmt, err := runMix(opts, progs, mix, 4, "3CCC")
		if err != nil {
			return nil, err
		}
		adv := 100 * (smt - csmt) / csmt
		rows = append(rows, Figure6Row{Mix: mix.Name, SMT: smt, CSMT: csmt, AdvantagePc: adv})
		sum += adv
	}
	rows = append(rows, Figure6Row{Mix: "Average", AdvantagePc: sum / float64(len(workload.Mixes()))})
	return rows, nil
}

// Fig9 computes Figure 9 (cost of the sixteen schemes).
func Fig9(m isa.Machine) ([]cost.SchemeCost, error) {
	return cost.PaperSchemes(m)
}

// Figure10Row is one workload's IPC under every scheme.
type Figure10Row struct {
	Mix string
	// IPC maps scheme name (plus "1S") to achieved IPC.
	IPC map[string]float64
}

// Fig10Schemes lists the schemes simulated for Figure 10 in display order.
func Fig10Schemes() []string {
	return []string{
		"1S", "3CCC", "C4", "2CC", "2CS",
		"2SC3", "2C3S", "3CCS", "3CSC", "3SCC",
		"3CSS", "3SSC", "3SCS", "2SC", "2SS", "3SSS",
	}
}

// Fig10 simulates every scheme on every workload. The final row holds the
// per-scheme averages ("Average").
func Fig10(opts Options) ([]Figure10Row, error) {
	progs, err := compileAll(opts)
	if err != nil {
		return nil, err
	}
	avg := Figure10Row{Mix: "Average", IPC: map[string]float64{}}
	var rows []Figure10Row
	for _, mix := range workload.Mixes() {
		row := Figure10Row{Mix: mix.Name, IPC: map[string]float64{}}
		for _, scheme := range Fig10Schemes() {
			contexts := merge.PortsFor(scheme)
			ipc, err := runMix(opts, progs, mix, contexts, scheme)
			if err != nil {
				return nil, err
			}
			row.IPC[scheme] = ipc
			avg.IPC[scheme] += ipc
		}
		rows = append(rows, row)
	}
	for s := range avg.IPC {
		avg.IPC[s] /= float64(len(workload.Mixes()))
	}
	return append(rows, avg), nil
}

// TradeoffPoint is one scheme in the Figures 11/12 scatter: average IPC
// against hardware cost.
type TradeoffPoint struct {
	Scheme      string
	IPC         float64
	Transistors int
	GateDelays  int
}

// Tradeoffs combines Figure 9 costs with Figure 10 average performance,
// yielding the data of Figures 11 (IPC vs transistors) and 12 (IPC vs gate
// delays). Accepts precomputed Fig10 rows to avoid re-simulation.
func Tradeoffs(m isa.Machine, fig10 []Figure10Row) ([]TradeoffPoint, error) {
	if len(fig10) == 0 {
		return nil, fmt.Errorf("experiments: tradeoffs need Fig10 results")
	}
	avg := fig10[len(fig10)-1]
	if avg.Mix != "Average" {
		return nil, fmt.Errorf("experiments: last Fig10 row is %q, want Average", avg.Mix)
	}
	var pts []TradeoffPoint
	for _, s := range Fig10Schemes() {
		sc, err := cost.ForScheme(m, s)
		if err != nil {
			return nil, err
		}
		pts = append(pts, TradeoffPoint{Scheme: s, IPC: avg.IPC[s], Transistors: sc.Transistors, GateDelays: sc.GateDelays})
	}
	return pts, nil
}
