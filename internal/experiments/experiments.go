// Package experiments reproduces each table and figure of the paper's
// evaluation: one driver per experiment, shared by cmd/paperfigs (full-size
// runs), the root-level benchmark harness and the test suite (scaled-down
// runs).
//
// Every simulation-based driver expands its measurements into a job set
// and executes it on the internal/sweep worker pool, so independent runs
// use all available cores while results stay bit-identical to a serial
// sweep: jobs are seeded identically and aggregated by job index, not by
// completion order.
package experiments

import (
	"context"
	"fmt"

	"vliwmt/internal/cache"
	"vliwmt/internal/cost"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/sweep"
	"vliwmt/internal/workload"
)

// Options scales and seeds the simulation-based experiments.
type Options struct {
	Machine isa.Machine
	ICache  cache.Config
	DCache  cache.Config
	// InstrLimit is the per-thread instruction budget (the paper runs
	// 100M; scaled-down runs converge long before that because the
	// kernels are loops).
	InstrLimit int64
	// Timeslice is the OS scheduling quantum in cycles.
	Timeslice int64
	Seed      uint64
	// Workers bounds the sweep-engine worker pool; 0 selects
	// runtime.NumCPU(). Results are identical at any worker count.
	Workers int
	// Progress, when set, observes every completed simulation job.
	Progress sweep.ProgressFunc
}

// DefaultOptions returns the paper's machine with a 300k-instruction
// budget (adequate for stable IPC on the synthetic kernels). The OS
// quantum keeps the paper's proportions: the paper slices 1M cycles
// against a 100M-instruction budget, so scaled-down runs slice
// InstrLimit/100 cycles (Fig4's single-context configuration must rotate
// through all four threads many times per run, exactly as the paper's
// multitasking setup does).
func DefaultOptions() Options {
	o := Options{
		Machine:    isa.Default(),
		ICache:     cache.DefaultConfig(),
		DCache:     cache.DefaultConfig(),
		InstrLimit: 300_000,
		Seed:       1,
	}
	o.Timeslice = o.InstrLimit / 100
	return o
}

// Scale adjusts the instruction budget, keeping the timeslice proportional
// (1% of the budget, as in the paper).
func (o Options) Scale(instrLimit int64) Options {
	o.InstrLimit = instrLimit
	o.Timeslice = instrLimit / 100
	if o.Timeslice < 1000 {
		o.Timeslice = 1000
	}
	return o
}

// engine builds a sweep engine for one driver call. All drivers share
// the process-wide compile cache, so a paperfigs -all run compiles each
// kernel once, not once per figure.
func (o Options) engine() *sweep.Engine {
	e := sweep.New(o.Workers)
	e.SetCache(sweep.SharedCache())
	e.SetProgress(o.Progress)
	return e
}

// job expresses one measurement as a sweep job. Every job of a driver
// shares the options seed — exactly the serial drivers' behaviour, and
// required for the paper's scheme identities (C4 vs 3CCC) to hold.
func (o Options) job(label, scheme string, contexts int, perfect bool, benches ...string) sweep.Job {
	return sweep.Job{
		Label:           label,
		Scheme:          scheme,
		Contexts:        contexts,
		Benchmarks:      benches,
		Machine:         o.Machine,
		ICache:          o.ICache,
		DCache:          o.DCache,
		PerfectMemory:   perfect,
		InstrLimit:      o.InstrLimit,
		TimesliceCycles: o.Timeslice,
		Seed:            o.Seed,
	}
}

// run executes the job set and returns per-job IPCs in submission order,
// converting timeouts and job failures into errors.
func (o Options) run(jobs []sweep.Job) ([]float64, error) {
	results, err := o.engine().Run(context.Background(), jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	ipcs := make([]float64, len(results))
	for i, r := range results {
		ipc, err := r.IPC()
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		ipcs[i] = ipc
	}
	return ipcs, nil
}

// Table1Row is one benchmark's measured single-thread behaviour next to
// the paper's published values.
type Table1Row struct {
	Name        string
	Class       workload.ILPClass
	Description string
	IPCr, IPCp  float64
	PaperIPCr   float64
	PaperIPCp   float64
}

// Table1 measures IPCr (real caches) and IPCp (perfect memory) for every
// benchmark on a single-thread processor.
func Table1(opts Options) ([]Table1Row, error) {
	benches := workload.Benchmarks()
	var jobs []sweep.Job
	for _, b := range benches {
		jobs = append(jobs,
			opts.job(b.Name+"/real", "", 1, false, b.Name),
			opts.job(b.Name+"/perfect", "", 1, true, b.Name))
	}
	ipcs, err := opts.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for i, b := range benches {
		rows = append(rows, Table1Row{
			Name: b.Name, Class: b.Class, Description: b.Description,
			IPCr: ipcs[2*i], IPCp: ipcs[2*i+1],
			PaperIPCr: b.PaperIPCr, PaperIPCp: b.PaperIPCp,
		})
	}
	return rows, nil
}

// mixJob expresses "run this Table 2 mix under this scheme and context
// count" as a sweep job.
func (o Options) mixJob(mix workload.Mix, contexts int, scheme string) sweep.Job {
	label := mix.Name + "/" + scheme
	if scheme == "" {
		label = mix.Name + "/ST"
	}
	return o.job(label, scheme, contexts, false, mix.Members[:]...)
}

// Figure4 holds the average SMT IPC at one, two and four hardware threads
// over the nine workloads.
type Figure4 struct {
	SingleThread float64
	TwoThread    float64
	FourThread   float64
}

// Fig4 computes Figure 4.
func Fig4(opts Options) (Figure4, error) {
	mixes := workload.Mixes()
	var jobs []sweep.Job
	for _, mix := range mixes {
		jobs = append(jobs,
			opts.mixJob(mix, 1, ""),
			opts.mixJob(mix, 2, "1S"),
			opts.mixJob(mix, 4, "3SSS"))
	}
	ipcs, err := opts.run(jobs)
	if err != nil {
		return Figure4{}, err
	}
	var f Figure4
	for i := range mixes {
		f.SingleThread += ipcs[3*i]
		f.TwoThread += ipcs[3*i+1]
		f.FourThread += ipcs[3*i+2]
	}
	n := float64(len(mixes))
	f.SingleThread /= n
	f.TwoThread /= n
	f.FourThread /= n
	return f, nil
}

// Fig5 computes Figure 5 (merge control cost versus thread count).
func Fig5(m isa.Machine) ([]cost.ControlPoint, error) {
	return cost.ControlScaling(m, 2, 8)
}

// Figure6Row is one workload's SMT-over-CSMT performance advantage.
type Figure6Row struct {
	Mix         string
	SMT, CSMT   float64
	AdvantagePc float64
}

// Fig6 computes Figure 6: the 4-thread SMT (3SSS) advantage over 4-thread
// CSMT (3CCC) per workload, plus the average as the final row.
func Fig6(opts Options) ([]Figure6Row, error) {
	mixes := workload.Mixes()
	var jobs []sweep.Job
	for _, mix := range mixes {
		jobs = append(jobs,
			opts.mixJob(mix, 4, "3SSS"),
			opts.mixJob(mix, 4, "3CCC"))
	}
	ipcs, err := opts.run(jobs)
	if err != nil {
		return nil, err
	}
	var rows []Figure6Row
	var sum float64
	for i, mix := range mixes {
		smt, csmt := ipcs[2*i], ipcs[2*i+1]
		adv := 100 * (smt - csmt) / csmt
		rows = append(rows, Figure6Row{Mix: mix.Name, SMT: smt, CSMT: csmt, AdvantagePc: adv})
		sum += adv
	}
	rows = append(rows, Figure6Row{Mix: "Average", AdvantagePc: sum / float64(len(mixes))})
	return rows, nil
}

// Fig9 computes Figure 9 (cost of the sixteen schemes).
func Fig9(m isa.Machine) ([]cost.SchemeCost, error) {
	return cost.PaperSchemes(m)
}

// Figure10Row is one workload's IPC under every scheme.
type Figure10Row struct {
	Mix string
	// IPC maps scheme name (plus "1S") to achieved IPC.
	IPC map[string]float64
}

// Fig10Schemes lists the schemes simulated for Figure 10 in display order.
func Fig10Schemes() []string {
	return []string{
		"1S", "3CCC", "C4", "2CC", "2CS",
		"2SC3", "2C3S", "3CCS", "3CSC", "3SCC",
		"3CSS", "3SSC", "3SCS", "2SC", "2SS", "3SSS",
	}
}

// Fig10 simulates every scheme on every workload — the repository's
// largest sweep (16 schemes x 9 mixes). The final row holds the
// per-scheme averages ("Average").
func Fig10(opts Options) ([]Figure10Row, error) {
	mixes := workload.Mixes()
	schemes := Fig10Schemes()
	var jobs []sweep.Job
	for _, mix := range mixes {
		for _, scheme := range schemes {
			jobs = append(jobs, opts.mixJob(mix, merge.PortsFor(scheme), scheme))
		}
	}
	ipcs, err := opts.run(jobs)
	if err != nil {
		return nil, err
	}
	avg := Figure10Row{Mix: "Average", IPC: map[string]float64{}}
	var rows []Figure10Row
	for i, mix := range mixes {
		row := Figure10Row{Mix: mix.Name, IPC: map[string]float64{}}
		for j, scheme := range schemes {
			ipc := ipcs[i*len(schemes)+j]
			row.IPC[scheme] = ipc
			avg.IPC[scheme] += ipc
		}
		rows = append(rows, row)
	}
	for s := range avg.IPC {
		avg.IPC[s] /= float64(len(mixes))
	}
	return append(rows, avg), nil
}

// TradeoffPoint is one scheme in the Figures 11/12 scatter: average IPC
// against hardware cost.
type TradeoffPoint struct {
	Scheme      string
	IPC         float64
	Transistors int
	GateDelays  int
}

// Tradeoffs combines Figure 9 costs with Figure 10 average performance,
// yielding the data of Figures 11 (IPC vs transistors) and 12 (IPC vs gate
// delays). Accepts precomputed Fig10 rows to avoid re-simulation.
func Tradeoffs(m isa.Machine, fig10 []Figure10Row) ([]TradeoffPoint, error) {
	if len(fig10) == 0 {
		return nil, fmt.Errorf("experiments: tradeoffs need Fig10 results")
	}
	avg := fig10[len(fig10)-1]
	if avg.Mix != "Average" {
		return nil, fmt.Errorf("experiments: last Fig10 row is %q, want Average", avg.Mix)
	}
	var pts []TradeoffPoint
	for _, s := range Fig10Schemes() {
		sc, err := cost.ForScheme(m, s)
		if err != nil {
			return nil, err
		}
		pts = append(pts, TradeoffPoint{Scheme: s, IPC: avg.IPC[s], Transistors: sc.Transistors, GateDelays: sc.GateDelays})
	}
	return pts, nil
}
