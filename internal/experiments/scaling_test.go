package experiments

import "testing"

// TestScaling8Shapes verifies the extension experiment: on eight hardware
// threads the mixed schemes recover most of the (unbuildable) 8-thread
// SMT performance at a fraction of its merge-control cost, and every
// merged design beats pure CSMT serial cost-wise or performance-wise in
// the expected direction.
func TestScaling8Shapes(t *testing.T) {
	rows, err := Scaling8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Scaling8Schemes()) {
		t.Fatalf("got %d rows", len(rows))
	}
	by := map[string]ScalingRow{}
	for _, r := range rows {
		by[r.Scheme] = r
		if r.IPC <= 0 || r.Transistors <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	smt := by["7SSSSSSS"]
	csmtSL := by["7CCCCCCC"]
	csmtPL := by["C8"]
	hybridPL := by["2SC7"]
	hybrid := by["4SC3C3C3"]

	// Functional identities: serial and parallel CSMT cascades, and the
	// two formulations of the SMT-pair-plus-CSMT hybrid.
	if csmtSL.IPC != csmtPL.IPC {
		t.Errorf("C8 (%.3f) and 7CCCCCCC (%.3f) differ", csmtPL.IPC, csmtSL.IPC)
	}
	if hybrid.IPC != hybridPL.IPC {
		t.Errorf("4SC3C3C3 (%.3f) and 2SC7 (%.3f) differ", hybrid.IPC, hybridPL.IPC)
	}
	// SMT is the performance ceiling.
	for _, r := range rows {
		if r.IPC > smt.IPC+1e-9 {
			t.Errorf("%s (%.3f) above 8-thread SMT (%.3f)", r.Scheme, r.IPC, smt.IPC)
		}
	}
	// The buildable hybrid (cascaded parallel-C3 levels) beats pure CSMT
	// and stays within 20% of full SMT at under a quarter of its
	// transistors; the single-level C7 form is functionally identical but
	// exponentially more expensive, mirroring the paper's Figure 5.
	if hybrid.IPC <= csmtSL.IPC {
		t.Errorf("4SC3C3C3 (%.3f) not above CSMT (%.3f)", hybrid.IPC, csmtSL.IPC)
	}
	if hybrid.IPC < 0.8*smt.IPC {
		t.Errorf("4SC3C3C3 (%.3f) more than 20%% below SMT (%.3f)", hybrid.IPC, smt.IPC)
	}
	if hybrid.Transistors >= smt.Transistors/4 {
		t.Errorf("4SC3C3C3 costs %d transistors, not well below SMT's %d",
			hybrid.Transistors, smt.Transistors)
	}
	if hybridPL.Transistors <= 3*hybrid.Transistors {
		t.Errorf("2SC7 (%d tr) not far above 4SC3C3C3 (%d tr)",
			hybridPL.Transistors, hybrid.Transistors)
	}
	// CSMT-only serial merge control stays the cheapest.
	if csmtSL.Transistors >= hybrid.Transistors {
		t.Errorf("CSMT serial (%d) not cheaper than the hybrid (%d)",
			csmtSL.Transistors, hybrid.Transistors)
	}
}
