package telemetry

import (
	"bytes"
	"context"
	"log/slog"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "", "")
	b := r.Counter("dup_total", "", "")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instrument")
	}
	la := r.Counter("dup_total", `route="x"`, "")
	if la == a {
		t.Fatal("a labeled series must be distinct from the unlabeled one")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dup_total", "", "")
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-5.555) > 1e-9 {
		t.Fatalf("sum = %g, want 5.555", h.Sum())
	}
	snap := r.Snapshot().Histograms["test_latency_seconds"]
	want := []int64{1, 1, 1, 1}
	for i, n := range want {
		if snap.Buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d (buckets %v)", i, snap.Buckets[i], n, snap.Buckets)
		}
	}
}

// TestHistogramObserveAllocFree pins the hot-path constraint: an
// Observe must never touch the heap (the engine observes per-job, the
// store per-probe; both sit under alloc-sensitive sweeps).
func TestHistogramObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc_test_seconds", "", "", DurationBuckets)
	c := r.Counter("alloc_test_total", "", "")
	g := r.Gauge("alloc_test_depth", "", "")
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.042)
		c.Inc()
		g.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("Observe/Inc/Add allocated %.1f times per run, want 0", allocs)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "", "", []float64{1})
	c := r.Counter("conc_total", "", "")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if want := 0.5 * workers * per; math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "", "Jobs processed.")
	c.Add(3)
	r.Counter("requests_total", `route="submit"`, "Requests.").Add(2)
	r.Counter("requests_total", `route="status"`, "Requests.").Inc()
	g := r.Gauge("depth", "", "Queue depth.")
	g.Set(9)
	h := r.Histogram("lat_seconds", "", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		`requests_total{route="submit"} 2`,
		`requests_total{route="status"} 1`,
		"# TYPE depth gauge",
		"depth 9",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 2.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with several series.
	if n := strings.Count(out, "# TYPE requests_total"); n != 1 {
		t.Errorf("requests_total family has %d TYPE headers, want 1", n)
	}
}

func TestSnapshotCounterSumsLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("fam_total", `route="a"`, "").Add(2)
	r.Counter("fam_total", `route="b"`, "").Add(3)
	r.Counter("fam_totalx", "", "").Add(100) // prefix must not match
	s := r.Snapshot()
	if got := s.Counter("fam_total"); got != 5 {
		t.Fatalf("Counter(fam_total) = %d, want 5", got)
	}
}

func TestSweepIDPropagation(t *testing.T) {
	ctx := context.Background()
	if id := SweepIDFrom(ctx); id != "" {
		t.Fatalf("empty context has ID %q", id)
	}
	ctx2, id := EnsureSweepID(ctx)
	if id == "" || SweepIDFrom(ctx2) != id {
		t.Fatalf("EnsureSweepID: id=%q, from ctx=%q", id, SweepIDFrom(ctx2))
	}
	ctx3, id3 := EnsureSweepID(WithSweepID(ctx, "s000042"))
	if id3 != "s000042" || SweepIDFrom(ctx3) != "s000042" {
		t.Fatalf("explicit ID not preserved: %q", id3)
	}
}

func TestConfigureSlog(t *testing.T) {
	old := slog.Default()
	defer slog.SetDefault(old)

	var buf bytes.Buffer
	lv, err := ConfigureSlog(&buf, "debug", false)
	if err != nil || lv != slog.LevelDebug {
		t.Fatalf("ConfigureSlog(debug) = %v, %v", lv, err)
	}
	slog.Debug("hello", "sweep", "s1")
	if !strings.Contains(buf.String(), "hello") || !strings.Contains(buf.String(), "sweep=s1") {
		t.Fatalf("debug line not emitted: %q", buf.String())
	}

	buf.Reset()
	if _, err := ConfigureSlog(&buf, "warn", true); err != nil {
		t.Fatal(err)
	}
	slog.Info("dropped")
	slog.Warn("kept", "k", 1)
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("info line emitted at warn level: %q", out)
	}
	if !strings.Contains(out, `"msg":"kept"`) {
		t.Fatalf("JSON handler not installed: %q", out)
	}

	if _, err := ParseLevel("nope"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}
