package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// sweepIDKey is the context key carrying a sweep's trace ID from the
// HTTP handler (or CLI) through the engine's span events down to the
// store probes logged on its behalf.
type sweepIDKey struct{}

// WithSweepID returns a context carrying the sweep trace ID.
func WithSweepID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, sweepIDKey{}, id)
}

// SweepIDFrom returns the context's sweep trace ID, or "".
func SweepIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(sweepIDKey{}).(string)
	return id
}

// sweepSeq numbers locally generated sweep IDs.
var sweepSeq atomic.Int64

// EnsureSweepID returns the context's sweep ID, generating and
// attaching a process-unique local one ("local-<n>") when the caller
// did not provide any — so engine span events always carry an ID,
// whether the sweep came over HTTP (server-assigned "s000042") or from
// an in-process call.
func EnsureSweepID(ctx context.Context) (context.Context, string) {
	if id := SweepIDFrom(ctx); id != "" {
		return ctx, id
	}
	id := fmt.Sprintf("local-%d", sweepSeq.Add(1))
	return WithSweepID(ctx, id), id
}

// ParseLevel converts a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}

// traceConfigured flips once ConfigureSlog runs. Until then
// TraceLogger returns a discard logger: the library must not start
// writing span events to stderr in processes that never asked for
// tracing (every pre-existing CLI, test and embedder).
var traceConfigured atomic.Bool

// discardLogger drops everything; see TraceLogger.
var discardLogger = slog.New(slog.DiscardHandler)

// TraceLogger returns the logger for span-style trace events: the
// process-wide slog default once ConfigureSlog has installed one, and
// a discard logger before that. Callers hold the result for the span's
// life (one sweep), so a mid-sweep ConfigureSlog affects the next
// sweep, not the running one.
func TraceLogger() *slog.Logger {
	if traceConfigured.Load() {
		return slog.Default()
	}
	return discardLogger
}

// ConfigureSlog installs the process-wide slog default used by the
// span-style tracing: level from a -log-level flag value, text or JSON
// handler per -log-json, writing to w (typically os.Stderr). It also
// arms TraceLogger, so the engine's sweep spans start flowing. It
// returns the resolved level so CLIs can gate their own verbosity.
func ConfigureSlog(w io.Writer, level string, json bool) (slog.Level, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return 0, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	slog.SetDefault(slog.New(h))
	traceConfigured.Store(true)
	return lv, nil
}
