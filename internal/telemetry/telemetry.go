// Package telemetry is the repo's zero-dependency metrics layer: atomic
// counters, gauges and fixed-bucket histograms collected in a
// process-wide registry, exposed three ways — Prometheus text format
// (the server's GET /metrics), a Snapshot value for embedders and
// tests, and structured slog tracing with a per-sweep ID propagated
// through context.
//
// The design constraints, in order:
//
//  1. Hot-path increments must be alloc-free and cheap enough to leave
//     in release builds: every instrument is a fixed set of
//     atomic.Int64 words (histogram sums use a CAS loop over float
//     bits), so Inc/Add/Observe never touch the heap. The simulator's
//     zero-allocs/cycle invariant (DESIGN.md, TestSteadyStateZeroAllocs)
//     holds on instrumented runs.
//  2. No external dependencies: the exposition writer speaks the
//     Prometheus text format directly (it is a stable, line-oriented
//     format), so nothing is imported beyond the standard library.
//  3. Registration is idempotent: instruments are declared as package
//     variables wherever they are used, but constructors return the
//     existing instrument when (name, labels) is already registered,
//     so tests that rebuild servers or engines never double-register.
//
// Metric names follow Prometheus conventions (snake_case, _total
// suffix on counters, unit-suffixed histograms); see the README's
// Observability section for the full table.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// kind is the exposition type of an instrument family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//vliw:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for exposition to make sense).
//
//vliw:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//vliw:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
//
//vliw:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observations are
// lock-free: each bucket is an atomic counter and the sum is a CAS
// loop over the float's bit pattern, so Observe never allocates and
// scales with contention like any atomic add.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
//
//vliw:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveN records n observations of v in one shot — the bulk form
// used by per-run aggregation (e.g. the batched simulator observing
// one lane-occupancy sample per simulated cycle from a counter it
// accumulated in plain fields). n <= 0 records nothing.
//
//vliw:hotpath
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets are the default latency bounds in seconds, spanning
// sub-millisecond cache probes to minute-long paper-budget jobs.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// ProbeBuckets are bounds in seconds for very fast operations (disk
// probes, in-memory lookups).
var ProbeBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
}

// SizeBuckets are bounds in bytes for entry/document sizes.
var SizeBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
}

// instrument is one registered series: an instrument plus its identity.
type instrument struct {
	name   string
	labels string // rendered label pairs, e.g. `route="submit"`, or ""
	help   string
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds instruments and renders them. The zero value is not
// usable; use NewRegistry or the process-wide Default.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*instrument // name + "{" + labels + "}"
	order []*instrument          // registration order, for stable output
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*instrument{}}
}

// defaultRegistry is the process-wide registry behind the package-level
// constructors, GET /metrics and vliwmt.Metrics().
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(name, labels, help string, k kind, build func() *instrument) *instrument {
	key := name + "{" + labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[key]; ok {
		if in.kind != k {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, k, in.kind))
		}
		return in
	}
	in := build()
	in.name, in.labels, in.help, in.kind = name, labels, help, k
	r.byKey[key] = in
	r.order = append(r.order, in)
	return in
}

// Counter registers (or returns the existing) counter with the given
// name and optional rendered label pairs such as `route="submit"`.
func (r *Registry) Counter(name, labels, help string) *Counter {
	in := r.register(name, labels, help, kindCounter, func() *instrument {
		return &instrument{counter: &Counter{}}
	})
	return in.counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	in := r.register(name, labels, help, kindGauge, func() *instrument {
		return &instrument{gauge: &Gauge{}}
	})
	return in.gauge
}

// Histogram registers (or returns the existing) histogram with the
// given ascending upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	in := r.register(name, labels, help, kindHistogram, func() *instrument {
		h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
		return &instrument{hist: h}
	})
	return in.hist
}

// NewCounter registers a counter in the process-wide registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.Counter(name, "", help) }

// NewLabeledCounter registers a counter with rendered label pairs
// (e.g. `route="submit"`) in the process-wide registry.
func NewLabeledCounter(name, labels, help string) *Counter {
	return defaultRegistry.Counter(name, labels, help)
}

// NewGauge registers a gauge in the process-wide registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.Gauge(name, "", help) }

// NewLabeledGauge registers a gauge with rendered label pairs
// (e.g. `worker="host:1234"`) in the process-wide registry.
func NewLabeledGauge(name, labels, help string) *Gauge {
	return defaultRegistry.Gauge(name, labels, help)
}

// NewHistogram registers a histogram in the process-wide registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, "", help, bounds)
}

// NewLabeledHistogram registers a histogram with rendered label pairs
// in the process-wide registry.
func NewLabeledHistogram(name, labels, help string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, labels, help, bounds)
}

// series renders one sample line name, merging fixed labels with an
// extra pair (used for histogram le="...").
func seriesName(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// formatBound renders a histogram upper bound the way Prometheus
// clients do: a minimal decimal representation.
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format, grouping series that share a name
// under one HELP/TYPE header. Output order is registration order of
// each family, which is deterministic given deterministic package
// initialisation.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]*instrument(nil), r.order...)
	r.mu.Unlock()

	written := map[string]bool{} // family headers already emitted
	// Group: families in first-appearance order, series within a family
	// in registration order.
	byName := map[string][]*instrument{}
	var names []string
	for _, in := range order {
		if _, ok := byName[in.name]; !ok {
			names = append(names, in.name)
		}
		byName[in.name] = append(byName[in.name], in)
	}
	for _, name := range names {
		for _, in := range byName[name] {
			if !written[name] {
				written[name] = true
				if in.help != "" {
					if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, in.help); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, in.kind); err != nil {
					return err
				}
			}
			switch in.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name, in.labels, ""), in.counter.Value()); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name, in.labels, ""), in.gauge.Value()); err != nil {
					return err
				}
			case kindHistogram:
				h := in.hist
				var cum int64
				for i, b := range h.bounds {
					cum += h.buckets[i].Load()
					le := fmt.Sprintf("le=%q", formatBound(b))
					if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", in.labels, le), cum); err != nil {
						return err
					}
				}
				cum += h.buckets[len(h.bounds)].Load()
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", in.labels, `le="+Inf"`), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %g\n", seriesName(name+"_sum", in.labels, ""), h.Sum()); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", in.labels, ""), h.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Buckets[i] counts
	// observations <= Bounds[i] (non-cumulative), with one final
	// overflow bucket, so len(Buckets) == len(Bounds)+1.
	Bounds  []float64
	Buckets []int64
	Count   int64
	Sum     float64
}

// Snapshot is a point-in-time copy of a registry: every counter and
// gauge value plus every histogram, keyed by the full series name
// (name, or name{labels}). It is what vliwmt.Metrics() returns, and
// what tests assert deltas on — counters are process-lifetime values,
// so assertions compare two snapshots rather than absolute numbers.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	order := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, in := range order {
		key := seriesName(in.name, in.labels, "")
		switch in.kind {
		case kindCounter:
			s.Counters[key] = in.counter.Value()
		case kindGauge:
			s.Gauges[key] = in.gauge.Value()
		case kindHistogram:
			h := in.hist
			hs := HistogramSnapshot{
				Bounds:  append([]float64(nil), h.bounds...),
				Buckets: make([]int64, len(h.buckets)),
				Count:   h.Count(),
				Sum:     h.Sum(),
			}
			for i := range h.buckets {
				hs.Buckets[i] = h.buckets[i].Load()
			}
			s.Histograms[key] = hs
		}
	}
	return s
}

// Counter returns the summed value of every counter series with the
// given family name (exact series names include labels; summing makes
// per-route families easy to assert on).
func (s Snapshot) Counter(name string) int64 {
	var total int64
	for key, v := range s.Counters {
		if key == name || (len(key) > len(name) && key[:len(name)] == name && key[len(name)] == '{') {
			total += v
		}
	}
	return total
}

// Gauge returns the summed value of every gauge series with the given
// family name.
func (s Snapshot) Gauge(name string) int64 {
	var total int64
	for key, v := range s.Gauges {
		if key == name || (len(key) > len(name) && key[:len(name)] == name && key[len(name)] == '{') {
			total += v
		}
	}
	return total
}

// CounterNames returns the sorted series keys of every counter, for
// diagnostics and tests.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
