package cost

import (
	"testing"

	"vliwmt/internal/isa"
)

func TestForSchemeKnownNames(t *testing.T) {
	m := isa.Default()
	for _, s := range []string{"1S", "3SSS", "C4", "2SC3"} {
		sc, err := ForScheme(m, s)
		if err != nil {
			t.Fatalf("ForScheme(%s): %v", s, err)
		}
		if sc.Transistors <= 0 || sc.GateDelays <= 0 {
			t.Errorf("%s: non-positive cost %+v", s, sc)
		}
	}
	if _, err := ForScheme(m, "bogus"); err == nil {
		t.Error("ForScheme accepted bogus scheme")
	}
}

func TestPaperSchemesComplete(t *testing.T) {
	costs, err := PaperSchemes(isa.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 16 {
		t.Fatalf("got %d schemes, want 16", len(costs))
	}
	byName := map[string]SchemeCost{}
	for _, c := range costs {
		byName[c.Scheme] = c
	}
	// Functional twins may differ in cost: the parallel C4 must beat the
	// serial 3CCC on delay and lose on transistors.
	if byName["C4"].GateDelays >= byName["3CCC"].GateDelays {
		t.Error("C4 delay not below 3CCC")
	}
	if byName["C4"].Transistors <= byName["3CCC"].Transistors {
		t.Error("C4 transistors not above 3CCC")
	}
}

func TestControlScalingShapes(t *testing.T) {
	pts, err := ControlScaling(isa.Default(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("got %d points, want 7", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		// All three curves grow monotonically in transistors and delay.
		if pts[i].CSMTSerial.Transistors <= pts[i-1].CSMTSerial.Transistors {
			t.Error("CSMT serial transistors not increasing")
		}
		if pts[i].CSMTParallel.Transistors <= pts[i-1].CSMTParallel.Transistors {
			t.Error("CSMT parallel transistors not increasing")
		}
		if pts[i].SMT.Transistors <= pts[i-1].SMT.Transistors {
			t.Error("SMT transistors not increasing")
		}
	}
	// CSMT serial is linear: increments roughly constant.
	first := pts[1].CSMTSerial.Transistors - pts[0].CSMTSerial.Transistors
	last := pts[6].CSMTSerial.Transistors - pts[5].CSMTSerial.Transistors
	if last > 2*first {
		t.Errorf("CSMT serial growth not linear: first %d, last %d", first, last)
	}
	// CSMT parallel is exponential: the last increment dwarfs the first,
	// and by 8 threads it overtakes SMT (the paper's Figure 5a crossover).
	firstPL := pts[1].CSMTParallel.Transistors - pts[0].CSMTParallel.Transistors
	lastPL := pts[6].CSMTParallel.Transistors - pts[5].CSMTParallel.Transistors
	if lastPL < 10*firstPL {
		t.Errorf("CSMT parallel growth not exponential: first %d, last %d", firstPL, lastPL)
	}
	if pts[6].CSMTParallel.Transistors <= pts[6].SMT.Transistors {
		t.Error("CSMT parallel did not overtake SMT at 8 threads")
	}
	// At every point SMT has the largest delay; CSMT parallel the lowest
	// beyond 2 threads.
	for _, p := range pts {
		if p.SMT.GateDelays <= p.CSMTSerial.GateDelays {
			t.Errorf("%d threads: SMT delay %d not above CSMT serial %d",
				p.Threads, p.SMT.GateDelays, p.CSMTSerial.GateDelays)
		}
		if p.Threads > 2 && p.CSMTParallel.GateDelays >= p.CSMTSerial.GateDelays {
			t.Errorf("%d threads: CSMT parallel delay %d not below serial %d",
				p.Threads, p.CSMTParallel.GateDelays, p.CSMTSerial.GateDelays)
		}
	}
}

func TestControlScalingValidation(t *testing.T) {
	if _, err := ControlScaling(isa.Default(), 1, 4); err == nil {
		t.Error("accepted minThreads=1")
	}
	if _, err := ControlScaling(isa.Default(), 4, 2); err == nil {
		t.Error("accepted max < min")
	}
}
