// Package cost derives the paper's hardware-cost figures from the
// gate-level netlists of internal/logic: Figure 5 (thread merge control
// cost versus thread count for CSMT serial, CSMT parallel and SMT) and
// Figure 9 (cost of every merging scheme on the 4-thread machine).
package cost

import (
	"fmt"

	"vliwmt/internal/isa"
	"vliwmt/internal/logic"
	"vliwmt/internal/merge"
)

// SchemeCost is the merge-control cost of one scheme.
type SchemeCost struct {
	Scheme      string
	Transistors int
	GateDelays  int
}

// ForScheme builds and costs the merge control of the named scheme on
// machine m. The name resolves like merge.Resolve, so registered
// custom schemes and canonical tree expressions work; the IMT/BMT
// baselines have no merge control and are an error.
func ForScheme(m isa.Machine, name string) (SchemeCost, error) {
	s, err := merge.Resolve(name)
	if err != nil {
		return SchemeCost{}, err
	}
	tree := s.Tree()
	if tree == nil {
		return SchemeCost{}, fmt.Errorf("cost: scheme %s has no merge control to cost", name)
	}
	return forTree(m, tree)
}

// ForTree builds and costs the merge control of an arbitrary merge
// tree on machine m.
func ForTree(m isa.Machine, tree *merge.Tree) (SchemeCost, error) {
	if tree == nil {
		return SchemeCost{}, fmt.Errorf("cost: nil merge tree")
	}
	return forTree(m, tree)
}

func forTree(m isa.Machine, tree *merge.Tree) (SchemeCost, error) {
	c, err := logic.BuildScheme(&m, tree)
	if err != nil {
		return SchemeCost{}, err
	}
	tr, d := c.Cost()
	return SchemeCost{Scheme: tree.Name(), Transistors: tr, GateDelays: d}, nil
}

// PaperSchemes costs the sixteen schemes of Figure 9 in the paper's order.
func PaperSchemes(m isa.Machine) ([]SchemeCost, error) {
	var out []SchemeCost
	for _, s := range merge.PaperSchemes4() {
		sc, err := ForScheme(m, s)
		if err != nil {
			return nil, fmt.Errorf("cost: scheme %s: %w", s, err)
		}
		out = append(out, sc)
	}
	return out, nil
}

// ControlPoint is one x-position of Figure 5: the three merge-control
// implementations at a given thread count.
type ControlPoint struct {
	Threads      int
	CSMTSerial   SchemeCost
	CSMTParallel SchemeCost
	SMT          SchemeCost
}

// ControlScaling computes Figure 5's curves for minThreads..maxThreads.
func ControlScaling(m isa.Machine, minThreads, maxThreads int) ([]ControlPoint, error) {
	if minThreads < 2 || maxThreads < minThreads {
		return nil, fmt.Errorf("cost: bad thread range [%d,%d]", minThreads, maxThreads)
	}
	var out []ControlPoint
	for n := minThreads; n <= maxThreads; n++ {
		kindsC := make([]merge.Kind, n-1)
		kindsS := make([]merge.Kind, n-1)
		for i := range kindsC {
			kindsC[i] = merge.CSMT
			kindsS[i] = merge.SMT
		}
		sl, err := merge.Cascade(fmt.Sprintf("CSMT-SL/%d", n), kindsC...)
		if err != nil {
			return nil, err
		}
		pl, err := merge.ParallelCSMT(fmt.Sprintf("CSMT-PL/%d", n), n)
		if err != nil {
			return nil, err
		}
		st, err := merge.Cascade(fmt.Sprintf("SMT/%d", n), kindsS...)
		if err != nil {
			return nil, err
		}
		p := ControlPoint{Threads: n}
		if p.CSMTSerial, err = forTree(m, sl); err != nil {
			return nil, err
		}
		if p.CSMTParallel, err = forTree(m, pl); err != nil {
			return nil, err
		}
		if p.SMT, err = forTree(m, st); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
