package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/sim"
	"vliwmt/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtures returns one fully populated value of every wire type; every
// field is non-zero so a dropped or mis-tagged field breaks a test.
func fixtureJob() Job {
	return Job{
		Label:           "LLHH/2SC3",
		Scheme:          "2SC3",
		Benchmarks:      []string{"mcf", "dijkstra", "colorspace", "fft"},
		Contexts:        4,
		Machine:         MachineFrom(isa.Default()),
		ICache:          CacheConfigFrom(cache.DefaultConfig()),
		DCache:          CacheConfigFrom(cache.DefaultConfig()),
		PerfectMemory:   true,
		InstrLimit:      300_000,
		TimesliceCycles: 3_000,
		Seed:            0xdeadbeefcafe0001,
	}
}

func fixtureGrid() Grid {
	return Grid{
		Schemes:         []string{"2SC3", "3SSS"},
		Mixes:           []string{"LLHH", "HHHH"},
		Machine:         MachineFrom(isa.Default()),
		ICache:          CacheConfigFrom(cache.DefaultConfig()),
		DCache:          CacheConfigFrom(cache.DefaultConfig()),
		InstrLimit:      20_000,
		TimesliceCycles: 500,
		Seed:            7,
		SharedSeed:      true,
	}
}

func fixtureResult() Result {
	return Result{
		Index: 3,
		Job:   fixtureJob(),
		Sim: &SimResult{
			Cycles:    123_456,
			Instrs:    300_000,
			Ops:       911_222,
			IPC:       7.380952380952381,
			MergeHist: []int64{10, 20, 30, 40, 50},
			Threads: []ThreadStats{
				{Name: "mcf", Instrs: 100, Ops: 321, ScheduledCycles: 999, ConflictCycles: 5, StallMem: 7, StallFetch: 3, StallBranch: 11},
				{Name: "fft", Instrs: 200, Ops: 654, ScheduledCycles: 888, ConflictCycles: 6, StallMem: 8, StallFetch: 4, StallBranch: 12},
			},
			ICache:      CacheStats{Accesses: 1000, Misses: 10, Writebacks: 1},
			DCache:      CacheStats{Accesses: 2000, Misses: 20, Writebacks: 2},
			IssueWidth:  16,
			EmptyCycles: 42,
			TimedOut:    true,
		},
		ElapsedSec: 1.25,
	}
}

func fixtureRequest() SweepRequest {
	g := fixtureGrid()
	return SweepRequest{Version: Version, Grid: &g, Workers: 8, Tag: "nightly"}
}

// TestRoundTrips checks decode(encode(x)) == x for every exported
// config and result type of the wire format.
func TestRoundTrips(t *testing.T) {
	g := fixtureGrid()
	cases := []struct {
		name string
		in   any
		out  any
	}{
		{"Machine", MachineFrom(isa.Default()), &Machine{}},
		{"CacheConfig", CacheConfigFrom(cache.DefaultConfig()), &CacheConfig{}},
		{"Job", fixtureJob(), &Job{}},
		{"Grid", fixtureGrid(), &Grid{}},
		{"Result", fixtureResult(), &Result{}},
		{"SweepRequest", fixtureRequest(), &SweepRequest{}},
		{"SweepStatus", SweepStatus{Version: Version, ID: "s000001", State: StateDone,
			Done: 4, Total: 4, Results: []Result{fixtureResult()}, Error: "job 2 failed"}, &SweepStatus{}},
		{"Event", Event{Done: 2, Total: 4, Result: func() *Result { r := fixtureResult(); return &r }()}, &Event{}},
		{"zero Grid", Grid{}, &Grid{}},
		{"zero Job", Job{}, &Job{}},
		{"grid request", SweepRequest{Version: Version, Grid: &g}, &SweepRequest{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := json.Marshal(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(b, tc.out); err != nil {
				t.Fatal(err)
			}
			got := reflect.ValueOf(tc.out).Elem().Interface()
			if !reflect.DeepEqual(got, tc.in) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, tc.in)
			}
		})
	}
}

// TestConversionsAreLossless checks that wire -> internal -> wire and
// internal -> wire -> internal conversions preserve every field.
func TestConversionsAreLossless(t *testing.T) {
	m := isa.Default()
	if got := MachineFrom(m).ISA(); got != m {
		t.Errorf("machine: %+v != %+v", got, m)
	}
	cc := cache.DefaultConfig()
	if got := CacheConfigFrom(cc).Config(); got != cc {
		t.Errorf("cache: %+v != %+v", got, cc)
	}
	j, err := fixtureJob().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := JobFrom(j).Sweep(); err != nil || !reflect.DeepEqual(got, j) {
		t.Errorf("job: %+v != %+v (%v)", got, j, err)
	}
	g := fixtureGrid().Sweep()
	if got := GridFrom(g).Sweep(); !reflect.DeepEqual(got, g) {
		t.Errorf("grid: %+v != %+v", got, g)
	}

	// A full sweep.Result with a live sim.Result round-trips every
	// deterministic field; Err collapses to its message by design.
	sr := sweep.Result{
		Index:   2,
		Job:     j,
		Res:     func() *sim.Result { r := fixtureResult().Sim.Sim(); return &r }(),
		Err:     errors.New("boom"),
		Elapsed: 1500 * time.Millisecond,
	}
	got := ResultFrom(sr).Sweep()
	if !reflect.DeepEqual(got.Res, sr.Res) {
		t.Errorf("sim result: %+v != %+v", got.Res, sr.Res)
	}
	if got.Err == nil || got.Err.Error() != "boom" {
		t.Errorf("err: %v", got.Err)
	}
	if got.Index != sr.Index || !reflect.DeepEqual(got.Job, sr.Job) || got.Elapsed != sr.Elapsed {
		t.Errorf("envelope fields drifted: %+v", got)
	}
}

// TestGridDefaultingMatchesInProcess checks the wire format's core
// defaulting contract: a sparse document expands to exactly the job
// set of the equivalent in-process Grid.
func TestGridDefaultingMatchesInProcess(t *testing.T) {
	for _, doc := range []string{
		`{}`,
		`{"schemes":["2SC3","C4"],"mixes":["LLHH"]}`,
		`{"instr_limit":20000,"seed":9,"shared_seed":true}`,
	} {
		var g Grid
		if err := json.Unmarshal([]byte(doc), &g); err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		want, err := g.Sweep().Jobs()
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		// Build the same sweep.Grid directly and compare expansions.
		direct := sweep.Grid{Schemes: g.Schemes, Mixes: g.Mixes, InstrLimit: g.InstrLimit,
			TimesliceCycles: g.TimesliceCycles, Seed: g.Seed, SharedSeed: g.SharedSeed}
		got, err := direct.Jobs()
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: wire and in-process expansion differ", doc)
		}
		for _, j := range want[:1] {
			if j.Machine.Clusters == 0 || j.ICache.Size == 0 || j.InstrLimit == 0 || j.TimesliceCycles == 0 || j.Seed == 0 {
				t.Errorf("%s: defaults not applied: %+v", doc, j)
			}
		}
	}
}

// TestGolden pins the wire format: encoding the fixtures must produce
// the checked-in golden bytes, and decoding the golden bytes must
// produce the fixtures. Run `go test ./internal/api -update` after an
// intentional format change.
func TestGolden(t *testing.T) {
	cases := []struct {
		file string
		v    any
		dec  func([]byte) (any, error)
	}{
		{"machine.golden.json", MachineFrom(isa.Default()), func(b []byte) (any, error) {
			var v Machine
			return v, json.Unmarshal(b, &v)
		}},
		{"job.golden.json", fixtureJob(), func(b []byte) (any, error) {
			var v Job
			return v, json.Unmarshal(b, &v)
		}},
		{"grid.golden.json", fixtureGrid(), func(b []byte) (any, error) {
			var v Grid
			return v, json.Unmarshal(b, &v)
		}},
		{"result.golden.json", fixtureResult(), func(b []byte) (any, error) {
			var v Result
			return v, json.Unmarshal(b, &v)
		}},
		{"request.golden.json", fixtureRequest(), func(b []byte) (any, error) {
			var v SweepRequest
			return v, json.Unmarshal(b, &v)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			got, err := json.MarshalIndent(tc.v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/api -update` to create golden files)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from golden file %s:\n got: %s\nwant: %s", tc.file, got, want)
			}
			back, err := tc.dec(want)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, tc.v) {
				t.Errorf("decoding golden %s does not reproduce the fixture:\n got %#v\nwant %#v", tc.file, back, tc.v)
			}
		})
	}
}

// TestSchemeSpecRoundTrip checks the version-2 SchemeSpec DTO: typed
// schemes (paper, baseline, custom tree) survive the wire with their
// names and exact merge trees.
func TestSchemeSpecRoundTrip(t *testing.T) {
	paper, err := merge.Resolve("2SC3")
	if err != nil {
		t.Fatal(err)
	}
	custom, err := merge.Resolve("S(C(T0,T1,T2),T3)")
	if err != nil {
		t.Fatal(err)
	}
	imt, err := merge.Resolve("IMT")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []merge.Scheme{paper, custom.WithName("asym4"), imt} {
		sp := SchemeSpecFrom(s)
		if sp == nil {
			t.Fatalf("SchemeSpecFrom(%s) = nil", s.Name())
		}
		b, err := json.Marshal(sp)
		if err != nil {
			t.Fatal(err)
		}
		var back SchemeSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.Scheme()
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got.Name() != s.Name() || got.String() != s.String() {
			t.Errorf("scheme %s round-tripped to %s (%s)", s.Name(), got.Name(), got.String())
		}
	}
	if SchemeSpecFrom(merge.Scheme{}) != nil {
		t.Error("zero scheme should convert to a nil spec")
	}
	if _, err := (SchemeSpec{}).Scheme(); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := (SchemeSpec{Tree: "S(T0"}).Scheme(); err == nil {
		t.Error("malformed tree spec accepted")
	}
}

// TestJobInlinesRegisteredScheme checks that JobFrom attaches the tree
// of a registry-resolved scheme name, so a remote server needs no
// matching registration, and that Job.Sweep rebuilds the typed scheme.
func TestJobInlinesRegisteredScheme(t *testing.T) {
	tree, err := merge.ParseTreeExpr("S(C(T0,T1,T2),T3)")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := merge.FromTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := merge.Register("apitest4", sch); err != nil {
		t.Fatal(err)
	}
	defer merge.Unregister("apitest4")

	j := fixtureJob()
	j.Scheme = "apitest4"
	wire := JobFrom(mustSweepJob(t, j))
	if wire.Merge == nil || wire.Merge.Tree != "S(C(T0,T1,T2),T3)" {
		t.Fatalf("registered scheme not inlined: %+v", wire.Merge)
	}
	back, err := wire.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if back.Merge.IsZero() || back.Merge.String() != "S(C(T0,T1,T2),T3)" {
		t.Errorf("typed scheme lost on decode: %+v", back.Merge)
	}
	if back.EffectiveContexts() != 4 {
		t.Errorf("EffectiveContexts = %d, want 4", back.EffectiveContexts())
	}
}

func mustSweepJob(t *testing.T, j Job) sweep.Job {
	t.Helper()
	sj, err := j.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	return sj
}

// TestV1BackCompat pins backwards compatibility: a checked-in wire
// version 1 document (written by the previous release) must still
// decode, expanding to the same jobs as its version-2 equivalent.
func TestV1BackCompat(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "request.v1.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeSweepRequest(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("version 1 request rejected: %v", err)
	}
	if req.Version != 1 || req.Grid == nil {
		t.Fatalf("unexpected decode: %+v", req)
	}
	v1Jobs, err := req.Grid.Sweep().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	g := fixtureGrid()
	v2Jobs, err := g.Sweep().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1Jobs, v2Jobs) {
		t.Error("version 1 document expands differently from its version 2 equivalent")
	}
}

func TestVersionChecking(t *testing.T) {
	if err := CheckVersion(0); err != nil {
		t.Errorf("version 0 (pre-versioning) rejected: %v", err)
	}
	if err := CheckVersion(Version); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
	if err := CheckVersion(Version + 1); err == nil {
		t.Error("future version accepted")
	}
	if _, err := DecodeSweepRequest(strings.NewReader(`{"version":99,"grid":{}}`)); err == nil {
		t.Error("future-versioned request accepted")
	}
	if _, err := DecodeSweepRequest(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("request without grid or jobs accepted")
	}
	if _, err := DecodeSweepRequest(strings.NewReader(`{"version":1,"grid":{}}`)); err != nil {
		t.Errorf("minimal grid request rejected: %v", err)
	}
}
