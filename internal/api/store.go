package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"vliwmt/internal/sweep"
)

// Key returns the content hash identifying a job set: a SHA-256 over
// the wire encoding of every job. Because each job embeds its machine,
// caches, seed and budget, two sweeps share a key exactly when they
// are the same experiment — the determinism contract then guarantees
// their results are identical, which is what makes serving a repeat
// sweep from disk sound. The wire version is deliberately not part of
// the hash: a version bump that leaves a job's encoding unchanged must
// not orphan its cached results. (Pre-v2 caches hashed the version and
// so miss once after upgrading; the stale files are harmless.)
func Key(jobs []sweep.Job) (string, error) {
	payload := struct {
		Jobs []Job `json:"jobs"`
	}{Jobs: make([]Job, len(jobs))}
	for i, j := range jobs {
		payload.Jobs[i] = JobFrom(j)
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("api: hash jobs: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Store spills completed sweep results to a directory as wire-format
// JSON keyed by Key, and serves repeated identical sweeps back from
// disk. Only fully successful sweeps are stored; a sweep with any
// failed job is never cached, so transient failures cannot be pinned.
type Store struct {
	// Dir is the spill directory; it is created on first Save.
	Dir string
}

// storeFile is the on-disk document: the key is stored alongside the
// results so a (vanishingly unlikely) filename collision or a manually
// copied file is detected instead of silently served.
type storeFile struct {
	Version int      `json:"version"`
	Key     string   `json:"key"`
	Results []Result `json:"results"`
}

func (s Store) path(key string) string {
	return filepath.Join(s.Dir, "sweep-"+key+".json")
}

// Load returns the stored results for the job set, if present. A
// missing, corrupt or mismatched file is a cache miss, not an error:
// the caller falls through to running the sweep.
func (s Store) Load(jobs []sweep.Job) ([]sweep.Result, bool) {
	if s.Dir == "" || len(jobs) == 0 {
		return nil, false
	}
	key, err := Key(jobs)
	if err != nil {
		return nil, false
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var f storeFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, false
	}
	if CheckVersion(f.Version) != nil || f.Key != key || len(f.Results) != len(jobs) {
		return nil, false
	}
	return SweepResults(f.Results), true
}

// Save spills a completed sweep to disk. Sweeps with any failed job
// are skipped (returning nil): only results the determinism contract
// vouches for are worth caching. The write is atomic (temp file +
// rename) so concurrent writers and readers never see a torn file.
func (s Store) Save(jobs []sweep.Job, results []sweep.Result) error {
	if s.Dir == "" || len(results) != len(jobs) {
		return nil
	}
	for _, r := range results {
		if r.Err != nil || r.Res == nil {
			return nil
		}
	}
	key, err := Key(jobs)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("api: store: %w", err)
	}
	b, err := json.MarshalIndent(storeFile{Version: Version, Key: key, Results: ResultsFrom(results)}, "", "  ")
	if err != nil {
		return fmt.Errorf("api: store: encode: %w", err)
	}
	tmp, err := os.CreateTemp(s.Dir, "sweep-*.tmp")
	if err != nil {
		return fmt.Errorf("api: store: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("api: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("api: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("api: store: %w", err)
	}
	return nil
}
