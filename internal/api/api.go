// Package api defines the stable wire format of the sweep service: the
// versioned JSON DTOs for machine, cache, job, grid and result values,
// the request/response envelopes of the HTTP endpoints, and a
// content-addressed on-disk result store that reuses the same encoding.
//
// The DTO types deliberately mirror the internal configuration structs
// field by field but own their JSON tags, so the wire format cannot
// drift when an internal struct is refactored. Zero-valued DTO fields
// convert to zero-valued internal fields, which means a sparse grid
// document like {} expands through sweep.Grid.Jobs with exactly the
// same defaulting as an in-process zero-value Grid.
package api

import (
	"errors"
	"fmt"
	"time"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/sim"
	"vliwmt/internal/sweep"
)

// Version is the wire-format version. Decoders accept documents whose
// version field is between 1 and this value, or zero (a pre-versioning
// document is read as version 1); anything newer is rejected so
// incompatible future formats fail loudly instead of silently
// mis-decoding.
//
// Version history:
//
//	1: initial format (machine, cache, job, grid, result DTOs)
//	2: jobs may carry a SchemeSpec ("merge") inlining a first-class
//	   merge scheme as a canonical tree expression
//	3: results may carry a "cached" flag (served from the persistent
//	   result store), sweep statuses a "cache_hits" count, and the
//	   server a /v1/store document (StoreStatus). Later additions
//	   within 3 (all optional, omitted when empty, version-1-semantics
//	   when absent, so no bump): sweep statuses may carry an "errors"
//	   count and a terminal "summary" roll-up (SweepSummary), NDJSON
//	   events an "err" string for failed jobs, results a "worker" and
//	   "shard" attribution (set by the distributed sweep fabric), and
//	   the server a /v1/healthz document (Health)
const Version = 3

// Machine is the wire form of isa.Machine.
type Machine struct {
	Clusters       int `json:"clusters,omitempty"`
	IssueWidth     int `json:"issue_width,omitempty"`
	Muls           int `json:"muls,omitempty"`
	MemUnits       int `json:"mem_units,omitempty"`
	BranchClusters int `json:"branch_clusters,omitempty"`
	LatencyALU     int `json:"latency_alu,omitempty"`
	LatencyMul     int `json:"latency_mul,omitempty"`
	LatencyMem     int `json:"latency_mem,omitempty"`
	LatencyCopy    int `json:"latency_copy,omitempty"`
	BranchPenalty  int `json:"branch_penalty,omitempty"`
}

// MachineFrom converts an internal machine description to its wire form.
func MachineFrom(m isa.Machine) Machine {
	return Machine{
		Clusters:       m.Clusters,
		IssueWidth:     m.IssueWidth,
		Muls:           m.Muls,
		MemUnits:       m.MemUnits,
		BranchClusters: m.BranchClusters,
		LatencyALU:     m.LatencyALU,
		LatencyMul:     m.LatencyMul,
		LatencyMem:     m.LatencyMem,
		LatencyCopy:    m.LatencyCopy,
		BranchPenalty:  m.BranchPenalty,
	}
}

// ISA converts the wire form back to the internal machine description.
func (m Machine) ISA() isa.Machine {
	return isa.Machine{
		Clusters:       m.Clusters,
		IssueWidth:     m.IssueWidth,
		Muls:           m.Muls,
		MemUnits:       m.MemUnits,
		BranchClusters: m.BranchClusters,
		LatencyALU:     m.LatencyALU,
		LatencyMul:     m.LatencyMul,
		LatencyMem:     m.LatencyMem,
		LatencyCopy:    m.LatencyCopy,
		BranchPenalty:  m.BranchPenalty,
	}
}

// CacheConfig is the wire form of cache.Config.
type CacheConfig struct {
	Size        int `json:"size,omitempty"`
	LineSize    int `json:"line_size,omitempty"`
	Ways        int `json:"ways,omitempty"`
	MissPenalty int `json:"miss_penalty,omitempty"`
}

// CacheConfigFrom converts an internal cache configuration to its wire form.
func CacheConfigFrom(c cache.Config) CacheConfig {
	return CacheConfig{Size: c.Size, LineSize: c.LineSize, Ways: c.Ways, MissPenalty: c.MissPenalty}
}

// Config converts the wire form back to the internal cache configuration.
func (c CacheConfig) Config() cache.Config {
	return cache.Config{Size: c.Size, LineSize: c.LineSize, Ways: c.Ways, MissPenalty: c.MissPenalty}
}

// SchemeSpec is the wire form of a first-class merge scheme
// (merge.Scheme), introduced in wire version 2. Tree is the canonical
// grammar emitted by merge.Tree.String (e.g. "C(S(T0,T1),T2,T3)");
// it is empty for the IMT/BMT baselines, which Name identifies. A
// spec with a tree is self-contained: the receiver rebuilds the exact
// scheme without consulting its own registry, which is what makes
// custom schemes submitted remotely bit-identical to in-process runs.
type SchemeSpec struct {
	Name string `json:"name,omitempty"`
	Tree string `json:"tree,omitempty"`
}

// SchemeSpecFrom converts a first-class scheme to its wire form; the
// zero Scheme converts to nil.
func SchemeSpecFrom(s merge.Scheme) *SchemeSpec {
	if s.IsZero() {
		return nil
	}
	sp := &SchemeSpec{Name: s.Name()}
	if t := s.Tree(); t != nil {
		sp.Tree = t.String()
	}
	return sp
}

// Scheme converts the wire form back to a first-class scheme: the
// tree expression when present (relabelled with Name), else Name
// resolved as usual (baselines, paper names, local registry).
func (s SchemeSpec) Scheme() (merge.Scheme, error) {
	if s.Tree != "" {
		t, err := merge.ParseTreeExpr(s.Tree)
		if err != nil {
			return merge.Scheme{}, fmt.Errorf("api: scheme spec: %w", err)
		}
		sch, err := merge.FromTree(t)
		if err != nil {
			return merge.Scheme{}, fmt.Errorf("api: scheme spec: %w", err)
		}
		return sch.WithName(s.Name), nil
	}
	if s.Name == "" {
		return merge.Scheme{}, fmt.Errorf("api: empty scheme spec")
	}
	sch, err := merge.Resolve(s.Name)
	if err != nil {
		return merge.Scheme{}, fmt.Errorf("api: scheme spec: %w", err)
	}
	return sch, nil
}

// Job is the wire form of sweep.Job.
type Job struct {
	Label           string      `json:"label,omitempty"`
	Scheme          string      `json:"scheme,omitempty"`
	Merge           *SchemeSpec `json:"merge,omitempty"`
	Benchmarks      []string    `json:"benchmarks,omitempty"`
	Contexts        int         `json:"contexts,omitempty"`
	Machine         Machine     `json:"machine,omitempty"`
	ICache          CacheConfig `json:"icache,omitempty"`
	DCache          CacheConfig `json:"dcache,omitempty"`
	PerfectMemory   bool        `json:"perfect_memory,omitempty"`
	InstrLimit      int64       `json:"instr_limit,omitempty"`
	TimesliceCycles int64       `json:"timeslice_cycles,omitempty"`
	Seed            uint64      `json:"seed,omitempty"`
}

// jobSchemeSpec inlines the job's merge control for the wire: the
// typed field when set, else a registered custom name's tree (a
// remote server does not share this process's registry). Paper names
// and baselines travel as the name alone.
func jobSchemeSpec(j sweep.Job) *SchemeSpec {
	if !j.Merge.IsZero() {
		return SchemeSpecFrom(j.Merge)
	}
	if s, ok := merge.Lookup(j.Scheme); ok {
		return SchemeSpecFrom(s)
	}
	return nil
}

// JobFrom converts an internal job to its wire form.
func JobFrom(j sweep.Job) Job {
	return Job{
		Label:           j.Label,
		Scheme:          j.Scheme,
		Merge:           jobSchemeSpec(j),
		Benchmarks:      append([]string(nil), j.Benchmarks...),
		Contexts:        j.Contexts,
		Machine:         MachineFrom(j.Machine),
		ICache:          CacheConfigFrom(j.ICache),
		DCache:          CacheConfigFrom(j.DCache),
		PerfectMemory:   j.PerfectMemory,
		InstrLimit:      j.InstrLimit,
		TimesliceCycles: j.TimesliceCycles,
		Seed:            j.Seed,
	}
}

// Sweep converts the wire form back to an internal job. A malformed
// scheme spec is an error; a job without one converts scheme-name
// verbatim, exactly as in wire version 1.
func (j Job) Sweep() (sweep.Job, error) {
	out := sweep.Job{
		Label:           j.Label,
		Scheme:          j.Scheme,
		Benchmarks:      append([]string(nil), j.Benchmarks...),
		Contexts:        j.Contexts,
		Machine:         j.Machine.ISA(),
		ICache:          j.ICache.Config(),
		DCache:          j.DCache.Config(),
		PerfectMemory:   j.PerfectMemory,
		InstrLimit:      j.InstrLimit,
		TimesliceCycles: j.TimesliceCycles,
		Seed:            j.Seed,
	}
	if j.Merge != nil {
		s, err := j.Merge.Scheme()
		if err != nil {
			return out, fmt.Errorf("api: job %s: %w", out.Describe(), err)
		}
		out.Merge = s
	}
	return out, nil
}

// Grid is the wire form of sweep.Grid. A zero-valued (or entirely
// omitted) field defaults exactly as the in-process Grid does when
// expanded with Jobs: paper machine and caches, 300k-instruction
// budget, seed 1.
type Grid struct {
	Schemes         []string    `json:"schemes,omitempty"`
	Mixes           []string    `json:"mixes,omitempty"`
	Machine         Machine     `json:"machine,omitempty"`
	ICache          CacheConfig `json:"icache,omitempty"`
	DCache          CacheConfig `json:"dcache,omitempty"`
	InstrLimit      int64       `json:"instr_limit,omitempty"`
	TimesliceCycles int64       `json:"timeslice_cycles,omitempty"`
	Seed            uint64      `json:"seed,omitempty"`
	SharedSeed      bool        `json:"shared_seed,omitempty"`
}

// GridFrom converts an internal grid to its wire form.
func GridFrom(g sweep.Grid) Grid {
	return Grid{
		Schemes:         append([]string(nil), g.Schemes...),
		Mixes:           append([]string(nil), g.Mixes...),
		Machine:         MachineFrom(g.Machine),
		ICache:          CacheConfigFrom(g.ICache),
		DCache:          CacheConfigFrom(g.DCache),
		InstrLimit:      g.InstrLimit,
		TimesliceCycles: g.TimesliceCycles,
		Seed:            g.Seed,
		SharedSeed:      g.SharedSeed,
	}
}

// Sweep converts the wire form back to an internal grid.
func (g Grid) Sweep() sweep.Grid {
	return sweep.Grid{
		Schemes:         append([]string(nil), g.Schemes...),
		Mixes:           append([]string(nil), g.Mixes...),
		Machine:         g.Machine.ISA(),
		ICache:          g.ICache.Config(),
		DCache:          g.DCache.Config(),
		InstrLimit:      g.InstrLimit,
		TimesliceCycles: g.TimesliceCycles,
		Seed:            g.Seed,
		SharedSeed:      g.SharedSeed,
	}
}

// ThreadStats is the wire form of sim.ThreadStats.
type ThreadStats struct {
	Name            string `json:"name,omitempty"`
	Instrs          int64  `json:"instrs,omitempty"`
	Ops             int64  `json:"ops,omitempty"`
	ScheduledCycles int64  `json:"scheduled_cycles,omitempty"`
	ConflictCycles  int64  `json:"conflict_cycles,omitempty"`
	StallMem        int64  `json:"stall_mem,omitempty"`
	StallFetch      int64  `json:"stall_fetch,omitempty"`
	StallBranch     int64  `json:"stall_branch,omitempty"`
}

// CacheStats is the wire form of cache.Stats.
type CacheStats struct {
	Accesses   int64 `json:"accesses,omitempty"`
	Misses     int64 `json:"misses,omitempty"`
	Writebacks int64 `json:"writebacks,omitempty"`
}

// SimResult is the wire form of sim.Result. Every deterministic field
// round-trips exactly, so a result fetched over the wire is
// bit-identical to the in-process one.
type SimResult struct {
	Cycles      int64         `json:"cycles"`
	Instrs      int64         `json:"instrs"`
	Ops         int64         `json:"ops"`
	IPC         float64       `json:"ipc"`
	MergeHist   []int64       `json:"merge_hist,omitempty"`
	Threads     []ThreadStats `json:"threads,omitempty"`
	ICache      CacheStats    `json:"icache,omitempty"`
	DCache      CacheStats    `json:"dcache,omitempty"`
	IssueWidth  int           `json:"issue_width,omitempty"`
	EmptyCycles int64         `json:"empty_cycles,omitempty"`
	TimedOut    bool          `json:"timed_out,omitempty"`
}

// SimResultFrom converts an internal simulation result to its wire form.
func SimResultFrom(r sim.Result) SimResult {
	threads := make([]ThreadStats, len(r.Threads))
	for i, t := range r.Threads {
		threads[i] = ThreadStats{
			Name:            t.Name,
			Instrs:          t.Instrs,
			Ops:             t.Ops,
			ScheduledCycles: t.ScheduledCycles,
			ConflictCycles:  t.ConflictCycles,
			StallMem:        t.StallMem,
			StallFetch:      t.StallFetch,
			StallBranch:     t.StallBranch,
		}
	}
	return SimResult{
		Cycles:      r.Cycles,
		Instrs:      r.Instrs,
		Ops:         r.Ops,
		IPC:         r.IPC,
		MergeHist:   append([]int64(nil), r.MergeHist...),
		Threads:     threads,
		ICache:      CacheStats{Accesses: r.ICache.Accesses, Misses: r.ICache.Misses, Writebacks: r.ICache.Writebacks},
		DCache:      CacheStats{Accesses: r.DCache.Accesses, Misses: r.DCache.Misses, Writebacks: r.DCache.Writebacks},
		IssueWidth:  r.IssueWidth,
		EmptyCycles: r.EmptyCycles,
		TimedOut:    r.TimedOut,
	}
}

// Sim converts the wire form back to an internal simulation result.
func (r SimResult) Sim() sim.Result {
	threads := make([]sim.ThreadStats, len(r.Threads))
	for i, t := range r.Threads {
		threads[i] = sim.ThreadStats{
			Name:            t.Name,
			Instrs:          t.Instrs,
			Ops:             t.Ops,
			ScheduledCycles: t.ScheduledCycles,
			ConflictCycles:  t.ConflictCycles,
			StallMem:        t.StallMem,
			StallFetch:      t.StallFetch,
			StallBranch:     t.StallBranch,
		}
	}
	var hist []int64
	if r.MergeHist != nil {
		hist = append([]int64(nil), r.MergeHist...)
	}
	return sim.Result{
		Cycles:      r.Cycles,
		Instrs:      r.Instrs,
		Ops:         r.Ops,
		IPC:         r.IPC,
		MergeHist:   hist,
		Threads:     threads,
		ICache:      cache.Stats{Accesses: r.ICache.Accesses, Misses: r.ICache.Misses, Writebacks: r.ICache.Writebacks},
		DCache:      cache.Stats{Accesses: r.DCache.Accesses, Misses: r.DCache.Misses, Writebacks: r.DCache.Writebacks},
		IssueWidth:  r.IssueWidth,
		EmptyCycles: r.EmptyCycles,
		TimedOut:    r.TimedOut,
	}
}

// Result is the wire form of sweep.Result. ElapsedSec is the only
// wall-clock (non-deterministic) field; Err flattens the job's error
// to its message, so error identity does not survive the wire. Cached
// (wire version 3) reports the result was served from the persistent
// result store rather than simulated. Worker and Shard (additive
// within version 3) attribute a result computed by the distributed
// sweep fabric — the worker address that simulated the job and the
// 1-based shard it travelled in; absent for local, unsharded runs.
type Result struct {
	Index      int        `json:"index"`
	Job        Job        `json:"job"`
	Sim        *SimResult `json:"sim,omitempty"`
	Err        string     `json:"err,omitempty"`
	ElapsedSec float64    `json:"elapsed_sec"`
	Cached     bool       `json:"cached,omitempty"`
	Worker     string     `json:"worker,omitempty"`
	Shard      int        `json:"shard,omitempty"`
}

// ResultFrom converts an internal sweep result to its wire form.
func ResultFrom(r sweep.Result) Result {
	out := Result{Index: r.Index, Job: JobFrom(r.Job), ElapsedSec: r.Elapsed.Seconds(),
		Cached: r.Cached, Worker: r.Worker, Shard: r.Shard}
	if r.Err != nil {
		out.Err = r.Err.Error()
	}
	if r.Res != nil {
		s := SimResultFrom(*r.Res)
		out.Sim = &s
	}
	return out
}

// Sweep converts the wire form back to an internal sweep result. The
// job inside a result is informational, so a malformed scheme spec
// surfaces on the result's Err rather than failing the whole decode.
func (r Result) Sweep() sweep.Result {
	job, jerr := r.Job.Sweep()
	out := sweep.Result{
		Index:   r.Index,
		Job:     job,
		Elapsed: time.Duration(r.ElapsedSec * float64(time.Second)),
		Cached:  r.Cached,
		Worker:  r.Worker,
		Shard:   r.Shard,
	}
	if r.Err != "" {
		out.Err = errors.New(r.Err)
	} else if jerr != nil {
		out.Err = jerr
	}
	if r.Sim != nil {
		res := r.Sim.Sim()
		out.Res = &res
	}
	return out
}

// SummaryFrom converts a sweep lifecycle summary to its wire form; a
// zero summary (no jobs) converts to nil so it is omitted from status
// documents of empty or never-run sweeps.
func SummaryFrom(s sweep.Summary) *SweepSummary {
	if s.Jobs == 0 {
		return nil
	}
	return &SweepSummary{
		Jobs:          s.Jobs,
		Errors:        s.Errors,
		CacheHits:     s.CacheHits,
		CacheHitRatio: s.CacheHitRatio(),
		WallSec:       s.Wall.Seconds(),
		P50Sec:        s.P50.Seconds(),
		P99Sec:        s.P99.Seconds(),
		JobsPerSec:    s.JobsPerSec,
	}
}

// Summary converts the wire form back to an internal sweep summary.
func (s SweepSummary) Summary() sweep.Summary {
	return sweep.Summary{
		Jobs:       s.Jobs,
		Errors:     s.Errors,
		CacheHits:  s.CacheHits,
		Wall:       time.Duration(s.WallSec * float64(time.Second)),
		P50:        time.Duration(s.P50Sec * float64(time.Second)),
		P99:        time.Duration(s.P99Sec * float64(time.Second)),
		JobsPerSec: s.JobsPerSec,
	}
}

// ResultsFrom converts a result slice to its wire form.
func ResultsFrom(rs []sweep.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = ResultFrom(r)
	}
	return out
}

// SweepResults converts a wire result slice back to internal results.
func SweepResults(rs []Result) []sweep.Result {
	out := make([]sweep.Result, len(rs))
	for i, r := range rs {
		out[i] = r.Sweep()
	}
	return out
}
