package api

import (
	"encoding/json"
	"fmt"
	"io"
)

// State is the lifecycle of a submitted sweep.
type State string

const (
	// StateRunning means jobs are still executing.
	StateRunning State = "running"
	// StateDone means every job finished without a sweep-level error.
	StateDone State = "done"
	// StateFailed means the sweep finished but at least one job failed.
	StateFailed State = "failed"
	// StateCanceled means the sweep was canceled (DELETE, client
	// disconnect in wait mode, or server shutdown) before completing.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// SweepRequest is the body of POST /v1/sweeps: either a declarative
// Grid (expanded server-side with the same defaulting as in-process
// Grid.Jobs) or an explicit job set. Workers is a hint for the server's
// pool size; because sweep results are deterministic at any worker
// count it never changes the results, only the wall-clock time.
type SweepRequest struct {
	Version int    `json:"version"`
	Grid    *Grid  `json:"grid,omitempty"`
	Jobs    []Job  `json:"jobs,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Tag     string `json:"tag,omitempty"`
}

// SweepStatus is the body of sweep submission and status responses.
// Results are included once the sweep reaches a terminal state, ordered
// by job index. CacheHits (wire version 3) counts the jobs served from
// the persistent result store instead of being simulated; Errors
// counts jobs that finished with an error, so a client can see
// failures without fetching the full result blob. Summary is the
// lifecycle roll-up, attached once the sweep is terminal. Errors and
// Summary are additive, omitted-when-empty fields within version 3: a
// version-3 peer that predates them decodes documents carrying them
// unchanged (unknown JSON fields are ignored) and emits documents
// without them (absent means zero/none).
type SweepStatus struct {
	Version   int           `json:"version"`
	ID        string        `json:"id"`
	State     State         `json:"state"`
	Done      int           `json:"done"`
	Total     int           `json:"total"`
	CacheHits int           `json:"cache_hits,omitempty"`
	Errors    int           `json:"errors,omitempty"`
	Summary   *SweepSummary `json:"summary,omitempty"`
	Results   []Result      `json:"results,omitempty"`
	Error     string        `json:"error,omitempty"`
}

// SweepSummary is the wire form of sweep.Summary: the one-line
// lifecycle roll-up of a finished sweep (job/error/store-hit counts,
// per-job latency percentiles, throughput). Attached to terminal
// SweepStatus documents and printed by vliwsweep -stats.
type SweepSummary struct {
	Jobs          int     `json:"jobs"`
	Errors        int     `json:"errors,omitempty"`
	CacheHits     int     `json:"cache_hits,omitempty"`
	CacheHitRatio float64 `json:"cache_hit_ratio,omitempty"`
	WallSec       float64 `json:"wall_sec,omitempty"`
	P50Sec        float64 `json:"p50_sec,omitempty"`
	P99Sec        float64 `json:"p99_sec,omitempty"`
	JobsPerSec    float64 `json:"jobs_per_sec,omitempty"`
}

// Health is the body of GET /v1/healthz (additive within wire
// version 3): a structured liveness document for load balancers and
// the sweep fabric — build identity, current load and (when
// persistence is configured) result-store stats — cheap enough to
// poll, unlike GET /v1/store whose entry count walks the disk.
type Health struct {
	Version int    `json:"version"`
	Service string `json:"service"`
	// GoVersion and Revision identify the build (Revision is the VCS
	// commit when the binary embeds one, else empty).
	GoVersion string `json:"go_version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	// ActiveSweeps counts sweeps currently executing; UptimeSec is the
	// server's age. Both answer "is this box alive and how loaded".
	ActiveSweeps int     `json:"active_sweeps"`
	UptimeSec    float64 `json:"uptime_sec,omitempty"`
	// Store carries the result-store traffic counters when persistence
	// is configured (entry counts are deliberately absent — counting
	// walks the store; poll GET /v1/store for them).
	Store *StoreStats `json:"store,omitempty"`
}

// StoreStats is the health document's store roll-up: the handle's
// lifetime traffic counters without the on-disk entry walk.
type StoreStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
}

// EncodeHealth writes h as versioned JSON.
func EncodeHealth(w io.Writer, h Health) error {
	h.Version = Version
	return json.NewEncoder(w).Encode(h)
}

// DecodeHealth reads and version-checks a health document.
func DecodeHealth(r io.Reader) (Health, error) {
	var h Health
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return h, fmt.Errorf("api: decode health: %w", err)
	}
	if err := CheckVersion(h.Version); err != nil {
		return h, err
	}
	return h, nil
}

// StoreStatus is the body of GET /v1/store (wire version 3): the
// server's persistent result store — entry count on disk plus the
// server handle's lifetime traffic counters.
type StoreStatus struct {
	Version int    `json:"version"`
	Entries int    `json:"entries"`
	Hits    int64  `json:"hits"`
	Misses  int64  `json:"misses"`
	Puts    int64  `json:"puts"`
	Error   string `json:"error,omitempty"`
}

// Event is one line of the NDJSON progress stream
// (GET /v1/sweeps/{id}/events): a per-job completion event carries the
// result; the final event carries the terminal State instead. Err
// surfaces a failed job's error string at the event's top level, so a
// stream consumer spots failures without digging into the result
// document (it duplicates Result.Err; additive within version 3).
type Event struct {
	Done   int     `json:"done"`
	Total  int     `json:"total"`
	Result *Result `json:"result,omitempty"`
	Err    string  `json:"err,omitempty"`
	State  State   `json:"state,omitempty"`
}

// Terminal reports whether this is the stream's final event.
func (e Event) Terminal() bool { return e.State.Terminal() }

// UnmarshalLine decodes one NDJSON stream line into the event.
func (e *Event) UnmarshalLine(line []byte) error {
	if err := json.Unmarshal(line, e); err != nil {
		return fmt.Errorf("api: decode event: %w", err)
	}
	return nil
}

// CheckVersion validates a decoded document's version field: versions
// 1 through the current Version and zero (pre-versioning documents)
// are accepted. Older documents decode correctly because every field
// added since version 1 is optional with version-1 semantics when
// absent.
func CheckVersion(v int) error {
	if v < 0 || v > Version {
		return fmt.Errorf("api: unsupported wire version %d (this build speaks 1..%d)", v, Version)
	}
	return nil
}

// EncodeSweepRequest writes req as versioned JSON.
func EncodeSweepRequest(w io.Writer, req SweepRequest) error {
	req.Version = Version
	return json.NewEncoder(w).Encode(req)
}

// DecodeSweepRequest reads and version-checks a sweep request.
func DecodeSweepRequest(r io.Reader) (SweepRequest, error) {
	var req SweepRequest
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return req, fmt.Errorf("api: decode sweep request: %w", err)
	}
	if err := CheckVersion(req.Version); err != nil {
		return req, err
	}
	if req.Grid == nil && len(req.Jobs) == 0 {
		return req, fmt.Errorf("api: sweep request has neither a grid nor jobs")
	}
	return req, nil
}

// EncodeSweepStatus writes st as versioned JSON.
func EncodeSweepStatus(w io.Writer, st SweepStatus) error {
	st.Version = Version
	return json.NewEncoder(w).Encode(st)
}

// DecodeSweepStatus reads and version-checks a sweep status.
func DecodeSweepStatus(r io.Reader) (SweepStatus, error) {
	var st SweepStatus
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return st, fmt.Errorf("api: decode sweep status: %w", err)
	}
	if err := CheckVersion(st.Version); err != nil {
		return st, err
	}
	return st, nil
}
