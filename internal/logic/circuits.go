package logic

import (
	"fmt"

	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
)

// The merge-control circuits operate on per-thread decode summaries
// presented in thermometer code: for each cluster, bit k of the "total"
// field means "at least k+1 operations on this cluster" (likewise for
// multiplier and load/store unit usage; branches are single bits).
// Thermometer coding keeps resource checks and routing generation in plain
// AND/OR logic: two packets conflict on a W-wide cluster exactly when
// a >= i and b >= W+1-i for some i.

// packet is the circuit-level occupancy summary of a thread or of a merged
// sub-packet flowing through the scheme tree.
type packet struct {
	present Signal
	total   [][]Signal // [cluster][IssueWidth] thermometer
	mul     [][]Signal // [cluster][Muls] thermometer
	mem     [][]Signal // [cluster][MemUnits] thermometer
	br      []Signal   // [cluster], meaningful on branch clusters only
}

func emptyPacket(b *Builder, m *isa.Machine) *packet {
	p := &packet{present: b.Const(false)}
	f := b.Const(false)
	for c := 0; c < m.Clusters; c++ {
		p.total = append(p.total, constRow(f, m.IssueWidth))
		p.mul = append(p.mul, constRow(f, m.Muls))
		p.mem = append(p.mem, constRow(f, m.MemUnits))
		p.br = append(p.br, f)
	}
	return p
}

func constRow(f Signal, n int) []Signal {
	row := make([]Signal, n)
	for i := range row {
		row[i] = f
	}
	return row
}

// threadInputs declares the decode-summary inputs of one thread port.
// Input declaration order is the contract used by Circuit.Evaluate.
func threadInputs(b *Builder, m *isa.Machine, port int) *packet {
	p := &packet{present: b.Input(fmt.Sprintf("p%d.present", port))}
	for c := 0; c < m.Clusters; c++ {
		var tot, mul, mem []Signal
		for k := 0; k < m.IssueWidth; k++ {
			tot = append(tot, b.Input(fmt.Sprintf("p%d.c%d.t%d", port, c, k+1)))
		}
		for k := 0; k < m.Muls; k++ {
			mul = append(mul, b.Input(fmt.Sprintf("p%d.c%d.m%d", port, c, k+1)))
		}
		for k := 0; k < m.MemUnits; k++ {
			mem = append(mem, b.Input(fmt.Sprintf("p%d.c%d.l%d", port, c, k+1)))
		}
		p.total = append(p.total, tot)
		p.mul = append(p.mul, mul)
		p.mem = append(p.mem, mem)
		if c < m.BranchClusters {
			p.br = append(p.br, b.Input(fmt.Sprintf("p%d.c%d.b", port, c)))
		} else {
			p.br = append(p.br, b.Const(false))
		}
	}
	return p
}

// csmtConflict: cluster-level conflict — both packets use some cluster.
func csmtConflict(b *Builder, m *isa.Machine, a, x *packet) Signal {
	var terms []Signal
	for c := 0; c < m.Clusters; c++ {
		terms = append(terms, b.And(a.total[c][0], x.total[c][0]))
	}
	return b.Or(terms...)
}

// thermToBinary converts a thermometer code into a binary count
// (LSB first). Used at the interface of the SMT merge control, which —
// following the adder-based designs of the paper's reference [7] — checks
// resource collisions and computes routing indices in binary arithmetic.
func thermToBinary(b *Builder, t []Signal) []Signal {
	var bits []Signal
	for w := 1; w <= len(t); w <<= 1 {
		var terms []Signal
		// Bit k of the count is set for count values with that bit set:
		// v in [w, 2w), [3w, 4w), ...
		for lo := w; lo <= len(t); lo += 2 * w {
			hi := lo + w // first value beyond the run
			if hi <= len(t) {
				terms = append(terms, b.And(t[lo-1], b.Not(t[hi-1])))
			} else {
				terms = append(terms, t[lo-1])
			}
		}
		bits = append(bits, b.Or(terms...))
	}
	return bits
}

// fullAdd is a gate-level full adder (no XOR cells in the library: sum is
// a two-level AND/OR form, as in static CMOS standard cells).
func fullAdd(b *Builder, x, y, c Signal) (sum, carry Signal) {
	nx, ny, nc := b.Not(x), b.Not(y), b.Not(c)
	sum = b.Or(
		b.And(x, ny, nc),
		b.And(nx, y, nc),
		b.And(nx, ny, c),
		b.And(x, y, c),
	)
	carry = b.Or(b.And(x, y), b.And(x, c), b.And(y, c))
	return sum, carry
}

// rippleAdd adds two equal-width binary numbers, returning width+1 bits.
func rippleAdd(b *Builder, x, y []Signal) []Signal {
	carry := b.Const(false)
	out := make([]Signal, 0, len(x)+1)
	for i := range x {
		var s Signal
		s, carry = fullAdd(b, x[i], y[i], carry)
		out = append(out, s)
	}
	return append(out, carry)
}

// addConst adds a small constant to a binary number (width+1 bits out).
func addConst(b *Builder, x []Signal, k int) []Signal {
	y := make([]Signal, len(x))
	for i := range y {
		y[i] = b.Const(k&(1<<uint(i)) != 0)
	}
	return rippleAdd(b, x, y)
}

// binaryEq builds "binary x == k" for a constant k.
func binaryEq(b *Builder, x []Signal, k int) Signal {
	cond := make([]Signal, len(x))
	for i := range x {
		if k&(1<<uint(i)) != 0 {
			cond[i] = x[i]
		} else {
			cond[i] = b.Not(x[i])
		}
	}
	return b.And(cond...)
}

// unitOverflow: thermometer-coded check that the combined use of a
// width-limited unit class exceeds its capacity: sum > width iff
// a >= i && b >= width+1-i for some i in 1..width. One AND level plus an
// OR tree — the *selection* path of the SMT merge control is shallow,
// which is what lets schemes like 3SCC overlap the (much deeper) routing
// computation with their CSMT levels, as the paper observes.
func unitOverflow(b *Builder, aT, bT []Signal) []Signal {
	w := len(aT)
	var terms []Signal
	for i := 1; i <= w; i++ {
		terms = append(terms, b.And(aT[i-1], bT[w-i]))
	}
	return terms
}

// smtConflict: operation-level conflict — some cluster's issue width,
// multipliers, load/store unit or branch unit oversubscribed.
func smtConflict(b *Builder, m *isa.Machine, a, x *packet) Signal {
	var terms []Signal
	for c := 0; c < m.Clusters; c++ {
		terms = append(terms, unitOverflow(b, a.total[c], x.total[c])...)
		terms = append(terms, unitOverflow(b, a.mul[c], x.mul[c])...)
		terms = append(terms, unitOverflow(b, a.mem[c], x.mem[c])...)
		if c < m.BranchClusters {
			terms = append(terms, b.And(a.br[c], x.br[c]))
		}
	}
	return b.Or(terms...)
}

// thermAdd: thermometer sum r >= n iff a >= n, or b' >= n, or
// a >= j && b' >= n-j for some split j.
func thermAdd(b *Builder, aT, bT []Signal, sel Signal) []Signal {
	w := len(aT)
	out := make([]Signal, w)
	gated := make([]Signal, w)
	for k := range bT {
		gated[k] = b.And(sel, bT[k])
	}
	for n := 1; n <= w; n++ {
		terms := []Signal{aT[n-1], gated[n-1]}
		for j := 1; j < n; j++ {
			terms = append(terms, b.And(aT[j-1], gated[n-j-1]))
		}
		out[n-1] = b.Or(terms...)
	}
	return out
}

// orMerge: cluster-disjoint union (CSMT): bits OR together under sel.
func orMerge(b *Builder, aT, bT []Signal, sel Signal) []Signal {
	out := make([]Signal, len(aT))
	for k := range aT {
		out[k] = b.Or(aT[k], b.And(sel, bT[k]))
	}
	return out
}

// mergePacket combines acc with x (gated by sel) under the node kind.
func mergePacket(b *Builder, m *isa.Machine, kind merge.Kind, acc, x *packet, sel Signal) *packet {
	r := &packet{present: b.Or(acc.present, sel)}
	for c := 0; c < m.Clusters; c++ {
		if kind == merge.CSMT {
			r.total = append(r.total, orMerge(b, acc.total[c], x.total[c], sel))
			r.mul = append(r.mul, orMerge(b, acc.mul[c], x.mul[c], sel))
			r.mem = append(r.mem, orMerge(b, acc.mem[c], x.mem[c], sel))
		} else {
			r.total = append(r.total, thermAdd(b, acc.total[c], x.total[c], sel))
			r.mul = append(r.mul, thermAdd(b, acc.mul[c], x.mul[c], sel))
			r.mem = append(r.mem, thermAdd(b, acc.mem[c], x.mem[c], sel))
		}
		r.br = append(r.br, b.Or(acc.br[c], b.And(sel, x.br[c])))
	}
	return r
}

// smtRouting generates the routing-control signals for merging packet x
// behind acc: x's j-th operation on cluster c lands in slot count(acc)+j.
// A constant-offset adder computes each destination index from the binary
// operation count of acc, and a decoder raises the one-hot (destination
// slot, source op) crossbar select. These signals are the bulk of the SMT
// merge control's cost and have no CSMT counterpart (cluster muxes take
// the issue selects directly). Validity gating against the final thread
// selection happens inside the routing block, whose cost the paper
// excludes as common to all multithreading schemes.
func smtRouting(b *Builder, m *isa.Machine, acc, x *packet, sel Signal) []Signal {
	var routes []Signal
	for c := 0; c < m.Clusters; c++ {
		w := m.IssueWidth
		cnt := thermToBinary(b, acc.total[c])
		for j := 0; j < w; j++ {
			dst := addConst(b, cnt, j)
			for s := j; s < w; s++ {
				routes = append(routes, b.And(sel, x.total[c][j], binaryEq(b, dst, s)))
			}
		}
	}
	return routes
}

// nodeResult carries a subtree's circuit products up the scheme tree.
type nodeResult struct {
	pkt      *packet
	kind     merge.Kind
	childSel []Signal      // per input: selected at this node (pre-acceptance)
	children []*nodeResult // per input: subtree result (nil for leaf)
	leafPort []int         // per input: port index (-1 for subtree)
	routes   [][]Signal    // per input: SMT routing controls
}

// buildNode lowers one merge node (and its subtree) to circuitry.
func buildNode(b *Builder, m *isa.Machine, n *merge.Node, leaves []*packet) *nodeResult {
	res := &nodeResult{kind: n.Kind}
	var pkts []*packet
	for _, in := range n.Inputs {
		if in.Node != nil {
			child := buildNode(b, m, in.Node, leaves)
			res.children = append(res.children, child)
			res.leafPort = append(res.leafPort, -1)
			pkts = append(pkts, child.pkt)
		} else {
			res.children = append(res.children, nil)
			res.leafPort = append(res.leafPort, in.Port)
			pkts = append(pkts, leaves[in.Port])
		}
	}
	if n.Parallel && n.Kind == merge.CSMT {
		res.childSel = parallelCSMTSelect(b, m, pkts)
	} else {
		res.childSel = make([]Signal, len(pkts))
	}

	acc := emptyPacket(b, m)
	for k, x := range pkts {
		var sel Signal
		if n.Parallel && n.Kind == merge.CSMT {
			sel = res.childSel[k]
		} else {
			var conflict Signal
			if n.Kind == merge.CSMT {
				conflict = csmtConflict(b, m, acc, x)
			} else {
				conflict = smtConflict(b, m, acc, x)
			}
			sel = b.And(x.present, b.Not(conflict))
			res.childSel[k] = sel
		}
		if n.Kind == merge.SMT {
			res.routes = append(res.routes, smtRouting(b, m, acc, x, sel))
		} else {
			// CSMT needs no routing: the per-cluster N-to-1 muxes take
			// the issue selects directly (their cost is common to every
			// multithreading scheme and excluded, as in the paper).
			res.routes = append(res.routes, nil)
		}
		acc = mergePacket(b, m, n.Kind, acc, x, sel)
	}
	res.pkt = acc
	return res
}

// parallelCSMTSelect implements the parallel CSMT merge control: all
// 2^n candidate selections are checked at once and the one the greedy
// serial cascade would pick is identified. Functionally equivalent to the
// serial form; exponentially more hardware (the paper's Figure 5).
func parallelCSMTSelect(b *Builder, m *isa.Machine, pkts []*packet) []Signal {
	n := len(pkts)
	// Pairwise cluster conflicts.
	conf := make([][]Signal, n)
	for i := range conf {
		conf[i] = make([]Signal, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := csmtConflict(b, m, pkts[i], pkts[j])
			conf[i][j], conf[j][i] = c, c
		}
	}
	// chosen(S): S is exactly the greedy selection. For each thread i,
	// the greedy rule admits i iff it is present and conflict-free with
	// the already-selected lower-priority prefix of S.
	selTerms := make([][]Signal, n)
	for set := 0; set < 1<<uint(n); set++ {
		var cond []Signal
		valid := true
		for i := 0; i < n && valid; i++ {
			var prefixConf []Signal
			for j := 0; j < i; j++ {
				if set&(1<<uint(j)) != 0 {
					prefixConf = append(prefixConf, conf[i][j])
				}
			}
			admit := b.And(pkts[i].present, b.Not(b.Or(prefixConf...)))
			if set&(1<<uint(i)) != 0 {
				cond = append(cond, admit)
			} else {
				cond = append(cond, b.Not(admit))
			}
		}
		chosen := b.And(cond...)
		for i := 0; i < n; i++ {
			if set&(1<<uint(i)) != 0 {
				selTerms[i] = append(selTerms[i], chosen)
			}
		}
	}
	sels := make([]Signal, n)
	for i := range sels {
		sels[i] = b.Or(selTerms[i]...)
	}
	return sels
}

// Circuit is a complete merge-control netlist for one scheme, with the
// machinery to evaluate it against behavioural candidates.
type Circuit struct {
	Net    *Netlist
	Scheme string

	machine isa.Machine
	ports   int
	selIdx  []int // output indices of the per-port select signals
}

// BuildScheme generates the thread-merge-control circuit of the scheme on
// machine m. Outputs are the final per-port issue selects, the SMT routing
// controls and the CSMT cluster grants, each gated by the acceptance of
// their sub-packet along the whole tree (a dropped sub-packet must not
// route or issue anything).
func BuildScheme(m *isa.Machine, tree *merge.Tree) (*Circuit, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder()
	ports := tree.Ports()
	leaves := make([]*packet, ports)
	for p := 0; p < ports; p++ {
		leaves[p] = threadInputs(b, m, p)
	}
	root := buildNode(b, m, tree.Root(), leaves)

	finalSel := make([]Signal, ports)
	outID := 0
	var gate func(res *nodeResult, accept Signal)
	gate = func(res *nodeResult, accept Signal) {
		for k := range res.childSel {
			acceptK := b.And(accept, res.childSel[k])
			for _, r := range res.routes[k] {
				// Routing signals are emitted ungated: the routing block
				// combines them with the issue selects.
				b.Output(fmt.Sprintf("route%d", outID), r)
				outID++
			}
			if port := res.leafPort[k]; port >= 0 {
				finalSel[port] = acceptK
			} else {
				gate(res.children[k], acceptK)
			}
		}
	}
	gate(root, b.Const(true))

	c := &Circuit{Scheme: tree.Name(), machine: *m, ports: ports}
	for p := 0; p < ports; p++ {
		c.selIdx = append(c.selIdx, outID)
		b.Output(fmt.Sprintf("sel%d", p), finalSel[p])
		outID++
	}
	c.Net = b.Build()
	return c, nil
}

// Ports returns the number of thread ports.
func (c *Circuit) Ports() int { return c.ports }

// Cost returns transistor count and gate-delay depth of the live circuit.
func (c *Circuit) Cost() (transistors, delay int) { return c.Net.Cost() }

// Evaluate feeds the candidate occupancies (entry p meaningful only when
// bit p of valid is set — the Selector candidate convention) into the
// circuit and returns the selected-port mask, for equivalence checking
// against merge.Tree.Select.
func (c *Circuit) Evaluate(cands []isa.Occupancy, valid uint32) (uint32, error) {
	if len(cands) != c.ports {
		return 0, fmt.Errorf("logic: %d candidates for %d ports", len(cands), c.ports)
	}
	var in []bool
	for p := 0; p < c.ports; p++ {
		in = appendOccupancyBits(in, &c.machine, &cands[p], valid&(1<<uint(p)) != 0)
	}
	out, err := c.Net.Eval(in)
	if err != nil {
		return 0, err
	}
	var mask uint32
	for p, idx := range c.selIdx {
		if out[idx] {
			mask |= 1 << uint(p)
		}
	}
	return mask, nil
}

// appendOccupancyBits encodes occ in the input order declared by
// threadInputs; present marks the thread as runnable (the valid bit).
func appendOccupancyBits(in []bool, m *isa.Machine, occ *isa.Occupancy, present bool) []bool {
	in = append(in, present)
	therm := func(v, w int) {
		for k := 1; k <= w; k++ {
			in = append(in, present && v >= k)
		}
	}
	for c := 0; c < m.Clusters; c++ {
		var u isa.ClusterUse
		if present {
			u = occ.Clusters[c]
		}
		therm(int(u.Total), m.IssueWidth)
		therm(int(u.Mul), m.Muls)
		therm(int(u.Mem), m.MemUnits)
		if c < m.BranchClusters {
			in = append(in, present && u.Branch > 0)
		}
	}
	return in
}
