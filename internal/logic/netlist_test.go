package logic

import (
	"math/rand"
	"testing"
)

func TestBasicGatesEval(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	b.Output("and", b.And(x, y))
	b.Output("or", b.Or(x, y))
	b.Output("notx", b.Not(x))
	n := b.Build()
	cases := []struct {
		in   []bool
		want []bool
	}{
		{[]bool{false, false}, []bool{false, false, true}},
		{[]bool{true, false}, []bool{false, true, false}},
		{[]bool{false, true}, []bool{false, true, true}},
		{[]bool{true, true}, []bool{true, true, false}},
	}
	for _, tc := range cases {
		got, err := n.Eval(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("in %v out %d = %v, want %v", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestConstantFolding(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	// AND with constant true is x itself; with false it is constant.
	if got := b.And(x, b.Const(true)); got != x {
		t.Error("And(x, 1) did not fold to x")
	}
	if got := b.And(x, b.Const(false)); got != b.Const(false) {
		t.Error("And(x, 0) did not fold to 0")
	}
	if got := b.Or(x, b.Const(false)); got != x {
		t.Error("Or(x, 0) did not fold to x")
	}
	if got := b.Or(x, b.Const(true)); got != b.Const(true) {
		t.Error("Or(x, 1) did not fold to 1")
	}
	if got := b.Not(b.Not(x)); got != x {
		t.Error("double negation did not fold")
	}
	if got := b.Not(b.Const(true)); got != b.Const(false) {
		t.Error("Not(1) did not fold")
	}
	if got := b.And(); got != b.Const(true) {
		t.Error("empty And is not 1")
	}
	if got := b.Or(); got != b.Const(false) {
		t.Error("empty Or is not 0")
	}
}

func TestWideGateDecomposition(t *testing.T) {
	b := NewBuilder()
	var xs []Signal
	for i := 0; i < 13; i++ {
		xs = append(xs, b.Input("x"))
	}
	b.Output("wide", b.And(xs...))
	n := b.Build()
	// All true -> true; one false -> false.
	in := make([]bool, 13)
	for i := range in {
		in[i] = true
	}
	if out, _ := n.Eval(in); !out[0] {
		t.Error("13-wide AND of ones is false")
	}
	in[7] = false
	if out, _ := n.Eval(in); out[0] {
		t.Error("13-wide AND with a zero is true")
	}
	// Depth must reflect the tree: ceil(log4(13)) = 2 AND levels.
	_, delay := n.Cost()
	if delay != 2 {
		t.Errorf("13-wide AND depth = %d gate delays, want 2", delay)
	}
}

func TestCostCountsOnlyLiveGates(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	live := b.And(x, y)
	for i := 0; i < 50; i++ {
		b.Or(x, b.Not(y)) // dead logic, never output
	}
	b.Output("out", live)
	n := b.Build()
	tr, delay := n.Cost()
	if tr != 6 { // one AND2
		t.Errorf("live transistors = %d, want 6", tr)
	}
	if delay != 1 {
		t.Errorf("delay = %d, want 1", delay)
	}
	if g := n.NumGates(); g != 1 {
		t.Errorf("live gates = %d, want 1", g)
	}
}

func TestTransistorCosts(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	b.Output("o1", b.Not(b.And(x, y, z))) // AND3 (8 tr) + INV (2 tr)
	n := b.Build()
	tr, delay := n.Cost()
	if tr != 10 {
		t.Errorf("transistors = %d, want 10", tr)
	}
	if delay != 2 {
		t.Errorf("delay = %d, want 2 (AND level + INV)", delay)
	}
}

func TestEvalInputMismatch(t *testing.T) {
	b := NewBuilder()
	b.Input("x")
	n := b.Build()
	if _, err := n.Eval([]bool{true, false}); err == nil {
		t.Error("Eval accepted wrong input count")
	}
}

func TestRandomCircuitEvalStable(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := NewBuilder()
	pool := []Signal{b.Input("a"), b.Input("b"), b.Input("c"), b.Input("d")}
	for i := 0; i < 200; i++ {
		x := pool[r.Intn(len(pool))]
		y := pool[r.Intn(len(pool))]
		switch r.Intn(3) {
		case 0:
			pool = append(pool, b.And(x, y))
		case 1:
			pool = append(pool, b.Or(x, y))
		default:
			pool = append(pool, b.Not(x))
		}
	}
	b.Output("out", pool[len(pool)-1])
	n := b.Build()
	in := []bool{true, false, true, false}
	first, err := n.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, _ := n.Eval(in)
		if again[0] != first[0] {
			t.Fatal("evaluation is not deterministic")
		}
	}
}
