// Package logic is a structural gate-level netlist builder with a static
// CMOS cost model. The merge-control circuits of the paper (CSMT serial,
// CSMT parallel, SMT, and their scheme compositions) are generated as
// netlists, evaluated for functional equivalence against internal/merge,
// and costed in transistors and gate delays — the repository's stand-in
// for the methodology of the paper's reference [7], whose absolute numbers
// are not public.
package logic

import "fmt"

// Signal identifies a net (the output of a gate or an input).
type Signal int32

// Kind enumerates gate types.
type Kind uint8

const (
	// KInput is a primary input.
	KInput Kind = iota
	// KConst is a constant 0/1 net (free: wired to a rail).
	KConst
	// KNot is an inverter.
	KNot
	// KAnd and KOr are standard static CMOS gates (NAND/NOR + inverter).
	KAnd
	KOr
)

type gate struct {
	kind Kind
	ins  []Signal
	val  bool // KConst value
	name string
}

// transistors returns the static CMOS transistor cost of the gate:
// inverter 2, k-input NAND/NOR 2k, so AND/OR cost 2k+2.
func (g *gate) transistors() int {
	switch g.kind {
	case KNot:
		return 2
	case KAnd, KOr:
		return 2*len(g.ins) + 2
	default:
		return 0
	}
}

// delay returns the gate delay contribution: one logic level per cell.
// Depth is counted in logic levels (the convention of gate-delay figures
// in the paper's reference [7]): AND/OR cells are realised as single
// complex static-CMOS stages for delay purposes, while their transistor
// cost above still accounts for the output inverter.
func (g *gate) delay() int {
	switch g.kind {
	case KNot, KAnd, KOr:
		return 1
	default:
		return 0
	}
}

// maxFanIn bounds gate fan-in; wider operations decompose into trees.
const maxFanIn = 4

// Netlist is a built circuit: gates in topological order (construction
// order), named primary inputs and named outputs.
type Netlist struct {
	gates   []gate
	inputs  []Signal
	outputs []Signal
	outName []string
}

// Builder constructs a Netlist.
type Builder struct {
	n      Netlist
	const0 Signal
	const1 Signal
}

// NewBuilder returns an empty circuit builder with constant rails.
func NewBuilder() *Builder {
	b := &Builder{}
	b.const0 = b.add(gate{kind: KConst, val: false})
	b.const1 = b.add(gate{kind: KConst, val: true})
	return b
}

func (b *Builder) add(g gate) Signal {
	b.n.gates = append(b.n.gates, g)
	return Signal(len(b.n.gates) - 1)
}

// Const returns the constant signal v.
func (b *Builder) Const(v bool) Signal {
	if v {
		return b.const1
	}
	return b.const0
}

// Input declares a named primary input.
func (b *Builder) Input(name string) Signal {
	s := b.add(gate{kind: KInput, name: name})
	b.n.inputs = append(b.n.inputs, s)
	return s
}

// Not returns the negation of a, folding constants and double negation.
func (b *Builder) Not(a Signal) Signal {
	g := &b.n.gates[a]
	switch g.kind {
	case KConst:
		return b.Const(!g.val)
	case KNot:
		return g.ins[0]
	}
	return b.add(gate{kind: KNot, ins: []Signal{a}})
}

func (b *Builder) nary(kind Kind, xs []Signal) Signal {
	// Constant folding: drop identity elements (1 for AND, 0 for OR) and
	// short-circuit on absorbing elements (0 for AND, 1 for OR).
	identity := kind == KAnd
	var live []Signal
	for _, x := range xs {
		g := &b.n.gates[x]
		if g.kind == KConst {
			if g.val == identity {
				continue
			}
			return b.Const(!identity)
		}
		live = append(live, x)
	}
	switch len(live) {
	case 0:
		return b.Const(identity) // AND() = 1, OR() = 0
	case 1:
		return live[0]
	}
	for len(live) > maxFanIn {
		var next []Signal
		for i := 0; i < len(live); i += maxFanIn {
			end := i + maxFanIn
			if end > len(live) {
				end = len(live)
			}
			chunk := live[i:end]
			if len(chunk) == 1 {
				next = append(next, chunk[0])
				continue
			}
			next = append(next, b.add(gate{kind: kind, ins: append([]Signal(nil), chunk...)}))
		}
		live = next
	}
	return b.add(gate{kind: kind, ins: append([]Signal(nil), live...)})
}

// And returns the conjunction of xs (trees above fan-in 4).
func (b *Builder) And(xs ...Signal) Signal { return b.nary(KAnd, xs) }

// Or returns the disjunction of xs (trees above fan-in 4).
func (b *Builder) Or(xs ...Signal) Signal { return b.nary(KOr, xs) }

// Output marks s as a named circuit output.
func (b *Builder) Output(name string, s Signal) {
	b.n.outputs = append(b.n.outputs, s)
	b.n.outName = append(b.n.outName, name)
}

// Build finalises and returns the netlist.
func (b *Builder) Build() *Netlist {
	n := b.n
	return &n
}

// NumInputs returns the number of primary inputs.
func (n *Netlist) NumInputs() int { return len(n.inputs) }

// NumOutputs returns the number of outputs.
func (n *Netlist) NumOutputs() int { return len(n.outputs) }

// NumGates returns the number of live logic gates (inverters/AND/OR
// reachable from the outputs).
func (n *Netlist) NumGates() int {
	count := 0
	for i, l := range n.liveSet() {
		if l {
			switch n.gates[i].kind {
			case KNot, KAnd, KOr:
				count++
			}
		}
	}
	return count
}

// liveSet marks gates reachable from outputs.
func (n *Netlist) liveSet() []bool {
	live := make([]bool, len(n.gates))
	var stack []Signal
	stack = append(stack, n.outputs...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if live[s] {
			continue
		}
		live[s] = true
		stack = append(stack, n.gates[s].ins...)
	}
	return live
}

// Cost returns the transistor count and the critical-path depth in gate
// delays of the live circuit (logic reachable from the outputs; dead gates
// would be removed by synthesis and are not charged).
func (n *Netlist) Cost() (transistors, delay int) {
	live := n.liveSet()
	depth := make([]int, len(n.gates))
	for i := range n.gates {
		if !live[i] {
			continue
		}
		g := &n.gates[i]
		transistors += g.transistors()
		d := 0
		for _, in := range g.ins {
			if depth[in] > d {
				d = depth[in]
			}
		}
		depth[i] = d + g.delay()
	}
	for _, o := range n.outputs {
		if depth[o] > delay {
			delay = depth[o]
		}
	}
	return transistors, delay
}

// Eval computes all outputs for the given input assignment (values indexed
// like the inputs passed to Input, in declaration order).
func (n *Netlist) Eval(inputs []bool) ([]bool, error) {
	if len(inputs) != len(n.inputs) {
		return nil, fmt.Errorf("logic: %d input values for %d inputs", len(inputs), len(n.inputs))
	}
	val := make([]bool, len(n.gates))
	ii := 0
	for i := range n.gates {
		g := &n.gates[i]
		switch g.kind {
		case KInput:
			val[i] = inputs[ii]
			ii++
		case KConst:
			val[i] = g.val
		case KNot:
			val[i] = !val[g.ins[0]]
		case KAnd:
			v := true
			for _, in := range g.ins {
				v = v && val[in]
			}
			val[i] = v
		case KOr:
			v := false
			for _, in := range g.ins {
				v = v || val[in]
			}
			val[i] = v
		}
	}
	out := make([]bool, len(n.outputs))
	for i, o := range n.outputs {
		out[i] = val[o]
	}
	return out, nil
}

// OutputNames returns the declared output names in order.
func (n *Netlist) OutputNames() []string { return n.outName }
