package logic

import (
	"math/rand"
	"testing"

	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
)

func buildCircuit(t *testing.T, scheme string) (*Circuit, *merge.Tree) {
	t.Helper()
	m := isa.Default()
	tree, err := merge.Parse(scheme, merge.PortsFor(scheme))
	if err != nil {
		t.Fatalf("Parse(%s): %v", scheme, err)
	}
	c, err := BuildScheme(&m, tree)
	if err != nil {
		t.Fatalf("BuildScheme(%s): %v", scheme, err)
	}
	return c, tree
}

// randomOcc builds a random occupancy that fits the machine.
func randomOcc(r *rand.Rand, m *isa.Machine) *isa.Occupancy {
	var ops []isa.Op
	for c := 0; c < m.Clusters; c++ {
		n := r.Intn(m.IssueWidth + 1)
		if r.Intn(2) == 0 {
			n = 0 // bias towards sparse packets
		}
		muls, mems := 0, 0
		for i := 0; i < n; i++ {
			switch r.Intn(5) {
			case 0:
				if muls < m.Muls {
					ops = append(ops, isa.Op{Class: isa.OpMul, Cluster: uint8(c)})
					muls++
					continue
				}
			case 1:
				if mems < m.MemUnits {
					ops = append(ops, isa.Op{Class: isa.OpMem, Cluster: uint8(c)})
					mems++
					continue
				}
			}
			ops = append(ops, isa.Op{Class: isa.OpALU, Cluster: uint8(c)})
		}
	}
	if r.Intn(8) == 0 {
		ops = append(ops, isa.Op{Class: isa.OpBranch, Cluster: 0})
	}
	occ := isa.OccupancyOf(ops)
	return &occ
}

func randomCandSet(r *rand.Rand, m *isa.Machine, ports int) ([]isa.Occupancy, uint32) {
	cands := make([]isa.Occupancy, ports)
	var valid uint32
	for p := range cands {
		if r.Intn(5) == 0 {
			continue
		}
		cands[p] = *randomOcc(r, m)
		valid |= 1 << uint(p)
	}
	return cands, valid
}

// TestCircuitMatchesBehaviouralMerge is the central equivalence property:
// for every paper scheme, the gate-level merge control selects exactly the
// same thread set as the behavioural model, over thousands of random
// candidate combinations.
func TestCircuitMatchesBehaviouralMerge(t *testing.T) {
	m := isa.Default()
	for _, scheme := range merge.PaperSchemes4() {
		c, tree := buildCircuit(t, scheme)
		r := rand.New(rand.NewSource(17))
		trials := 800
		if testing.Short() {
			trials = 100
		}
		for i := 0; i < trials; i++ {
			cands, valid := randomCandSet(r, &m, tree.Ports())
			want := tree.Select(&m, cands, valid).Mask
			got, err := c.Evaluate(cands, valid)
			if err != nil {
				t.Fatalf("%s: %v", scheme, err)
			}
			if got != want {
				t.Fatalf("%s: circuit mask %04b != behavioural %04b for %v", scheme, got, want, cands)
			}
		}
	}
}

// TestCircuitMatchesBaselineControls checks the figure-5 control circuits
// (CSMT serial, CSMT parallel, SMT cascade) for 2..6 threads.
func TestCircuitMatchesBaselineControls(t *testing.T) {
	m := isa.Default()
	r := rand.New(rand.NewSource(23))
	for n := 2; n <= 6; n++ {
		trees := controlTrees(t, n)
		for _, tree := range trees {
			c, err := BuildScheme(&m, tree)
			if err != nil {
				t.Fatalf("%s/%d: %v", tree.Name(), n, err)
			}
			for i := 0; i < 150; i++ {
				cands, valid := randomCandSet(r, &m, n)
				want := tree.Select(&m, cands, valid).Mask
				got, err := c.Evaluate(cands, valid)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s/%d threads: circuit %0*b != behavioural %0*b", tree.Name(), n, n, got, n, want)
				}
			}
		}
	}
}

func controlTrees(t *testing.T, n int) []*merge.Tree {
	t.Helper()
	kindsC := make([]merge.Kind, n-1)
	kindsS := make([]merge.Kind, n-1)
	for i := range kindsC {
		kindsC[i] = merge.CSMT
		kindsS[i] = merge.SMT
	}
	csmtSL, err := merge.Cascade("csmt-sl", kindsC...)
	if err != nil {
		t.Fatal(err)
	}
	smt, err := merge.Cascade("smt", kindsS...)
	if err != nil {
		t.Fatal(err)
	}
	csmtPL, err := merge.ParallelCSMT("csmt-pl", n)
	if err != nil {
		t.Fatal(err)
	}
	return []*merge.Tree{csmtSL, csmtPL, smt}
}

// TestSerialParallelCSMTSameCost checks the functional equivalence pair
// and the cost difference: the parallel form must cost more transistors
// but fewer gate delays than the serial cascade at 4 threads.
func TestSerialParallelCSMTCostShape(t *testing.T) {
	serial, _ := buildCircuit(t, "3CCC")
	parallel, _ := buildCircuit(t, "C4")
	st, sd := serial.Cost()
	pt, pd := parallel.Cost()
	if pt <= st {
		t.Errorf("parallel CSMT transistors %d not above serial %d", pt, st)
	}
	if pd >= sd {
		t.Errorf("parallel CSMT delay %d not below serial %d", pd, sd)
	}
}

// TestSMTCostDominatesCSMT: an SMT merge control block costs much more
// than a CSMT one (the premise of the whole paper).
func TestSMTCostDominatesCSMT(t *testing.T) {
	smt, _ := buildCircuit(t, "1S")
	m := isa.Default()
	tree, err := merge.Cascade("1C", merge.CSMT)
	if err != nil {
		t.Fatal(err)
	}
	csmt, err := BuildScheme(&m, tree)
	if err != nil {
		t.Fatal(err)
	}
	st, sd := smt.Cost()
	ct, cd := csmt.Cost()
	if st < 4*ct {
		t.Errorf("SMT transistors %d not >> CSMT %d", st, ct)
	}
	if sd <= cd {
		t.Errorf("SMT delay %d not above CSMT %d", sd, cd)
	}
}

// TestSchemeCostOrderings verifies the cost relations the paper highlights
// in Figure 9.
func TestSchemeCostOrderings(t *testing.T) {
	cost := map[string][2]int{}
	for _, s := range merge.PaperSchemes4() {
		c, _ := buildCircuit(t, s)
		tr, d := c.Cost()
		cost[s] = [2]int{tr, d}
	}
	tr := func(s string) int { return cost[s][0] }
	d := func(s string) int { return cost[s][1] }

	// CSMT-only schemes are the cheapest in transistors.
	for _, cheap := range []string{"C4", "3CCC", "2CC"} {
		for _, other := range []string{"1S", "2SC3", "3SCC", "3SSS", "2SS"} {
			if tr(cheap) >= tr(other) {
				t.Errorf("transistors(%s)=%d not below %s=%d", cheap, tr(cheap), other, tr(other))
			}
		}
	}
	// Single-SMT-block schemes cost about one SMT block. The recommended
	// SMT-first schemes (2SC3, 3SCC) stay within 25% of 1S; schemes whose
	// SMT block consumes a CSMT-merged packet carry the packet-summary
	// logic too and stay within 60%.
	for _, s := range []string{"2SC3", "3SCC"} {
		if tr(s) < tr("1S") || tr(s) > tr("1S")*125/100 {
			t.Errorf("transistors(%s)=%d not close above 1S=%d", s, tr(s), tr("1S"))
		}
	}
	for _, s := range []string{"3CSC", "3CCS", "2C3S", "2CS"} {
		if tr(s) < tr("1S") || tr(s) > tr("1S")*160/100 {
			t.Errorf("transistors(%s)=%d not within 60%% above 1S=%d", s, tr(s), tr("1S"))
		}
	}
	// Two- and three-block schemes scale accordingly.
	if tr("2SC") < 2*tr("1S") || tr("3SSC") < 2*tr("1S") {
		t.Errorf("two-SMT-block schemes too cheap: 2SC=%d 3SSC=%d 1S=%d", tr("2SC"), tr("3SSC"), tr("1S"))
	}
	if tr("3SSS") < 3*tr("1S") || tr("2SS") < 3*tr("1S") {
		t.Errorf("three-SMT-block schemes too cheap: 2SS=%d 3SSS=%d 1S=%d", tr("2SS"), tr("3SSS"), tr("1S"))
	}
	// Delay: 3SSS is strictly the slowest; 2SC3/3SCC stay much closer to
	// 1S than to 3SSS (the SMT routing computation overlaps the CSMT
	// levels, as the paper observes).
	for _, s := range merge.PaperSchemes4() {
		if s != "3SSS" && d(s) >= d("3SSS") {
			t.Errorf("delay(%s)=%d not below 3SSS=%d", s, d(s), d("3SSS"))
		}
	}
	for _, s := range []string{"2SC3", "3SCC"} {
		if d(s)-d("1S") > d("3SSS")-d(s) {
			t.Errorf("delay(%s)=%d closer to 3SSS=%d than to 1S=%d", s, d(s), d("3SSS"), d("1S"))
		}
	}
	// Balanced trees beat their cascades on delay at equal node types.
	if d("2CC") >= d("3CCC") {
		t.Errorf("delay(2CC)=%d not below 3CCC=%d", d("2CC"), d("3CCC"))
	}
	if d("2SS") >= d("3SSS") {
		t.Errorf("delay(2SS)=%d not below 3SSS=%d", d("2SS"), d("3SSS"))
	}
	// 3SSC has the lowest delay among the two-SMT-block cascades.
	if d("3SSC") >= d("3SCS") || d("3SSC") >= d("3CSS") {
		t.Errorf("delay(3SSC)=%d not lowest of (3SCS=%d, 3CSS=%d)", d("3SSC"), d("3SCS"), d("3CSS"))
	}
}

func TestEvaluateRejectsWrongArity(t *testing.T) {
	c, _ := buildCircuit(t, "1S")
	if _, err := c.Evaluate(make([]isa.Occupancy, 4), 0); err == nil {
		t.Error("Evaluate accepted 4 candidates on a 2-port circuit")
	}
	if c.Ports() != 2 {
		t.Errorf("Ports() = %d", c.Ports())
	}
}

func TestBuildSchemeRejectsBadMachine(t *testing.T) {
	m := isa.Default()
	m.Clusters = 0
	tree, _ := merge.Parse("1S", 2)
	if _, err := BuildScheme(&m, tree); err == nil {
		t.Error("BuildScheme accepted invalid machine")
	}
}

// TestCircuitEquivalenceOtherMachines re-runs the central equivalence
// property on different machine geometries: the paper's Figure 1 example
// machine (4 clusters x 2 issue, 1 multiplier) and a 2-cluster, 8-issue
// configuration.
func TestCircuitEquivalenceOtherMachines(t *testing.T) {
	machines := []isa.Machine{}
	m1 := isa.Default()
	m1.IssueWidth = 2
	m1.Muls = 1
	machines = append(machines, m1)
	m2 := isa.Default()
	m2.Clusters = 2
	m2.IssueWidth = 8
	m2.Muls = 3
	m2.MemUnits = 2
	machines = append(machines, m2)
	for mi, m := range machines {
		m := m
		r := rand.New(rand.NewSource(int64(100 + mi)))
		for _, scheme := range []string{"1S", "3CCC", "2SC3", "3SSS", "2SC", "C4"} {
			tree, err := merge.Parse(scheme, merge.PortsFor(scheme))
			if err != nil {
				t.Fatal(err)
			}
			c, err := BuildScheme(&m, tree)
			if err != nil {
				t.Fatalf("machine %d scheme %s: %v", mi, scheme, err)
			}
			for i := 0; i < 200; i++ {
				cands, valid := randomCandSet(r, &m, tree.Ports())
				want := tree.Select(&m, cands, valid).Mask
				got, err := c.Evaluate(cands, valid)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("machine %d scheme %s: circuit %04b != behavioural %04b",
						mi, scheme, got, want)
				}
			}
		}
	}
}
