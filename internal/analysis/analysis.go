// Package analysis is the repo's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) built entirely on
// the standard library's go/ast and go/types.
//
// Why not x/tools? The main module's zero-external-dependency policy
// is load-bearing (ROADMAP.md), and the analyzers the repo needs —
// determinism purity, map-iteration ordering, hot-path allocation and
// wire/telemetry hygiene — are whole-file syntactic+type checks that
// the stdlib type checker serves fine. The API mirrors go/analysis
// closely enough that the suite could be ported onto a multichecker
// mechanically if x/tools ever becomes a dependency.
//
// Suppression grammar: a finding is suppressed by the comment
//
//	//vliwvet:allow <analyzer> <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The analyzer name must be one of the suite's and
// the reason must be non-empty — a malformed allow directive is itself
// reported (as analyzer "vliwvet"), so suppressions cannot silently
// rot. See DESIGN.md "Statically enforced invariants".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check: a name (used in diagnostics and allow
// directives), a one-paragraph doc, and the run function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one reported finding, before suppression filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a diagnostic that survived suppression, resolved to a
// file position and stamped with its analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// AllowDirective is the parsed form of one //vliwvet:allow comment.
type AllowDirective struct {
	Pos      token.Pos
	Analyzer string // "" when malformed
	Reason   string
	// Lines are the source lines the directive covers: its own line
	// and the one below.
	Lines [2]int
	File  string
}

const allowPrefix = "//vliwvet:allow"

// allowDirectives extracts every //vliwvet:allow directive from the
// files, malformed ones included (Analyzer == "" or Reason == "").
func allowDirectives(fset *token.FileSet, files []*ast.File) []AllowDirective {
	var out []AllowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				pos := fset.Position(c.Pos())
				d := AllowDirective{Pos: c.Pos(), File: pos.Filename, Lines: [2]int{pos.Line, pos.Line + 1}}
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					d.Analyzer = fields[0]
				}
				if len(fields) >= 2 {
					d.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Package is the unit of analysis: a parsed, type-checked package.
// The loader (this package's load sub-package) produces them.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Run applies every analyzer to every package, filters the diagnostics
// through the //vliwvet:allow directives, and returns the surviving
// findings sorted by position. Malformed directives (unknown analyzer
// name, missing reason) are returned as findings of analyzer
// "vliwvet" so they cannot silently disable a real check.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		dirs := allowDirectives(pkg.Fset, pkg.Syntax)
		// allowed[analyzer][file:line] reports a live suppression.
		allowed := map[string]map[string]bool{}
		for _, d := range dirs {
			switch {
			case d.Analyzer == "" || d.Reason == "":
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: "vliwvet",
					Message:  fmt.Sprintf("malformed allow directive: want %q", allowPrefix+" <analyzer> <reason>"),
				})
			case !known[d.Analyzer]:
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: "vliwvet",
					Message:  fmt.Sprintf("allow directive names unknown analyzer %q", d.Analyzer),
				})
			default:
				m := allowed[d.Analyzer]
				if m == nil {
					m = map[string]bool{}
					allowed[d.Analyzer] = m
				}
				for _, line := range d.Lines {
					m[fmt.Sprintf("%s:%d", d.File, line)] = true
				}
			}
		}

		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return findings, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				pos := pkg.Fset.Position(d.Pos)
				if allowed[a.Name][fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] {
					continue
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// MetricNameRE is the wire/telemetry identifier grammar enforced by
// wiretag: Prometheus-conventional snake_case names and label keys.
var MetricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
