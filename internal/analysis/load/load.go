// Package load turns Go packages into type-checked analysis units
// using only the standard library and the go command.
//
// Discovery and dependency resolution go through `go list -export`,
// which compiles (or reuses from the build cache) the export data of
// every dependency, standard library included; the analyzed packages
// themselves are parsed and type-checked from source so analyzers see
// syntax trees with full type information. Imports resolve through
// go/importer's gc importer with a lookup function over the export
// files go list reported — the same mechanism the compiler itself
// uses, so type information is exact, works fully offline, and needs
// no dependency beyond the toolchain already required to build the
// repo.
//
// Only non-test files are analyzed (go list's GoFiles): the invariants
// vliwvet enforces are production-code invariants, and tests routinely
// use wall clocks and RNGs legitimately.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"vliwmt/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// goList runs `go list -e -deps -export -json` for the patterns in dir
// and decodes the JSON stream.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Export,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("load: go list: %w", err)
	}
	var pkgs []listPackage
	dec := json.NewDecoder(out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return pkgs, nil
}

// exportImporter resolves import paths through the export files
// `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, pkgPath string, files []string, imp types.Importer) (*analysis.Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		syntax = append(syntax, af)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", pkgPath, err)
	}
	return &analysis.Package{PkgPath: pkgPath, Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info}, nil
}

// Module loads every package the patterns match inside the module
// rooted at dir, type-checked from source with imports resolved from
// export data. Packages are returned in import-path order.
func Module(dir string, patterns ...string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var pkgs []*analysis.Package
	for _, p := range listed {
		if p.Standard || p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := check(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// Dir loads the .go files of one directory as a package presented
// under pkgPath — the analysistest entry point for testdata packages,
// which live outside the module proper. The directory's files may
// import anything the surrounding module's toolchain can list
// (in practice: the standard library).
func Dir(dir, pkgPath string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	sort.Strings(files)

	// Collect the imports syntactically, then resolve their export
	// data (with -deps, so transitive imports resolve too).
	fset := token.NewFileSet()
	scanFset := token.NewFileSet()
	imports := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(scanFset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		for _, im := range af.Imports {
			imports[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(moduleRoot(dir), paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return check(fset, pkgPath, files, exportImporter(fset, exports))
}

// moduleRoot walks up from dir to the enclosing go.mod, falling back
// to dir itself (go list then runs in whatever context dir provides).
func moduleRoot(dir string) string {
	d, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
