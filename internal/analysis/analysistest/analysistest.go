// Package analysistest runs one analyzer over a testdata package and
// checks its diagnostics against expectations written in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// repo's stdlib-only framework.
//
// Expectations are trailing comments of the form
//
//	// want `regexp`
//
// on the line the diagnostic is reported at. Every reported diagnostic
// must match a want on its line, and every want must be matched by
// exactly one diagnostic. //vliwvet:allow suppression is applied
// before matching, so a testdata line carrying an allow directive and
// no want comment asserts the suppression path.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"vliwmt/internal/analysis"
	"vliwmt/internal/analysis/load"
)

var wantRE = regexp.MustCompile("// want `([^`]*)`")

// Run loads dir as a package presented under pkgPath, applies the
// analyzer (with allow-directive filtering), and reports mismatches
// between diagnostics and want comments on t.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := load.Dir(dir, pkgPath)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("analysistest: bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", shorten(key), w.re)
			}
		}
	}
}

func shorten(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
