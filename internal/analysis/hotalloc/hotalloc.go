// Package hotalloc statically polices the zero-alloc contract of
// functions annotated //vliw:hotpath — the simulator cycle loop, the
// compiled merge selectors, the isa merge primitives, the telemetry
// increments and the result-store probe. The dynamic backstop is
// `make check-allocs` (testing.AllocsPerRun); hotalloc catches the
// same regressions file-by-file at lint time, before a benchmark run.
//
// Inside an annotated function it reports constructs the compiler
// heap-allocates, or that allocate on every call:
//
//   - function literals that capture enclosing variables (escaping
//     closures; non-capturing literals compile to static functions
//     and are fine)
//   - any fmt call (fmt boxes its operands)
//   - non-constant string concatenation
//   - conversions of concrete values to interface types, explicit or
//     implicit (call arguments, assignments, returns)
//   - append into a slice declared locally without capacity (a
//     parameter, field or make-with-capacity destination is assumed
//     preallocated by the caller/owner)
//   - map/slice composite literals, make, new, and &T{...}
//
// The annotation is a doc-comment line. The marker deliberately is
// not "//vliwvet:" — it documents the function's contract for human
// readers first, and this analyzer merely enforces it.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vliwmt/internal/analysis"
)

// Marker annotates a hot-path function's doc comment.
const Marker = "//vliw:hotpath"

// Analyzer is the hotalloc analysis.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid per-call heap allocation in functions annotated " + Marker,
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, Marker) {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	prealloc := preallocated(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := captured(pass, fd, n); capt != "" {
				pass.Reportf(n.Pos(), "hot path: closure captures %s and allocates per call", capt)
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n, prealloc)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(pass, n) {
				pass.Reportf(n.Pos(), "hot path: string concatenation allocates")
			}
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path: &composite literal escapes to the heap")
				}
			}
		case *ast.AssignStmt:
			checkImplicitIfaceAssign(pass, n)
		case *ast.ReturnStmt:
			checkImplicitIfaceReturn(pass, fd, n)
		}
		return true
	})
}

// preallocated collects local slice variables initialised with a
// capacity (make with an explicit cap, or make with a nonzero length).
func preallocated(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			withCap := len(call.Args) >= 3
			if !withCap && len(call.Args) == 2 {
				if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil {
					withCap = tv.Value.String() != "0"
				}
			}
			if !withCap {
				continue
			}
			if lid, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := objOf(pass, lid); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// captured returns the name of a variable the literal captures from
// its enclosing function ("" when it captures nothing).
func captured(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function (receiver,
		// parameter or local) but outside the literal itself.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			name = v.Name()
		}
		return true
	})
	return name
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool) {
	// Explicit conversion to an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := pass.TypesInfo.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) && !isUntypedNil(pass, call.Args[0]) {
				pass.Reportf(call.Pos(), "hot path: conversion to interface %s allocates", tv.Type)
			}
		}
		return
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "append":
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				checkAppend(pass, fd, call, prealloc)
				return
			}
		case "make":
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "hot path: make allocates per call; hoist the buffer to per-run state")
				return
			}
		case "new":
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(), "hot path: new allocates per call")
				return
			}
		}
	case *ast.SelectorExpr:
		if fn := pass.TypesInfo.Uses[fun.Sel]; fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "hot path: fmt.%s allocates (operands escape through ...any)", fn.Name())
			return
		}
	}
	checkImplicitIfaceArgs(pass, call)
}

// checkAppend flags appends whose destination slice is a local
// variable declared without capacity.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // fields, slice expressions: assume owner preallocated
	}
	v, ok := objOf(pass, id).(*types.Var)
	if !ok || v.IsField() || prealloc[v] {
		return
	}
	// Flag only declarations inside the function body: parameters,
	// receivers and package-level slices are the caller's/owner's
	// responsibility (and the repo's per-run state pattern).
	if v.Pos() <= fd.Body.Pos() || v.Pos() >= fd.Body.End() {
		return
	}
	pass.Reportf(call.Pos(),
		"hot path: append to %s, declared locally without capacity; preallocate with make(..., 0, n) or hoist to per-run state",
		v.Name())
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "hot path: map literal allocates per call")
	case *types.Slice:
		pass.Reportf(lit.Pos(), "hot path: slice literal allocates its backing array per call")
	}
}

func isNonConstString(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// checkImplicitIfaceArgs flags concrete arguments passed to interface
// parameters (the classic fmt-free boxing site).
func checkImplicitIfaceArgs(pass *analysis.Pass, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(pass, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path: %s boxed into interface %s argument", at, pt)
	}
}

func checkImplicitIfaceAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		lt := pass.TypesInfo.TypeOf(lhs)
		rt := pass.TypesInfo.TypeOf(as.Rhs[i])
		if lt == nil || rt == nil || !types.IsInterface(lt) || types.IsInterface(rt) || isUntypedNil(pass, as.Rhs[i]) {
			continue
		}
		pass.Reportf(as.Rhs[i].Pos(), "hot path: %s boxed into interface %s", rt, lt)
	}
}

func checkImplicitIfaceReturn(pass *analysis.Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	sig, ok := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
	if !ok || sig.Results() == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		rt := sig.Results().At(i).Type()
		at := pass.TypesInfo.TypeOf(res)
		if at == nil || !types.IsInterface(rt) || types.IsInterface(at) || isUntypedNil(pass, res) {
			continue
		}
		pass.Reportf(res.Pos(), "hot path: %s boxed into interface %s return", at, rt)
	}
}
