// Package hotalloc_testdata exercises the hotalloc analyzer. Only
// functions annotated //vliw:hotpath are checked.
package hotalloc_testdata

import "fmt"

// Sink keeps values alive without fmt.
var Sink any

// state mimics the simulator's per-run core: preallocated buffers the
// hot loop reuses.
type state struct {
	buf  []int
	name string
}

//vliw:hotpath
func HotViolations(s *state, n int, label string) {
	f := func() int { return n } // want `closure captures n`
	_ = f()

	fmt.Println(n) // want `fmt.Println allocates`

	s.name = label + "!" // want `string concatenation allocates`

	var local []int
	local = append(local, n) // want `append to local, declared locally without capacity`
	_ = local

	m := map[int]int{} // want `map literal allocates per call`
	_ = m

	sl := []int{1, 2, 3} // want `slice literal allocates its backing array per call`
	_ = sl

	b := make([]byte, n) // want `make allocates per call`
	_ = b

	p := new(int) // want `new allocates per call`
	_ = p

	q := &state{} // want `&composite literal escapes to the heap`
	_ = q

	Sink = n // want `int boxed into interface`
}

//vliw:hotpath
func HotClean(s *state, scratch []int, n int) int {
	// Appends into per-run state (fields) or caller-owned buffers
	// (parameters), and capture-free literals, are all fine.
	s.buf = append(s.buf, n)
	scratch = append(scratch, n)
	g := func() int { return 0 } // no capture: static function
	total := scratch[len(scratch)-1]
	for _, v := range s.buf {
		total += v
	}
	return total + g()
}

//vliw:hotpath
func HotAllowed(n int) {
	//vliwvet:allow hotalloc cold error path, executes at most once per run
	fmt.Println(n)
}

// Cold is unannotated: nothing is checked.
func Cold(n int) string {
	return fmt.Sprintf("%d", n)
}
