package hotalloc_test

import (
	"testing"

	"vliwmt/internal/analysis/analysistest"
	"vliwmt/internal/analysis/hotalloc"
)

// TestHotalloc covers every flagged construct, the clean counterparts
// (preallocated make, field appends, capture-free literals), the
// unannotated-function non-finding and the //vliwvet:allow path.
// hotalloc is not package-gated, so the testdata import path is
// arbitrary.
func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/hotalloc", "vliwmt/internal/testdata/hotalloc", hotalloc.Analyzer)
}
