package detpure_test

import (
	"testing"

	"vliwmt/internal/analysis"
	"vliwmt/internal/analysis/analysistest"
	"vliwmt/internal/analysis/detpure"
	"vliwmt/internal/analysis/load"
)

// TestDetpure runs the analyzer over the testdata package, presented
// under a designated deterministic import path so the checks apply.
// The testdata includes both true positives (want comments) and the
// //vliwvet:allow suppression path (allowed lines carry no want).
func TestDetpure(t *testing.T) {
	analysistest.Run(t, "testdata/src/detpure", "vliwmt/internal/sim", detpure.Analyzer)
}

// TestNonDesignatedPackageIsIgnored loads the same violating sources
// under an import path outside the deterministic core: detpure must
// report nothing.
func TestNonDesignatedPackageIsIgnored(t *testing.T) {
	pkg, err := load.Dir("testdata/src/detpure", "vliwmt/internal/report")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{detpure.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("detpure reported %d findings outside designated packages: %v", len(findings), findings)
	}
}
