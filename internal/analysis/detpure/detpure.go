// Package detpure forbids sources of nondeterminism in the repo's
// deterministic core: the packages whose outputs must be a pure
// function of their configured inputs (bit-identical reproduction at
// any worker count, warm-store replay, remote-vs-local equality all
// rest on it — see DESIGN.md).
//
// In a designated package, detpure reports references to:
//
//   - wall clocks: time.Now, time.Since, time.Until
//   - the global math/rand source: any package-level math/rand or
//     math/rand/v2 function except the constructors (rand.New,
//     rand.NewSource, ...). Seeded *rand.Rand values are fine; the
//     process-global source is not, and the simulator's own xorshift
//     is the preferred tool anyway.
//   - process environment: os.Getenv, os.LookupEnv, os.Environ
//   - goroutine-identity tricks: runtime.NumGoroutine, runtime.Stack
//
// Wall-clock reads that feed telemetry only (elapsed measurements,
// latency histograms) are legitimate; tag each such call site with a
// //vliwvet:allow detpure <reason> directive so the exemption is
// explicit, reviewed, and line-scoped.
package detpure

import (
	"go/ast"
	"go/types"
	"strings"

	"vliwmt/internal/analysis"
)

// DeterministicPackages designates the packages detpure (and detmap)
// police. Aggregation-side packages (sweep, resultstore) are included:
// their wall-clock telemetry sites carry explicit allow directives,
// which is the point — every nondeterministic read in the core is
// either absent or visibly justified.
var DeterministicPackages = map[string]bool{
	"vliwmt/internal/sim":         true,
	"vliwmt/internal/merge":       true,
	"vliwmt/internal/isa":         true,
	"vliwmt/internal/program":     true,
	"vliwmt/internal/cache":       true,
	"vliwmt/internal/refsim":      true,
	"vliwmt/internal/ir":          true,
	"vliwmt/internal/compiler":    true,
	"vliwmt/internal/workload":    true,
	"vliwmt/internal/wgen":        true,
	"vliwmt/internal/sweep":       true,
	"vliwmt/internal/resultstore": true,
	"vliwmt/internal/fabric":      true,
}

// randConstructors are the math/rand functions that build seeded,
// caller-owned generators rather than touching the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// forbidden maps package path -> function name -> diagnostic phrase.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
	"runtime": {
		"NumGoroutine": "goroutine-identity dependence",
		"Stack":        "goroutine-identity dependence",
	},
}

// Analyzer is the detpure analysis.
var Analyzer = &analysis.Analyzer{
	Name: "detpure",
	Doc:  "forbid wall clocks, the global RNG, environment reads and goroutine tricks in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !DeterministicPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if _, isPkg := pass.TypesInfo.Uses[x].(*types.PkgName); !isPkg {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			path, name := obj.Pkg().Path(), obj.Name()
			if strings.HasPrefix(path, "math/rand") && !randConstructors[name] {
				pass.Reportf(sel.Pos(),
					"global math/rand source (%s.%s) in deterministic package %s; use a seeded local generator",
					x.Name, name, pass.Pkg.Path())
				return true
			}
			if phrase, ok := forbidden[path][name]; ok {
				pass.Reportf(sel.Pos(),
					"%s (%s.%s) in deterministic package %s",
					phrase, path, name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
