// Package detpure_testdata exercises the detpure analyzer: it is
// loaded by the analysistest harness under a designated deterministic
// package path, so the wall-clock, RNG, environment and goroutine
// reads below must be flagged — except the explicitly allowed ones.
package detpure_testdata

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

// Elapsed reads the wall clock twice without justification.
func Elapsed() time.Duration {
	start := time.Now()      // want `wall-clock read \(time.Now\) in deterministic package`
	return time.Since(start) // want `wall-clock read \(time.Since\) in deterministic package`
}

// AllowedElapsed reads the wall clock for telemetry, with the
// line-scoped exemption the grammar provides.
func AllowedElapsed() time.Duration {
	start := time.Now() //vliwvet:allow detpure telemetry-only elapsed measurement
	//vliwvet:allow detpure telemetry-only elapsed measurement
	return time.Since(start)
}

// GlobalRand draws from the process-global source.
func GlobalRand(n int) int {
	return rand.Intn(n) // want `global math/rand source \(rand.Intn\)`
}

// SeededRand owns its generator; constructors are fine.
func SeededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Env reads the process environment.
func Env() string {
	return os.Getenv("HOME") // want `environment read \(os.Getenv\)`
}

// Goroutines depends on scheduler state.
func Goroutines() int {
	return runtime.NumGoroutine() // want `goroutine-identity dependence \(runtime.NumGoroutine\)`
}
