package vliwvet_test

import (
	"os"
	"path/filepath"
	"testing"

	"vliwmt/internal/analysis/vliwvet"
)

// TestModuleIsClean runs the full analyzer suite over the entire
// module and requires zero findings. This is the tier-1 enforcement
// of the lint gate: a change that introduces nondeterminism into a
// simulation package, an allocation into a //vliw:hotpath function,
// or an untagged DTO field fails `go test ./...` even before CI's
// dedicated lint job runs vliwvet directly.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis skipped in -short mode")
	}
	root := moduleRoot(t)
	findings, err := vliwvet.CheckModule(root, "./...")
	if err != nil {
		t.Fatalf("CheckModule: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
	if len(findings) > 0 {
		t.Fatalf("vliwvet reported %d finding(s); fix them or add a //vliwvet:allow <analyzer> <reason> waiver", len(findings))
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
