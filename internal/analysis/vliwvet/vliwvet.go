// Package vliwvet assembles the repository's analyzer suite. The
// individual analyzers live in sibling packages; this package fixes
// the set that `make lint`, CI and the self-test all agree on, so a
// new analyzer lands everywhere by being added to Suite exactly once.
package vliwvet

import (
	"vliwmt/internal/analysis"
	"vliwmt/internal/analysis/detmap"
	"vliwmt/internal/analysis/detpure"
	"vliwmt/internal/analysis/hotalloc"
	"vliwmt/internal/analysis/load"
	"vliwmt/internal/analysis/wiretag"
)

// Suite returns the full analyzer set in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detpure.Analyzer,
		detmap.Analyzer,
		hotalloc.Analyzer,
		wiretag.Analyzer,
	}
}

// CheckModule loads the packages the patterns match inside the module
// rooted at dir (all packages when none are given) and runs the full
// suite over them, returning findings in file/position order.
func CheckModule(dir string, patterns ...string) ([]analysis.Finding, error) {
	pkgs, err := load.Module(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, Suite())
}
