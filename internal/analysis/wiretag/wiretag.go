// Package wiretag enforces wire-format and telemetry hygiene:
//
//  1. Every exported field of a struct declared in the wire DTO
//     package (import path ending internal/api) must carry a json
//     tag — the wire format is hand-stabilised, so an untagged field
//     would silently ship under its Go name and drift the format.
//     Deprecated fields are not exempt: their tags must stay, since
//     old documents still carry them.
//  2. Metric names registered through internal/telemetry must be
//     compile-time constants matching ^[a-z][a-z0-9_]*$, and label
//     sets must be statically well-formed key="value" lists whose
//     keys match the same grammar. Label values may be dynamic
//     (per-route series), label keys may not — dashboards and
//     alerting key on them.
package wiretag

import (
	"go/ast"
	"go/constant"
	"reflect"
	"regexp"
	"strings"

	"vliwmt/internal/analysis"
)

// Analyzer is the wiretag analysis.
var Analyzer = &analysis.Analyzer{
	Name: "wiretag",
	Doc:  "require json tags on wire DTO fields and statically valid telemetry metric names and label sets",
	Run:  run,
}

// registrars maps telemetry constructor name -> index of its labels
// argument (-1 when the constructor takes no label set). Name is
// always argument 0.
var registrars = map[string]int{
	"NewCounter":          -1,
	"NewGauge":            -1,
	"NewHistogram":        -1,
	"NewLabeledCounter":   1,
	"NewLabeledGauge":     1,
	"NewLabeledHistogram": 1,
	"Counter":             1, // Registry methods
	"Gauge":               1,
	"Histogram":           1,
}

func run(pass *analysis.Pass) error {
	isAPI := strings.HasSuffix(pass.Pkg.Path(), "internal/api")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				if isAPI {
					if st, ok := n.Type.(*ast.StructType); ok {
						checkDTO(pass, n.Name.Name, st)
					}
				}
			case *ast.CallExpr:
				checkRegistration(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkDTO requires a json tag on every exported field.
func checkDTO(pass *analysis.Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded: promoted fields are checked at their declaration
		}
		for _, name := range field.Names {
			if !ast.IsExported(name.Name) {
				continue
			}
			var tag string
			if field.Tag != nil {
				tag = strings.Trim(field.Tag.Value, "`")
			}
			if v, ok := reflect.StructTag(tag).Lookup("json"); !ok || v == "" {
				pass.Reportf(name.Pos(),
					"exported DTO field %s.%s has no json tag; the wire format must not depend on Go field names",
					typeName, name.Name)
			}
		}
	}
}

// checkRegistration validates telemetry constructor calls.
func checkRegistration(pass *analysis.Pass, file *ast.File, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	labelsArg, ok := registrars[sel.Sel.Name]
	if !ok {
		return
	}
	fn := pass.TypesInfo.Uses[sel.Sel]
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/telemetry") {
		return
	}
	if fn.Pkg().Path() == pass.Pkg.Path() {
		return // telemetry's own forwarding wrappers pass parameters through
	}
	if len(call.Args) == 0 {
		return
	}

	// Metric name: compile-time constant matching the grammar.
	if name, ok := constString(pass, call.Args[0]); !ok {
		pass.Reportf(call.Args[0].Pos(),
			"telemetry metric name must be a compile-time constant string")
	} else if !analysis.MetricNameRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"telemetry metric name %q does not match %s", name, analysis.MetricNameRE)
	}

	// Label set: statically well-formed key="value" pairs.
	if labelsArg < 0 || labelsArg >= len(call.Args) {
		return
	}
	pattern, resolvable := flatten(pass, file, call.Args[labelsArg], 0)
	if !resolvable {
		pass.Reportf(call.Args[labelsArg].Pos(),
			"telemetry label set is not statically analyzable; build it from constant keys with dynamic values only")
		return
	}
	if !labelPatternRE.MatchString(pattern) {
		pass.Reportf(call.Args[labelsArg].Pos(),
			"telemetry label set %s is malformed; want comma-separated key=\"value\" pairs with keys matching %s (values may be dynamic)",
			strings.ReplaceAll(pattern, dynamic, "<dynamic>"), analysis.MetricNameRE)
	}
}

// dynamic is the placeholder flatten substitutes for non-constant
// sub-expressions of a label-set concatenation.
const dynamic = "\x00"

// labelPatternRE validates a flattened label set: zero or more
// key="value" pairs, where the dynamic placeholder may only appear
// inside the quoted value.
var labelPatternRE = regexp.MustCompile(
	`^$|^[a-z][a-z0-9_]*="(?:[^"\\\x00]|\x00)*"(?:,[a-z][a-z0-9_]*="(?:[^"\\\x00]|\x00)*")*$`)

// flatten renders a label-set expression to a string in which dynamic
// sub-expressions become the placeholder: constants render verbatim,
// concatenations concatenate, and a local identifier is resolved one
// level through its initialising assignment. depth bounds the ident
// chase.
func flatten(pass *analysis.Pass, file *ast.File, e ast.Expr, depth int) (string, bool) {
	if s, ok := constString(pass, e); ok {
		return s, true
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		l, lok := flatten(pass, file, e.X, depth)
		r, rok := flatten(pass, file, e.Y, depth)
		if !lok || !rok {
			return "", false
		}
		return l + r, true
	case *ast.ParenExpr:
		return flatten(pass, file, e.X, depth)
	case *ast.Ident:
		if depth >= 2 {
			return "", false
		}
		if init := initializer(pass, file, e); init != nil {
			return flatten(pass, file, init, depth+1)
		}
		// Unresolvable identifier: a dynamic value segment. Valid only
		// if it lands inside quotes, which the pattern regexp decides.
		return dynamic, true
	case *ast.CallExpr, *ast.SelectorExpr, *ast.IndexExpr:
		return dynamic, true
	}
	return "", false
}

// initializer finds the expression a local variable was last assigned
// from before use — a single-assignment heuristic: exactly one
// assignment in the file may define it, otherwise nil.
func initializer(pass *analysis.Pass, file *ast.File, id *ast.Ident) ast.Expr {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	var init ast.Expr
	count := 0
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			if pass.TypesInfo.Defs[lid] == obj || pass.TypesInfo.Uses[lid] == obj {
				init = as.Rhs[i]
				count++
			}
		}
		return true
	})
	if count != 1 {
		return nil
	}
	return init
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
