package wiretag_test

import (
	"testing"

	"vliwmt/internal/analysis/analysistest"
	"vliwmt/internal/analysis/wiretag"
)

// TestWiretag covers the DTO json-tag rule (tagged, untagged, waived),
// metric-name constancy and grammar, the constant-key/dynamic-value
// label idiom, the dynamic-key true positive and the //vliwvet:allow
// suppression path. The testdata import path ends internal/api so the
// DTO rule is active.
func TestWiretag(t *testing.T) {
	analysistest.Run(t, "testdata/src/wiretag", "vliwmt/internal/api", wiretag.Analyzer)
}
