// Package wiretag_testdata exercises the wiretag analyzer. It is
// presented to the analyzer under an import path ending internal/api,
// so the DTO json-tag rule applies, and it registers metrics through
// the real vliwmt/internal/telemetry package so constructor calls
// resolve exactly as they do in production code.
package wiretag_testdata

import "vliwmt/internal/telemetry"

// RunResult is a well-formed DTO: every exported field tagged.
type RunResult struct {
	Cycles  uint64  `json:"cycles"`
	IPC     float64 `json:"ipc"`
	scratch int     // unexported: not part of the wire format
}

// SweepRow is missing a tag on one exported field.
type SweepRow struct {
	Scheme string  `json:"scheme"`
	Speed  float64 // want `exported DTO field SweepRow.Speed has no json tag`
}

// LegacyRow keeps an untagged field under an explicit waiver.
type LegacyRow struct {
	//vliwvet:allow wiretag field predates the wire freeze and is never serialized
	Internal int
}

var (
	okPlain   = telemetry.NewCounter("sweep_runs_total", "runs completed")
	okLabeled = telemetry.NewLabeledCounter("http_requests_total", `route="sweep",code="200"`, "requests")

	badCase = telemetry.NewCounter("Sweep-Runs", "x")   // want `telemetry metric name "Sweep-Runs" does not match`
	badLead = telemetry.NewGauge("_queue_depth", "x")   // want `telemetry metric name "_queue_depth" does not match`
	badKey  = telemetry.NewLabeledCounter("hits_total", // good name
		`Route="sweep"`, "x") // want `telemetry label set Route="sweep" is malformed`
)

func dynamicName(suffix string) *telemetry.Counter {
	return telemetry.NewCounter("sweep_"+suffix, "x") // want `telemetry metric name must be a compile-time constant string`
}

// perRoute is the sanctioned dynamic-label idiom: constant keys,
// dynamic values. The analyzer resolves the labels variable through
// its single assignment.
func perRoute(route string) *telemetry.Counter {
	labels := `route="` + route + `"`
	return telemetry.NewLabeledCounter("requests_total", labels, "per-route requests")
}

// dynamicKey concatenates a runtime value into key position.
func dynamicKey(key string) *telemetry.Counter {
	labels := key + `="v"`
	return telemetry.NewLabeledCounter("requests_total", labels, "x") // want `telemetry label set <dynamic>="v" is malformed`
}

func allowedName() *telemetry.Counter {
	//vliwvet:allow wiretag experimental metric, renamed before the next release
	return telemetry.NewCounter("WIP", "placeholder")
}
