// Package detmap flags result-affecting iteration over maps in the
// deterministic core. Go randomises map iteration order on purpose;
// a range over a map whose body builds ordered state — appends to a
// slice, accumulates order-sensitive numeric state, or emits output —
// silently produces run-to-run different results, which is exactly
// how index-ordered aggregation breaks.
//
// Flagged loop bodies:
//
//   - appends to a slice declared outside the loop — unless that
//     slice is later passed to a sort function in the same function
//     (the collect-then-sort idiom is the sanctioned fix)
//   - compound assignment (+=, -=, *=, /=) into floating-point or
//     complex state declared outside the loop. Integer accumulation
//     is deliberately not flagged: int addition is commutative and
//     associative, so iteration order cannot change the sum, while
//     float rounding makes the same pattern order-sensitive.
//   - output emission: fmt printing and io-style Write/WriteString
//     calls
//
// The analyzer shares detpure's DeterministicPackages designation.
package detmap

import (
	"go/ast"
	"go/types"

	"vliwmt/internal/analysis"
	"vliwmt/internal/analysis/detpure"
)

// Analyzer is the detmap analysis.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "flag map iteration whose order can leak into results (slice writes, float accumulation, output)",
	Run:  run,
}

// sortFuncs are the callees that establish a deterministic order over
// a collected slice, clearing a slice-append finding.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func run(pass *analysis.Pass) error {
	if !detpure.DeterministicPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fd, rs)
		return true
	})
}

// checkMapRange inspects one range-over-map body for order leaks.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, fd, rs, n)
		case *ast.CallExpr:
			if emitsOutput(pass, n) {
				pass.Reportf(n.Pos(),
					"map iteration emits output in iteration order; sort the keys first")
			}
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	// x = append(x, ...) into a slice declared outside the loop.
	if as.Tok.String() == "=" || as.Tok.String() == ":=" {
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			obj := declaredOutside(pass, rs, as.Lhs[i])
			if obj == nil {
				continue
			}
			if sortedLater(pass, fd, rs, obj) {
				continue
			}
			pass.Reportf(as.Pos(),
				"map iteration appends to %s in iteration order; sort the keys (or %s) before relying on order",
				obj.Name(), obj.Name())
		}
		return
	}
	// Compound accumulation into float/complex state declared outside.
	switch as.Tok.String() {
	case "+=", "-=", "*=", "/=":
		obj := declaredOutside(pass, rs, as.Lhs[0])
		if obj == nil {
			return
		}
		if b, ok := obj.Type().Underlying().(*types.Basic); ok &&
			b.Info()&(types.IsFloat|types.IsComplex) != 0 {
			pass.Reportf(as.Pos(),
				"map iteration accumulates into %s %s in iteration order; float rounding makes the result order-sensitive",
				b.Name(), obj.Name())
		}
	}
}

// declaredOutside resolves an lvalue to a variable declared before the
// range statement (nil when the lvalue is not a plain identifier or is
// loop-local).
func declaredOutside(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr) types.Object {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil || obj.Pos() >= rs.Pos() {
		return nil
	}
	return obj
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedLater reports whether obj is passed to a sort function after
// the range statement, anywhere in the enclosing function.
func sortedLater(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := pass.TypesInfo.Uses[sel.Sel]
		if fn == nil || fn.Pkg() == nil || !sortFuncs[fn.Pkg().Path()][fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// emitsOutput reports whether the call prints or writes.
func emitsOutput(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn := pass.TypesInfo.Uses[sel.Sel]; fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	// io-style writers: any method named Write/WriteString/WriteByte.
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if _, isMethod := pass.TypesInfo.Selections[sel]; isMethod {
			return true
		}
	}
	return false
}
