package detmap_test

import (
	"testing"

	"vliwmt/internal/analysis/analysistest"
	"vliwmt/internal/analysis/detmap"
)

// TestDetmap covers the true positives (unsorted key collection, float
// accumulation, output emission), the collect-then-sort idiom, the
// int-accumulation non-finding, and the //vliwvet:allow suppression
// path.
func TestDetmap(t *testing.T) {
	analysistest.Run(t, "testdata/src/detmap", "vliwmt/internal/merge", detmap.Analyzer)
}
