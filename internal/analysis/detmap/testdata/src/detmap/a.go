// Package detmap_testdata exercises the detmap analyzer under a
// designated deterministic package path.
package detmap_testdata

import (
	"fmt"
	"io"
	"sort"
)

// UnsortedKeys leaks map order into a slice.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration appends to keys in iteration order`
	}
	return keys
}

// SortedKeys is the sanctioned collect-then-sort idiom: the append is
// cleared because keys is sorted before use.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FloatSum accumulates floats in iteration order.
func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `map iteration accumulates into float64 sum`
	}
	return sum
}

// IntSum is deliberately fine: integer addition is order-independent.
func IntSum(m map[string]int64) int64 {
	var sum int64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Print emits output in iteration order.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration emits output in iteration order`
	}
}

// WriteOut writes in iteration order.
func WriteOut(w io.Writer, m map[string]string) {
	for _, v := range m {
		w.Write([]byte(v)) // want `map iteration emits output in iteration order`
	}
}

// AllowedFloatSum documents an accepted order sensitivity with the
// suppression directive; no diagnostic must survive.
func AllowedFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //vliwvet:allow detmap tolerance-checked aggregate, order jitter below epsilon
	}
	return sum
}
