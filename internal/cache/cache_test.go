package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Size: 0, LineSize: 64, Ways: 4},
		{Size: 64 << 10, LineSize: 0, Ways: 4},
		{Size: 64 << 10, LineSize: 64, Ways: 0},
		{Size: 64 << 10, LineSize: 48, Ways: 4},   // line not power of two
		{Size: 100, LineSize: 64, Ways: 4},        // not divisible
		{Size: 3 * 64 * 4, LineSize: 64, Ways: 4}, // sets not power of two
		{Size: 64 << 10, LineSize: 64, Ways: 4, MissPenalty: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	if c.Access(0x1000, false) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000, false) {
		t.Error("second access missed")
	}
	// Same line, different word.
	if !c.Access(0x1004, false) {
		t.Error("same-line access missed")
	}
	// Different line.
	if c.Access(0x1040, false) {
		t.Error("next-line access hit")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v, want 4 accesses / 2 misses", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// Tiny cache: 2 ways, 2 sets, 64B lines => 256 bytes.
	cfg := Config{Size: 256, LineSize: 64, Ways: 2, MissPenalty: 20}
	c := mustNew(t, cfg)
	// Set 0 holds lines with (addr/64)%2 == 0: 0x000, 0x080, 0x100...
	c.Access(0x000, false)
	c.Access(0x080, false)
	c.Access(0x000, false) // touch 0x000: 0x080 becomes LRU
	c.Access(0x100, false) // evicts 0x080
	if !c.Contains(0x000) {
		t.Error("recently used line evicted")
	}
	if c.Contains(0x080) {
		t.Error("LRU line not evicted")
	}
	if !c.Contains(0x100) {
		t.Error("newly filled line absent")
	}
}

func TestWritebackCounting(t *testing.T) {
	cfg := Config{Size: 256, LineSize: 64, Ways: 2, MissPenalty: 20}
	c := mustNew(t, cfg)
	c.Access(0x000, true)  // dirty
	c.Access(0x080, false) // clean
	c.Access(0x100, false) // evicts dirty 0x000 -> writeback
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	// Flush writes back the remaining dirty lines (none dirty now).
	c.Flush()
	if c.Contains(0x080) || c.Contains(0x100) {
		t.Error("flush left lines resident")
	}
}

func TestDirtyFlushWriteback(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	c.Access(0x40, true)
	before := c.Stats.Writebacks
	c.Flush()
	if c.Stats.Writebacks != before+1 {
		t.Errorf("flush of dirty line recorded %d writebacks", c.Stats.Writebacks-before)
	}
}

func TestSteadyStateFitFootprint(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	// 32KB footprint in a 64KB cache: after one pass, no further misses.
	const footprint = 32 << 10
	for a := uint64(0); a < footprint; a += 64 {
		c.Access(a, false)
	}
	missesAfterWarmup := c.Stats.Misses
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < footprint; a += 64 {
			c.Access(a, false)
		}
	}
	if c.Stats.Misses != missesAfterWarmup {
		t.Errorf("fitting footprint missed in steady state: %d extra misses",
			c.Stats.Misses-missesAfterWarmup)
	}
}

func TestThrashingFootprint(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	// 1MB streaming footprint >> 64KB cache: every pass misses every line.
	const footprint = 1 << 20
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < footprint; a += 64 {
			c.Access(a, false)
		}
	}
	want := int64(2 * footprint / 64)
	if c.Stats.Misses != want {
		t.Errorf("streaming misses = %d, want %d", c.Stats.Misses, want)
	}
}

func TestAssociativityConflicts(t *testing.T) {
	// Direct-mapped cache: two lines mapping to the same set thrash.
	cfg := Config{Size: 128, LineSize: 64, Ways: 1, MissPenalty: 20}
	c := mustNew(t, cfg)
	for i := 0; i < 10; i++ {
		c.Access(0x000, false)
		c.Access(0x080, false) // same set (2 sets: bit 6 selects)
	}
	if c.Stats.Misses != 20 {
		t.Errorf("conflict misses = %d, want 20", c.Stats.Misses)
	}
	// 2-way cache of the same size holds both.
	cfg.Ways = 2
	cfg.Size = 128
	c2 := mustNew(t, cfg)
	for i := 0; i < 10; i++ {
		c2.Access(0x000, false)
		c2.Access(0x080, false)
	}
	if c2.Stats.Misses != 2 {
		t.Errorf("2-way misses = %d, want 2", c2.Stats.Misses)
	}
}

func TestStatsProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			c.Access(uint64(r.Intn(1<<20))&^3, r.Intn(4) == 0)
		}
		s := c.Stats
		return s.Misses <= s.Accesses && s.Writebacks <= s.Misses+1 && s.Accesses == 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate not 0")
	}
	s = Stats{Accesses: 10, Misses: 5}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %g", s.MissRate())
	}
}

func TestMissPenaltyAccessor(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	if c.MissPenalty() != 20 {
		t.Errorf("MissPenalty = %d", c.MissPenalty())
	}
	if c.Config().Size != 64<<10 {
		t.Errorf("Config().Size = %d", c.Config().Size)
	}
}
