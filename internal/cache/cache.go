// Package cache models the set-associative instruction and data caches of
// the simulated processor. The paper's configuration is 64KB, 4-way
// set-associative with a flat 20-cycle miss penalty (400MHz core, 50ns
// worst-case DRAM critical-word latency); hits never stall.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the line (block) size in bytes.
	LineSize int
	// Ways is the set associativity.
	Ways int
	// MissPenalty is the thread stall in cycles on a miss.
	MissPenalty int
}

// DefaultConfig returns the paper's cache configuration: 64KB, 4-way,
// 64-byte lines, 20-cycle miss penalty.
func DefaultConfig() Config {
	return Config{Size: 64 << 10, LineSize: 64, Ways: 4, MissPenalty: 20}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: size, line size and ways must be positive: %+v", c)
	case c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache: line size %d is not a power of two", c.LineSize)
	case c.Size%(c.LineSize*c.Ways) != 0:
		return fmt.Errorf("cache: size %d is not divisible by ways*line (%d)", c.Size, c.LineSize*c.Ways)
	case c.MissPenalty < 0:
		return fmt.Errorf("cache: negative miss penalty")
	}
	sets := c.Size / (c.LineSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// Stats accumulates access counters.
type Stats struct {
	Accesses   int64
	Misses     int64
	Writebacks int64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	used  uint64 // LRU timestamp
	valid bool
	dirty bool
}

// Cache is a single write-back, write-allocate, LRU set-associative cache.
// It is a timing model only: no data is stored.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	lineShift uint
	clock     uint64
	Stats     Stats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Size / (cfg.LineSize * cfg.Ways)
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways:cfg.Ways], backing[cfg.Ways:]
	}
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nsets - 1), lineShift: shift}, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access performs one read (write=false) or write (write=true) and reports
// whether it hit. Misses allocate the line, evicting the LRU way; evicting
// a dirty line counts a writeback.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.clock++
	c.Stats.Accesses++
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].used = c.clock
			if write {
				set[i].dirty = true
			}
			return true
		}
	}
	c.Stats.Misses++
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].used < set[victim].used {
				victim = i
			}
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.Stats.Writebacks++
	}
	set[victim] = line{tag: lineAddr, used: c.clock, valid: true, dirty: write}
	return false
}

// Contains reports whether addr's line is resident (no state change).
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// MissPenalty returns the configured miss stall in cycles.
func (c *Cache) MissPenalty() int { return c.cfg.MissPenalty }

// Flush invalidates all lines (keeping statistics), counting writebacks
// for dirty lines.
func (c *Cache) Flush() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid && c.sets[si][wi].dirty {
				c.Stats.Writebacks++
			}
			c.sets[si][wi] = line{}
		}
	}
}
