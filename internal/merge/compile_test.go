package merge

import (
	"math/rand"
	"testing"

	"vliwmt/internal/isa"
)

// TestCompileShapeDetection pins the evaluator each paper shape compiles
// to: cascades and flat parallel nodes fold, balanced trees need the
// stack machine.
func TestCompileShapeDetection(t *testing.T) {
	cases := []struct {
		scheme string
		ports  int
		want   evalKind
	}{
		{"3SSS", 4, evalFoldSMT},
		{"1S", 2, evalFoldSMT},
		{"3CCC", 4, evalFoldCSMT},
		{"C4", 4, evalFoldCSMT},
		{"C8", 8, evalFoldCSMT},
		{"2SC3", 4, evalFoldMixed},
		{"3SCC", 4, evalFoldMixed},
		{"2C3S", 4, evalFoldMixed},
		{"2SS", 4, evalStack},
		{"2CC", 4, evalStack},
		{"2CS", 4, evalStack},
		{"2SC", 4, evalStack},
	}
	for _, tc := range cases {
		tree := mustParse(t, tc.scheme, tc.ports)
		c := Compile(tree)
		if c.kind != tc.want {
			t.Errorf("%s: compiled to evaluator %d, want %d", tc.scheme, c.kind, tc.want)
		}
		if c.Name() != tree.Name() || c.Ports() != tree.Ports() || c.Tree() != tree {
			t.Errorf("%s: compiled metadata does not match tree", tc.scheme)
		}
	}
}

// TestCompileFoldOrder verifies the fold linearization visits leaves in
// the same priority order as the recursive walk, including permuted
// custom cascades.
func TestCompileFoldOrder(t *testing.T) {
	tree, err := ParseTreeExpr("C(S(T2,T0),T3,T1)")
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(tree)
	if c.kind != evalFoldMixed {
		t.Fatalf("permuted cascade compiled to evaluator %d, want fold", c.kind)
	}
	wantPorts := []uint8{2, 0, 3, 1}
	wantKinds := []Kind{SMT, SMT, CSMT, CSMT}
	for i, s := range c.steps {
		if s.port != wantPorts[i] || (i > 0 && s.kind != wantKinds[i]) {
			t.Fatalf("step %d = {port %d, %v}, want {port %d, %v}", i, s.port, s.kind, wantPorts[i], wantKinds[i])
		}
	}
}

// randomTree builds a random valid merge tree over ports 0..n-1 in a
// random permutation, with random node kinds, arities and nesting — the
// adversarial input set for the compiled-vs-reference differential.
func randomTree(r *rand.Rand, n int) *Tree {
	perm := r.Perm(n)
	var build func(ports []int) Input
	build = func(ports []int) Input {
		if len(ports) == 1 {
			return Leaf(ports[0])
		}
		// Split into 2..4 groups.
		groups := 2 + r.Intn(3)
		if groups > len(ports) {
			groups = len(ports)
		}
		cuts := append([]int{0}, sortedCuts(r, len(ports), groups)...)
		node := &Node{Kind: Kind(r.Intn(2)), Parallel: r.Intn(2) == 0}
		for i := 0; i < groups; i++ {
			node.Inputs = append(node.Inputs, build(ports[cuts[i]:cuts[i+1]]))
		}
		return Sub(node)
	}
	in := build(perm)
	if in.Node == nil {
		panic("unreachable: n >= 2")
	}
	tree, err := NewTree("random", in.Node, n)
	if err != nil {
		panic(err)
	}
	return tree
}

// sortedCuts picks groups-1 interior cut points plus the end, sorted,
// splitting a length-n slice into groups non-empty parts.
func sortedCuts(r *rand.Rand, n, groups int) []int {
	cuts := map[int]bool{}
	for len(cuts) < groups-1 {
		cuts[1+r.Intn(n-1)] = true
	}
	out := make([]int, 0, groups)
	for c := range cuts {
		out = append(out, c)
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return append(out, n)
}

// TestCompiledMatchesReferenceRandomTrees is the core differential: on
// random trees of 2..8 ports and random candidate sets, the compiled
// evaluator must reproduce the recursive reference selection exactly.
func TestCompiledMatchesReferenceRandomTrees(t *testing.T) {
	m := isa.Default()
	r := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(7)
		tree := randomTree(r, n)
		c := Compile(tree)
		for i := 0; i < 50; i++ {
			vals, valid := pack(randomCands(r, &m, n))
			ref := tree.Select(&m, vals, valid)
			fast := c.Select(&m, vals, valid)
			if ref != fast {
				t.Fatalf("tree %s: compiled %+v != reference %+v (valid %0*b)", tree, fast, ref, n, valid)
			}
		}
	}
}

// TestCompiledSelectZeroAllocs: selection must never touch the heap —
// the per-cycle contract the simulator's allocation-free core builds on.
func TestCompiledSelectZeroAllocs(t *testing.T) {
	m := isa.Default()
	r := rand.New(rand.NewSource(11))
	for _, name := range []string{"3SSS", "3CCC", "2SC3", "2SS", "C4"} {
		c := Compile(mustParse(t, name, 4))
		vals, valid := pack(randomCands(r, &m, 4))
		allocs := testing.AllocsPerRun(200, func() {
			c.Select(&m, vals, valid)
		})
		if allocs != 0 {
			t.Errorf("%s: Select allocates %.1f times per call, want 0", name, allocs)
		}
	}
}

// FuzzCompiledSelect cross-checks the compiled evaluator against the
// reference walk on fuzz-chosen tree expressions and candidate sets.
func FuzzCompiledSelect(f *testing.F) {
	f.Add("C(S(T0,T1),T2,T3)", uint64(1))
	f.Add("S(C(T1,T0),C(T3,T2))", uint64(7))
	f.Add("S(T0,C(T1,T2,S(T3,T4)),T5)", uint64(42))
	f.Fuzz(func(t *testing.T, expr string, seed uint64) {
		tree, err := ParseTreeExpr(expr)
		if err != nil {
			t.Skip()
		}
		m := isa.Default()
		r := rand.New(rand.NewSource(int64(seed)))
		c := Compile(tree)
		for i := 0; i < 20; i++ {
			vals, valid := pack(randomCands(r, &m, tree.Ports()))
			ref := tree.Select(&m, vals, valid)
			fast := c.Select(&m, vals, valid)
			if ref != fast {
				t.Fatalf("tree %s: compiled %+v != reference %+v", tree, fast, ref)
			}
		}
	})
}
