package merge

import "vliwmt/internal/isa"

// Selection is the outcome of one merge-stage cycle: which thread ports
// issue and the occupancy of the merged execution packet.
type Selection struct {
	Mask uint32
	Occ  isa.Occupancy
}

// Empty reports whether no port was selected.
func (s Selection) Empty() bool { return s.Mask == 0 }

// Count returns the number of selected ports.
func (s Selection) Count() int {
	n := 0
	for m := s.Mask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Has reports whether port p was selected.
func (s Selection) Has(p int) bool { return s.Mask&(1<<uint(p)) != 0 }

// Selector is the merge-stage policy: given the candidate instruction
// occupancy at each thread port (nil when the thread is stalled or absent),
// it picks the set of ports that issue this cycle.
//
// Implementations may keep state across cycles (e.g. block multithreading),
// so a Selector instance must not be shared between simulators.
type Selector interface {
	Name() string
	Ports() int
	Select(m *isa.Machine, cands []*isa.Occupancy) Selection
}

// Select implements the greedy priority-ordered merging of the scheme.
func (t *Tree) Select(m *isa.Machine, cands []*isa.Occupancy) Selection {
	return t.root.sel(m, cands)
}

func compatible(k Kind, a, b isa.Occupancy, m *isa.Machine) bool {
	if k == CSMT {
		return a.CompatCSMT(b)
	}
	return a.CompatSMT(b, m)
}

func (n *Node) sel(m *isa.Machine, cands []*isa.Occupancy) Selection {
	var acc Selection
	for _, in := range n.Inputs {
		var s Selection
		if in.Node != nil {
			s = in.Node.sel(m, cands)
		} else if c := cands[in.Port]; c != nil {
			s = Selection{Mask: 1 << uint(in.Port), Occ: *c}
		}
		if s.Empty() {
			continue
		}
		if acc.Empty() {
			acc = s
			continue
		}
		if compatible(n.Kind, acc.Occ, s.Occ, m) {
			acc.Mask |= s.Mask
			acc.Occ = acc.Occ.Union(s.Occ)
		}
		// Incompatible inputs are dropped whole: a merged sub-packet
		// cannot be split back into its threads (VLIW semantics).
	}
	return acc
}

// IMT is the interleaved multithreading baseline: exactly one thread issues
// per cycle, the highest-priority runnable one. Combined with the
// simulator's round-robin priority rotation this interleaves threads
// cycle by cycle, as in barrel processors.
type IMT struct {
	NumPorts int
}

// Name implements Selector.
func (s *IMT) Name() string { return "IMT" }

// Ports implements Selector.
func (s *IMT) Ports() int { return s.NumPorts }

// Select implements Selector.
func (s *IMT) Select(m *isa.Machine, cands []*isa.Occupancy) Selection {
	for p, c := range cands {
		if c != nil {
			return Selection{Mask: 1 << uint(p), Occ: *c}
		}
	}
	return Selection{}
}

// BMT is the block multithreading baseline: the current thread keeps
// issuing until it blocks (stall or end of stream), then the next runnable
// thread takes over.
type BMT struct {
	NumPorts int
	current  int
}

// Name implements Selector.
func (s *BMT) Name() string { return "BMT" }

// Ports implements Selector.
func (s *BMT) Ports() int { return s.NumPorts }

// Select implements Selector.
func (s *BMT) Select(m *isa.Machine, cands []*isa.Occupancy) Selection {
	if s.current < len(cands) && cands[s.current] != nil {
		return Selection{Mask: 1 << uint(s.current), Occ: *cands[s.current]}
	}
	for i := 1; i <= len(cands); i++ {
		p := (s.current + i) % len(cands)
		if cands[p] != nil {
			s.current = p
			return Selection{Mask: 1 << uint(p), Occ: *cands[p]}
		}
	}
	return Selection{}
}

// NewSelector builds a Selector by name — anything Resolve accepts: a
// paper scheme name, a registered custom scheme, a canonical tree
// expression, or the baselines "IMT" and "BMT". ports is the number of
// hardware thread ports; tree-backed schemes must match it exactly.
func NewSelector(name string, ports int) (Selector, error) {
	s, err := Resolve(name)
	if err != nil {
		return nil, err
	}
	return s.Selector(ports)
}
