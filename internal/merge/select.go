package merge

import (
	"math/bits"

	"vliwmt/internal/isa"
)

// Selection is the outcome of one merge-stage cycle: which thread ports
// issue and the occupancy of the merged execution packet.
type Selection struct {
	Mask uint32
	Occ  isa.Occupancy
}

// Empty reports whether no port was selected.
func (s Selection) Empty() bool { return s.Mask == 0 }

// Count returns the number of selected ports.
func (s Selection) Count() int { return bits.OnesCount32(s.Mask) }

// Has reports whether port p was selected.
func (s Selection) Has(p int) bool { return s.Mask&(1<<uint(p)) != 0 }

// Selector is the merge-stage policy: given the candidate instruction
// occupancy at each thread port, it picks the set of ports that issue
// this cycle. cands is a value slice indexed by port; entry p is
// meaningful only when bit p of valid is set (a clear bit means the
// thread is stalled or absent — the old nil-pointer convention). The
// value-slice + bitmask form keeps the per-cycle loop free of heap
// traffic and lets selectors test availability with one bit operation.
//
// Implementations may keep state across cycles (e.g. block
// multithreading, the compiled evaluator's scratch stack), so a Selector
// instance must not be shared between simulators. All implementations
// must be pure on empty input: Select with valid == 0 returns the empty
// Selection and mutates nothing — the simulator's stall fast-forward
// relies on this to skip all-stalled cycles without consulting the
// selector (see DESIGN.md).
type Selector interface {
	Name() string
	Ports() int
	Select(m *isa.Machine, cands []isa.Occupancy, valid uint32) Selection
}

// Select implements the greedy priority-ordered merging of the scheme by
// walking the tree recursively. It is the reference implementation: the
// refsim oracle and the differential tests run it against the compiled
// evaluator (Compile), which must select identically. Production paths
// get a *Compiled from Scheme.Selector instead.
func (t *Tree) Select(m *isa.Machine, cands []isa.Occupancy, valid uint32) Selection {
	return t.root.sel(m, cands, valid)
}

func compatible(k Kind, a, b isa.Occupancy, m *isa.Machine) bool {
	if k == CSMT {
		return a.CompatCSMT(b)
	}
	return a.CompatSMT(b, m)
}

func (n *Node) sel(m *isa.Machine, cands []isa.Occupancy, valid uint32) Selection {
	var acc Selection
	for _, in := range n.Inputs {
		var s Selection
		if in.Node != nil {
			s = in.Node.sel(m, cands, valid)
		} else if valid&(1<<uint(in.Port)) != 0 {
			s = Selection{Mask: 1 << uint(in.Port), Occ: cands[in.Port]}
		}
		if s.Empty() {
			continue
		}
		if acc.Empty() {
			acc = s
			continue
		}
		if compatible(n.Kind, acc.Occ, s.Occ, m) {
			acc.Mask |= s.Mask
			acc.Occ = acc.Occ.Union(s.Occ)
		}
		// Incompatible inputs are dropped whole: a merged sub-packet
		// cannot be split back into its threads (VLIW semantics).
	}
	return acc
}

// IMT is the interleaved multithreading baseline: exactly one thread issues
// per cycle, the highest-priority runnable one. Combined with the
// simulator's round-robin priority rotation this interleaves threads
// cycle by cycle, as in barrel processors.
type IMT struct {
	NumPorts int
}

// Name implements Selector.
func (s *IMT) Name() string { return "IMT" }

// Ports implements Selector.
func (s *IMT) Ports() int { return s.NumPorts }

// Select implements Selector.
func (s *IMT) Select(m *isa.Machine, cands []isa.Occupancy, valid uint32) Selection {
	if valid == 0 {
		return Selection{}
	}
	p := uint(bits.TrailingZeros32(valid))
	return Selection{Mask: 1 << p, Occ: cands[p]}
}

// BMT is the block multithreading baseline: the current thread keeps
// issuing until it blocks (stall or end of stream), then the next runnable
// thread takes over.
type BMT struct {
	NumPorts int
	current  int
}

// Name implements Selector.
func (s *BMT) Name() string { return "BMT" }

// Ports implements Selector.
func (s *BMT) Ports() int { return s.NumPorts }

// Select implements Selector.
func (s *BMT) Select(m *isa.Machine, cands []isa.Occupancy, valid uint32) Selection {
	if s.current < len(cands) && valid&(1<<uint(s.current)) != 0 {
		return Selection{Mask: 1 << uint(s.current), Occ: cands[s.current]}
	}
	for i := 1; i <= len(cands); i++ {
		p := (s.current + i) % len(cands)
		if valid&(1<<uint(p)) != 0 {
			s.current = p
			return Selection{Mask: 1 << uint(p), Occ: cands[p]}
		}
	}
	return Selection{}
}

// NewSelector builds a Selector by name — anything Resolve accepts: a
// paper scheme name, a registered custom scheme, a canonical tree
// expression, or the baselines "IMT" and "BMT". ports is the number of
// hardware thread ports; tree-backed schemes must match it exactly.
func NewSelector(name string, ports int) (Selector, error) {
	s, err := Resolve(name)
	if err != nil {
		return nil, err
	}
	return s.Selector(ports)
}
