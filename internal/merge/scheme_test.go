package merge

import (
	"strings"
	"testing"
)

func TestParsePaperSchemes(t *testing.T) {
	want := map[string]string{
		"C4":   "C4(T0,T1,T2,T3)",
		"3CCC": "C(C(C(T0,T1),T2),T3)",
		"2CC":  "C(C(T0,T1),C(T2,T3))",
		"1S":   "S(T0,T1)",
		"2SC3": "C3(S(T0,T1),T2,T3)",
		"3CSC": "C(S(C(T0,T1),T2),T3)",
		"2C3S": "S(C3(T0,T1,T2),T3)",
		"3CCS": "S(C(C(T0,T1),T2),T3)",
		"3SCC": "C(C(S(T0,T1),T2),T3)",
		"2CS":  "S(C(T0,T1),C(T2,T3))",
		"2SC":  "C(S(T0,T1),S(T2,T3))",
		"3SSC": "C(S(S(T0,T1),T2),T3)",
		"3SCS": "S(C(S(T0,T1),T2),T3)",
		"3CSS": "S(S(C(T0,T1),T2),T3)",
		"2SS":  "S(S(T0,T1),S(T2,T3))",
		"3SSS": "S(S(S(T0,T1),T2),T3)",
	}
	for _, name := range PaperSchemes4() {
		tree, err := Parse(name, PortsFor(name))
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
			continue
		}
		if tree.Name() != name {
			t.Errorf("tree name %q, want %q", tree.Name(), name)
		}
		if got := tree.String(); got != want[name] {
			t.Errorf("Parse(%q) = %s, want %s", name, got, want[name])
		}
		if tree.Ports() != PortsFor(name) {
			t.Errorf("Parse(%q).Ports() = %d, want %d", name, tree.Ports(), PortsFor(name))
		}
	}
}

func TestParseCoversAllSixteen(t *testing.T) {
	if got := len(PaperSchemes4()); got != 16 {
		t.Fatalf("PaperSchemes4 lists %d schemes, want 16", got)
	}
	seen := map[string]bool{}
	for _, n := range PaperSchemes4() {
		if seen[n] {
			t.Errorf("duplicate scheme %q", n)
		}
		seen[n] = true
	}
}

func TestParseGeneralizations(t *testing.T) {
	// 3-thread cascade.
	tree, err := Parse("2SC", 3)
	if err != nil {
		t.Fatalf("Parse(2SC, 3): %v", err)
	}
	if got := tree.String(); got != "C(S(T0,T1),T2)" {
		t.Errorf("Parse(2SC, 3) = %s", got)
	}
	// 8-thread SMT cascade.
	tree, err = Parse("7SSSSSSS", 8)
	if err != nil {
		t.Fatalf("Parse(7SSSSSSS, 8): %v", err)
	}
	if tree.Ports() != 8 {
		t.Errorf("8-thread cascade ports = %d", tree.Ports())
	}
	// 8-thread parallel CSMT.
	tree, err = Parse("C8", 8)
	if err != nil {
		t.Fatalf("Parse(C8, 8): %v", err)
	}
	if !strings.HasPrefix(tree.String(), "C8(") {
		t.Errorf("Parse(C8, 8) = %s", tree.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		ports int
	}{
		{"", 4},
		{"XSS", 4},
		{"3SS", 4},   // declares 3 levels, names 2
		{"3SSSS", 4}, // declares 3 levels, names 4
		{"3SSS", 5},  // wrong port count
		{"C4", 2},    // wrong port count
		{"CX", 4},    // bad arity
		{"2S3C", 4},  // parallel multi-input SMT not defined
		{"3S1C", 4},  // arity < 2
		{"2SC3", 5},  // wrong port count
		{"0S", 2},    // zero levels
		{"2CC", 5},   // neither cascade (3) nor balanced (4)
		{"C1", 1},    // parallel CSMT needs >= 2
		{"9SSSSSSSSS", 4},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.name, tc.ports); err == nil {
			t.Errorf("Parse(%q, %d) unexpectedly succeeded", tc.name, tc.ports)
		}
	}
}

func TestNewTreeValidation(t *testing.T) {
	// Port used twice.
	n := &Node{Kind: SMT, Inputs: []Input{Leaf(0), Leaf(0)}}
	if _, err := NewTree("bad", n, 2); err == nil {
		t.Error("duplicate port accepted")
	}
	// Port out of range.
	n = &Node{Kind: SMT, Inputs: []Input{Leaf(0), Leaf(5)}}
	if _, err := NewTree("bad", n, 2); err == nil {
		t.Error("out-of-range port accepted")
	}
	// Unused port.
	n = &Node{Kind: SMT, Inputs: []Input{Leaf(0), Leaf(1)}}
	if _, err := NewTree("bad", n, 3); err == nil {
		t.Error("unused port accepted")
	}
	// Single-input node.
	n = &Node{Kind: SMT, Inputs: []Input{Leaf(0)}}
	if _, err := NewTree("bad", n, 1); err == nil {
		t.Error("single-input node accepted")
	}
	// Nil subtree.
	n = &Node{Kind: SMT, Inputs: []Input{Sub(nil), Leaf(0)}}
	if _, err := NewTree("bad", n, 1); err == nil {
		t.Error("nil subtree accepted")
	}
}

func TestKindString(t *testing.T) {
	if SMT.String() != "SMT" || CSMT.String() != "CSMT" {
		t.Error("Kind.String mismatch")
	}
	if SMT.Letter() != "S" || CSMT.Letter() != "C" {
		t.Error("Kind.Letter mismatch")
	}
}

func TestPortsForInference(t *testing.T) {
	cases := map[string]int{
		"1S": 2, "1C": 2,
		"3SSS": 4, "3CCC": 4, "2SC3": 4, "2C3S": 4, "C4": 4,
		"2CC": 4, "2SS": 4, "2SC": 4, "2CS": 4, // balanced convention
		"C8": 8, "7SSSSSSS": 8, "7CCCCCCC": 8, "2SC7": 8, "4SC3C3C3": 8,
		"C2": 2, "5SSSSS": 6,
		"": 4, "XX": 4, // unparseable defaults
	}
	for name, want := range cases {
		if got := PortsFor(name); got != want {
			t.Errorf("PortsFor(%q) = %d, want %d", name, got, want)
		}
	}
	// Every inferred count must round-trip through Parse.
	for _, name := range []string{"C8", "7SSSSSSS", "7CCCCCCC", "2SC7", "4SC3C3C3"} {
		if _, err := Parse(name, PortsFor(name)); err != nil {
			t.Errorf("Parse(%s, PortsFor) failed: %v", name, err)
		}
	}
}
