package merge

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Scheme is a first-class merge scheme: a named merge tree, or one of
// the IMT/BMT baselines (which have no tree — they time-multiplex a
// single issuing thread). Scheme is an immutable value type; the zero
// Scheme means "unset" and resolves nothing.
type Scheme struct {
	name     string
	tree     *Tree
	baseline string // "IMT" or "BMT"; empty for tree-backed schemes
}

// FromTree wraps an explicit merge tree as a Scheme.
func FromTree(t *Tree) (Scheme, error) {
	if t == nil {
		return Scheme{}, fmt.Errorf("merge: nil tree")
	}
	return Scheme{name: t.Name(), tree: t}, nil
}

// IsZero reports whether the Scheme is unset.
func (s Scheme) IsZero() bool { return s.name == "" && s.tree == nil && s.baseline == "" }

// Name returns the scheme's name: a paper name, a registered name, a
// baseline name, or the canonical tree rendering for anonymous trees.
func (s Scheme) Name() string { return s.name }

// Tree returns the merge tree, or nil for the baselines and the zero
// Scheme.
func (s Scheme) Tree() *Tree { return s.tree }

// IsBaseline reports whether the scheme is the IMT or BMT baseline.
func (s Scheme) IsBaseline() bool { return s.baseline != "" }

// baselinePorts is the context count a baseline defaults to when the
// caller does not fix one: the paper's 4-thread machine.
const baselinePorts = 4

// Ports returns the number of hardware thread ports the scheme merges.
// The baselines run at any width and report the paper's default of 4;
// the zero Scheme reports 0.
func (s Scheme) Ports() int {
	switch {
	case s.tree != nil:
		return s.tree.Ports()
	case s.baseline != "":
		return baselinePorts
	}
	return 0
}

// String returns the scheme in a form Resolve accepts back: the
// canonical tree grammar for tree-backed schemes, the name for
// baselines.
func (s Scheme) String() string {
	if s.tree != nil {
		return s.tree.String()
	}
	return s.name
}

// WithName returns a copy of s labelled name; the merge behaviour is
// unchanged. It lets a custom name travel with its tree (e.g. across
// the wire). Baselines and the zero Scheme are returned unchanged.
func (s Scheme) WithName(name string) Scheme {
	if name == "" || s.tree == nil {
		return s
	}
	return Scheme{name: name, tree: &Tree{name: name, root: s.tree.root, ports: s.tree.ports}}
}

// Selector builds a Selector for ports hardware thread ports.
// Tree-backed schemes require ports to match the tree (0 accepts the
// tree's own count); the baselines adapt to any positive width. Every
// call returns a fresh instance, safe to hand to one simulator: the
// baselines because BMT keeps cross-cycle state, tree-backed schemes
// because the compiled evaluator (Compile) owns a per-instance scratch
// buffer. The compiled evaluator selects bit-identically to the tree's
// recursive reference walk; ReferenceSelector exposes the latter for
// differential testing.
func (s Scheme) Selector(ports int) (Selector, error) {
	sel, err := s.ReferenceSelector(ports)
	if err != nil {
		return nil, err
	}
	if t, ok := sel.(*Tree); ok {
		return Compile(t), nil
	}
	return sel, nil
}

// ReferenceSelector builds the naive reference Selector for the scheme:
// the recursive tree walk for tree-backed schemes, the plain baselines
// otherwise. It validates exactly like Selector. The refsim oracle and
// the differential tests use it; production paths should use Selector,
// which returns the compiled evaluator instead.
func (s Scheme) ReferenceSelector(ports int) (Selector, error) {
	switch s.baseline {
	case "IMT":
		if ports < 1 {
			return nil, fmt.Errorf("merge: IMT needs at least 1 port, got %d", ports)
		}
		return &IMT{NumPorts: ports}, nil
	case "BMT":
		if ports < 1 {
			return nil, fmt.Errorf("merge: BMT needs at least 1 port, got %d", ports)
		}
		return &BMT{NumPorts: ports}, nil
	}
	if s.tree == nil {
		return nil, fmt.Errorf("merge: no scheme set")
	}
	if ports != 0 && ports != s.tree.Ports() {
		return nil, fmt.Errorf("merge: scheme %s merges %d threads, machine has %d ports", s.name, s.tree.Ports(), ports)
	}
	return s.tree, nil
}

// Describe returns a one-line human description of the scheme's
// structure: its family (cascade, balanced tree, parallel node, custom
// tree), merge kinds and thread count.
func (s Scheme) Describe() string {
	switch {
	case s.IsZero():
		return "no merging (single thread)"
	case s.baseline == "IMT":
		return "interleaved multithreading baseline: one thread issues per cycle"
	case s.baseline == "BMT":
		return "block multithreading baseline: the running thread issues until it blocks"
	}
	t := s.tree
	root := t.root
	if root.Parallel && allLeaves(root) {
		return fmt.Sprintf("single-level parallel %s node merging %d threads at once", root.Kind, t.Ports())
	}
	if levels, ok := cascadeLevels(root); ok {
		if len(levels) == 1 {
			return fmt.Sprintf("single %s node merging %d threads", levels[0], t.Ports())
		}
		return fmt.Sprintf("%d-level cascade (%s) merging %d threads", len(levels), strings.Join(levels, ", "), t.Ports())
	}
	if group, ok := balancedKinds(root); ok {
		return fmt.Sprintf("balanced tree merging %d threads: %s groups under a %s root", t.Ports(), group, root.Kind)
	}
	return fmt.Sprintf("custom merge tree over %d threads, depth %d", t.Ports(), nodeDepth(root))
}

// cascadeLevels recognises a left-deep cascade (only the first input of
// each node may be a subtree) and describes its levels root-last, i.e.
// in paper-name order.
func cascadeLevels(n *Node) ([]string, bool) {
	var levels []string
	for {
		for _, in := range n.Inputs[1:] {
			if in.Node != nil {
				return nil, false
			}
		}
		lv := n.Kind.String()
		if n.Parallel {
			lv = fmt.Sprintf("parallel %s x%d", n.Kind, len(n.Inputs))
		}
		levels = append([]string{lv}, levels...)
		first := n.Inputs[0]
		if first.Node == nil {
			return levels, true
		}
		n = first.Node
	}
}

func allLeaves(n *Node) bool {
	for _, in := range n.Inputs {
		if in.Node != nil {
			return false
		}
	}
	return true
}

// balancedKinds recognises a two-level tree whose subtrees are flat
// groups of one common kind.
func balancedKinds(n *Node) (Kind, bool) {
	if len(n.Inputs) < 2 || n.Parallel {
		return 0, false
	}
	var group Kind
	for i, in := range n.Inputs {
		if in.Node == nil || !allLeaves(in.Node) {
			return 0, false
		}
		if i == 0 {
			group = in.Node.Kind
		} else if in.Node.Kind != group {
			return 0, false
		}
	}
	return group, true
}

func nodeDepth(n *Node) int {
	d := 0
	for _, in := range n.Inputs {
		if in.Node != nil {
			if sd := nodeDepth(in.Node); sd > d {
				d = sd
			}
		}
	}
	return d + 1
}

// The process-wide scheme registry. Registered names resolve anywhere
// a scheme-name string is accepted: Resolve, NewSelector, Ports,
// sweep.Job.Validate, sim.Config and the CLIs.
var (
	regMu    sync.RWMutex
	registry = map[string]Scheme{}
)

// Register makes a custom tree-backed scheme resolvable by name
// process-wide. Names that collide with the built-in grammar — the
// IMT/BMT baselines, anything that parses as a paper scheme name, or
// tree expressions — are rejected so registration can never shadow a
// built-in. Re-registering a name replaces the previous scheme.
func Register(name string, s Scheme) error {
	if name == "" {
		return fmt.Errorf("merge: register: empty scheme name")
	}
	if s.Tree() == nil {
		return fmt.Errorf("merge: register %q: only tree-backed schemes can be registered", name)
	}
	if name == "IMT" || name == "BMT" {
		return fmt.Errorf("merge: register %q: name collides with a baseline", name)
	}
	if IsTreeExpr(name) {
		return fmt.Errorf("merge: register %q: name must not be a tree expression", name)
	}
	if _, err := parseName(name); err == nil {
		return fmt.Errorf("merge: register %q: name collides with a paper scheme name", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = s.WithName(name)
	return nil
}

// Unregister removes a registered scheme; unknown names are a no-op.
func Unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, name)
}

// Lookup returns the scheme registered under name.
func Lookup(name string) (Scheme, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Registered returns every registered scheme, sorted by name.
func Registered() []Scheme {
	regMu.RLock()
	out := make([]Scheme, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Resolve turns a scheme-name string into a Scheme. It accepts, in
// order: the IMT/BMT baselines, names registered with Register, tree
// expressions in the canonical Tree.String grammar
// ("C(S(T0,T1),T2,T3)"), and the paper's scheme names ("3SSS", "2SC3",
// "C4", ...). Unknown names are an error — nothing defaults silently.
func Resolve(name string) (Scheme, error) {
	if name == "" {
		return Scheme{}, fmt.Errorf("merge: empty scheme name")
	}
	if name == "IMT" || name == "BMT" {
		return Scheme{name: name, baseline: name}, nil
	}
	if s, ok := Lookup(name); ok {
		return s, nil
	}
	if IsTreeExpr(name) {
		t, err := ParseTreeExpr(name)
		if err != nil {
			return Scheme{}, err
		}
		return FromTree(t)
	}
	t, err := parseName(name)
	if err != nil {
		return Scheme{}, err
	}
	return FromTree(t)
}

// Ports returns the number of hardware thread ports the named scheme
// merges, resolving the name exactly like Resolve (so registered names
// and tree expressions work, and the baselines report the paper's
// 4-thread default). Unknown names are an error.
func Ports(name string) (int, error) {
	s, err := Resolve(name)
	if err != nil {
		return 0, err
	}
	return s.Ports(), nil
}
