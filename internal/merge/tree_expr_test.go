package merge

import (
	"strings"
	"testing"
)

func TestParseTreeExprRoundTrip(t *testing.T) {
	// Every paper scheme's canonical rendering must re-parse to an
	// equivalent tree.
	for _, name := range PaperSchemes4() {
		tree, err := Parse(name, PortsFor(name))
		if err != nil {
			t.Fatalf("Parse(%s): %v", name, err)
		}
		back, err := ParseTreeExpr(tree.String())
		if err != nil {
			t.Errorf("ParseTreeExpr(%q): %v", tree.String(), err)
			continue
		}
		if back.String() != tree.String() {
			t.Errorf("round trip %s: %q -> %q", name, tree.String(), back.String())
		}
		if back.Ports() != tree.Ports() {
			t.Errorf("round trip %s: ports %d -> %d", name, tree.Ports(), back.Ports())
		}
	}
}

func TestParseTreeExprCustom(t *testing.T) {
	cases := map[string]string{
		"S(C(T0,T1,T2),T3)":           "S(C(T0,T1,T2),T3)",
		" S( C( T0 ,T1, T2) , T3 ) ":  "S(C(T0,T1,T2),T3)", // whitespace normalised
		"C3(S(T0,T1),S(T2,T3),T4)":    "C3(S(T0,T1),S(T2,T3),T4)",
		"C(S(T0,T1),S(T2,T3))":        "C(S(T0,T1),S(T2,T3))",
		"S(T1,T0)":                    "S(T1,T0)", // priority order preserved
		"C2(C(T0,T1),C2(T2,T3))":      "C2(C(T0,T1),C2(T2,T3))",
		"C8(T0,T1,T2,T3,T4,T5,T6,T7)": "C8(T0,T1,T2,T3,T4,T5,T6,T7)",
	}
	for expr, want := range cases {
		tree, err := ParseTreeExpr(expr)
		if err != nil {
			t.Errorf("ParseTreeExpr(%q): %v", expr, err)
			continue
		}
		if tree.String() != want {
			t.Errorf("ParseTreeExpr(%q) = %q, want %q", expr, tree.String(), want)
		}
		if tree.Name() != want {
			t.Errorf("ParseTreeExpr(%q).Name() = %q, want canonical form", expr, tree.Name())
		}
	}
}

func TestParseTreeExprErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"T0",                  // bare leaf, no node
		"S(T0)",               // single input
		"S(T0,T1",             // unclosed
		"S(T0,T1))",           // trailing input
		"X(T0,T1)",            // unknown kind
		"S(T0,T0)",            // duplicate port
		"S(T0,T2)",            // gap: port 1 unused
		"S2(T0,T1)",           // parallel SMT not defined
		"C3(T0,T1)",           // arity/input mismatch
		"C1(T0)",              // arity too small
		"S(T0,)",              // missing input
		"S(,T1)",              // missing input
		"S(T,T1)",             // missing port number
		"S(T0,T999999999999)", // absurd port
		"C(T0,T1,T2,T3,T4,T5,T6,T7,T8,T9,T10,T11,T12,T13,T14,T15,T16,T17,T18,T19,T20,T21,T22,T23,T24,T25,T26,T27,T28,T29,T30,T31,T32)", // > MaxPorts
	}
	for _, expr := range cases {
		if tree, err := ParseTreeExpr(expr); err == nil {
			t.Errorf("ParseTreeExpr(%q) unexpectedly succeeded: %s", expr, tree.String())
		}
	}
}

func TestTreeFromNode(t *testing.T) {
	root := &Node{Kind: SMT, Inputs: []Input{
		Sub(&Node{Kind: CSMT, Inputs: []Input{Leaf(0), Leaf(1), Leaf(2)}}),
		Leaf(3),
	}}
	tree, err := TreeFromNode("", root)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Ports() != 4 {
		t.Errorf("ports = %d, want 4", tree.Ports())
	}
	if tree.Name() != "S(C(T0,T1,T2),T3)" {
		t.Errorf("derived name = %q", tree.Name())
	}
	named, err := TreeFromNode("asym4", root)
	if err != nil {
		t.Fatal(err)
	}
	if named.Name() != "asym4" {
		t.Errorf("explicit name = %q", named.Name())
	}
}

// FuzzParseTreeExpr checks the parser's safety and normalisation
// invariants on arbitrary inputs: it must never panic, and any
// accepted expression must re-render and re-parse to a fixed point.
func FuzzParseTreeExpr(f *testing.F) {
	for _, name := range PaperSchemes4() {
		if tree, err := Parse(name, PortsFor(name)); err == nil {
			f.Add(tree.String())
		}
	}
	f.Add("S(C(T0,T1,T2),T3)")
	f.Add("C3(S(T0,T1),S(T2,T3),T4)")
	f.Add(" S( T1 , T0 ) ")
	f.Add("S(T0,T1")
	f.Add("C99(T0,T1)")
	f.Add("T0")
	f.Add("S((")
	f.Add(strings.Repeat("S(", 100))
	f.Fuzz(func(t *testing.T, expr string) {
		tree, err := ParseTreeExpr(expr)
		if err != nil {
			return
		}
		canon := tree.String()
		back, err := ParseTreeExpr(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q rejected: %v", canon, expr, err)
		}
		if back.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, back.String())
		}
		if tree.Ports() < 2 || tree.Ports() > MaxPorts {
			t.Fatalf("accepted tree with %d ports", tree.Ports())
		}
	})
}
