// Package merge implements the thread merging schemes that are the paper's
// core contribution: operation-level (SMT) and cluster-level (CSMT) merge
// control blocks composed into cascades, balanced trees and parallel
// multi-input nodes.
//
// A scheme is a tree whose leaves are hardware thread ports and whose
// internal nodes merge their inputs in priority order. Merging is
// all-or-nothing per input: once a group of threads has been merged into a
// packet, a later node either accepts the whole packet or rejects it — the
// restriction the paper calls out for balanced schemes, where a merged
// (T2,T3) packet may fail to combine with (T0,T1) even though T2 alone
// would have fit.
//
// Serial and parallel implementations of a node are functionally
// equivalent (the parallel form checks all candidate subsets at once but
// selects the same greedy, priority-ordered subset); they differ only in
// hardware cost, which internal/logic and internal/cost model.
package merge

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the merge type of a node: operation-level or cluster-level.
type Kind uint8

const (
	// SMT merges at operation level, rerouting operations between slots.
	SMT Kind = iota
	// CSMT merges at cluster level: inputs must use disjoint clusters.
	CSMT
)

func (k Kind) String() string {
	if k == SMT {
		return "SMT"
	}
	return "CSMT"
}

// Letter returns the scheme-name letter for the kind ("S" or "C").
func (k Kind) Letter() string {
	if k == SMT {
		return "S"
	}
	return "C"
}

// Input is one ordered input of a merge node: either a leaf thread port
// (Node == nil) or a subtree.
type Input struct {
	Port int
	Node *Node
}

// Leaf returns a leaf input for thread port p.
func Leaf(p int) Input { return Input{Port: p} }

// Sub returns a subtree input.
func Sub(n *Node) Input { return Input{Port: -1, Node: n} }

// Node is one merge control block. Inputs are merged greedily in order:
// the first available input becomes the base packet and each later input
// joins it when compatible under the node's Kind, otherwise the whole
// input is dropped for this cycle.
type Node struct {
	Kind Kind
	// Parallel marks a parallel hardware implementation (all subset checks
	// at once). Selection behaviour is identical to the serial cascade;
	// only the hardware cost differs.
	Parallel bool
	Inputs   []Input
}

// Tree is a complete merging scheme for a fixed number of thread ports.
type Tree struct {
	name  string
	root  *Node
	ports int
}

// Name returns the scheme name (e.g. "2SC3").
func (t *Tree) Name() string { return t.name }

// Ports returns the number of hardware thread ports the scheme merges.
func (t *Tree) Ports() int { return t.ports }

// Root returns the root merge node (used by the cost model).
func (t *Tree) Root() *Node { return t.root }

// MaxPorts bounds the number of thread ports a scheme may merge: the
// selection mask is a uint32, so 32 is a hard hardware-model limit.
const MaxPorts = 32

// NewTree builds a scheme from an explicit node tree, validating that leaf
// ports 0..ports-1 each appear exactly once.
func NewTree(name string, root *Node, ports int) (*Tree, error) {
	if ports < 2 || ports > MaxPorts {
		return nil, fmt.Errorf("merge: scheme %s merges %d threads, want 2..%d", name, ports, MaxPorts)
	}
	seen := make([]bool, ports)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return fmt.Errorf("merge: nil node in scheme %s", name)
		}
		if len(n.Inputs) < 2 {
			return fmt.Errorf("merge: node with %d inputs in scheme %s", len(n.Inputs), name)
		}
		for _, in := range n.Inputs {
			if in.Node != nil {
				if err := walk(in.Node); err != nil {
					return err
				}
				continue
			}
			if in.Port < 0 || in.Port >= ports {
				return fmt.Errorf("merge: port %d out of range in scheme %s", in.Port, name)
			}
			if seen[in.Port] {
				return fmt.Errorf("merge: port %d used twice in scheme %s", in.Port, name)
			}
			seen[in.Port] = true
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	for p, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("merge: port %d unused in scheme %s", p, name)
		}
	}
	return &Tree{name: name, root: root, ports: ports}, nil
}

// Cascade builds the serial left-deep scheme merging len(kinds)+1 threads:
// level i merges the accumulated packet with thread port i+1 using kinds[i].
// This is the paper's 3XYZ family ("3SSS", "3CCC", "3SCC", ...).
func Cascade(name string, kinds ...Kind) (*Tree, error) {
	if len(kinds) == 0 {
		return nil, fmt.Errorf("merge: cascade needs at least one level")
	}
	node := &Node{Kind: kinds[0], Inputs: []Input{Leaf(0), Leaf(1)}}
	for i := 1; i < len(kinds); i++ {
		node = &Node{Kind: kinds[i], Inputs: []Input{Sub(node), Leaf(i + 1)}}
	}
	return NewTree(name, node, len(kinds)+1)
}

// Balanced builds the paper's two-level tree scheme for four threads:
// groups (T0,T1) and (T2,T3) merge independently with the group kind and
// the two results merge with the root kind ("2CC", "2CS", "2SC", "2SS").
func Balanced(name string, group, root Kind) (*Tree, error) {
	g1 := &Node{Kind: group, Inputs: []Input{Leaf(0), Leaf(1)}}
	g2 := &Node{Kind: group, Inputs: []Input{Leaf(2), Leaf(3)}}
	return NewTree(name, &Node{Kind: root, Inputs: []Input{Sub(g1), Sub(g2)}}, 4)
}

// ParallelCSMT builds the single-level parallel CSMT scheme merging n
// threads at once (the paper's C4 for n = 4).
func ParallelCSMT(name string, n int) (*Tree, error) {
	if n < 2 {
		return nil, fmt.Errorf("merge: parallel CSMT needs at least 2 threads, got %d", n)
	}
	node := &Node{Kind: CSMT, Parallel: true}
	for p := 0; p < n; p++ {
		node.Inputs = append(node.Inputs, Leaf(p))
	}
	return NewTree(name, node, n)
}

// level describes one parsed cascade level: its kind and, for parallel
// multi-input CSMT levels like the "C3" in "2SC3", the node arity.
type level struct {
	kind  Kind
	arity int // 0 for a plain serial two-input level
}

func parseLevels(s string) ([]level, error) {
	var levels []level
	for i := 0; i < len(s); {
		var k Kind
		switch s[i] {
		case 'S':
			k = SMT
		case 'C':
			k = CSMT
		default:
			return nil, fmt.Errorf("merge: unexpected %q in scheme name", s[i])
		}
		i++
		arity := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			arity = arity*10 + int(s[i]-'0')
			i++
		}
		if arity != 0 {
			if k != CSMT {
				return nil, fmt.Errorf("merge: parallel multi-input merging is only defined for CSMT")
			}
			if arity < 2 {
				return nil, fmt.Errorf("merge: parallel level arity %d too small", arity)
			}
		}
		levels = append(levels, level{kind: k, arity: arity})
	}
	return levels, nil
}

// Parse builds the scheme named name for n thread ports. It understands the
// paper's naming:
//
//   - "Cn" (e.g. "C4"): one parallel CSMT node merging all n threads.
//   - "1S"/"1C": a single two-input node (n = 2).
//   - "kL1L2...Lk" cascades ("3SSS", "3SCC", "2SC3", "2C3S", ...): k levels,
//     each letter optionally followed by a digit marking a parallel
//     multi-input CSMT level; the levels consume thread ports left to right.
//   - "2XY" with plain letters and n = 4 ("2CC", "2CS", "2SC", "2SS"): the
//     balanced tree whose groups (T0,T1), (T2,T3) merge with X and whose
//     root merges with Y.
func Parse(name string, n int) (*Tree, error) {
	if arity, ok, err := parallelArity(name); ok {
		if err != nil {
			return nil, err
		}
		if arity != n {
			return nil, fmt.Errorf("merge: scheme %s merges %d threads, machine has %d ports", name, arity, n)
		}
		return ParallelCSMT(name, n)
	}
	levels, ports, plain, err := parseCounted(name)
	if err != nil {
		return nil, err
	}
	// Port consumption under the cascade interpretation.
	if ports == n {
		return buildCascade(name, levels)
	}
	if len(levels) == 2 && plain && n == 4 {
		return Balanced(name, levels[0].kind, levels[1].kind)
	}
	return nil, fmt.Errorf("merge: scheme %s merges %d threads, machine has %d ports", name, ports, n)
}

// parallelArity recognises the "C<n>" parallel scheme form. ok
// reports whether the name is of that form at all; err reports a
// malformed or out-of-range arity.
func parallelArity(name string) (arity int, ok bool, err error) {
	if len(name) < 2 || name[0] != 'C' || name[1] < '0' || name[1] > '9' {
		return 0, false, nil
	}
	arity, aerr := strconv.Atoi(name[1:])
	if aerr != nil || arity < 2 || arity > MaxPorts {
		return 0, true, fmt.Errorf("merge: bad parallel scheme name %q", name)
	}
	return arity, true, nil
}

// parseCounted parses the "<k><levels>" cascade/balanced name form
// shared by Parse and the name resolver: the level count, the levels,
// and the port consumption under the cascade interpretation. plain
// reports that every level is a serial two-input one — the
// precondition for the paper's balanced-tree naming.
func parseCounted(name string) (levels []level, ports int, plain bool, err error) {
	if name == "" {
		return nil, 0, false, fmt.Errorf("merge: empty scheme name")
	}
	if name[0] < '1' || name[0] > '9' {
		return nil, 0, false, fmt.Errorf("merge: scheme name %q must start with a level count or C<n>", name)
	}
	k := int(name[0] - '0')
	if levels, err = parseLevels(name[1:]); err != nil {
		return nil, 0, false, err
	}
	if len(levels) != k {
		return nil, 0, false, fmt.Errorf("merge: scheme %s declares %d levels but names %d", name, k, len(levels))
	}
	ports, plain = levelsPorts(levels)
	return levels, ports, plain, nil
}

// parseName builds the scheme a paper name canonically denotes,
// deriving the port count from the name itself: "Cn" merges n
// threads, a cascade merges one thread plus one (or arity-1) per
// level, and plain two-level names denote the balanced 4-thread
// trees.
func parseName(name string) (*Tree, error) {
	if arity, ok, err := parallelArity(name); ok {
		if err != nil {
			return nil, err
		}
		return ParallelCSMT(name, arity)
	}
	levels, _, plain, err := parseCounted(name)
	if err != nil {
		return nil, err
	}
	if len(levels) == 2 && plain {
		// The paper's balanced-tree naming (2CC, 2CS, 2SC, 2SS).
		return Balanced(name, levels[0].kind, levels[1].kind)
	}
	return buildCascade(name, levels)
}

// levelsPorts returns the thread-port count a cascade of the given
// levels consumes — one port plus one per serial level (or arity-1 per
// parallel level) — and whether every level is a plain serial one (the
// precondition for the paper's balanced-tree naming).
func levelsPorts(levels []level) (ports int, plain bool) {
	ports, plain = 1, true
	for _, lv := range levels {
		if lv.arity == 0 {
			ports++
			continue
		}
		plain = false
		ports += lv.arity - 1
	}
	return ports, plain
}

func buildCascade(name string, levels []level) (*Tree, error) {
	var node *Node
	next := 0
	takeLeaf := func() Input { in := Leaf(next); next++; return in }
	for i, lv := range levels {
		n := &Node{Kind: lv.kind, Parallel: lv.arity != 0}
		if i == 0 {
			n.Inputs = append(n.Inputs, takeLeaf())
		} else {
			n.Inputs = append(n.Inputs, Sub(node))
		}
		extra := 1
		if lv.arity != 0 {
			extra = lv.arity - 1
		}
		for j := 0; j < extra; j++ {
			n.Inputs = append(n.Inputs, takeLeaf())
		}
		node = n
	}
	return NewTree(name, node, next)
}

// PaperSchemes4 lists, in the paper's Figure 9 order (sorted by transistor
// count), the sixteen schemes the paper evaluates for a 4-thread machine.
// "1S" is the 2-thread SMT reference.
func PaperSchemes4() []string {
	return []string{
		"C4", "3CCC", "2CC", "1S", "2SC3", "3CSC", "2C3S", "3CCS",
		"3SCC", "2CS", "2SC", "3SSC", "3SCS", "3CSS", "2SS", "3SSS",
	}
}

// PortsFor returns the number of thread ports the named scheme merges,
// resolving the name like Resolve (registered names and tree
// expressions included), and 4 when the name cannot be resolved.
//
// Deprecated: PortsFor cannot distinguish "merges 4 threads" from
// "unknown name". Use Ports, which reports an error instead of
// defaulting; PortsFor is kept because vliwmt.SchemeThreads promises
// its forgiving behaviour.
func PortsFor(name string) int {
	n, err := Ports(name)
	if err != nil {
		return 4
	}
	return n
}

// String renders the tree structure in the canonical grammar
// ParseTreeExpr accepts, e.g. "C(S(T0,T1),T2,T3)".
func (t *Tree) String() string { return renderNode(t.root) }

func renderNode(root *Node) string {
	var b strings.Builder
	var walk func(n *Node)
	walk = func(n *Node) {
		b.WriteString(n.Kind.Letter())
		if n.Parallel {
			fmt.Fprintf(&b, "%d", len(n.Inputs))
		}
		b.WriteByte('(')
		for i, in := range n.Inputs {
			if i > 0 {
				b.WriteByte(',')
			}
			if in.Node != nil {
				walk(in.Node)
			} else {
				fmt.Fprintf(&b, "T%d", in.Port)
			}
		}
		b.WriteByte(')')
	}
	walk(root)
	return b.String()
}
