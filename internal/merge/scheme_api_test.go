package merge

import (
	"strings"
	"testing"
)

// TestResolveRoundTripProperty is the scheme round-trip property: for
// every paper scheme plus the IMT/BMT baselines, Resolve(name) agrees
// with PortsFor, and a tree-backed scheme's canonical rendering
// re-resolves to an equivalent tree.
func TestResolveRoundTripProperty(t *testing.T) {
	names := append(PaperSchemes4(), "IMT", "BMT")
	for _, name := range names {
		s, err := Resolve(name)
		if err != nil {
			t.Errorf("Resolve(%s): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("Resolve(%s).Name() = %q", name, s.Name())
		}
		if got, want := s.Ports(), PortsFor(name); got != want {
			t.Errorf("Resolve(%s).Ports() = %d, PortsFor = %d", name, got, want)
		}
		if n, err := Ports(name); err != nil || n != s.Ports() {
			t.Errorf("Ports(%s) = %d, %v", name, n, err)
		}
		tree := s.Tree()
		if s.IsBaseline() {
			if tree != nil {
				t.Errorf("baseline %s has a tree", name)
			}
			continue
		}
		if tree == nil {
			t.Fatalf("scheme %s has no tree", name)
		}
		back, err := Resolve(tree.String())
		if err != nil {
			t.Errorf("Resolve(%q): %v", tree.String(), err)
			continue
		}
		if back.Tree() == nil || back.Tree().String() != tree.String() {
			t.Errorf("%s: %q did not re-resolve to an equivalent tree", name, tree.String())
		}
	}
}

func TestResolveRejectsUnknownNames(t *testing.T) {
	for _, name := range []string{"", "XX", "NOPE", "2XY", "C1", "S(T0", "3SS", "smt"} {
		if s, err := Resolve(name); err == nil {
			t.Errorf("Resolve(%q) unexpectedly succeeded: %s", name, s.Name())
		}
		if _, err := Ports(name); err == nil {
			t.Errorf("Ports(%q) unexpectedly succeeded", name)
		}
		// The deprecated forgiving entry point still defaults to 4.
		if got := PortsFor(name); got != 4 {
			t.Errorf("PortsFor(%q) = %d, want the documented default 4", name, got)
		}
	}
}

func TestSchemeSelector(t *testing.T) {
	s, err := Resolve("2SC3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Selector(4); err != nil {
		t.Errorf("Selector(4): %v", err)
	}
	if _, err := s.Selector(0); err != nil {
		t.Errorf("Selector(0) should accept the tree's own port count: %v", err)
	}
	if _, err := s.Selector(5); err == nil {
		t.Error("Selector(5) accepted a port mismatch")
	}
	imt, err := Resolve("IMT")
	if err != nil {
		t.Fatal(err)
	}
	for _, ports := range []int{1, 4, 8} {
		sel, err := imt.Selector(ports)
		if err != nil {
			t.Fatalf("IMT.Selector(%d): %v", ports, err)
		}
		if sel.Ports() != ports {
			t.Errorf("IMT selector ports = %d, want %d", sel.Ports(), ports)
		}
	}
	if _, err := imt.Selector(0); err == nil {
		t.Error("IMT.Selector(0) accepted")
	}
	// BMT selectors are stateful: every call must return a fresh one.
	bmt, err := Resolve("BMT")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := bmt.Selector(4)
	b, _ := bmt.Selector(4)
	if a == b {
		t.Error("BMT.Selector returned a shared stateful instance")
	}
	if _, err := (Scheme{}).Selector(4); err == nil {
		t.Error("zero Scheme produced a selector")
	}
}

func TestRegistry(t *testing.T) {
	tree, err := ParseTreeExpr("S(C(T0,T1,T2),T3)")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := FromTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register("regtest4", sch); err != nil {
		t.Fatal(err)
	}
	defer Unregister("regtest4")

	got, err := Resolve("regtest4")
	if err != nil {
		t.Fatalf("registered name did not resolve: %v", err)
	}
	if got.Name() != "regtest4" || got.Tree() == nil || got.Tree().String() != tree.String() {
		t.Errorf("resolved %q to %s (%s)", "regtest4", got.Name(), got.String())
	}
	if n, err := Ports("regtest4"); err != nil || n != 4 {
		t.Errorf("Ports(regtest4) = %d, %v", n, err)
	}
	if sel, err := NewSelector("regtest4", 4); err != nil || sel.Name() != "regtest4" {
		t.Errorf("NewSelector(regtest4) = %v, %v", sel, err)
	}
	found := false
	for _, s := range Registered() {
		if s.Name() == "regtest4" {
			found = true
		}
	}
	if !found {
		t.Error("Registered() does not list regtest4")
	}

	// Names that collide with the built-in grammar are rejected.
	for _, bad := range []string{"", "IMT", "BMT", "3SSS", "C4", "2CC", "S(T0,T1)"} {
		if err := Register(bad, sch); err == nil {
			t.Errorf("Register(%q) accepted a colliding name", bad)
			Unregister(bad)
		}
	}
	// Baselines cannot be registered (no tree to register).
	imt, _ := Resolve("IMT")
	if err := Register("myimt", imt); err == nil {
		t.Error("baseline registration accepted")
		Unregister("myimt")
	}
	// Unregistered names stop resolving.
	Unregister("regtest4")
	if _, err := Resolve("regtest4"); err == nil {
		t.Error("unregistered name still resolves")
	}
}

func TestSchemeDescribe(t *testing.T) {
	cases := map[string]string{
		"3SSS":                          "cascade",
		"C4":                            "parallel CSMT node",
		"2CC":                           "balanced tree",
		"1S":                            "single SMT node",
		"IMT":                           "interleaved",
		"BMT":                           "block",
		"S(C(T0,T1),C(T2,T3))":          "balanced tree",
		"C(S(T0,T1),S(T2,T3),S(T4,T5))": "balanced tree",
	}
	for name, want := range cases {
		s, err := Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", name, err)
		}
		if desc := s.Describe(); !strings.Contains(desc, want) {
			t.Errorf("Describe(%s) = %q, want it to mention %q", name, desc, want)
		}
	}
	if desc := (Scheme{}).Describe(); !strings.Contains(desc, "single thread") {
		t.Errorf("zero Scheme description = %q", desc)
	}
}

func TestSchemeWithName(t *testing.T) {
	s, err := Resolve("S(C(T0,T1,T2),T3)")
	if err != nil {
		t.Fatal(err)
	}
	named := s.WithName("asym4")
	if named.Name() != "asym4" {
		t.Errorf("WithName name = %q", named.Name())
	}
	if named.String() != s.String() {
		t.Errorf("WithName changed the tree: %q vs %q", named.String(), s.String())
	}
	if named.Tree().Name() != "asym4" {
		t.Errorf("WithName tree name = %q", named.Tree().Name())
	}
	imt, _ := Resolve("IMT")
	if got := imt.WithName("x"); got.Name() != "IMT" {
		t.Error("WithName should not relabel baselines")
	}
}
