package merge

import "vliwmt/internal/isa"

// This file is the merge compilation step of the simulator hot path
// (DESIGN.md): a Tree is flattened once, at Selector build time, into
// either a linear fold over its leaves or a post-order instruction
// array, and selection then runs without recursion, per-cycle interface
// dispatch through child nodes, or heap allocation.
//
// Shape detection is automatic. Left-deep trees — every input after a
// node's first is a leaf, and the first input chains down to a leaf —
// cover the paper's dominant shapes (all 3XYZ cascades, the flat
// parallel C<n>/CSMT nodes, the hybrid parallel-CSMT cascades like 2SC3
// and 4SC3C3C3) and fold into a per-leaf (port, kind) step list, because
// the greedy all-or-nothing merge visits their leaves in a fixed order
// with a fixed merge kind per leaf. Pure-SMT and pure-CSMT folds get
// specialized loops (the CSMT one tracks the accumulated cluster mask
// incrementally, so each merge attempt is one AND). Everything else —
// the balanced 2XY trees, custom trees with interior non-first subtrees
// — runs on a small stack machine over a preallocated scratch buffer.

// evalKind identifies the specialized evaluator a compiled scheme uses.
type evalKind uint8

const (
	evalFoldSMT   evalKind = iota // left-deep, every merge level SMT
	evalFoldCSMT                  // left-deep, every merge level CSMT
	evalFoldMixed                 // left-deep, mixed SMT/CSMT levels
	evalStack                     // general post-order stack program
)

// foldStep is one leaf visit of a linear fold: join the candidate at
// port into the accumulator under kind. The kind of the first
// accumulated step is irrelevant (it becomes the base packet).
type foldStep struct {
	port uint8
	kind Kind
}

// Stack-program opcodes. Leaves push the port's candidate (or the empty
// selection); merge opcodes fold the top n entries in input order.
const (
	opLeaf uint8 = iota
	opMergeSMT
	opMergeCSMT
)

type cinstr struct {
	op  uint8
	arg uint8 // opLeaf: port; opMerge*: input count
}

// Compiled is a Tree flattened for fast selection. It implements
// Selector and selects bit-identically to the Tree's recursive reference
// walk (enforced by the differential tests). The scratch stack makes an
// instance single-simulator state: build one per run via Scheme.Selector.
type Compiled struct {
	tree   *Tree
	kind   evalKind
	steps  []foldStep  // fold evaluators
	prog   []cinstr    // evalStack program
	stack  []Selection // evalStack scratch, len = max program depth
	masks  []uint8     // cluster mask per stack entry, same length
	pstack []pentry    // evalStack scratch for SelectPacked, same length
}

// Compile flattens t into its fastest evaluator form. The result selects
// exactly like t.Select.
func Compile(t *Tree) *Compiled {
	c := &Compiled{tree: t}
	if steps, ok := flattenFold(t.root, nil); ok {
		c.steps = steps
		c.kind = evalFoldMixed
		smt, csmt := true, true
		for _, s := range steps[1:] {
			if s.kind == SMT {
				csmt = false
			} else {
				smt = false
			}
		}
		switch {
		case smt:
			c.kind = evalFoldSMT
		case csmt:
			c.kind = evalFoldCSMT
		}
		return c
	}
	c.kind = evalStack
	c.prog, c.stack = compileStack(t.root)
	c.masks = make([]uint8, len(c.stack))
	c.pstack = make([]pentry, len(c.stack))
	return c
}

// flattenFold linearizes a left-deep tree into fold steps: node n
// qualifies when all inputs after the first are leaves and the first
// input is a leaf or itself qualifies. Leaf j of a qualifying tree is
// always joined under the kind of the node that owns it, so the greedy
// recursive selection reduces to one ordered fold over the leaves.
func flattenFold(n *Node, steps []foldStep) ([]foldStep, bool) {
	for _, in := range n.Inputs[1:] {
		if in.Node != nil {
			return nil, false
		}
	}
	first := n.Inputs[0]
	if first.Node != nil {
		var ok bool
		if steps, ok = flattenFold(first.Node, steps); !ok {
			return nil, false
		}
	} else {
		steps = append(steps, foldStep{port: uint8(first.Port), kind: n.Kind})
	}
	for _, in := range n.Inputs[1:] {
		steps = append(steps, foldStep{port: uint8(in.Port), kind: n.Kind})
	}
	return steps, true
}

// compileStack emits the post-order program for an arbitrary tree and
// sizes its scratch stack to the program's maximum depth.
func compileStack(root *Node) ([]cinstr, []Selection) {
	var prog []cinstr
	var emit func(n *Node)
	emit = func(n *Node) {
		for _, in := range n.Inputs {
			if in.Node != nil {
				emit(in.Node)
			} else {
				prog = append(prog, cinstr{op: opLeaf, arg: uint8(in.Port)})
			}
		}
		op := opMergeSMT
		if n.Kind == CSMT {
			op = opMergeCSMT
		}
		prog = append(prog, cinstr{op: op, arg: uint8(len(n.Inputs))})
	}
	emit(root)
	depth, maxDepth := 0, 0
	for _, ins := range prog {
		if ins.op == opLeaf {
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		} else {
			depth -= int(ins.arg) - 1
		}
	}
	return prog, make([]Selection, maxDepth)
}

// Name implements Selector.
func (c *Compiled) Name() string { return c.tree.Name() }

// Ports implements Selector.
func (c *Compiled) Ports() int { return c.tree.Ports() }

// Tree returns the scheme tree the evaluator was compiled from.
func (c *Compiled) Tree() *Tree { return c.tree }

// Select implements Selector.
//
//vliw:hotpath
func (c *Compiled) Select(m *isa.Machine, cands []isa.Occupancy, valid uint32) Selection {
	switch c.kind {
	case evalFoldSMT:
		return c.selectFoldSMT(m, cands, valid)
	case evalFoldCSMT:
		return c.selectFoldCSMT(cands, valid)
	case evalFoldMixed:
		return c.selectFoldMixed(m, cands, valid)
	}
	return c.selectStack(m, cands, valid)
}

//vliw:hotpath
func (c *Compiled) selectFoldSMT(m *isa.Machine, cands []isa.Occupancy, valid uint32) Selection {
	var acc Selection
	for i := range c.steps {
		p := c.steps[i].port
		if valid&(1<<p) == 0 {
			continue
		}
		if acc.Mask == 0 {
			acc.Mask = 1 << p
			acc.Occ = cands[p]
			continue
		}
		if isa.AccumSMT(&acc.Occ, &cands[p], m) {
			acc.Mask |= 1 << p
		}
	}
	return acc
}

//vliw:hotpath
func (c *Compiled) selectFoldCSMT(cands []isa.Occupancy, valid uint32) Selection {
	var acc Selection
	var used uint8
	for i := range c.steps {
		p := c.steps[i].port
		if valid&(1<<p) == 0 {
			continue
		}
		cm := isa.UsedClusters(&cands[p])
		if acc.Mask == 0 {
			acc.Mask = 1 << p
			acc.Occ = cands[p]
			used = cm
			continue
		}
		if used&cm == 0 {
			used |= cm
			acc.Mask |= 1 << p
			acc.Occ.Accumulate(&cands[p])
		}
	}
	return acc
}

//vliw:hotpath
func (c *Compiled) selectFoldMixed(m *isa.Machine, cands []isa.Occupancy, valid uint32) Selection {
	var acc Selection
	var used uint8 // cluster mask of acc, maintained incrementally
	for i := range c.steps {
		step := &c.steps[i]
		p := step.port
		if valid&(1<<p) == 0 {
			continue
		}
		cand := &cands[p]
		if acc.Mask == 0 {
			acc.Mask = 1 << p
			acc.Occ = *cand
			used = isa.UsedClusters(cand)
			continue
		}
		if step.kind == CSMT {
			if cm := isa.UsedClusters(cand); used&cm == 0 {
				used |= cm
				acc.Mask |= 1 << p
				acc.Occ.Accumulate(cand)
			}
		} else if isa.AccumSMT(&acc.Occ, cand, m) {
			acc.Mask |= 1 << p
			used |= isa.UsedClusters(cand)
		}
	}
	return acc
}

//vliw:hotpath
func (c *Compiled) selectStack(m *isa.Machine, cands []isa.Occupancy, valid uint32) Selection {
	st := c.stack
	cm := c.masks // cluster mask per stack entry, maintained incrementally
	sp := 0
	for _, ins := range c.prog {
		if ins.op == opLeaf {
			p := ins.arg
			if valid&(1<<p) != 0 {
				st[sp] = Selection{Mask: 1 << p, Occ: cands[p]}
				cm[sp] = isa.UsedClusters(&cands[p])
			} else {
				st[sp] = Selection{}
				cm[sp] = 0
			}
			sp++
			continue
		}
		base := sp - int(ins.arg)
		acc := st[base]
		used := cm[base]
		for i := base + 1; i < sp; i++ {
			s := &st[i]
			if s.Mask == 0 {
				continue
			}
			if acc.Mask == 0 {
				acc = *s
				used = cm[i]
				continue
			}
			// Incompatible inputs are dropped whole, as in the
			// reference walk (VLIW all-or-nothing sub-packets).
			if ins.op == opMergeCSMT {
				if used&cm[i] != 0 {
					continue
				}
				acc.Occ.Accumulate(&s.Occ)
			} else if !isa.AccumSMT(&acc.Occ, &s.Occ, m) {
				continue
			}
			acc.Mask |= s.Mask
			used |= cm[i]
		}
		st[base] = acc
		cm[base] = used
		sp = base + 1
	}
	return st[0]
}
