package merge

import (
	"math/rand"
	"testing"

	"vliwmt/internal/isa"
)

// occOn builds an occupancy with one ALU op on each listed cluster.
func occOn(clusters ...int) *isa.Occupancy {
	var ops []isa.Op
	for _, c := range clusters {
		ops = append(ops, isa.Op{Class: isa.OpALU, Cluster: uint8(c)})
	}
	o := isa.OccupancyOf(ops)
	return &o
}

// denseOcc builds an occupancy with n ALU ops on every cluster of m.
func denseOcc(m *isa.Machine, n int) *isa.Occupancy {
	var ops []isa.Op
	for c := 0; c < m.Clusters; c++ {
		for i := 0; i < n; i++ {
			ops = append(ops, isa.Op{Class: isa.OpALU, Cluster: uint8(c)})
		}
	}
	o := isa.OccupancyOf(ops)
	return &o
}

func mustParse(t *testing.T, name string, ports int) *Tree {
	t.Helper()
	tree, err := Parse(name, ports)
	if err != nil {
		t.Fatalf("Parse(%q, %d): %v", name, ports, err)
	}
	return tree
}

// pack converts the pointer-slice candidate convention the tests build
// into the value-slice + valid-bitmask form of the Selector interface.
func pack(cands []*isa.Occupancy) ([]isa.Occupancy, uint32) {
	vals := make([]isa.Occupancy, len(cands))
	var valid uint32
	for p, c := range cands {
		if c != nil {
			vals[p] = *c
			valid |= 1 << uint(p)
		}
	}
	return vals, valid
}

// treeSelect runs both the recursive reference walk and the compiled
// evaluator on cands and fails the test when they disagree, so every
// tree selection in this suite doubles as a compiled-vs-reference
// differential check.
func treeSelect(t testing.TB, tree *Tree, m *isa.Machine, cands []*isa.Occupancy) Selection {
	t.Helper()
	vals, valid := pack(cands)
	ref := tree.Select(m, vals, valid)
	fast := Compile(tree).Select(m, vals, valid)
	if ref != fast {
		t.Fatalf("%s: compiled selection %+v != reference %+v", tree.Name(), fast, ref)
	}
	return ref
}

func TestCascadeCSMTSelectsDisjoint(t *testing.T) {
	m := isa.Default()
	tree := mustParse(t, "3CCC", 4)
	cands := []*isa.Occupancy{occOn(0), occOn(1), occOn(2), occOn(3)}
	s := treeSelect(t, tree, &m, cands)
	if s.Mask != 0b1111 {
		t.Errorf("disjoint threads: mask = %04b, want 1111", s.Mask)
	}
	if s.Occ.Ops != 4 {
		t.Errorf("merged ops = %d, want 4", s.Occ.Ops)
	}
}

func TestCascadeCSMTDropsConflicting(t *testing.T) {
	m := isa.Default()
	tree := mustParse(t, "3CCC", 4)
	// T1 conflicts with T0 on cluster 0; T2 and T3 are disjoint.
	cands := []*isa.Occupancy{occOn(0), occOn(0), occOn(1), occOn(2)}
	s := treeSelect(t, tree, &m, cands)
	if s.Mask != 0b1101 {
		t.Errorf("mask = %04b, want 1101", s.Mask)
	}
}

func TestCSMTCannotMergeSharedCluster(t *testing.T) {
	m := isa.Default()
	tree := mustParse(t, "1C", 2)
	cands := []*isa.Occupancy{occOn(0, 1), occOn(1, 2)}
	s := treeSelect(t, tree, &m, cands)
	if s.Mask != 0b01 {
		t.Errorf("mask = %02b, want 01 (priority thread only)", s.Mask)
	}
}

func TestSMTMergesSharedClusterWhenFits(t *testing.T) {
	m := isa.Default()
	tree := mustParse(t, "1S", 2)
	cands := []*isa.Occupancy{occOn(0, 1), occOn(1, 2)}
	s := treeSelect(t, tree, &m, cands)
	if s.Mask != 0b11 {
		t.Errorf("mask = %02b, want 11", s.Mask)
	}
	if s.Occ.Clusters[1].Total != 2 {
		t.Errorf("cluster 1 should carry both ops, got %d", s.Occ.Clusters[1].Total)
	}
}

// TestBalancedAtomicity reproduces the restriction the paper describes for
// tree schemes: merging T2 and T3 first creates a packet that may not merge
// with (T0,T1) even though T2 alone would have merged.
func TestBalancedAtomicity(t *testing.T) {
	m := isa.Default()
	balanced := mustParse(t, "2CC", 4)
	serial := mustParse(t, "3CCC", 4)
	cands := []*isa.Occupancy{
		occOn(0), // T0
		nil,      // T1 stalled
		occOn(1), // T2: disjoint from T0
		occOn(0), // T3: conflicts with T0, merges with T2
	}
	// Balanced: group2 = {T2,T3} (clusters 1 and 0) conflicts with T0.
	s := treeSelect(t, balanced, &m, cands)
	if s.Mask != 0b0001 {
		t.Errorf("balanced mask = %04b, want 0001", s.Mask)
	}
	// Serial cascade: T0+T2 merge, then T3 is rejected individually.
	s = treeSelect(t, serial, &m, cands)
	if s.Mask != 0b0101 {
		t.Errorf("serial mask = %04b, want 0101", s.Mask)
	}
}

// Test2SCRestriction demonstrates why 2SC performs worst in the paper: two
// SMT-merged dense packets almost never pass the cluster-level root check.
func Test2SCRestriction(t *testing.T) {
	m := isa.Default()
	tree := mustParse(t, "2SC", 4)
	// Four sparse threads all over the clusters: pairwise SMT merging
	// succeeds inside each group, but both groups then span all clusters.
	cands := []*isa.Occupancy{occOn(0, 1), occOn(2, 3), occOn(0, 2), occOn(1, 3)}
	s := treeSelect(t, tree, &m, cands)
	if s.Mask != 0b0011 {
		t.Errorf("2SC mask = %04b, want 0011 (first SMT group only)", s.Mask)
	}
	// 3SSS merges all four.
	if s := treeSelect(t, mustParse(t, "3SSS", 4), &m, cands); s.Mask != 0b1111 {
		t.Errorf("3SSS mask = %04b, want 1111", s.Mask)
	}
}

func TestEmptyAndSingleCandidate(t *testing.T) {
	m := isa.Default()
	for _, name := range PaperSchemes4() {
		tree := mustParse(t, name, PortsFor(name))
		cands := make([]*isa.Occupancy, tree.Ports())
		if s := treeSelect(t, tree, &m, cands); !s.Empty() {
			t.Errorf("%s: selection from no candidates = %v", name, s)
		}
		for p := 0; p < tree.Ports(); p++ {
			cands := make([]*isa.Occupancy, tree.Ports())
			cands[p] = occOn(2)
			s := treeSelect(t, tree, &m, cands)
			if s.Mask != 1<<uint(p) {
				t.Errorf("%s: single candidate at port %d gave mask %04b", name, p, s.Mask)
			}
		}
	}
}

// TestHighestPriorityAlwaysIssues: in every paper scheme, the first
// runnable port in leaf order is always part of the selection.
func TestHighestPriorityAlwaysIssues(t *testing.T) {
	m := isa.Default()
	r := rand.New(rand.NewSource(7))
	for _, name := range PaperSchemes4() {
		tree := mustParse(t, name, PortsFor(name))
		for trial := 0; trial < 200; trial++ {
			cands := randomCands(r, &m, tree.Ports())
			first := -1
			for p, c := range cands {
				if c != nil {
					first = p
					break
				}
			}
			s := treeSelect(t, tree, &m, cands)
			if first == -1 {
				if !s.Empty() {
					t.Fatalf("%s: selected from empty candidates", name)
				}
				continue
			}
			if !s.Has(first) {
				t.Fatalf("%s: highest-priority runnable port %d not selected (mask %04b)", name, first, s.Mask)
			}
		}
	}
}

func randomCands(r *rand.Rand, m *isa.Machine, ports int) []*isa.Occupancy {
	cands := make([]*isa.Occupancy, ports)
	for p := range cands {
		if r.Intn(5) == 0 {
			continue // stalled
		}
		var ops []isa.Op
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			cl := uint8(r.Intn(m.Clusters))
			class := isa.OpALU
			switch r.Intn(6) {
			case 0:
				class = isa.OpMul
			case 1:
				class = isa.OpMem
			}
			ops = append(ops, isa.Op{Class: class, Cluster: cl})
		}
		occ := isa.OccupancyOf(ops)
		if !occ.FitsAlone(m) {
			occ = *occOn(r.Intn(m.Clusters))
		}
		cands[p] = &occ
	}
	return cands
}

// TestFunctionalEquivalences verifies the identities the paper reports:
// the parallel implementations select exactly like their serial cascades
// (C4 = 3CCC, 2SC3 = 3SCC, 2C3S = 3CCS) for every candidate combination.
func TestFunctionalEquivalences(t *testing.T) {
	m := isa.Default()
	pairs := [][2]string{{"C4", "3CCC"}, {"2SC3", "3SCC"}, {"2C3S", "3CCS"}}
	r := rand.New(rand.NewSource(42))
	for _, pair := range pairs {
		a := mustParse(t, pair[0], 4)
		b := mustParse(t, pair[1], 4)
		for trial := 0; trial < 2000; trial++ {
			cands := randomCands(r, &m, 4)
			sa := treeSelect(t, a, &m, cands)
			sb := treeSelect(t, b, &m, cands)
			if sa.Mask != sb.Mask {
				t.Fatalf("%s vs %s: mask %04b != %04b for %v", pair[0], pair[1], sa.Mask, sb.Mask, cands)
			}
			if sa.Occ != sb.Occ {
				t.Fatalf("%s vs %s: merged occupancy differs", pair[0], pair[1])
			}
		}
	}
}

// TestSelectionInvariants: selected ports always had candidates, and the
// merged occupancy is exactly the union of the selected candidates and
// still fits the machine.
func TestSelectionInvariants(t *testing.T) {
	m := isa.Default()
	r := rand.New(rand.NewSource(99))
	for _, name := range PaperSchemes4() {
		tree := mustParse(t, name, PortsFor(name))
		for trial := 0; trial < 500; trial++ {
			cands := randomCands(r, &m, tree.Ports())
			s := treeSelect(t, tree, &m, cands)
			var union isa.Occupancy
			for p := 0; p < tree.Ports(); p++ {
				if !s.Has(p) {
					continue
				}
				if cands[p] == nil {
					t.Fatalf("%s: selected stalled port %d", name, p)
				}
				union = union.Union(*cands[p])
			}
			if union != s.Occ {
				t.Fatalf("%s: merged occupancy is not the union of selected candidates", name)
			}
			if !s.Empty() && !s.Occ.FitsAlone(&m) {
				t.Fatalf("%s: merged packet oversubscribes the machine: %v", name, s.Occ)
			}
		}
	}
}

// TestSMTSupersetOfCSMTPairwise: for the two-thread schemes the SMT
// selection is always a superset of the CSMT selection.
func TestSMTSupersetOfCSMTPairwise(t *testing.T) {
	m := isa.Default()
	r := rand.New(rand.NewSource(5))
	smt := mustParse(t, "1S", 2)
	csmt := mustParse(t, "1C", 2)
	for trial := 0; trial < 2000; trial++ {
		cands := randomCands(r, &m, 2)
		a := treeSelect(t, smt, &m, cands)
		b := treeSelect(t, csmt, &m, cands)
		if b.Mask&^a.Mask != 0 {
			t.Fatalf("CSMT selected ports SMT did not: %04b vs %04b", b.Mask, a.Mask)
		}
	}
}

func TestIMTSelectsExactlyOne(t *testing.T) {
	m := isa.Default()
	imt := &IMT{NumPorts: 4}
	vals, valid := pack([]*isa.Occupancy{nil, occOn(1), occOn(2), nil})
	s := imt.Select(&m, vals, valid)
	if s.Mask != 0b0010 {
		t.Errorf("IMT mask = %04b, want 0010", s.Mask)
	}
	if s := imt.Select(&m, make([]isa.Occupancy, 4), 0); !s.Empty() {
		t.Error("IMT selected from no candidates")
	}
	if imt.Name() != "IMT" || imt.Ports() != 4 {
		t.Error("IMT metadata wrong")
	}
}

func TestBMTSticksUntilBlocked(t *testing.T) {
	m := isa.Default()
	bmt := &BMT{NumPorts: 3}
	cands := []*isa.Occupancy{occOn(0), occOn(1), occOn(2)}
	sel := func() Selection {
		vals, valid := pack(cands)
		return bmt.Select(&m, vals, valid)
	}
	if s := sel(); s.Mask != 0b001 {
		t.Fatalf("BMT first pick = %03b, want 001", s.Mask)
	}
	// Still runnable: stick with thread 0.
	if s := sel(); s.Mask != 0b001 {
		t.Errorf("BMT did not stick with running thread")
	}
	// Thread 0 blocks: switch to next runnable (thread 1).
	cands[0] = nil
	if s := sel(); s.Mask != 0b010 {
		t.Errorf("BMT did not switch on block")
	}
	// Thread 0 wakes up, but BMT stays on thread 1 until it blocks.
	cands[0] = occOn(0)
	if s := sel(); s.Mask != 0b010 {
		t.Errorf("BMT switched away from a runnable thread")
	}
	cands[1] = nil
	if s := sel(); s.Mask != 0b100 {
		t.Errorf("BMT wrap-around pick = wrong; want thread 2")
	}
}

func TestNewSelector(t *testing.T) {
	for _, name := range []string{"IMT", "BMT", "3SSS", "C4"} {
		sel, err := NewSelector(name, 4)
		if err != nil {
			t.Errorf("NewSelector(%q): %v", name, err)
			continue
		}
		if sel.Name() != name {
			t.Errorf("selector name = %q, want %q", sel.Name(), name)
		}
	}
	if _, err := NewSelector("bogus", 4); err == nil {
		t.Error("NewSelector accepted bogus name")
	}
}
