package merge

import (
	"math/rand"
	"testing"

	"vliwmt/internal/isa"
)

// packDict converts a candidate set to the dictionary + id form
// SelectPacked consumes: every distinct candidate value becomes one
// dictionary entry (here simply one entry per port, which is a legal —
// if maximally redundant — dictionary).
func packDict(t *testing.T, vals []isa.Occupancy) ([]PackedOcc, []int32) {
	t.Helper()
	d := make([]PackedOcc, len(vals))
	ids := make([]int32, len(vals))
	for p := range vals {
		po, ok := PackOcc(&vals[p])
		if !ok {
			t.Fatalf("candidate %d unpackable: %+v", p, vals[p])
		}
		d[p] = po
		ids[p] = int32(p)
	}
	return d, ids
}

// TestSelectPackedMatchesSelect is the packed-path differential: on the
// paper's schemes plus random trees, random machines and random
// candidate sets, SelectPacked must agree with Select on the selected
// mask and the merged packet's operation count — the two facts the
// batched simulator consumes.
func TestSelectPackedMatchesSelect(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	machines := []isa.Machine{isa.Default()}
	for i := 0; i < 4; i++ {
		m := isa.Default()
		m.Clusters = 1 + r.Intn(isa.MaxClusters)
		m.IssueWidth = 1 + r.Intn(8)
		m.Muls = 1 + r.Intn(4)
		m.MemUnits = 1 + r.Intn(4)
		m.BranchClusters = r.Intn(m.Clusters + 1)
		machines = append(machines, m)
	}
	check := func(c *Compiled, m *isa.Machine, vals []isa.Occupancy, valid uint32) {
		t.Helper()
		lim, ok := PackLimits(m)
		if !ok {
			t.Fatalf("machine unpackable: %+v", m)
		}
		d, ids := packDict(t, vals)
		ref := c.Select(m, vals, valid)
		mask, ops := c.SelectPacked(d, &lim, ids, valid)
		if mask != ref.Mask || ops != ref.Occ.Ops {
			t.Fatalf("%s on %+v: packed (mask %04b, ops %d) != reference (mask %04b, ops %d), valid %04b",
				c.Name(), *m, mask, ops, ref.Mask, ref.Occ.Ops, valid)
		}
	}

	for _, name := range []string{"3SSS", "3CCC", "C4", "C8", "2SC3", "3SCC", "2C3S", "2SS", "2CC", "2CS", "2SC", "1S"} {
		ports := 4
		if name == "C8" {
			ports = 8
		}
		if name == "1S" {
			ports = 2
		}
		c := Compile(mustParse(t, name, ports))
		for _, m := range machines {
			mm := m
			for i := 0; i < 60; i++ {
				vals, valid := pack(randomCands(r, &mm, ports))
				check(c, &mm, vals, valid)
			}
		}
	}

	// Random trees exercise the stack evaluator's nested merges.
	for trial := 0; trial < 120; trial++ {
		n := 2 + r.Intn(7)
		c := Compile(randomTree(r, n))
		for _, m := range machines {
			mm := m
			for i := 0; i < 15; i++ {
				vals, valid := pack(randomCands(r, &mm, n))
				check(c, &mm, vals, valid)
			}
		}
	}
}

// TestPackOccRoundTrip pins the packed encoding: per-cluster counts land
// in the right bytes, the cluster mask matches UsedClusters, and
// over-limit counts are rejected.
func TestPackOccRoundTrip(t *testing.T) {
	var o isa.Occupancy
	o.Clusters[0] = isa.ClusterUse{Total: 3, Mul: 1, Mem: 2, Branch: 0}
	o.Clusters[3] = isa.ClusterUse{Total: 5, Mul: 0, Mem: 0, Branch: 1}
	o.Ops = 8
	p, ok := PackOcc(&o)
	if !ok {
		t.Fatal("packable occupancy rejected")
	}
	if got := uint8(p.T >> 24); got != 5 {
		t.Errorf("cluster 3 total byte = %d, want 5", got)
	}
	if got := uint8(p.L); got != 2 {
		t.Errorf("cluster 0 mem byte = %d, want 2", got)
	}
	if got := uint8(p.B >> 24); got != 1 {
		t.Errorf("cluster 3 branch byte = %d, want 1", got)
	}
	if p.CM != isa.UsedClusters(&o) {
		t.Errorf("CM = %08b, want UsedClusters %08b", p.CM, isa.UsedClusters(&o))
	}
	if p.Ops != 8 {
		t.Errorf("Ops = %d, want 8", p.Ops)
	}

	o.Clusters[1].Total = packMax + 1
	if _, ok := PackOcc(&o); ok {
		t.Error("occupancy with count > packMax accepted")
	}
}

// TestPackLimitsRejectsWideMachines: limits beyond the SWAR byte
// headroom must force the plain path.
func TestPackLimitsRejectsWideMachines(t *testing.T) {
	m := isa.Default()
	if _, ok := PackLimits(&m); !ok {
		t.Fatal("default machine must be packable")
	}
	m.IssueWidth = packMax + 1
	if _, ok := PackLimits(&m); ok {
		t.Error("machine with IssueWidth > packMax accepted")
	}
}

// TestSelectPackedZeroAllocs: the packed path shares the plain path's
// per-cycle contract — no heap traffic.
func TestSelectPackedZeroAllocs(t *testing.T) {
	m := isa.Default()
	lim, ok := PackLimits(&m)
	if !ok {
		t.Fatal("default machine must be packable")
	}
	r := rand.New(rand.NewSource(13))
	for _, name := range []string{"3SSS", "3CCC", "2SC3", "2SS", "C4"} {
		c := Compile(mustParse(t, name, 4))
		vals, valid := pack(randomCands(r, &m, 4))
		d, ids := packDict(t, vals)
		allocs := testing.AllocsPerRun(200, func() {
			c.SelectPacked(d, &lim, ids, valid)
		})
		if allocs != 0 {
			t.Errorf("%s: SelectPacked allocates %.1f times per call, want 0", name, allocs)
		}
	}
}
