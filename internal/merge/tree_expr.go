package merge

import (
	"fmt"
	"strings"
)

// The canonical tree grammar is the one Tree.String emits:
//
//	node  := ("S" | "C") [arity] "(" input ("," input)* ")"
//	input := node | "T" port
//
// An arity digit string marks a parallel node ("C3(...)"); it is only
// defined for CSMT and must match the node's input count. Leaf ports
// must cover 0..n-1 exactly once. Whitespace between tokens is allowed
// on input (it is never emitted).

// IsTreeExpr reports whether name is written in the canonical tree
// grammar rather than as a paper scheme name: tree expressions always
// contain a parenthesis, paper names never do.
func IsTreeExpr(name string) bool { return strings.ContainsRune(name, '(') }

// ParseTreeExpr parses a canonical tree expression such as
// "C(S(T0,T1),T2,T3)" into a scheme. The result's name is the
// normalised rendering, so ParseTreeExpr(t.String()).String() ==
// t.String() for every tree t.
func ParseTreeExpr(expr string) (*Tree, error) {
	p := &exprParser{src: expr}
	root, err := p.node()
	if err != nil {
		return nil, fmt.Errorf("merge: tree expression %q: %w", expr, err)
	}
	p.space()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("merge: tree expression %q: trailing input at offset %d", expr, p.pos)
	}
	t, err := TreeFromNode("", root)
	if err != nil {
		return nil, fmt.Errorf("merge: tree expression %q: %w", expr, err)
	}
	return t, nil
}

// TreeFromNode builds a scheme from an explicit node tree, deriving
// the port count from the highest leaf port; NewTree then validates
// that ports 0..max appear exactly once. An empty name selects the
// canonical rendering of the tree.
func TreeFromNode(name string, root *Node) (*Tree, error) {
	max := -1
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return fmt.Errorf("merge: nil node in tree")
		}
		for _, in := range n.Inputs {
			if in.Node != nil {
				if err := walk(in.Node); err != nil {
					return err
				}
				continue
			}
			if in.Port > max {
				max = in.Port
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	if name == "" {
		name = renderNode(root)
	}
	return NewTree(name, root, max+1)
}

// maxExprDepth bounds parser recursion. Every node needs at least two
// inputs, so a legal tree over MaxPorts leaves can never nest deeper
// than MaxPorts - 1; the cap only rejects pathological input early.
const maxExprDepth = MaxPorts

type exprParser struct {
	src   string
	pos   int
	depth int
}

func (p *exprParser) space() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() (byte, bool) {
	p.space()
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *exprParser) expect(c byte) error {
	got, ok := p.peek()
	if !ok {
		return fmt.Errorf("want %q at offset %d, got end of input", c, p.pos)
	}
	if got != c {
		return fmt.Errorf("want %q at offset %d, got %q", c, p.pos, got)
	}
	p.pos++
	return nil
}

// number consumes a digit run. Values are capped well above any legal
// port or arity so a pathological input cannot overflow or force a
// huge allocation downstream.
func (p *exprParser) number() (int, bool, error) {
	start := p.pos
	n := 0
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		n = n*10 + int(p.src[p.pos]-'0')
		if n > MaxPorts {
			return 0, false, fmt.Errorf("number at offset %d exceeds %d", start, MaxPorts)
		}
		p.pos++
	}
	return n, p.pos > start, nil
}

func (p *exprParser) node() (*Node, error) {
	if p.depth++; p.depth > maxExprDepth {
		return nil, fmt.Errorf("tree nested deeper than %d levels", maxExprDepth)
	}
	defer func() { p.depth-- }()
	c, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("want a node at offset %d, got end of input", p.pos)
	}
	var kind Kind
	switch c {
	case 'S':
		kind = SMT
	case 'C':
		kind = CSMT
	default:
		return nil, fmt.Errorf("want node kind S or C at offset %d, got %q", p.pos, c)
	}
	p.pos++
	arity, hasArity, err := p.number()
	if err != nil {
		return nil, err
	}
	if hasArity {
		if kind != CSMT {
			return nil, fmt.Errorf("parallel multi-input merging is only defined for CSMT")
		}
		if arity < 2 {
			return nil, fmt.Errorf("parallel node arity %d too small", arity)
		}
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	n := &Node{Kind: kind, Parallel: hasArity}
	for {
		in, err := p.input()
		if err != nil {
			return nil, err
		}
		n.Inputs = append(n.Inputs, in)
		c, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("unclosed node at offset %d", p.pos)
		}
		if c == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if hasArity && arity != len(n.Inputs) {
		return nil, fmt.Errorf("parallel node declares %d inputs but lists %d", arity, len(n.Inputs))
	}
	return n, nil
}

func (p *exprParser) input() (Input, error) {
	c, ok := p.peek()
	if !ok {
		return Input{}, fmt.Errorf("want an input at offset %d, got end of input", p.pos)
	}
	if c == 'T' {
		p.pos++
		port, has, err := p.number()
		if err != nil {
			return Input{}, err
		}
		if !has {
			return Input{}, fmt.Errorf("want a port number at offset %d", p.pos)
		}
		return Leaf(port), nil
	}
	n, err := p.node()
	if err != nil {
		return Input{}, err
	}
	return Sub(n), nil
}

// SplitNames breaks a comma-separated scheme-name list, leaving commas
// inside parentheses alone so tree expressions like C(S(T0,T1),T2,T3)
// stay whole. It is the one splitter every CLI -schemes/-mixes flag
// shares, so the list grammar cannot drift between commands.
func SplitNames(s string) []string {
	var parts []string
	depth, start := 0, 0
	emit := func(end int) {
		if p := strings.TrimSpace(s[start:end]); p != "" {
			parts = append(parts, p)
		}
	}
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				emit(i)
				start = i + 1
			}
		}
	}
	emit(len(s))
	return parts
}
