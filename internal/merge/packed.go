package merge

import "vliwmt/internal/isa"

// Packed selection: the batched simulator's occupancy-free fast path.
//
// A compiled evaluator consumes an occupancy only through three
// questions — which clusters does it use (CSMT disjointness), do the
// per-cluster slot counts fit when two packets are summed (SMT
// capacity), and does the merged packet retire any operations. All
// three are answerable from a byte-packed form of the occupancy: one
// uint64 per slot class holding the eight per-cluster counts as bytes,
// plus the cluster bitmask and the operation total. On that form a
// merge attempt is a handful of 64-bit adds and masks — no per-cluster
// loop, no 33-byte Occupancy copies — and the whole candidate gather
// reduces to dictionary IDs.
//
// The SWAR capacity test works because every quantity is small: packed
// counts are capped at packMax (63) and machine limits likewise, so
// byte sums never carry into a neighbouring byte, and "count_a +
// count_b > limit" becomes "byte + (127 - limit) has bit 7 set".
// Clusters the solo path never checks (index >= Machine.Clusters, or
// clusters not used by both packets) are masked out of the overflow
// word, which reproduces AccumSMT's skip rules exactly. The
// differential tests in packed_test.go and the simulator's
// batch-vs-solo suite enforce bit-identity with Select.

const (
	// packMax bounds every packed per-cluster count and machine limit;
	// beyond it the byte arithmetic could carry and callers must use
	// the plain path. Real machines are nowhere near it (the default
	// issue width is 4).
	packMax = 63

	packLow7 = 0x7f7f7f7f7f7f7f7f // 127 in every byte
	packHigh = 0x8080808080808080 // bit 7 of every byte
	packRep  = 0x0101010101010101 // broadcast multiplier
	packDiag = 0x8040201008040201 // bit c in byte c
)

// PackedOcc is an occupancy in SWAR form: byte c of each word is the
// cluster-c count of that slot class, CM is the used-cluster bitmask
// and Ops the total operation count.
type PackedOcc struct {
	T, M, L, B uint64 // Total / Mul / Mem (load-store) / Branch per cluster
	CM         uint8
	Ops        uint8
}

// PackOcc converts an occupancy to packed form. It reports false when
// any per-cluster count exceeds packMax, in which case the caller must
// keep the plain evaluator.
func PackOcc(o *isa.Occupancy) (PackedOcc, bool) {
	var p PackedOcc
	for c := 0; c < isa.MaxClusters; c++ {
		u := &o.Clusters[c]
		if u.Total > packMax || u.Mul > packMax || u.Mem > packMax || u.Branch > packMax {
			return PackedOcc{}, false
		}
		sh := uint(8 * c)
		p.T |= uint64(u.Total) << sh
		p.M |= uint64(u.Mul) << sh
		p.L |= uint64(u.Mem) << sh
		p.B |= uint64(u.Branch) << sh
		if u.Total > 0 {
			p.CM |= 1 << uint(c)
		}
	}
	p.Ops = o.Ops
	return p, true
}

// PackedLimits is a machine's issue constraints in SWAR form: byte c of
// each word is 127-limit for that slot class on cluster c, so a packed
// sum exceeds the limit exactly when adding the constant sets bit 7.
// Bytes for clusters the machine does not have are zero — with counts
// capped at packMax the test bit can never fire there, mirroring the
// plain path's c < Machine.Clusters loop bound.
type PackedLimits struct {
	KT, KM, KL, KB uint64
}

// PackLimits converts a machine's merge constraints to packed form. It
// reports false when any limit exceeds packMax (the SWAR byte headroom),
// in which case callers must keep the plain evaluator.
func PackLimits(m *isa.Machine) (PackedLimits, bool) {
	var lim PackedLimits
	if m.Clusters > isa.MaxClusters || m.IssueWidth > packMax || m.Muls > packMax || m.MemUnits > packMax {
		return lim, false
	}
	for c := 0; c < m.Clusters; c++ {
		sh := uint(8 * c)
		lim.KT |= uint64(127-m.IssueWidth) << sh
		lim.KM |= uint64(127-m.Muls) << sh
		lim.KL |= uint64(127-m.MemUnits) << sh
		br := 0
		if c < m.BranchClusters {
			br = 1
		}
		lim.KB |= uint64(127-br) << sh
	}
	return lim, true
}

// spread80 expands a cluster bitmask to a word with bit 7 set in byte c
// exactly when bit c is set — the overflow-test positions of the
// clusters in the mask.
//
//vliw:hotpath
func spread80(m uint8) uint64 {
	x := uint64(m) * packRep & packDiag
	return (x + packLow7) & packHigh
}

// pentry is one packed-stack scratch entry: an accumulated packet plus
// the ports it covers.
type pentry struct {
	T, M, L, B uint64
	cm, ops    uint8
	mask       uint32
}

// SelectPacked selects exactly like Select, but from the batch-wide
// packed-occupancy dictionary d: ids[p] is the dictionary index of port
// p's candidate (read only where valid has the bit set). It returns the
// selected-port mask and the merged packet's operation count — the only
// two facts of a Selection the batched cycle loop consumes. lim must be
// PackLimits of the same machine Select would receive, and every
// dictionary entry must have come from PackOcc of the corresponding
// candidate; under those premises the differential suites hold this
// bit-identical to Select.
//
//vliw:hotpath
func (c *Compiled) SelectPacked(d []PackedOcc, lim *PackedLimits, ids []int32, valid uint32) (uint32, uint8) {
	switch c.kind {
	case evalFoldCSMT:
		return c.packedFoldCSMT(d, ids, valid)
	case evalFoldSMT, evalFoldMixed:
		return c.packedFold(d, lim, ids, valid)
	}
	return c.packedStack(d, lim, ids, valid)
}

// packedFoldCSMT is the pure-CSMT fold: disjointness is the cluster
// masks alone, and since no later step needs slot counts the
// accumulator is just (mask, clusters, ops).
//
//vliw:hotpath
func (c *Compiled) packedFoldCSMT(d []PackedOcc, ids []int32, valid uint32) (uint32, uint8) {
	var cm, ops uint8
	var mask uint32
	for i := range c.steps {
		p := c.steps[i].port
		if valid&(1<<p) == 0 {
			continue
		}
		s := &d[ids[p]]
		if cm&s.CM != 0 {
			continue
		}
		cm |= s.CM
		ops += s.Ops
		mask |= 1 << p
	}
	return mask, ops
}

// packedFold is the left-deep fold for SMT and mixed cascades: the base
// packet accumulates accepted candidates, CSMT levels testing cluster
// disjointness and SMT levels the SWAR capacity check.
//
//vliw:hotpath
func (c *Compiled) packedFold(d []PackedOcc, lim *PackedLimits, ids []int32, valid uint32) (uint32, uint8) {
	var aT, aM, aL, aB uint64
	var cm, ops uint8
	var mask uint32
	for i := range c.steps {
		st := &c.steps[i]
		p := st.port
		if valid&(1<<p) == 0 {
			continue
		}
		s := &d[ids[p]]
		if mask == 0 {
			aT, aM, aL, aB = s.T, s.M, s.L, s.B
			cm, ops = s.CM, s.Ops
			mask = 1 << p
			continue
		}
		if st.kind == CSMT {
			if cm&s.CM != 0 {
				continue
			}
		} else {
			both := spread80(cm & s.CM)
			ex := ((aT + s.T + lim.KT) | (aM + s.M + lim.KM) |
				(aL + s.L + lim.KL) | (aB + s.B + lim.KB)) & packHigh & both
			if ex != 0 {
				continue
			}
		}
		aT += s.T
		aM += s.M
		aL += s.L
		aB += s.B
		cm |= s.CM
		ops += s.Ops
		mask |= 1 << p
	}
	return mask, ops
}

// packedStack runs the general post-order program on packed entries,
// mirroring selectStack's merge rules (incompatible inputs dropped
// whole, in input order).
//
//vliw:hotpath
func (c *Compiled) packedStack(d []PackedOcc, lim *PackedLimits, ids []int32, valid uint32) (uint32, uint8) {
	st := c.pstack
	sp := 0
	for _, ins := range c.prog {
		if ins.op == opLeaf {
			p := ins.arg
			if valid&(1<<p) != 0 {
				s := &d[ids[p]]
				st[sp] = pentry{T: s.T, M: s.M, L: s.L, B: s.B, cm: s.CM, ops: s.Ops, mask: 1 << p}
			} else {
				st[sp] = pentry{}
			}
			sp++
			continue
		}
		base := sp - int(ins.arg)
		acc := st[base]
		for i := base + 1; i < sp; i++ {
			s := &st[i]
			if s.mask == 0 {
				continue
			}
			if acc.mask == 0 {
				acc = *s
				continue
			}
			if ins.op == opMergeCSMT {
				if acc.cm&s.cm != 0 {
					continue
				}
			} else {
				both := spread80(acc.cm & s.cm)
				ex := ((acc.T + s.T + lim.KT) | (acc.M + s.M + lim.KM) |
					(acc.L + s.L + lim.KL) | (acc.B + s.B + lim.KB)) & packHigh & both
				if ex != 0 {
					continue
				}
			}
			acc.T += s.T
			acc.M += s.M
			acc.L += s.L
			acc.B += s.B
			acc.cm |= s.cm
			acc.ops += s.ops
			acc.mask |= s.mask
		}
		st[base] = acc
		sp = base + 1
	}
	return st[0].mask, st[0].ops
}
