package resultstore

import (
	"encoding/json"
	"testing"

	"vliwmt/internal/api"
	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/sweep"
)

func baseJob() sweep.Job {
	return sweep.Job{
		Label:           "LLHH/2SC3",
		Scheme:          "2SC3",
		Benchmarks:      []string{"mcf", "blowfish", "x264", "idct"},
		Machine:         isa.Default(),
		ICache:          cache.DefaultConfig(),
		DCache:          cache.DefaultConfig(),
		InstrLimit:      20_000,
		TimesliceCycles: 1_000,
		Seed:            7,
	}
}

func keyOf(t *testing.T, j sweep.Job) string {
	t.Helper()
	k, err := Key(j)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestKeyCanonicalisesSchemeSpelling checks the keying contract's
// positive half: every spelling of the same merge control — the paper
// name, the canonical tree expression, a registered custom name, a
// typed Merge value — hashes identically, as does any display label.
func TestKeyCanonicalisesSchemeSpelling(t *testing.T) {
	base := baseJob()
	want := keyOf(t, base)

	sch, err := merge.Resolve("2SC3")
	if err != nil {
		t.Fatal(err)
	}
	expr := sch.Tree().String()

	// The canonical tree expression in the Scheme field.
	byExpr := base
	byExpr.Scheme = expr
	if got := keyOf(t, byExpr); got != want {
		t.Errorf("tree expression %q keys differently from the paper name: %s vs %s", expr, got, want)
	}

	// The typed Merge field, with no name at all.
	typed := base
	typed.Scheme = ""
	typed.Merge = sch
	if got := keyOf(t, typed); got != want {
		t.Errorf("typed scheme keys differently from the name: %s vs %s", got, want)
	}

	// A registered custom name for the identical tree.
	custom, err := merge.FromTree(sch.Tree())
	if err != nil {
		t.Fatal(err)
	}
	if err := merge.Register("keytest-2sc3", custom); err != nil {
		t.Fatal(err)
	}
	defer merge.Unregister("keytest-2sc3")
	registered := base
	registered.Scheme = "keytest-2sc3"
	if got := keyOf(t, registered); got != want {
		t.Errorf("registered name keys differently from the paper name: %s vs %s", got, want)
	}

	// Labels are presentation, not configuration.
	relabelled := base
	relabelled.Label = "something else entirely"
	if got := keyOf(t, relabelled); got != want {
		t.Errorf("label changed the key: %s vs %s", got, want)
	}
}

// TestKeySeparatesExperiments checks the negative half: every
// configuration field that can change the simulation changes the key.
func TestKeySeparatesExperiments(t *testing.T) {
	base := baseJob()
	want := keyOf(t, base)

	mutations := map[string]func(*sweep.Job){
		"scheme":     func(j *sweep.Job) { j.Scheme = "3SSS" },
		"baseline":   func(j *sweep.Job) { j.Scheme = "IMT" },
		"benchmarks": func(j *sweep.Job) { j.Benchmarks = []string{"mcf", "blowfish", "x264", "fft"} },
		// Thread order is simulation order (merge priority, scheduling),
		// so permuting benchmarks is a different experiment.
		"benchmark order": func(j *sweep.Job) {
			j.Benchmarks = []string{"blowfish", "mcf", "x264", "idct"}
		},
		"seed":           func(j *sweep.Job) { j.Seed = 8 },
		"machine":        func(j *sweep.Job) { j.Machine.IssueWidth = 8 },
		"icache":         func(j *sweep.Job) { j.ICache.Size *= 2 },
		"dcache":         func(j *sweep.Job) { j.DCache.MissPenalty++ },
		"perfect memory": func(j *sweep.Job) { j.PerfectMemory = true },
		"instr limit":    func(j *sweep.Job) { j.InstrLimit++ },
		"timeslice":      func(j *sweep.Job) { j.TimesliceCycles++ },
	}
	for name, mutate := range mutations {
		j := baseJob()
		mutate(&j)
		if got := keyOf(t, j); got == want {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
}

// TestKeyIgnoresGridAxisOrder checks that a grid expanded with its
// axes permuted covers the same key set: what is stored is the job,
// not its position in any particular sweep. (Shared seeding is used
// because per-job derived seeds are index-dependent by design — a
// reordered derived-seed grid is genuinely a different experiment.)
func TestKeyIgnoresGridAxisOrder(t *testing.T) {
	keySet := func(schemes, mixes []string) map[string]bool {
		g := sweep.Grid{Schemes: schemes, Mixes: mixes, InstrLimit: 5_000, Seed: 3, SharedSeed: true}
		jobs, err := g.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[string]bool, len(jobs))
		for _, j := range jobs {
			set[keyOf(t, j)] = true
		}
		if len(set) != len(jobs) {
			t.Fatalf("duplicate keys inside one grid expansion")
		}
		return set
	}
	a := keySet([]string{"2SC3", "3SSS", "C4"}, []string{"LLHH", "HHHH"})
	b := keySet([]string{"C4", "2SC3", "3SSS"}, []string{"HHHH", "LLHH"})
	if len(a) != len(b) {
		t.Fatalf("permuted grid expands to %d keys, want %d", len(b), len(a))
	}
	for k := range a {
		if !b[k] {
			t.Errorf("key %s missing from the permuted expansion", short(k))
		}
	}
}

// TestKeyIgnoresDocumentKeyOrder checks that a job decoded from JSON
// documents with permuted object keys (and an inlined merge spec
// instead of a bare name) hashes identically: the key is a function of
// the configuration, not of its serialisation.
func TestKeyIgnoresDocumentKeyOrder(t *testing.T) {
	docs := []string{
		`{"scheme":"2SC3","benchmarks":["mcf","fft"],"seed":7,"instr_limit":5000,"machine":{"clusters":4,"issue_width":4}}`,
		`{"machine":{"issue_width":4,"clusters":4},"instr_limit":5000,"seed":7,"benchmarks":["mcf","fft"],"scheme":"2SC3"}`,
		`{"seed":7,"merge":{"name":"2SC3","tree":"C3(S(T0,T1),T2,T3)"},"benchmarks":["mcf","fft"],"instr_limit":5000,"machine":{"clusters":4,"issue_width":4}}`,
	}
	var want string
	for i, doc := range docs {
		var wj api.Job
		if err := json.Unmarshal([]byte(doc), &wj); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		j, err := wj.Sweep()
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		got := keyOf(t, j)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("doc %d keys to %s, doc 0 to %s", i, short(got), short(want))
		}
	}
}

// TestKeyRejectsUnresolvableSchemes checks that an unknown scheme is a
// keying error (surfacing before anything touches the disk), not a
// silent bucket.
func TestKeyRejectsUnresolvableSchemes(t *testing.T) {
	j := baseJob()
	j.Scheme = "no-such-scheme"
	if _, err := Key(j); err == nil {
		t.Error("unresolvable scheme produced a key")
	}
}
