// Package resultstore is the disk-backed, content-addressed result
// store of the sweep engine: every completed job is persisted under a
// canonical hash of its full configuration, so a repeated job — inside
// any sweep, submitted by any client, before or after a process
// restart — is served from disk instead of re-simulated.
//
// The store is keyed per job, not per job set. A sweep that shares
// even one job with an earlier sweep reuses that job's result, which
// is what makes a partial grid re-run cheap: only the jobs that
// actually changed simulate.
//
// Correctness rests on two contracts. The engine's determinism
// contract says a job's result is a pure function of its
// configuration, so serving a stored result is indistinguishable from
// re-running the job. The keying contract (Key) says two jobs hash
// equal exactly when that function's inputs are equal — spelling
// differences that cannot change the result (a scheme referenced by
// registered name versus an inlined tree, a job's display label) are
// canonicalised away, while anything that can (seed, machine, caches,
// budget) is part of the hash. A third version, SchemaVersion, stamps
// the simulator's result semantics: entries written by a simulator
// whose outputs mean something else are misses, never wrong answers.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"vliwmt/internal/api"
	"vliwmt/internal/merge"
	"vliwmt/internal/sweep"
)

// SchemaVersion identifies the simulator's result semantics. Bump it
// when the meaning of a sim.Result field changes — when a counter
// starts counting something else, a stat changes units, or the
// simulated behaviour intentionally diverges — so every stored entry
// (and committed golden corpus) written under the old semantics is
// invalidated wholesale instead of being served as a wrong answer.
// Pure additions do not need a bump: old entries simply lack the new
// field, which decodes to its zero value.
const SchemaVersion = 1

// keyDoc is the canonical hash pre-image of one job. Field order is
// fixed by the struct (encoding/json marshals structs in declaration
// order), every semantically relevant field is present, and the
// scheme is reduced to its canonical spelling — so the hash does not
// depend on how the job was written down, only on what it simulates.
type keyDoc struct {
	Schema     int             `json:"schema"`
	Scheme     string          `json:"scheme"`
	Contexts   int             `json:"contexts"`
	Benchmarks []string        `json:"benchmarks"`
	Machine    api.Machine     `json:"machine"`
	ICache     api.CacheConfig `json:"icache"`
	DCache     api.CacheConfig `json:"dcache"`
	Perfect    bool            `json:"perfect_memory"`
	Instr      int64           `json:"instr_limit"`
	Timeslice  int64           `json:"timeslice_cycles"`
	Seed       uint64          `json:"seed"`
}

// canonicalScheme reduces a job's merge control to one spelling: the
// canonical tree expression for tree-backed schemes (whether the job
// named a paper scheme, a registered custom name, a tree expression or
// carried a typed Merge value), the baseline name for IMT/BMT, and ""
// for single-context multitasking. Labels and registered names do not
// survive, so a scheme hashes the same however it was referenced.
func canonicalScheme(j sweep.Job) (string, error) {
	var s merge.Scheme
	if !j.Merge.IsZero() {
		s = j.Merge
	} else if j.Scheme != "" {
		var err error
		if s, err = merge.Resolve(j.Scheme); err != nil {
			return "", err
		}
	}
	if t := s.Tree(); t != nil {
		return t.String(), nil
	}
	return s.Name(), nil // baseline name, or "" for the zero Scheme
}

// Key returns the job's content hash: a SHA-256 over the canonical
// key document. Two jobs share a key exactly when the determinism
// contract guarantees identical results; see the package comment for
// what is canonicalised away and why SchemaVersion is hashed.
func Key(j sweep.Job) (string, error) {
	scheme, err := canonicalScheme(j)
	if err != nil {
		return "", fmt.Errorf("resultstore: key: %w", err)
	}
	doc := keyDoc{
		Schema:     SchemaVersion,
		Scheme:     scheme,
		Contexts:   j.EffectiveContexts(),
		Benchmarks: j.Benchmarks,
		Machine:    api.MachineFrom(j.Machine),
		ICache:     api.CacheConfigFrom(j.ICache),
		DCache:     api.CacheConfigFrom(j.DCache),
		Perfect:    j.PerfectMemory,
		Instr:      j.InstrLimit,
		Timeslice:  j.TimesliceCycles,
		Seed:       j.Seed,
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("resultstore: key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
