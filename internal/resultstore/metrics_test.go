package resultstore

import (
	"os"
	"testing"
	"time"

	"vliwmt/internal/telemetry"
)

// TestStoreTelemetry drives one entry through the full probe
// lifecycle — cold miss, put, warm hit, corrupt read-failure — and
// checks each process-wide instrument moved accordingly. Read
// failures must count as both a failure and a miss: to a scrape they
// are cache misses first, data-integrity events second.
func TestStoreTelemetry(t *testing.T) {
	s := Open(t.TempDir())
	j := baseJob()
	before := telemetry.Default().Snapshot()
	delta := func(after telemetry.Snapshot, name string) int64 {
		return after.Counter(name) - before.Counter(name)
	}

	if _, _, ok := s.Get(j); ok {
		t.Fatal("empty store claims a hit")
	}
	mustPut(t, s, j, fakeResult(1), time.Second)
	if _, _, ok := s.Get(j); !ok {
		t.Fatal("stored entry not served back")
	}
	if err := os.WriteFile(entryPath(t, s, j), []byte("\x00garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(j); ok {
		t.Fatal("corrupt entry was served")
	}

	after := telemetry.Default().Snapshot()
	if d := delta(after, "store_hits_total"); d != 1 {
		t.Errorf("store_hits_total moved by %d, want 1", d)
	}
	if d := delta(after, "store_misses_total"); d != 2 {
		t.Errorf("store_misses_total moved by %d, want 2 (cold probe + failed read)", d)
	}
	if d := delta(after, "store_read_failures_total"); d != 1 {
		t.Errorf("store_read_failures_total moved by %d, want 1", d)
	}
	if d := delta(after, "store_puts_total"); d != 1 {
		t.Errorf("store_puts_total moved by %d, want 1", d)
	}
	if d := delta(after, "store_bytes_written_total"); d <= 0 {
		t.Errorf("store_bytes_written_total moved by %d, want > 0", d)
	}
	if d := delta(after, "store_bytes_read_total"); d <= 0 {
		t.Errorf("store_bytes_read_total moved by %d, want > 0", d)
	}
	hb, ha := before.Histograms["store_probe_duration_seconds"], after.Histograms["store_probe_duration_seconds"]
	if d := ha.Count - hb.Count; d != 3 {
		t.Errorf("store_probe_duration_seconds observed %d probes, want 3", d)
	}
	eb, ea := before.Histograms["store_entry_bytes"], after.Histograms["store_entry_bytes"]
	if d := ea.Count - eb.Count; d != 1 {
		t.Errorf("store_entry_bytes observed %d entries, want 1", d)
	}
}
