package resultstore

import (
	"time"

	"vliwmt/internal/telemetry"
)

// Process-wide store instruments. Unlike Stats (per-handle counters,
// used by GET /v1/store), these aggregate every handle in the process
// — which is what a scrape wants: "is the disk cache working", not
// "whose handle is it".
var (
	metHits = telemetry.NewCounter("store_hits_total",
		"Store probes served from disk.")
	metMisses = telemetry.NewCounter("store_misses_total",
		"Store probes that fell through to simulation (including read failures).")
	metReadFailures = telemetry.NewCounter("store_read_failures_total",
		"Store probes that found an entry but could not use it (torn, corrupt, schema or key mismatch); always also counted as misses.")
	metPuts = telemetry.NewCounter("store_puts_total",
		"Entries written.")
	metBytesRead = telemetry.NewCounter("store_bytes_read_total",
		"Entry bytes read by probes (hits only; failed reads count what was read).")
	metBytesWritten = telemetry.NewCounter("store_bytes_written_total",
		"Entry bytes written by puts.")
	metProbeDuration = telemetry.NewHistogram("store_probe_duration_seconds",
		"Wall-clock Get latency, hits and misses alike.",
		telemetry.ProbeBuckets)
	metEntryBytes = telemetry.NewHistogram("store_entry_bytes",
		"Size distribution of entries written.",
		telemetry.SizeBuckets)
)

// observeProbe records one Get latency. A named function rather than
// a closure so that deferring it from the probe hot path does not
// allocate.
//
//vliw:hotpath
func observeProbe(start time.Time) {
	//vliwvet:allow detpure probe latency is telemetry, not simulation state
	metProbeDuration.Observe(time.Since(start).Seconds())
}
