package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"vliwmt/internal/cache"
	"vliwmt/internal/sim"
	"vliwmt/internal/sweep"
)

// fakeResult builds a fully populated simulation result; the store
// never interprets results, so tests don't need to run the simulator.
func fakeResult(n int64) *sim.Result {
	return &sim.Result{
		Cycles:    1000 + n,
		Instrs:    20_000,
		Ops:       30_000 + n,
		IPC:       float64(30_000+n) / float64(1000+n),
		MergeHist: []int64{1, 2, 3, 4, n},
		Threads: []sim.ThreadStats{
			{Name: "mcf", Instrs: 5000, Ops: 7500, ScheduledCycles: 900, ConflictCycles: 3, StallMem: 11, StallFetch: 2, StallBranch: 5},
		},
		ICache:      cache.Stats{Accesses: 100, Misses: 10, Writebacks: 1},
		DCache:      cache.Stats{Accesses: 200, Misses: 20, Writebacks: 2},
		IssueWidth:  16,
		EmptyCycles: 17,
	}
}

func mustPut(t *testing.T, s *Store, j sweep.Job, r *sim.Result, elapsed time.Duration) {
	t.Helper()
	if err := s.Put(j, r, elapsed); err != nil {
		t.Fatal(err)
	}
}

// entryPath locates the on-disk file of a job's entry.
func entryPath(t *testing.T, s *Store, j sweep.Job) string {
	t.Helper()
	return s.path(keyOf(t, j))
}

func TestStoreRoundTrip(t *testing.T) {
	s := Open(t.TempDir())
	j := baseJob()
	want := fakeResult(1)
	elapsed := 123456789 * time.Nanosecond

	if _, _, ok := s.Get(j); ok {
		t.Fatal("empty store claims a hit")
	}
	mustPut(t, s, j, want, elapsed)
	got, gotElapsed, ok := s.Get(j)
	if !ok {
		t.Fatal("stored entry not served back")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reloaded result drifted:\n got %+v\nwant %+v", got, want)
	}
	if gotElapsed != elapsed {
		t.Errorf("elapsed replayed as %v, want bit-exact %v", gotElapsed, elapsed)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats %+v, want 1 hit, 1 miss, 1 put", st)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d, %v; want 1", n, err)
	}

	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(j); ok {
		t.Error("cleared store still serves entries")
	}
}

// TestStoreCorruptionIsAMiss checks the store's safety property: a
// damaged entry — truncated mid-write-tear, overwritten with garbage,
// written under a different schema version, or filed under the wrong
// key — is silently re-simulated, never served.
func TestStoreCorruptionIsAMiss(t *testing.T) {
	corruptions := map[string]func(path string) error{
		"truncated": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:len(b)/2], 0o644)
		},
		"garbage": func(path string) error {
			return os.WriteFile(path, []byte("\x00\xffnot json at all"), 0o644)
		},
		"empty": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
		"schema mismatch": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			doctored := strings.Replace(string(b),
				fmt.Sprintf(`"schema": %d`, SchemaVersion),
				fmt.Sprintf(`"schema": %d`, SchemaVersion+1), 1)
			if doctored == string(b) {
				return fmt.Errorf("schema line not found in %s", path)
			}
			return os.WriteFile(path, []byte(doctored), 0o644)
		},
		"wrong filename": func(path string) error {
			other := filepath.Join(filepath.Dir(path), strings.Repeat("ab", 32)+".json")
			return os.Rename(path, other)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := Open(t.TempDir())
			j := baseJob()
			mustPut(t, s, j, fakeResult(1), time.Second)
			path := entryPath(t, s, j)
			if err := corrupt(path); err != nil {
				t.Fatal(err)
			}
			if _, _, ok := s.Get(j); ok {
				t.Fatal("corrupt entry was served")
			}
			// And the store heals: a fresh Put over the damage serves again.
			if name != "wrong filename" {
				mustPut(t, s, j, fakeResult(1), time.Second)
				if _, _, ok := s.Get(j); !ok {
					t.Fatal("re-put after corruption still misses")
				}
			}
		})
	}

	// The wrong-filename case must also not poison snapshots.
	s := Open(t.TempDir())
	j := baseJob()
	mustPut(t, s, j, fakeResult(1), time.Second)
	path := entryPath(t, s, j)
	if err := os.Rename(path, filepath.Join(filepath.Dir(path), strings.Repeat("cd", 32)+".json")); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 0 {
		t.Errorf("snapshot includes a mis-filed entry: %+v", snap.Entries)
	}
}

// TestStoreConcurrentWriters hammers one directory from many
// goroutines — repeated writers of the same keys racing readers and a
// Clear — asserting (under -race in CI) that nothing tears: every Get
// either misses or returns a complete, correct entry.
func TestStoreConcurrentWriters(t *testing.T) {
	s := Open(t.TempDir())
	jobs := make([]sweep.Job, 8)
	for i := range jobs {
		jobs[i] = baseJob()
		jobs[i].Seed = uint64(i + 1)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				j := jobs[(w+round)%len(jobs)]
				if err := s.Put(j, fakeResult(int64(j.Seed)), time.Duration(j.Seed)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if res, _, ok := s.Get(j); ok {
					if want := fakeResult(int64(j.Seed)); !reflect.DeepEqual(res, want) {
						t.Errorf("torn or mixed-up read: got %+v, want %+v", res, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Clear(); err != nil {
			t.Errorf("clear: %v", err)
		}
	}()
	wg.Wait()

	// After the dust settles every job can be stored and served.
	for _, j := range jobs {
		mustPut(t, s, j, fakeResult(int64(j.Seed)), time.Duration(j.Seed))
		if _, _, ok := s.Get(j); !ok {
			t.Errorf("job seed=%d not served after concurrent phase", j.Seed)
		}
	}
}

// TestZeroStore checks the disabled store: everything is a no-op miss.
func TestZeroStore(t *testing.T) {
	s := Open("")
	j := baseJob()
	if err := s.Put(j, fakeResult(1), time.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(j); ok {
		t.Error("disabled store claims a hit")
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != 0 {
		t.Errorf("disabled store Len = %d, %v", n, err)
	}
}

// TestSnapshotAndDiff exercises the conformance path end to end on
// synthetic data: snapshot a store, perturb one entry, and check the
// diff pinpoints exactly the changed metrics plus one-sided entries.
func TestSnapshotAndDiff(t *testing.T) {
	s := Open(t.TempDir())
	a, b, c := baseJob(), baseJob(), baseJob()
	b.Seed, c.Seed = 2, 3
	mustPut(t, s, a, fakeResult(1), time.Second)
	mustPut(t, s, b, fakeResult(2), time.Second)
	mustPut(t, s, c, fakeResult(3), time.Second)

	old, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Entries) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(old.Entries))
	}
	if d := DiffSnapshots(old, old); !d.Clean() || d.Identical != 3 {
		t.Fatalf("self-diff not clean: %+v", d)
	}

	// Perturb one entry's cycles and IPC, drop another, add a new one.
	perturbed := fakeResult(1)
	perturbed.Cycles += 5
	perturbed.IPC = float64(perturbed.Ops) / float64(perturbed.Cycles)
	mustPut(t, s, a, perturbed, time.Second)
	cPath := entryPath(t, s, c)
	if err := os.Remove(cPath); err != nil {
		t.Fatal(err)
	}
	d := baseJob()
	d.Seed = 4
	mustPut(t, s, d, fakeResult(4), time.Second)

	cur, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	diff := DiffSnapshots(old, cur)
	if diff.Clean() || diff.Identical != 1 {
		t.Fatalf("diff = %+v, want 1 identical and 3 divergences", diff)
	}
	changed, onlyOld, onlyNew := diff.Counts()
	if changed != 1 || onlyOld != 1 || onlyNew != 1 {
		t.Fatalf("counts = %d changed, %d only-old, %d only-new; want 1 each", changed, onlyOld, onlyNew)
	}
	for _, e := range diff.Entries {
		if e.Status != StatusChanged {
			continue
		}
		fields := map[string]bool{}
		for _, f := range e.Fields {
			fields[f.Field] = true
		}
		if !fields["cycles"] || !fields["ipc"] || len(fields) != 2 {
			t.Errorf("changed entry reports fields %v, want exactly cycles and ipc", e.Fields)
		}
	}

	// The rendered form names the moved metric.
	var sb strings.Builder
	diff.WriteText(&sb, "old", "new")
	if out := sb.String(); !strings.Contains(out, "cycles") || !strings.Contains(out, "1 identical, 1 changed") {
		t.Errorf("rendered diff missing expectations:\n%s", out)
	}
}
