package resultstore

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"vliwmt/internal/api"
)

// FieldDelta is one metric that differs between two snapshots of the
// same job: the field's wire name and both rendered values.
type FieldDelta struct {
	Field string `json:"field"`
	Old   string `json:"old"`
	New   string `json:"new"`
}

// EntryStatus classifies one diverging snapshot entry.
type EntryStatus string

const (
	// StatusChanged: the job is in both snapshots with different results.
	StatusChanged EntryStatus = "changed"
	// StatusOnlyOld: the job is only in the old snapshot.
	StatusOnlyOld EntryStatus = "only-old"
	// StatusOnlyNew: the job is only in the new snapshot.
	StatusOnlyNew EntryStatus = "only-new"
)

// EntryDiff is one diverging entry: which job, how it diverged, and —
// for changed entries — every metric that moved.
type EntryDiff struct {
	Key    string       `json:"key"`
	Label  string       `json:"label,omitempty"`
	Status EntryStatus  `json:"status"`
	Fields []FieldDelta `json:"fields,omitempty"`
}

// Diff is the comparison of two snapshots, keyed by job content hash.
// Identical is the count of jobs whose results are bit-identical;
// Entries lists every divergence in key order.
type Diff struct {
	Identical int         `json:"identical"`
	Entries   []EntryDiff `json:"entries,omitempty"`
}

// Clean reports whether the two snapshots agree on every shared job
// and cover the same job set.
func (d Diff) Clean() bool { return len(d.Entries) == 0 }

// Counts returns how many entries changed, are only in the old
// snapshot, and are only in the new one.
func (d Diff) Counts() (changed, onlyOld, onlyNew int) {
	for _, e := range d.Entries {
		switch e.Status {
		case StatusChanged:
			changed++
		case StatusOnlyOld:
			onlyOld++
		case StatusOnlyNew:
			onlyNew++
		}
	}
	return
}

// DiffSnapshots compares two snapshots entry by entry. Jobs are
// matched by content key — which already encodes the whole
// configuration — so only results are compared; a changed entry lists
// every diverging metric. Entries present on one side only are
// reported too: a baseline that silently lost coverage is as much a
// regression as one that changed numbers.
func DiffSnapshots(old, new Snapshot) Diff {
	oldByKey := make(map[string]Entry, len(old.Entries))
	for _, e := range old.Entries {
		oldByKey[e.Key] = e
	}
	newKeys := make(map[string]bool, len(new.Entries))

	var d Diff
	for _, ne := range new.Entries {
		newKeys[ne.Key] = true
		oe, ok := oldByKey[ne.Key]
		if !ok {
			d.Entries = append(d.Entries, EntryDiff{Key: ne.Key, Label: ne.Label, Status: StatusOnlyNew})
			continue
		}
		if fields := simDeltas(oe.Sim, ne.Sim); len(fields) > 0 {
			d.Entries = append(d.Entries, EntryDiff{Key: ne.Key, Label: ne.Label, Status: StatusChanged, Fields: fields})
		} else {
			d.Identical++
		}
	}
	for _, oe := range old.Entries {
		if !newKeys[oe.Key] {
			d.Entries = append(d.Entries, EntryDiff{Key: oe.Key, Label: oe.Label, Status: StatusOnlyOld})
		}
	}
	sort.Slice(d.Entries, func(i, j int) bool { return d.Entries[i].Key < d.Entries[j].Key })
	return d
}

// deltaCollector accumulates field deltas with typed renderers.
type deltaCollector []FieldDelta

func (c *deltaCollector) ints(field string, a, b int64) {
	if a != b {
		*c = append(*c, FieldDelta{field, strconv.FormatInt(a, 10), strconv.FormatInt(b, 10)})
	}
}

func (c *deltaCollector) floats(field string, a, b float64) {
	if a != b {
		*c = append(*c, FieldDelta{
			field,
			strconv.FormatFloat(a, 'g', -1, 64),
			strconv.FormatFloat(b, 'g', -1, 64),
		})
	}
}

func (c *deltaCollector) bools(field string, a, b bool) {
	if a != b {
		*c = append(*c, FieldDelta{field, strconv.FormatBool(a), strconv.FormatBool(b)})
	}
}

// simDeltas enumerates every diverging field of two wire results. The
// enumeration is exhaustive over api.SimResult — each field appears
// here by name — so "no deltas" is exactly "bit-identical result".
func simDeltas(a, b api.SimResult) []FieldDelta {
	var c deltaCollector
	c.ints("cycles", a.Cycles, b.Cycles)
	c.ints("instrs", a.Instrs, b.Instrs)
	c.ints("ops", a.Ops, b.Ops)
	c.floats("ipc", a.IPC, b.IPC)
	c.ints("empty_cycles", a.EmptyCycles, b.EmptyCycles)
	c.ints("issue_width", int64(a.IssueWidth), int64(b.IssueWidth))
	c.bools("timed_out", a.TimedOut, b.TimedOut)

	if len(a.MergeHist) != len(b.MergeHist) {
		c.ints("merge_hist(len)", int64(len(a.MergeHist)), int64(len(b.MergeHist)))
	} else {
		for i := range a.MergeHist {
			c.ints(fmt.Sprintf("merge_hist[%d]", i), a.MergeHist[i], b.MergeHist[i])
		}
	}

	c.ints("icache.accesses", a.ICache.Accesses, b.ICache.Accesses)
	c.ints("icache.misses", a.ICache.Misses, b.ICache.Misses)
	c.ints("icache.writebacks", a.ICache.Writebacks, b.ICache.Writebacks)
	c.ints("dcache.accesses", a.DCache.Accesses, b.DCache.Accesses)
	c.ints("dcache.misses", a.DCache.Misses, b.DCache.Misses)
	c.ints("dcache.writebacks", a.DCache.Writebacks, b.DCache.Writebacks)

	if len(a.Threads) != len(b.Threads) {
		c.ints("threads(len)", int64(len(a.Threads)), int64(len(b.Threads)))
		return c
	}
	for i := range a.Threads {
		at, bt := a.Threads[i], b.Threads[i]
		pre := fmt.Sprintf("threads[%d].", i)
		if at.Name != bt.Name {
			c = append(c, FieldDelta{pre + "name", at.Name, bt.Name})
		}
		c.ints(pre+"instrs", at.Instrs, bt.Instrs)
		c.ints(pre+"ops", at.Ops, bt.Ops)
		c.ints(pre+"scheduled_cycles", at.ScheduledCycles, bt.ScheduledCycles)
		c.ints(pre+"conflict_cycles", at.ConflictCycles, bt.ConflictCycles)
		c.ints(pre+"stall_mem", at.StallMem, bt.StallMem)
		c.ints(pre+"stall_fetch", at.StallFetch, bt.StallFetch)
		c.ints(pre+"stall_branch", at.StallBranch, bt.StallBranch)
	}
	return c
}

// WriteText renders the diff for humans: every divergence with its
// per-metric deltas, then a one-line summary. oldName and newName
// label the two sides (e.g. the paths vliwdiff was given).
func (d Diff) WriteText(w io.Writer, oldName, newName string) {
	for _, e := range d.Entries {
		label := e.Label
		if label == "" {
			label = e.Key
		}
		switch e.Status {
		case StatusOnlyOld:
			fmt.Fprintf(w, "- %s (%s): only in %s\n", label, short(e.Key), oldName)
		case StatusOnlyNew:
			fmt.Fprintf(w, "+ %s (%s): only in %s\n", label, short(e.Key), newName)
		case StatusChanged:
			fmt.Fprintf(w, "~ %s (%s):\n", label, short(e.Key))
			for _, f := range e.Fields {
				fmt.Fprintf(w, "    %-24s %s -> %s\n", f.Field, f.Old, f.New)
			}
		}
	}
	changed, onlyOld, onlyNew := d.Counts()
	fmt.Fprintf(w, "%d identical, %d changed, %d only in %s, %d only in %s\n",
		d.Identical, changed, onlyOld, oldName, onlyNew, newName)
}

func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
