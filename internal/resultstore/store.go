package resultstore

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"vliwmt/internal/api"
	"vliwmt/internal/sim"
	"vliwmt/internal/sweep"
)

// Store is a content-addressed result cache rooted at a directory.
// Entries live under jobs/<k[:2]>/<k>.json (sharded by the first hash
// byte so no single directory grows into the millions), each written
// atomically via a temp file + rename, so concurrent writers — other
// goroutines, other processes, a server restarting mid-sweep — never
// expose a torn entry to a reader.
//
// Every read failure is a miss: a missing file, a truncated or corrupt
// document, a SchemaVersion mismatch, a key that does not match the
// filename. The store can therefore only ever cost a re-simulation,
// never return a wrong answer. A Store handle is safe for concurrent
// use; the zero Store (empty Dir) stores nothing and never hits.
type Store struct {
	dir string

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
}

// Open returns a Store rooted at dir. The directory is created on
// first Put, not here, so pointing a read path at a never-written
// location is not an error. An empty dir yields a disabled store.
func Open(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store's root directory ("" for a disabled store).
func (s *Store) Dir() string { return s.dir }

// Stats is a point-in-time snapshot of a Store handle's traffic
// counters. Counters are per-handle, not per-directory: two handles on
// one directory count their own traffic.
type Stats struct {
	// Hits counts Gets served from disk.
	Hits int64 `json:"hits"`
	// Misses counts Gets that fell through to simulation.
	Misses int64 `json:"misses"`
	// Puts counts entries written.
	Puts int64 `json:"puts"`
}

// Stats returns the handle's traffic counters.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Puts: s.puts.Load()}
}

// entryFile is the on-disk document of one stored job result. The key
// is stored redundantly with the filename so a renamed or hand-copied
// file is detected; the job is stored in wire form so an entry is
// self-describing (vliwdiff labels deltas from it, and a golden
// corpus entry can be re-run without the grid that produced it).
type entryFile struct {
	Schema int           `json:"schema"`
	Key    string        `json:"key"`
	Job    api.Job       `json:"job"`
	Sim    api.SimResult `json:"sim"`
	// ElapsedNS is integer nanoseconds (not the wire format's float
	// seconds) so the replayed duration is bit-exact: a warm sweep
	// reports precisely the elapsed values the cold sweep did.
	ElapsedNS int64 `json:"elapsed_ns"`
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, "jobs", key[:2], key+".json")
}

// readEntry loads and validates one entry file; any failure is (zero,
// false). The returned size is the bytes read off disk (nonzero even
// for entries that then fail validation) and the failed flag
// distinguishes "file existed but was unusable" — torn, corrupt,
// schema- or key-mismatched — from a plain absence.
func readEntry(path, wantKey string) (e entryFile, size int, failed, ok bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return entryFile{}, 0, !os.IsNotExist(err), false
	}
	if err := json.Unmarshal(b, &e); err != nil {
		return entryFile{}, len(b), true, false
	}
	if e.Schema != SchemaVersion || (wantKey != "" && e.Key != wantKey) {
		return entryFile{}, len(b), true, false
	}
	return e, len(b), false, true
}

// Get returns the stored result for the job, with the wall-clock time
// the original simulation took (replayed so a warm sweep reports the
// same elapsed column as the cold one). Any failure — unkeyable job,
// missing, torn, corrupt or schema-mismatched entry — is a miss; the
// unusable-entry cases additionally count as read failures on the
// store_read_failures_total instrument, so a corrupted store shows up
// on a scrape instead of masquerading as a cold one.
//
//vliw:hotpath
func (s *Store) Get(j sweep.Job) (*sim.Result, time.Duration, bool) {
	if s == nil || s.dir == "" {
		return nil, 0, false
	}
	//vliwvet:allow detpure probe latency is telemetry, not simulation state
	start := time.Now()
	defer observeProbe(start)
	key, err := Key(j)
	if err != nil {
		s.misses.Add(1)
		metMisses.Inc()
		return nil, 0, false
	}
	e, size, failed, ok := readEntry(s.path(key), key)
	metBytesRead.Add(int64(size))
	if !ok {
		if failed {
			metReadFailures.Inc()
		}
		s.misses.Add(1)
		metMisses.Inc()
		return nil, 0, false
	}
	res := e.Sim.Sim()
	s.hits.Add(1)
	metHits.Inc()
	return &res, time.Duration(e.ElapsedNS), true
}

// Put persists one completed job result. The write is atomic (temp
// file in the final directory + rename), so a concurrent Get on the
// same key sees either the old entry or the new one, never a torn
// file; concurrent Puts of the same key are idempotent (identical
// content under the determinism contract) and last-rename-wins.
func (s *Store) Put(j sweep.Job, res *sim.Result, elapsed time.Duration) error {
	if s == nil || s.dir == "" || res == nil {
		return nil
	}
	key, err := Key(j)
	if err != nil {
		return err
	}
	e := entryFile{
		Schema:    SchemaVersion,
		Key:       key,
		Job:       api.JobFrom(j),
		Sim:       api.SimResultFrom(*res),
		ElapsedNS: elapsed.Nanoseconds(),
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", key, err)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	s.puts.Add(1)
	metPuts.Inc()
	metBytesWritten.Add(int64(len(b) + 1))
	metEntryBytes.Observe(float64(len(b) + 1))
	return nil
}

// Len counts the entries on disk — a plain walk, with none of
// Snapshot's path collection and sorting, so polling it (the server's
// GET /v1/store) stays cheap even at millions of entries. A store that
// was never written has zero entries.
func (s *Store) Len() (int, error) {
	if s == nil || s.dir == "" {
		return 0, nil
	}
	n := 0
	err := filepath.WalkDir(filepath.Join(s.dir, "jobs"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if entryFileName(d) {
			n++
		}
		return nil
	})
	if err != nil {
		return n, fmt.Errorf("resultstore: len: %w", err)
	}
	return n, nil
}

// Clear removes every stored entry. The shard tree is deleted
// wholesale; the root directory itself is kept so handles stay valid.
func (s *Store) Clear() error {
	if s == nil || s.dir == "" {
		return nil
	}
	if err := os.RemoveAll(filepath.Join(s.dir, "jobs")); err != nil {
		return fmt.Errorf("resultstore: clear: %w", err)
	}
	return nil
}

// entryFileName reports whether a walked directory entry looks like a
// stored result (and not a shard directory or an in-flight temp file).
func entryFileName(d fs.DirEntry) bool {
	return !d.IsDir() && strings.HasSuffix(d.Name(), ".json") && !strings.HasPrefix(d.Name(), ".")
}

// walk visits every entry file path in deterministic (lexical key)
// order. A missing store is an empty store.
func (s *Store) walk(fn func(path string) error) error {
	if s == nil || s.dir == "" {
		return nil
	}
	root := filepath.Join(s.dir, "jobs")
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if entryFileName(d) {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("resultstore: walk: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}
