package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"vliwmt/internal/api"
	"vliwmt/internal/sweep"
)

// Entry is one job's deterministic outcome inside a Snapshot: its
// content key, a human label, the job in wire form and the full
// simulation result. Wall-clock time is deliberately absent — a
// snapshot is a statement about simulator behaviour, and committing
// one (as a golden baseline) must be reproducible byte for byte.
type Entry struct {
	Key   string        `json:"key"`
	Label string        `json:"label,omitempty"`
	Job   api.Job       `json:"job"`
	Sim   api.SimResult `json:"sim"`
}

// Snapshot is a diffable corpus of job results, sorted by key. It is
// the unit vliwdiff compares and the format of the committed golden
// baseline (testdata/golden): two snapshots of the same jobs taken at
// different commits diff clean exactly when the simulator's output is
// bit-identical across those commits.
type Snapshot struct {
	Schema  int     `json:"schema"`
	Entries []Entry `json:"entries"`
}

// sortEntries orders entries by key, the canonical snapshot order.
func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
}

// Snapshot reads every stored entry into a Snapshot. Unreadable or
// schema-mismatched entry files are skipped, consistent with Get
// treating them as misses.
func (s *Store) Snapshot() (Snapshot, error) {
	snap := Snapshot{Schema: SchemaVersion}
	err := s.walk(func(path string) error {
		key := filepath.Base(path)
		key = key[:len(key)-len(".json")]
		e, _, _, ok := readEntry(path, key)
		if !ok {
			return nil
		}
		snap.Entries = append(snap.Entries, Entry{Key: e.Key, Label: entryLabel(e.Job), Job: e.Job, Sim: e.Sim})
		return nil
	})
	sortEntries(snap.Entries)
	return snap, err
}

// entryLabel derives a display label from a wire job.
func entryLabel(j api.Job) string {
	sj, err := j.Sweep()
	if err != nil {
		return j.Label
	}
	return sj.Describe()
}

// SnapshotResults builds a Snapshot from a completed sweep, keyed like
// the store. Failed or unfinished jobs are rejected: a snapshot
// vouches for every entry it contains.
func SnapshotResults(results []sweep.Result) (Snapshot, error) {
	snap := Snapshot{Schema: SchemaVersion}
	for _, r := range results {
		if r.Err != nil {
			return Snapshot{}, fmt.Errorf("resultstore: snapshot: job %s failed: %w", r.Job.Describe(), r.Err)
		}
		if r.Res == nil {
			return Snapshot{}, fmt.Errorf("resultstore: snapshot: job %s has no result", r.Job.Describe())
		}
		key, err := Key(r.Job)
		if err != nil {
			return Snapshot{}, err
		}
		snap.Entries = append(snap.Entries, Entry{
			Key:   key,
			Label: r.Job.Describe(),
			Job:   api.JobFrom(r.Job),
			Sim:   api.SimResultFrom(*r.Res),
		})
	}
	sortEntries(snap.Entries)
	return snap, nil
}

// Jobs decodes the snapshot's jobs back to an executable job set, in
// entry order — the replay path of the golden conformance harness.
func (s Snapshot) Jobs() ([]sweep.Job, error) {
	jobs := make([]sweep.Job, len(s.Entries))
	for i, e := range s.Entries {
		j, err := e.Job.Sweep()
		if err != nil {
			return nil, fmt.Errorf("resultstore: snapshot entry %s: %w", e.Key, err)
		}
		jobs[i] = j
	}
	return jobs, nil
}

// WriteSnapshot writes the snapshot as deterministic, indented JSON.
// The same simulator state always produces the same bytes, which is
// what makes a committed baseline's `git diff` meaningful.
func WriteSnapshot(path string, snap Snapshot) error {
	sortEntries(snap.Entries)
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("resultstore: encode snapshot: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultstore: write snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("resultstore: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads a snapshot file. Unlike store reads, a corrupt or
// schema-mismatched snapshot is an error, not a miss: a baseline that
// cannot be trusted must fail the comparison loudly.
func ReadSnapshot(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("resultstore: read snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("resultstore: read snapshot %s: %w", path, err)
	}
	if snap.Schema != SchemaVersion {
		return Snapshot{}, fmt.Errorf("resultstore: snapshot %s has schema %d, this build speaks %d (regenerate the baseline)",
			path, snap.Schema, SchemaVersion)
	}
	sortEntries(snap.Entries)
	return snap, nil
}

// SnapshotFrom loads a snapshot from a path that is either a store
// directory or a snapshot JSON file — the two source kinds vliwdiff
// accepts interchangeably.
func SnapshotFrom(path string) (Snapshot, error) {
	info, err := os.Stat(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("resultstore: %w", err)
	}
	if info.IsDir() {
		return Open(path).Snapshot()
	}
	return ReadSnapshot(path)
}
