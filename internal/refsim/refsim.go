// Package refsim is the reference simulator oracle: the original naive
// per-cycle loop of internal/sim, kept verbatim in spirit — one full
// iteration per cycle with no stall fast-forward, selection through the
// recursive merge-tree walk (Scheme.ReferenceSelector) instead of the
// compiled evaluator, and no hot-path shortcuts.
//
// It exists so the optimized sim.Run can be proven bit-identical: the
// differential tests in internal/sim run both loops across the full
// scheme/workload/seed matrix and require equal Results. Keep this
// package boring — any optimization added here defeats its purpose. If
// simulator *semantics* change (not performance), change both loops in
// the same commit.
package refsim

import (
	"fmt"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/program"
	"vliwmt/internal/sim"
)

type taskState struct {
	walker  *program.Walker
	readyAt int64
	fetched bool
	done    bool
	stats   sim.ThreadStats
}

// xorshift64 for OS scheduling decisions; must match sim exactly.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Run simulates tasks on the configured processor with the naive loop.
// It accepts exactly the configurations sim.Run accepts and must return
// exactly the Result sim.Run returns.
func Run(cfg sim.Config, tasks []sim.Task) (*sim.Result, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("refsim: no tasks")
	}
	if cfg.Contexts < 1 {
		return nil, fmt.Errorf("refsim: %d contexts", cfg.Contexts)
	}
	if cfg.InstrLimit < 1 {
		return nil, fmt.Errorf("refsim: instruction limit %d", cfg.InstrLimit)
	}
	if cfg.TimesliceCycles <= 0 {
		cfg.TimesliceCycles = 1_000_000
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 400 * cfg.InstrLimit
	}
	var sel merge.Selector
	var err error
	if cfg.Contexts == 1 {
		sel = &merge.IMT{NumPorts: 1} // trivial single-thread issue
	} else {
		sch := cfg.Merge
		if sch.IsZero() {
			if sch, err = merge.Resolve(cfg.Scheme); err != nil {
				return nil, fmt.Errorf("refsim: %w", err)
			}
		}
		if sel, err = sch.ReferenceSelector(cfg.Contexts); err != nil {
			return nil, fmt.Errorf("refsim: %w", err)
		}
		if sel.Ports() != cfg.Contexts {
			return nil, fmt.Errorf("refsim: scheme %s has %d ports, machine has %d contexts", sch.Name(), sel.Ports(), cfg.Contexts)
		}
	}
	var ic, dc *cache.Cache
	if !cfg.PerfectMemory {
		if ic, err = cache.New(cfg.ICache); err != nil {
			return nil, fmt.Errorf("refsim: icache: %w", err)
		}
		if dc, err = cache.New(cfg.DCache); err != nil {
			return nil, fmt.Errorf("refsim: dcache: %w", err)
		}
	}

	m := cfg.Machine
	states := make([]*taskState, len(tasks))
	for i, t := range tasks {
		if t.Prog == nil {
			return nil, fmt.Errorf("refsim: task %d (%s) has no program", i, t.Name)
		}
		if err := t.Prog.Validate(&m); err != nil {
			return nil, fmt.Errorf("refsim: task %s: %w", t.Name, err)
		}
		seed := cfg.Seed*0x9e3779b97f4a7c15 + uint64(i+1)*0xbf58476d1ce4e5b9
		states[i] = &taskState{
			walker: program.NewWalker(t.Prog, seed, uint64(i+1)<<32, uint64(i+1)<<33),
			stats:  sim.ThreadStats{Name: t.Name},
		}
	}

	osRng := rng{s: cfg.Seed ^ 0xd1b54a32d192ed03}
	if osRng.s == 0 {
		osRng.s = 1
	}

	// running maps hardware contexts to task indices (-1 = idle).
	running := make([]int, cfg.Contexts)
	pool := make([]int, 0, len(tasks)) // descheduled, not done
	for i := range tasks {
		pool = append(pool, i)
	}
	for i := range running {
		running[i] = -1
	}
	schedule := func() {
		// Return running tasks to the pool, then draw random replacements
		// (the paper picks replacement threads at random for fairness).
		for c, ti := range running {
			if ti >= 0 && !states[ti].done {
				pool = append(pool, ti)
			}
			running[c] = -1
		}
		for c := 0; c < cfg.Contexts && len(pool) > 0; c++ {
			k := osRng.intn(len(pool))
			running[c] = pool[k]
			pool = append(pool[:k], pool[k+1:]...)
		}
	}
	schedule()

	res := &sim.Result{
		MergeHist:  make([]int64, cfg.Contexts+1),
		IssueWidth: m.TotalIssueWidth(),
	}
	cands := make([]isa.Occupancy, cfg.Contexts)
	ports := make([]int, cfg.Contexts) // port -> context mapping
	finished := false

	var cycle int64
	for cycle = 0; cycle < cfg.MaxCycles && !finished; cycle++ {
		if cycle > 0 && cycle%cfg.TimesliceCycles == 0 && len(tasks) > cfg.Contexts {
			schedule()
		}
		// Priority rotation: the thread-to-port mapping advances each
		// cycle so every thread takes every position in the merge tree.
		rot := 0
		if !cfg.FixedPriority {
			rot = int(cycle % int64(cfg.Contexts))
		}
		var valid uint32
		for p := 0; p < cfg.Contexts; p++ {
			ctx := (p + rot) % cfg.Contexts
			ports[p] = ctx
			ti := running[ctx]
			if ti < 0 {
				continue
			}
			st := states[ti]
			if st.done || st.readyAt > cycle {
				continue
			}
			if !st.fetched {
				_, addr := st.walker.Current()
				st.fetched = true // the line arrives during any stall
				if ic != nil && !ic.Access(addr, false) {
					pen := int64(ic.MissPenalty())
					st.readyAt = cycle + pen
					st.stats.StallFetch += pen
					continue
				}
			}
			in, _ := st.walker.Current()
			cands[p] = in.Occ
			valid |= 1 << uint(p)
		}

		selection := sel.Select(&m, cands, valid)
		res.MergeHist[selection.Count()]++
		if selection.Occ.Ops == 0 {
			res.EmptyCycles++
		}

		for p := 0; p < cfg.Contexts; p++ {
			if valid&(1<<uint(p)) == 0 {
				continue
			}
			ti := running[ports[p]]
			st := states[ti]
			st.stats.ScheduledCycles++
			if !selection.Has(p) {
				st.stats.ConflictCycles++
				continue
			}
			info := st.walker.Retire()
			st.fetched = false
			st.stats.Instrs++
			st.stats.Ops += int64(info.Ops)
			res.Instrs++
			res.Ops += int64(info.Ops)

			var memStall, brStall int64
			for _, acc := range info.Mem {
				if dc != nil && !dc.Access(acc.Addr, acc.Store) {
					memStall += int64(dc.MissPenalty())
				}
			}
			if info.Taken {
				brStall = int64(m.BranchPenalty)
			}
			// Both a blocking miss and a squash stall the front end; they
			// overlap, so the thread resumes after the longer of the two.
			stall := memStall
			if brStall > stall {
				stall = brStall
			}
			if stall > 0 {
				st.readyAt = cycle + 1 + stall
				st.stats.StallMem += memStall
				st.stats.StallBranch += brStall
			}
			if st.walker.Retired >= cfg.InstrLimit {
				st.done = true
				finished = true
			}
		}
	}

	res.Cycles = cycle
	res.TimedOut = !finished
	if res.Cycles > 0 {
		res.IPC = float64(res.Ops) / float64(res.Cycles)
	}
	for _, st := range states {
		res.Threads = append(res.Threads, st.stats)
	}
	if ic != nil {
		res.ICache = ic.Stats
	}
	if dc != nil {
		res.DCache = dc.Stats
	}
	return res, nil
}
