// Package sim is the cycle-level simulator of the multithreaded clustered
// VLIW processor evaluated in the paper: per-cycle instruction fetch
// through a shared ICache, a thread merge stage (any merging scheme from
// internal/merge), issue of the merged execution packet, blocking data
// cache misses, and a 2-cycle squash after taken branches (no branch
// predictor; fall-through is the predicted path).
//
// On top of the core sits the paper's multitasking model: the hardware
// thread contexts are exposed as virtual CPUs, the OS schedules software
// threads onto them in 1M-cycle timeslices, and replacement threads are
// picked at random when a timeslice expires. A run ends when the first
// thread retires its instruction budget.
package sim

import (
	"fmt"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/program"
)

// Config parameterises one simulation run.
type Config struct {
	Machine isa.Machine
	ICache  cache.Config
	DCache  cache.Config
	// PerfectMemory disables both caches (every access hits), producing
	// the paper's IPCp numbers.
	PerfectMemory bool
	// Contexts is the number of hardware thread contexts (virtual CPUs).
	Contexts int
	// Scheme names the merge control: a paper name ("3SSS", "2SC3",
	// "C4", ...), a baseline ("IMT", "BMT"), a name registered with
	// merge.Register, or a canonical tree expression such as
	// "C(S(T0,T1),T2,T3)". Ignored when Contexts == 1 or Merge is set.
	Scheme string
	// Merge, when set, is the merge control as a first-class scheme and
	// takes precedence over Scheme. Unknown names and port/context
	// mismatches fail at Run entry, before any simulation work.
	Merge merge.Scheme
	// TimesliceCycles is the OS scheduling quantum (default 1,000,000).
	TimesliceCycles int64
	// InstrLimit ends the run when any thread retires this many VLIW
	// instructions (the paper uses 100M; tests use much less).
	InstrLimit int64
	// MaxCycles is a safety bound (default 400 * InstrLimit).
	MaxCycles int64
	// FixedPriority disables the default round-robin priority rotation
	// between threads and ports.
	FixedPriority bool
	// Seed drives OS scheduling decisions and per-thread behaviours.
	Seed uint64
}

// DefaultConfig returns the paper's machine: 4 clusters x 4 issue,
// 64KB/4-way/20-cycle I and D caches, 1M-cycle timeslices.
func DefaultConfig() Config {
	return Config{
		Machine:         isa.Default(),
		ICache:          cache.DefaultConfig(),
		DCache:          cache.DefaultConfig(),
		Contexts:        4,
		Scheme:          "3SSS",
		TimesliceCycles: 1_000_000,
		InstrLimit:      1_000_000,
		Seed:            1,
	}
}

// Task is one software thread: a compiled program plus a name for
// reporting.
type Task struct {
	Name string
	Prog *program.Program
}

// ThreadStats reports per-software-thread results.
type ThreadStats struct {
	Name string
	// Instrs and Ops are retired VLIW instructions and operations.
	Instrs, Ops int64
	// ScheduledCycles counts cycles the thread held a hardware context.
	ScheduledCycles int64
	// ConflictCycles counts cycles the thread had an instruction ready
	// but the merge control did not select it.
	ConflictCycles int64
	// StallMem, StallFetch and StallBranch are cycles lost to data-cache
	// misses, instruction-cache misses and taken-branch squash.
	StallMem, StallFetch, StallBranch int64
}

// Result is the outcome of a run.
type Result struct {
	Cycles int64
	Instrs int64
	Ops    int64
	// IPC is operations per cycle (the paper's metric).
	IPC float64
	// MergeHist[k] counts cycles in which k threads issued together.
	MergeHist []int64
	Threads   []ThreadStats
	ICache    cache.Stats
	DCache    cache.Stats
	// IssueWidth is the machine-wide issue width, for waste accounting.
	IssueWidth int
	// EmptyCycles counts cycles in which zero operations issued (no
	// thread selected, or only NOP bundles covering latency gaps).
	EmptyCycles int64
	// TimedOut reports that MaxCycles elapsed before any thread finished.
	TimedOut bool
}

// VerticalWaste returns the fraction of cycles in which no operation
// issued at all — the vertical waste of the paper's Section 1.
func (r *Result) VerticalWaste() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.EmptyCycles) / float64(r.Cycles)
}

// HorizontalWaste returns the fraction of issue slots left empty during
// cycles in which at least one operation issued — the horizontal waste of
// the paper's Section 1. Utilisation, vertical and horizontal waste sum
// to one.
func (r *Result) HorizontalWaste() float64 {
	slots := r.Cycles * int64(r.IssueWidth)
	if slots == 0 {
		return 0
	}
	nonEmptySlots := slots - r.EmptyCycles*int64(r.IssueWidth)
	return float64(nonEmptySlots-r.Ops) / float64(slots)
}

// Utilisation returns the fraction of issue slots that executed an
// operation.
func (r *Result) Utilisation() float64 {
	slots := r.Cycles * int64(r.IssueWidth)
	if slots == 0 {
		return 0
	}
	return float64(r.Ops) / float64(slots)
}

type taskState struct {
	walker  *program.Walker
	readyAt int64
	fetched bool
	done    bool
	stats   ThreadStats
}

// xorshift64 for OS scheduling decisions.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Run simulates tasks on the configured processor.
func Run(cfg Config, tasks []Task) (*Result, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("sim: no tasks")
	}
	if cfg.Contexts < 1 {
		return nil, fmt.Errorf("sim: %d contexts", cfg.Contexts)
	}
	if cfg.InstrLimit < 1 {
		return nil, fmt.Errorf("sim: instruction limit %d", cfg.InstrLimit)
	}
	if cfg.TimesliceCycles <= 0 {
		cfg.TimesliceCycles = 1_000_000
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 400 * cfg.InstrLimit
	}
	var sel merge.Selector
	var err error
	if cfg.Contexts == 1 {
		sel = &merge.IMT{NumPorts: 1} // trivial single-thread issue
	} else {
		sch := cfg.Merge
		if sch.IsZero() {
			if sch, err = merge.Resolve(cfg.Scheme); err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
		}
		if sel, err = sch.Selector(cfg.Contexts); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if sel.Ports() != cfg.Contexts {
			return nil, fmt.Errorf("sim: scheme %s has %d ports, machine has %d contexts", sch.Name(), sel.Ports(), cfg.Contexts)
		}
	}
	var ic, dc *cache.Cache
	if !cfg.PerfectMemory {
		if ic, err = cache.New(cfg.ICache); err != nil {
			return nil, fmt.Errorf("sim: icache: %w", err)
		}
		if dc, err = cache.New(cfg.DCache); err != nil {
			return nil, fmt.Errorf("sim: dcache: %w", err)
		}
	}

	m := cfg.Machine
	states := make([]*taskState, len(tasks))
	for i, t := range tasks {
		if t.Prog == nil {
			return nil, fmt.Errorf("sim: task %d (%s) has no program", i, t.Name)
		}
		if err := t.Prog.Validate(&m); err != nil {
			return nil, fmt.Errorf("sim: task %s: %w", t.Name, err)
		}
		seed := cfg.Seed*0x9e3779b97f4a7c15 + uint64(i+1)*0xbf58476d1ce4e5b9
		states[i] = &taskState{
			walker: program.NewWalker(t.Prog, seed, uint64(i+1)<<32, uint64(i+1)<<33),
			stats:  ThreadStats{Name: t.Name},
		}
	}

	osRng := rng{s: cfg.Seed ^ 0xd1b54a32d192ed03}
	if osRng.s == 0 {
		osRng.s = 1
	}

	// running maps hardware contexts to task indices (-1 = idle).
	running := make([]int, cfg.Contexts)
	pool := make([]int, 0, len(tasks)) // descheduled, not done
	for i := range tasks {
		pool = append(pool, i)
	}
	for i := range running {
		running[i] = -1
	}
	schedule := func() {
		// Return running tasks to the pool, then draw random replacements
		// (the paper picks replacement threads at random for fairness).
		for c, ti := range running {
			if ti >= 0 && !states[ti].done {
				pool = append(pool, ti)
			}
			running[c] = -1
		}
		for c := 0; c < cfg.Contexts && len(pool) > 0; c++ {
			k := osRng.intn(len(pool))
			running[c] = pool[k]
			pool = append(pool[:k], pool[k+1:]...)
		}
	}
	schedule()

	res := &Result{
		MergeHist:  make([]int64, cfg.Contexts+1),
		IssueWidth: m.TotalIssueWidth(),
	}
	cands := make([]*isa.Occupancy, cfg.Contexts)
	ports := make([]int, cfg.Contexts) // port -> context mapping
	finished := false

	var cycle int64
	for cycle = 0; cycle < cfg.MaxCycles && !finished; cycle++ {
		if cycle > 0 && cycle%cfg.TimesliceCycles == 0 && len(tasks) > cfg.Contexts {
			schedule()
		}
		// Priority rotation: the thread-to-port mapping advances each
		// cycle so every thread takes every position in the merge tree.
		rot := 0
		if !cfg.FixedPriority {
			rot = int(cycle % int64(cfg.Contexts))
		}
		for p := 0; p < cfg.Contexts; p++ {
			ctx := (p + rot) % cfg.Contexts
			ports[p] = ctx
			cands[p] = nil
			ti := running[ctx]
			if ti < 0 {
				continue
			}
			st := states[ti]
			if st.done || st.readyAt > cycle {
				continue
			}
			if !st.fetched {
				_, addr := st.walker.Current()
				st.fetched = true // the line arrives during any stall
				if ic != nil && !ic.Access(addr, false) {
					pen := int64(ic.MissPenalty())
					st.readyAt = cycle + pen
					st.stats.StallFetch += pen
					continue
				}
			}
			in, _ := st.walker.Current()
			cands[p] = &in.Occ
		}

		selection := sel.Select(&m, cands)
		res.MergeHist[selection.Count()]++
		if selection.Occ.Ops == 0 {
			res.EmptyCycles++
		}

		for p := 0; p < cfg.Contexts; p++ {
			if cands[p] == nil {
				continue
			}
			ti := running[ports[p]]
			st := states[ti]
			st.stats.ScheduledCycles++
			if !selection.Has(p) {
				st.stats.ConflictCycles++
				continue
			}
			info := st.walker.Retire()
			st.fetched = false
			st.stats.Instrs++
			st.stats.Ops += int64(info.Ops)
			res.Instrs++
			res.Ops += int64(info.Ops)

			var memStall, brStall int64
			for _, acc := range info.Mem {
				if dc != nil && !dc.Access(acc.Addr, acc.Store) {
					memStall += int64(dc.MissPenalty())
				}
			}
			if info.Taken {
				brStall = int64(m.BranchPenalty)
			}
			// Both a blocking miss and a squash stall the front end; they
			// overlap, so the thread resumes after the longer of the two.
			stall := memStall
			if brStall > stall {
				stall = brStall
			}
			if stall > 0 {
				st.readyAt = cycle + 1 + stall
				st.stats.StallMem += memStall
				st.stats.StallBranch += brStall
			}
			if st.walker.Retired >= cfg.InstrLimit {
				st.done = true
				finished = true
			}
		}
	}

	res.Cycles = cycle
	res.TimedOut = !finished
	if res.Cycles > 0 {
		res.IPC = float64(res.Ops) / float64(res.Cycles)
	}
	for _, st := range states {
		res.Threads = append(res.Threads, st.stats)
	}
	if ic != nil {
		res.ICache = ic.Stats
	}
	if dc != nil {
		res.DCache = dc.Stats
	}
	return res, nil
}
