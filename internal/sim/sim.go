// Package sim is the cycle-level simulator of the multithreaded clustered
// VLIW processor evaluated in the paper: per-cycle instruction fetch
// through a shared ICache, a thread merge stage (any merging scheme from
// internal/merge), issue of the merged execution packet, blocking data
// cache misses, and a 2-cycle squash after taken branches (no branch
// predictor; fall-through is the predicted path).
//
// On top of the core sits the paper's multitasking model: the hardware
// thread contexts are exposed as virtual CPUs, the OS schedules software
// threads onto them in 1M-cycle timeslices, and replacement threads are
// picked at random when a timeslice expires. A run ends when the first
// thread retires its instruction budget.
package sim

import (
	"fmt"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/program"
)

// Config parameterises one simulation run.
type Config struct {
	Machine isa.Machine
	ICache  cache.Config
	DCache  cache.Config
	// PerfectMemory disables both caches (every access hits), producing
	// the paper's IPCp numbers.
	PerfectMemory bool
	// Contexts is the number of hardware thread contexts (virtual CPUs).
	Contexts int
	// Scheme names the merge control: a paper name ("3SSS", "2SC3",
	// "C4", ...), a baseline ("IMT", "BMT"), a name registered with
	// merge.Register, or a canonical tree expression such as
	// "C(S(T0,T1),T2,T3)". Ignored when Contexts == 1 or Merge is set.
	Scheme string
	// Merge, when set, is the merge control as a first-class scheme and
	// takes precedence over Scheme. Unknown names and port/context
	// mismatches fail at Run entry, before any simulation work.
	Merge merge.Scheme
	// TimesliceCycles is the OS scheduling quantum (default 1,000,000).
	TimesliceCycles int64
	// InstrLimit ends the run when any thread retires this many VLIW
	// instructions (the paper uses 100M; tests use much less).
	InstrLimit int64
	// MaxCycles is a safety bound (default 400 * InstrLimit).
	MaxCycles int64
	// FixedPriority disables the default round-robin priority rotation
	// between threads and ports.
	FixedPriority bool
	// Seed drives OS scheduling decisions and per-thread behaviours.
	Seed uint64
}

// DefaultConfig returns the paper's machine: 4 clusters x 4 issue,
// 64KB/4-way/20-cycle I and D caches, 1M-cycle timeslices.
func DefaultConfig() Config {
	return Config{
		Machine:         isa.Default(),
		ICache:          cache.DefaultConfig(),
		DCache:          cache.DefaultConfig(),
		Contexts:        4,
		Scheme:          "3SSS",
		TimesliceCycles: 1_000_000,
		InstrLimit:      1_000_000,
		Seed:            1,
	}
}

// Task is one software thread: a compiled program plus a name for
// reporting.
type Task struct {
	Name string
	Prog *program.Program
}

// ThreadStats reports per-software-thread results.
type ThreadStats struct {
	Name string
	// Instrs and Ops are retired VLIW instructions and operations.
	Instrs, Ops int64
	// ScheduledCycles counts cycles the thread held a hardware context.
	ScheduledCycles int64
	// ConflictCycles counts cycles the thread had an instruction ready
	// but the merge control did not select it.
	ConflictCycles int64
	// StallMem, StallFetch and StallBranch are cycles lost to data-cache
	// misses, instruction-cache misses and taken-branch squash.
	StallMem, StallFetch, StallBranch int64
}

// Result is the outcome of a run.
type Result struct {
	Cycles int64
	Instrs int64
	Ops    int64
	// IPC is operations per cycle (the paper's metric).
	IPC float64
	// MergeHist[k] counts cycles in which k threads issued together.
	MergeHist []int64
	Threads   []ThreadStats
	ICache    cache.Stats
	DCache    cache.Stats
	// IssueWidth is the machine-wide issue width, for waste accounting.
	IssueWidth int
	// EmptyCycles counts cycles in which zero operations issued (no
	// thread selected, or only NOP bundles covering latency gaps).
	EmptyCycles int64
	// TimedOut reports that MaxCycles elapsed before any thread finished.
	TimedOut bool
}

// VerticalWaste returns the fraction of cycles in which no operation
// issued at all — the vertical waste of the paper's Section 1.
func (r *Result) VerticalWaste() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.EmptyCycles) / float64(r.Cycles)
}

// HorizontalWaste returns the fraction of issue slots left empty during
// cycles in which at least one operation issued — the horizontal waste of
// the paper's Section 1. Utilisation, vertical and horizontal waste sum
// to one.
func (r *Result) HorizontalWaste() float64 {
	slots := r.Cycles * int64(r.IssueWidth)
	if slots == 0 {
		return 0
	}
	nonEmptySlots := slots - r.EmptyCycles*int64(r.IssueWidth)
	return float64(nonEmptySlots-r.Ops) / float64(slots)
}

// Utilisation returns the fraction of issue slots that executed an
// operation.
func (r *Result) Utilisation() float64 {
	slots := r.Cycles * int64(r.IssueWidth)
	if slots == 0 {
		return 0
	}
	return float64(r.Ops) / float64(slots)
}

type taskState struct {
	walker  *program.Walker
	readyAt int64
	fetched bool
	done    bool
	stats   ThreadStats
}

// xorshift64 for OS scheduling decisions.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// core is the per-run simulator state: every slice and scalar the cycle
// loop touches lives here, allocated once at Run entry so the loop
// itself never allocates (see DESIGN.md; TestSteadyStateZeroAllocs
// enforces it). The hot loop is structured in three layers — candidate
// gathering, merge selection through a compiled evaluator, retirement —
// plus a stall fast-forward that jumps over spans in which every context
// is stalled.
type core struct {
	cfg    Config
	m      isa.Machine
	sel    merge.Selector
	ic, dc *cache.Cache
	states []*taskState
	// running maps hardware contexts to task indices (-1 = idle).
	running []int
	pool    []int // descheduled, not done
	osRng   rng
	// cands/ports are the per-cycle buffers, reused across every cycle
	// and timeslice of the run: cands[p] is the candidate occupancy at
	// merge port p (meaningful only when bit p of the cycle's valid mask
	// is set) and ports[p] is the context mapped to port p under the
	// cycle's priority rotation.
	cands []isa.Occupancy
	ports []int
	res   *Result
	// ffSpans/ffCycles count stall fast-forward jumps and the cycles
	// they skipped. Plain fields bumped inside the loop, flushed to the
	// process-wide telemetry counters once, in finalize — per-run
	// aggregation keeps the hot path free of atomics and allocations.
	ffSpans, ffCycles int64
}

// schedule returns running tasks to the pool, then draws random
// replacements (the paper picks replacement threads at random for
// fairness).
//
// The pool delete deliberately stays the order-preserving O(n)
// copy-down, not an O(1) swap-remove: the drawn index k comes from the
// OS RNG, so which *task* a draw selects depends on the pool's element
// order. Swap-remove would permute that order, pick different
// replacement threads for the same seed, and break both bit-identical
// reproducibility across versions and the refsim differential oracle.
// The pool holds at most len(tasks) entries and schedule runs once per
// 1M-cycle timeslice, so the O(n) delete is irrelevant to throughput.
//
//vliw:hotpath
func (c *core) schedule() {
	for ctx, ti := range c.running {
		if ti >= 0 && !c.states[ti].done {
			c.pool = append(c.pool, ti)
		}
		c.running[ctx] = -1
	}
	for ctx := 0; ctx < c.cfg.Contexts && len(c.pool) > 0; ctx++ {
		k := c.osRng.intn(len(c.pool))
		c.running[ctx] = c.pool[k]
		c.pool = append(c.pool[:k], c.pool[k+1:]...)
	}
}

// nextEvent returns the earliest cycle after now at which a candidate
// can reappear: the soonest readyAt among running threads (a thread
// whose stall already elapsed counts as now+1), the next timeslice
// boundary when descheduled tasks exist, or MaxCycles. Between now and
// that cycle every context stays candidate-free, so the run's state
// cannot change — the fast-forward invariant DESIGN.md spells out.
//
//vliw:hotpath
func (c *core) nextEvent(now int64) int64 {
	next := c.cfg.MaxCycles
	if len(c.states) > c.cfg.Contexts {
		if nb := (now/c.cfg.TimesliceCycles + 1) * c.cfg.TimesliceCycles; nb < next {
			next = nb
		}
	}
	for _, ti := range c.running {
		if ti < 0 {
			continue
		}
		st := c.states[ti]
		if st.done {
			continue
		}
		e := st.readyAt
		if e <= now {
			e = now + 1
		}
		if e < next {
			next = e
		}
	}
	if next <= now {
		next = now + 1
	}
	return next
}

// setupRun validates cfg and tasks, applies the config defaults and
// builds the per-run selector and caches. It is shared between Run and
// RunBatch so a batch lane is configured exactly like a solo run.
func setupRun(cfg Config, tasks []Task) (Config, merge.Selector, *cache.Cache, *cache.Cache, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return cfg, nil, nil, nil, err
	}
	if len(tasks) == 0 {
		return cfg, nil, nil, nil, fmt.Errorf("sim: no tasks")
	}
	if cfg.Contexts < 1 {
		return cfg, nil, nil, nil, fmt.Errorf("sim: %d contexts", cfg.Contexts)
	}
	if cfg.InstrLimit < 1 {
		return cfg, nil, nil, nil, fmt.Errorf("sim: instruction limit %d", cfg.InstrLimit)
	}
	if cfg.TimesliceCycles <= 0 {
		cfg.TimesliceCycles = 1_000_000
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 400 * cfg.InstrLimit
	}
	var sel merge.Selector
	var err error
	if cfg.Contexts == 1 {
		sel = &merge.IMT{NumPorts: 1} // trivial single-thread issue
	} else {
		sch := cfg.Merge
		if sch.IsZero() {
			if sch, err = merge.Resolve(cfg.Scheme); err != nil {
				return cfg, nil, nil, nil, fmt.Errorf("sim: %w", err)
			}
		}
		if sel, err = sch.Selector(cfg.Contexts); err != nil {
			return cfg, nil, nil, nil, fmt.Errorf("sim: %w", err)
		}
		if sel.Ports() != cfg.Contexts {
			return cfg, nil, nil, nil, fmt.Errorf("sim: scheme %s has %d ports, machine has %d contexts", sch.Name(), sel.Ports(), cfg.Contexts)
		}
	}
	var ic, dc *cache.Cache
	if !cfg.PerfectMemory {
		if ic, err = cache.New(cfg.ICache); err != nil {
			return cfg, nil, nil, nil, fmt.Errorf("sim: icache: %w", err)
		}
		if dc, err = cache.New(cfg.DCache); err != nil {
			return cfg, nil, nil, nil, fmt.Errorf("sim: dcache: %w", err)
		}
	}
	m := cfg.Machine
	for i, t := range tasks {
		if t.Prog == nil {
			return cfg, nil, nil, nil, fmt.Errorf("sim: task %d (%s) has no program", i, t.Name)
		}
		if err := t.Prog.Validate(&m); err != nil {
			return cfg, nil, nil, nil, fmt.Errorf("sim: task %s: %w", t.Name, err)
		}
	}
	return cfg, sel, ic, dc, nil
}

// newTaskWalker builds task i's walker: the seed derivation and the
// per-task code/data relocation are part of the determinism contract
// and must be identical on the solo and batched paths.
func newTaskWalker(cfg *Config, i int, t Task) *program.Walker {
	seed := cfg.Seed*0x9e3779b97f4a7c15 + uint64(i+1)*0xbf58476d1ce4e5b9
	return program.NewWalker(t.Prog, seed, uint64(i+1)<<32, uint64(i+1)<<33)
}

// osSeed derives the OS-scheduling RNG state from the run seed.
func osSeed(cfg *Config) uint64 {
	s := cfg.Seed ^ 0xd1b54a32d192ed03
	if s == 0 {
		s = 1
	}
	return s
}

// Run simulates tasks on the configured processor.
func Run(cfg Config, tasks []Task) (*Result, error) {
	cfg, sel, ic, dc, err := setupRun(cfg, tasks)
	if err != nil {
		return nil, err
	}
	m := cfg.Machine
	states := make([]*taskState, len(tasks))
	for i, t := range tasks {
		states[i] = &taskState{
			walker: newTaskWalker(&cfg, i, t),
			stats:  ThreadStats{Name: t.Name},
		}
	}

	c := &core{
		cfg:     cfg,
		m:       m,
		sel:     sel,
		ic:      ic,
		dc:      dc,
		states:  states,
		running: make([]int, cfg.Contexts),
		pool:    make([]int, 0, len(tasks)),
		osRng:   rng{s: osSeed(&cfg)},
		cands:   make([]isa.Occupancy, cfg.Contexts),
		ports:   make([]int, cfg.Contexts),
		res: &Result{
			MergeHist:  make([]int64, cfg.Contexts+1),
			IssueWidth: m.TotalIssueWidth(),
		},
	}
	for i := range tasks {
		c.pool = append(c.pool, i)
	}
	for i := range c.running {
		c.running[i] = -1
	}
	c.schedule()
	return c.run()
}

// retireOne retires the current instruction of st at cycle, updating
// run totals and the thread's stall clock, and reports whether the
// thread hit its instruction budget (ending the run).
//
//vliw:hotpath
func (c *core) retireOne(st *taskState, cycle int64) bool {
	info := st.walker.Retire()
	st.fetched = false
	st.stats.Instrs++
	st.stats.Ops += int64(info.Ops)
	c.res.Instrs++
	c.res.Ops += int64(info.Ops)

	var memStall, brStall int64
	for _, acc := range info.Mem {
		if c.dc != nil && !c.dc.Access(acc.Addr, acc.Store) {
			memStall += int64(c.dc.MissPenalty())
		}
	}
	if info.Taken {
		brStall = int64(c.m.BranchPenalty)
	}
	// Both a blocking miss and a squash stall the front end; they
	// overlap, so the thread resumes after the longer of the two.
	stall := memStall
	if brStall > stall {
		stall = brStall
	}
	if stall > 0 {
		st.readyAt = cycle + 1 + stall
		st.stats.StallMem += memStall
		st.stats.StallBranch += brStall
	}
	return st.walker.Retired >= c.cfg.InstrLimit
}

// finalize closes the run after the loop exited at cycle.
func (c *core) finalize(cycle int64, finished bool) *Result {
	res := c.res
	res.Cycles = cycle
	res.TimedOut = !finished
	if res.Cycles > 0 {
		res.IPC = float64(res.Ops) / float64(res.Cycles)
	}
	for _, st := range c.states {
		res.Threads = append(res.Threads, st.stats)
	}
	if c.ic != nil {
		res.ICache = c.ic.Stats
	}
	if c.dc != nil {
		res.DCache = c.dc.Stats
	}
	recordRunMetrics(res, c.ffSpans, c.ffCycles)
	return res
}

// runSingle is the single-context cycle loop: with one hardware context
// there is no merge stage (the selector is the trivial one-port IMT, so
// a runnable thread always issues alone), and the loop reduces to
// fetch, retire and stall fast-forward. It must stay bit-identical to
// the generic loop — and therefore to the refsim oracle — for
// Contexts == 1; the differential tests cover it.
//
//vliw:hotpath
func (c *core) runSingle() (*Result, error) {
	cfg, res := c.cfg, c.res
	slicing := len(c.states) > 1
	finished := false

	var cycle int64
	for cycle = 0; cycle < cfg.MaxCycles && !finished; cycle++ {
		if slicing && cycle > 0 && cycle%cfg.TimesliceCycles == 0 {
			c.schedule()
		}
		var st *taskState
		ready := false
		if ti := c.running[0]; ti >= 0 {
			st = c.states[ti]
			ready = !st.done && st.readyAt <= cycle
		}
		if ready && !st.fetched {
			_, addr := st.walker.Current()
			st.fetched = true // the line arrives during any stall
			if c.ic != nil && !c.ic.Access(addr, false) {
				pen := int64(c.ic.MissPenalty())
				st.readyAt = cycle + pen
				st.stats.StallFetch += pen
				ready = false
			}
		}
		if !ready {
			// Stall fast-forward, as in the generic loop.
			span := c.nextEvent(cycle) - cycle
			res.MergeHist[0] += span
			res.EmptyCycles += span
			c.ffSpans++
			c.ffCycles += span
			cycle += span - 1
			continue
		}
		in, _ := st.walker.Current()
		res.MergeHist[1]++
		if in.Occ.Ops == 0 {
			res.EmptyCycles++
		}
		st.stats.ScheduledCycles++
		if c.retireOne(st, cycle) {
			st.done = true
			finished = true
		}
	}
	return c.finalize(cycle, finished), nil
}

// run is the optimized cycle loop. It must stay bit-identical to the
// naive reference loop in internal/refsim — the invariants that make
// the shortcuts sound are spelled out in DESIGN.md, and the refsim
// differential tests enforce the equivalence.
//
//vliw:hotpath
func (c *core) run() (*Result, error) {
	if c.cfg.Contexts == 1 {
		return c.runSingle()
	}
	cfg, res := c.cfg, c.res
	m := &c.m
	nCtx := cfg.Contexts
	slicing := len(c.states) > nCtx
	finished := false

	var cycle int64
	for cycle = 0; cycle < cfg.MaxCycles && !finished; cycle++ {
		if slicing && cycle > 0 && cycle%cfg.TimesliceCycles == 0 {
			c.schedule()
		}
		// Priority rotation: the thread-to-port mapping advances each
		// cycle so every thread takes every position in the merge tree.
		rot := 0
		if !cfg.FixedPriority {
			rot = int(cycle % int64(nCtx))
		}
		var valid uint32
		for p := 0; p < nCtx; p++ {
			ctx := p + rot
			if ctx >= nCtx {
				ctx -= nCtx
			}
			c.ports[p] = ctx
			ti := c.running[ctx]
			if ti < 0 {
				continue
			}
			st := c.states[ti]
			if st.done || st.readyAt > cycle {
				continue
			}
			if !st.fetched {
				_, addr := st.walker.Current()
				st.fetched = true // the line arrives during any stall
				if c.ic != nil && !c.ic.Access(addr, false) {
					pen := int64(c.ic.MissPenalty())
					st.readyAt = cycle + pen
					st.stats.StallFetch += pen
					continue
				}
			}
			in, _ := st.walker.Current()
			c.cands[p] = in.Occ
			valid |= 1 << uint(p)
		}

		if valid == 0 {
			// Stall fast-forward: every context is stalled, idle or
			// descheduled, so cycles from here to the next event (thread
			// wake-up, timeslice boundary, MaxCycles) are all empty. Jump
			// there directly, bulk-accounting the skipped span. Selectors
			// are pure on empty input (Selector contract), so skipping
			// their Select calls cannot change later selections.
			span := c.nextEvent(cycle) - cycle
			res.MergeHist[0] += span
			res.EmptyCycles += span
			c.ffSpans++
			c.ffCycles += span
			cycle += span - 1
			continue
		}

		selection := c.sel.Select(m, c.cands, valid)
		res.MergeHist[selection.Count()]++
		if selection.Occ.Ops == 0 {
			res.EmptyCycles++
		}

		for p := 0; p < nCtx; p++ {
			if valid&(1<<uint(p)) == 0 {
				continue
			}
			st := c.states[c.running[c.ports[p]]]
			st.stats.ScheduledCycles++
			if selection.Mask&(1<<uint(p)) == 0 {
				st.stats.ConflictCycles++
				continue
			}
			if c.retireOne(st, cycle) {
				st.done = true
				finished = true
			}
		}
	}
	return c.finalize(cycle, finished), nil
}
