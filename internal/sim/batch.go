// Batched execution: one cycle loop advancing N independent jobs
// ("lanes") that share the same task list. Jobs in a batch share the
// compiled programs — flattened once into program.Plan tables — while
// every lane keeps its own selector, caches, walkers and OS scheduler,
// so a lane at global cycle c behaves exactly as the same job would at
// its own cycle c running alone. The differential tests in
// batch_test.go enforce bit-identity against Run and refsim.
//
// Layout: the per-task context state (readyAt / fetched / done /
// current-instruction vectors, per-thread stats) lives in flat
// struct-of-arrays backing allocated once per batch and subsliced per
// lane, so the cycle loop walks contiguous memory instead of chasing
// per-task heap objects.
//
// Scheduling: the driver is epoch-major (see batchEpoch) — each live
// lane executes its own consecutive cycles until it sleeps past the
// epoch boundary, finishes or times out, then the next lane runs its
// epoch. Lanes carry a wake cycle: an active lane wakes at cycle+1,
// an all-stalled lane bulk-accounts its stall span exactly like the
// solo fast-forward and sleeps until its next event. When every
// surviving lane sleeps past the boundary, the clock jumps straight to
// the minimum wake — the batch-wide fast-forward the telemetry counts.
//
// Selection runs on a batch-wide packed occupancy dictionary (see
// merge.SelectPacked): the gather records dictionary IDs, and the merge
// stage answers cluster disjointness and SMT slot capacity with a few
// 64-bit SWAR operations instead of per-cluster loops over Occupancy
// structs.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/program"
)

// selEmptyOps flags a packed selection whose merged word retires zero
// operations; the low bits are the selected-port mask (selector widths
// are far below 31 ports, so the flag bit can never collide).
const selEmptyOps = uint32(1) << 31

// lane is one job of a batch: the full solo-run state (selector,
// caches, walkers, OS scheduler, result accumulators) plus the wake
// cycle the driver schedules it by. The context-state slices alias the
// batch's shared SoA backing.
type lane struct {
	cfg Config
	m   isa.Machine
	sel merge.Selector
	// comp is sel when it is the stateless compiled evaluator; nil for
	// the stateful baselines (BMT keeps cross-cycle state and must see
	// every Select call, so it gets neither packed dictionary nor fast
	// paths).
	comp   *merge.Compiled
	ic, dc *cache.Cache

	// Per-task context state, subsliced from the batch SoA backing.
	walkers []*program.Walker
	cur     []int32 // flat plan index of the current instruction
	readyAt []int64
	fetched []bool
	done    []bool
	stats   []ThreadStats

	// OS scheduling state, as in core.
	running []int
	pool    []int
	osRng   rng
	slicing bool
	nCtx    int
	// nextSlice is the next timeslice boundary. The solo loop's stall
	// fast-forward never jumps past a boundary (nextEvent caps the
	// span there), so the cycle loop visits every boundary exactly and
	// an absolute next-boundary cycle replaces the per-cycle modulo.
	nextSlice int64
	// rotMask is nCtx-1 when nCtx is a power of two (priority rotation
	// by mask instead of division), -1 otherwise.
	rotMask   int64
	fixedPrio bool

	// Per-cycle buffers, as in core. cands is nil when the lane runs on
	// the packed dictionary — then the gather records IDs only and the
	// merge stage never touches an Occupancy.
	cands  []isa.Occupancy
	candID []int32
	ports  []int

	// Packed selection state: pd aliases the batch-wide packed
	// occupancy dictionary and plim holds the machine's SWAR limit
	// constants. pd is nil when the lane must use the plain evaluator
	// (stateful selector, or counts/limits beyond the packing headroom).
	pd   []merge.PackedOcc
	plim merge.PackedLimits

	res               *Result
	ffSpans, ffCycles int64

	// wakeAt is the next global cycle at which this lane must step.
	wakeAt   int64
	finished bool
	endCycle int64
}

// batchCore is the shared per-batch state: the task list, the compiled
// plans (shared across lanes), the occupancy ID bases that globalise
// per-plan IDs, and the driver's live-lane list and telemetry
// accumulators.
type batchCore struct {
	tasks   []Task
	plans   []*program.Plan
	occBase []int32
	codeOff []uint64
	// plis[ti] is plans[ti].Instrs, flattened to one slice-header array
	// so the gather loop reaches a PlannedInstr in a single hop.
	plis  [][]program.PlannedInstr
	lanes []*lane
	live  []*lane
	// occCycles[k] accumulates cycles during which k lanes were live;
	// reconstructed exactly from the lanes' end cycles after the loop
	// (occupancy over time is a step function of the sorted end cycles)
	// and flushed into the lane-occupancy histogram at finalize.
	occCycles []int64
	// bFFSpans/bFFCycles count batch-wide fast-forward jumps (every
	// live lane sleeping past an epoch boundary) and the cycles they
	// skipped.
	bFFSpans, bFFCycles int64
}

// batchEpoch is the driver's scheduling quantum: each live lane is
// advanced through up to this many consecutive cycles before the next
// lane runs. Lanes share no mutable state, so running one lane's
// cycles back to back cannot change anything it computes — it only
// keeps the lane's working set (walkers, cache tag arrays, context
// state) hot instead of re-faulting it every simulated cycle, which is
// where a cycle-interleaved driver loses to the solo loop. The epoch
// also bounds clock skew between lanes: at every epoch boundary the
// whole batch has reached the same cycle, which is what makes the
// batch-wide fast-forward (jumping the shared clock over spans where
// every lane sleeps) well defined.
const batchEpoch = 4096

// RunBatch simulates len(cfgs) independent jobs that share one task
// list, returning one Result per config in order. Every Result is
// bit-identical to Run(cfgs[i], tasks): batching changes how cycles
// are interleaved across jobs, never what any job computes. Configs
// may differ freely (scheme, contexts, caches, seeds, limits); only
// the tasks must be common, which is what the sweep engine's
// shape-grouping guarantees.
func RunBatch(cfgs []Config, tasks []Task) ([]*Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	b := &batchCore{
		tasks:     tasks,
		plans:     make([]*program.Plan, len(tasks)),
		occBase:   make([]int32, len(tasks)),
		codeOff:   make([]uint64, len(tasks)),
		lanes:     make([]*lane, len(cfgs)),
		occCycles: make([]int64, len(cfgs)+1),
	}
	totalOccs := 0
	for i, t := range tasks {
		if t.Prog == nil {
			return nil, fmt.Errorf("sim: task %d (%s) has no program", i, t.Name)
		}
		b.plans[i] = program.NewPlan(t.Prog)
		b.occBase[i] = int32(totalOccs)
		b.codeOff[i] = uint64(i+1) << 32
		totalOccs += b.plans[i].NumOccs
	}
	// Bake the per-task constants into the plan records: the fetch
	// address gets the task's code-segment offset (matching the
	// walker's own relocation) and the occupancy ID its batch-wide
	// dictionary base. Plans are per-task and freshly built per batch,
	// so the bake is free of aliasing — and it removes two lookups and
	// two adds from every port of every simulated cycle.
	b.plis = make([][]program.PlannedInstr, len(tasks))
	for i := range tasks {
		instrs := b.plans[i].Instrs
		for j := range instrs {
			instrs[j].Addr += b.codeOff[i]
			instrs[j].OccID += b.occBase[i]
		}
		b.plis[i] = instrs
	}
	// Pack the batch-wide occupancy dictionary for the SWAR merge fast
	// path. Dictionary IDs are already global, so one table serves every
	// lane; a single unpackable occupancy (a count beyond the SWAR byte
	// headroom — unreachable for realistic machines) disables the packed
	// path for the whole batch.
	pd := make([]merge.PackedOcc, totalOccs)
	for i := range b.plis {
		for j := range b.plis[i] {
			pi := &b.plis[i][j]
			po, ok := merge.PackOcc(&pi.Occ)
			if !ok {
				pd = nil
				break
			}
			pd[pi.OccID] = po
		}
		if pd == nil {
			break
		}
	}

	nt := len(tasks)
	// SoA backing for the per-[job][task] context state.
	curAll := make([]int32, len(cfgs)*nt)
	readyAll := make([]int64, len(cfgs)*nt)
	fetchedAll := make([]bool, len(cfgs)*nt)
	doneAll := make([]bool, len(cfgs)*nt)
	statsAll := make([]ThreadStats, len(cfgs)*nt)

	for li, cfg := range cfgs {
		cfg, sel, ic, dc, err := setupRun(cfg, tasks)
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", li, err)
		}
		l := &lane{
			cfg:       cfg,
			m:         cfg.Machine,
			sel:       sel,
			ic:        ic,
			dc:        dc,
			walkers:   make([]*program.Walker, nt),
			cur:       curAll[li*nt : (li+1)*nt],
			readyAt:   readyAll[li*nt : (li+1)*nt],
			fetched:   fetchedAll[li*nt : (li+1)*nt],
			done:      doneAll[li*nt : (li+1)*nt],
			stats:     statsAll[li*nt : (li+1)*nt],
			running:   make([]int, cfg.Contexts),
			pool:      make([]int, 0, nt),
			osRng:     rng{s: osSeed(&cfg)},
			slicing:   nt > cfg.Contexts,
			nCtx:      cfg.Contexts,
			nextSlice: cfg.TimesliceCycles,
			rotMask:   -1,
			fixedPrio: cfg.FixedPriority,
			cands:     make([]isa.Occupancy, cfg.Contexts),
			candID:    make([]int32, cfg.Contexts),
			ports:     make([]int, cfg.Contexts),
			res: &Result{
				MergeHist:  make([]int64, cfg.Contexts+1),
				IssueWidth: cfg.Machine.TotalIssueWidth(),
			},
		}
		if cfg.Contexts&(cfg.Contexts-1) == 0 {
			l.rotMask = int64(cfg.Contexts - 1)
		}
		if c, ok := sel.(*merge.Compiled); ok {
			l.comp = c
			if pd != nil {
				if lim, ok := merge.PackLimits(&cfg.Machine); ok {
					l.pd = pd
					l.plim = lim
					// The packed path selects from dictionary IDs alone;
					// dropping the value buffer removes the 33-byte
					// occupancy copy from every gathered port.
					l.cands = nil
				}
			}
		}
		for i, t := range tasks {
			l.walkers[i] = newTaskWalker(&cfg, i, t)
			l.stats[i].Name = t.Name
			l.pool = append(l.pool, i)
		}
		for i := range l.running {
			l.running[i] = -1
		}
		l.schedule()
		b.lanes[li] = l
	}

	b.live = make([]*lane, len(b.lanes))
	copy(b.live, b.lanes)
	b.runLoop()
	b.accountOccupancy()

	results := make([]*Result, len(b.lanes))
	for i, l := range b.lanes {
		results[i] = l.finalize()
	}
	recordBatchMetrics(b)
	return results, nil
}

// runLoop is the batch driver: epoch-major, lane-minor, cycle-inner.
// Each pass gives every live lane one epoch — the lane executes its
// own cycles back to back (lane.wakeAt is always the lane's next
// execution cycle, so the inner loop is cycle-accurate) until it
// sleeps past the epoch boundary, finishes its instruction budget or
// times out at MaxCycles. When every surviving lane's next event lies
// beyond the boundary, the shared clock jumps straight to the minimum
// — the batch-wide fast-forward. Lane order is irrelevant to results:
// lanes share only immutable plans, so the swap-removal cannot affect
// determinism.
//
//vliw:hotpath
func (b *batchCore) runLoop() {
	live := b.live
	var cycle int64
	for len(live) > 0 {
		end := cycle + batchEpoch
		next := int64(math.MaxInt64)
		n := len(live)
		for i := 0; i < n; {
			l := live[i]
			removed := false
			for {
				c := l.wakeAt
				if c >= l.cfg.MaxCycles {
					// Timed out: the solo loop exits at exactly MaxCycles.
					l.endCycle = l.cfg.MaxCycles
					removed = true
					break
				}
				if c >= end {
					break
				}
				if l.nCtx == 1 {
					l.stepSingle(b, c)
				} else {
					l.step(b, c)
				}
				if l.finished {
					// The solo loop increments past the finishing cycle
					// before exiting; Cycles = cycle+1.
					l.endCycle = c + 1
					removed = true
					break
				}
			}
			if removed {
				n--
				live[i] = live[n]
				live = live[:n]
				continue
			}
			// The lane's next event is its wake or its timeout,
			// whichever comes first.
			w := l.wakeAt
			if l.cfg.MaxCycles < w {
				w = l.cfg.MaxCycles
			}
			if w < next {
				next = w
			}
			i++
		}
		if n == 0 {
			break
		}
		if next > end {
			// Every live lane slept past the epoch boundary: jump the
			// shared clock over the dead span in one step.
			b.bFFSpans++
			b.bFFCycles += next - end
			cycle = next
		} else {
			cycle = end
		}
	}
	b.live = live
}

// accountOccupancy reconstructs the exact cycle-weighted lane
// occupancy from the lanes' end cycles: a lane is in flight for cycles
// [0, endCycle), so occupancy over time is the step function of the
// end cycles sorted ascending — len(lanes) lanes up to the earliest
// end, one fewer to the next, and so on. This is bit-exact per-cycle
// accounting at O(n log n) per batch instead of bookkeeping in the
// hot loop.
func (b *batchCore) accountOccupancy() {
	ends := make([]int64, len(b.lanes))
	for i, l := range b.lanes {
		ends[i] = l.endCycle
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	var prev int64
	for i, e := range ends {
		if e > prev {
			b.occCycles[len(ends)-i] += e - prev
			prev = e
		}
	}
}

// schedule mirrors core.schedule on the lane's SoA state. The
// order-preserving O(n) pool delete is deliberate — see core.schedule.
//
//vliw:hotpath
func (l *lane) schedule() {
	for ctx, ti := range l.running {
		if ti >= 0 && !l.done[ti] {
			l.pool = append(l.pool, ti)
		}
		l.running[ctx] = -1
	}
	for ctx := 0; ctx < l.cfg.Contexts && len(l.pool) > 0; ctx++ {
		k := l.osRng.intn(len(l.pool))
		l.running[ctx] = l.pool[k]
		l.pool = append(l.pool[:k], l.pool[k+1:]...)
	}
}

// nextEvent mirrors core.nextEvent on the lane's SoA state.
//
//vliw:hotpath
func (l *lane) nextEvent(now int64) int64 {
	next := l.cfg.MaxCycles
	if l.slicing && l.nextSlice < next {
		// nextSlice is maintained by step: when this runs it is always
		// the first boundary after now, so no division is needed.
		next = l.nextSlice
	}
	for _, ti := range l.running {
		if ti < 0 || l.done[ti] {
			continue
		}
		e := l.readyAt[ti]
		if e <= now {
			e = now + 1
		}
		if e < next {
			next = e
		}
	}
	if next <= now {
		next = now + 1
	}
	return next
}

// step advances a multi-context lane by one cycle at global cycle
// `cycle`, mirroring one iteration of core.run: timeslice scheduling,
// priority rotation, candidate gathering (plan-driven — the occupancy
// and fetch address come from the flat PlannedInstr record), merge
// selection, retirement. An all-stalled cycle bulk-accounts the stall
// span and sleeps the lane, exactly like the solo fast-forward.
//
//vliw:hotpath
func (l *lane) step(b *batchCore, cycle int64) {
	if l.slicing && cycle == l.nextSlice {
		l.schedule()
		l.nextSlice = cycle + l.cfg.TimesliceCycles
	}
	nCtx := l.nCtx
	rot := 0
	if !l.fixedPrio {
		if l.rotMask >= 0 {
			rot = int(cycle & l.rotMask)
		} else {
			rot = int(cycle % int64(nCtx))
		}
	}
	var valid uint32
	for p := 0; p < nCtx; p++ {
		ctx := p + rot
		if ctx >= nCtx {
			ctx -= nCtx
		}
		l.ports[p] = ctx
		ti := l.running[ctx]
		if ti < 0 {
			continue
		}
		if l.done[ti] || l.readyAt[ti] > cycle {
			continue
		}
		pi := &b.plis[ti][l.cur[ti]]
		if !l.fetched[ti] {
			l.fetched[ti] = true // the line arrives during any stall
			if l.ic != nil && !l.ic.Access(pi.Addr, false) {
				pen := int64(l.ic.MissPenalty())
				l.readyAt[ti] = cycle + pen
				l.stats[ti].StallFetch += pen
				continue
			}
		}
		if l.cands != nil {
			l.cands[p] = pi.Occ
		}
		l.candID[p] = pi.OccID
		valid |= 1 << uint(p)
	}

	if valid == 0 {
		next := l.nextEvent(cycle)
		span := next - cycle
		l.res.MergeHist[0] += span
		l.res.EmptyCycles += span
		l.ffSpans++
		l.ffCycles += span
		l.wakeAt = next
		return
	}

	selv := l.selectCands(valid)
	mask := selv &^ selEmptyOps
	l.res.MergeHist[bits.OnesCount32(mask)]++
	if selv&selEmptyOps != 0 {
		l.res.EmptyCycles++
	}

	for p := 0; p < nCtx; p++ {
		if valid&(1<<uint(p)) == 0 {
			continue
		}
		ti := l.running[l.ports[p]]
		l.stats[ti].ScheduledCycles++
		if mask&(1<<uint(p)) == 0 {
			l.stats[ti].ConflictCycles++
			continue
		}
		if l.retireOne(b, ti, cycle) {
			l.done[ti] = true
			l.finished = true
		}
	}
	l.wakeAt = cycle + 1
}

// stepSingle advances a single-context lane by one cycle, mirroring
// one iteration of core.runSingle.
//
//vliw:hotpath
func (l *lane) stepSingle(b *batchCore, cycle int64) {
	if l.slicing && cycle == l.nextSlice {
		l.schedule()
		l.nextSlice = cycle + l.cfg.TimesliceCycles
	}
	ti := l.running[0]
	ready := ti >= 0 && !l.done[ti] && l.readyAt[ti] <= cycle
	if ready && !l.fetched[ti] {
		pi := &b.plis[ti][l.cur[ti]]
		l.fetched[ti] = true // the line arrives during any stall
		if l.ic != nil && !l.ic.Access(pi.Addr, false) {
			pen := int64(l.ic.MissPenalty())
			l.readyAt[ti] = cycle + pen
			l.stats[ti].StallFetch += pen
			ready = false
		}
	}
	if !ready {
		next := l.nextEvent(cycle)
		span := next - cycle
		l.res.MergeHist[0] += span
		l.res.EmptyCycles += span
		l.ffSpans++
		l.ffCycles += span
		l.wakeAt = next
		return
	}
	pi := &b.plis[ti][l.cur[ti]]
	l.res.MergeHist[1]++
	if pi.Occ.Ops == 0 {
		l.res.EmptyCycles++
	}
	l.stats[ti].ScheduledCycles++
	if l.retireOne(b, ti, cycle) {
		l.done[ti] = true
		l.finished = true
	}
	l.wakeAt = cycle + 1
}

// selectCands runs the merge stage for the gathered candidates. For the
// compiled evaluator — stateless across calls by construction — a lone
// candidate is always selected whole (every tree node passes a single
// non-empty input through unmerged), so the evaluator walk is skipped;
// multi-candidate cycles evaluate in full, on the packed dictionary
// when the lane qualifies. Stateful selectors (BMT) take the plain path
// unconditionally.
//
// The return value is packed: the selected-port mask in the low bits
// plus the selEmptyOps flag — the only two facts the cycle loop
// consumes from a Selection.
//
//vliw:hotpath
func (l *lane) selectCands(valid uint32) uint32 {
	if l.comp == nil {
		return packSelection(l.sel.Select(&l.m, l.cands, valid))
	}
	if valid&(valid-1) == 0 {
		p := uint(bits.TrailingZeros32(valid))
		var ops uint8
		if l.pd != nil {
			ops = l.pd[l.candID[p]].Ops
		} else {
			ops = l.cands[p].Ops
		}
		if ops == 0 {
			return valid | selEmptyOps
		}
		return valid
	}
	return l.selectFull(valid)
}

// selectFull evaluates the compiled selector in full: on the packed
// dictionary when the lane qualifies, on occupancy values otherwise.
// Both forms produce the same packed selection — SelectPacked's
// differential suite ties it to Select.
//
//vliw:hotpath
func (l *lane) selectFull(valid uint32) uint32 {
	if l.pd != nil {
		mask, ops := l.comp.SelectPacked(l.pd, &l.plim, l.candID, valid)
		if ops == 0 {
			mask |= selEmptyOps
		}
		return mask
	}
	return packSelection(l.comp.Select(&l.m, l.cands, valid))
}

// packSelection compresses a Selection to the packed form the cycle
// loop consumes: selected-port mask plus the zero-ops flag.
func packSelection(s merge.Selection) uint32 {
	v := s.Mask
	if s.Occ.Ops == 0 {
		v |= selEmptyOps
	}
	return v
}

// retireOne mirrors core.retireOne, driven by the task's plan: the
// memory-op recipe and operation count come precomputed from the
// PlannedInstr, and the successor is a flat index instead of walker
// block/idx bookkeeping.
//
//vliw:hotpath
func (l *lane) retireOne(b *batchCore, ti int, cycle int64) bool {
	f := l.cur[ti]
	next, mem, taken := l.walkers[ti].RetirePlan(b.plans[ti], f)
	pi := &b.plans[ti].Instrs[f]
	l.cur[ti] = next
	l.fetched[ti] = false
	l.stats[ti].Instrs++
	l.stats[ti].Ops += int64(pi.Ops)
	l.res.Instrs++
	l.res.Ops += int64(pi.Ops)

	var memStall, brStall int64
	for i := range mem {
		if l.dc != nil && !l.dc.Access(mem[i].Addr, mem[i].Store) {
			memStall += int64(l.dc.MissPenalty())
		}
	}
	if taken {
		brStall = int64(l.m.BranchPenalty)
	}
	// Both a blocking miss and a squash stall the front end; they
	// overlap, so the thread resumes after the longer of the two.
	stall := memStall
	if brStall > stall {
		stall = brStall
	}
	if stall > 0 {
		l.readyAt[ti] = cycle + 1 + stall
		l.stats[ti].StallMem += memStall
		l.stats[ti].StallBranch += brStall
	}
	return l.walkers[ti].Retired >= l.cfg.InstrLimit
}

// finalize closes the lane exactly like core.finalize closes a run.
func (l *lane) finalize() *Result {
	res := l.res
	res.Cycles = l.endCycle
	res.TimedOut = !l.finished
	if res.Cycles > 0 {
		res.IPC = float64(res.Ops) / float64(res.Cycles)
	}
	for i := range l.stats {
		res.Threads = append(res.Threads, l.stats[i])
	}
	if l.ic != nil {
		res.ICache = l.ic.Stats
	}
	if l.dc != nil {
		res.DCache = l.dc.Stats
	}
	recordRunMetrics(res, l.ffSpans, l.ffCycles)
	return res
}
