package sim_test

// The bit-identity contract of the batched core: every lane of
// sim.RunBatch must return exactly the Result of sim.Run with the same
// config — and therefore, by the solo differential suite, exactly the
// refsim oracle's. These tests run whole scheme matrices as single
// batches (heterogeneous configs, shared tasks), ragged batches whose
// lanes finish at wildly different cycles, timeouts, batch size 1, and
// the allocation profile of the batched steady state.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/refsim"
	"vliwmt/internal/sim"
)

// runBatchAgainstSolo runs every config through RunBatch in one batch
// and through Run individually, requiring deeply equal Results lane by
// lane. When oracle is true each lane is additionally checked against
// refsim (slow; reserved for the acceptance matrix).
func runBatchAgainstSolo(t *testing.T, cfgs []sim.Config, tasks []sim.Task, oracle bool) {
	t.Helper()
	batch, err := sim.RunBatch(cfgs, tasks)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if len(batch) != len(cfgs) {
		t.Fatalf("RunBatch returned %d results for %d configs", len(batch), len(cfgs))
	}
	for i, cfg := range cfgs {
		solo, err := sim.Run(cfg, tasks)
		if err != nil {
			t.Fatalf("lane %d: solo run failed: %v", i, err)
		}
		if !reflect.DeepEqual(batch[i], solo) {
			t.Fatalf("lane %d (%s): batch diverged from solo\n batch: %+v\n solo:  %+v",
				i, cfg.Scheme, batch[i], solo)
		}
		if oracle {
			ref, err := refsim.Run(cfg, tasks)
			if err != nil {
				t.Fatalf("lane %d: refsim failed: %v", i, err)
			}
			if !reflect.DeepEqual(batch[i], ref) {
				t.Fatalf("lane %d (%s): batch diverged from refsim", i, cfg.Scheme)
			}
		}
	}
}

// TestBatchDifferentialPaperMatrix is the batched acceptance matrix:
// all 16 paper schemes, the IMT/BMT baselines and a custom tree run as
// ONE heterogeneous batch per (memory model, seed) cell — contexts,
// selectors and fast-path eligibility all differ across lanes — and every
// lane must match both the solo run and the refsim oracle bit for bit.
func TestBatchDifferentialPaperMatrix(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)
	schemes := append(merge.PaperSchemes4(), "IMT", "BMT", "C(S(T0,T1),T2,T3)")
	for _, perfect := range []bool{true, false} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("perfect=%v/seed=%d", perfect, seed), func(t *testing.T) {
				cfgs := make([]sim.Config, 0, len(schemes))
				for _, scheme := range schemes {
					cfg := sim.DefaultConfig()
					cfg.Scheme = scheme
					cfg.Contexts = merge.PortsFor(scheme)
					cfg.PerfectMemory = perfect
					cfg.InstrLimit = 1_500
					cfg.TimesliceCycles = 700
					cfg.Seed = seed
					cfgs = append(cfgs, cfg)
				}
				runBatchAgainstSolo(t, cfgs, tasks, true)
			})
		}
	}
}

// TestBatchRagged covers lanes that finish at very different cycles:
// instruction budgets spanning 30x, different timeslices, fixed and
// rotating priority, single-context lanes, and mixed perfect/realistic
// memory in the same batch. Early-finishing lanes leave the batch while
// others keep running; late lanes must be unaffected.
func TestBatchRagged(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)
	cfgs := []sim.Config{}
	for i, scheme := range []string{"3SSS", "2SC3", "BMT", "IMT", "C4", "3CCC"} {
		cfg := sim.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Contexts = merge.PortsFor(scheme)
		if scheme == "IMT" || scheme == "BMT" {
			cfg.Contexts = 4
		}
		cfg.InstrLimit = int64(100 * (1 + i*6)) // 100 .. 3100
		cfg.TimesliceCycles = int64(300 + 97*i)
		cfg.FixedPriority = i%2 == 1
		cfg.PerfectMemory = i%3 == 0
		cfg.Seed = uint64(i + 1)
		if !cfg.PerfectMemory {
			cfg.DCache = cache.Config{Size: 4 << 10, LineSize: 64, Ways: 2, MissPenalty: 40 * i}
		}
		cfgs = append(cfgs, cfg)
	}
	// A single-context multitasking lane rides along.
	st := sim.DefaultConfig()
	st.Scheme = ""
	st.Contexts = 1
	st.InstrLimit = 900
	st.TimesliceCycles = 400
	st.Seed = 9
	cfgs = append(cfgs, st)
	runBatchAgainstSolo(t, cfgs, tasks, false)
}

// TestBatchTimeout pins the MaxCycles clamp inside a batch: lanes that
// can never retire their budget must report the same truncated cycle
// count and TimedOut flag as the solo run, while a normal lane in the
// same batch finishes untouched.
func TestBatchTimeout(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)[:4]
	stuck := sim.DefaultConfig()
	stuck.Scheme = "3CCC"
	stuck.InstrLimit = 1 << 40 // unreachable
	stuck.MaxCycles = 3_000
	stuck.DCache = cache.Config{Size: 1 << 10, LineSize: 64, Ways: 1, MissPenalty: 500}

	ok := sim.DefaultConfig()
	ok.Scheme = "3SSS"
	ok.InstrLimit = 1_000
	runBatchAgainstSolo(t, []sim.Config{stuck, ok, stuck}, tasks, false)
}

// TestBatchSizeOne: a batch of one is the degenerate case the sweep
// engine emits for singleton shape groups; it must match the solo path
// exactly too.
func TestBatchSizeOne(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)
	cfg := sim.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 1_200
	cfg.TimesliceCycles = 500
	runBatchAgainstSolo(t, []sim.Config{cfg}, tasks, true)
}

// TestBatchEmpty pins the trivial edges: no configs is an empty
// success, no tasks is an error.
func TestBatchEmpty(t *testing.T) {
	res, err := sim.RunBatch(nil, diffTasks(t, isa.Default()))
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	cfg := sim.DefaultConfig()
	if _, err := sim.RunBatch([]sim.Config{cfg}, nil); err == nil {
		t.Fatal("batch with no tasks accepted")
	}
}

// TestBatchRandomConfigs fuzzes heterogeneous batches: random lane
// counts, schemes, contexts, budgets, seeds and cache geometries, all
// sharing one task list, each batch checked lane-for-lane against the
// solo runs.
func TestBatchRandomConfigs(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)
	r := rand.New(rand.NewSource(1213))
	schemes := []string{"3SSS", "3CCC", "2SC3", "2SS", "2CS", "C4", "1S", "IMT", "BMT", "S(C(T3,T1),C(T2,T0))"}
	iters := 10
	if testing.Short() {
		iters = 4
	}
	for i := 0; i < iters; i++ {
		n := 2 + r.Intn(9)
		cfgs := make([]sim.Config, 0, n)
		for j := 0; j < n; j++ {
			scheme := schemes[r.Intn(len(schemes))]
			contexts := merge.PortsFor(scheme)
			if scheme == "IMT" || scheme == "BMT" {
				contexts = []int{2, 4}[r.Intn(2)]
			}
			if r.Intn(8) == 0 {
				contexts, scheme = 1, ""
			}
			cfg := sim.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Contexts = contexts
			cfg.PerfectMemory = r.Intn(2) == 0
			cfg.FixedPriority = r.Intn(4) == 0
			cfg.InstrLimit = int64(200 + r.Intn(1200))
			cfg.TimesliceCycles = int64(100 + r.Intn(900))
			cfg.Seed = r.Uint64()
			if !cfg.PerfectMemory {
				cfg.DCache = cache.Config{Size: 4 << 10, LineSize: 64, Ways: 2, MissPenalty: r.Intn(200)}
			}
			cfgs = append(cfgs, cfg)
		}
		t.Run(fmt.Sprintf("%02d_n%d", i, len(cfgs)), func(t *testing.T) {
			runBatchAgainstSolo(t, cfgs, tasks, false)
		})
	}
}

// TestBatchSteadyStateZeroAllocs extends the zero-allocs/cycle
// invariant to the batched path: a batch pays a fixed setup cost
// (lanes, SoA backing, plans, packed dictionary), after which allocations
// must not grow with simulated cycles.
func TestBatchSteadyStateZeroAllocs(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)[:4]
	measure := func(instrs int64) float64 {
		cfgs := make([]sim.Config, 6)
		for i := range cfgs {
			cfg := sim.DefaultConfig()
			cfg.Scheme = []string{"2SC3", "3SSS", "C4"}[i%3]
			cfg.InstrLimit = instrs
			cfg.TimesliceCycles = 1_000
			cfg.Seed = uint64(i + 1)
			cfg.DCache = cache.Config{Size: 8 << 10, LineSize: 64, Ways: 2, MissPenalty: 20}
			cfgs[i] = cfg
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := sim.RunBatch(cfgs, tasks); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(2_000)
	long := measure(12_000)
	if long > short {
		t.Errorf("allocations grow with cycles: %v at 2k instrs, %v at 12k", short, long)
	}
}
