package sim_test

import (
	"testing"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/sim"
	"vliwmt/internal/telemetry"
)

// TestRunTelemetry checks the per-run instrument flush: one
// stall-heavy run must move the run/cycle/instr/op counters by
// exactly the Result's totals, record the fast-forwarded spans, and
// count merges consistently with the merge histogram. The
// zero-allocs/cycle guarantee of this same instrumented path is
// enforced separately by TestSteadyStateZeroAllocs.
func TestRunTelemetry(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)[:4]
	cfg := sim.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 2_000
	// A tiny cache with a large miss penalty forces all-stalled spans,
	// so the fast-forward instruments have something to record.
	cfg.DCache = cache.Config{Size: 2 << 10, LineSize: 64, Ways: 2, MissPenalty: 200}

	before := telemetry.Default().Snapshot()
	res, err := sim.Run(cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	after := telemetry.Default().Snapshot()
	delta := func(name string) int64 { return after.Counter(name) - before.Counter(name) }

	if d := delta("sim_runs_total"); d != 1 {
		t.Errorf("sim_runs_total moved by %d, want 1", d)
	}
	if d := delta("sim_cycles_total"); d != res.Cycles {
		t.Errorf("sim_cycles_total moved by %d, want the run's %d cycles", d, res.Cycles)
	}
	if d := delta("sim_instrs_total"); d != res.Instrs {
		t.Errorf("sim_instrs_total moved by %d, want %d", d, res.Instrs)
	}
	if d := delta("sim_ops_total"); d != res.Ops {
		t.Errorf("sim_ops_total moved by %d, want %d", d, res.Ops)
	}
	if d := delta("sim_fastforward_spans_total"); d <= 0 {
		t.Errorf("sim_fastforward_spans_total moved by %d on a stall-heavy run; fast-forward instrumentation dead", d)
	}
	if d := delta("sim_fastforward_cycles_total"); d <= 0 || d > res.Cycles {
		t.Errorf("sim_fastforward_cycles_total moved by %d, want in (0, %d]", d, res.Cycles)
	}
	var merges int64
	for k, n := range res.MergeHist {
		if k >= 2 {
			merges += int64(k-1) * n
		}
	}
	if d := delta("sim_merges_total"); d != merges {
		t.Errorf("sim_merges_total moved by %d, want %d per the merge histogram", d, merges)
	}
}

// TestBatchTelemetry checks the per-batch instrument flush: one
// stall-heavy heterogeneous batch must count itself once, count every
// lane as a batch job AND as a finished run (finalize flushes the
// per-run instruments lane by lane), observe the cycle-weighted
// lane-occupancy distribution, and keep the batch-wide fast-forward
// counters consistent with the work performed.
func TestBatchTelemetry(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)[:4]
	cfgs := make([]sim.Config, 5)
	for i := range cfgs {
		cfg := sim.DefaultConfig()
		cfg.Scheme = []string{"2SC3", "3SSS"}[i%2]
		cfg.InstrLimit = int64(300 + 150*i) // ragged, so occupancy decays
		cfg.Seed = uint64(i + 1)
		// A miss penalty far beyond the driver's epoch makes every lane
		// sleep across epoch boundaries between short execution bursts,
		// so some boundaries find the whole batch asleep — the batch-wide
		// fast-forward the counters must record.
		cfg.DCache = cache.Config{Size: 2 << 10, LineSize: 64, Ways: 2, MissPenalty: 10_000}
		cfgs[i] = cfg
	}

	before := telemetry.Default().Snapshot()
	ress, err := sim.RunBatch(cfgs, tasks)
	if err != nil {
		t.Fatal(err)
	}
	after := telemetry.Default().Snapshot()
	delta := func(name string) int64 { return after.Counter(name) - before.Counter(name) }

	lanes := int64(len(cfgs))
	if d := delta("sim_batch_runs_total"); d != 1 {
		t.Errorf("sim_batch_runs_total moved by %d, want 1", d)
	}
	if d := delta("sim_batch_jobs_total"); d != lanes {
		t.Errorf("sim_batch_jobs_total moved by %d, want %d", d, lanes)
	}
	if d := delta("sim_runs_total"); d != lanes {
		t.Errorf("sim_runs_total moved by %d, want one per lane (%d)", d, lanes)
	}
	var cycles int64
	for _, r := range ress {
		cycles += r.Cycles
	}
	if d := delta("sim_cycles_total"); d != cycles {
		t.Errorf("sim_cycles_total moved by %d, want the lanes' summed %d", d, cycles)
	}

	// The occupancy histogram observes once per driver cycle, weighted
	// by live lanes: its count is the longest lane's cycle span, its sum
	// the total lane-cycles — so count <= sum <= lanes*count, and the
	// sum is exactly the summed per-lane cycle counts.
	hb, ha := before.Histograms["sim_batch_lane_occupancy"], after.Histograms["sim_batch_lane_occupancy"]
	n, sum := ha.Count-hb.Count, int64(ha.Sum-hb.Sum)
	if n <= 0 {
		t.Fatalf("sim_batch_lane_occupancy observed %d cycles, want > 0", n)
	}
	if sum != cycles {
		t.Errorf("occupancy-weighted cycle sum = %d, want the lanes' summed %d cycles", sum, cycles)
	}
	if sum < n || sum > lanes*n {
		t.Errorf("occupancy sum %d outside [count=%d, lanes*count=%d]", sum, n, lanes*n)
	}

	// Stall-heavy lanes force batch-wide all-asleep spans; the skipped
	// cycles are bulk-accounted into the occupancy histogram too, so
	// they must stay below the driver's total span.
	if d := delta("sim_batch_fastforward_spans_total"); d <= 0 {
		t.Errorf("sim_batch_fastforward_spans_total moved by %d on a stall-heavy batch", d)
	}
	if d := delta("sim_batch_fastforward_cycles_total"); d <= 0 || d >= n {
		t.Errorf("sim_batch_fastforward_cycles_total moved by %d, want in (0, %d)", d, n)
	}
}
