package sim_test

import (
	"testing"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/sim"
	"vliwmt/internal/telemetry"
)

// TestRunTelemetry checks the per-run instrument flush: one
// stall-heavy run must move the run/cycle/instr/op counters by
// exactly the Result's totals, record the fast-forwarded spans, and
// count merges consistently with the merge histogram. The
// zero-allocs/cycle guarantee of this same instrumented path is
// enforced separately by TestSteadyStateZeroAllocs.
func TestRunTelemetry(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)[:4]
	cfg := sim.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 2_000
	// A tiny cache with a large miss penalty forces all-stalled spans,
	// so the fast-forward instruments have something to record.
	cfg.DCache = cache.Config{Size: 2 << 10, LineSize: 64, Ways: 2, MissPenalty: 200}

	before := telemetry.Default().Snapshot()
	res, err := sim.Run(cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	after := telemetry.Default().Snapshot()
	delta := func(name string) int64 { return after.Counter(name) - before.Counter(name) }

	if d := delta("sim_runs_total"); d != 1 {
		t.Errorf("sim_runs_total moved by %d, want 1", d)
	}
	if d := delta("sim_cycles_total"); d != res.Cycles {
		t.Errorf("sim_cycles_total moved by %d, want the run's %d cycles", d, res.Cycles)
	}
	if d := delta("sim_instrs_total"); d != res.Instrs {
		t.Errorf("sim_instrs_total moved by %d, want %d", d, res.Instrs)
	}
	if d := delta("sim_ops_total"); d != res.Ops {
		t.Errorf("sim_ops_total moved by %d, want %d", d, res.Ops)
	}
	if d := delta("sim_fastforward_spans_total"); d <= 0 {
		t.Errorf("sim_fastforward_spans_total moved by %d on a stall-heavy run; fast-forward instrumentation dead", d)
	}
	if d := delta("sim_fastforward_cycles_total"); d <= 0 || d > res.Cycles {
		t.Errorf("sim_fastforward_cycles_total moved by %d, want in (0, %d]", d, res.Cycles)
	}
	var merges int64
	for k, n := range res.MergeHist {
		if k >= 2 {
			merges += int64(k-1) * n
		}
	}
	if d := delta("sim_merges_total"); d != merges {
		t.Errorf("sim_merges_total moved by %d, want %d per the merge histogram", d, merges)
	}
}
