package sim

import "vliwmt/internal/telemetry"

// Simulator instruments. Per the DESIGN.md hot-path rules these are
// updated once per run in finalize — never per cycle — from plain
// int64 fields the loop already maintains (or from the Result itself),
// so instrumentation adds a handful of atomic adds per run and the
// zero-allocs/cycle invariant holds untouched
// (TestSteadyStateZeroAllocs runs against this instrumented path).
var (
	metRuns = telemetry.NewCounter("sim_runs_total",
		"Simulation runs completed (sim.Run returns).")
	metCycles = telemetry.NewCounter("sim_cycles_total",
		"Processor cycles simulated, fast-forwarded spans included.")
	metInstrs = telemetry.NewCounter("sim_instrs_total",
		"VLIW instructions retired.")
	metOps = telemetry.NewCounter("sim_ops_total",
		"Operations retired.")
	metFFSpans = telemetry.NewCounter("sim_fastforward_spans_total",
		"All-stalled spans the stall fast-forward jumped over.")
	metFFCycles = telemetry.NewCounter("sim_fastforward_cycles_total",
		"Cycles skipped (bulk-accounted) by the stall fast-forward.")
	metMerges = telemetry.NewCounter("sim_merges_total",
		"Thread merges performed: sum over cycles of (threads issued together - 1).")

	// Batched-core instruments, flushed once per RunBatch.
	metBatchRuns = telemetry.NewCounter("sim_batch_runs_total",
		"Batched executions completed (sim.RunBatch returns).")
	metBatchJobs = telemetry.NewCounter("sim_batch_jobs_total",
		"Jobs simulated through the batched core (lanes across all batches).")
	metBatchFFSpans = telemetry.NewCounter("sim_batch_fastforward_spans_total",
		"Batch-wide fast-forward jumps (every live lane sleeping past an epoch boundary).")
	metBatchFFCycles = telemetry.NewCounter("sim_batch_fastforward_cycles_total",
		"Cycles the batch driver skipped in batch-wide fast-forward jumps.")
	metBatchLaneOcc = telemetry.NewHistogram("sim_batch_lane_occupancy",
		"Live lanes per batch cycle, cycle-weighted (one observation per simulated cycle).",
		[]float64{1, 2, 4, 8, 16, 32, 64})
)

// recordRunMetrics flushes one finished run into the process-wide
// instruments. merges is derived from the merge histogram: a cycle in
// which k threads issued together performed k-1 merges.
func recordRunMetrics(res *Result, ffSpans, ffCycles int64) {
	metRuns.Inc()
	metCycles.Add(res.Cycles)
	metInstrs.Add(res.Instrs)
	metOps.Add(res.Ops)
	metFFSpans.Add(ffSpans)
	metFFCycles.Add(ffCycles)
	var merges int64
	for k, n := range res.MergeHist {
		if k >= 2 {
			merges += int64(k-1) * n
		}
	}
	metMerges.Add(merges)
}

// recordBatchMetrics flushes one finished batch into the process-wide
// instruments: the per-cycle lane-occupancy distribution (bulk
// observations, one per simulated cycle) and the batch-wide
// fast-forward counters. Like recordRunMetrics it runs once per batch
// from plain fields the loop already maintained, so the
// zero-allocs/cycle invariant is untouched.
func recordBatchMetrics(b *batchCore) {
	metBatchRuns.Inc()
	metBatchJobs.Add(int64(len(b.lanes)))
	metBatchFFSpans.Add(b.bFFSpans)
	metBatchFFCycles.Add(b.bFFCycles)
	for k, cycles := range b.occCycles {
		metBatchLaneOcc.ObserveN(float64(k), cycles)
	}
}
