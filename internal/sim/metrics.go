package sim

import "vliwmt/internal/telemetry"

// Simulator instruments. Per the DESIGN.md hot-path rules these are
// updated once per run in finalize — never per cycle — from plain
// int64 fields the loop already maintains (or from the Result itself),
// so instrumentation adds a handful of atomic adds per run and the
// zero-allocs/cycle invariant holds untouched
// (TestSteadyStateZeroAllocs runs against this instrumented path).
var (
	metRuns = telemetry.NewCounter("sim_runs_total",
		"Simulation runs completed (sim.Run returns).")
	metCycles = telemetry.NewCounter("sim_cycles_total",
		"Processor cycles simulated, fast-forwarded spans included.")
	metInstrs = telemetry.NewCounter("sim_instrs_total",
		"VLIW instructions retired.")
	metOps = telemetry.NewCounter("sim_ops_total",
		"Operations retired.")
	metFFSpans = telemetry.NewCounter("sim_fastforward_spans_total",
		"All-stalled spans the stall fast-forward jumped over.")
	metFFCycles = telemetry.NewCounter("sim_fastforward_cycles_total",
		"Cycles skipped (bulk-accounted) by the stall fast-forward.")
	metMerges = telemetry.NewCounter("sim_merges_total",
		"Thread merges performed: sum over cycles of (threads issued together - 1).")
)

// recordRunMetrics flushes one finished run into the process-wide
// instruments. merges is derived from the merge histogram: a cycle in
// which k threads issued together performed k-1 merges.
func recordRunMetrics(res *Result, ffSpans, ffCycles int64) {
	metRuns.Inc()
	metCycles.Add(res.Cycles)
	metInstrs.Add(res.Instrs)
	metOps.Add(res.Ops)
	metFFSpans.Add(ffSpans)
	metFFCycles.Add(ffCycles)
	var merges int64
	for k, n := range res.MergeHist {
		if k >= 2 {
			merges += int64(k-1) * n
		}
	}
	metMerges.Add(merges)
}
