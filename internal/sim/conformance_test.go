package sim_test

// The generative conformance harness: random profiles from the
// synthetic workload generator swept through the optimized simulator,
// the batched cycle loop and the naive reference oracle, asserting
// bit-identical Results lane by lane across every paper scheme, the
// IMT/BMT baselines and both memory models. Where diff_test.go pins
// the contract on the 13 hand-built kernels, this harness samples the
// whole generator parameter space, so simulator/optimization bugs
// that only manifest on unusual kernel shapes (degenerate widths,
// branch-dense blocks, chase-heavy streams) still hit the oracle.

import (
	"fmt"
	"reflect"
	"testing"

	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/refsim"
	"vliwmt/internal/sim"
	"vliwmt/internal/wgen"
	"vliwmt/internal/workload"
)

// conformanceSchemes is the full merge matrix: the paper's sixteen
// Figure 9 schemes plus the IMT and BMT baselines.
func conformanceSchemes() []string {
	return append(merge.PaperSchemes4(), "IMT", "BMT")
}

// genTasks compiles the four members of a generated mix.
func genTasks(t testing.TB, m isa.Machine, members [4]string) []sim.Task {
	t.Helper()
	tasks := make([]sim.Task, 0, len(members))
	for _, name := range members {
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Compile(m)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		tasks = append(tasks, sim.Task{Name: name, Prog: p})
	}
	return tasks
}

// TestGenerativeConformance sweeps random generated 4-thread mixes
// through the full scheme x memory-model matrix three ways — sim.Run,
// one sim.RunBatch over all configurations, and refsim.Run — and
// requires all three to agree exactly. The full run covers 56 random
// profiles (14 mixes x 4 members), satisfying the >=50-profile
// acceptance bar; -short keeps a 16-profile smoke.
func TestGenerativeConformance(t *testing.T) {
	iters := 14
	if testing.Short() {
		iters = 4
	}
	m := isa.Default()
	schemes := conformanceSchemes()
	combos := []string{"LLLL", "LLMH", "LMMH", "LLHH", "MMHH", "MHHH", "HHHH"}
	rng := wgen.NewRand(2009)

	profiles := 0
	for iter := 0; iter < iters; iter++ {
		combo := combos[iter%len(combos)]
		mixSeed := rng.Uint64()
		mixName, err := wgen.MixName(combo, mixSeed)
		if err != nil {
			t.Fatal(err)
		}
		mix, err := workload.MixByName(mixName)
		if err != nil {
			t.Fatal(err)
		}
		tasks := genTasks(t, m, mix.Members)
		profiles += len(mix.Members)
		simSeed := rng.Uint64()

		// The full scheme x memory matrix as batch lanes on one task
		// list: scheme, contexts and memory model vary per lane.
		var cfgs []sim.Config
		var labels []string
		for _, scheme := range schemes {
			for _, perfect := range []bool{true, false} {
				cfg := sim.DefaultConfig()
				cfg.Scheme = scheme
				cfg.Contexts = merge.PortsFor(scheme)
				cfg.PerfectMemory = perfect
				cfg.InstrLimit = 800
				cfg.TimesliceCycles = 400
				cfg.Seed = simSeed
				cfgs = append(cfgs, cfg)
				labels = append(labels, fmt.Sprintf("%s/perfect=%v", scheme, perfect))
			}
		}

		t.Run(fmt.Sprintf("%02d_%s", iter, mixName), func(t *testing.T) {
			batched, err := sim.RunBatch(cfgs, tasks)
			if err != nil {
				t.Fatalf("RunBatch: %v", err)
			}
			if len(batched) != len(cfgs) {
				t.Fatalf("RunBatch returned %d lanes for %d configs", len(batched), len(cfgs))
			}
			for lane, cfg := range cfgs {
				solo, err := sim.Run(cfg, tasks)
				if err != nil {
					t.Fatalf("%s: sim.Run: %v", labels[lane], err)
				}
				ref, err := refsim.Run(cfg, tasks)
				if err != nil {
					t.Fatalf("%s: refsim.Run: %v", labels[lane], err)
				}
				if !reflect.DeepEqual(solo, ref) {
					t.Fatalf("%s: sim.Run diverges from refsim:\n optimized: %+v\n reference: %+v",
						labels[lane], solo, ref)
				}
				if !reflect.DeepEqual(batched[lane], solo) {
					t.Fatalf("%s: RunBatch lane %d diverges from solo run:\n batched: %+v\n solo: %+v",
						labels[lane], lane, batched[lane], solo)
				}
			}
		})
	}
	if !testing.Short() && profiles < 50 {
		t.Fatalf("harness covered %d random profiles, acceptance bar is 50", profiles)
	}
}

// TestGenerativeConformanceSingleKernels drives individual random
// profiles (rather than mixes) through solo-vs-oracle comparison with
// more tasks than contexts, so generated kernels also exercise the
// timeslice scheduling path.
func TestGenerativeConformanceSingleKernels(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	m := isa.Default()
	rng := wgen.NewRand(71)
	for iter := 0; iter < iters; iter++ {
		p := wgen.RandomProfile(rng, wgen.Class(iter%3))
		seed := rng.Uint64()
		name := wgen.BenchmarkName(p, seed)
		b, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := b.Compile(m)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		// Six copies of the kernel: more tasks than the 4 contexts.
		var tasks []sim.Task
		for i := 0; i < 6; i++ {
			tasks = append(tasks, sim.Task{Name: fmt.Sprintf("%s#%d", name, i), Prog: prog})
		}
		cfg := sim.DefaultConfig()
		cfg.Scheme = []string{"2SC3", "C4", "3SSS", "IMT"}[iter%4]
		cfg.Contexts = merge.PortsFor(cfg.Scheme)
		cfg.PerfectMemory = iter%2 == 0
		cfg.InstrLimit = 700
		cfg.TimesliceCycles = 300
		cfg.Seed = rng.Uint64()
		t.Run(fmt.Sprintf("%02d_%s", iter, cfg.Scheme), func(t *testing.T) {
			fast, errFast := sim.Run(cfg, tasks)
			ref, errRef := refsim.Run(cfg, tasks)
			if (errFast == nil) != (errRef == nil) {
				t.Fatalf("error divergence: sim %v, refsim %v", errFast, errRef)
			}
			if errFast == nil && !reflect.DeepEqual(fast, ref) {
				t.Fatalf("divergence on %s:\n optimized: %+v\n reference: %+v", name, fast, ref)
			}
		})
	}
}
