package sim

import (
	"testing"

	"vliwmt/internal/cache"
	"vliwmt/internal/compiler"
	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
	"vliwmt/internal/program"
)

// kernel compiles a simple test kernel with the given per-iteration shape.
type kernelSpec struct {
	chains    int // independent ALU chains
	chainLen  int
	loads     int
	footprint uint64
	random    bool
	trip      int
}

func buildKernel(t *testing.T, name string, spec kernelSpec) *program.Program {
	t.Helper()
	b := ir.NewBuilder(name)
	var s int
	if spec.loads > 0 {
		kind := ir.StreamStride
		if spec.random {
			kind = ir.StreamRandom
		}
		fp := spec.footprint
		if fp == 0 {
			fp = 4096
		}
		s = b.Stream(ir.MemStream{Kind: kind, Stride: 8, Footprint: fp})
	}
	b.Block("body")
	for i := 0; i < spec.chains; i++ {
		v := b.ALU()
		b.Chain(v, spec.chainLen-1)
	}
	for i := 0; i < spec.loads; i++ {
		b.Load(s)
	}
	trip := spec.trip
	if trip == 0 {
		trip = 64
	}
	b.Branch("body", ir.Loop(trip))
	p, err := compiler.Compile(b.MustFinish(), compiler.Options{Machine: isa.Default()})
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return p
}

// serialTask models low-ILP code the way real programs exhibit it: a
// sequence of blocks, each a short dependence chain, which BUG-style
// assignment spreads across clusters (one chain per block per cluster).
func serialTask(t *testing.T) Task {
	t.Helper()
	b := ir.NewBuilder("serial")
	for i := 0; i < 4; i++ {
		b.Block(string(rune('a' + i)))
		v := b.ALU()
		b.Chain(v, 4)
	}
	p, err := compiler.Compile(b.MustFinish(), compiler.Options{Machine: isa.Default()})
	if err != nil {
		t.Fatalf("compile serial: %v", err)
	}
	return Task{Name: "serial", Prog: p}
}

func wideTask(t *testing.T) Task {
	return Task{Name: "wide", Prog: buildKernel(t, "wide", kernelSpec{chains: 12, chainLen: 8})}
}

func runOne(t *testing.T, cfg Config, tasks ...Task) *Result {
	t.Helper()
	res, err := Run(cfg, tasks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TimedOut {
		t.Fatalf("run timed out after %d cycles", res.Cycles)
	}
	return res
}

func testConfig(contexts int, scheme string) Config {
	cfg := DefaultConfig()
	cfg.Contexts = contexts
	cfg.Scheme = scheme
	cfg.InstrLimit = 30_000
	cfg.TimesliceCycles = 10_000
	cfg.PerfectMemory = true
	return cfg
}

func TestSingleThreadSerialChainIPC(t *testing.T) {
	cfg := testConfig(1, "")
	res := runOne(t, cfg, serialTask(t))
	// A 20-op serial chain with a loop branch: the kernel is dependence
	// bound, so IPC must be near 1 (21 ops in ~22-23 cycles per iteration).
	if res.IPC < 0.8 || res.IPC > 1.2 {
		t.Errorf("serial chain IPC = %.3f, want about 1", res.IPC)
	}
}

func TestSingleThreadWideKernelIPC(t *testing.T) {
	cfg := testConfig(1, "")
	res := runOne(t, cfg, wideTask(t))
	// 96 independent ops per iteration on a 16-wide machine: high IPC.
	if res.IPC < 5 {
		t.Errorf("wide kernel IPC = %.3f, want > 5", res.IPC)
	}
}

func TestOpsAndInstrsAccounting(t *testing.T) {
	cfg := testConfig(1, "")
	res := runOne(t, cfg, serialTask(t))
	if res.Instrs == 0 || res.Ops == 0 {
		t.Fatal("no instructions retired")
	}
	var sumOps, sumInstrs int64
	for _, th := range res.Threads {
		sumOps += th.Ops
		sumInstrs += th.Instrs
	}
	if sumOps != res.Ops || sumInstrs != res.Instrs {
		t.Errorf("per-thread totals (%d ops, %d instrs) != run totals (%d, %d)",
			sumOps, sumInstrs, res.Ops, res.Instrs)
	}
	if got := float64(res.Ops) / float64(res.Cycles); got != res.IPC {
		t.Errorf("IPC field inconsistent: %f vs %f", res.IPC, got)
	}
}

func TestInstrLimitStopsRun(t *testing.T) {
	cfg := testConfig(1, "")
	cfg.InstrLimit = 1000
	res := runOne(t, cfg, serialTask(t))
	maxRetired := int64(0)
	for _, th := range res.Threads {
		if th.Instrs > maxRetired {
			maxRetired = th.Instrs
		}
	}
	if maxRetired != 1000 {
		t.Errorf("first thread retired %d instructions, want exactly 1000", maxRetired)
	}
}

func TestMultithreadingRecoversWaste(t *testing.T) {
	// Four serial threads on a 4-context CSMT machine: merging distinct
	// clusters should push throughput well above single-thread.
	single := runOne(t, testConfig(1, ""), serialTask(t))
	four := runOne(t, testConfig(4, "3CCC"),
		serialTask(t), serialTask(t), serialTask(t), serialTask(t))
	if four.IPC < 1.5*single.IPC {
		t.Errorf("4-thread CSMT IPC %.3f not well above single %.3f", four.IPC, single.IPC)
	}
}

func TestSMTBeatsOrMatchesCSMT(t *testing.T) {
	tasks := []Task{serialTask(t), wideTask(t), serialTask(t), wideTask(t)}
	smt := runOne(t, testConfig(4, "3SSS"), tasks...)
	csmt := runOne(t, testConfig(4, "3CCC"), tasks...)
	if smt.IPC+1e-9 < csmt.IPC {
		t.Errorf("SMT IPC %.3f below CSMT %.3f", smt.IPC, csmt.IPC)
	}
}

func TestFourThreadSMTBeatsTwoThread(t *testing.T) {
	two := runOne(t, testConfig(2, "1S"), serialTask(t), serialTask(t), serialTask(t), serialTask(t))
	four := runOne(t, testConfig(4, "3SSS"), serialTask(t), serialTask(t), serialTask(t), serialTask(t))
	if four.IPC <= two.IPC {
		t.Errorf("4-thread SMT IPC %.3f not above 2-thread %.3f", four.IPC, two.IPC)
	}
}

// TestSchemeGroupIdentities: schemes the paper reports as identical must
// produce identical cycle counts in full simulation.
func TestSchemeGroupIdentities(t *testing.T) {
	tasks := []Task{serialTask(t), wideTask(t), serialTask(t), wideTask(t)}
	pairs := [][2]string{{"C4", "3CCC"}, {"2SC3", "3SCC"}, {"2C3S", "3CCS"}}
	for _, pair := range pairs {
		a := runOne(t, testConfig(4, pair[0]), tasks...)
		b := runOne(t, testConfig(4, pair[1]), tasks...)
		if a.Cycles != b.Cycles || a.Ops != b.Ops {
			t.Errorf("%s vs %s: %d cycles/%d ops vs %d cycles/%d ops",
				pair[0], pair[1], a.Cycles, a.Ops, b.Cycles, b.Ops)
		}
	}
}

func TestDeterminism(t *testing.T) {
	tasks := []Task{serialTask(t), wideTask(t), serialTask(t), wideTask(t)}
	a := runOne(t, testConfig(4, "2SC3"), tasks...)
	b := runOne(t, testConfig(4, "2SC3"), tasks...)
	if a.Cycles != b.Cycles || a.Ops != b.Ops || a.IPC != b.IPC {
		t.Error("identical configurations diverged")
	}
	cfg := testConfig(4, "2SC3")
	cfg.Seed = 99
	c := runOne(t, cfg, tasks...)
	_ = c // different seed may or may not change results; must not crash
}

func TestMergeHistogramConsistent(t *testing.T) {
	tasks := []Task{serialTask(t), serialTask(t), serialTask(t), serialTask(t)}
	res := runOne(t, testConfig(4, "3SSS"), tasks...)
	var cycles, weighted int64
	for k, n := range res.MergeHist {
		cycles += n
		weighted += int64(k) * n
	}
	if cycles != res.Cycles {
		t.Errorf("merge histogram covers %d cycles of %d", cycles, res.Cycles)
	}
	if weighted != res.Instrs {
		t.Errorf("merge histogram weights %d instructions of %d", weighted, res.Instrs)
	}
}

func TestCacheMissesSlowExecution(t *testing.T) {
	spec := kernelSpec{chains: 2, chainLen: 4, loads: 4, footprint: 16 << 20, random: true}
	missTask := Task{Name: "missy", Prog: buildKernel(t, "missy", spec)}

	perfect := testConfig(1, "")
	perfect.InstrLimit = 20_000
	resPerfect := runOne(t, perfect, missTask)

	real := perfect
	real.PerfectMemory = false
	real.ICache = cache.DefaultConfig()
	real.DCache = cache.DefaultConfig()
	resReal := runOne(t, real, missTask)

	if resReal.IPC >= resPerfect.IPC {
		t.Errorf("cache misses did not reduce IPC: %.3f vs %.3f", resReal.IPC, resPerfect.IPC)
	}
	if resReal.DCache.Misses == 0 {
		t.Error("random 16MB footprint produced no data misses")
	}
	var stallMem int64
	for _, th := range resReal.Threads {
		stallMem += th.StallMem
	}
	if stallMem == 0 {
		t.Error("no memory stall cycles recorded")
	}
}

func TestBranchPenaltyCosts(t *testing.T) {
	// The same body once as an always-taken self-loop (pays the 2-cycle
	// squash every iteration) and once as a branchless wrap-around block.
	body := func(b *ir.Builder) {
		for i := 0; i < 4; i++ {
			v := b.ALU()
			b.Chain(v, 3)
		}
	}
	bb := ir.NewBuilder("branchy")
	bb.Block("body")
	body(bb)
	bb.Branch("body", ir.Always())
	pBranchy, err := compiler.Compile(bb.MustFinish(), compiler.Options{Machine: isa.Default()})
	if err != nil {
		t.Fatal(err)
	}
	bf := ir.NewBuilder("flat")
	bf.Block("body")
	body(bf)
	pFlat, err := compiler.Compile(bf.MustFinish(), compiler.Options{Machine: isa.Default()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1, "")
	rBranchy := runOne(t, cfg, Task{Name: "branchy", Prog: pBranchy})
	rFlat := runOne(t, cfg, Task{Name: "flat", Prog: pFlat})
	if rBranchy.IPC >= rFlat.IPC {
		t.Errorf("taken-branch penalty not visible: branchy %.3f vs flat %.3f", rBranchy.IPC, rFlat.IPC)
	}
	var br int64
	for _, th := range rBranchy.Threads {
		br += th.StallBranch
	}
	if br == 0 {
		t.Error("no branch stall cycles recorded")
	}
}

func TestTimesliceScheduling(t *testing.T) {
	// Five tasks on one context: all make progress across timeslices.
	cfg := testConfig(1, "")
	cfg.InstrLimit = 20_000
	cfg.TimesliceCycles = 1_000
	tasks := []Task{
		serialTask(t), wideTask(t), serialTask(t), wideTask(t), serialTask(t),
	}
	res := runOne(t, cfg, tasks...)
	ran := 0
	for _, th := range res.Threads {
		if th.Instrs > 0 {
			ran++
		}
	}
	if ran < len(tasks) {
		t.Errorf("only %d of %d tasks ran under timeslicing", ran, len(tasks))
	}
}

func TestFixedPriorityStarvesLowPriority(t *testing.T) {
	// With fixed priority and all-dense threads (every instruction uses
	// every cluster), CSMT serves thread 0 only; rotation shares.
	dense := Task{Name: "dense", Prog: buildKernel(t, "dense", kernelSpec{chains: 16, chainLen: 8})}
	mk := func(fixed bool) *Result {
		cfg := testConfig(4, "3CCC")
		cfg.FixedPriority = fixed
		cfg.InstrLimit = 10_000
		return runOne(t, cfg, dense, dense, dense, dense)
	}
	fixed := mk(true)
	rotated := mk(false)
	minInstr := func(r *Result) int64 {
		m := r.Threads[0].Instrs
		for _, th := range r.Threads {
			if th.Instrs < m {
				m = th.Instrs
			}
		}
		return m
	}
	if minInstr(fixed)*4 > minInstr(rotated) {
		t.Errorf("fixed priority did not starve: min %d vs rotated %d", minInstr(fixed), minInstr(rotated))
	}
}

func TestRunValidation(t *testing.T) {
	good := serialTask(t)
	cases := []struct {
		name string
		cfg  Config
		ts   []Task
	}{
		{"no tasks", testConfig(1, ""), nil},
		{"zero contexts", func() Config { c := testConfig(1, ""); c.Contexts = 0; return c }(), []Task{good}},
		{"bad scheme", testConfig(4, "XYZ"), []Task{good, good, good, good}},
		{"port mismatch", testConfig(4, "1S"), []Task{good, good, good, good}},
		{"zero instr limit", func() Config { c := testConfig(1, ""); c.InstrLimit = 0; return c }(), []Task{good}},
		{"nil program", testConfig(1, ""), []Task{{Name: "nil"}}},
		{"bad machine", func() Config { c := testConfig(1, ""); c.Machine.Clusters = 0; return c }(), []Task{good}},
		{"bad icache", func() Config {
			c := testConfig(1, "")
			c.PerfectMemory = false
			c.ICache = cache.Config{Size: 3}
			return c
		}(), []Task{good}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.cfg, tc.ts); err == nil {
			t.Errorf("%s: Run succeeded", tc.name)
		}
	}
}

func TestMaxCyclesTimeout(t *testing.T) {
	cfg := testConfig(1, "")
	cfg.InstrLimit = 1 << 40 // unreachable
	cfg.MaxCycles = 5_000
	res, err := Run(cfg, []Task{serialTask(t)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("run did not report timeout")
	}
	if res.Cycles != 5_000 {
		t.Errorf("timed-out run simulated %d cycles, want 5000", res.Cycles)
	}
}
