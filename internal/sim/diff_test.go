package sim_test

// The bit-identity contract of the optimized simulator: sim.Run (compiled
// selectors, stall fast-forward, allocation-free core) must return
// exactly the Result the naive reference loop in internal/refsim
// returns — same cycles, merge histogram, per-thread stats, cache stats
// — for every scheme, memory model and seed. These tests enforce it
// over the full paper matrix and over randomized configurations.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/refsim"
	"vliwmt/internal/sim"
	"vliwmt/internal/workload"
)

// diffTasks compiles a pool of paper benchmarks once for the default
// machine: a spread of ILP classes and memory behaviours.
func diffTasks(t testing.TB, m isa.Machine) []sim.Task {
	t.Helper()
	names := []string{"mcf", "blowfish", "g721encode", "djpeg", "x264", "colorspace"}
	tasks := make([]sim.Task, 0, len(names))
	for _, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Compile(m)
		if err != nil {
			t.Fatalf("compile %s: %v", n, err)
		}
		tasks = append(tasks, sim.Task{Name: n, Prog: p})
	}
	return tasks
}

// runBoth runs the optimized and reference simulators on identical
// inputs and fails unless the Results are deeply equal.
func runBoth(t *testing.T, cfg sim.Config, tasks []sim.Task) {
	t.Helper()
	fast, errFast := sim.Run(cfg, tasks)
	ref, errRef := refsim.Run(cfg, tasks)
	if (errFast == nil) != (errRef == nil) {
		t.Fatalf("error divergence: sim %v, refsim %v", errFast, errRef)
	}
	if errFast != nil {
		return
	}
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("result divergence:\n optimized: %+v\n reference: %+v", fast, ref)
	}
}

// TestDifferentialPaperMatrix runs the full acceptance matrix: all 16
// paper schemes, the IMT/BMT baselines and a custom tree expression,
// under perfect and realistic memory, for seeds 1..3, with more tasks
// than contexts so timeslice scheduling (and its RNG draws) is
// exercised.
func TestDifferentialPaperMatrix(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)
	schemes := append(merge.PaperSchemes4(), "IMT", "BMT", "C(S(T0,T1),T2,T3)")
	for _, scheme := range schemes {
		contexts := merge.PortsFor(scheme)
		for _, perfect := range []bool{true, false} {
			for seed := uint64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/perfect=%v/seed=%d", scheme, perfect, seed)
				t.Run(name, func(t *testing.T) {
					cfg := sim.DefaultConfig()
					cfg.Scheme = scheme
					cfg.Contexts = contexts
					cfg.PerfectMemory = perfect
					cfg.InstrLimit = 1_500
					cfg.TimesliceCycles = 700
					cfg.Seed = seed
					runBoth(t, cfg, tasks)
				})
			}
		}
	}
}

// TestDifferentialStallHeavy aims at the fast-forward path specifically:
// a tiny data cache with a long miss penalty makes all-stalled spans the
// common case, including spans that cross timeslice boundaries.
func TestDifferentialStallHeavy(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)
	cfg := sim.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 1_000
	cfg.TimesliceCycles = 300
	cfg.DCache = cache.Config{Size: 4 << 10, LineSize: 64, Ways: 2, MissPenalty: 150}
	runBoth(t, cfg, tasks)

	// Zero-penalty misses: a stalled thread whose readyAt equals the
	// current cycle must wake next cycle, not never.
	cfg.ICache = cache.Config{Size: 4 << 10, LineSize: 64, Ways: 2, MissPenalty: 0}
	runBoth(t, cfg, tasks)
}

// TestDifferentialTimeout covers the MaxCycles fast-forward clamp: when
// every thread is stalled past MaxCycles the optimized loop must report
// the same truncated cycle count and timeout flag.
func TestDifferentialTimeout(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)[:4]
	cfg := sim.DefaultConfig()
	cfg.Scheme = "3CCC"
	cfg.InstrLimit = 1 << 40 // unreachable
	cfg.MaxCycles = 3_000
	cfg.DCache = cache.Config{Size: 1 << 10, LineSize: 64, Ways: 1, MissPenalty: 500}
	runBoth(t, cfg, tasks)
}

// TestDifferentialRandomConfigs fuzzes the configuration space: random
// schemes (including FixedPriority, baselines, single context, task
// counts above and below the context count, odd cache geometries and
// timeslices), each compared run-for-run against the oracle.
func TestDifferentialRandomConfigs(t *testing.T) {
	m := isa.Default()
	all := diffTasks(t, m)
	r := rand.New(rand.NewSource(404))
	schemes := []string{"3SSS", "3CCC", "2SC3", "2SS", "2CS", "C4", "1S", "IMT", "BMT", "S(C(T3,T1),C(T2,T0))"}
	iters := 40
	if testing.Short() {
		iters = 12
	}
	for i := 0; i < iters; i++ {
		scheme := schemes[r.Intn(len(schemes))]
		contexts := merge.PortsFor(scheme)
		if scheme == "IMT" || scheme == "BMT" {
			contexts = []int{2, 4}[r.Intn(2)]
		}
		if r.Intn(8) == 0 {
			contexts, scheme = 1, ""
		}
		cfg := sim.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Contexts = contexts
		cfg.PerfectMemory = r.Intn(2) == 0
		cfg.FixedPriority = r.Intn(4) == 0
		cfg.InstrLimit = int64(200 + r.Intn(1200))
		cfg.TimesliceCycles = int64(100 + r.Intn(900))
		cfg.Seed = r.Uint64()
		if !cfg.PerfectMemory {
			cfg.DCache = cache.Config{Size: 4 << 10, LineSize: 64, Ways: 2, MissPenalty: r.Intn(200)}
		}
		nTasks := 1 + r.Intn(len(all))
		if nTasks < contexts {
			nTasks = contexts
		}
		t.Run(fmt.Sprintf("%02d_%s_c%d_n%d", i, scheme, contexts, nTasks), func(t *testing.T) {
			runBoth(t, cfg, all[:nTasks])
		})
	}
}

// TestDifferentialIMTFewerTasksThanContexts pins the idle-context case:
// baselines run at 4 contexts with fewer tasks, leaving contexts idle
// forever.
func TestDifferentialIMTFewerTasksThanContexts(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)[:2]
	for _, scheme := range []string{"IMT", "BMT"} {
		cfg := sim.DefaultConfig()
		cfg.Scheme = scheme
		cfg.InstrLimit = 2_000
		runBoth(t, cfg, tasks)
	}
}

// TestSteadyStateZeroAllocs asserts the allocation-free core: heap
// allocations must not grow with simulated cycles. Each Run pays a
// fixed setup cost (states, walkers, caches, the per-run core buffers);
// a 6x longer run must allocate nothing more.
func TestSteadyStateZeroAllocs(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)[:4]
	measure := func(instrs int64) float64 {
		cfg := sim.DefaultConfig()
		cfg.Scheme = "2SC3"
		cfg.InstrLimit = instrs
		cfg.TimesliceCycles = 1_000
		cfg.DCache = cache.Config{Size: 8 << 10, LineSize: 64, Ways: 2, MissPenalty: 20}
		return testing.AllocsPerRun(5, func() {
			if _, err := sim.Run(cfg, tasks); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(2_000)
	long := measure(12_000)
	if long > short {
		t.Errorf("allocations grew with run length: %.1f for 2k instrs, %.1f for 12k — the cycle loop allocates", short, long)
	}
}

// TestFastForwardAccounting checks the bulk accounting of skipped spans
// directly: cycles, the merge histogram and EmptyCycles must still
// cover the whole run.
func TestFastForwardAccounting(t *testing.T) {
	m := isa.Default()
	tasks := diffTasks(t, m)[:4]
	cfg := sim.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 2_000
	cfg.DCache = cache.Config{Size: 2 << 10, LineSize: 64, Ways: 2, MissPenalty: 200}
	res, err := sim.Run(cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	var hist int64
	for _, n := range res.MergeHist {
		hist += n
	}
	if hist != res.Cycles {
		t.Errorf("merge histogram covers %d of %d cycles", hist, res.Cycles)
	}
	if res.MergeHist[0] == 0 {
		t.Error("miss-heavy run recorded no empty cycles; fast-forward path untested")
	}
	if res.EmptyCycles < res.MergeHist[0] {
		t.Errorf("EmptyCycles %d below all-stalled cycles %d", res.EmptyCycles, res.MergeHist[0])
	}
}
