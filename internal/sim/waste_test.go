package sim

import (
	"fmt"
	"math"
	"testing"

	"vliwmt/internal/compiler"
	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
)

// TestWasteAccountingIdentity: utilisation + vertical + horizontal waste
// always sums to one.
func TestWasteAccountingIdentity(t *testing.T) {
	for _, scheme := range []string{"3SSS", "3CCC", "2SC3", "IMT", "BMT"} {
		res := runOne(t, testConfig(4, scheme),
			serialTask(t), wideTask(t), serialTask(t), wideTask(t))
		sum := res.Utilisation() + res.VerticalWaste() + res.HorizontalWaste()
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: waste identity broken: %.6f", scheme, sum)
		}
		if res.Utilisation() <= 0 || res.Utilisation() > 1 {
			t.Errorf("%s: utilisation %.3f out of range", scheme, res.Utilisation())
		}
	}
	var empty Result
	if empty.Utilisation() != 0 || empty.VerticalWaste() != 0 || empty.HorizontalWaste() != 0 {
		t.Error("zero-value result should report zero waste")
	}
}

// TestMultithreadingReducesVerticalWaste: the core premise of the paper —
// merging threads converts vertical waste into useful issue. A chain of
// two-cycle multiplies leaves every other cycle empty (NOP bundles) on a
// single-thread machine; merged threads fill those cycles.
func gappyTask(t *testing.T) Task {
	t.Helper()
	b := ir.NewBuilder("gappy")
	b.Block("body")
	v := b.Mul()
	for i := 0; i < 9; i++ {
		v = b.Mul(v)
	}
	p, err := compiler.Compile(b.MustFinish(), compiler.Options{Machine: isa.Default()})
	if err != nil {
		t.Fatal(err)
	}
	return Task{Name: "gappy", Prog: p}
}

func TestMultithreadingReducesVerticalWaste(t *testing.T) {
	single := runOne(t, testConfig(1, ""), gappyTask(t))
	if single.VerticalWaste() < 0.3 {
		t.Fatalf("multiply chain should leave gap cycles; vertical waste %.3f", single.VerticalWaste())
	}
	four := runOne(t, testConfig(4, "3SSS"),
		gappyTask(t), gappyTask(t), gappyTask(t), gappyTask(t))
	if four.VerticalWaste() >= single.VerticalWaste() {
		t.Errorf("4-thread SMT vertical waste %.3f not below single-thread %.3f",
			four.VerticalWaste(), single.VerticalWaste())
	}
	if four.Utilisation() <= single.Utilisation() {
		t.Errorf("4-thread SMT utilisation %.3f not above single-thread %.3f",
			four.Utilisation(), single.Utilisation())
	}
}

// TestIMTCapsAtOneInstructionPerCycle: interleaved multithreading issues
// at most one thread per cycle, so its merge histogram has no entry above
// one and its IPC cannot exceed the best single thread's width usage.
func TestIMTCapsAtOneInstructionPerCycle(t *testing.T) {
	res := runOne(t, testConfig(4, "IMT"),
		serialTask(t), serialTask(t), serialTask(t), serialTask(t))
	for k := 2; k < len(res.MergeHist); k++ {
		if res.MergeHist[k] != 0 {
			t.Errorf("IMT issued %d threads together in %d cycles", k, res.MergeHist[k])
		}
	}
	smt := runOne(t, testConfig(4, "3SSS"),
		serialTask(t), serialTask(t), serialTask(t), serialTask(t))
	if smt.IPC <= res.IPC {
		t.Errorf("SMT IPC %.3f not above IMT %.3f", smt.IPC, res.IPC)
	}
}

// TestBMTVsIMTOnStallHeavyWork: with frequent long stalls, both baselines
// keep the machine busy; BMT must at least roughly match IMT (it switches
// only on blocks) and both must beat a single context.
func TestBMTVsIMTOnStallHeavyWork(t *testing.T) {
	spec := kernelSpec{chains: 2, chainLen: 4, loads: 2, footprint: 8 << 20, random: true}
	mk := func() Task { return Task{Name: "missy", Prog: buildKernel(t, "missy", spec)} }
	cfg := testConfig(4, "IMT")
	cfg.PerfectMemory = false
	imt := runOne(t, cfg, mk(), mk(), mk(), mk())
	cfg.Scheme = "BMT"
	bmt := runOne(t, cfg, mk(), mk(), mk(), mk())
	single := testConfig(1, "")
	single.PerfectMemory = false
	one := runOne(t, single, mk())
	if imt.IPC <= one.IPC || bmt.IPC <= one.IPC {
		t.Errorf("baselines do not hide stalls: IMT %.3f BMT %.3f single %.3f",
			imt.IPC, bmt.IPC, one.IPC)
	}
}

// TestICachePressure: a kernel whose code footprint exceeds the 64KB
// ICache suffers fetch stalls that a perfect memory run does not.
func TestICachePressure(t *testing.T) {
	b := ir.NewBuilder("bigcode")
	// 900 blocks x 16 one-op instructions x 8 bytes ≈ 115KB of code.
	for i := 0; i < 900; i++ {
		b.Block(fmt.Sprintf("b%d", i))
		v := b.ALU()
		b.Chain(v, 15)
	}
	p, err := compiler.Compile(b.MustFinish(), compiler.Options{Machine: isa.Default()})
	if err != nil {
		t.Fatal(err)
	}
	if p.CodeSize < 100<<10 {
		t.Fatalf("code footprint only %d bytes; test needs > 100KB", p.CodeSize)
	}
	cfg := testConfig(1, "")
	cfg.PerfectMemory = false
	cfg.InstrLimit = 20_000
	res := runOne(t, cfg, Task{Name: "bigcode", Prog: p})
	if res.ICache.Misses == 0 {
		t.Error("no ICache misses on a 120KB code loop")
	}
	var fetch int64
	for _, th := range res.Threads {
		fetch += th.StallFetch
	}
	if fetch == 0 {
		t.Error("no fetch stall cycles recorded")
	}
}

// TestSchedulingSeedChangesOSDecisions: with more tasks than contexts the
// seed drives random replacement; two different seeds must not produce
// bit-identical merge histograms forever (statistically certain here).
func TestSchedulingSeedChangesOSDecisions(t *testing.T) {
	mk := func() []Task {
		return []Task{serialTask(t), wideTask(t), serialTask(t), wideTask(t), serialTask(t)}
	}
	cfg := testConfig(2, "1S")
	cfg.TimesliceCycles = 500
	a := runOne(t, cfg, mk()...)
	cfg.Seed = 77
	b := runOne(t, cfg, mk()...)
	if a.Cycles == b.Cycles && a.Ops == b.Ops && a.Instrs == b.Instrs {
		t.Log("seeds produced identical aggregate results (possible but unlikely); checking histograms")
		same := true
		for k := range a.MergeHist {
			if a.MergeHist[k] != b.MergeHist[k] {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical runs")
		}
	}
}
