package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func op(class OpClass, cluster int) Op { return Op{Class: class, Cluster: uint8(cluster)} }

// figure1Pairs reconstructs the three instruction pairs of the paper's
// Figure 1 on its 4-cluster, 2-issue-per-cluster example machine, matching
// the properties the paper states for each pair:
//
// Pair I:   conflicts at clusters 0, 1 and 3 at both operation and cluster
//
//	level — unmergeable by either scheme.
//
// Pair II:  cluster-level conflicts at clusters 0, 2 and 3 but no
//
//	operation-level conflict — SMT merges it, CSMT does not
//	(merged packet: add mov | ld mpy | add st | sub add).
//
// Pair III: thread 0 uses only clusters 1 and 2, thread 1 only 0 and 3 —
//
//	both schemes merge it
//	(merged packet: shl mov | ld sub | st - | add mpy).
func figure1Pairs() (m Machine, pairs [3][2]Instruction) {
	m = Default()
	m.IssueWidth = 2
	m.Muls = 1
	pairs[0][0] = NewInstruction([]Op{op(OpALU, 0), op(OpMem, 1), op(OpALU, 1), op(OpALU, 2), op(OpALU, 3), op(OpALU, 3)})
	pairs[0][1] = NewInstruction([]Op{op(OpMul, 0), op(OpALU, 0), op(OpALU, 1), op(OpMem, 3)})
	pairs[1][0] = NewInstruction([]Op{op(OpALU, 0), op(OpALU, 2), op(OpALU, 3)})
	pairs[1][1] = NewInstruction([]Op{op(OpALU, 0), op(OpMem, 1), op(OpMul, 1), op(OpMem, 2), op(OpALU, 3)})
	pairs[2][0] = NewInstruction([]Op{op(OpMem, 1), op(OpALU, 1), op(OpMem, 2)})
	pairs[2][1] = NewInstruction([]Op{op(OpALU, 0), op(OpALU, 0), op(OpALU, 3), op(OpMul, 3)})
	return m, pairs
}

// TestFigure1Merging reproduces the merging outcomes of the paper's
// Figure 1: Pair I merges under neither scheme, Pair II merges under SMT
// only, Pair III merges under both.
func TestFigure1Merging(t *testing.T) {
	m, pairs := figure1Pairs()
	type want struct{ smt, csmt bool }
	wants := [3]want{{false, false}, {true, false}, {true, true}}
	for i, pair := range pairs {
		a, b := pair[0].Occ, pair[1].Occ
		if got := a.CompatSMT(b, &m); got != wants[i].smt {
			t.Errorf("pair %s: CompatSMT = %v, want %v", []string{"I", "II", "III"}[i], got, wants[i].smt)
		}
		if got := a.CompatCSMT(b); got != wants[i].csmt {
			t.Errorf("pair %s: CompatCSMT = %v, want %v", []string{"I", "II", "III"}[i], got, wants[i].csmt)
		}
	}
}

func TestOccupancyOf(t *testing.T) {
	in := NewInstruction([]Op{op(OpALU, 0), op(OpMul, 0), op(OpMem, 2), op(OpBranch, 0)})
	occ := in.Occ
	if occ.Ops != 4 {
		t.Errorf("Ops = %d, want 4", occ.Ops)
	}
	c0 := occ.Clusters[0]
	if c0.Total != 3 || c0.Mul != 1 || c0.Branch != 1 || c0.Mem != 0 {
		t.Errorf("cluster 0 use = %+v", c0)
	}
	c2 := occ.Clusters[2]
	if c2.Total != 1 || c2.Mem != 1 {
		t.Errorf("cluster 2 use = %+v", c2)
	}
	if occ.ClusterMask() != 0b0101 {
		t.Errorf("ClusterMask = %04b, want 0101", occ.ClusterMask())
	}
}

func TestCompatCSMTDisjoint(t *testing.T) {
	a := NewInstruction([]Op{op(OpALU, 0), op(OpALU, 1)}).Occ
	b := NewInstruction([]Op{op(OpALU, 2), op(OpALU, 3)}).Occ
	c := NewInstruction([]Op{op(OpALU, 1)}).Occ
	if !a.CompatCSMT(b) {
		t.Error("disjoint clusters should be CSMT compatible")
	}
	if a.CompatCSMT(c) {
		t.Error("overlapping clusters should not be CSMT compatible")
	}
	if !a.CompatCSMT(Occupancy{}) {
		t.Error("anything is CSMT compatible with the empty packet")
	}
}

func TestCompatSMTResourceLimits(t *testing.T) {
	m := Default()
	// Issue width: 3+2 fits in 4? No: 3+2=5 > 4.
	a := NewInstruction([]Op{op(OpALU, 0), op(OpALU, 0), op(OpALU, 0)}).Occ
	b := NewInstruction([]Op{op(OpALU, 0), op(OpALU, 0)}).Occ
	if a.CompatSMT(b, &m) {
		t.Error("5 ops on a 4-issue cluster should not merge")
	}
	one := NewInstruction([]Op{op(OpALU, 0)}).Occ
	if !a.CompatSMT(one, &m) {
		t.Error("4 ops on a 4-issue cluster should merge")
	}
	// Multiplier limit: 2 per cluster.
	mul1 := NewInstruction([]Op{op(OpMul, 1)}).Occ
	mul2 := NewInstruction([]Op{op(OpMul, 1), op(OpMul, 1)}).Occ
	if !mul1.CompatSMT(mul1, &m) {
		t.Error("two multiplies fit the two multipliers")
	}
	if mul1.CompatSMT(mul2, &m) {
		t.Error("three multiplies exceed the two multipliers")
	}
	// Memory limit: 1 per cluster.
	mem := NewInstruction([]Op{op(OpMem, 2)}).Occ
	if mem.CompatSMT(mem, &m) {
		t.Error("two memory ops exceed the single load/store unit")
	}
	// Branch limit: 1, on cluster 0 only.
	br := NewInstruction([]Op{op(OpBranch, 0)}).Occ
	if br.CompatSMT(br, &m) {
		t.Error("two branches exceed the single branch unit")
	}
}

func TestUnionAddsCounts(t *testing.T) {
	a := NewInstruction([]Op{op(OpALU, 0), op(OpMul, 1)}).Occ
	b := NewInstruction([]Op{op(OpMem, 2), op(OpALU, 1)}).Occ
	u := a.Union(b)
	if u.Ops != 4 {
		t.Errorf("union ops = %d, want 4", u.Ops)
	}
	if u.Clusters[1].Total != 2 || u.Clusters[1].Mul != 1 {
		t.Errorf("cluster 1 union = %+v", u.Clusters[1])
	}
	if u.ClusterMask() != 0b0111 {
		t.Errorf("union mask = %04b", u.ClusterMask())
	}
}

func TestFitsAlone(t *testing.T) {
	m := Default()
	ok := NewInstruction([]Op{op(OpALU, 0), op(OpALU, 0), op(OpMul, 0), op(OpMem, 0)}).Occ
	if !ok.FitsAlone(&m) {
		t.Error("4 ops incl. 1 mul + 1 mem should fit a cluster")
	}
	tooMany := NewInstruction([]Op{op(OpALU, 1), op(OpALU, 1), op(OpALU, 1), op(OpALU, 1), op(OpALU, 1)}).Occ
	if tooMany.FitsAlone(&m) {
		t.Error("5 ops on one cluster must not fit a 4-issue cluster")
	}
	brWrong := NewInstruction([]Op{op(OpBranch, 2)}).Occ
	if brWrong.FitsAlone(&m) {
		t.Error("branch on a non-branch cluster must not fit")
	}
	outside := Occupancy{}
	outside.Clusters[6].Total = 1
	if outside.FitsAlone(&m) {
		t.Error("use of a cluster beyond the machine must not fit")
	}
}

// randomOccupancy builds an occupancy that fits machine m on its own.
func randomOccupancy(r *rand.Rand, m *Machine) Occupancy {
	var ops []Op
	for c := 0; c < m.Clusters; c++ {
		n := r.Intn(m.IssueWidth + 1)
		muls, mems := 0, 0
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				if muls < m.Muls {
					ops = append(ops, op(OpMul, c))
					muls++
					continue
				}
				fallthrough
			case 1:
				if mems < m.MemUnits {
					ops = append(ops, op(OpMem, c))
					mems++
					continue
				}
				fallthrough
			default:
				ops = append(ops, op(OpALU, c))
			}
		}
	}
	return OccupancyOf(ops)
}

// Property: CSMT compatibility implies SMT compatibility (cluster-disjoint
// packets can always be merged at operation level too), and both relations
// are symmetric.
func TestCompatProperties(t *testing.T) {
	m := Default()
	r := rand.New(rand.NewSource(1))
	f := func(seedA, seedB int64) bool {
		a := randomOccupancy(rand.New(rand.NewSource(seedA)), &m)
		b := randomOccupancy(rand.New(rand.NewSource(seedB)), &m)
		if a.CompatCSMT(b) && !a.CompatSMT(b, &m) {
			return false
		}
		if a.CompatCSMT(b) != b.CompatCSMT(a) {
			return false
		}
		return a.CompatSMT(b, &m) == b.CompatSMT(a, &m)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: merging two SMT-compatible packets yields a packet that still
// fits the machine on its own.
func TestUnionFitsProperty(t *testing.T) {
	m := Default()
	f := func(seedA, seedB int64) bool {
		a := randomOccupancy(rand.New(rand.NewSource(seedA)), &m)
		b := randomOccupancy(rand.New(rand.NewSource(seedB)), &m)
		if !a.CompatSMT(b, &m) {
			return true
		}
		return a.Union(b).FitsAlone(&m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInstructionValidate(t *testing.T) {
	m := Default()
	good := NewInstruction([]Op{op(OpALU, 0), op(OpMem, 3)})
	if err := good.Validate(&m); err != nil {
		t.Errorf("valid instruction rejected: %v", err)
	}
	badCluster := NewInstruction([]Op{op(OpALU, 5)})
	if err := badCluster.Validate(&m); err == nil {
		t.Error("instruction on cluster 5 of 4-cluster machine accepted")
	}
}

func TestInstructionStringAndSize(t *testing.T) {
	empty := NewInstruction(nil)
	if empty.String() != "nop" {
		t.Errorf("empty instruction String = %q", empty.String())
	}
	if empty.EncodedSize() != 4 {
		t.Errorf("empty instruction size = %d, want 4", empty.EncodedSize())
	}
	in := NewInstruction([]Op{op(OpMem, 1), op(OpALU, 0)})
	if in.EncodedSize() != 12 {
		t.Errorf("2-op instruction size = %d, want 12", in.EncodedSize())
	}
	// NewInstruction sorts by cluster.
	if in.Ops[0].Cluster != 0 {
		t.Errorf("ops not sorted by cluster: %v", in)
	}
}
