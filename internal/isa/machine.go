// Package isa defines the clustered VLIW machine model used throughout the
// repository: operation classes, per-cluster functional-unit constraints,
// VLIW instructions and the occupancy summaries consumed by the thread
// merging hardware.
//
// The model follows the VEX/HP-ST Lx architecture evaluated in the paper:
// M clusters, W issue slots per cluster, one load/store unit and two
// multipliers per cluster, ALU operations executable at any slot, and a
// single branch unit attached to cluster 0. Memory and multiply operations
// have a latency of two cycles; everything else completes in one.
package isa

import (
	"errors"
	"fmt"
)

// MaxClusters is the maximum number of clusters supported by the fixed-size
// occupancy summaries. Eight clusters is double the paper's largest
// configuration and keeps summaries in a single cache line.
const MaxClusters = 8

// MaxIssueWidth is the maximum number of issue slots per cluster.
const MaxIssueWidth = 8

// Machine describes a clustered VLIW processor configuration.
//
// The zero value is not a valid machine; use Default for the paper's
// 4-cluster, 4-issue-per-cluster configuration or fill in the fields and
// call Validate.
type Machine struct {
	// Clusters is the number of register-file clusters (M).
	Clusters int
	// IssueWidth is the number of issue slots per cluster (W). Every slot
	// can execute an ALU operation.
	IssueWidth int
	// Muls is the number of multiplier units per cluster.
	Muls int
	// MemUnits is the number of load/store units per cluster.
	MemUnits int
	// BranchClusters is the number of clusters (starting from cluster 0)
	// that host a branch unit. The paper's architecture resolves branches
	// on cluster 0 only.
	BranchClusters int

	// LatencyALU, LatencyMul and LatencyMem are operation latencies in
	// cycles. Copy is the latency of an intercluster copy.
	LatencyALU, LatencyMul, LatencyMem, LatencyCopy int

	// BranchPenalty is the number of squashed cycles after a taken branch
	// (there is no branch predictor; fall-through is the predicted path).
	BranchPenalty int
}

// Default returns the machine configuration used in the paper's evaluation:
// 16-issue, 4 clusters x 4 issue slots, 2 multipliers and 1 load/store unit
// per cluster, branch unit on cluster 0, 2-cycle memory and multiply
// latency, and a 2-cycle taken-branch penalty.
func Default() Machine {
	return Machine{
		Clusters:       4,
		IssueWidth:     4,
		Muls:           2,
		MemUnits:       1,
		BranchClusters: 1,
		LatencyALU:     1,
		LatencyMul:     2,
		LatencyMem:     2,
		LatencyCopy:    1,
		BranchPenalty:  2,
	}
}

// Validate reports whether the machine description is internally consistent.
func (m Machine) Validate() error {
	switch {
	case m.Clusters < 1 || m.Clusters > MaxClusters:
		return fmt.Errorf("isa: clusters must be in [1,%d], got %d", MaxClusters, m.Clusters)
	case m.IssueWidth < 1 || m.IssueWidth > MaxIssueWidth:
		return fmt.Errorf("isa: issue width must be in [1,%d], got %d", MaxIssueWidth, m.IssueWidth)
	case m.Muls < 0 || m.Muls > m.IssueWidth:
		return fmt.Errorf("isa: multipliers per cluster must be in [0,%d], got %d", m.IssueWidth, m.Muls)
	case m.MemUnits < 0 || m.MemUnits > m.IssueWidth:
		return fmt.Errorf("isa: memory units per cluster must be in [0,%d], got %d", m.IssueWidth, m.MemUnits)
	case m.BranchClusters < 0 || m.BranchClusters > m.Clusters:
		return fmt.Errorf("isa: branch clusters must be in [0,%d], got %d", m.Clusters, m.BranchClusters)
	case m.LatencyALU < 1 || m.LatencyMul < 1 || m.LatencyMem < 1 || m.LatencyCopy < 1:
		return errors.New("isa: operation latencies must be at least one cycle")
	case m.BranchPenalty < 0:
		return errors.New("isa: branch penalty must be non-negative")
	}
	return nil
}

// TotalIssueWidth returns the machine-wide issue width (Clusters * IssueWidth).
func (m Machine) TotalIssueWidth() int { return m.Clusters * m.IssueWidth }

// Latency returns the latency in cycles of an operation of class c.
func (m Machine) Latency(c OpClass) int {
	switch c {
	case OpMul:
		return m.LatencyMul
	case OpMem:
		return m.LatencyMem
	case OpCopy:
		return m.LatencyCopy
	default:
		return m.LatencyALU
	}
}

// UnitsFor returns how many issue slots of cluster cl can accept an
// operation of class c.
func (m Machine) UnitsFor(c OpClass, cl int) int {
	switch c {
	case OpMul:
		return m.Muls
	case OpMem:
		return m.MemUnits
	case OpBranch:
		if cl < m.BranchClusters {
			return 1
		}
		return 0
	default:
		return m.IssueWidth
	}
}

func (m Machine) String() string {
	return fmt.Sprintf("%d-cluster x %d-issue (%d-wide) VLIW", m.Clusters, m.IssueWidth, m.TotalIssueWidth())
}
