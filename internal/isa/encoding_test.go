package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := NewInstruction([]Op{
		{Class: OpALU, Cluster: 0},
		{Class: OpMem, Cluster: 2, Stream: 7, IsStore: true},
		{Class: OpBranch, Cluster: 0, Stream: 3},
		{Class: OpMul, Cluster: 1},
	})
	buf := AppendEncoded(nil, in)
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if len(got.Ops) != len(in.Ops) {
		t.Fatalf("op count %d, want %d", len(got.Ops), len(in.Ops))
	}
	for i := range got.Ops {
		if got.Ops[i] != in.Ops[i] {
			t.Errorf("op %d = %+v, want %+v", i, got.Ops[i], in.Ops[i])
		}
	}
	if got.Occ != in.Occ {
		t.Errorf("occupancy mismatch after round trip")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, _, err := Decode([]byte{0x00, 0x01, 0x02, 0x03}); err == nil {
		t.Error("Decode with bad magic succeeded")
	}
	// Header promises one op but payload is missing.
	if _, _, err := Decode([]byte{headerMagic, 1, 0, 0}); err == nil {
		t.Error("Decode of truncated payload succeeded")
	}
	// Bad op class.
	buf := []byte{headerMagic, 1, 0, 0, 0x0f, 0, 0, 0}
	if _, _, err := Decode(buf); err == nil {
		t.Error("Decode of bad op class succeeded")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	m := Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		occ := randomOccupancy(r, &m)
		_ = occ
		var ops []Op
		n := r.Intn(8)
		for i := 0; i < n; i++ {
			ops = append(ops, Op{
				Class:   OpClass(r.Intn(int(NumOpClasses))),
				Cluster: uint8(r.Intn(m.Clusters)),
				Stream:  int16(r.Intn(100) - 1),
				IsStore: r.Intn(2) == 0,
			})
		}
		in := NewInstruction(ops)
		got, used, err := Decode(AppendEncoded(nil, in))
		if err != nil || used != in.EncodedSize() {
			return false
		}
		if len(got.Ops) != len(in.Ops) {
			return false
		}
		for i := range got.Ops {
			if got.Ops[i] != in.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
