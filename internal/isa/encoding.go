package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary encoding of instructions, used by cmd/vliwasm and by tests that
// round-trip compiled code. The format is deliberately simple:
//
//	header word: 0x56 'V' | opCount<<8 | reserved
//	per op:      class | cluster<<4 | flags<<8 | stream<<16 (little endian)
//
// The format is stable within this repository only.

const headerMagic = 0x56

var errTruncated = errors.New("isa: truncated instruction encoding")

// AppendEncoded appends the binary encoding of in to dst and returns the
// extended slice.
func AppendEncoded(dst []byte, in Instruction) []byte {
	var hdr [4]byte
	hdr[0] = headerMagic
	hdr[1] = uint8(len(in.Ops))
	dst = append(dst, hdr[:]...)
	for _, op := range in.Ops {
		var w uint32
		w = uint32(op.Class) & 0xf
		w |= uint32(op.Cluster) << 4
		if op.IsStore {
			w |= 1 << 8
		}
		w |= uint32(uint16(op.Stream)) << 16
		dst = binary.LittleEndian.AppendUint32(dst, w)
	}
	return dst
}

// Decode parses one instruction from src, returning the instruction and the
// number of bytes consumed.
func Decode(src []byte) (Instruction, int, error) {
	if len(src) < 4 {
		return Instruction{}, 0, errTruncated
	}
	if src[0] != headerMagic {
		return Instruction{}, 0, fmt.Errorf("isa: bad instruction magic %#x", src[0])
	}
	n := int(src[1])
	need := 4 + 4*n
	if len(src) < need {
		return Instruction{}, 0, errTruncated
	}
	ops := make([]Op, n)
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(src[4+4*i:])
		ops[i] = Op{
			Class:   OpClass(w & 0xf),
			Cluster: uint8((w >> 4) & 0xf),
			IsStore: w&(1<<8) != 0,
			Stream:  int16(uint16(w >> 16)),
		}
		if ops[i].Class >= NumOpClasses {
			return Instruction{}, 0, fmt.Errorf("isa: bad operation class %d", ops[i].Class)
		}
	}
	return NewInstruction(ops), need, nil
}
