package isa

import (
	"math/rand"
	"testing"
)

func randOcc(r *rand.Rand, m *Machine) Occupancy {
	var ops []Op
	for c := 0; c < m.Clusters; c++ {
		for i := r.Intn(m.IssueWidth + 1); i > 0; i-- {
			class := OpALU
			switch r.Intn(5) {
			case 0:
				class = OpMul
			case 1:
				class = OpMem
			case 2:
				if i == 1 {
					class = OpBranch
				}
			}
			ops = append(ops, Op{Class: class, Cluster: uint8(c)})
		}
	}
	return OccupancyOf(ops)
}

// TestAccumMatchesCompatUnion: the fused in-place merge primitives must
// agree with the two-step Compat* + Union forms — same verdict, and on
// success the same merged occupancy; on failure dst untouched.
func TestAccumMatchesCompatUnion(t *testing.T) {
	m := Default()
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		a, b := randOcc(r, &m), randOcc(r, &m)

		dst := a
		if got, want := AccumSMT(&dst, &b, &m), a.CompatSMT(b, &m); got != want {
			t.Fatalf("AccumSMT verdict %v != CompatSMT %v for %v + %v", got, want, a, b)
		} else if want && dst != a.Union(b) {
			t.Fatalf("AccumSMT result %v != Union %v", dst, a.Union(b))
		} else if !want && dst != a {
			t.Fatalf("failed AccumSMT mutated dst: %v -> %v", a, dst)
		}

		dst = a
		if got, want := AccumCSMT(&dst, &b), a.CompatCSMT(b); got != want {
			t.Fatalf("AccumCSMT verdict %v != CompatCSMT %v for %v + %v", got, want, a, b)
		} else if want && dst != a.Union(b) {
			t.Fatalf("AccumCSMT result %v != Union %v", dst, a.Union(b))
		} else if !want && dst != a {
			t.Fatalf("failed AccumCSMT mutated dst: %v -> %v", a, dst)
		}

		if UsedClusters(&a) != a.ClusterMask() {
			t.Fatalf("UsedClusters %08b != ClusterMask %08b", UsedClusters(&a), a.ClusterMask())
		}
	}
}
