package isa

import "testing"

func TestDefaultMachineValid(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatalf("default machine invalid: %v", err)
	}
	if got := m.TotalIssueWidth(); got != 16 {
		t.Errorf("TotalIssueWidth = %d, want 16", got)
	}
}

func TestMachineValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Machine)
	}{
		{"zero clusters", func(m *Machine) { m.Clusters = 0 }},
		{"too many clusters", func(m *Machine) { m.Clusters = MaxClusters + 1 }},
		{"zero issue width", func(m *Machine) { m.IssueWidth = 0 }},
		{"issue width too large", func(m *Machine) { m.IssueWidth = MaxIssueWidth + 1 }},
		{"negative muls", func(m *Machine) { m.Muls = -1 }},
		{"muls exceed width", func(m *Machine) { m.Muls = m.IssueWidth + 1 }},
		{"negative mem units", func(m *Machine) { m.MemUnits = -1 }},
		{"mem units exceed width", func(m *Machine) { m.MemUnits = m.IssueWidth + 1 }},
		{"branch clusters exceed clusters", func(m *Machine) { m.BranchClusters = m.Clusters + 1 }},
		{"negative branch clusters", func(m *Machine) { m.BranchClusters = -1 }},
		{"zero alu latency", func(m *Machine) { m.LatencyALU = 0 }},
		{"zero mul latency", func(m *Machine) { m.LatencyMul = 0 }},
		{"zero mem latency", func(m *Machine) { m.LatencyMem = 0 }},
		{"zero copy latency", func(m *Machine) { m.LatencyCopy = 0 }},
		{"negative branch penalty", func(m *Machine) { m.BranchPenalty = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := Default()
			tc.mut(&m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted invalid machine %+v", m)
			}
		})
	}
}

func TestMachineLatency(t *testing.T) {
	m := Default()
	if got := m.Latency(OpALU); got != 1 {
		t.Errorf("ALU latency = %d, want 1", got)
	}
	if got := m.Latency(OpMul); got != 2 {
		t.Errorf("Mul latency = %d, want 2", got)
	}
	if got := m.Latency(OpMem); got != 2 {
		t.Errorf("Mem latency = %d, want 2", got)
	}
	if got := m.Latency(OpBranch); got != 1 {
		t.Errorf("Branch latency = %d, want 1", got)
	}
	if got := m.Latency(OpCopy); got != 1 {
		t.Errorf("Copy latency = %d, want 1", got)
	}
}

func TestMachineUnitsFor(t *testing.T) {
	m := Default()
	if got := m.UnitsFor(OpALU, 2); got != 4 {
		t.Errorf("ALU units = %d, want 4", got)
	}
	if got := m.UnitsFor(OpMul, 1); got != 2 {
		t.Errorf("Mul units = %d, want 2", got)
	}
	if got := m.UnitsFor(OpMem, 3); got != 1 {
		t.Errorf("Mem units = %d, want 1", got)
	}
	if got := m.UnitsFor(OpBranch, 0); got != 1 {
		t.Errorf("Branch units on cluster 0 = %d, want 1", got)
	}
	if got := m.UnitsFor(OpBranch, 1); got != 0 {
		t.Errorf("Branch units on cluster 1 = %d, want 0", got)
	}
}

func TestOpClassStringParseRoundTrip(t *testing.T) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		got, err := ParseOpClass(c.String())
		if err != nil {
			t.Fatalf("ParseOpClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
	if _, err := ParseOpClass("bogus"); err == nil {
		t.Error("ParseOpClass accepted bogus mnemonic")
	}
}
