package isa

import "fmt"

// OpClass identifies the functional-unit class of a VLIW operation.
type OpClass uint8

const (
	// OpALU is an integer/logic operation executable at any issue slot.
	OpALU OpClass = iota
	// OpMul is a multiply executable only on a multiplier slot.
	OpMul
	// OpMem is a load or store executable only on the load/store slot.
	OpMem
	// OpBranch is a (conditional) branch, resolved on cluster 0.
	OpBranch
	// OpCopy is one half of an intercluster copy pair; it behaves as an
	// ALU operation for issue purposes.
	OpCopy
	// NumOpClasses is the number of distinct operation classes.
	NumOpClasses = iota
)

var opClassNames = [NumOpClasses]string{"alu", "mpy", "mem", "br", "copy"}

func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("opclass(%d)", uint8(c))
}

// ParseOpClass converts a mnemonic produced by OpClass.String back into the
// class value.
func ParseOpClass(s string) (OpClass, error) {
	for i, n := range opClassNames {
		if n == s {
			return OpClass(i), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown operation class %q", s)
}

// IsMemLike reports whether the class uses the load/store unit.
func (c OpClass) IsMemLike() bool { return c == OpMem }

// UsesALUSlot reports whether the class can issue from a generic ALU slot.
func (c OpClass) UsesALUSlot() bool { return c == OpALU || c == OpCopy }

// Op is a single operation inside a VLIW instruction. The fields beyond
// Class and Cluster are runtime behaviour hooks filled in by the compiler:
// they do not affect merging, only simulation events.
type Op struct {
	// Class is the functional-unit class.
	Class OpClass
	// Cluster is the cluster this operation issues on.
	Cluster uint8
	// Stream identifies, for OpMem, the address-stream generator feeding
	// this access; for OpBranch, the direction generator. Negative means
	// "no runtime behaviour" (e.g. plain ALU ops).
	Stream int16
	// IsStore marks OpMem stores (loads otherwise).
	IsStore bool
}

func (o Op) String() string {
	return fmt.Sprintf("%s.c%d", o.Class, o.Cluster)
}
