package isa

// In-place merge primitives for the simulator hot path. They are the
// fused check-then-union forms of CompatSMT/CompatCSMT + Union: one
// pointer-based call per merge attempt, no Occupancy copies, and on
// success dst accumulates src exactly as Union would have.

// UsedClusters returns the cluster bitmask of o (bit c set when cluster
// c issues at least one operation) without copying the occupancy.
//
//vliw:hotpath
func UsedClusters(o *Occupancy) uint8 {
	var m uint8
	for c := range o.Clusters {
		if o.Clusters[c].Total > 0 {
			m |= 1 << uint(c)
		}
	}
	return m
}

// Accumulate adds src into dst in place (the in-place form of Union).
// Callers must have verified compatibility first.
//
//vliw:hotpath
func (o *Occupancy) Accumulate(src *Occupancy) {
	for c := range o.Clusters {
		o.Clusters[c].Total += src.Clusters[c].Total
		o.Clusters[c].Mul += src.Clusters[c].Mul
		o.Clusters[c].Mem += src.Clusters[c].Mem
		o.Clusters[c].Branch += src.Clusters[c].Branch
	}
	o.Ops += src.Ops
}

// AccumSMT merges src into dst at operation level on machine m when the
// two are SMT-compatible, reporting whether the merge happened. It is
// exactly CompatSMT followed by Union, without copying either occupancy.
//
//vliw:hotpath
func AccumSMT(dst, src *Occupancy, m *Machine) bool {
	for c := 0; c < m.Clusters; c++ {
		ua, ub := &dst.Clusters[c], &src.Clusters[c]
		if ua.Total == 0 || ub.Total == 0 {
			continue
		}
		if int(ua.Total)+int(ub.Total) > m.IssueWidth {
			return false
		}
		if int(ua.Mul)+int(ub.Mul) > m.Muls {
			return false
		}
		if int(ua.Mem)+int(ub.Mem) > m.MemUnits {
			return false
		}
		br := 0
		if c < m.BranchClusters {
			br = 1
		}
		if int(ua.Branch)+int(ub.Branch) > br {
			return false
		}
	}
	dst.Accumulate(src)
	return true
}

// AccumCSMT merges src into dst at cluster level when their cluster
// sets are disjoint, reporting whether the merge happened. It is exactly
// CompatCSMT followed by Union, without copying either occupancy.
//
//vliw:hotpath
func AccumCSMT(dst, src *Occupancy) bool {
	if UsedClusters(dst)&UsedClusters(src) != 0 {
		return false
	}
	dst.Accumulate(src)
	return true
}
