package isa

import (
	"fmt"
	"sort"
	"strings"
)

// ClusterUse summarises how one VLIW instruction (or a merged execution
// packet) uses the issue slots of a single cluster.
type ClusterUse struct {
	Total  uint8 // operations of any class
	Mul    uint8 // multiply operations
	Mem    uint8 // load/store operations
	Branch uint8 // branch operations
}

// IsZero reports whether the cluster is completely unused.
func (u ClusterUse) IsZero() bool { return u.Total == 0 }

// Occupancy is the per-cluster resource summary of an instruction or a
// merged execution packet. It is the only information the thread merge
// control inspects, mirroring the decode summary available to the hardware.
type Occupancy struct {
	Clusters [MaxClusters]ClusterUse
	// Ops is the total operation count across clusters.
	Ops uint8
}

// OccupancyOf computes the occupancy summary of a list of operations.
func OccupancyOf(ops []Op) Occupancy {
	var occ Occupancy
	for _, op := range ops {
		occ.addOp(op)
	}
	return occ
}

func (o *Occupancy) addOp(op Op) {
	u := &o.Clusters[op.Cluster]
	u.Total++
	o.Ops++
	switch op.Class {
	case OpMul:
		u.Mul++
	case OpMem:
		u.Mem++
	case OpBranch:
		u.Branch++
	}
}

// ClusterMask returns a bitmask with bit c set when cluster c issues at
// least one operation. This is the entire view the CSMT merge control has.
func (o Occupancy) ClusterMask() uint8 {
	var m uint8
	for c := range o.Clusters {
		if o.Clusters[c].Total > 0 {
			m |= 1 << uint(c)
		}
	}
	return m
}

// CompatCSMT reports whether two packets can merge at cluster level: they
// must use disjoint sets of clusters.
func (o Occupancy) CompatCSMT(b Occupancy) bool {
	return o.ClusterMask()&b.ClusterMask() == 0
}

// CompatSMT reports whether two packets can merge at operation level on
// machine m. Merging requires, per cluster, that the combined operation
// count fits the issue width and that fixed-slot unit classes (multiply,
// memory, branch) do not oversubscribe their units. ALU operations can be
// rerouted to any free slot by the SMT routing block, so only counts matter.
func (o Occupancy) CompatSMT(b Occupancy, m *Machine) bool {
	for c := 0; c < m.Clusters; c++ {
		ua, ub := o.Clusters[c], b.Clusters[c]
		if ua.Total == 0 || ub.Total == 0 {
			continue
		}
		if int(ua.Total)+int(ub.Total) > m.IssueWidth {
			return false
		}
		if int(ua.Mul)+int(ub.Mul) > m.Muls {
			return false
		}
		if int(ua.Mem)+int(ub.Mem) > m.MemUnits {
			return false
		}
		br := 0
		if c < m.BranchClusters {
			br = 1
		}
		if int(ua.Branch)+int(ub.Branch) > br {
			return false
		}
	}
	return true
}

// Union returns the occupancy of the merged packet. Callers must have
// verified compatibility first; Union itself never fails.
func (o Occupancy) Union(b Occupancy) Occupancy {
	r := o
	for c := range r.Clusters {
		r.Clusters[c].Total += b.Clusters[c].Total
		r.Clusters[c].Mul += b.Clusters[c].Mul
		r.Clusters[c].Mem += b.Clusters[c].Mem
		r.Clusters[c].Branch += b.Clusters[c].Branch
	}
	r.Ops += b.Ops
	return r
}

// FitsAlone reports whether the packet is issueable by itself on machine m.
// Compiled instructions always satisfy this; merged packets satisfy it by
// construction when every pairwise merge was compatible.
func (o Occupancy) FitsAlone(m *Machine) bool {
	for c := 0; c < m.Clusters; c++ {
		u := o.Clusters[c]
		br := 0
		if c < m.BranchClusters {
			br = 1
		}
		if int(u.Total) > m.IssueWidth || int(u.Mul) > m.Muls ||
			int(u.Mem) > m.MemUnits || int(u.Branch) > br {
			return false
		}
	}
	for c := m.Clusters; c < MaxClusters; c++ {
		if o.Clusters[c].Total > 0 {
			return false
		}
	}
	return true
}

func (o Occupancy) String() string {
	var parts []string
	for c := 0; c < MaxClusters; c++ {
		u := o.Clusters[c]
		if u.IsZero() {
			continue
		}
		parts = append(parts, fmt.Sprintf("c%d:%d(m%d/l%d/b%d)", c, u.Total, u.Mul, u.Mem, u.Branch))
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, " ")
}

// Instruction is one scheduled VLIW instruction: the operations that issue
// together in a single cycle, plus the precomputed occupancy summary used by
// the merge stage and the instruction's encoded size in bytes (for ICache
// modelling).
type Instruction struct {
	Ops []Op
	Occ Occupancy
}

// NewInstruction builds an instruction from ops, computing its occupancy.
// Operations are ordered by cluster for a stable textual form.
func NewInstruction(ops []Op) Instruction {
	sorted := make([]Op, len(ops))
	copy(sorted, ops)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cluster < sorted[j].Cluster })
	return Instruction{Ops: sorted, Occ: OccupancyOf(sorted)}
}

// EncodedSize returns the instruction footprint in bytes. VEX-style
// encodings spend roughly four bytes per operation plus a four-byte header
// word carrying the stop bit and cluster mask.
func (in Instruction) EncodedSize() int { return 4 + 4*len(in.Ops) }

// Validate checks the instruction against machine m: every operation must
// target an existing cluster and the occupancy must fit the machine.
func (in Instruction) Validate(m *Machine) error {
	for _, op := range in.Ops {
		if int(op.Cluster) >= m.Clusters {
			return fmt.Errorf("isa: operation %v targets cluster %d of a %d-cluster machine", op, op.Cluster, m.Clusters)
		}
	}
	if !in.Occ.FitsAlone(m) {
		return fmt.Errorf("isa: instruction oversubscribes machine resources: %v", in.Occ)
	}
	return nil
}

func (in Instruction) String() string {
	if len(in.Ops) == 0 {
		return "nop"
	}
	parts := make([]string, len(in.Ops))
	for i, op := range in.Ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ; ")
}
