package ir

import (
	"fmt"

	"vliwmt/internal/isa"
)

// Builder incrementally constructs a Function. Methods panic on structural
// misuse (a programming error in kernel definitions); the completed
// function is still verified by Finish.
type Builder struct {
	fn  *Function
	cur *Block
}

// NewBuilder starts a function with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{fn: &Function{Name: name}}
}

// Stream registers a memory address stream and returns its index.
func (b *Builder) Stream(s MemStream) int {
	b.fn.Streams = append(b.fn.Streams, s)
	return len(b.fn.Streams) - 1
}

// Block starts a new basic block.
func (b *Builder) Block(name string) *Builder {
	b.cur = &Block{Name: name}
	b.fn.Blocks = append(b.fn.Blocks, b.cur)
	return b
}

func (b *Builder) add(op Op) Value {
	if b.cur == nil {
		panic("ir: operation added before any block")
	}
	b.cur.Ops = append(b.cur.Ops, op)
	return Value(len(b.cur.Ops) - 1)
}

// ALU appends an ALU operation depending on args.
func (b *Builder) ALU(args ...Value) Value {
	return b.add(Op{Class: isa.OpALU, Args: args, Stream: -1})
}

// Mul appends a multiply operation.
func (b *Builder) Mul(args ...Value) Value {
	return b.add(Op{Class: isa.OpMul, Args: args, Stream: -1})
}

// Load appends a load from the given stream.
func (b *Builder) Load(stream int, args ...Value) Value {
	return b.add(Op{Class: isa.OpMem, Args: args, Stream: stream})
}

// Store appends a store to the given stream.
func (b *Builder) Store(stream int, args ...Value) Value {
	return b.add(Op{Class: isa.OpMem, Args: args, Stream: stream, IsStore: true})
}

// Chain appends a serial chain of n ALU operations starting from from,
// returning the last value. Chains model dependence-limited code.
func (b *Builder) Chain(from Value, n int) Value {
	v := from
	for i := 0; i < n; i++ {
		v = b.ALU(v)
	}
	return v
}

// Carry marks v as depending on the previous iteration's values prev
// (loop-carried dependencies; see ir.Op.Carried).
func (b *Builder) Carry(v Value, prev ...Value) {
	if b.cur == nil || int(v) >= len(b.cur.Ops) {
		panic("ir: Carry on unknown value")
	}
	op := &b.cur.Ops[v]
	op.Carried = append(op.Carried, prev...)
}

// Branch terminates the current block.
func (b *Builder) Branch(target string, behavior BranchBehavior, args ...Value) {
	if b.cur == nil {
		panic("ir: branch before any block")
	}
	if b.cur.Branch != nil {
		panic(fmt.Sprintf("ir: block %s already has a branch", b.cur.Name))
	}
	b.cur.Branch = &Branch{Target: target, Behavior: behavior, Args: args}
}

// Finish validates and returns the function.
func (b *Builder) Finish() (*Function, error) {
	if err := b.fn.Validate(); err != nil {
		return nil, err
	}
	return b.fn, nil
}

// MustFinish is Finish for statically known-good kernels.
func (b *Builder) MustFinish() *Function {
	f, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return f
}
