package ir

import (
	"testing"

	"vliwmt/internal/isa"
)

func validFunction() *Builder {
	b := NewBuilder("k")
	s := b.Stream(MemStream{Kind: StreamStride, Stride: 4, Footprint: 1024})
	b.Block("body")
	v := b.Load(s)
	w := b.ALU(v)
	x := b.Mul(w, v)
	b.Store(s, x)
	b.Branch("body", Loop(16))
	return b
}

func TestBuilderProducesValidFunction(t *testing.T) {
	f, err := validFunction().Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if f.NumOps() != 4 {
		t.Errorf("NumOps = %d, want 4", f.NumOps())
	}
	if f.BlockIndex("body") != 0 {
		t.Errorf("BlockIndex(body) = %d", f.BlockIndex("body"))
	}
	if f.BlockIndex("missing") != -1 {
		t.Errorf("BlockIndex(missing) should be -1")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		fn   func() *Function
	}{
		{"no blocks", func() *Function { return &Function{Name: "x"} }},
		{"unnamed block", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{}}}
		}},
		{"duplicate block", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a"}, {Name: "a"}}}
		}},
		{"forward arg", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a", Ops: []Op{
				{Class: isa.OpALU, Args: []Value{0}, Stream: -1},
			}}}}
		}},
		{"self arg", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a", Ops: []Op{
				{Class: isa.OpALU, Stream: -1},
				{Class: isa.OpALU, Args: []Value{1}, Stream: -1},
			}}}}
		}},
		{"bad stream", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a", Ops: []Op{
				{Class: isa.OpMem, Stream: 0},
			}}}}
		}},
		{"branch op in body", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a", Ops: []Op{
				{Class: isa.OpBranch, Stream: -1},
			}}}}
		}},
		{"copy op in body", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a", Ops: []Op{
				{Class: isa.OpCopy, Stream: -1},
			}}}}
		}},
		{"unknown branch target", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a", Branch: &Branch{Target: "zz"}}}}
		}},
		{"branch arg out of range", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a",
				Branch: &Branch{Target: "a", Behavior: Always(), Args: []Value{3}}}}}
		}},
		{"zero trip count", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a",
				Branch: &Branch{Target: "a", Behavior: Loop(0)}}}}
		}},
		{"bad probability", func() *Function {
			return &Function{Name: "x", Blocks: []*Block{{Name: "a",
				Branch: &Branch{Target: "a", Behavior: Bernoulli(1.5)}}}}
		}},
		{"zero footprint stream", func() *Function {
			return &Function{Name: "x", Streams: []MemStream{{}},
				Blocks: []*Block{{Name: "a"}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.fn().Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestChainBuildsSerialDependence(t *testing.T) {
	b := NewBuilder("c")
	b.Block("a")
	v0 := b.ALU()
	last := b.Chain(v0, 5)
	if last != Value(5) {
		t.Errorf("Chain end = %d, want 5", last)
	}
	f := b.MustFinish()
	ops := f.Blocks[0].Ops
	for i := 1; i <= 5; i++ {
		if len(ops[i].Args) != 1 || ops[i].Args[0] != Value(i-1) {
			t.Errorf("chain op %d args = %v", i, ops[i].Args)
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("op before block", func() { NewBuilder("x").ALU() })
	expectPanic("branch before block", func() { NewBuilder("x").Branch("a", Always()) })
	expectPanic("double branch", func() {
		b := NewBuilder("x")
		b.Block("a")
		b.Branch("a", Always())
		b.Branch("a", Always())
	})
	expectPanic("MustFinish invalid", func() {
		b := NewBuilder("x")
		_ = b.MustFinish() // no blocks
	})
}

func TestBehaviorConstructors(t *testing.T) {
	if l := Loop(8); l.Kind != BranchLoop || l.TripCount != 8 {
		t.Errorf("Loop(8) = %+v", l)
	}
	if p := Bernoulli(0.25); p.Kind != BranchBernoulli || p.Prob != 0.25 {
		t.Errorf("Bernoulli(0.25) = %+v", p)
	}
	if a := Always(); a.Kind != BranchAlways {
		t.Errorf("Always() = %+v", a)
	}
	if n := Never(); n.Kind != BranchNever {
		t.Errorf("Never() = %+v", n)
	}
}
