// Package ir is the dataflow intermediate representation consumed by the
// compiler. Functions are lists of basic blocks; each block is a DAG of
// operations with explicit data dependencies. Blocks end in an optional
// branch carrying a runtime direction behaviour (loop trip counts or
// probabilistic directions), and memory operations reference address-stream
// generators; both survive compilation and drive the cycle-level simulator.
//
// The IR deliberately omits concrete values and registers: the evaluation
// in the paper depends only on the issue, dependence, memory and control
// shape of the code, not on its arithmetic.
package ir

import (
	"fmt"

	"vliwmt/internal/isa"
)

// Value identifies the result of an operation within a block (its index in
// Block.Ops).
type Value int

// Op is a single IR operation. Args must reference earlier operations in
// the same block (blocks are DAGs in topological order by construction).
type Op struct {
	Class isa.OpClass
	Args  []Value
	// Carried lists loop-carried dependencies: values of the *previous*
	// iteration of the block this operation depends on. Carried values may
	// reference any operation in the block (including later ones). They
	// constrain scheduling only when the compiler unrolls the loop, where
	// they chain the replicated iterations together.
	Carried []Value
	// Stream indexes Function.Streams for memory operations (-1 for none).
	Stream int
	// IsStore marks memory writes.
	IsStore bool
}

// Block is a basic block: a DAG of operations plus an optional terminating
// branch. With a nil Branch, control falls through to the next block (the
// last block falls through back to the first, making every function an
// endless kernel loop for simulation purposes).
type Block struct {
	Name   string
	Ops    []Op
	Branch *Branch
}

// Branch is a control transfer ending a block. The branch occupies an issue
// slot (class OpBranch on cluster 0) in the compiled code.
type Branch struct {
	// Target names the block reached when the branch is taken.
	Target string
	// Behavior decides the runtime direction.
	Behavior BranchBehavior
	// Args are data dependencies of the branch condition.
	Args []Value
}

// BranchKind enumerates runtime branch-direction generators.
type BranchKind uint8

const (
	// BranchLoop is taken TripCount-1 consecutive times, then falls
	// through once (a counted loop back-edge).
	BranchLoop BranchKind = iota
	// BranchBernoulli is taken with probability Prob, independently.
	BranchBernoulli
	// BranchAlways is unconditionally taken.
	BranchAlways
	// BranchNever always falls through.
	BranchNever
)

// BranchBehavior is the runtime direction model of a branch site.
type BranchBehavior struct {
	Kind      BranchKind
	TripCount int     // BranchLoop
	Prob      float64 // BranchBernoulli
}

// Loop returns a counted-loop behaviour with the given trip count.
func Loop(trip int) BranchBehavior { return BranchBehavior{Kind: BranchLoop, TripCount: trip} }

// Bernoulli returns a probabilistic behaviour taken with probability p.
func Bernoulli(p float64) BranchBehavior { return BranchBehavior{Kind: BranchBernoulli, Prob: p} }

// Always returns an unconditionally taken behaviour.
func Always() BranchBehavior { return BranchBehavior{Kind: BranchAlways} }

// Never returns an unconditionally not-taken behaviour.
func Never() BranchBehavior { return BranchBehavior{Kind: BranchNever} }

// StreamKind enumerates address-stream generators for memory operations.
type StreamKind uint8

const (
	// StreamStride walks Base, Base+Stride, ... wrapping within Footprint.
	StreamStride StreamKind = iota
	// StreamRandom draws uniformly within [Base, Base+Footprint).
	StreamRandom
	// StreamChase emulates pointer chasing: the next address depends on
	// the previous one (uniform within the footprint, serialised).
	StreamChase
)

// MemStream describes the address behaviour of one memory reference site.
type MemStream struct {
	Kind      StreamKind
	Base      uint64
	Stride    int64
	Footprint uint64 // bytes; addresses stay within [Base, Base+Footprint)
}

// Function is a compilable IR unit.
type Function struct {
	Name    string
	Blocks  []*Block
	Streams []MemStream
}

// BlockIndex returns the index of the named block, or -1.
func (f *Function) BlockIndex(name string) int {
	for i, b := range f.Blocks {
		if b.Name == name {
			return i
		}
	}
	return -1
}

// NumOps returns the total number of operations across all blocks.
func (f *Function) NumOps() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ops)
	}
	return n
}

// Validate checks structural well-formedness: topological argument order,
// valid stream references, resolvable branch targets and sane behaviours.
func (f *Function) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: function %s has no blocks", f.Name)
	}
	names := map[string]bool{}
	for _, b := range f.Blocks {
		if b.Name == "" {
			return fmt.Errorf("ir: function %s has an unnamed block", f.Name)
		}
		if names[b.Name] {
			return fmt.Errorf("ir: duplicate block name %q in %s", b.Name, f.Name)
		}
		names[b.Name] = true
	}
	for _, b := range f.Blocks {
		for i, op := range b.Ops {
			for _, a := range op.Args {
				if a < 0 || int(a) >= i {
					return fmt.Errorf("ir: %s.%s op %d argument %d is not an earlier op", f.Name, b.Name, i, a)
				}
			}
			for _, a := range op.Carried {
				if a < 0 || int(a) >= len(b.Ops) {
					return fmt.Errorf("ir: %s.%s op %d carried argument %d out of range", f.Name, b.Name, i, a)
				}
			}
			if op.Class == isa.OpMem {
				if op.Stream < 0 || op.Stream >= len(f.Streams) {
					return fmt.Errorf("ir: %s.%s op %d references stream %d of %d", f.Name, b.Name, i, op.Stream, len(f.Streams))
				}
			}
			if op.Class == isa.OpBranch {
				return fmt.Errorf("ir: %s.%s op %d: branches belong in Block.Branch, not Ops", f.Name, b.Name, i)
			}
			if op.Class == isa.OpCopy {
				return fmt.Errorf("ir: %s.%s op %d: copies are inserted by the compiler", f.Name, b.Name, i)
			}
		}
		if br := b.Branch; br != nil {
			if !names[br.Target] {
				return fmt.Errorf("ir: %s.%s branches to unknown block %q", f.Name, b.Name, br.Target)
			}
			for _, a := range br.Args {
				if a < 0 || int(a) >= len(b.Ops) {
					return fmt.Errorf("ir: %s.%s branch argument %d out of range", f.Name, b.Name, a)
				}
			}
			switch br.Behavior.Kind {
			case BranchLoop:
				if br.Behavior.TripCount < 1 {
					return fmt.Errorf("ir: %s.%s loop trip count %d", f.Name, b.Name, br.Behavior.TripCount)
				}
			case BranchBernoulli:
				if br.Behavior.Prob < 0 || br.Behavior.Prob > 1 {
					return fmt.Errorf("ir: %s.%s branch probability %g", f.Name, b.Name, br.Behavior.Prob)
				}
			}
		}
	}
	for i, s := range f.Streams {
		if s.Footprint < 64 {
			return fmt.Errorf("ir: %s stream %d footprint %d is below the 64-byte minimum", f.Name, i, s.Footprint)
		}
	}
	return nil
}
