package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"vliwmt/internal/resultstore"
	"vliwmt/internal/server"
	"vliwmt/internal/sweep"
	"vliwmt/internal/telemetry"
	"vliwmt/internal/wgen"
)

// testJobs is a 2x2 grid: small enough to fan out quickly, large
// enough to split across several shards at ShardJobs=1.
func testJobs(t *testing.T) []sweep.Job {
	t.Helper()
	jobs, err := sweep.Grid{
		Schemes:    []string{"2SC3", "3SSS"},
		Mixes:      []string{"LLHH", "HHHH"},
		InstrLimit: 5_000,
		Seed:       7,
	}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// startWorker runs a real vliwserve worker behind httptest and returns
// its URL. The optional wrap intercepts requests before the server.
func startWorker(t *testing.T, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	srv := server.New(server.Options{})
	h := http.Handler(srv.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// newCoordinator builds a Coordinator with test-friendly retry timing.
func newCoordinator(t *testing.T, opts Options) *Coordinator {
	t.Helper()
	if opts.RetryBase == 0 {
		opts.RetryBase = 5 * time.Millisecond
	}
	if opts.RetryMax == 0 {
		opts.RetryMax = 50 * time.Millisecond
	}
	if opts.PingInterval == 0 {
		// Tests drive health through dispatch failures, not the pinger.
		opts.PingInterval = time.Hour
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// snapshotOf fails the test on any per-job error, then snapshots.
func snapshotOf(t *testing.T, results []sweep.Result) resultstore.Snapshot {
	t.Helper()
	snap, err := resultstore.SnapshotResults(results)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestFabricDeterminism is the subsystem's contract test: the same
// grid through a local engine, a 1-worker fabric and a 3-worker fabric
// yields bit-identical ordered results (DiffSnapshots clean).
func TestFabricDeterminism(t *testing.T) {
	jobs := testJobs(t)
	local, err := sweep.New(0).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, local)

	run := func(t *testing.T, workers int) []sweep.Result {
		t.Helper()
		addrs := make([]string, workers)
		for i := range addrs {
			addrs[i] = startWorker(t, nil).URL
		}
		c := newCoordinator(t, Options{Workers: addrs, ShardJobs: 1})
		results, err := c.Run(context.Background(), jobs, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	for _, workers := range []int{1, 3} {
		results := run(t, workers)
		if d := resultstore.DiffSnapshots(want, snapshotOf(t, results)); !d.Clean() {
			t.Fatalf("%d workers: fabric results differ from local run: %+v", workers, d.Entries)
		}
		for i, r := range results {
			if r.Index != i {
				t.Fatalf("%d workers: result %d carries index %d", workers, i, r.Index)
			}
			if r.Worker == "" || r.Shard == 0 {
				t.Fatalf("%d workers: result %d lacks attribution: worker=%q shard=%d",
					workers, i, r.Worker, r.Shard)
			}
		}
	}
}

// TestFabricDeterminismGenerated extends the determinism contract to
// synthetic workloads: random generated mixes (canonical "genmix:"
// names, regenerated from the name on whichever box runs them) swept
// solo (batching disabled), batched, and through a 2-worker fabric at
// one job per shard must produce bit-identical snapshots. This is the
// end-to-end proof that a generated benchmark's name alone is a
// sufficient wire format.
func TestFabricDeterminismGenerated(t *testing.T) {
	mixes := 4
	if testing.Short() {
		mixes = 2
	}
	rng := wgen.NewRand(1009)
	combos := []string{"LLHH", "LMMH", "HHHH", "LLLL"}
	var mixNames []string
	for i := 0; i < mixes; i++ {
		name, err := wgen.MixName(combos[i%len(combos)], rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		mixNames = append(mixNames, name)
	}
	jobs, err := sweep.Grid{
		Schemes:    []string{"2SC3", "C4", "IMT"},
		Mixes:      mixNames,
		InstrLimit: 4_000,
		Seed:       rng.Uint64(),
	}.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	solo := sweep.New(0)
	solo.SetBatch(1)
	soloResults, err := solo.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, soloResults)

	batched := sweep.New(0)
	batched.SetBatch(0)
	batchedResults, err := batched.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if d := resultstore.DiffSnapshots(want, snapshotOf(t, batchedResults)); !d.Clean() {
		t.Fatalf("batched generated sweep differs from solo: %+v", d.Entries)
	}

	addrs := []string{startWorker(t, nil).URL, startWorker(t, nil).URL}
	c := newCoordinator(t, Options{Workers: addrs, ShardJobs: 1})
	fabricResults, err := c.Run(context.Background(), jobs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := resultstore.DiffSnapshots(want, snapshotOf(t, fabricResults)); !d.Clean() {
		t.Fatalf("2-worker fabric generated sweep differs from solo: %+v", d.Entries)
	}
}

// TestFabricWorkerKilledMidSweep kills one of three workers on its
// first shard: its in-flight shard is requeued, its queue is stolen,
// the sweep still succeeds, and the merged output is still
// bit-identical to a local run.
func TestFabricWorkerKilledMidSweep(t *testing.T) {
	jobs := testJobs(t)
	local, err := sweep.New(0).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	var killed atomic.Bool
	victim := startWorker(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost || killed.Load() {
				// The box dies the moment its first shard arrives and
				// never comes back: abort the connection mid-request.
				killed.Store(true)
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	})
	addrs := []string{startWorker(t, nil).URL, victim.URL, startWorker(t, nil).URL}

	before := telemetry.Default().Snapshot()
	c := newCoordinator(t, Options{Workers: addrs, ShardJobs: 1})
	results, err := c.Run(context.Background(), jobs, 0, nil)
	if err != nil {
		t.Fatalf("sweep failed despite two healthy workers: %v", err)
	}
	if d := resultstore.DiffSnapshots(snapshotOf(t, local), snapshotOf(t, results)); !d.Clean() {
		t.Fatalf("results differ from local run after worker death: %+v", d.Entries)
	}
	for _, r := range results {
		if r.Worker == victim.URL {
			t.Fatalf("job %d attributed to the dead worker", r.Index)
		}
	}
	after := telemetry.Default().Snapshot()
	if n := after.Counter("fabric_shards_retried_total") - before.Counter("fabric_shards_retried_total"); n == 0 {
		t.Fatal("killing a worker mid-sweep produced no retries")
	}
}

// TestFabricStoreShortCircuit: jobs already in the coordinator's store
// never leave the box — a warm sweep succeeds with every worker dead.
func TestFabricStoreShortCircuit(t *testing.T) {
	jobs := testJobs(t)
	store := resultstore.Open(t.TempDir())

	cold := newCoordinator(t, Options{Workers: []string{startWorker(t, nil).URL}, Store: store})
	coldResults, err := cold.Run(context.Background(), jobs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	dead := httptest.NewServer(nil)
	dead.Close()
	warm := newCoordinator(t, Options{Workers: []string{dead.URL}, Store: store, MaxRetries: 1})
	warmResults, err := warm.Run(context.Background(), jobs, 0, nil)
	if err != nil {
		t.Fatalf("warm sweep touched the dead worker: %v", err)
	}
	for _, r := range warmResults {
		if !r.Cached || r.Worker != "" || r.Shard != 0 {
			t.Fatalf("job %d not served from the store: cached=%v worker=%q shard=%d",
				r.Index, r.Cached, r.Worker, r.Shard)
		}
	}
	if d := resultstore.DiffSnapshots(snapshotOf(t, coldResults), snapshotOf(t, warmResults)); !d.Clean() {
		t.Fatalf("warm results differ from cold: %+v", d.Entries)
	}
}

// TestFabricDedup: five jobs sharing one content key travel as one
// simulation; every index is filled, secondaries with their own copy.
func TestFabricDedup(t *testing.T) {
	base := testJobs(t)[0]
	jobs := []sweep.Job{base, base, base, base, base}

	var dispatched atomic.Int64
	worker := startWorker(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				dispatched.Add(1)
			}
			next.ServeHTTP(w, r)
		})
	})
	c := newCoordinator(t, Options{Workers: []string{worker.URL}})
	results, err := c.Run(context.Background(), jobs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := dispatched.Load(); n != 1 {
		t.Fatalf("duplicate-key jobs dispatched %d times, want 1", n)
	}
	for i, r := range results {
		if r.Res == nil {
			t.Fatalf("job %d unfilled", i)
		}
		if i > 0 {
			if r.Res == results[0].Res {
				t.Fatalf("job %d aliases job 0's result", i)
			}
			if r.Res.IPC != results[0].Res.IPC || r.Res.Cycles != results[0].Res.Cycles {
				t.Fatalf("job %d diverges from job 0", i)
			}
		}
	}
}

// TestFabricWorkSteal: with one worker slowed, the fast worker steals
// from its queue — visible on fabric_shards_stolen_total.
func TestFabricWorkSteal(t *testing.T) {
	jobs := testJobs(t)
	fast := startWorker(t, nil)
	slow := startWorker(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				time.Sleep(300 * time.Millisecond)
			}
			next.ServeHTTP(w, r)
		})
	})

	before := telemetry.Default().Snapshot()
	c := newCoordinator(t, Options{Workers: []string{fast.URL, slow.URL}, ShardJobs: 1})
	if _, err := c.Run(context.Background(), jobs, 0, nil); err != nil {
		t.Fatal(err)
	}
	after := telemetry.Default().Snapshot()
	if n := after.Counter("fabric_shards_stolen_total") - before.Counter("fabric_shards_stolen_total"); n == 0 {
		t.Fatal("fast worker never stole from the slow worker's queue")
	}
}

// TestFabricAllWorkersDown: with no healthy worker the sweep parks
// until its context expires, then returns the context error on every
// undelivered job — it never invents results.
func TestFabricAllWorkersDown(t *testing.T) {
	jobs := testJobs(t)
	dead := httptest.NewServer(nil)
	dead.Close()

	c := newCoordinator(t, Options{Workers: []string{dead.URL}, MaxRetries: 100})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	results, err := c.Run(ctx, jobs, 0, nil)
	if err == nil {
		t.Fatal("sweep with no healthy workers reported success")
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("job %d has no error after total worker loss", i)
		}
	}
}

// TestFabricInvalidJobFailsLocally: an unrunnable job fails on its own
// Result without a round trip; the rest of the sweep completes.
func TestFabricInvalidJobFailsLocally(t *testing.T) {
	jobs := testJobs(t)
	jobs = append(jobs, sweep.Job{Scheme: "2SC3", Benchmarks: []string{"no-such-benchmark"}, InstrLimit: 100})

	c := newCoordinator(t, Options{Workers: []string{startWorker(t, nil).URL}})
	results, err := c.Run(context.Background(), jobs, 0, nil)
	if err == nil {
		t.Fatal("sweep with an invalid job reported no error")
	}
	bad := results[len(results)-1]
	if bad.Err == nil || bad.Worker != "" {
		t.Fatalf("invalid job: err=%v worker=%q — want a local validation failure", bad.Err, bad.Worker)
	}
	for _, r := range results[:len(results)-1] {
		if r.Err != nil {
			t.Fatalf("valid job %d failed: %v", r.Index, r.Err)
		}
	}
}

// TestFabricProgressMonotonic: progress callbacks arrive serialised
// with done incrementing by exactly one, covering store hits, remote
// results and local failures alike.
func TestFabricProgressMonotonic(t *testing.T) {
	jobs := testJobs(t)
	c := newCoordinator(t, Options{Workers: []string{startWorker(t, nil).URL}, ShardJobs: 1})
	var calls atomic.Int64
	last := 0
	_, err := c.Run(context.Background(), jobs, 0, func(done, total int, r sweep.Result) {
		calls.Add(1)
		if done != last+1 || total != len(jobs) {
			t.Errorf("progress %d/%d after %d", done, total, last)
		}
		last = done
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(jobs)) {
		t.Fatalf("progress called %d times for %d jobs", got, len(jobs))
	}
}

func TestChunkShards(t *testing.T) {
	units := make([]*unit, 10)
	for i := range units {
		units[i] = &unit{}
	}
	shards := chunkShards(units, 4)
	if len(shards) != 3 {
		t.Fatalf("10 units at 4/shard: %d shards, want 3", len(shards))
	}
	for i, sh := range shards {
		if sh.id != i+1 {
			t.Fatalf("shard %d has id %d (IDs are 1-based)", i, sh.id)
		}
	}
	if n := len(shards[2].units); n != 2 {
		t.Fatalf("last shard has %d units, want 2", n)
	}
}
