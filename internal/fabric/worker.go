package fabric

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"vliwmt/internal/api"
	"vliwmt/internal/sweep"
	"vliwmt/internal/telemetry"
)

// worker is one registered vliwserve box. Health is coordinator-wide
// state shared across concurrent Runs: an unhealthy worker claims no
// new shards (its pending queue stays stealable) and has its in-flight
// attempts cancelled, which requeues them through the retry path.
type worker struct {
	name  string // address as registered, used for labels and attribution
	base  string // normalised http://host:port
	gauge *telemetry.Gauge

	mu       sync.Mutex
	healthy  bool
	nextID   int
	inflight map[int]context.CancelFunc
}

// newWorker normalises the address (a bare host:port gets http://) and
// registers the worker's health gauge, initially healthy.
func newWorker(addr string) (*worker, error) {
	name := strings.TrimSpace(addr)
	if name == "" {
		return nil, fmt.Errorf("fabric: empty worker address")
	}
	base := name
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	w := &worker{
		name:     name,
		base:     base,
		gauge:    telemetry.NewLabeledGauge("fabric_worker_healthy", `worker="`+name+`"`, "Whether the fabric coordinator considers the worker healthy (1) or unhealthy (0)."),
		healthy:  true,
		inflight: map[int]context.CancelFunc{},
	}
	w.gauge.Set(1)
	return w, nil
}

func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// track registers an in-flight attempt's cancel func and returns its
// handle for untrack.
func (w *worker) track(cancel context.CancelFunc) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextID++
	w.inflight[w.nextID] = cancel
	return w.nextID
}

func (w *worker) untrack(id int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.inflight, id)
}

// markUnhealthy flips the worker down and cancels its in-flight
// attempts; each cancelled attempt fails, and the retry path requeues
// its shard onto a healthy peer.
func (c *Coordinator) markUnhealthy(w *worker, err error) {
	w.mu.Lock()
	was := w.healthy
	w.healthy = false
	// Cancelling under the lock is safe: a CancelFunc only closes the
	// context's done channel, and the attempt goroutines it unblocks
	// re-acquire the lock on their own stacks.
	for _, cancel := range w.inflight {
		cancel()
	}
	clear(w.inflight)
	w.mu.Unlock()
	w.gauge.Set(0)
	if was {
		telemetry.TraceLogger().Warn("fabric worker unhealthy", "worker", w.name, "err", err.Error())
	}
}

// markHealthy flips the worker up and wakes every active dispatch so
// parked scheduler loops re-check for claimable work.
func (c *Coordinator) markHealthy(w *worker) {
	w.mu.Lock()
	was := w.healthy
	w.healthy = true
	w.mu.Unlock()
	w.gauge.Set(1)
	if !was {
		telemetry.TraceLogger().Info("fabric worker healthy", "worker", w.name)
		c.broadcastAll()
	}
}

// pinger periodically health-checks one worker until the coordinator
// closes, flipping its health in both directions.
func (c *Coordinator) pinger(ctx context.Context, w *worker) {
	defer c.pingWG.Done()
	t := time.NewTicker(c.opts.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		pctx, cancel := context.WithTimeout(ctx, c.opts.PingInterval)
		err := c.ping(pctx, w)
		cancel()
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			c.markUnhealthy(w, err)
		} else {
			c.markHealthy(w)
		}
	}
}

// ping probes GET /v1/healthz; any decodable, version-compatible
// health document means the worker is up.
func (c *Coordinator) ping(ctx context.Context, w *worker) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/v1/healthz", nil)
	if err != nil {
		return fmt.Errorf("fabric: ping %s: %w", w.name, err)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("fabric: ping %s: %w", w.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fabric: ping %s: %s", w.name, resp.Status)
	}
	if _, err := api.DecodeHealth(resp.Body); err != nil {
		return fmt.Errorf("fabric: ping %s: %w", w.name, err)
	}
	return nil
}

// runShard executes one shard on one worker synchronously over the v3
// wire format and returns the per-unit results in shard order. A
// transport failure marks the worker unhealthy (unless the attempt's
// own context was cancelled first); protocol and status errors leave
// health to the pinger — the box answered, it just didn't like us.
func (c *Coordinator) runShard(ctx context.Context, w *worker, sh *shard, workers int) ([]sweep.Result, error) {
	jobs := make([]api.Job, len(sh.units))
	for i, u := range sh.units {
		jobs[i] = api.JobFrom(u.job)
	}
	var buf bytes.Buffer
	if err := api.EncodeSweepRequest(&buf, api.SweepRequest{Jobs: jobs, Workers: workers}); err != nil {
		return nil, fmt.Errorf("fabric: encode shard %d: %w", sh.id, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/sweeps?wait=1", &buf)
	if err != nil {
		return nil, fmt.Errorf("fabric: shard %d: %w", sh.id, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.markUnhealthy(w, err)
		}
		return nil, fmt.Errorf("fabric: %s: %w", w.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("fabric: %s: POST /v1/sweeps: %s: %s",
			w.name, resp.Status, strings.TrimSpace(string(body)))
	}
	st, err := api.DecodeSweepStatus(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: %w", w.name, err)
	}
	if !st.State.Terminal() || st.State == api.StateCanceled {
		return nil, fmt.Errorf("fabric: %s: sweep %s ended %s", w.name, st.ID, st.State)
	}
	// StateDone and StateFailed both carry the full ordered result set;
	// a remote per-job failure is deterministic (we validated locally,
	// so it is a compile- or simulation-level error a retry cannot
	// change) and passes through to the job's Result.
	if len(st.Results) != len(sh.units) {
		return nil, fmt.Errorf("fabric: %s: shard %d: %d results for %d jobs",
			w.name, sh.id, len(st.Results), len(sh.units))
	}
	return api.SweepResults(st.Results), nil
}
