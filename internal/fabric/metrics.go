package fabric

import "vliwmt/internal/telemetry"

// Fabric instruments live in the process-wide registry, so a
// coordinator's GET /metrics (cmd/vliwfabric embeds the ordinary
// server) exposes them alongside the server and store families.
var (
	metShardsDispatched = telemetry.NewCounter("fabric_shards_dispatched_total",
		"Shard dispatch attempts handed to a worker (retries count again).")
	metShardsCompleted = telemetry.NewCounter("fabric_shards_completed_total",
		"Shards whose results merged back into a sweep.")
	metShardsRetried = telemetry.NewCounter("fabric_shards_retried_total",
		"Failed shard attempts requeued with backoff.")
	metShardsStolen = telemetry.NewCounter("fabric_shards_stolen_total",
		"Shards an idle worker stole from a peer's pending queue.")
	metShardsFailed = telemetry.NewCounter("fabric_shards_failed_total",
		"Shards abandoned after exhausting their retry budget.")
	metJobsFromStore = telemetry.NewCounter("fabric_jobs_from_store_total",
		"Jobs served from the coordinator's result store without leaving the box.")
	metJobsDeduped = telemetry.NewCounter("fabric_jobs_deduped_total",
		"Jobs sharing a content key with an earlier job in the same sweep, dispatched once.")
	metShardLatency = telemetry.NewHistogram("fabric_shard_duration_seconds",
		"Wall-clock time of one shard dispatch attempt, request to merged response.",
		telemetry.DurationBuckets)
)
