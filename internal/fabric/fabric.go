// Package fabric is the distributed sweep coordinator: it takes a job
// set, splits it into shards keyed by result-store content hash, fans
// the shards out to a pool of vliwserve workers over the existing v3
// wire format (POST /v1/sweeps?wait=1), and merges results back in
// index order, so the output is bit-identical to a single-box run at
// any worker count — the same determinism contract the in-process
// sweep engine guarantees.
//
// The coordinator is a drop-in sweep executor (its Run method
// satisfies server.Executor), so cmd/vliwfabric is an ordinary
// vliwserve speaking the same wire API whose sweeps happen to execute
// on other boxes. The scheduling policy, in order of application:
//
//  1. Jobs are validated locally; an invalid job fails on its own
//     Result without a round trip (a worker would reject the whole
//     shard with one 400).
//  2. Jobs are grouped by resultstore.Key: duplicate-key jobs are
//     dispatched once and the result fanned back to every index, and
//     the coordinator's shared result store is probed per key so
//     already-stored jobs never leave the box.
//  3. The remaining units are chunked into shards (Options.ShardJobs
//     per shard, 1-based IDs) and dealt round-robin onto per-worker
//     pending queues.
//  4. Each worker drains its own queue; an idle worker steals from the
//     tail of the longest peer queue, so one slow or dead box never
//     strands its share of the sweep.
//  5. A failed shard attempt is requeued with exponential backoff and
//     jitter, up to Options.MaxRetries re-dispatches; transport
//     failures additionally mark the worker unhealthy (its in-flight
//     requests are cancelled and requeued) until the periodic health
//     ping sees it answer GET /v1/healthz again.
//
// Determinism: a Result's Res is a pure function of its Job, so where
// a job executes — and how often it is retried — can only change the
// wall-clock columns (Elapsed, Worker, Shard), never the simulation
// outcome. Merging by index therefore reproduces the local engine's
// output exactly; TestFabricDeterminism pins this with DiffSnapshots.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"vliwmt/internal/resultstore"
	"vliwmt/internal/sweep"
	"vliwmt/internal/telemetry"
)

// Options configures a Coordinator.
type Options struct {
	// Workers are the worker addresses ("host:port" or full URLs),
	// registered at construction. At least one is required.
	Workers []string
	// Store is the coordinator-side result store: probed before
	// fan-out (hits never leave the box) and written back after, so
	// the coordinator accumulates every result it has ever merged.
	// Optional.
	Store *resultstore.Store
	// ShardJobs caps the unique jobs per shard (default 8). Smaller
	// shards spread better and requeue cheaper; larger shards
	// amortise the HTTP round trip.
	ShardJobs int
	// RemoteWorkers is the pool-size hint forwarded to each worker
	// (0 lets the worker pick runtime.NumCPU()).
	RemoteWorkers int
	// MaxRetries bounds the re-dispatches of one shard after its
	// first attempt (default 4). Exhausting the budget fails the
	// shard's jobs, not the sweep.
	MaxRetries int
	// RetryBase and RetryMax bound the exponential backoff between
	// re-dispatches (defaults 100ms and 5s); each delay is jittered
	// to half-to-full of the nominal value.
	RetryBase time.Duration
	RetryMax  time.Duration
	// PingInterval is the health-probe period per worker (default
	// 2s). Probes hit GET /v1/healthz and flip the worker's health
	// both ways.
	PingInterval time.Duration
	// HTTPClient overrides the transport (tests). Defaults to a
	// fresh http.Client with no global timeout — per-attempt
	// lifetimes are context-governed.
	HTTPClient *http.Client
}

// Coordinator fans sweeps out to a registered worker pool. It is safe
// for concurrent Runs; worker health is shared across them. Close
// releases the health pingers.
type Coordinator struct {
	opts    Options
	store   *resultstore.Store
	httpc   *http.Client
	workers []*worker

	stopPing context.CancelFunc
	pingWG   sync.WaitGroup

	mu sync.Mutex
	//vliwvet:allow detpure seeded local jitter generator, never the global source
	rng        *rand.Rand
	dispatches map[*dispatch]struct{}
}

// New validates opts, registers the workers (optimistically healthy;
// the first failed dispatch or ping corrects that) and starts one
// health pinger per worker.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("fabric: no workers registered")
	}
	if opts.ShardJobs <= 0 {
		opts.ShardJobs = 8
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 4
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 5 * time.Second
	}
	if opts.PingInterval <= 0 {
		opts.PingInterval = 2 * time.Second
	}
	c := &Coordinator{
		opts:  opts,
		store: opts.Store,
		httpc: opts.HTTPClient,
		// The jitter stream only decorrelates retry storms, so a fixed
		// seed is fine — and keeps the package deterministic-clean.
		rng:        rand.New(rand.NewPCG(2009, uint64(len(opts.Workers)))),
		dispatches: map[*dispatch]struct{}{},
	}
	if c.httpc == nil {
		c.httpc = &http.Client{}
	}
	seen := map[string]bool{}
	for _, addr := range opts.Workers {
		w, err := newWorker(addr)
		if err != nil {
			return nil, err
		}
		if seen[w.base] {
			return nil, fmt.Errorf("fabric: worker %s registered twice", addr)
		}
		seen[w.base] = true
		c.workers = append(c.workers, w)
	}
	pctx, cancel := context.WithCancel(context.Background())
	c.stopPing = cancel
	for _, w := range c.workers {
		c.pingWG.Add(1)
		go c.pinger(pctx, w)
	}
	return c, nil
}

// Close stops the health pingers. In-flight Runs are unaffected.
func (c *Coordinator) Close() {
	c.stopPing()
	c.pingWG.Wait()
}

// Workers returns the registered worker names in registration order.
func (c *Coordinator) Workers() []string {
	names := make([]string, len(c.workers))
	for i, w := range c.workers {
		names[i] = w.name
	}
	return names
}

// Run executes the job set on the worker pool and returns one Result
// per job, ordered by index. Its signature matches server.Executor,
// and its error semantics mirror the local engine: per-job failures
// are collected on their Results and joined into the returned error;
// cancelling ctx stops dispatching, already-running shards finish (the
// workers' wait=1 handlers observe the dropped connections), and jobs
// never delivered carry the context's error. The workers argument is
// forwarded as each shard's pool-size hint when Options.RemoteWorkers
// is unset.
func (c *Coordinator) Run(ctx context.Context, jobs []sweep.Job, workers int, progress sweep.ProgressFunc) ([]sweep.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sweepID := telemetry.EnsureSweepID(ctx)
	logger := telemetry.TraceLogger().With("sweep", sweepID)

	remote := c.opts.RemoteWorkers
	if remote == 0 {
		remote = workers
	}
	d := &dispatch{
		c:        c,
		ctx:      ctx,
		jobs:     jobs,
		results:  make([]sweep.Result, len(jobs)),
		progress: progress,
		remote:   remote,
	}
	d.cond = sync.NewCond(&d.mu)
	for i := range jobs {
		d.results[i] = sweep.Result{Index: i, Job: jobs[i]}
	}

	units := d.plan()
	shards := chunkShards(units, c.opts.ShardJobs)
	d.queues = make([][]*shard, len(c.workers))
	for i, sh := range shards {
		wi := i % len(c.workers)
		d.queues[wi] = append(d.queues[wi], sh)
	}
	d.outstanding = len(shards)
	logger.Info("fabric dispatch",
		"jobs", len(jobs), "units", len(units), "shards", len(shards), "workers", len(c.workers))

	if len(shards) > 0 {
		c.addDispatch(d)
		defer c.removeDispatch(d)
		// A cancelled sweep must wake every worker loop parked on the
		// condition variable.
		stop := context.AfterFunc(ctx, d.cond.Broadcast)
		defer stop()
		var wg sync.WaitGroup
		for wi := range c.workers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.workerLoop(wi)
			}()
		}
		wg.Wait()
	}

	var errs []error
	if err := ctx.Err(); err != nil {
		// Shards never delivered (cancelled mid-flight or still queued)
		// leave their jobs unfilled; they carry the context's error,
		// exactly as the local engine's skipped jobs do.
		for i := range d.results {
			if d.results[i].Res == nil && d.results[i].Err == nil {
				d.results[i].Err = err
			}
		}
		errs = append(errs, err)
	}
	for i := range d.results {
		if d.results[i].Err != nil && !errors.Is(d.results[i].Err, ctx.Err()) {
			errs = append(errs, fmt.Errorf("job %d (%s): %w", i, d.results[i].Job.Describe(), d.results[i].Err))
		}
	}
	return d.results, errors.Join(errs...)
}

// addDispatch registers a running dispatch so worker health
// transitions can wake its scheduler.
func (c *Coordinator) addDispatch(d *dispatch) {
	c.mu.Lock()
	c.dispatches[d] = struct{}{}
	c.mu.Unlock()
}

func (c *Coordinator) removeDispatch(d *dispatch) {
	c.mu.Lock()
	delete(c.dispatches, d)
	c.mu.Unlock()
}

// broadcastAll wakes every active dispatch's scheduler (a worker came
// back; parked loops should re-check for claimable work).
func (c *Coordinator) broadcastAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for d := range c.dispatches {
		d.cond.Broadcast()
	}
}

// backoff returns the jittered delay before re-dispatching a shard
// whose attempt-th try failed: base·2^(attempt-1) capped at RetryMax,
// then jittered to [1/2, 1) of nominal so synchronised failures don't
// re-dispatch in lockstep.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.opts.RetryBase << (attempt - 1)
	if d > c.opts.RetryMax || d <= 0 {
		d = c.opts.RetryMax
	}
	c.mu.Lock()
	j := c.rng.Float64()
	c.mu.Unlock()
	return d/2 + time.Duration(float64(d/2)*j)
}
