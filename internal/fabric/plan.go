package fabric

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vliwmt/internal/api"
	"vliwmt/internal/resultstore"
	"vliwmt/internal/sim"
	"vliwmt/internal/sweep"
)

// unit is one dispatchable simulation: a representative job plus every
// submission index that shares its content key. Duplicate-key jobs
// travel once and fan back to all of their indices on merge.
type unit struct {
	key     string
	job     sweep.Job
	indices []int // ascending submission order
}

// shard is the dispatch granule: a batch of units that travels to one
// worker as a single POST /v1/sweeps?wait=1. IDs are 1-based so a
// zero Shard on a Result still means "ran locally".
type shard struct {
	id    int
	units []*unit
	// attempts counts dispatches so far. Only the goroutine currently
	// holding the shard (popped from a queue, not yet requeued)
	// touches it, so it needs no lock.
	attempts int
}

// dispatch is the per-Run scheduling state: per-worker pending queues,
// the retry requeue list, and the merge target. One condition variable
// covers all state transitions a parked worker loop cares about (work
// requeued, shard finished, worker health changed, context cancelled).
type dispatch struct {
	c        *Coordinator
	ctx      context.Context
	jobs     []sweep.Job
	results  []sweep.Result
	progress sweep.ProgressFunc
	remote   int // pool-size hint forwarded to workers

	mu          sync.Mutex
	cond        *sync.Cond
	queues      [][]*shard // pending, parallel to c.workers
	requeued    []*shard   // retried shards, claimable by any worker
	outstanding int        // shards not yet completed or failed
	done        int        // progress counter, monotonic
}

// plan validates every job, probes the coordinator's store, and groups
// the remaining work into dispatch units by content key. Invalid jobs
// and store hits are resolved here — with progress emitted in
// submission order — and never leave the box.
func (d *dispatch) plan() []*unit {
	groups := map[string][]int{}
	var keys []string // first-appearance order: deterministic, no sort needed
	for i, j := range d.jobs {
		if err := j.Validate(); err != nil {
			d.finish(i, err)
			continue
		}
		key, err := resultstore.Key(j)
		if err != nil {
			d.finish(i, err)
			continue
		}
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], i)
	}
	units := make([]*unit, 0, len(keys))
	for _, k := range keys {
		idxs := groups[k]
		if n := len(idxs) - 1; n > 0 {
			metJobsDeduped.Add(int64(n))
		}
		rep := d.jobs[idxs[0]]
		if res, elapsed, ok := d.c.store.Get(rep); ok {
			metJobsFromStore.Add(int64(len(idxs)))
			d.merge(&unit{key: k, job: rep, indices: idxs},
				sweep.Result{Res: res, Elapsed: elapsed, Cached: true}, "", 0)
			continue
		}
		units = append(units, &unit{key: k, job: rep, indices: idxs})
	}
	return units
}

// chunkShards batches units into shards of at most per jobs, assigning
// 1-based IDs in unit order.
func chunkShards(units []*unit, per int) []*shard {
	shards := make([]*shard, 0, (len(units)+per-1)/per)
	for len(units) > 0 {
		n := min(per, len(units))
		shards = append(shards, &shard{id: len(shards) + 1, units: units[:n]})
		units = units[n:]
	}
	return shards
}

// workerLoop drains work on behalf of worker wi until the dispatch is
// complete or cancelled.
func (d *dispatch) workerLoop(wi int) {
	w := d.c.workers[wi]
	for {
		sh, stolen := d.next(wi)
		if sh == nil {
			return
		}
		if stolen {
			metShardsStolen.Inc()
		}
		d.attempt(w, sh)
	}
}

// next blocks until worker wi can claim a shard — a requeued retry
// first, then its own queue, then the tail of the longest peer queue
// (the steal) — or until the dispatch completes or is cancelled (nil).
// An unhealthy worker claims nothing; its queue stays stealable.
func (d *dispatch) next(wi int) (sh *shard, stolen bool) {
	w := d.c.workers[wi]
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.outstanding == 0 || d.ctx.Err() != nil {
			return nil, false
		}
		if w.isHealthy() {
			if len(d.requeued) > 0 {
				return popHead(&d.requeued), false
			}
			if len(d.queues[wi]) > 0 {
				return popHead(&d.queues[wi]), false
			}
			if vi := longestQueue(d.queues, wi); vi >= 0 {
				return popTail(&d.queues[vi]), true
			}
		}
		d.cond.Wait()
	}
}

// attempt dispatches one shard to one worker and routes the outcome:
// merge on success, retry-or-fail on error. The attempt's context is
// registered on the worker so marking it unhealthy cancels the
// request (and the worker's wait=1 handler, seeing the disconnect,
// cancels the remote sweep).
func (d *dispatch) attempt(w *worker, sh *shard) {
	actx, cancel := context.WithCancel(d.ctx)
	id := w.track(cancel)
	//vliwvet:allow detpure shard latency feeds the duration histogram only
	start := time.Now()
	metShardsDispatched.Inc()
	rs, err := d.c.runShard(actx, w, sh, d.remote)
	w.untrack(id)
	cancel()
	//vliwvet:allow detpure shard latency feeds the duration histogram only
	metShardLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		d.retryOrFail(sh, err)
		return
	}
	metShardsCompleted.Inc()
	d.completeShard(sh, w, rs)
}

// retryOrFail requeues a failed shard with backoff, or — once the
// retry budget is spent or the sweep cancelled — fails its jobs.
func (d *dispatch) retryOrFail(sh *shard, err error) {
	sh.attempts++
	if d.ctx.Err() != nil || sh.attempts > d.c.opts.MaxRetries {
		metShardsFailed.Inc()
		d.failShard(sh, err)
		return
	}
	metShardsRetried.Inc()
	delay := d.c.backoff(sh.attempts)
	go d.requeueAfter(sh, delay)
}

// requeueAfter puts the shard back on the shared retry queue after the
// backoff delay (immediately on cancellation — the worker loops then
// drain and exit, and Run's final pass marks the jobs).
func (d *dispatch) requeueAfter(sh *shard, delay time.Duration) {
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-d.ctx.Done():
	}
	d.mu.Lock()
	d.requeued = append(d.requeued, sh)
	d.mu.Unlock()
	d.cond.Broadcast()
}

// completeShard writes a shard's results back into the sweep: the
// store first (so a concurrent sweep can hit), then the merge in
// index order within each unit.
func (d *dispatch) completeShard(sh *shard, w *worker, rs []sweep.Result) {
	for p, u := range sh.units {
		if r := rs[p]; r.Err == nil && r.Res != nil {
			_ = d.c.store.Put(u.job, r.Res, r.Elapsed)
		}
	}
	d.mu.Lock()
	for p, u := range sh.units {
		d.mergeLocked(u, rs[p], w.name, sh.id)
	}
	d.outstanding--
	d.mu.Unlock()
	d.cond.Broadcast()
}

// failShard marks every not-yet-delivered job of the shard failed.
func (d *dispatch) failShard(sh *shard, err error) {
	d.mu.Lock()
	for _, u := range sh.units {
		d.mergeLocked(u, sweep.Result{
			Err: fmt.Errorf("fabric: shard %d (%d jobs): %w", sh.id, len(u.indices), err),
		}, "", sh.id)
	}
	d.outstanding--
	d.mu.Unlock()
	d.cond.Broadcast()
}

// merge fans one unit's outcome back to every submission index that
// shares its key and emits progress for each.
func (d *dispatch) merge(u *unit, r sweep.Result, workerName string, shardID int) {
	d.mu.Lock()
	d.mergeLocked(u, r, workerName, shardID)
	d.mu.Unlock()
}

func (d *dispatch) mergeLocked(u *unit, r sweep.Result, workerName string, shardID int) {
	for n, idx := range u.indices {
		res := r.Res
		if n > 0 && res != nil {
			// Secondary indices get their own copy so downstream
			// consumers can't alias one simulation result across rows.
			res = copySim(res)
		}
		d.results[idx].Err = r.Err
		deliver(d.results, idx, res, r.Elapsed, r.Cached, workerName, shardID)
		d.done++
		if d.progress != nil {
			d.progress(d.done, len(d.jobs), d.results[idx])
		}
	}
}

// finish resolves one job locally (validation or keying failure) with
// progress, before any dispatch exists.
func (d *dispatch) finish(idx int, err error) {
	d.mu.Lock()
	d.results[idx].Err = err
	d.done++
	if d.progress != nil {
		d.progress(d.done, len(d.jobs), d.results[idx])
	}
	d.mu.Unlock()
}

// copySim deep-copies a simulation result through its wire form.
func copySim(r *sim.Result) *sim.Result {
	c := api.SimResultFrom(*r).Sim()
	return &c
}

// deliver fills one result slot from a merged outcome. On the merge
// hot path: every remote result passes through here once per index.
//
//vliw:hotpath
func deliver(results []sweep.Result, idx int, res *sim.Result, elapsed time.Duration, cached bool, workerName string, shardID int) {
	results[idx].Res = res
	results[idx].Elapsed = elapsed
	results[idx].Cached = cached
	results[idx].Worker = workerName
	results[idx].Shard = shardID
}

// popHead claims the next shard from a queue (FIFO: a worker runs its
// own queue in assignment order).
//
//vliw:hotpath
func popHead(q *[]*shard) *shard {
	sh := (*q)[0]
	*q = (*q)[1:]
	return sh
}

// popTail claims the last shard of a queue (stealers take the tail,
// minimising contention with the owner draining the head).
//
//vliw:hotpath
func popTail(q *[]*shard) *shard {
	n := len(*q) - 1
	sh := (*q)[n]
	*q = (*q)[:n]
	return sh
}

// longestQueue returns the index of the longest non-empty pending
// queue other than skip (the steal victim: the slowest peer is the one
// with the most work left), or -1 when every peer queue is empty. Ties
// break to the lowest index, deterministically.
//
//vliw:hotpath
func longestQueue(queues [][]*shard, skip int) int {
	best, bestLen := -1, 0
	for i := range queues {
		if i != skip && len(queues[i]) > bestLen {
			best, bestLen = i, len(queues[i])
		}
	}
	return best
}
