package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
}

func TestHarmonicMean(t *testing.T) {
	if HarmonicMean(nil) != 0 {
		t.Error("HarmonicMean(nil) != 0")
	}
	if !almost(HarmonicMean([]float64{1, 1, 1}), 1) {
		t.Error("harmonic of ones")
	}
	// Harmonic mean of 2 and 6 is 3.
	if !almost(HarmonicMean([]float64{2, 6}), 3) {
		t.Errorf("HarmonicMean(2,6) = %g", HarmonicMean([]float64{2, 6}))
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-positive input")
		}
	}()
	HarmonicMean([]float64{1, 0})
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if !almost(GeoMean([]float64{2, 8}), 4) {
		t.Errorf("GeoMean(2,8) = %g", GeoMean([]float64{2, 8}))
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-positive input")
		}
	}()
	GeoMean([]float64{-1})
}

func TestPercentDiff(t *testing.T) {
	if !almost(PercentDiff(6, 4), 50) {
		t.Errorf("PercentDiff(6,4) = %g", PercentDiff(6, 4))
	}
	if !almost(PercentDiff(3, 4), -25) {
		t.Errorf("PercentDiff(3,4) = %g", PercentDiff(3, 4))
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, 1, 4, 1, 5})
	if min != 1 || max != 5 {
		t.Errorf("MinMax = %g,%g", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("MinMax(nil) != 0,0")
	}
}

func TestAccumulatorMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		var acc Accumulator
		for _, x := range clean {
			acc.Add(x)
		}
		if len(clean) == 0 {
			return acc.N() == 0 && acc.Mean() == 0
		}
		min, max := MinMax(clean)
		return almostRel(acc.Mean(), Mean(clean)) && acc.Min() == min && acc.Max() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func almostRel(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-6*(math.Abs(a)+math.Abs(b))
}

func TestAccumulatorVariance(t *testing.T) {
	var acc Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		acc.Add(x)
	}
	if !almost(acc.Mean(), 5) {
		t.Errorf("mean = %g", acc.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if !almost(acc.Var(), 32.0/7) {
		t.Errorf("var = %g", acc.Var())
	}
	if !almost(acc.StdDev(), math.Sqrt(32.0/7)) {
		t.Errorf("stddev = %g", acc.StdDev())
	}
	var empty Accumulator
	if empty.Var() != 0 || empty.StdDev() != 0 {
		t.Error("variance of empty accumulator not 0")
	}
}
