// Package stats provides the small numeric helpers used when aggregating
// simulation results: means, spread, and percentage comparisons.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmonicMean returns the harmonic mean, the conventional average for
// rates such as IPC (0 for empty input; panics on non-positive values).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: harmonic mean of non-positive value %g", x))
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// GeoMean returns the geometric mean (0 for empty input; panics on
// non-positive values).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geometric mean of non-positive value %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// PercentDiff returns 100*(a-b)/b.
func PercentDiff(a, b float64) float64 {
	return 100 * (a - b) / b
}

// MinMax returns the extremes of xs (zeros for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Accumulator tracks a running mean and variance (Welford's algorithm).
// The zero value is ready to use.
type Accumulator struct {
	n          int64
	mean, m2   float64
	minV, maxV float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.minV, a.maxV = x, x
	} else {
		if x < a.minV {
			a.minV = x
		}
		if x > a.maxV {
			a.maxV = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the running mean.
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the sample variance (0 with fewer than two samples).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample (0 when empty).
func (a *Accumulator) Min() float64 { return a.minV }

// Max returns the largest sample (0 when empty).
func (a *Accumulator) Max() float64 { return a.maxV }
