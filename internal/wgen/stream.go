package wgen

import (
	"fmt"
	"math"
)

// Request-stream scenarios extend the mediaserver example into a load
// model: instead of one hand-picked steady-state mix, a scenario is a
// multi-tenant stream of 4-thread requests with exponential
// interarrival times, each request a generated mix drawn from a
// class-combination palette. Like single kernels and mixes, a stream
// is a pure function of (StreamOptions, seed), so the same scenario
// replays bit-identically anywhere.

// DefaultCombos is the Table-2-style class-combination palette streams
// draw from when StreamOptions.Combos is empty: it spans all-control
// (LLLL) through all-signal-processing (HHHH) request shapes.
var DefaultCombos = []string{"LLLL", "LLMH", "LLHH", "LMMH", "MMHH", "MHHH", "HHHH"}

// StreamOptions parameterizes a request-stream scenario.
type StreamOptions struct {
	// Requests is the stream length (1..65536).
	Requests int
	// Tenants is the number of tenants requests are attributed to
	// (default 1; at most 1024). Tenancy is informational — a label for
	// per-tenant accounting in downstream analysis.
	Tenants int
	// MeanInterarrival is the mean of the exponential request
	// interarrival distribution, in cycles (default 10000).
	MeanInterarrival float64
	// Combos is the class-combination palette requests draw their mixes
	// from; empty means DefaultCombos. Each entry must be a 4-letter
	// L/M/H combination.
	Combos []string
	// Schemes, when non-empty, assigns merge schemes to requests
	// round-robin (e.g. the feasible set under an area budget). The
	// names are carried through verbatim; empty leaves requests
	// scheme-less (single-context multitasking downstream).
	Schemes []string
}

// Request is one arrival in a generated stream: a 4-thread generated
// mix with its members expanded, an arrival cycle, a tenant and a
// simulation seed. Fields are plain strings and integers so requests
// serialize directly into sweep jobs and wire DTOs.
type Request struct {
	// Index is the request's position in the stream.
	Index int
	// Arrival is the request's arrival time in cycles.
	Arrival uint64
	// Tenant attributes the request (0-based).
	Tenant int
	// Mix is the canonical generated-mix name ("genmix:LLHH:s7").
	Mix string
	// Members are the mix's four member benchmark names.
	Members [4]string
	// Scheme is the assigned merge scheme name; may be empty.
	Scheme string
	// Seed is the per-request simulation seed.
	Seed uint64
}

// GenerateStream emits a deterministic multi-tenant request stream for
// the given options and seed.
func GenerateStream(opt StreamOptions, seed uint64) ([]Request, error) {
	if opt.Requests < 1 || opt.Requests > 65536 {
		return nil, fmt.Errorf("wgen: %d requests outside [1, 65536]", opt.Requests)
	}
	if opt.Tenants == 0 {
		opt.Tenants = 1
	}
	if opt.Tenants < 1 || opt.Tenants > 1024 {
		return nil, fmt.Errorf("wgen: %d tenants outside [1, 1024]", opt.Tenants)
	}
	if opt.MeanInterarrival == 0 {
		opt.MeanInterarrival = 10000
	}
	if opt.MeanInterarrival < 1 || opt.MeanInterarrival > 1e9 {
		return nil, fmt.Errorf("wgen: mean interarrival %g cycles outside [1, 1e9]", opt.MeanInterarrival)
	}
	combos := opt.Combos
	if len(combos) == 0 {
		combos = DefaultCombos
	}
	for _, c := range combos {
		if _, err := classes(c); err != nil {
			return nil, err
		}
	}

	rng := NewRand(seed ^ 0xbb67ae8584caa73b)
	reqs := make([]Request, opt.Requests)
	var clock uint64
	for i := range reqs {
		// Exponential interarrival: -mean·ln(1-u). At least one cycle so
		// arrivals are strictly increasing and replay order is total.
		gap := uint64(-opt.MeanInterarrival*math.Log(1-rng.float())) + 1
		clock += gap

		combo := combos[rng.intn(len(combos))]
		mixSeed := rng.next()
		mix, err := MixName(combo, mixSeed)
		if err != nil {
			return nil, err
		}
		members, err := MixMembers(combo, mixSeed)
		if err != nil {
			return nil, err
		}
		r := Request{
			Index:   i,
			Arrival: clock,
			Tenant:  rng.intn(opt.Tenants),
			Mix:     mix,
			Members: members,
			Seed:    rng.next(),
		}
		if len(opt.Schemes) > 0 {
			r.Scheme = opt.Schemes[i%len(opt.Schemes)]
		}
		reqs[i] = r
	}
	return reqs, nil
}
