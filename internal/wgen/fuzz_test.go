package wgen

import (
	"encoding/json"
	"testing"

	"vliwmt/internal/isa"
)

// FuzzParseName drives the canonical-name grammar: any accepted name
// must decode to a valid profile, re-encode to exactly itself, and
// regenerate a Validate-clean kernel deterministically. Seeds come
// from generator output (committed under testdata/fuzz) plus malformed
// spellings of the grammar's edges.
func FuzzParseName(f *testing.F) {
	rng := NewRand(17)
	for i := 0; i < 6; i++ {
		p := RandomProfile(rng, Class(i%3))
		f.Add(BenchmarkName(p, rng.Uint64()))
	}
	f.Add("gen:L:b2:o8:m2000:u0:x5000:p5000:t8:r0:s3")
	f.Add("gen:H:b64:o512:m8000:u8000:x10000:p10000:t65536:r8:s18446744073709551615")
	f.Add("gen:L:b02:o8:m2000:u0:x5000:p5000:t8:r0:s3") // leading zero
	f.Add("gen:Q:b2:o8:m2000:u0:x5000:p5000:t8:r0:s3")
	f.Add("gen:L:b2:o8")
	f.Add("genmix:LLHH:s7")
	f.Add("imgpipe")
	f.Fuzz(func(t *testing.T, name string) {
		p, seed, err := Parse(name)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse accepted %q with invalid profile: %v", name, verr)
		}
		if canon := BenchmarkName(p, seed); canon != name {
			t.Fatalf("accepted name %q is not canonical (re-encodes to %q)", name, canon)
		}
		fn, err := Generate(p, seed)
		if err != nil {
			t.Fatalf("parsed name %q does not generate: %v", name, err)
		}
		if verr := fn.Validate(); verr != nil {
			t.Fatalf("kernel of %q invalid: %v", name, verr)
		}
		a, _ := json.Marshal(fn)
		b, _ := json.Marshal(MustGenerate(p, seed))
		if string(a) != string(b) {
			t.Fatalf("kernel of %q not deterministic", name)
		}
	})
}

// FuzzGenerate hammers the generator over the raw parameter space: any
// profile Validate accepts must generate a kernel that passes
// ir.Validate, uses only schedulable op classes (branches are block
// terminators, copies are compiler-inserted), respects the block/op
// budget, and reproduces bit-identically. Parameters Validate rejects
// must make Generate fail too — never panic.
func FuzzGenerate(f *testing.F) {
	rng := NewRand(29)
	for i := 0; i < 4; i++ {
		p := RandomProfile(rng, Class(i%3))
		f.Add(uint8(p.Class), p.Blocks, p.Ops, bp(p.MemDensity), bp(p.MulDensity),
			bp(p.BranchDensity), bp(p.TakenBias), p.TripCount, p.Unroll, rng.Uint64())
	}
	f.Add(uint8(0), 1, 2, 0, 0, 0, 0, 1, 0, uint64(0))
	f.Add(uint8(2), 64, 512, 8000, 8000, 10000, 10000, 65536, 8, uint64(1)<<63)
	f.Add(uint8(9), -1, 1000, 20000, -3, 10001, 5, 0, 99, uint64(7))
	f.Fuzz(func(t *testing.T, class uint8, blocks, ops, mem, mul, br, bias, trip, unroll int, seed uint64) {
		p := Profile{
			Class: Class(class), Blocks: blocks, Ops: ops,
			MemDensity: fromBP(mem), MulDensity: fromBP(mul),
			BranchDensity: fromBP(br), TakenBias: fromBP(bias),
			TripCount: trip, Unroll: unroll,
		}
		fn, err := Generate(p, seed)
		if verr := p.Validate(); verr != nil {
			if err == nil {
				t.Fatalf("Generate accepted a profile Validate rejects: %v", verr)
			}
			return
		}
		if err != nil {
			t.Fatalf("Generate failed on a valid profile %+v: %v", p, err)
		}
		if verr := fn.Validate(); verr != nil {
			t.Fatalf("generated IR invalid for %+v: %v", p, verr)
		}
		if len(fn.Blocks) != p.Blocks {
			t.Fatalf("%d blocks generated, profile wants %d", len(fn.Blocks), p.Blocks)
		}
		for _, blk := range fn.Blocks {
			for i, op := range blk.Ops {
				switch op.Class {
				case isa.OpALU, isa.OpMul, isa.OpMem:
				default:
					t.Fatalf("block %s op %d has unschedulable class %v", blk.Name, i, op.Class)
				}
			}
			// The op budget bounds every block: roots + chains + joins
			// are accounted against p.Ops, never past it.
			if len(blk.Ops) > p.Ops+1 {
				t.Fatalf("block %s has %d ops, budget is %d", blk.Name, len(blk.Ops), p.Ops)
			}
		}
		a, _ := json.Marshal(fn)
		b, _ := json.Marshal(MustGenerate(p, seed))
		if string(a) != string(b) {
			t.Fatalf("generation not deterministic for %+v seed %d", p, seed)
		}
	})
}
