package wgen

import (
	"fmt"
	"strconv"
	"strings"
)

// Canonical names. A generated benchmark is named by its parameters:
//
//	gen:H:b2:o32:m1500:u2000:x500:p2500:t64:r2:s42
//
// class, blocks, ops, memory/multiply/branch densities and taken bias
// in basis points (1/10000), trip count, unroll factor, seed. A
// generated Table-2-style mix is named by its class combination and
// seed:
//
//	genmix:LMHH:s7
//
// Both grammars are strict: Parse and ParseMixName accept exactly the
// spelling they emit (re-encoding must reproduce the input), so a
// name is canonical by construction — two equal names always denote
// the same kernel bytes, and unequal canonical names of equal
// parameters cannot exist. That is what lets names serve as compile
// cache keys, result-store key components and wire identifiers with
// no side channel.

// Prefix marks generated benchmark names.
const Prefix = "gen:"

// MixPrefix marks generated mix names.
const MixPrefix = "genmix:"

// IsName reports whether name is a generated benchmark name (by
// prefix; Parse decides validity).
func IsName(name string) bool { return strings.HasPrefix(name, Prefix) }

// IsMixName reports whether name is a generated mix name.
func IsMixName(name string) bool { return strings.HasPrefix(name, MixPrefix) }

// BenchmarkName renders the canonical name of the (profile, seed)
// point. The profile is quantized first, so the name round-trips
// through Parse exactly.
func BenchmarkName(p Profile, seed uint64) string {
	p = p.Quantize()
	return fmt.Sprintf("gen:%s:b%d:o%d:m%d:u%d:x%d:p%d:t%d:r%d:s%d",
		p.Class, p.Blocks, p.Ops,
		bp(p.MemDensity), bp(p.MulDensity), bp(p.BranchDensity), bp(p.TakenBias),
		p.TripCount, p.Unroll, seed)
}

// field parses one "<tag><int>" name field.
func field(s, tag string) (int, error) {
	v, ok := strings.CutPrefix(s, tag)
	if !ok {
		return 0, fmt.Errorf("field %q does not start with %q", s, tag)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("field %q is not a non-negative integer", s)
	}
	return n, nil
}

// Parse decodes a canonical generated benchmark name back to its
// profile and seed. It rejects malformed grammar, out-of-range
// profiles (through Profile.Validate) and non-canonical spellings
// (leading zeros, unquantized densities), so every accepted name is
// reproducible bit-for-bit by BenchmarkName.
func Parse(name string) (Profile, uint64, error) {
	fail := func(err error) (Profile, uint64, error) {
		return Profile{}, 0, fmt.Errorf("wgen: name %q: %w", name, err)
	}
	if !IsName(name) {
		return fail(fmt.Errorf("missing %q prefix", Prefix))
	}
	parts := strings.Split(name[len(Prefix):], ":")
	if len(parts) != 10 {
		return fail(fmt.Errorf("want 10 fields after the prefix, got %d", len(parts)))
	}
	class, err := ParseClass(parts[0])
	if err != nil {
		return fail(err)
	}
	var p Profile
	p.Class = class
	ints := []struct {
		tag string
		dst *int
	}{
		{"b", &p.Blocks}, {"o", &p.Ops},
		{"m", nil}, {"u", nil}, {"x", nil}, {"p", nil},
		{"t", &p.TripCount}, {"r", &p.Unroll},
	}
	var bps [4]int
	bpi := 0
	for i, f := range ints {
		n, err := field(parts[1+i], f.tag)
		if err != nil {
			return fail(err)
		}
		if f.dst != nil {
			*f.dst = n
		} else {
			bps[bpi] = n
			bpi++
		}
	}
	p.MemDensity = fromBP(bps[0])
	p.MulDensity = fromBP(bps[1])
	p.BranchDensity = fromBP(bps[2])
	p.TakenBias = fromBP(bps[3])
	seedStr, ok := strings.CutPrefix(parts[9], "s")
	if !ok {
		return fail(fmt.Errorf("field %q does not start with %q", parts[9], "s"))
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return fail(fmt.Errorf("seed %q is not an unsigned integer", seedStr))
	}
	if err := p.Validate(); err != nil {
		return fail(err)
	}
	if canon := BenchmarkName(p, seed); canon != name {
		return fail(fmt.Errorf("not canonical (want %q)", canon))
	}
	return p, seed, nil
}

// MixName renders the canonical name of a generated 4-thread mix: the
// ILP-class combination (Table-2 style, e.g. "LMHH") plus the seed the
// member profiles derive from.
func MixName(combo string, seed uint64) (string, error) {
	if _, err := classes(combo); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s%s:s%d", MixPrefix, combo, seed), nil
}

// ParseMixName decodes a canonical generated mix name.
func ParseMixName(name string) (string, uint64, error) {
	fail := func(err error) (string, uint64, error) {
		return "", 0, fmt.Errorf("wgen: mix name %q: %w", name, err)
	}
	if !IsMixName(name) {
		return fail(fmt.Errorf("missing %q prefix", MixPrefix))
	}
	combo, seedPart, ok := strings.Cut(name[len(MixPrefix):], ":")
	if !ok {
		return fail(fmt.Errorf("want genmix:<classes>:s<seed>"))
	}
	if _, err := classes(combo); err != nil {
		return fail(err)
	}
	seedStr, ok := strings.CutPrefix(seedPart, "s")
	if !ok {
		return fail(fmt.Errorf("field %q does not start with %q", seedPart, "s"))
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return fail(fmt.Errorf("seed %q is not an unsigned integer", seedStr))
	}
	if canon, _ := MixName(combo, seed); canon != name {
		return fail(fmt.Errorf("not canonical (want %q)", canon))
	}
	return combo, seed, nil
}

// memberSeed derives member i's generation seed from the mix seed
// (splitmix64 spread, like sweep.Grid's per-job seeds).
func memberSeed(seed uint64, i int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// MixMembers expands a generated mix into its four member benchmark
// names: one random profile per class letter, each drawn from a seed
// derived from the mix seed and the member index. Deterministic, so a
// mix name fully identifies its members everywhere, including across
// the wire.
func MixMembers(combo string, seed uint64) ([4]string, error) {
	var out [4]string
	cls, err := classes(combo)
	if err != nil {
		return out, err
	}
	for i, c := range cls {
		ms := memberSeed(seed, i)
		p := RandomProfile(NewRand(ms), c)
		out[i] = BenchmarkName(p, ms)
	}
	return out, nil
}
