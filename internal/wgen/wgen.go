// Package wgen is the synthetic workload generator: it emits dataflow
// IR kernels from a typed Profile spanning the TLP design-space axes
// the paper's hand-built Table 1 kernels sample only sparsely — ILP
// class (dependence width), memory-op density and locality, branch
// density and taken bias, loop trip counts and kernel length.
//
// Generation is fully deterministic: the same (Profile, seed) pair
// always produces byte-identical IR, on any machine, at any
// GOMAXPROCS. That determinism is what lets a generated benchmark be
// named by its parameters alone — the canonical "gen:" names built by
// BenchmarkName and parsed by Parse — so generated workloads flow
// through every existing layer (compile cache, sweep engine, result
// store keys, the wire format, the distributed fabric) as plain
// benchmark-name strings, and the receiving end regenerates exactly
// the kernel the sender meant. vliwvet's detpure analyzer polices the
// package: no wall clocks, no global RNG, no environment reads.
//
// Changing the generation algorithm changes what every "gen:" name
// means, which invalidates stored results and committed generated
// corpora exactly like a simulator behaviour change: bless a new
// golden baseline (make golden) in the same commit, and bump
// resultstore.SchemaVersion if stored entries could otherwise be
// served as wrong answers.
package wgen

import (
	"fmt"

	"vliwmt/internal/ir"
)

// Class is the generator's ILP classification, mirroring the paper's
// L/M/H split of Table 1: it selects how many independent dependence
// chains a block carries, and therefore how much instruction-level
// parallelism the compiler can schedule.
type Class uint8

const (
	// Low ILP: one or two long serial chains per block.
	Low Class = iota
	// Medium ILP: a few parallel chains of moderate length.
	Medium
	// High ILP: many short independent chains.
	High
)

func (c Class) String() string {
	switch c {
	case Low:
		return "L"
	case Medium:
		return "M"
	default:
		return "H"
	}
}

// ParseClass converts an L/M/H letter back to the class value.
func ParseClass(s string) (Class, error) {
	switch s {
	case "L":
		return Low, nil
	case "M":
		return Medium, nil
	case "H":
		return High, nil
	}
	return 0, fmt.Errorf("wgen: unknown ILP class %q (want L, M or H)", s)
}

// Profile is the typed parameter point a kernel is generated from.
// Validate spells out the legal ranges; Quantize reduces the density
// axes to the resolution the canonical name encodes (1/10000), which
// is also the resolution the generator actually uses — two profiles
// that quantize equal generate identical kernels.
type Profile struct {
	// Class is the ILP class: it drives the number of parallel
	// dependence chains per block.
	Class Class
	// Blocks is the number of basic blocks (1..64). More blocks mean a
	// larger code footprint and more branch sites.
	Blocks int
	// Ops is the number of IR operations per block (2..512) — the
	// kernel-length axis.
	Ops int
	// MemDensity is the fraction of operations that are memory
	// references [0..0.8]; about 30% of generated references are
	// stores.
	MemDensity float64
	// MulDensity is the fraction of compute operations that are
	// multiplies [0..0.8] (two-cycle latency, multiplier-slot bound).
	MulDensity float64
	// BranchDensity is the fraction of blocks terminated by a
	// probabilistic (Bernoulli) branch [0..1]; the remaining blocks end
	// in counted self-loops of TripCount iterations.
	BranchDensity float64
	// TakenBias is the taken probability of probabilistic branches
	// [0..1].
	TakenBias float64
	// TripCount is the trip count of counted loop back-edges (1..65536).
	TripCount int
	// Unroll is the compiler unroll factor applied when the generated
	// benchmark is compiled (0 or 1: none; at most 8).
	Unroll int
}

// bpScale is the density resolution: densities are quantized to basis
// points of 1/10000 so the canonical name encodes them losslessly.
const bpScale = 10000

// bp quantizes a density to basis points.
func bp(v float64) int { return int(v*bpScale + 0.5) }

// fromBP converts basis points back to a density.
func fromBP(n int) float64 { return float64(n) / bpScale }

// Validate rejects out-of-range profiles with a descriptive error.
func (p Profile) Validate() error {
	if p.Class > High {
		return fmt.Errorf("wgen: ILP class %d out of range (want Low, Medium or High)", p.Class)
	}
	if p.Blocks < 1 || p.Blocks > 64 {
		return fmt.Errorf("wgen: %d blocks outside [1, 64]", p.Blocks)
	}
	if p.Ops < 2 || p.Ops > 512 {
		return fmt.Errorf("wgen: %d ops per block outside [2, 512]", p.Ops)
	}
	if p.MemDensity < 0 || p.MemDensity > 0.8 {
		return fmt.Errorf("wgen: memory density %g outside [0, 0.8]", p.MemDensity)
	}
	if p.MulDensity < 0 || p.MulDensity > 0.8 {
		return fmt.Errorf("wgen: multiply density %g outside [0, 0.8]", p.MulDensity)
	}
	if p.BranchDensity < 0 || p.BranchDensity > 1 {
		return fmt.Errorf("wgen: branch density %g outside [0, 1]", p.BranchDensity)
	}
	if p.TakenBias < 0 || p.TakenBias > 1 {
		return fmt.Errorf("wgen: taken bias %g outside [0, 1]", p.TakenBias)
	}
	if p.TripCount < 1 {
		return fmt.Errorf("wgen: trip count %d must be at least 1", p.TripCount)
	}
	if p.TripCount > 65536 {
		return fmt.Errorf("wgen: trip count %d above 65536", p.TripCount)
	}
	if p.Unroll < 0 || p.Unroll > 8 {
		return fmt.Errorf("wgen: unroll factor %d outside [0, 8]", p.Unroll)
	}
	return nil
}

// Quantize returns the profile with its density axes reduced to the
// canonical 1/10000 resolution. Generate quantizes internally, so two
// profiles with the same quantization produce identical kernels.
func (p Profile) Quantize() Profile {
	p.MemDensity = fromBP(bp(p.MemDensity))
	p.MulDensity = fromBP(bp(p.MulDensity))
	p.BranchDensity = fromBP(bp(p.BranchDensity))
	p.TakenBias = fromBP(bp(p.TakenBias))
	return p
}

// Rand is a splitmix64 generator: the generator's only source of
// pseudo-randomness, seeded explicitly so generation is a pure
// function of its inputs.
type Rand struct{ s uint64 }

func (r *Rand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Uint64 returns the next raw draw — the exported face of the
// sequence, for callers deriving seeds from a Rand.
func (r *Rand) Uint64() uint64 { return r.next() }

func (r *Rand) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt draws uniformly from [lo, hi].
func (r *Rand) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// float returns a uniform draw in [0, 1).
func (r *Rand) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// footprints is the memory-locality table streams draw from: the
// resident entries fit the paper's 64KB caches, the streaming entries
// do not — mixing the two is what gives generated kernels realistic
// IPCr-vs-IPCp gaps.
var footprints = []uint64{
	16 << 10, 32 << 10, 48 << 10, 64 << 10, // cache resident
	1 << 20, 4 << 20, 8 << 20, // streaming
}

// genStreams draws the kernel's address streams: 1-3 of them, kinds
// weighted toward strided access, footprints spanning resident and
// streaming working sets. Heavier memory density skews toward more
// streams so references spread over distinct localities.
func genStreams(b *ir.Builder, rng *Rand, p Profile) []int {
	n := 1 + rng.intn(3)
	if p.MemDensity > 0.3 && n < 2 {
		n = 2
	}
	ids := make([]int, n)
	for i := range ids {
		var s ir.MemStream
		switch k := rng.intn(100); {
		case k < 50:
			s.Kind = ir.StreamStride
			s.Stride = int64(2 << rng.intn(4)) // 2, 4, 8 or 16 bytes
		case k < 85:
			s.Kind = ir.StreamRandom
		default:
			s.Kind = ir.StreamChase
		}
		s.Base = uint64(i+1) << 28
		s.Footprint = footprints[rng.intn(len(footprints))]
		ids[i] = b.Stream(s)
	}
	return ids
}

// chainWidth draws the number of parallel dependence chains for one
// block — the ILP-class axis made concrete.
func chainWidth(rng *Rand, c Class) int {
	switch c {
	case Low:
		return rng.rangeInt(1, 2)
	case Medium:
		return rng.rangeInt(3, 4)
	default:
		return rng.rangeInt(6, 9)
	}
}

// Generate emits the IR kernel of the (profile, seed) point. The
// result is deterministic: equal quantized profiles and equal seeds
// yield byte-identical functions. The function is named with the
// canonical BenchmarkName, so a generated kernel is self-describing.
func Generate(p Profile, seed uint64) (*ir.Function, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.Quantize()
	// Mix the seed so seed 0 and small seeds still decorrelate, and
	// fold in the profile so nearby (profile, seed) points diverge.
	rng := Rand{s: seed ^ 0x6a09e667f3bcc909 ^ uint64(bp(p.MemDensity))<<32 ^ uint64(p.Ops)<<16 ^ uint64(p.Blocks)}
	b := ir.NewBuilder(BenchmarkName(p, seed))
	streams := genStreams(b, &rng, p)

	for blk := 0; blk < p.Blocks; blk++ {
		b.Block(fmt.Sprintf("b%d", blk))
		budget := p.Ops

		// Roots: one or two loads feeding every chain, so the block's
		// compute depends on memory exactly once at the top (plus the
		// density-driven references inside the chains).
		nRoots := 1
		if budget > 4 && rng.float() < 0.5 {
			nRoots = 2
		}
		roots := make([]ir.Value, nRoots)
		for i := range roots {
			roots[i] = b.Load(streams[rng.intn(len(streams))])
		}
		budget -= nRoots

		width := chainWidth(&rng, p.Class)
		// Every chain costs its head op, and joining w chains costs
		// ceil((w-1)/2) reduction ops; shrink the width until both fit.
		for width > 1 && width+(width-1+1)/2 > budget {
			width--
		}
		if width < 1 {
			width = 1
		}
		joins := 0
		if width > 1 {
			joins = (width - 1 + 1) / 2
		}

		tails := make([]ir.Value, width)
		for i := range tails {
			tails[i] = b.ALU(roots[rng.intn(len(roots))])
		}
		budget -= width + joins

		// Grow the chains round-robin, drawing each op's class from the
		// density axes: memory references (30% stores) against a random
		// stream, multiplies among the compute ops, ALU otherwise.
		for i := 0; budget > 0; i++ {
			c := i % width
			switch {
			case rng.float() < p.MemDensity:
				s := streams[rng.intn(len(streams))]
				if rng.float() < 0.3 {
					tails[c] = b.Store(s, tails[c])
				} else {
					tails[c] = b.Load(s, tails[c])
				}
			case rng.float() < p.MulDensity:
				tails[c] = b.Mul(tails[c])
			default:
				tails[c] = b.ALU(tails[c])
			}
			budget--
		}

		// Join the chain tails pairwise so the block is connected and
		// the chains' results are all live into the reduction.
		for i := 0; i+1 < len(tails); i += 2 {
			b.ALU(tails[i], tails[i+1])
		}

		if rng.float() < p.BranchDensity {
			target := fmt.Sprintf("b%d", rng.intn(p.Blocks))
			b.Branch(target, ir.Bernoulli(p.TakenBias), tails[0])
		} else {
			// Counted self-loop: the trip-count axis, and the shape the
			// compiler's unroller targets.
			b.Branch(fmt.Sprintf("b%d", blk), ir.Loop(p.TripCount), tails[0])
		}
	}
	return b.Finish()
}

// MustGenerate is Generate for profiles already validated (e.g. parsed
// from a canonical name); it panics on error.
func MustGenerate(p Profile, seed uint64) *ir.Function {
	f, err := Generate(p, seed)
	if err != nil {
		panic(err)
	}
	return f
}

// RandomProfile draws a profile within the plausible parameter ranges
// of the given ILP class — the sampler behind generated mixes, the
// generative conformance harness and cmd/vliwgen. Draw order is part
// of the determinism contract: the same rng state always yields the
// same profile.
func RandomProfile(rng *Rand, c Class) Profile {
	p := Profile{Class: c, Unroll: 1}
	switch c {
	case Low:
		p.Blocks = rng.rangeInt(4, 12)
		p.Ops = rng.rangeInt(6, 16)
		p.MemDensity = fromBP(rng.rangeInt(1500, 4500))
		p.MulDensity = fromBP(rng.rangeInt(0, 2000))
		p.BranchDensity = fromBP(rng.rangeInt(3000, 9000))
		p.TakenBias = fromBP(rng.rangeInt(2000, 6000))
		p.TripCount = rng.rangeInt(4, 64)
	case Medium:
		p.Blocks = rng.rangeInt(2, 6)
		p.Ops = rng.rangeInt(12, 28)
		p.MemDensity = fromBP(rng.rangeInt(1000, 3000))
		p.MulDensity = fromBP(rng.rangeInt(1000, 3000))
		p.BranchDensity = fromBP(rng.rangeInt(1000, 5000))
		p.TakenBias = fromBP(rng.rangeInt(2000, 5000))
		p.TripCount = rng.rangeInt(8, 96)
	default:
		p.Blocks = rng.rangeInt(1, 3)
		p.Ops = rng.rangeInt(24, 64)
		p.MemDensity = fromBP(rng.rangeInt(500, 2500))
		p.MulDensity = fromBP(rng.rangeInt(1000, 3500))
		p.BranchDensity = fromBP(rng.rangeInt(0, 3000))
		p.TakenBias = fromBP(rng.rangeInt(1000, 4000))
		p.TripCount = rng.rangeInt(16, 128)
		p.Unroll = rng.rangeInt(1, 2)
	}
	return p
}

// NewRand returns a seeded generator for the sampling entry points
// (RandomProfile); the zero seed is remapped so it still produces a
// usable sequence.
func NewRand(seed uint64) *Rand {
	return &Rand{s: seed ^ 0x9e3779b97f4a7c15}
}

// classes parses a 4-letter ILP-class combination ("LMHH") into class
// values, Table-2 style.
func classes(combo string) ([4]Class, error) {
	var out [4]Class
	if len(combo) != 4 {
		return out, fmt.Errorf("wgen: class combination %q must be 4 letters of L, M or H", combo)
	}
	for i := 0; i < 4; i++ {
		c, err := ParseClass(combo[i : i+1])
		if err != nil {
			return out, fmt.Errorf("wgen: class combination %q: %w", combo, err)
		}
		out[i] = c
	}
	return out, nil
}
