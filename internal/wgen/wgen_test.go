package wgen

import (
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// irBytes canonicalizes a generated function for byte-level
// comparison.
func irBytes(t *testing.T, p Profile, seed uint64) []byte {
	t.Helper()
	f, err := Generate(p, seed)
	if err != nil {
		t.Fatalf("Generate(%+v, %d): %v", p, seed, err)
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestGenerateDeterministic pins the core contract: the same (profile,
// seed) point yields byte-identical IR on repeated calls, from
// concurrent goroutines, and across GOMAXPROCS settings.
func TestGenerateDeterministic(t *testing.T) {
	rng := NewRand(11)
	for iter := 0; iter < 25; iter++ {
		c := Class(iter % 3)
		p := RandomProfile(rng, c)
		seed := rng.next()
		want := irBytes(t, p, seed)

		if got := irBytes(t, p, seed); string(got) != string(want) {
			t.Fatalf("iter %d: repeated Generate differs for %s", iter, BenchmarkName(p, seed))
		}

		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			var wg sync.WaitGroup
			got := make([][]byte, 8)
			for i := range got {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					f := MustGenerate(p, seed)
					b, err := json.Marshal(f)
					if err != nil {
						panic(err)
					}
					got[i] = b
				}(i)
			}
			wg.Wait()
			runtime.GOMAXPROCS(prev)
			for i, b := range got {
				if string(b) != string(want) {
					t.Fatalf("iter %d: GOMAXPROCS=%d goroutine %d differs for %s",
						iter, procs, i, BenchmarkName(p, seed))
				}
			}
		}
	}
}

// TestQuantizedProfilesCoincide checks that profiles equal after
// quantization generate identical kernels — the property that makes
// basis-point names lossless.
func TestQuantizedProfilesCoincide(t *testing.T) {
	p := Profile{Class: Medium, Blocks: 3, Ops: 20, MemDensity: 0.25,
		MulDensity: 0.1, BranchDensity: 0.4, TakenBias: 0.5, TripCount: 16, Unroll: 1}
	q := p
	q.MemDensity += 1e-9 // below basis-point resolution
	q.TakenBias -= 1e-9
	if a, b := irBytes(t, p, 7), irBytes(t, q, 7); string(a) != string(b) {
		t.Fatal("sub-quantum density perturbation changed the generated kernel")
	}
	if BenchmarkName(p, 7) != BenchmarkName(q, 7) {
		t.Fatal("sub-quantum density perturbation changed the canonical name")
	}
}

// TestGeneratedKernelsValidate sweeps random profiles of every class
// and requires each generated function to pass ir.Validate and carry
// its canonical name.
func TestGeneratedKernelsValidate(t *testing.T) {
	rng := NewRand(23)
	for iter := 0; iter < 60; iter++ {
		p := RandomProfile(rng, Class(iter%3))
		seed := rng.next()
		f, err := Generate(p, seed)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("iter %d: generated IR invalid: %v", iter, err)
		}
		if f.Name != BenchmarkName(p, seed) {
			t.Fatalf("iter %d: function named %q, want canonical %q", iter, f.Name, BenchmarkName(p, seed))
		}
		if got := len(f.Blocks); got != p.Blocks {
			t.Fatalf("iter %d: %d blocks, profile wants %d", iter, got, p.Blocks)
		}
	}
}

// TestProfileValidateRejects covers the validation error paths with
// their messages.
func TestProfileValidateRejects(t *testing.T) {
	ok := Profile{Class: Low, Blocks: 2, Ops: 8, MemDensity: 0.2,
		BranchDensity: 0.5, TakenBias: 0.5, TripCount: 8}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Profile)
		want string
	}{
		{"class", func(p *Profile) { p.Class = 9 }, "ILP class 9 out of range"},
		{"blocks-low", func(p *Profile) { p.Blocks = 0 }, "0 blocks outside [1, 64]"},
		{"blocks-high", func(p *Profile) { p.Blocks = 65 }, "65 blocks outside [1, 64]"},
		{"ops-low", func(p *Profile) { p.Ops = 1 }, "1 ops per block outside [2, 512]"},
		{"ops-high", func(p *Profile) { p.Ops = 513 }, "513 ops per block outside [2, 512]"},
		{"mem", func(p *Profile) { p.MemDensity = 0.81 }, "memory density 0.81 outside [0, 0.8]"},
		{"mem-neg", func(p *Profile) { p.MemDensity = -0.1 }, "memory density -0.1 outside [0, 0.8]"},
		{"mul", func(p *Profile) { p.MulDensity = 0.9 }, "multiply density 0.9 outside [0, 0.8]"},
		{"branch", func(p *Profile) { p.BranchDensity = 1.5 }, "branch density 1.5 outside [0, 1]"},
		{"bias", func(p *Profile) { p.TakenBias = -1 }, "taken bias -1 outside [0, 1]"},
		{"trip-zero", func(p *Profile) { p.TripCount = 0 }, "trip count 0 must be at least 1"},
		{"trip-high", func(p *Profile) { p.TripCount = 70000 }, "trip count 70000 above 65536"},
		{"unroll", func(p *Profile) { p.Unroll = 9 }, "unroll factor 9 outside [0, 8]"},
	}
	for _, tc := range cases {
		p := ok
		tc.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: invalid profile accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, genErr := Generate(p, 1); genErr == nil {
			t.Errorf("%s: Generate accepted an invalid profile", tc.name)
		}
	}
}

// TestNameRoundTrip: canonical names parse back to the exact quantized
// profile and seed, and re-encode identically.
func TestNameRoundTrip(t *testing.T) {
	rng := NewRand(5)
	for iter := 0; iter < 50; iter++ {
		p := RandomProfile(rng, Class(iter%3)).Quantize()
		seed := rng.next()
		name := BenchmarkName(p, seed)
		if !IsName(name) {
			t.Fatalf("IsName(%q) = false", name)
		}
		gotP, gotSeed, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if gotP != p || gotSeed != seed {
			t.Fatalf("Parse(%q) = (%+v, %d), want (%+v, %d)", name, gotP, gotSeed, p, seed)
		}
		if re := BenchmarkName(gotP, gotSeed); re != name {
			t.Fatalf("re-encode of %q gives %q", name, re)
		}
	}
}

// TestParseRejects covers the name-grammar error paths.
func TestParseRejects(t *testing.T) {
	good := BenchmarkName(Profile{Class: Low, Blocks: 2, Ops: 8, MemDensity: 0.2,
		BranchDensity: 0.5, TakenBias: 0.5, TripCount: 8}, 3)
	cases := []struct {
		name string
		want string
	}{
		{"imgpipe", "missing \"gen:\" prefix"},
		{"gen:L:b2", "want 10 fields"},
		{"gen:Q:b2:o8:m2000:u0:x5000:p5000:t8:r0:s3", "unknown ILP class"},
		{"gen:L:z2:o8:m2000:u0:x5000:p5000:t8:r0:s3", "does not start with"},
		{"gen:L:b-2:o8:m2000:u0:x5000:p5000:t8:r0:s3", "not a non-negative integer"},
		{"gen:L:b2:o8:m2000:u0:x5000:p5000:t8:r0:s-3", "not an unsigned integer"},
		{"gen:L:b0:o8:m2000:u0:x5000:p5000:t8:r0:s3", "0 blocks outside"},
		{"gen:L:b2:o8:m9000:u0:x5000:p5000:t8:r0:s3", "memory density"},
		{"gen:L:b2:o8:m2000:u0:x5000:p5000:t0:r0:s3", "trip count 0"},
		{"gen:L:b02:o8:m2000:u0:x5000:p5000:t8:r0:s3", "not canonical"},
	}
	for _, tc := range cases {
		if _, _, err := Parse(tc.name); err == nil {
			t.Errorf("Parse(%q) accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, _, err := Parse(good); err != nil {
		t.Fatalf("Parse(%q): %v", good, err)
	}
}

// TestMixNames covers mix-name round trips, member determinism and the
// error paths.
func TestMixNames(t *testing.T) {
	name, err := MixName("LMHH", 7)
	if err != nil {
		t.Fatal(err)
	}
	if name != "genmix:LMHH:s7" {
		t.Fatalf("MixName = %q", name)
	}
	combo, seed, err := ParseMixName(name)
	if err != nil || combo != "LMHH" || seed != 7 {
		t.Fatalf("ParseMixName(%q) = (%q, %d, %v)", name, combo, seed, err)
	}

	a, err := MixMembers("LMHH", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MixMembers("LMHH", 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("MixMembers not deterministic: %v vs %v", a, b)
	}
	wantClasses := [4]Class{Low, Medium, High, High}
	for i, m := range a {
		p, _, err := Parse(m)
		if err != nil {
			t.Fatalf("member %d %q: %v", i, m, err)
		}
		if p.Class != wantClasses[i] {
			t.Fatalf("member %d class %v, want %v", i, p.Class, wantClasses[i])
		}
	}
	if c, err := MixMembers("LMHH", 8); err != nil {
		t.Fatal(err)
	} else if c == a {
		t.Fatal("different mix seeds produced identical members")
	}

	for _, bad := range []string{"LMH", "LMHX", "LMHHH", ""} {
		if _, err := MixName(bad, 1); err == nil {
			t.Errorf("MixName(%q) accepted", bad)
		}
		if _, err := MixMembers(bad, 1); err == nil {
			t.Errorf("MixMembers(%q) accepted", bad)
		}
	}
	for _, bad := range []string{"imgpipe", "genmix:LMHH", "genmix:LMHQ:s1", "genmix:LMHH:7", "genmix:LMHH:s1x"} {
		if _, _, err := ParseMixName(bad); err == nil {
			t.Errorf("ParseMixName(%q) accepted", bad)
		}
	}
}

// TestGenerateStream pins stream determinism and shape: strictly
// increasing arrivals, tenants in range, parsable mixes and members,
// round-robin scheme assignment.
func TestGenerateStream(t *testing.T) {
	opt := StreamOptions{Requests: 64, Tenants: 5, MeanInterarrival: 500,
		Schemes: []string{"2SC3", "C4"}}
	a, err := GenerateStream(opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(opt, 42)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("GenerateStream not deterministic")
	}

	var prev uint64
	for i, r := range a {
		if r.Index != i {
			t.Fatalf("request %d has index %d", i, r.Index)
		}
		if r.Arrival <= prev {
			t.Fatalf("request %d arrival %d not after %d", i, r.Arrival, prev)
		}
		prev = r.Arrival
		if r.Tenant < 0 || r.Tenant >= opt.Tenants {
			t.Fatalf("request %d tenant %d outside [0, %d)", i, r.Tenant, opt.Tenants)
		}
		combo, seed, err := ParseMixName(r.Mix)
		if err != nil {
			t.Fatalf("request %d mix %q: %v", i, r.Mix, err)
		}
		members, err := MixMembers(combo, seed)
		if err != nil {
			t.Fatal(err)
		}
		if members != r.Members {
			t.Fatalf("request %d members disagree with its mix name", i)
		}
		if want := opt.Schemes[i%len(opt.Schemes)]; r.Scheme != want {
			t.Fatalf("request %d scheme %q, want %q", i, r.Scheme, want)
		}
	}

	if c, err := GenerateStream(opt, 43); err != nil {
		t.Fatal(err)
	} else {
		cj, _ := json.Marshal(c)
		if string(cj) == string(aj) {
			t.Fatal("different stream seeds produced identical streams")
		}
	}

	for _, bad := range []StreamOptions{
		{Requests: 0},
		{Requests: 1 << 20},
		{Requests: 4, Tenants: -1},
		{Requests: 4, MeanInterarrival: -5},
		{Requests: 4, Combos: []string{"LLQX"}},
	} {
		if _, err := GenerateStream(bad, 1); err == nil {
			t.Errorf("GenerateStream(%+v) accepted", bad)
		}
	}

	// Defaults: one tenant, default palette and interarrival.
	d, err := GenerateStream(StreamOptions{Requests: 8}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range d {
		if r.Tenant != 0 {
			t.Fatalf("default tenants: got tenant %d", r.Tenant)
		}
		if r.Scheme != "" {
			t.Fatalf("default schemes: got scheme %q", r.Scheme)
		}
	}
}
