package server

import (
	"net/http"
	"time"

	"vliwmt/internal/telemetry"
)

// Server instruments. Request counters and latency histograms are
// per-route series of one family, so a scrape distinguishes a hot
// /events stream from a hot /v1/sweeps submit path.
var (
	metActiveSweeps = telemetry.NewGauge("server_active_sweeps",
		"Sweeps currently executing.")
	metSweepsSubmitted = telemetry.NewCounter("server_sweeps_submitted_total",
		"Sweeps accepted by POST /v1/sweeps.")
	metEventsEmitted = telemetry.NewCounter("server_events_emitted_total",
		"NDJSON events delivered to subscriber channels.")
	metEventsDropped = telemetry.NewCounter("server_events_dropped_total",
		"NDJSON events dropped because a subscriber channel was full (defensive arm; should stay 0).")
)

// instrumented wraps a route handler with its per-route request
// counter and latency histogram. The ResponseWriter is passed through
// untouched so streaming handlers keep their http.Flusher. The
// duration covers the full handler — for ?wait=1 submits and /events
// streams that is the life of the sweep or stream, which is exactly
// what "where did the server's time go" should report.
func instrumented(route string, h http.HandlerFunc) http.HandlerFunc {
	labels := `route="` + route + `"`
	requests := telemetry.NewLabeledCounter("server_requests_total", labels,
		"HTTP requests handled, by route.")
	duration := telemetry.NewLabeledHistogram("server_request_duration_seconds", labels,
		"HTTP handler latency, by route (streaming handlers measure the stream's life).",
		telemetry.DurationBuckets)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		requests.Inc()
		h(w, r)
		duration.Observe(time.Since(start).Seconds())
	}
}
