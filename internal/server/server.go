// Package server is the HTTP transport of the sweep engine: a thin,
// stateless-protocol front-end over the vliwmt.Runner session API.
//
//	POST   /v1/sweeps            submit a grid or job set (202; ?wait=1 blocks)
//	GET    /v1/sweeps            list sweeps
//	GET    /v1/sweeps/{id}        status, plus ordered results once terminal
//	GET    /v1/sweeps/{id}/events NDJSON progress stream (replay + live)
//	DELETE /v1/sweeps/{id}        cancel a running sweep
//	GET    /v1/store             result-store stats (entries, hits, misses)
//	DELETE /v1/store             clear the result store
//	GET    /v1/healthz           structured health (build, load, store stats)
//	GET    /healthz              plain-text liveness probe
//
// Bodies are the versioned wire documents of internal/api. Every sweep
// shares one compile cache for the life of the server; each runs under
// a context cancelled by DELETE, by client disconnect (in wait mode),
// or by server Close. The engine's determinism contract holds across
// the wire: results are index-ordered, seed-derived and bit-identical
// to an in-process run at any worker count.
//
// With a result directory configured, every sweep also shares one
// persistent result store: completed jobs are content-addressed on
// disk, identical submitted jobs (in any grid, from any client) are
// served from it without simulating, and — because the store outlives
// the process — a restarted server keeps serving results computed by
// its predecessor. Cache hits are visible per job (results carry
// "cached": true in /events and status documents) and per sweep (the
// status's "cache_hits" count).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"vliwmt"
	"vliwmt/internal/api"
	"vliwmt/internal/sweep"
	"vliwmt/internal/telemetry"
)

// Executor runs a submitted job set on behalf of the server and
// returns index-ordered results under the engine's determinism
// contract. workers is the request's pool-size hint; progress must be
// called with monotonic done counts as jobs complete. The default
// executor is a vliwmt.Runner on the server's shared compile cache
// and store; the sweep fabric substitutes a coordinator that fans the
// jobs out to remote workers instead.
type Executor func(ctx context.Context, jobs []sweep.Job, workers int, progress sweep.ProgressFunc) ([]sweep.Result, error)

// Options configures a Server.
type Options struct {
	// Workers is the default per-sweep worker pool size when a request
	// does not ask for one; 0 selects runtime.NumCPU().
	Workers int
	// ResultDir, when set, roots the persistent result store there:
	// completed jobs are content-addressed on disk, identical submitted
	// jobs are served without simulating, and the cache survives server
	// restarts.
	ResultDir string
	// Store attaches an existing result-store handle instead of opening
	// one from ResultDir (it wins when both are set). The fabric
	// coordinator shares one handle between its probe path and the
	// server's /v1/store endpoints this way.
	Store *vliwmt.ResultStore
	// Execute substitutes the sweep execution strategy; nil selects the
	// in-process Runner. See Executor.
	Execute Executor
	// Service names the process in GET /v1/healthz documents; empty
	// defaults to "vliwserve".
	Service string
	// Log receives request and sweep lifecycle lines; nil disables.
	Log *log.Logger
	// DisableDebug removes the observability endpoints — GET /metrics
	// (Prometheus text format) and /debug/pprof/ — from the handler.
	// They are on by default: both are read-only, and a sweep server
	// without "what is it doing right now" answers is undebuggable.
	DisableDebug bool
}

// Server owns the sweep runs, the shared compile cache and the shared
// result store.
type Server struct {
	opts    Options
	cache   *vliwmt.CompileCache
	store   *vliwmt.ResultStore // nil when persistence is disabled
	started time.Time
	ctx     context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	runs   map[string]*run
	order  []string // submission order, for listing
	nextID int
}

// New returns a Server; callers serve its Handler and Close it on
// shutdown (cancelling any in-flight sweeps).
func New(opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		cache:   vliwmt.NewCompileCache(),
		started: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		runs:    map[string]*run{},
	}
	switch {
	case opts.Store != nil:
		s.store = opts.Store
	case opts.ResultDir != "":
		s.store = vliwmt.OpenResultStore(opts.ResultDir)
	}
	return s
}

// Close cancels every in-flight sweep.
func (s *Server) Close() { s.cancel() }

// Handler returns the HTTP handler serving the v1 API, plus (unless
// Options.DisableDebug) the observability endpoints: GET /metrics in
// Prometheus text format over the process-wide telemetry registry, and
// the standard net/http/pprof handlers under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", instrumented("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("GET /v1/healthz", instrumented("healthz_v1", s.handleHealth))
	mux.HandleFunc("POST /v1/sweeps", instrumented("submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/sweeps", instrumented("list", s.handleList))
	mux.HandleFunc("GET /v1/sweeps/{id}", instrumented("status", s.handleStatus))
	mux.HandleFunc("GET /v1/sweeps/{id}/events", instrumented("events", s.handleEvents))
	mux.HandleFunc("DELETE /v1/sweeps/{id}", instrumented("cancel", s.handleCancel))
	mux.HandleFunc("GET /v1/store", instrumented("store_status", s.handleStoreStatus))
	mux.HandleFunc("DELETE /v1/store", instrumented("store_clear", s.handleStoreClear))
	if !s.opts.DisableDebug {
		mux.HandleFunc("GET /metrics", instrumented("metrics", handleMetrics))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics renders the process-wide telemetry registry in the
// Prometheus text exposition format: sweep, store, simulator and
// server instruments in one scrape.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.Default().WritePrometheus(w)
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
	}
}

// run is one submitted sweep: lifecycle state, a replayable event log,
// and live event subscribers. Progress callbacks are serialised by the
// engine; everything shared is guarded by mu.
type run struct {
	id      string
	total   int
	started time.Time
	cancel  context.CancelFunc

	mu        sync.Mutex
	state     api.State
	done      int
	cacheHits int
	errs      int
	summary   *api.SweepSummary // set once terminal
	events    []api.Event
	subs      map[chan api.Event]struct{}
	results   []sweep.Result
	err       error
}

func newRun(id string, total int, cancel context.CancelFunc) *run {
	return &run{
		id:      id,
		total:   total,
		started: time.Now(),
		cancel:  cancel,
		state:   api.StateRunning,
		subs:    map[chan api.Event]struct{}{},
	}
}

// broadcast appends ev to the replay log and fans it out. Subscriber
// channels are sized to hold every possible event, so sends never block
// the engine; the default arm is pure defence (its drops are counted,
// so "should never happen" is a checkable claim on /metrics).
func (r *run) broadcast(ev api.Event) {
	r.events = append(r.events, ev)
	for ch := range r.subs {
		select {
		case ch <- ev:
			metEventsEmitted.Inc()
		default:
			metEventsDropped.Inc()
		}
	}
}

// progress is the Runner's progress sink. Cache hits and errors are
// counted here so the accounting covers every job, streamed or not:
// the event's result carries the per-job "cached" flag and error
// string (also lifted to the event's top-level "err" so stream
// consumers need not dig), and the status document aggregates both.
func (r *run) progress(done, total int, res sweep.Result) {
	ar := api.ResultFrom(res)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done = done
	if res.Cached {
		r.cacheHits++
	}
	if res.Err != nil {
		r.errs++
	}
	r.broadcast(api.Event{Done: done, Total: total, Result: &ar, Err: ar.Err})
}

// finish records the terminal state, computes the lifecycle summary
// and emits the final event. The per-job replay log is dropped at that
// point — the status document already carries the full ordered
// results, so a subscriber arriving after completion just gets the
// terminal event and fetches those.
func (r *run) finish(results []sweep.Result, err error) {
	summary := api.SummaryFrom(sweep.Summarize(results, time.Since(r.started)))
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results = results
	r.err = err
	r.summary = summary
	switch {
	case err == nil:
		r.state = api.StateDone
	case errors.Is(err, context.Canceled):
		r.state = api.StateCanceled
	default:
		r.state = api.StateFailed
	}
	r.broadcast(api.Event{Done: r.done, Total: r.total, State: r.state})
	r.events = r.events[len(r.events)-1:]
}

// terminal reports whether the run has finished.
func (r *run) terminal() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.Terminal()
}

// subscribe returns a replay of everything emitted so far plus a
// channel for subsequent events. The channel is buffered for the whole
// stream (total job events + terminal), so broadcasters never block.
func (r *run) subscribe() (replay []api.Event, ch chan api.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	replay = append([]api.Event(nil), r.events...)
	ch = make(chan api.Event, r.total+2)
	r.subs[ch] = struct{}{}
	return replay, ch
}

func (r *run) unsubscribe(ch chan api.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.subs, ch)
}

// status snapshots the run as a wire document. With withResults, a
// terminal run's results are attached, ordered by job index; listing
// and logging pass false to skip that conversion.
func (r *run) status(withResults bool) api.SweepStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := api.SweepStatus{
		Version:   api.Version,
		ID:        r.id,
		State:     r.state,
		Done:      r.done,
		Total:     r.total,
		CacheHits: r.cacheHits,
		Errors:    r.errs,
	}
	if r.state.Terminal() {
		st.Summary = r.summary
		if withResults {
			st.Results = api.ResultsFrom(r.results)
		}
		if r.err != nil {
			st.Error = r.err.Error()
		}
	}
	return st
}

func (s *Server) get(id string) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// maxRetainedRuns bounds the runs map of a long-lived server: once
// exceeded, the oldest terminal runs (and their retained results) are
// evicted. Running sweeps are never evicted.
const maxRetainedRuns = 256

func (s *Server) register(total int, cancel context.CancelFunc) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	if excess := len(s.order) - maxRetainedRuns + 1; excess > 0 {
		kept := make([]string, 0, len(s.order))
		for _, oid := range s.order {
			if excess > 0 && s.runs[oid].terminal() {
				delete(s.runs, oid)
				excess--
				continue
			}
			kept = append(kept, oid)
		}
		s.order = kept
	}
	s.nextID++
	id := fmt.Sprintf("s%06d", s.nextID)
	ru := newRun(id, total, cancel)
	s.runs[id] = ru
	s.order = append(s.order, id)
	return ru
}

// execute runs the job set — on a per-sweep Runner sharing the
// server's compile cache, or on the configured Executor (the fabric
// coordinator's fan-out path) — then records the terminal state. It
// releases the run's context on return so finished sweeps don't stay
// registered as children of the server context. The run's ID rides the
// context as the telemetry sweep ID, so the engine's span events (and
// anything below them) are attributable to this submission.
func (s *Server) execute(ctx context.Context, ru *run, jobs []sweep.Job, workers int) {
	defer ru.cancel()
	metActiveSweeps.Add(1)
	defer metActiveSweeps.Add(-1)
	ctx = telemetry.WithSweepID(ctx, ru.id)
	exec := s.opts.Execute
	if exec == nil {
		exec = s.runnerExecute
	}
	results, err := exec(ctx, jobs, workers, ru.progress)
	ru.finish(results, err)
	st := ru.status(false)
	s.logf("sweep %s: %s (%d/%d jobs, %d from store, %d errors)", ru.id, st.State, st.Done, st.Total, st.CacheHits, st.Errors)
}

// runnerExecute is the default Executor: an in-process vliwmt.Runner
// on the server's shared compile cache and result store.
func (s *Server) runnerExecute(ctx context.Context, jobs []sweep.Job, workers int, progress sweep.ProgressFunc) ([]sweep.Result, error) {
	runner := vliwmt.NewRunner(
		vliwmt.WithWorkers(workers),
		vliwmt.WithCache(s.cache),
		vliwmt.WithProgress(progress),
		vliwmt.WithStore(s.store),
	)
	return runner.SweepJobs(ctx, jobs)
}

// handleHealth serves the structured liveness document: build
// identity, active-sweep load and store traffic counters — everything
// a load balancer or the fabric's health pinger needs, without the
// disk walk of GET /v1/store.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	service := s.opts.Service
	if service == "" {
		service = "vliwserve"
	}
	h := api.Health{
		Service:      service,
		GoVersion:    runtime.Version(),
		Revision:     buildRevision(),
		ActiveSweeps: int(metActiveSweeps.Value()),
		UptimeSec:    time.Since(s.started).Seconds(),
	}
	if s.store != nil {
		st := s.store.Stats()
		h.Store = &api.StoreStats{Hits: st.Hits, Misses: st.Misses, Puts: st.Puts}
	}
	writeJSON(w, http.StatusOK, withVersion(h))
}

// withVersion stamps the wire version on a health document (writeJSON
// has no versioning hook of its own).
func withVersion(h api.Health) api.Health {
	h.Version = api.Version
	return h
}

// buildRevision returns the embedded VCS commit of the binary, or ""
// for builds without VCS stamping (tests, go run from a dirty tree).
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}

// handleStoreStatus reports the shared result store: entries on disk
// plus this server's lifetime hit/miss/put counters. Without a
// configured result directory there is no store to report on.
func (s *Server) handleStoreStatus(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no result store configured (start the server with a result directory)")
		return
	}
	st := api.StoreStatus{Version: api.Version}
	stats := s.store.Stats()
	st.Hits, st.Misses, st.Puts = stats.Hits, stats.Misses, stats.Puts
	n, err := s.store.Len()
	st.Entries = n
	if err != nil {
		st.Error = err.Error()
	}
	writeJSON(w, http.StatusOK, st)
}

// handleStoreClear empties the result store: every later job misses
// and re-simulates. The traffic counters are lifetime counters and are
// not reset.
func (s *Server) handleStoreClear(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no result store configured (start the server with a result directory)")
		return
	}
	if err := s.store.Clear(); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.logf("store: cleared")
	writeJSON(w, http.StatusOK, api.StoreStatus{Version: api.Version})
}

// parseWait interprets the wait query parameter: absent means async,
// and explicit false values ("0", "false") stay async too.
func parseWait(v string) (bool, error) {
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("invalid wait=%q (want a boolean)", v)
	}
	return b, nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleSubmit accepts a sweep request: a grid (expanded server-side
// with the same defaulting as in-process Grid.Jobs) or explicit jobs.
// By default the sweep runs asynchronously and a 202 with the run ID
// comes back immediately; with ?wait=1 the handler blocks until the
// sweep finishes and the client disconnecting cancels it (the request
// context propagates into the engine).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := api.DecodeSweepRequest(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var jobs []sweep.Job
	if req.Grid != nil {
		if jobs, err = req.Grid.Sweep().Jobs(); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	for i, j := range req.Jobs {
		sj, err := j.Sweep()
		if err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		jobs = append(jobs, sj)
	}
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
	}
	if len(jobs) == 0 {
		httpError(w, http.StatusBadRequest, "sweep request expanded to zero jobs")
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.opts.Workers
	}

	wait, err := parseWait(r.URL.Query().Get("wait"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The sweep context descends from the server (so Close cancels every
	// run); in wait mode it also descends from the request, so a client
	// disconnect cancels the sweep mid-flight.
	base := s.ctx
	if wait {
		base = r.Context()
	}
	ctx, cancel := context.WithCancel(base)
	ru := s.register(len(jobs), cancel)
	metSweepsSubmitted.Inc()
	s.logf("sweep %s: submitted, %d jobs (workers=%d, wait=%v)", ru.id, len(jobs), workers, wait)

	if wait {
		// Server shutdown must still cancel a wait-mode sweep, whose
		// context descends from the request rather than the server.
		stop := context.AfterFunc(s.ctx, cancel)
		defer stop()
		s.execute(ctx, ru, jobs, workers)
		writeJSON(w, http.StatusOK, ru.status(true))
		return
	}
	go s.execute(ctx, ru, jobs, workers)
	writeJSON(w, http.StatusAccepted, ru.status(false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runs := make([]*run, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.runs[id])
	}
	s.mu.Unlock()
	list := struct {
		Version int               `json:"version"`
		Sweeps  []api.SweepStatus `json:"sweeps"`
	}{Version: api.Version}
	for _, ru := range runs {
		// Listing is a summary; fetch one sweep for its results.
		list.Sweeps = append(list.Sweeps, ru.status(false))
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ru := s.get(r.PathValue("id"))
	if ru == nil {
		httpError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, ru.status(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	ru := s.get(r.PathValue("id"))
	if ru == nil {
		httpError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	ru.cancel()
	s.logf("sweep %s: cancel requested", ru.id)
	writeJSON(w, http.StatusAccepted, ru.status(false))
}

// handleEvents streams the run's progress as NDJSON: the replay first
// (per-job history while running; just the terminal event once the
// sweep has finished), then live events until the terminal event or
// the client disconnects. Disconnecting from the event stream does not
// cancel the sweep (use DELETE, or submit with ?wait=1, for that).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ru := s.get(r.PathValue("id"))
	if ru == nil {
		httpError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	replay, ch := ru.subscribe()
	defer ru.unsubscribe(ch)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev api.Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return !ev.Terminal()
	}
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case ev := <-ch:
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
