package server

// Observability of the HTTP front-end: the /metrics scrape across a
// cold-then-warm store sweep, concurrent NDJSON subscribers, error
// surfacing in events and statuses, and the debug endpoints' opt-out.

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"vliwmt/internal/api"
)

// scrapeMetric fetches /metrics and sums every series of the named
// family (labelled series included), so per-route counters and plain
// counters read the same way.
func scrapeMetric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed metrics line %q", line)
		}
		family, _, _ := strings.Cut(series, "{")
		if family != name {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		total += v
	}
	return total
}

// TestMetricsScrapeColdWarm runs the same grid twice against one
// result store and checks the scrape tells the story: the cold sweep
// moves completions, misses and puts with zero hits; the warm sweep
// moves hits by every job; and the wire summary's cache-hit ratio
// goes from 0 to 1.
func TestMetricsScrapeColdWarm(t *testing.T) {
	g := testGrid()
	_, ts := newTestServer(t, Options{ResultDir: t.TempDir()})
	base := map[string]float64{}
	for _, name := range []string{
		"sweep_jobs_completed_total", "store_hits_total",
		"store_misses_total", "store_puts_total", "server_sweeps_submitted_total",
	} {
		base[name] = scrapeMetric(t, ts, name)
	}
	delta := func(name string) float64 { return scrapeMetric(t, ts, name) - base[name] }

	cold := submit(t, ts, api.SweepRequest{Grid: &g}, "?wait=1")
	if cold.State != api.StateDone || cold.CacheHits != 0 || cold.Errors != 0 {
		t.Fatalf("cold sweep: %+v", cold)
	}
	if d := delta("sweep_jobs_completed_total"); d != 4 {
		t.Errorf("cold sweep moved sweep_jobs_completed_total by %v, want 4", d)
	}
	if d := delta("store_hits_total"); d != 0 {
		t.Errorf("cold sweep moved store_hits_total by %v, want 0", d)
	}
	if d := delta("store_misses_total"); d != 4 {
		t.Errorf("cold sweep moved store_misses_total by %v, want 4", d)
	}
	if d := delta("store_puts_total"); d != 4 {
		t.Errorf("cold sweep moved store_puts_total by %v, want 4", d)
	}
	if cold.Summary == nil || cold.Summary.Jobs != 4 || cold.Summary.CacheHitRatio != 0 {
		t.Errorf("cold summary: %+v", cold.Summary)
	}

	warm := submit(t, ts, api.SweepRequest{Grid: &g}, "?wait=1")
	if warm.State != api.StateDone || warm.CacheHits != 4 {
		t.Fatalf("warm sweep not fully served from the store: %+v", warm)
	}
	if d := delta("store_hits_total"); d != 4 {
		t.Errorf("warm sweep moved store_hits_total by %v, want 4", d)
	}
	if d := delta("sweep_jobs_completed_total"); d != 8 {
		t.Errorf("two sweeps moved sweep_jobs_completed_total by %v, want 8", d)
	}
	if warm.Summary == nil || warm.Summary.CacheHitRatio != 1 || warm.Summary.Jobs != 4 {
		t.Errorf("warm summary: %+v", warm.Summary)
	}
	if warm.Summary != nil && !(warm.Summary.JobsPerSec > 0) {
		t.Errorf("warm summary throughput %v, want > 0", warm.Summary.JobsPerSec)
	}
	if d := delta("server_sweeps_submitted_total"); d != 2 {
		t.Errorf("server_sweeps_submitted_total moved by %v, want 2", d)
	}
}

// TestDebugEndpointsOptOut checks DisableDebug removes exactly the
// observability surface: /metrics and /debug/pprof/ 404, the v1 API
// stays.
func TestDebugEndpointsOptOut(t *testing.T) {
	_, on := newTestServer(t, Options{})
	for _, path := range []string{"/metrics", "/debug/pprof/cmdline"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s, want 200 by default", path, resp.Status)
		}
	}
	_, off := newTestServer(t, Options{DisableDebug: true})
	for _, path := range []string{"/metrics", "/debug/pprof/cmdline"} {
		resp, err := http.Get(off.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with DisableDebug: %s, want 404", path, resp.Status)
		}
	}
	resp, err := http.Get(off.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz with DisableDebug: %s", resp.Status)
	}
}

// streamEvents subscribes to a sweep's NDJSON stream and reads until
// the terminal event, the context is cancelled, or stopAfter job
// events have arrived (0: no limit). It returns the done counts of
// the job events seen, every top-level err string, and the terminal
// state ("" if the stream ended early).
func streamEvents(ctx context.Context, ts *httptest.Server, id string, stopAfter int) (dones []int, errs []string, state api.State, err error) {
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return nil, nil, "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, "", err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var ev api.Event
		if err := ev.UnmarshalLine(sc.Bytes()); err != nil {
			return dones, errs, "", err
		}
		if ev.Result != nil {
			dones = append(dones, ev.Done)
			if ev.Err != "" {
				errs = append(errs, ev.Err)
			}
			if ev.Err != ev.Result.Err {
				errs = append(errs, "top-level err "+ev.Err+" != result err "+ev.Result.Err)
			}
		}
		if ev.Terminal() {
			return dones, errs, ev.State, nil
		}
		if stopAfter > 0 && len(dones) >= stopAfter {
			return dones, errs, "", nil // simulated disconnect
		}
	}
	return dones, errs, "", sc.Err()
}

// TestConcurrentEventSubscribers attaches three NDJSON subscribers to
// one running sweep. The two that stay must both observe the complete
// increment-by-one done sequence and the terminal event; the one that
// disconnects mid-stream must not stall them (broadcasts are
// non-blocking sends into per-subscriber buffers).
func TestConcurrentEventSubscribers(t *testing.T) {
	g := testGrid()
	g.InstrLimit = 100_000 // keep the sweep in flight while subscribers attach
	_, ts := newTestServer(t, Options{})
	st := submit(t, ts, api.SweepRequest{Grid: &g, Workers: 1}, "")

	type stream struct {
		dones []int
		state api.State
		err   error
	}
	var wg sync.WaitGroup
	streams := make([]stream, 3)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			stopAfter := 0
			if i == 0 {
				stopAfter = 1 // this subscriber walks away after one job event
			}
			dones, _, state, err := streamEvents(ctx, ts, st.ID, stopAfter)
			streams[i] = stream{dones: dones, state: state, err: err}
		}(i)
	}
	wg.Wait()

	if err := streams[0].err; err != nil {
		t.Fatalf("disconnecting subscriber: %v", err)
	}
	if len(streams[0].dones) < 1 {
		t.Error("disconnecting subscriber saw no job events before leaving")
	}
	for i, s := range streams[1:] {
		if s.err != nil {
			t.Fatalf("subscriber %d: %v", i+1, s.err)
		}
		if s.state != api.StateDone {
			t.Errorf("subscriber %d ended with state %q, want done — a disconnecting peer stalled the stream", i+1, s.state)
		}
		if len(s.dones) != st.Total {
			t.Fatalf("subscriber %d saw %d job events, want %d", i+1, len(s.dones), st.Total)
		}
		for k, d := range s.dones {
			if d != k+1 {
				t.Fatalf("subscriber %d done sequence %v not an increment-by-one series", i+1, s.dones)
			}
		}
	}
}

// TestJobErrorsSurfaced submits a sweep whose second job fails at
// runtime (an invalid machine passes submit-time validation) and
// checks the failure is visible everywhere the ISSUE promises: the
// event's top-level err string, the status's errors count and the
// terminal summary.
func TestJobErrorsSurfaced(t *testing.T) {
	jobs, err := testGrid().Sweep().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	good, bad := jobs[0], jobs[1]
	// Cushion so the stream attaches mid-sweep: the good job must
	// outlast the HTTP round-trip that subscribes to the event stream,
	// or the per-job replay log is already dropped (finish keeps only
	// the terminal event). Sized well above the simulator's current
	// throughput without bloating the race-detector run.
	good.InstrLimit = 1_500_000
	bad.Machine.BranchPenalty = -1
	req := api.SweepRequest{Jobs: []api.Job{api.JobFrom(good), api.JobFrom(bad)}, Workers: 1}

	_, ts := newTestServer(t, Options{})
	st := submit(t, ts, req, "")
	dones, errStrings, state, err := streamEvents(context.Background(), ts, st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if state != api.StateFailed {
		t.Errorf("terminal state %q, want failed", state)
	}
	if len(dones) != 2 {
		t.Fatalf("saw %d job events, want 2", len(dones))
	}
	if len(errStrings) != 1 || !strings.Contains(errStrings[0], "branch penalty") {
		t.Errorf("event err strings %q, want the one job's machine validation error", errStrings)
	}

	final := waitTerminal(t, ts, st.ID)
	if final.Errors != 1 {
		t.Errorf("status errors = %d, want 1", final.Errors)
	}
	if final.Summary == nil || final.Summary.Errors != 1 || final.Summary.Jobs != 2 {
		t.Errorf("terminal summary %+v, want 2 jobs with 1 error", final.Summary)
	}
	if final.Error == "" {
		t.Error("terminal status carries no joined error string")
	}
}
