package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vliwmt/internal/api"
	"vliwmt/internal/sweep"
)

// testGrid is a 2x2 grid small enough for handler tests.
func testGrid() api.Grid {
	return api.Grid{
		Schemes:    []string{"2SC3", "3SSS"},
		Mixes:      []string{"LLHH", "HHHH"},
		InstrLimit: 5_000,
		Seed:       7,
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, req api.SweepRequest, query string) api.SweepStatus {
	t.Helper()
	var body bytes.Buffer
	if err := api.EncodeSweepRequest(&body, req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps"+query, "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s", resp.Status)
	}
	st, err := api.DecodeSweepStatus(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) api.SweepStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %s", resp.Status)
	}
	st, err := api.DecodeSweepStatus(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) api.SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached a terminal state", id)
	return api.SweepStatus{}
}

// fingerprint renders every deterministic field of a result set.
func fingerprint(t *testing.T, results []sweep.Result) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", r.Index, r.Job.Describe(), r.Err)
		}
		fmt.Fprintf(&b, "%d %s seed=%d cycles=%d instrs=%d ops=%d ipc=%.12f ic=%d/%d dc=%d/%d\n",
			r.Index, r.Job.Label, r.Job.Seed, r.Res.Cycles, r.Res.Instrs, r.Res.Ops, r.Res.IPC,
			r.Res.ICache.Accesses, r.Res.ICache.Misses, r.Res.DCache.Accesses, r.Res.DCache.Misses)
	}
	return b.String()
}

// TestSubmitStatusMatchesInProcess submits a grid over HTTP and checks
// the aggregated results are bit-identical to an in-process run of the
// same grid — the acceptance criterion of the service redesign — at
// two different server worker counts.
func TestSubmitStatusMatchesInProcess(t *testing.T) {
	jobs, err := testGrid().Sweep().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sweep.New(4).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, local)

	for _, workers := range []int{1, 8} {
		g := testGrid()
		_, ts := newTestServer(t, Options{})
		st := submit(t, ts, api.SweepRequest{Grid: &g, Workers: workers}, "")
		if st.Total != 4 || st.ID == "" {
			t.Fatalf("submit status: %+v", st)
		}
		final := waitTerminal(t, ts, st.ID)
		if final.State != api.StateDone || final.Done != 4 {
			t.Fatalf("final status: %+v (error %q)", final.State, final.Error)
		}
		if len(final.Results) != 4 {
			t.Fatalf("got %d results, want 4", len(final.Results))
		}
		got := fingerprint(t, api.SweepResults(final.Results))
		if got != want {
			t.Errorf("workers=%d: remote results differ from in-process:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestExplicitJobsAndWaitMode submits explicit jobs with ?wait=1 and
// checks the synchronous response carries the finished results.
func TestExplicitJobsAndWaitMode(t *testing.T) {
	jobs, err := testGrid().Sweep().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	req := api.SweepRequest{}
	for _, j := range jobs[:2] {
		req.Jobs = append(req.Jobs, api.JobFrom(j))
	}
	_, ts := newTestServer(t, Options{})
	st := submit(t, ts, req, "?wait=1")
	if !st.State.Terminal() || st.State != api.StateDone {
		t.Fatalf("wait-mode response not terminal: %+v", st)
	}
	if len(st.Results) != 2 {
		t.Fatalf("wait-mode response has %d results, want 2", len(st.Results))
	}
	local, err := sweep.New(2).Run(context.Background(), jobs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, api.SweepResults(st.Results)), fingerprint(t, local); got != want {
		t.Errorf("wait-mode results differ:\n%s\nvs\n%s", got, want)
	}
}

// TestEventsStream reads the NDJSON stream and checks replay plus live
// events cover every job and end with the terminal event.
func TestEventsStream(t *testing.T) {
	// A single worker and a larger budget keep the sweep in flight
	// until the stream attaches; a finished sweep replays only its
	// terminal event.
	g := testGrid()
	g.InstrLimit = 100_000
	_, ts := newTestServer(t, Options{})
	st := submit(t, ts, api.SweepRequest{Grid: &g, Workers: 1}, "")

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var jobEvents int
	var last api.Event
	for sc.Scan() {
		var ev api.Event
		if err := ev.UnmarshalLine(sc.Bytes()); err != nil {
			t.Fatal(err)
		}
		if ev.Result != nil {
			jobEvents++
			if ev.Done != jobEvents {
				t.Errorf("event done=%d out of order (want %d)", ev.Done, jobEvents)
			}
		}
		last = ev
		if ev.Terminal() {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if jobEvents != 4 {
		t.Errorf("saw %d job events, want 4", jobEvents)
	}
	if last.State != api.StateDone {
		t.Errorf("terminal event state %q", last.State)
	}
}

// TestCancel checks DELETE cancels a running sweep and the status
// reports the canceled state.
func TestCancel(t *testing.T) {
	// A grid big enough to still be running when the DELETE lands, on
	// a single worker.
	g := api.Grid{InstrLimit: 50_000, Seed: 1}
	_, ts := newTestServer(t, Options{})
	st := submit(t, ts, api.SweepRequest{Grid: &g, Workers: 1}, "")
	if st.Total != 16*9 {
		t.Fatalf("total %d, want 144", st.Total)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %s", resp.Status)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != api.StateCanceled {
		t.Errorf("state %q after DELETE, want canceled", final.State)
	}
	if final.Error == "" {
		t.Error("canceled sweep reports no error")
	}
}

// TestWaitModeClientDisconnectCancels checks the context propagation
// path: a client that disconnects from a ?wait=1 submission cancels
// the sweep server-side.
func TestWaitModeClientDisconnectCancels(t *testing.T) {
	g := api.Grid{InstrLimit: 50_000, Seed: 1}
	_, ts := newTestServer(t, Options{})
	var body bytes.Buffer
	if err := api.EncodeSweepRequest(&body, api.SweepRequest{Grid: &g, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweeps?wait=1", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Give the sweep a moment to start, then drop the connection.
	time.Sleep(200 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("request unexpectedly succeeded after cancel")
	}

	// The run was registered; find it via the listing and wait for the
	// canceled state to propagate.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/sweeps")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Sweeps []api.SweepStatus `json:"sweeps"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Sweeps) == 1 && list.Sweeps[0].State == api.StateCanceled {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("wait-mode sweep was not canceled by client disconnect")
}

// TestResultPersistenceServesRepeats checks that with a result
// directory configured, an identical repeat sweep is served from disk:
// same results, no additional compilation.
func TestResultPersistenceServesRepeats(t *testing.T) {
	dir := t.TempDir()
	g := testGrid()
	srv, ts := newTestServer(t, Options{ResultDir: dir})
	first := waitTerminal(t, ts, submit(t, ts, api.SweepRequest{Grid: &g}, "").ID)
	if first.State != api.StateDone {
		t.Fatalf("first sweep: %+v", first)
	}
	compiles, _ := srv.cache.Stats()

	second := waitTerminal(t, ts, submit(t, ts, api.SweepRequest{Grid: &g}, "").ID)
	if second.State != api.StateDone {
		t.Fatalf("second sweep: %+v", second)
	}
	if again, _ := srv.cache.Stats(); again != compiles {
		t.Errorf("repeat sweep compiled kernels (%d -> %d); want disk-served", compiles, again)
	}
	if got, want := fingerprint(t, api.SweepResults(second.Results)), fingerprint(t, api.SweepResults(first.Results)); got != want {
		t.Errorf("disk-served results differ:\n%s\nvs\n%s", got, want)
	}

	// The cache-hit accounting: the cold sweep hit nothing, the warm
	// sweep was served entirely from the store, per-result and in the
	// status aggregate.
	if first.CacheHits != 0 {
		t.Errorf("cold sweep reports %d cache hits, want 0", first.CacheHits)
	}
	if second.CacheHits != second.Total {
		t.Errorf("warm sweep reports %d cache hits, want %d", second.CacheHits, second.Total)
	}
	for _, r := range second.Results {
		if !r.Cached {
			t.Errorf("warm result %s not marked cached", r.Job.Label)
		}
	}

	// The store outlives the server: a fresh server on the same
	// directory — a restart — serves the same sweep without simulating.
	srv2, ts2 := newTestServer(t, Options{ResultDir: dir})
	third := waitTerminal(t, ts2, submit(t, ts2, api.SweepRequest{Grid: &g}, "").ID)
	if third.State != api.StateDone || third.CacheHits != third.Total {
		t.Errorf("restarted server: state %s, %d/%d cache hits; want done and all hits",
			third.State, third.CacheHits, third.Total)
	}
	if compiles, _ := srv2.cache.Stats(); compiles != 0 {
		t.Errorf("restarted server compiled %d kernels for a stored sweep, want 0", compiles)
	}
}

func storeStatus(t *testing.T, ts *httptest.Server, method string) (api.StoreStatus, int) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+"/v1/store", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.StoreStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// TestStoreEndpoints checks GET /v1/store (entry count and traffic
// counters) and DELETE /v1/store (clearing forces re-simulation), and
// that both 404 without a configured result directory.
func TestStoreEndpoints(t *testing.T) {
	g := testGrid()

	_, ts := newTestServer(t, Options{})
	if _, code := storeStatus(t, ts, http.MethodGet); code != http.StatusNotFound {
		t.Errorf("GET /v1/store without a store: %d, want 404", code)
	}
	if _, code := storeStatus(t, ts, http.MethodDelete); code != http.StatusNotFound {
		t.Errorf("DELETE /v1/store without a store: %d, want 404", code)
	}

	_, ts = newTestServer(t, Options{ResultDir: t.TempDir()})
	first := waitTerminal(t, ts, submit(t, ts, api.SweepRequest{Grid: &g}, "").ID)
	if first.State != api.StateDone {
		t.Fatalf("first sweep: %+v", first)
	}
	st, code := storeStatus(t, ts, http.MethodGet)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/store: %d", code)
	}
	if st.Entries != first.Total || st.Puts != int64(first.Total) {
		t.Errorf("store after cold sweep: %+v, want %d entries and puts", st, first.Total)
	}

	if _, code := storeStatus(t, ts, http.MethodDelete); code != http.StatusOK {
		t.Fatalf("DELETE /v1/store: %d", code)
	}
	st, _ = storeStatus(t, ts, http.MethodGet)
	if st.Entries != 0 {
		t.Errorf("store not empty after clear: %+v", st)
	}

	// With the store cleared, the same grid simulates afresh (no hits),
	// repopulating the store.
	second := waitTerminal(t, ts, submit(t, ts, api.SweepRequest{Grid: &g}, "").ID)
	if second.CacheHits != 0 {
		t.Errorf("post-clear sweep reports %d cache hits, want 0", second.CacheHits)
	}
	st, _ = storeStatus(t, ts, http.MethodGet)
	if st.Entries != second.Total {
		t.Errorf("store not repopulated after clear: %+v", st)
	}
}

// TestRunRetentionBounded checks that terminal runs are evicted once
// the retention cap is exceeded (a long-lived server must not grow
// without bound) and that their replay log shrinks to the terminal
// event, while running sweeps are never evicted.
func TestRunRetentionBounded(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	live := srv.register(1, func() {})
	for i := 0; i < maxRetainedRuns+50; i++ {
		ru := srv.register(1, func() {})
		ru.finish(nil, nil)
		if got := len(ru.events); got != 1 {
			t.Fatalf("terminal run retains %d replay events, want 1", got)
		}
	}
	srv.mu.Lock()
	n, order := len(srv.runs), len(srv.order)
	_, liveKept := srv.runs[live.id]
	srv.mu.Unlock()
	if n > maxRetainedRuns {
		t.Errorf("%d runs retained, want <= %d", n, maxRetainedRuns)
	}
	if n != order {
		t.Errorf("runs map (%d) and order slice (%d) disagree", n, order)
	}
	if !liveKept {
		t.Error("running sweep was evicted")
	}
}

// TestWaitParam checks explicit false values stay asynchronous.
func TestWaitParam(t *testing.T) {
	for v, want := range map[string]bool{"": false, "0": false, "false": false, "1": true, "true": true} {
		got, err := parseWait(v)
		if err != nil || got != want {
			t.Errorf("parseWait(%q) = %v, %v; want %v", v, got, err, want)
		}
	}
	if _, err := parseWait("yes-please"); err == nil {
		t.Error("garbage wait value accepted")
	}
}

// TestBadRequests checks the error paths: malformed body, wrong
// version, unknown scheme, unknown id.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d", code)
	}
	if code := post(`{"version":99,"grid":{}}`); code != http.StatusBadRequest {
		t.Errorf("future version: %d", code)
	}
	if code := post(`{"version":1}`); code != http.StatusBadRequest {
		t.Errorf("empty request: %d", code)
	}
	if code := post(`{"version":1,"grid":{"schemes":["bogus!"]}}`); code != http.StatusBadRequest {
		t.Errorf("bogus scheme: %d", code)
	}
	for _, path := range []string{"/v1/sweeps/nope", "/v1/sweeps/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

// TestHealthzV1 exercises the structured health document: service
// identity, load and store stats, cheap enough for the fabric's
// periodic ping.
func TestHealthzV1(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{ResultDir: dir, Service: "vliwfabric"})

	fetch := func() api.Health {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: %s", resp.Status)
		}
		h, err := api.DecodeHealth(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := fetch()
	if h.Service != "vliwfabric" {
		t.Errorf("service %q, want the configured name", h.Service)
	}
	if h.Version != api.Version {
		t.Errorf("version %d, want %d", h.Version, api.Version)
	}
	if h.GoVersion == "" {
		t.Error("health lacks the Go version")
	}
	if h.ActiveSweeps != 0 {
		t.Errorf("idle server reports %d active sweeps", h.ActiveSweeps)
	}
	if h.Store == nil {
		t.Fatal("store-backed server reports no store stats")
	}

	// A finished sweep moves the store counters the document reports.
	g := testGrid()
	st := submit(t, ts, api.SweepRequest{Grid: &g}, "?wait=1")
	if st.State != api.StateDone {
		t.Fatalf("sweep state %s", st.State)
	}
	h = fetch()
	if h.Store.Puts == 0 {
		t.Error("store puts not visible in health after a sweep")
	}

	// An unconfigured service name defaults to vliwserve, and a
	// storeless server omits the store block.
	_, plain := newTestServer(t, Options{})
	resp, err := http.Get(plain.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ph, err := api.DecodeHealth(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Service != "vliwserve" {
		t.Errorf("default service %q, want vliwserve", ph.Service)
	}
	if ph.Store != nil {
		t.Error("storeless server reports store stats")
	}
}
