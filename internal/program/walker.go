package program

import (
	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
)

// MemAccess is one data-memory access produced by retiring an instruction.
type MemAccess struct {
	Addr  uint64
	Store bool
}

// RetireInfo summarises the simulator-visible events of one retired
// instruction.
type RetireInfo struct {
	// Mem lists the data accesses of the instruction's memory operations.
	Mem []MemAccess
	// Taken reports whether the instruction ended the block with a taken
	// branch.
	Taken bool
	// Ops is the number of operations retired.
	Ops int
}

// Walker executes a Program instruction by instruction, evaluating branch
// behaviours and memory address streams deterministically from a seed.
// Each simulated thread owns one Walker.
type Walker struct {
	P *Program
	// CodeOffset relocates instruction fetch addresses (per-thread code
	// placement); DataOffset relocates data addresses (separate address
	// spaces for separate processes).
	CodeOffset, DataOffset uint64

	rng        uint64
	block, idx int
	loopCount  []int
	streamPos  []uint64
	memBuf     []MemAccess
	// Retired counts instructions retired so far.
	Retired int64
}

// NewWalker starts execution of p at block 0 with the given seed and
// address offsets.
func NewWalker(p *Program, seed uint64, codeOffset, dataOffset uint64) *Walker {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Walker{
		P:          p,
		CodeOffset: codeOffset,
		DataOffset: dataOffset,
		rng:        seed,
		loopCount:  make([]int, p.NumBranchSites),
		streamPos:  make([]uint64, len(p.Streams)),
		memBuf:     make([]MemAccess, 0, 8),
	}
}

// xorshift64star; deterministic and fast.
func (w *Walker) next() uint64 {
	x := w.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rng = x
	return x * 0x2545f4914f6cdd1d
}

// Current returns the instruction at the walker position and its fetch
// address.
func (w *Walker) Current() (*isa.Instruction, uint64) {
	b := &w.P.Blocks[w.block]
	return &b.Instrs[w.idx], b.Addrs[w.idx] + w.CodeOffset
}

// streamAddr evaluates and advances address stream si.
func (w *Walker) streamAddr(si int) uint64 {
	s := &w.P.Streams[si]
	switch s.Kind {
	case ir.StreamStride:
		pos := w.streamPos[si]
		w.streamPos[si] = (pos + uint64(s.Stride)) % s.Footprint
		return s.Base + pos + w.DataOffset
	case ir.StreamRandom:
		off := (w.next() % (s.Footprint / 4)) * 4
		return s.Base + off + w.DataOffset
	default: // StreamChase: line-aligned dependent chain of random lines
		off := (w.next() % (s.Footprint / 64)) * 64
		return s.Base + off + w.DataOffset
	}
}

// Retire consumes the current instruction: it computes the instruction's
// memory accesses and branch outcome and advances the walker to the next
// instruction. The returned RetireInfo (including Mem) is valid until the
// next Retire call.
func (w *Walker) Retire() RetireInfo {
	b := &w.P.Blocks[w.block]
	in := &b.Instrs[w.idx]
	info := RetireInfo{Ops: len(in.Ops)}
	w.memBuf = w.memBuf[:0]
	hasBranch := false
	for _, op := range in.Ops {
		switch op.Class {
		case isa.OpMem:
			w.memBuf = append(w.memBuf, MemAccess{Addr: w.streamAddr(int(op.Stream)), Store: op.IsStore})
		case isa.OpBranch:
			hasBranch = true
		}
	}
	info.Mem = w.memBuf
	w.Retired++

	last := w.idx == len(b.Instrs)-1
	if !last {
		w.idx++
		return info
	}
	// Block end: resolve the branch (if any) and move on.
	nextBlock := b.Next
	if hasBranch && b.BranchTarget >= 0 {
		if w.takeBranch(b) {
			info.Taken = true
			nextBlock = b.BranchTarget
		}
	}
	w.block = nextBlock
	w.idx = 0
	return info
}

func (w *Walker) takeBranch(b *Block) bool {
	switch b.Behavior.Kind {
	case ir.BranchAlways:
		return true
	case ir.BranchNever:
		return false
	case ir.BranchLoop:
		c := w.loopCount[b.BranchStream] + 1
		if c >= b.Behavior.TripCount {
			w.loopCount[b.BranchStream] = 0
			return false
		}
		w.loopCount[b.BranchStream] = c
		return true
	default: // BranchBernoulli
		// 53-bit uniform in [0,1).
		u := float64(w.next()>>11) / (1 << 53)
		return u < b.Behavior.Prob
	}
}
