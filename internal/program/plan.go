package program

import "vliwmt/internal/isa"

// PlannedMem is one memory operation of a planned instruction: the
// address stream it draws from and whether the access stores.
type PlannedMem struct {
	Stream int32
	Store  bool
}

// PlannedInstr is one instruction of a Plan: everything the simulator
// needs per retire, precomputed into a flat record so the cycle loop
// reads one array entry instead of chasing Blocks/Instrs/Ops. The flat
// successor indices (Next, Target) replace the block/idx bookkeeping of
// the pointer-chasing path.
type PlannedInstr struct {
	// Occ is the instruction's occupancy, copied out so candidate
	// gathering never touches the Instruction.
	Occ isa.Occupancy
	// OccID is the dense index of Occ in the plan's occupancy
	// dictionary: equal IDs imply equal occupancy values, which lets a
	// selection memo key on small integers instead of 33-byte structs.
	OccID int32
	// Addr is the unrelocated fetch address; add Walker.CodeOffset.
	Addr uint64
	// Ops is the instruction's operation count (RetireInfo.Ops).
	Ops int32
	// Mem lists the memory operations in program order. It aliases the
	// plan's shared backing array; do not append to it.
	Mem []PlannedMem
	// Block is the index of the owning block in P.Blocks.
	Block int32
	// Next is the flat index retired to when the branch (if any) is not
	// taken: f+1 inside a block, Start[block.Next] at a block end.
	Next int32
	// Target is the flat index of the taken-branch successor; -1 unless
	// Branch is set.
	Target int32
	// Last marks the final instruction of its block.
	Last bool
	// Branch marks a Last instruction whose block resolves a branch on
	// retire (a branch op is present and the block has a branch target).
	Branch bool
}

// Plan is the flattened execution form of a Program: every instruction
// of every block in one contiguous table, with successor flat indices
// precomputed. A Plan is immutable after NewPlan and carries no
// execution state, so one Plan is safely shared by any number of
// Walkers across concurrent simulations — the batched simulation core
// builds one per task and shares it across all lanes of a batch.
type Plan struct {
	P      *Program
	Instrs []PlannedInstr
	// Start[b] is the flat index of block b's first instruction.
	Start []int32
	// NumOccs is the size of the occupancy dictionary: OccID values are
	// in [0, NumOccs).
	NumOccs int
}

// NewPlan flattens p. The program must already be validated.
func NewPlan(p *Program) *Plan {
	pl := &Plan{P: p, Start: make([]int32, len(p.Blocks))}
	total, nmem := 0, 0
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		pl.Start[bi] = int32(total)
		total += len(b.Instrs)
		for ii := range b.Instrs {
			for _, op := range b.Instrs[ii].Ops {
				if op.Class == isa.OpMem {
					nmem++
				}
			}
		}
	}
	pl.Instrs = make([]PlannedInstr, 0, total)
	membuf := make([]PlannedMem, 0, nmem)
	occIDs := map[isa.Occupancy]int32{}
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			id, ok := occIDs[in.Occ]
			if !ok {
				id = int32(len(occIDs))
				occIDs[in.Occ] = id
			}
			pi := PlannedInstr{
				Occ:    in.Occ,
				OccID:  id,
				Addr:   b.Addrs[ii],
				Ops:    int32(len(in.Ops)),
				Block:  int32(bi),
				Next:   int32(len(pl.Instrs)) + 1,
				Target: -1,
			}
			hasBranch := false
			start := len(membuf)
			for _, op := range in.Ops {
				switch op.Class {
				case isa.OpMem:
					membuf = append(membuf, PlannedMem{Stream: int32(op.Stream), Store: op.IsStore})
				case isa.OpBranch:
					hasBranch = true
				}
			}
			if len(membuf) > start {
				// Full-slice expression: a stray append can never bleed
				// into the next instruction's operations.
				pi.Mem = membuf[start:len(membuf):len(membuf)]
			}
			if ii == len(b.Instrs)-1 {
				pi.Last = true
				pi.Next = pl.Start[b.Next]
				if hasBranch && b.BranchTarget >= 0 {
					pi.Branch = true
					pi.Target = pl.Start[b.BranchTarget]
				}
			}
			pl.Instrs = append(pl.Instrs, pi)
		}
	}
	pl.NumOccs = len(occIDs)
	return pl
}

// RetirePlan is Retire driven by a Plan: it retires the planned
// instruction at flat index f (which must be the walker's current
// position) and returns the successor flat index, the instruction's
// memory accesses (valid until the next retire) and whether a taken
// branch ended the block. The RNG draw order is exactly Retire's —
// one streamAddr draw per memory op in program order, then at most one
// branch draw at a block end — so a Walker driven through RetirePlan
// stays bit-identical to one driven through Retire. The walker's own
// block/idx position is kept coherent, so the two APIs may be mixed.
//
//vliw:hotpath
func (w *Walker) RetirePlan(pl *Plan, f int32) (next int32, mem []MemAccess, taken bool) {
	pi := &pl.Instrs[f]
	w.memBuf = w.memBuf[:0]
	for i := range pi.Mem {
		m := &pi.Mem[i]
		w.memBuf = append(w.memBuf, MemAccess{Addr: w.streamAddr(int(m.Stream)), Store: m.Store})
	}
	w.Retired++
	if !pi.Last {
		w.idx++
		return pi.Next, w.memBuf, false
	}
	next = pi.Next
	if pi.Branch && w.takeBranch(&w.P.Blocks[pi.Block]) {
		taken = true
		next = pi.Target
	}
	w.block = int(pl.Instrs[next].Block)
	w.idx = 0
	return next, w.memBuf, taken
}
