// Package program holds executable compiled code: scheduled VLIW
// instructions grouped into blocks, the control-flow graph between them,
// and the runtime behaviours (branch directions, memory address streams)
// that drive the cycle-level simulator.
package program

import (
	"fmt"
	"strings"

	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
)

// Block is one compiled basic block.
type Block struct {
	Name   string
	Instrs []isa.Instruction
	// Addrs holds the code address of each instruction (for ICache).
	Addrs []uint64
	// BranchTarget is the block index reached when the terminating branch
	// is taken; -1 when the block has no branch.
	BranchTarget int
	// Behavior drives the runtime branch direction.
	Behavior ir.BranchBehavior
	// BranchStream indexes the per-walker branch state for this site
	// (loop counters); -1 when the block has no branch.
	BranchStream int
	// Next is the fall-through successor block index.
	Next int
}

// Program is a compiled kernel ready for simulation.
type Program struct {
	Name    string
	Blocks  []Block
	Streams []ir.MemStream
	// CodeSize is the total encoded code footprint in bytes.
	CodeSize uint64
	// NumBranchSites is the number of branch sites (for walker state).
	NumBranchSites int
	// SourceOps is the number of IR operations compiled (before copies).
	SourceOps int
}

// NumInstructions returns the static count of VLIW instructions.
func (p *Program) NumInstructions() int {
	n := 0
	for i := range p.Blocks {
		n += len(p.Blocks[i].Instrs)
	}
	return n
}

// NumOps returns the static count of operations (including copies and
// branches) across all instructions.
func (p *Program) NumOps() int {
	n := 0
	for i := range p.Blocks {
		for _, in := range p.Blocks[i].Instrs {
			n += len(in.Ops)
		}
	}
	return n
}

// StaticOpsPerInstr is the static operation density (ops per VLIW
// instruction), an upper bound on achievable IPC for the kernel.
func (p *Program) StaticOpsPerInstr() float64 {
	ni := p.NumInstructions()
	if ni == 0 {
		return 0
	}
	return float64(p.NumOps()) / float64(ni)
}

// Validate checks internal consistency against machine m.
func (p *Program) Validate(m *isa.Machine) error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("program %s: no blocks", p.Name)
	}
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		if len(b.Instrs) == 0 {
			return fmt.Errorf("program %s: block %s is empty", p.Name, b.Name)
		}
		if len(b.Addrs) != len(b.Instrs) {
			return fmt.Errorf("program %s: block %s has %d addrs for %d instrs", p.Name, b.Name, len(b.Addrs), len(b.Instrs))
		}
		if b.BranchTarget >= len(p.Blocks) || b.Next < 0 || b.Next >= len(p.Blocks) {
			return fmt.Errorf("program %s: block %s has out-of-range successors", p.Name, b.Name)
		}
		for ii, in := range b.Instrs {
			if err := in.Validate(m); err != nil {
				return fmt.Errorf("program %s: block %s instr %d: %w", p.Name, b.Name, ii, err)
			}
			for _, op := range in.Ops {
				if op.Class == isa.OpMem && (op.Stream < 0 || int(op.Stream) >= len(p.Streams)) {
					return fmt.Errorf("program %s: block %s instr %d: bad stream %d", p.Name, b.Name, ii, op.Stream)
				}
			}
		}
	}
	return nil
}

// Disassemble renders the program as text, one instruction per line.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s: %d blocks, %d instrs, %d ops, %.2f ops/instr, %d bytes\n",
		p.Name, len(p.Blocks), p.NumInstructions(), p.NumOps(), p.StaticOpsPerInstr(), p.CodeSize)
	for bi := range p.Blocks {
		blk := &p.Blocks[bi]
		fmt.Fprintf(&b, "%s:", blk.Name)
		if blk.BranchTarget >= 0 {
			fmt.Fprintf(&b, " (branch -> %s)", p.Blocks[blk.BranchTarget].Name)
		}
		b.WriteByte('\n')
		for ii, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %06x: %s\n", blk.Addrs[ii], in.String())
		}
	}
	return b.String()
}
