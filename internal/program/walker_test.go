package program_test

import (
	"testing"

	"vliwmt/internal/compiler"
	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
	"vliwmt/internal/program"
)

// loopKernel builds a two-block program: a counted self-loop followed by a
// tail block that wraps around.
func loopKernel(t *testing.T, trip int) *program.Program {
	t.Helper()
	b := ir.NewBuilder("loop")
	s := b.Stream(ir.MemStream{Kind: ir.StreamStride, Stride: 8, Footprint: 256})
	b.Block("body")
	v := b.Load(s)
	b.ALU(v)
	b.Branch("body", ir.Loop(trip))
	b.Block("tail")
	b.ALU()
	p, err := compiler.Compile(b.MustFinish(), compiler.Options{Machine: isa.Default()})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// drainBlock retires instructions until the walker leaves the current
// block, returning the number of taken branches observed.
func runRetires(w *program.Walker, n int) (taken int, mem []program.MemAccess) {
	for i := 0; i < n; i++ {
		info := w.Retire()
		if info.Taken {
			taken++
		}
		for _, a := range info.Mem {
			mem = append(mem, a)
		}
	}
	return taken, mem
}

func TestWalkerLoopTripCount(t *testing.T) {
	const trip = 5
	p := loopKernel(t, trip)
	w := program.NewWalker(p, 1, 0, 0)
	bodyLen := len(p.Blocks[0].Instrs)
	tailLen := len(p.Blocks[1].Instrs)
	// One full pass: body executes trip times, then tail once.
	total := trip*bodyLen + tailLen
	taken, _ := runRetires(w, total)
	if taken != trip-1 {
		t.Errorf("taken branches = %d, want %d", taken, trip-1)
	}
	// After the pass the walker is back at body start.
	in, _ := w.Current()
	if in != &p.Blocks[0].Instrs[0] {
		t.Errorf("walker did not wrap to the first block")
	}
	// Second pass behaves identically (loop counter reset).
	taken, _ = runRetires(w, total)
	if taken != trip-1 {
		t.Errorf("second pass taken = %d, want %d", taken, trip-1)
	}
}

func TestWalkerStrideAddresses(t *testing.T) {
	p := loopKernel(t, 100)
	w := program.NewWalker(p, 1, 0, 0)
	bodyLen := len(p.Blocks[0].Instrs)
	_, mem := runRetires(w, bodyLen*40)
	if len(mem) != 40 {
		t.Fatalf("got %d accesses, want 40", len(mem))
	}
	for i, a := range mem {
		want := uint64((i * 8) % 256)
		if a.Addr != want {
			t.Fatalf("access %d addr = %d, want %d", i, a.Addr, want)
		}
		if a.Store {
			t.Fatalf("load reported as store")
		}
	}
}

func TestWalkerOffsets(t *testing.T) {
	p := loopKernel(t, 100)
	w := program.NewWalker(p, 1, 0x1000, 0x2000)
	_, fetchAddr := w.Current()
	if fetchAddr != p.Blocks[0].Addrs[0]+0x1000 {
		t.Errorf("fetch address not relocated: %#x", fetchAddr)
	}
	info := w.Retire()
	if len(info.Mem) > 0 && info.Mem[0].Addr < 0x2000 {
		t.Errorf("data address not relocated: %#x", info.Mem[0].Addr)
	}
}

func TestWalkerDeterminism(t *testing.T) {
	b := ir.NewBuilder("bern")
	s := b.Stream(ir.MemStream{Kind: ir.StreamRandom, Footprint: 1 << 12})
	b.Block("body")
	b.Load(s)
	b.Branch("body", ir.Bernoulli(0.5))
	p, err := compiler.Compile(b.MustFinish(), compiler.Options{Machine: isa.Default()})
	if err != nil {
		t.Fatal(err)
	}
	w1 := program.NewWalker(p, 42, 0, 0)
	w2 := program.NewWalker(p, 42, 0, 0)
	for i := 0; i < 1000; i++ {
		i1 := w1.Retire()
		i2 := w2.Retire()
		if i1.Taken != i2.Taken || len(i1.Mem) != len(i2.Mem) {
			t.Fatalf("walkers diverged at step %d", i)
		}
		for j := range i1.Mem {
			if i1.Mem[j] != i2.Mem[j] {
				t.Fatalf("addresses diverged at step %d", i)
			}
		}
	}
	// A different seed must diverge eventually.
	w3 := program.NewWalker(p, 43, 0, 0)
	w4 := program.NewWalker(p, 42, 0, 0)
	same := true
	for i := 0; i < 1000 && same; i++ {
		i3, i4 := w3.Retire(), w4.Retire()
		if i3.Taken != i4.Taken {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical branch streams")
	}
}

func TestWalkerRandomAndChaseBounds(t *testing.T) {
	b := ir.NewBuilder("mix")
	r := b.Stream(ir.MemStream{Kind: ir.StreamRandom, Base: 0x100000, Footprint: 1 << 14})
	c := b.Stream(ir.MemStream{Kind: ir.StreamChase, Base: 0x200000, Footprint: 1 << 14})
	b.Block("body")
	b.Load(r)
	v := b.Load(c)
	b.Store(r, v)
	b.Branch("body", ir.Always())
	p, err := compiler.Compile(b.MustFinish(), compiler.Options{Machine: isa.Default()})
	if err != nil {
		t.Fatal(err)
	}
	w := program.NewWalker(p, 7, 0, 0)
	stores := 0
	for i := 0; i < 3000; i++ {
		info := w.Retire()
		for _, a := range info.Mem {
			switch {
			case a.Addr >= 0x100000 && a.Addr < 0x100000+1<<14:
				if a.Addr%4 != 0 {
					t.Fatalf("random stream address unaligned: %#x", a.Addr)
				}
				if a.Store {
					stores++
				}
			case a.Addr >= 0x200000 && a.Addr < 0x200000+1<<14:
				if a.Addr%64 != 0 {
					t.Fatalf("chase stream address not line aligned: %#x", a.Addr)
				}
			default:
				t.Fatalf("address %#x outside all stream footprints", a.Addr)
			}
		}
	}
	if stores == 0 {
		t.Error("no stores observed")
	}
	if w.Retired == 0 {
		t.Error("retired counter not advancing")
	}
}

func TestProgramValidateCatchesCorruption(t *testing.T) {
	p := loopKernel(t, 4)
	m := isa.Default()
	if err := p.Validate(&m); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := *p
	bad.Blocks = nil
	if err := bad.Validate(&m); err == nil {
		t.Error("empty program accepted")
	}
	bad2 := *p
	blocks := make([]program.Block, len(p.Blocks))
	copy(blocks, p.Blocks)
	blocks[0].Next = 99
	bad2.Blocks = blocks
	if err := bad2.Validate(&m); err == nil {
		t.Error("out-of-range successor accepted")
	}
}
