package program_test

import (
	"testing"

	"vliwmt/internal/compiler"
	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
	"vliwmt/internal/program"
	"vliwmt/internal/workload"
)

// planPrograms compiles a spread of real benchmarks (all ILP classes and
// memory behaviours) plus the synthetic kernels of the walker tests.
func planPrograms(t *testing.T) []*program.Program {
	t.Helper()
	var progs []*program.Program
	m := isa.Default()
	for _, n := range []string{"mcf", "blowfish", "g721encode", "djpeg", "x264", "colorspace"} {
		b, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := b.Compile(m)
		if err != nil {
			t.Fatalf("compile %s: %v", n, err)
		}
		progs = append(progs, p)
	}
	progs = append(progs, loopKernel(t, 7))

	bld := ir.NewBuilder("bern")
	s := bld.Stream(ir.MemStream{Kind: ir.StreamRandom, Footprint: 1 << 12})
	bld.Block("body")
	bld.Load(s)
	bld.Store(s, bld.ALU())
	bld.Branch("body", ir.Bernoulli(0.3))
	bld.Block("tail")
	bld.ALU()
	p, err := compiler.Compile(bld.MustFinish(), compiler.Options{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	return append(progs, p)
}

// TestPlanShape checks the flat table's structural invariants against
// the source program: one entry per instruction, contiguous blocks,
// successor indices landing on block starts, and occupancy IDs that
// really are a dictionary (equal ID <=> equal occupancy value).
func TestPlanShape(t *testing.T) {
	for _, p := range planPrograms(t) {
		pl := program.NewPlan(p)
		if len(pl.Instrs) != p.NumInstructions() {
			t.Fatalf("%s: plan has %d instrs, program %d", p.Name, len(pl.Instrs), p.NumInstructions())
		}
		byID := map[int32]isa.Occupancy{}
		f := 0
		for bi := range p.Blocks {
			b := &p.Blocks[bi]
			if pl.Start[bi] != int32(f) {
				t.Fatalf("%s: block %d starts at %d, want %d", p.Name, bi, pl.Start[bi], f)
			}
			for ii := range b.Instrs {
				pi := &pl.Instrs[f]
				if pi.Block != int32(bi) || pi.Occ != b.Instrs[ii].Occ || pi.Addr != b.Addrs[ii] || pi.Ops != int32(len(b.Instrs[ii].Ops)) {
					t.Fatalf("%s: flat %d does not mirror block %d instr %d", p.Name, f, bi, ii)
				}
				last := ii == len(b.Instrs)-1
				if pi.Last != last {
					t.Fatalf("%s: flat %d Last = %v", p.Name, f, pi.Last)
				}
				wantNext := int32(f + 1)
				if last {
					wantNext = pl.Start[b.Next]
				}
				if pi.Next != wantNext {
					t.Fatalf("%s: flat %d Next = %d, want %d", p.Name, f, pi.Next, wantNext)
				}
				if pi.Branch && pi.Target != pl.Start[b.BranchTarget] {
					t.Fatalf("%s: flat %d Target = %d", p.Name, f, pi.Target)
				}
				if got, ok := byID[pi.OccID]; ok && got != pi.Occ {
					t.Fatalf("%s: occupancy ID %d maps to two values", p.Name, pi.OccID)
				}
				byID[pi.OccID] = pi.Occ
				if int(pi.OccID) >= pl.NumOccs {
					t.Fatalf("%s: OccID %d out of range %d", p.Name, pi.OccID, pl.NumOccs)
				}
				f++
			}
		}
		if len(byID) != pl.NumOccs {
			t.Fatalf("%s: %d distinct IDs, NumOccs %d", p.Name, len(byID), pl.NumOccs)
		}
	}
}

// TestRetirePlanMatchesRetire drives two same-seeded walkers over each
// program — one through Retire, one through RetirePlan — and requires
// identical memory accesses, branch outcomes, retire counts and fetch
// addresses at every step. This is the equivalence the batched
// simulation core rests on: RetirePlan must consume the walker RNG in
// exactly Retire's draw order.
func TestRetirePlanMatchesRetire(t *testing.T) {
	for _, p := range planPrograms(t) {
		pl := program.NewPlan(p)
		for _, seed := range []uint64{0, 1, 42} {
			wr := program.NewWalker(p, seed, 0x1000, 0x2000)
			wp := program.NewWalker(p, seed, 0x1000, 0x2000)
			f := int32(0)
			for step := 0; step < 5000; step++ {
				ri, rAddr := wr.Current()
				pi := &pl.Instrs[f]
				if pi.Addr+0x1000 != rAddr || pi.Occ != ri.Occ {
					t.Fatalf("%s seed %d step %d: plan position diverged", p.Name, seed, step)
				}
				info := wr.Retire()
				next, mem, taken := wp.RetirePlan(pl, f)
				if taken != info.Taken || len(mem) != len(info.Mem) || int(pi.Ops) != info.Ops {
					t.Fatalf("%s seed %d step %d: retire diverged (taken %v/%v, mem %d/%d)",
						p.Name, seed, step, taken, info.Taken, len(mem), len(info.Mem))
				}
				for i := range mem {
					if mem[i] != info.Mem[i] {
						t.Fatalf("%s seed %d step %d: access %d diverged", p.Name, seed, step, i)
					}
				}
				if wp.Retired != wr.Retired {
					t.Fatalf("%s seed %d step %d: retired counters diverged", p.Name, seed, step)
				}
				// The plan-driven walker keeps block/idx coherent: its own
				// Current must agree with the flat successor.
				pin, pAddr := wp.Current()
				if pin.Occ != pl.Instrs[next].Occ || pAddr != pl.Instrs[next].Addr+0x1000 {
					t.Fatalf("%s seed %d step %d: walker position incoherent after RetirePlan", p.Name, seed, step)
				}
				f = next
			}
		}
	}
}
