// Package report renders experiment results as aligned text tables and
// ASCII charts, the output format of cmd/paperfigs.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// BarChart writes a horizontal ASCII bar chart scaled to width characters.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) {
	if width < 10 {
		width = 10
	}
	fmt.Fprintf(w, "%s\n", title)
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if i < len(values) && values[i] > maxVal {
			maxVal = values[i]
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := int(math.Round(v / maxVal * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %-*s |%s %.3g\n", maxLabel, l, strings.Repeat("#", n), v)
	}
}

// Scatter writes an ASCII scatter plot of labelled points. Points are
// plotted on a grid; each point is marked with a key letter and the legend
// maps letters to labels. logY plots the Y axis on a log scale.
func Scatter(w io.Writer, title, xName, yName string, labels []string, xs, ys []float64, logY bool) {
	const gw, gh = 64, 18
	fmt.Fprintf(w, "%s  (y: %s, x: %s)\n", title, yName, xName)
	if len(xs) == 0 || len(xs) != len(ys) || len(labels) != len(xs) {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	tx := func(v float64) float64 { return v }
	ty := func(v float64) float64 {
		if logY {
			return math.Log10(math.Max(v, 1e-12))
		}
		return v
	}
	minX, maxX := tx(xs[0]), tx(xs[0])
	minY, maxY := ty(ys[0]), ty(ys[0])
	for i := range xs {
		minX = math.Min(minX, tx(xs[i]))
		maxX = math.Max(maxX, tx(xs[i]))
		minY = math.Min(minY, ty(ys[i]))
		maxY = math.Max(maxY, ty(ys[i]))
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, gh)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", gw))
	}
	for i := range xs {
		c := int((tx(xs[i]) - minX) / (maxX - minX) * float64(gw-1))
		r := gh - 1 - int((ty(ys[i])-minY)/(maxY-minY)*float64(gh-1))
		mark := byte('a' + i%26)
		if i >= 26 {
			mark = byte('A' + (i-26)%26)
		}
		grid[r][c] = mark
	}
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", gw))
	for i, l := range labels {
		mark := byte('a' + i%26)
		if i >= 26 {
			mark = byte('A' + (i-26)%26)
		}
		fmt.Fprintf(w, "  %c: %-8s x=%-10.4g y=%.4g\n", mark, l, xs[i], ys[i])
	}
}

// Percent formats a percentage with sign.
func Percent(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// F formats a float with three significant decimals, the house style of
// the result tables.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }
