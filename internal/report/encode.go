package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

// JSON writes v as indented JSON followed by a newline — the machine
// interface of cmd/vliwsweep.
func JSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// CSV writes a header row followed by the data rows (RFC 4180 quoting).
func CSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
