package report

import (
	"strings"
	"testing"
)

func TestTableAligns(t *testing.T) {
	var b strings.Builder
	Table(&b, []string{"name", "ipc"}, [][]string{
		{"colorspace", "8.88"},
		{"mcf", "0.96"},
	})
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(out, "colorspace  8.88") {
		t.Errorf("row misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	var b strings.Builder
	Table(&b, []string{"a", "b", "c"}, [][]string{{"1"}, {"1", "2", "3"}})
	if !strings.Contains(b.String(), "1") {
		t.Error("ragged row dropped")
	}
}

func TestBarChartScales(t *testing.T) {
	var b strings.Builder
	BarChart(&b, "demo", []string{"x", "yy"}, []float64{1, 2}, 20)
	out := b.String()
	if !strings.HasPrefix(out, "demo\n") {
		t.Errorf("title missing:\n%s", out)
	}
	// The largest value fills the full width.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	half := strings.Count(strings.Split(out, "\n")[1], "#")
	if half != 10 {
		t.Errorf("half bar = %d chars, want 10", half)
	}
}

func TestBarChartDegenerate(t *testing.T) {
	var b strings.Builder
	BarChart(&b, "zeros", []string{"a"}, []float64{0}, 5)
	if !strings.Contains(b.String(), "a") {
		t.Error("label missing for zero value")
	}
	var c strings.Builder
	BarChart(&c, "t", []string{"a", "b"}, []float64{1}, 3)
	if !strings.Contains(c.String(), "b") {
		t.Error("missing-value label dropped")
	}
}

func TestScatterMarksAllPoints(t *testing.T) {
	var b strings.Builder
	Scatter(&b, "perf", "transistors", "ipc",
		[]string{"p1", "p2", "p3"},
		[]float64{100, 200, 300},
		[]float64{1, 2, 3}, false)
	out := b.String()
	for _, mark := range []string{"a:", "b:", "c:"} {
		if !strings.Contains(out, mark) {
			t.Errorf("legend missing %q:\n%s", mark, out)
		}
	}
	if !strings.Contains(out, "perf") {
		t.Error("title missing")
	}
}

func TestScatterLogAndEmpty(t *testing.T) {
	var b strings.Builder
	Scatter(&b, "log", "x", "y", []string{"a", "b"}, []float64{1, 2}, []float64{10, 100000}, true)
	if !strings.Contains(b.String(), "a:") {
		t.Error("log scatter lost points")
	}
	var c strings.Builder
	Scatter(&c, "empty", "x", "y", nil, nil, nil, false)
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty scatter not reported")
	}
}

func TestFormatters(t *testing.T) {
	if Percent(12.34) != "+12.3%" {
		t.Errorf("Percent = %q", Percent(12.34))
	}
	if Percent(-5) != "-5.0%" {
		t.Errorf("Percent = %q", Percent(-5))
	}
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
}
