package report

import (
	"strings"
	"testing"
)

func TestJSON(t *testing.T) {
	var b strings.Builder
	if err := JSON(&b, []map[string]any{{"scheme": "2SC3", "ipc": 4.5}}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"scheme": "2SC3"`) || !strings.HasSuffix(out, "\n") {
		t.Errorf("unexpected JSON output: %q", out)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"mix", "ipc"}, [][]string{{"LLHH", "4.770"}, {"has,comma", "1"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "mix,ipc\nLLHH,4.770\n\"has,comma\",1\n"
	if b.String() != want {
		t.Errorf("got %q, want %q", b.String(), want)
	}
}
