package workload

import (
	"encoding/json"
	"strings"
	"testing"

	"vliwmt/internal/isa"
	"vliwmt/internal/wgen"
)

// TestByNameGenerated: canonical "gen:" names resolve to benchmarks
// that regenerate the exact kernel and compile deterministically.
func TestByNameGenerated(t *testing.T) {
	p := wgen.RandomProfile(wgen.NewRand(3), wgen.Medium)
	name := wgen.BenchmarkName(p, 99)
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != name {
		t.Fatalf("benchmark name %q, want %q", b.Name, name)
	}
	if b.Class != Medium {
		t.Fatalf("class %v, want Medium", b.Class)
	}
	if b.Unroll != p.Unroll {
		t.Fatalf("unroll %d, want %d", b.Unroll, p.Unroll)
	}

	f1, _ := json.Marshal(b.Build())
	f2, _ := json.Marshal(wgen.MustGenerate(p, 99))
	if string(f1) != string(f2) {
		t.Fatal("ByName Build does not reproduce the named kernel")
	}

	prog, err := b.Compile(isa.Default())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if prog.Name != name {
		t.Fatalf("program name %q, want %q", prog.Name, name)
	}
}

// TestByNameErrors covers the benchmark lookup error paths: unknown
// plain names, and malformed or out-of-range generated names.
func TestByNameErrors(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"nosuch", `unknown benchmark "nosuch"`},
		{"", `unknown benchmark ""`},
		{"gen:bogus", "want 10 fields"},
		{"gen:L:b0:o8:m2000:u0:x5000:p5000:t8:r0:s3", "0 blocks outside [1, 64]"},
		{"gen:L:b2:o8:m2000:u0:x5000:p5000:t0:r0:s3", "trip count 0 must be at least 1"},
		{"gen:L:b2:o8:m9999:u0:x5000:p5000:t8:r0:s3", "memory density"},
	}
	for _, tc := range cases {
		_, err := ByName(tc.name)
		if err == nil {
			t.Errorf("ByName(%q) accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ByName(%q) error %q does not mention %q", tc.name, err, tc.want)
		}
		if !strings.HasPrefix(err.Error(), "workload: ") {
			t.Errorf("ByName(%q) error %q lacks the workload: prefix", tc.name, err)
		}
	}
}

// TestMixByNameGenerated: "genmix:" names expand deterministically to
// four resolvable generated members of the requested classes.
func TestMixByNameGenerated(t *testing.T) {
	name, err := wgen.MixName("LMHH", 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MixByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != name {
		t.Fatalf("mix name %q, want %q", m.Name, name)
	}
	wantClasses := [4]ILPClass{Low, Medium, High, High}
	for i, member := range m.Members {
		b, err := ByName(member)
		if err != nil {
			t.Fatalf("member %d %q: %v", i, member, err)
		}
		if b.Class != wantClasses[i] {
			t.Fatalf("member %d class %v, want %v", i, b.Class, wantClasses[i])
		}
	}
	again, err := MixByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if again.Members != m.Members {
		t.Fatal("MixByName not deterministic for generated mixes")
	}
}

// TestMixByNameErrors covers the mix lookup error paths.
func TestMixByNameErrors(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"XXXX", `unknown mix "XXXX"`},
		{"", `unknown mix ""`},
		{"genmix:LMHQ:s1", "unknown ILP class"},
		{"genmix:LMH:s1", "must be 4 letters"},
		{"genmix:LMHH", "want genmix:<classes>:s<seed>"},
	}
	for _, tc := range cases {
		_, err := MixByName(tc.name)
		if err == nil {
			t.Errorf("MixByName(%q) accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("MixByName(%q) error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
