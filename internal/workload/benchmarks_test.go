package workload

import (
	"math"
	"testing"

	"vliwmt/internal/isa"
	"vliwmt/internal/sim"
)

// measure runs the benchmark single-threaded and returns (IPCr, IPCp).
func measure(t *testing.T, b Benchmark, instrs int64) (float64, float64) {
	t.Helper()
	prog, err := b.Compile(isa.Default())
	if err != nil {
		t.Fatalf("%s: compile: %v", b.Name, err)
	}
	run := func(perfect bool) float64 {
		cfg := sim.DefaultConfig()
		cfg.Contexts = 1
		cfg.InstrLimit = instrs
		cfg.PerfectMemory = perfect
		res, err := sim.Run(cfg, []sim.Task{{Name: b.Name, Prog: prog}})
		if err != nil {
			t.Fatalf("%s: run: %v", b.Name, err)
		}
		if res.TimedOut {
			t.Fatalf("%s: timed out", b.Name)
		}
		return res.IPC
	}
	return run(false), run(true)
}

// TestTable1Calibration verifies that every synthetic kernel lands near
// its Table 1 target: IPCp and IPCr within 20% of the paper's values.
// (cmd/paperfigs -table1 regenerates the full table; EXPERIMENTS.md
// records the exact measurements.)
func TestTable1Calibration(t *testing.T) {
	// 120k instructions converge in well under a second; shorter budgets
	// leave the caches cold and IPCr far from the paper's values, so
	// -short keeps the full budget.
	instrs := int64(120_000)
	for _, b := range Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			ipcr, ipcp := measure(t, b, instrs)
			t.Logf("%-11s measured IPCr=%.2f IPCp=%.2f (paper %.2f / %.2f)",
				b.Name, ipcr, ipcp, b.PaperIPCr, b.PaperIPCp)
			if rel := math.Abs(ipcp-b.PaperIPCp) / b.PaperIPCp; rel > 0.20 {
				t.Errorf("IPCp %.3f deviates %.0f%% from paper %.2f", ipcp, rel*100, b.PaperIPCp)
			}
			if rel := math.Abs(ipcr-b.PaperIPCr) / b.PaperIPCr; rel > 0.20 {
				t.Errorf("IPCr %.3f deviates %.0f%% from paper %.2f", ipcr, rel*100, b.PaperIPCr)
			}
			if ipcr > ipcp+1e-9 {
				t.Errorf("IPCr %.3f above IPCp %.3f", ipcr, ipcp)
			}
		})
	}
}

// TestILPClassOrdering: within the measured kernels, every H benchmark
// out-runs every M benchmark, which out-runs every L benchmark (by IPCp),
// matching the paper's classification.
func TestILPClassOrdering(t *testing.T) {
	instrs := int64(60_000)
	best := map[ILPClass]float64{Low: 0, Medium: 0, High: 0}
	worst := map[ILPClass]float64{Low: 99, Medium: 99, High: 99}
	for _, b := range Benchmarks() {
		_, ipcp := measure(t, b, instrs)
		if ipcp > best[b.Class] {
			best[b.Class] = ipcp
		}
		if ipcp < worst[b.Class] {
			worst[b.Class] = ipcp
		}
	}
	if best[Low] >= worst[Medium] {
		t.Errorf("highest L IPCp %.2f overlaps lowest M %.2f", best[Low], worst[Medium])
	}
	if best[Medium] >= worst[High] {
		t.Errorf("highest M IPCp %.2f overlaps lowest H %.2f", best[Medium], worst[High])
	}
}

func TestBenchmarkLookup(t *testing.T) {
	if len(Benchmarks()) != 12 {
		t.Fatalf("got %d benchmarks, want 12", len(Benchmarks()))
	}
	b, err := ByName("idct")
	if err != nil || b.Name != "idct" {
		t.Errorf("ByName(idct) = %v, %v", b.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}

func TestMixesMatchTable2(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 9 {
		t.Fatalf("got %d mixes, want 9", len(mixes))
	}
	classOf := map[string]ILPClass{}
	for _, b := range Benchmarks() {
		classOf[b.Name] = b.Class
	}
	for _, m := range mixes {
		for i, name := range m.Members {
			c, ok := classOf[name]
			if !ok {
				t.Errorf("mix %s member %s unknown", m.Name, name)
				continue
			}
			if want := m.Name[i]; want != c.String()[0] {
				t.Errorf("mix %s member %d (%s) is class %s, name says %c", m.Name, i, name, c, want)
			}
		}
	}
	if _, err := MixByName("LLHH"); err != nil {
		t.Error(err)
	}
	if _, err := MixByName("XXXX"); err == nil {
		t.Error("MixByName accepted unknown mix")
	}
}

func TestAllBenchmarksCompileAndValidate(t *testing.T) {
	m := isa.Default()
	for _, b := range Benchmarks() {
		p, err := b.Compile(m)
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if err := p.Validate(&m); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if p.StaticOpsPerInstr() <= 0 {
			t.Errorf("%s: empty program", b.Name)
		}
	}
}

// TestBenchmarkCompileDeterminism: compiling a benchmark twice yields
// byte-identical code (required for reproducible experiments).
func TestBenchmarkCompileDeterminism(t *testing.T) {
	m := isa.Default()
	for _, b := range Benchmarks() {
		p1, err := b.Compile(m)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := b.Compile(m)
		if err != nil {
			t.Fatal(err)
		}
		if p1.Disassemble() != p2.Disassemble() {
			t.Errorf("%s: compilation not deterministic", b.Name)
		}
	}
}

// TestBenchmarkCodeFootprints: every kernel's code fits the 64KB ICache
// comfortably (the paper's benchmarks run near 100% ICache hit rates; the
// x264 kernel is the largest by design).
func TestBenchmarkCodeFootprints(t *testing.T) {
	m := isa.Default()
	var largest string
	var largestSize uint64
	for _, b := range Benchmarks() {
		p, err := b.Compile(m)
		if err != nil {
			t.Fatal(err)
		}
		if p.CodeSize == 0 {
			t.Errorf("%s: zero code size", b.Name)
		}
		if p.CodeSize > 64<<10 {
			t.Errorf("%s: code %d bytes exceeds the ICache", b.Name, p.CodeSize)
		}
		if p.CodeSize > largestSize {
			largest, largestSize = b.Name, p.CodeSize
		}
	}
	t.Logf("largest kernel: %s (%d bytes)", largest, largestSize)
}

// TestMemoryBoundBenchmarksMiss: the benchmarks the paper characterises
// as memory bound (mcf, cjpeg, colorspace) must show real DCache miss
// traffic, and the resident ones (gsmencode, g721) must not.
func TestMemoryBoundBenchmarksMiss(t *testing.T) {
	missRate := func(name string) float64 {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := b.Compile(isa.Default())
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Contexts = 1
		cfg.InstrLimit = 200_000 // long enough that cold-start misses wash out
		res, err := sim.Run(cfg, []sim.Task{{Name: name, Prog: prog}})
		if err != nil {
			t.Fatal(err)
		}
		return res.DCache.MissRate()
	}
	for _, name := range []string{"mcf", "cjpeg", "colorspace"} {
		if r := missRate(name); r < 0.01 {
			t.Errorf("%s: DCache miss rate %.4f, expected memory-bound behaviour", name, r)
		}
	}
	for _, name := range []string{"gsmencode", "g721encode"} {
		if r := missRate(name); r > 0.02 {
			t.Errorf("%s: DCache miss rate %.4f, expected cache-resident behaviour", name, r)
		}
	}
}
