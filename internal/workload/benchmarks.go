// Package workload defines the paper's evaluation inputs: the twelve
// Table 1 benchmarks, rebuilt as synthetic IR kernels calibrated to each
// benchmark's published single-thread behaviour (IPCr with real caches,
// IPCp with perfect memory, ILP class), and the nine Table 2 workload
// mixes.
//
// The kernels do not recompute the original programs; they reproduce the
// *shape* that matters to thread merging: operations per instruction,
// dependence-chain structure, functional-unit mix, cluster spread after
// compilation, branch frequency/direction, code footprint and memory
// locality. DESIGN.md records the substitution rationale.
package workload

import (
	"fmt"

	"vliwmt/internal/compiler"
	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
	"vliwmt/internal/program"
	"vliwmt/internal/wgen"
)

// ILPClass is the paper's L/M/H classification by IPCp.
type ILPClass uint8

const (
	// Low ILP (IPCp up to about 1.5).
	Low ILPClass = iota
	// Medium ILP (IPCp around 1.7).
	Medium
	// High ILP (IPCp of 4 and above).
	High
)

func (c ILPClass) String() string {
	switch c {
	case Low:
		return "L"
	case Medium:
		return "M"
	default:
		return "H"
	}
}

// Benchmark is one Table 1 entry.
type Benchmark struct {
	Name        string
	Description string
	Class       ILPClass
	// PaperIPCr and PaperIPCp are the values published in Table 1.
	PaperIPCr, PaperIPCp float64
	// Unroll is the compiler unroll factor used for this kernel.
	Unroll int
	// Build constructs the kernel IR.
	Build func() *ir.Function
}

// Compile lowers the benchmark for machine m.
func (b *Benchmark) Compile(m isa.Machine) (*program.Program, error) {
	return compiler.Compile(b.Build(), compiler.Options{Machine: m, Unroll: b.Unroll})
}

// lane adds one dependence chain of length n starting at a fresh value;
// every mulEvery-th op is a multiply (0 disables). Returns the tail value.
func lane(b *ir.Builder, n, mulEvery int, head ir.Value) ir.Value {
	v := head
	for i := 1; i < n; i++ {
		if mulEvery > 0 && i%mulEvery == 0 {
			v = b.Mul(v)
		} else {
			v = b.ALU(v)
		}
	}
	return v
}

const (
	kb = 1024
	mb = 1024 * 1024
)

// mcf: minimum-cost flow — pointer-heavy graph traversal with a large,
// irregular working set and unpredictable branches. Low ILP; the clearest
// memory-bound benchmark of the set (IPCr 0.96 vs IPCp 1.34).
func buildMCF() *ir.Function {
	b := ir.NewBuilder("mcf")
	chase := b.Stream(ir.MemStream{Kind: ir.StreamChase, Base: 0x10000000, Footprint: 8 * mb})
	nodes := b.Stream(ir.MemStream{Kind: ir.StreamRandom, Base: 0x20000000, Footprint: 48 * kb})
	for i := 0; i < 12; i++ {
		b.Block(fmt.Sprintf("arc%d", i))
		var v ir.Value
		if i == 0 {
			v = b.Load(chase) // chase a cold arc pointer
		} else {
			v = b.Load(nodes) // warm node data
		}
		w := lane(b, 3, 0, b.ALU(v))
		x := lane(b, 2, 0, b.ALU(v))
		y := b.ALU(v)
		b.ALU(w, x, y)
		target := fmt.Sprintf("arc%d", (i+5)%12)
		b.Branch(target, ir.Bernoulli(0.38))
	}
	return b.MustFinish()
}

// bzip2: compression — dominated by data-dependent branches on serial
// chains; the lowest-IPC benchmark (0.81/0.83), barely memory sensitive.
func buildBzip2() *ir.Function {
	b := ir.NewBuilder("bzip2")
	work := b.Stream(ir.MemStream{Kind: ir.StreamRandom, Base: 0x10000000, Footprint: 40 * kb})
	for i := 0; i < 12; i++ {
		b.Block(fmt.Sprintf("huff%d", i))
		v := b.Load(work)
		lane(b, 3, 0, b.ALU(v))
		b.Branch(fmt.Sprintf("huff%d", (i+5)%12), ir.Bernoulli(0.46))
	}
	return b.MustFinish()
}

// blowfish: encryption rounds — two interleaved serial chains with S-box
// lookups (cache resident) over a streaming input (not resident).
func buildBlowfish() *ir.Function {
	b := ir.NewBuilder("blowfish")
	sbox := b.Stream(ir.MemStream{Kind: ir.StreamRandom, Base: 0x10000000, Footprint: 16 * kb})
	input := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x20000000, Stride: 4, Footprint: 4 * mb})
	b.Block("round")
	// Two 8-byte blocks encrypt in parallel; each runs a serial chain of
	// Feistel rounds through the (resident) S-boxes. The second block has
	// fewer rounds in flight (it is further along in the source loop), so
	// the kernel is not perfectly balanced.
	for blk := 0; blk < 2; blk++ {
		in := b.Load(input)
		l := b.ALU(in)
		r := b.ALU(in)
		rounds := 4 - 2*blk
		for i := 0; i < rounds; i++ {
			s := b.Load(sbox, l)
			r = b.ALU(r, s)
			l, r = r, b.ALU(l)
		}
		b.Store(input, b.ALU(l, r))
	}
	b.Branch("round", ir.Loop(64))
	return b.MustFinish()
}

// gsmencode: GSM speech encoder — serial DSP chains with multiplies (whose
// two-cycle latency leaves gaps) over a resident working set.
func buildGSMEncode() *ir.Function {
	b := ir.NewBuilder("gsmencode")
	frame := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x10000000, Stride: 4, Footprint: 24 * kb})
	for i := 0; i < 4; i++ {
		b.Block(fmt.Sprintf("lpc%d", i))
		v := b.Load(frame)
		acc := b.Mul(v)
		acc = b.ALU(acc)
		acc = b.Mul(acc)
		acc = b.ALU(acc)
		side := lane(b, 4, 0, b.ALU(v))
		b.Store(frame, acc)
		b.ALU(side)
		b.Branch(fmt.Sprintf("lpc%d", i), ir.Loop(12))
	}
	return b.MustFinish()
}

// g721encode: ADPCM encoder — two modest parallel chains with multiplies,
// fully cache resident (IPCr equals IPCp in the paper).
func buildG721(name string, trip int, prob float64) func() *ir.Function {
	return func() *ir.Function {
		b := ir.NewBuilder(name)
		state := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x10000000, Stride: 4, Footprint: 16 * kb})
		b.Block("predict")
		v := b.Load(state)
		a := lane(b, 4, 3, b.ALU(v))
		c := lane(b, 4, 0, b.ALU(v))
		d := lane(b, 3, 0, b.ALU(v))
		e := lane(b, 2, 0, b.ALU(v))
		b.Store(state, b.ALU(a, c))
		b.ALU(d, e)
		b.Branch("predict", ir.Loop(trip))
		b.Block("quant")
		w := b.Load(state)
		qa := lane(b, 3, 2, b.ALU(w))
		qb := lane(b, 4, 0, b.ALU(w))
		qc := lane(b, 3, 0, b.ALU(w))
		qd := lane(b, 2, 0, b.ALU(w))
		b.ALU(qa, qb)
		b.ALU(qc, qd)
		b.Branch("predict", ir.Bernoulli(prob))
		return b.MustFinish()
	}
}

// cjpeg: JPEG encoder — DCT lanes with multiplies, streaming an image in
// and coefficients out; memory traffic costs a third of its perfect IPC.
func buildCJPEG() *ir.Function {
	b := ir.NewBuilder("cjpeg")
	image := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x10000000, Stride: 8, Footprint: 6 * mb})
	coef := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x20000000, Stride: 8, Footprint: 6 * mb})
	b.Block("fdct")
	px := b.Load(image)
	a := lane(b, 5, 2, b.ALU(px))
	c := lane(b, 5, 0, b.ALU(px))
	d := lane(b, 4, 0, b.ALU(px))
	e := lane(b, 3, 0, b.ALU(px))
	b.Store(coef, b.ALU(a, c))
	b.ALU(d, e)
	b.Branch("fdct", ir.Loop(32))
	b.Block("scan")
	v := b.Load(coef)
	lane(b, 4, 0, b.ALU(v))
	b.Branch("fdct", ir.Bernoulli(0.3))
	return b.MustFinish()
}

// djpeg: JPEG decoder — same DCT shape as cjpeg but tiles stay resident
// (decoded blocks are consumed immediately), so caches barely matter.
func buildDJPEG() *ir.Function {
	b := ir.NewBuilder("djpeg")
	tile := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x10000000, Stride: 8, Footprint: 32 * kb})
	b.Block("idctrow")
	v := b.Load(tile)
	a := lane(b, 5, 2, b.ALU(v))
	c := lane(b, 5, 0, b.ALU(v))
	d := lane(b, 4, 0, b.ALU(v))
	e := lane(b, 4, 0, b.ALU(v))
	b.Store(tile, b.ALU(a, c))
	b.ALU(d, e)
	b.Branch("idctrow", ir.Loop(24))
	b.Block("upsample")
	w := b.Load(tile)
	ua := lane(b, 4, 0, b.ALU(w))
	ub := lane(b, 3, 0, b.ALU(w))
	uc := lane(b, 3, 0, b.ALU(w))
	b.ALU(ua, ub)
	b.ALU(uc)
	b.Branch("idctrow", ir.Bernoulli(0.25))
	return b.MustFinish()
}

// imgpipe: imaging pipeline for high-performance printers — wide
// independent pixel lanes, streaming input with moderate miss traffic.
func buildImgpipe() *ir.Function {
	b := ir.NewBuilder("imgpipe")
	in := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x10000000, Stride: 2, Footprint: 3 * mb})
	out := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x20000000, Stride: 2, Footprint: 3 * mb})
	b.Block("pipe")
	src := b.Load(in)
	var tails []ir.Value
	for l := 0; l < 8; l++ {
		tails = append(tails, lane(b, 5, 3, b.ALU(src)))
	}
	b.Store(out, b.ALU(tails[0], tails[1]))
	b.ALU(tails[2], tails[3])
	b.ALU(tails[4], tails[5])
	b.ALU(tails[6], tails[7])
	b.Branch("pipe", ir.Loop(48))
	return b.MustFinish()
}

// x264: H.264 encoder — ALU-dominated SAD/satd lanes across many distinct
// code blocks (motion search control), light data misses.
func buildX264() *ir.Function {
	b := ir.NewBuilder("x264")
	ref := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x10000000, Stride: 16, Footprint: 24 * kb})
	cur := b.Stream(ir.MemStream{Kind: ir.StreamRandom, Base: 0x20000000, Footprint: 24 * kb})
	for i := 0; i < 10; i++ {
		b.Block(fmt.Sprintf("sad%d", i))
		r := b.Load(ref)
		c := b.Load(cur)
		var tails []ir.Value
		for l := 0; l < 6; l++ {
			var head ir.Value
			if l%2 == 0 {
				head = b.ALU(r)
			} else {
				head = b.ALU(c)
			}
			tails = append(tails, lane(b, 4, 0, head))
		}
		b.ALU(tails[0], tails[1])
		b.ALU(tails[2], tails[3])
		b.ALU(tails[4], tails[5])
		if i%2 == 0 {
			b.Branch(fmt.Sprintf("sad%d", i), ir.Loop(16))
		} else {
			b.Branch(fmt.Sprintf("sad%d", (i+3)%10), ir.Bernoulli(0.3))
		}
	}
	return b.MustFinish()
}

// idct: inverse discrete cosine transform (ffmpeg) — eight butterfly rows
// with multiplies, unrolled by the compiler, working set resident with a
// streamed coefficient input.
func buildIDCT() *ir.Function {
	b := ir.NewBuilder("idct")
	coef := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x10000000, Stride: 2, Footprint: 768 * kb})
	blk := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x20000000, Stride: 8, Footprint: 16 * kb})
	b.Block("rows")
	v := b.Load(coef)
	var tails []ir.Value
	for l := 0; l < 5; l++ {
		m := 0
		if l%2 == 0 {
			m = 2
		}
		tails = append(tails, lane(b, 5, m, b.ALU(v)))
	}
	for i := 0; i+1 < len(tails); i += 2 {
		b.ALU(tails[i], tails[i+1])
	}
	b.Store(blk, tails[0])
	b.Branch("rows", ir.Loop(64))
	return b.MustFinish()
}

// colorspace: production colour-space conversion — the widest kernel:
// many independent pixel conversions per iteration, heavy streaming.
func buildColorspace() *ir.Function {
	b := ir.NewBuilder("colorspace")
	in := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x10000000, Stride: 4, Footprint: 8 * mb})
	out := b.Stream(ir.MemStream{Kind: ir.StreamStride, Base: 0x20000000, Stride: 4, Footprint: 8 * mb})
	b.Block("convert")
	src := b.Load(in)
	src2 := b.Load(in)
	var tails []ir.Value
	for l := 0; l < 9; l++ {
		head := src
		if l%2 == 1 {
			head = src2
		}
		tails = append(tails, lane(b, 6, 3, b.ALU(head)))
	}
	b.Store(out, b.ALU(tails[0], tails[1]))
	b.Store(out, b.ALU(tails[2], tails[3]))
	for i := 4; i+1 < len(tails); i += 2 {
		b.ALU(tails[i], tails[i+1])
	}
	b.Branch("convert", ir.Loop(96))
	return b.MustFinish()
}

// Benchmarks returns the twelve Table 1 benchmarks in the paper's order.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Name: "mcf", Description: "Minimum Cost Flow", Class: Low, PaperIPCr: 0.96, PaperIPCp: 1.34, Unroll: 1, Build: buildMCF},
		{Name: "bzip2", Description: "Bzip2 Compression", Class: Low, PaperIPCr: 0.81, PaperIPCp: 0.83, Unroll: 1, Build: buildBzip2},
		{Name: "blowfish", Description: "Encryption", Class: Low, PaperIPCr: 1.11, PaperIPCp: 1.47, Unroll: 1, Build: buildBlowfish},
		{Name: "gsmencode", Description: "GSM Encoder", Class: Low, PaperIPCr: 1.07, PaperIPCp: 1.07, Unroll: 1, Build: buildGSMEncode},
		{Name: "g721encode", Description: "G721 Encoder", Class: Medium, PaperIPCr: 1.75, PaperIPCp: 1.76, Unroll: 1, Build: buildG721("g721encode", 20, 0.2)},
		{Name: "g721decode", Description: "G721 Decoder", Class: Medium, PaperIPCr: 1.75, PaperIPCp: 1.76, Unroll: 1, Build: buildG721("g721decode", 16, 0.25)},
		{Name: "cjpeg", Description: "Jpeg Encoder", Class: Medium, PaperIPCr: 1.12, PaperIPCp: 1.66, Unroll: 1, Build: buildCJPEG},
		{Name: "djpeg", Description: "Jpeg Decoder", Class: Medium, PaperIPCr: 1.76, PaperIPCp: 1.77, Unroll: 1, Build: buildDJPEG},
		{Name: "imgpipe", Description: "Imaging pipeline", Class: High, PaperIPCr: 3.81, PaperIPCp: 4.05, Unroll: 1, Build: buildImgpipe},
		{Name: "x264", Description: "H.264 encoder", Class: High, PaperIPCr: 3.89, PaperIPCp: 4.04, Unroll: 1, Build: buildX264},
		{Name: "idct", Description: "Inverse Discrete Cosine Transform", Class: High, PaperIPCr: 4.79, PaperIPCp: 5.27, Unroll: 2, Build: buildIDCT},
		{Name: "colorspace", Description: "Colorspace Conversion", Class: High, PaperIPCr: 5.47, PaperIPCp: 8.88, Unroll: 2, Build: buildColorspace},
	}
}

// ByName returns the named benchmark: a Table 1 name, or a canonical
// generated "gen:" name (internal/wgen), which is parsed and
// regenerated deterministically.
func ByName(name string) (Benchmark, error) {
	if wgen.IsName(name) {
		return generatedByName(name)
	}
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Mix is one Table 2 workload configuration: four benchmarks named by
// their ILP-class combination.
type Mix struct {
	Name    string
	Members [4]string
}

// Mixes returns the nine Table 2 workload configurations in paper order.
func Mixes() []Mix {
	return []Mix{
		{Name: "LLLL", Members: [4]string{"mcf", "bzip2", "blowfish", "gsmencode"}},
		{Name: "LMMH", Members: [4]string{"bzip2", "cjpeg", "djpeg", "imgpipe"}},
		{Name: "MMMM", Members: [4]string{"g721encode", "g721decode", "cjpeg", "djpeg"}},
		{Name: "LLMM", Members: [4]string{"gsmencode", "blowfish", "g721encode", "djpeg"}},
		{Name: "LLMH", Members: [4]string{"mcf", "blowfish", "cjpeg", "x264"}},
		{Name: "LLHH", Members: [4]string{"mcf", "blowfish", "x264", "idct"}},
		{Name: "LMHH", Members: [4]string{"gsmencode", "g721encode", "imgpipe", "colorspace"}},
		{Name: "MMHH", Members: [4]string{"djpeg", "g721decode", "idct", "colorspace"}},
		{Name: "HHHH", Members: [4]string{"x264", "idct", "imgpipe", "colorspace"}},
	}
}

// MixByName returns the named mix: a Table 2 name, or a canonical
// generated "genmix:" name expanded into four generated benchmarks.
func MixByName(name string) (Mix, error) {
	if wgen.IsMixName(name) {
		return generatedMixByName(name)
	}
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}
