package workload

import (
	"fmt"

	"vliwmt/internal/ir"
	"vliwmt/internal/wgen"
)

// Generated benchmarks. A "gen:" name is a complete, canonical
// description of a synthetic kernel (see internal/wgen): ByName parses
// it and returns a Benchmark whose Build regenerates the kernel
// deterministically. Because the name alone reproduces the IR, a
// generated benchmark travels through the compile cache, the result
// store, the wire format and the distributed fabric exactly like a
// Table 1 name — no layer needs to know kernels can be synthetic.
// "genmix:" names expand to 4-thread mixes of generated benchmarks the
// same way.

// classFromGen maps the generator's ILP class onto the paper's.
func classFromGen(c wgen.Class) ILPClass {
	switch c {
	case wgen.Low:
		return Low
	case wgen.Medium:
		return Medium
	default:
		return High
	}
}

// generatedByName resolves a canonical "gen:" benchmark name.
func generatedByName(name string) (Benchmark, error) {
	p, seed, err := wgen.Parse(name)
	if err != nil {
		return Benchmark{}, fmt.Errorf("workload: %w", err)
	}
	return Benchmark{
		Name:        name,
		Description: fmt.Sprintf("Generated %s-ILP kernel", p.Class),
		Class:       classFromGen(p.Class),
		Unroll:      p.Unroll,
		Build:       func() *ir.Function { return wgen.MustGenerate(p, seed) },
	}, nil
}

// generatedMixByName resolves a canonical "genmix:" mix name.
func generatedMixByName(name string) (Mix, error) {
	combo, seed, err := wgen.ParseMixName(name)
	if err != nil {
		return Mix{}, fmt.Errorf("workload: %w", err)
	}
	members, err := wgen.MixMembers(combo, seed)
	if err != nil {
		return Mix{}, fmt.Errorf("workload: %w", err)
	}
	return Mix{Name: name, Members: members}, nil
}
