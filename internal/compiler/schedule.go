package compiler

import (
	"fmt"
	"sort"

	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
)

// schedOp is one operation being placed: IR operations, compiler-inserted
// intercluster copies, and the block's terminating branch.
type schedOp struct {
	class   isa.OpClass
	args    []int
	stream  int
	isStore bool
	cluster int
	// isBranch marks the block terminator, pinned to the final cycle.
	isBranch bool
	// estStart is the completion-time estimate used during cluster
	// assignment; height is the critical-path priority; start is the
	// final scheduled cycle.
	estStart, height, start int
}

// assigner carries cluster-load state across the blocks of a function, as
// BUG does: values of different blocks balance over the whole function, so
// low-ILP code does not pile onto cluster 0.
type assigner struct {
	loadTotal, loadMul, loadMem []float64
}

func newAssigner(m *isa.Machine) *assigner {
	return &assigner{
		loadTotal: make([]float64, m.Clusters),
		loadMul:   make([]float64, m.Clusters),
		loadMem:   make([]float64, m.Clusters),
	}
}

// compileBlock lowers one basic block: cluster assignment, copy insertion
// and list scheduling, producing the cycle-by-cycle instruction sequence.
func compileBlock(f *ir.Function, blk *ir.Block, m *isa.Machine, asn *assigner) ([]isa.Instruction, error) {
	ops := make([]*schedOp, 0, len(blk.Ops)+4)
	for _, op := range blk.Ops {
		so := &schedOp{class: op.Class, stream: op.Stream, isStore: op.IsStore, cluster: -1}
		for _, a := range op.Args {
			so.args = append(so.args, int(a))
		}
		ops = append(ops, so)
	}
	if blk.Branch != nil {
		so := &schedOp{class: isa.OpBranch, stream: -1, cluster: 0, isBranch: true}
		for _, a := range blk.Branch.Args {
			so.args = append(so.args, int(a))
		}
		ops = append(ops, so)
	}

	asn.assign(ops, m)
	ops = insertCopies(ops, m)
	computeHeights(ops, m)
	if err := listSchedule(ops, m); err != nil {
		return nil, err
	}
	return emit(ops, blk, m)
}

// assign performs BUG-style greedy assignment in topological order: each
// operation goes to the cluster minimising its estimated start cycle,
// accounting for intercluster copy delays from its operands and for the
// function-wide accumulated load on each cluster's issue slots and
// fixed-function units.
func (asn *assigner) assign(ops []*schedOp, m *isa.Machine) {
	loadTotal, loadMul, loadMem := asn.loadTotal, asn.loadMul, asn.loadMem
	// Rebase the carried-over loads at each block so the *imbalance*
	// persists across blocks while its magnitude stays commensurate with
	// per-block schedule lengths (otherwise load would eventually dominate
	// the dependence estimates and fragment chains).
	for _, l := range [][]float64{loadTotal, loadMul, loadMem} {
		min := l[0]
		for _, v := range l[1:] {
			if v < min {
				min = v
			}
		}
		for c := range l {
			l[c] -= min
		}
	}

	for _, op := range ops {
		if op.isBranch {
			// Branches resolve on cluster 0.
			op.cluster = 0
			continue
		}
		bestCluster := -1
		bestCost, bestLoad := 0.0, 0.0
		for c := 0; c < m.Clusters; c++ {
			if m.UnitsFor(op.class, c) == 0 {
				continue
			}
			ready := 0
			for _, a := range op.args {
				arg := ops[a]
				t := arg.estStart + m.Latency(arg.class)
				if arg.cluster != c {
					// A copy costs one issue slot plus its latency.
					t += m.LatencyCopy + 1
				}
				if t > ready {
					ready = t
				}
			}
			load := loadTotal[c] / float64(m.IssueWidth)
			switch op.class {
			case isa.OpMul:
				if l := loadMul[c] / float64(m.Muls); l > load {
					load = l
				}
			case isa.OpMem:
				if l := loadMem[c] / float64(m.MemUnits); l > load {
					load = l
				}
			}
			cost := float64(ready)
			if load > cost {
				cost = load
			}
			if bestCluster < 0 || cost < bestCost || (cost == bestCost && load < bestLoad) {
				bestCluster, bestCost, bestLoad = c, cost, load
			}
		}
		if bestCluster < 0 {
			bestCluster = 0 // no suitable unit anywhere; listSchedule reports it
		}
		op.cluster = bestCluster
		op.estStart = int(bestCost)
		loadTotal[bestCluster]++
		switch op.class {
		case isa.OpMul:
			loadMul[bestCluster]++
		case isa.OpMem:
			loadMem[bestCluster]++
		}
	}
}

// insertCopies materialises intercluster communication: when a consumer
// reads a value produced on another cluster, a copy operation is issued on
// the producing cluster (the send side of the intercluster bus) and the
// consumer depends on the copy. One copy is shared by all consumers of the
// same value on the same destination cluster.
func insertCopies(ops []*schedOp, m *isa.Machine) []*schedOp {
	type copyKey struct{ producer, dstCluster int }
	copies := map[copyKey]int{}
	out := ops
	for i := range ops {
		op := ops[i]
		for ai, a := range op.args {
			arg := out[a]
			if arg.cluster == op.cluster || arg.class == isa.OpCopy {
				continue
			}
			key := copyKey{a, op.cluster}
			ci, ok := copies[key]
			if !ok {
				cp := &schedOp{
					class:   isa.OpCopy,
					args:    []int{a},
					stream:  -1,
					cluster: arg.cluster,
				}
				out = append(out, cp)
				ci = len(out) - 1
				copies[key] = ci
			}
			op.args[ai] = ci
		}
	}
	return out
}

// computeHeights assigns each operation its critical-path height: the
// operation's latency plus the longest chain through its consumers. Height
// is the list scheduler's priority. Copies appended by insertCopies break
// topological order, so the relaxation runs to a fixed point (copy chains
// have depth one, so this converges in a couple of passes).
func computeHeights(ops []*schedOp, m *isa.Machine) {
	for _, op := range ops {
		op.height = m.Latency(op.class)
	}
	for changed := true; changed; {
		changed = false
		for i := len(ops) - 1; i >= 0; i-- {
			op := ops[i]
			for _, a := range op.args {
				want := op.height + m.Latency(ops[a].class)
				if ops[a].height < want {
					ops[a].height = want
					changed = true
				}
			}
		}
	}
}

// resourceRow tracks one cycle's usage of one cluster.
type resourceRow struct {
	total, mul, mem, branch int
}

func (r *resourceRow) fits(class isa.OpClass, m *isa.Machine, cluster int) bool {
	if r.total >= m.IssueWidth {
		return false
	}
	switch class {
	case isa.OpMul:
		return r.mul < m.Muls
	case isa.OpMem:
		return r.mem < m.MemUnits
	case isa.OpBranch:
		return cluster < m.BranchClusters && r.branch < 1
	}
	return true
}

func (r *resourceRow) take(class isa.OpClass) {
	r.total++
	switch class {
	case isa.OpMul:
		r.mul++
	case isa.OpMem:
		r.mem++
	case isa.OpBranch:
		r.branch++
	}
}

// listSchedule places operations into cycles, highest critical path first,
// respecting data dependencies, operation latencies and per-cluster
// resource limits. The branch is pinned to the block's final cycle.
func listSchedule(ops []*schedOp, m *isa.Machine) error {
	order := make([]int, 0, len(ops))
	var branch *schedOp
	for i, op := range ops {
		if m.UnitsFor(op.class, op.cluster) == 0 {
			return fmt.Errorf("no %v unit on cluster %d", op.class, op.cluster)
		}
		if op.isBranch {
			branch = op
			continue
		}
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool { return ops[order[a]].height > ops[order[b]].height })

	rows := make([][]resourceRow, 0, 64)
	row := func(cycle, cluster int) *resourceRow {
		for len(rows) <= cycle {
			rows = append(rows, make([]resourceRow, m.Clusters))
		}
		return &rows[cycle][cluster]
	}
	scheduled := make([]bool, len(ops))
	ready := func(op *schedOp) int {
		t := 0
		for _, a := range op.args {
			arg := ops[a]
			if !scheduled[a] {
				return -1
			}
			if ft := arg.start + m.Latency(arg.class); ft > t {
				t = ft
			}
		}
		return t
	}

	remaining := len(order)
	guard := 0
	for remaining > 0 {
		guard++
		if guard > 4*len(ops)+1024 {
			return fmt.Errorf("scheduler failed to converge (%d ops left)", remaining)
		}
		progressed := false
		for _, i := range order {
			if scheduled[i] {
				continue
			}
			op := ops[i]
			t := ready(op)
			if t < 0 {
				continue
			}
			for {
				if r := row(t, op.cluster); r.fits(op.class, m, op.cluster) {
					r.take(op.class)
					op.start = t
					scheduled[i] = true
					remaining--
					progressed = true
					break
				}
				t++
			}
		}
		if !progressed && remaining > 0 {
			return fmt.Errorf("scheduler deadlock (%d ops left)", remaining)
		}
	}

	if branch != nil {
		t := 0
		for _, a := range branch.args {
			if ft := ops[a].start + m.Latency(ops[a].class); ft > t {
				t = ft
			}
		}
		for _, op := range ops {
			if !op.isBranch && op.start >= t {
				t = op.start
			}
		}
		for !row(t, 0).fits(isa.OpBranch, m, 0) {
			t++
		}
		row(t, 0).take(isa.OpBranch)
		branch.start = t
	}
	return verifySchedule(ops, m)
}

// verifySchedule is a self-check run on every compiled block: dependencies
// and latencies respected, per-cycle resources within limits, branch in the
// final cycle. Violations indicate a compiler bug.
func verifySchedule(ops []*schedOp, m *isa.Machine) error {
	last := 0
	for _, op := range ops {
		if op.start > last {
			last = op.start
		}
	}
	type usage = resourceRow
	used := make(map[int]*[isa.MaxClusters]usage)
	for i, op := range ops {
		for _, a := range op.args {
			arg := ops[a]
			if arg.start+m.Latency(arg.class) > op.start {
				return fmt.Errorf("schedule bug: op %d at cycle %d reads op %d finishing at %d",
					i, op.start, a, arg.start+m.Latency(arg.class))
			}
		}
		u, ok := used[op.start]
		if !ok {
			u = new([isa.MaxClusters]usage)
			used[op.start] = u
		}
		r := &u[op.cluster]
		if !r.fits(op.class, m, op.cluster) {
			return fmt.Errorf("schedule bug: cycle %d cluster %d oversubscribed by op %d (%v)",
				op.start, op.cluster, i, op.class)
		}
		r.take(op.class)
		if op.isBranch && op.start != last {
			return fmt.Errorf("schedule bug: branch at cycle %d, block ends at %d", op.start, last)
		}
	}
	return nil
}

// emit converts the scheduled operations into one instruction per cycle,
// including empty (NOP) instructions for latency gap cycles.
func emit(ops []*schedOp, blk *ir.Block, m *isa.Machine) ([]isa.Instruction, error) {
	last := 0
	for _, op := range ops {
		if op.start > last {
			last = op.start
		}
	}
	byCycle := make([][]isa.Op, last+1)
	for _, op := range ops {
		iop := isa.Op{
			Class:   op.class,
			Cluster: uint8(op.cluster),
			Stream:  int16(op.stream),
			IsStore: op.isStore,
		}
		byCycle[op.start] = append(byCycle[op.start], iop)
	}
	instrs := make([]isa.Instruction, last+1)
	for c := range byCycle {
		instrs[c] = isa.NewInstruction(byCycle[c])
		if err := instrs[c].Validate(m); err != nil {
			return nil, err
		}
	}
	return instrs, nil
}
