package compiler

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
	"vliwmt/internal/program"
)

func compileOne(t *testing.T, f *ir.Function) *program.Program {
	t.Helper()
	p, err := Compile(f, Options{Machine: isa.Default()})
	if err != nil {
		t.Fatalf("Compile(%s): %v", f.Name, err)
	}
	return p
}

func TestSerialChainStaysLocal(t *testing.T) {
	b := ir.NewBuilder("chain")
	b.Block("body")
	v := b.ALU()
	b.Chain(v, 15)
	b.Branch("body", ir.Loop(100))
	p := compileOne(t, b.MustFinish())

	// 16 ALU ops in a serial chain: one per cycle, plus the branch in the
	// final cycle. No copies should appear (the chain never moves).
	if got := p.NumInstructions(); got != 16 {
		t.Errorf("chain compiled to %d instructions, want 16", got)
	}
	for _, in := range p.Blocks[0].Instrs {
		for _, op := range in.Ops {
			if op.Class == isa.OpCopy {
				t.Fatalf("serial chain required an intercluster copy: %s", p.Disassemble())
			}
		}
	}
}

func TestParallelOpsFillMachine(t *testing.T) {
	b := ir.NewBuilder("wide")
	b.Block("body")
	for i := 0; i < 32; i++ {
		b.ALU()
	}
	b.Branch("body", ir.Loop(100))
	p := compileOne(t, b.MustFinish())
	// 32 independent ALU ops on a 16-wide machine: 2 full cycles, plus the
	// branch. The branch shares the last cycle only if a slot is free, so
	// allow 2 or 3 instructions.
	if got := p.NumInstructions(); got < 2 || got > 3 {
		t.Errorf("32 parallel ops compiled to %d instructions: %s", got, p.Disassemble())
	}
	if density := p.StaticOpsPerInstr(); density < 10 {
		t.Errorf("parallel ops density = %.2f, want > 10", density)
	}
}

func TestLatencyGapEmitsNop(t *testing.T) {
	b := ir.NewBuilder("gap")
	b.Block("body")
	v := b.Mul() // latency 2
	b.ALU(v)     // must wait one gap cycle
	b.Branch("body", ir.Loop(100))
	p := compileOne(t, b.MustFinish())
	// Cycle 0: mul. Cycle 1: nothing (gap). Cycle 2: alu + branch.
	instrs := p.Blocks[0].Instrs
	if len(instrs) != 3 {
		t.Fatalf("got %d instructions, want 3: %s", len(instrs), p.Disassemble())
	}
	if len(instrs[1].Ops) != 0 {
		t.Errorf("gap cycle is not a NOP: %v", instrs[1])
	}
}

func TestBranchInFinalInstructionOnClusterZero(t *testing.T) {
	b := ir.NewBuilder("br")
	b.Block("body")
	v := b.ALU()
	b.Chain(v, 5)
	b.Branch("body", ir.Loop(10))
	p := compileOne(t, b.MustFinish())
	instrs := p.Blocks[0].Instrs
	lastOps := instrs[len(instrs)-1].Ops
	found := false
	for _, op := range lastOps {
		if op.Class == isa.OpBranch {
			found = true
			if op.Cluster != 0 {
				t.Errorf("branch on cluster %d, want 0", op.Cluster)
			}
		}
	}
	if !found {
		t.Errorf("branch not in final instruction: %s", p.Disassemble())
	}
	for _, in := range instrs[:len(instrs)-1] {
		for _, op := range in.Ops {
			if op.Class == isa.OpBranch {
				t.Error("branch scheduled before the final instruction")
			}
		}
	}
}

func TestCopiesInsertedForCrossClusterUse(t *testing.T) {
	b := ir.NewBuilder("reduce")
	b.Block("body")
	// Eight independent chains (spread across clusters by load balancing),
	// then a reduction tree consuming all of them: cross-cluster copies are
	// unavoidable.
	var heads []ir.Value
	for i := 0; i < 8; i++ {
		v := b.ALU()
		heads = append(heads, b.Chain(v, 4))
	}
	for len(heads) > 1 {
		var next []ir.Value
		for i := 0; i+1 < len(heads); i += 2 {
			next = append(next, b.ALU(heads[i], heads[i+1]))
		}
		heads = next
	}
	b.Branch("body", ir.Loop(100))
	p := compileOne(t, b.MustFinish())
	copies := 0
	clusters := map[uint8]bool{}
	for _, in := range p.Blocks[0].Instrs {
		for _, op := range in.Ops {
			clusters[op.Cluster] = true
			if op.Class == isa.OpCopy {
				copies++
			}
		}
	}
	if len(clusters) < 2 {
		t.Fatalf("reduction kernel not spread across clusters: %s", p.Disassemble())
	}
	if copies == 0 {
		t.Errorf("no intercluster copies inserted for a cross-cluster reduction")
	}
}

func TestLoadBalancingSpreadsIndependentChains(t *testing.T) {
	b := ir.NewBuilder("spread")
	b.Block("body")
	for i := 0; i < 8; i++ {
		v := b.ALU()
		b.Chain(v, 7)
	}
	b.Branch("body", ir.Loop(100))
	p := compileOne(t, b.MustFinish())
	perCluster := map[uint8]int{}
	for _, in := range p.Blocks[0].Instrs {
		for _, op := range in.Ops {
			if op.Class != isa.OpBranch {
				perCluster[op.Cluster]++
			}
		}
	}
	if len(perCluster) != 4 {
		t.Fatalf("8 chains used %d clusters, want 4: %v", len(perCluster), perCluster)
	}
	for c, n := range perCluster {
		if n < 8 || n > 24 {
			t.Errorf("cluster %d holds %d ops; want roughly balanced (16 each)", c, n)
		}
	}
}

func TestMemOpsRespectUnitLimit(t *testing.T) {
	b := ir.NewBuilder("mem")
	s := b.Stream(ir.MemStream{Kind: ir.StreamStride, Stride: 4, Footprint: 4096})
	b.Block("body")
	for i := 0; i < 12; i++ {
		b.Load(s)
	}
	b.Branch("body", ir.Loop(100))
	p := compileOne(t, b.MustFinish())
	// 12 loads, 4 load/store units machine-wide: at least 3 cycles.
	if got := p.NumInstructions(); got < 3 {
		t.Errorf("12 loads compiled into %d instructions, want >= 3", got)
	}
	m := isa.Default()
	for _, in := range p.Blocks[0].Instrs {
		for c := 0; c < m.Clusters; c++ {
			if int(in.Occ.Clusters[c].Mem) > m.MemUnits {
				t.Errorf("instruction oversubscribes load/store unit: %v", in)
			}
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	build := func() *ir.Function {
		b := ir.NewBuilder("det")
		s := b.Stream(ir.MemStream{Kind: ir.StreamRandom, Footprint: 1 << 16})
		b.Block("body")
		for i := 0; i < 6; i++ {
			v := b.Load(s)
			w := b.Mul(v)
			b.Chain(w, 3)
		}
		b.Branch("body", ir.Loop(50))
		return b.MustFinish()
	}
	p1 := compileOne(t, build())
	p2 := compileOne(t, build())
	if p1.Disassemble() != p2.Disassemble() {
		t.Error("compilation is not deterministic")
	}
}

func TestUnrollParallelLoop(t *testing.T) {
	build := func() *ir.Function {
		b := ir.NewBuilder("par")
		b.Block("body")
		b.ALU()
		b.ALU()
		b.Branch("body", ir.Loop(64))
		return b.MustFinish()
	}
	plain, err := Compile(build(), Options{Machine: isa.Default()})
	if err != nil {
		t.Fatal(err)
	}
	unrolled, err := Compile(build(), Options{Machine: isa.Default(), Unroll: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Independent iterations: unrolling packs 16 ops into few cycles.
	if unrolled.StaticOpsPerInstr() <= plain.StaticOpsPerInstr() {
		t.Errorf("unrolling did not increase density: %.2f vs %.2f",
			unrolled.StaticOpsPerInstr(), plain.StaticOpsPerInstr())
	}
	if got := unrolled.Blocks[0].Behavior.TripCount; got != 8 {
		t.Errorf("unrolled trip count = %d, want 8", got)
	}
}

func TestUnrollSerialLoopKeepsChain(t *testing.T) {
	build := func() *ir.Function {
		b := ir.NewBuilder("ser")
		b.Block("body")
		v0 := b.ALU()
		last := b.Chain(v0, 3)
		// The chain head depends on the previous iteration's tail.
		b.Carry(v0, last)
		b.Branch("body", ir.Loop(64))
		return b.MustFinish()
	}
	unrolled, err := Compile(build(), Options{Machine: isa.Default(), Unroll: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 4 ops per iteration x 4 iterations chained serially: the schedule
	// must stay essentially serial (>= 16 cycles of chain).
	if got := unrolled.NumInstructions(); got < 16 {
		t.Errorf("carried chain scheduled in %d instructions, want >= 16 (serialised)", got)
	}
}

func TestUnrollLeavesNonLoopsAlone(t *testing.T) {
	b := ir.NewBuilder("two")
	b.Block("a")
	b.ALU()
	b.Branch("b", ir.Bernoulli(0.5))
	b.Block("b")
	b.ALU()
	b.Branch("a", ir.Always())
	f := b.MustFinish()
	u := Unroll(f, 8)
	if u.NumOps() != f.NumOps() {
		t.Errorf("Unroll changed non-loop blocks: %d ops vs %d", u.NumOps(), f.NumOps())
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	// Invalid machine.
	m := isa.Default()
	m.Clusters = 0
	f := ir.NewBuilder("x")
	f.Block("a")
	f.ALU()
	fn, _ := f.Finish()
	if _, err := Compile(fn, Options{Machine: m}); err == nil {
		t.Error("Compile accepted invalid machine")
	}
	// Invalid function.
	bad := &ir.Function{Name: "bad"}
	if _, err := Compile(bad, Options{Machine: isa.Default()}); err == nil {
		t.Error("Compile accepted invalid function")
	}
	// Machine without multipliers cannot host multiplies.
	m2 := isa.Default()
	m2.Muls = 0
	b2 := ir.NewBuilder("mul")
	b2.Block("a")
	b2.Mul()
	fn2, _ := b2.Finish()
	if _, err := Compile(fn2, Options{Machine: m2}); err == nil {
		t.Error("Compile accepted multiply on multiplier-less machine")
	}
}

// randomFunction builds a random DAG kernel for property testing.
func randomFunction(r *rand.Rand) *ir.Function {
	b := ir.NewBuilder("rand")
	s := b.Stream(ir.MemStream{Kind: ir.StreamStride, Stride: 8, Footprint: 1 << 14})
	nBlocks := 1 + r.Intn(3)
	for bi := 0; bi < nBlocks; bi++ {
		name := string(rune('a' + bi))
		b.Block(name)
		n := 1 + r.Intn(40)
		var vals []ir.Value
		for i := 0; i < n; i++ {
			var args []ir.Value
			for len(vals) > 0 && r.Intn(3) != 0 && len(args) < 3 {
				args = append(args, vals[r.Intn(len(vals))])
			}
			var v ir.Value
			switch r.Intn(6) {
			case 0:
				v = b.Mul(args...)
			case 1:
				v = b.Load(s, args...)
			case 2:
				v = b.Store(s, args...)
			default:
				v = b.ALU(args...)
			}
			vals = append(vals, v)
		}
		switch r.Intn(3) {
		case 0:
			b.Branch(name, ir.Loop(1+r.Intn(30)))
		case 1:
			b.Branch("a", ir.Bernoulli(r.Float64()))
		}
	}
	return b.MustFinish()
}

// TestCompileRandomProperty: every random kernel compiles into a valid
// program whose instruction stream respects machine limits and preserves
// the operation count (modulo added copies and branches).
func TestCompileRandomProperty(t *testing.T) {
	m := isa.Default()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := randomFunction(r)
		p, err := Compile(fn, Options{Machine: m, Unroll: 1 + r.Intn(4)})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := p.Validate(&m); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// All source ops present: copies/branches only add.
		if p.NumOps() < p.SourceOps {
			t.Logf("seed %d: lost ops (%d < %d)", seed, p.NumOps(), p.SourceOps)
			return false
		}
		return p.StaticOpsPerInstr() <= float64(m.TotalIssueWidth())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleMentionsBlocksAndOps(t *testing.T) {
	b := ir.NewBuilder("dis")
	b.Block("entry")
	b.ALU()
	b.Branch("entry", ir.Loop(4))
	p := compileOne(t, b.MustFinish())
	text := p.Disassemble()
	for _, want := range []string{"program dis", "entry:", "alu.c", "br.c0"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}
