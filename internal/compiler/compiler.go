// Package compiler lowers IR functions to scheduled clustered-VLIW code.
//
// It is the repository's stand-in for the VEX C compiler the paper uses
// (a Multiflow descendant applying Trace Scheduling globally and
// Bottom-Up-Greedy cluster assignment): each basic block is compiled with
//
//  1. optional loop unrolling (self-loops, honouring carried dependencies),
//  2. BUG-style greedy cluster assignment minimising estimated completion
//     time with load balancing across clusters,
//  3. explicit intercluster copy insertion (copies occupy an issue slot on
//     the producing cluster and add one cycle of latency), and
//  4. critical-path-priority list scheduling against per-cycle resource
//     tables (issue width, multipliers, load/store unit, branch unit).
//
// Latency gaps emerge as empty (NOP) instructions: the machine has no
// interlocks, so every cycle of a block's schedule is an architectural
// instruction, exactly the vertical waste multithreading recovers.
package compiler

import (
	"fmt"

	"vliwmt/internal/ir"
	"vliwmt/internal/isa"
	"vliwmt/internal/program"
)

// Options configures compilation.
type Options struct {
	Machine isa.Machine
	// Unroll replicates the body of self-loop blocks the given number of
	// times (1 or 0 means no unrolling).
	Unroll int
}

// Compile lowers f to an executable program for machine opts.Machine.
func Compile(f *ir.Function, opts Options) (*program.Program, error) {
	m := opts.Machine
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if opts.Unroll > 1 {
		f = Unroll(f, opts.Unroll)
	}
	p := &program.Program{
		Name:      f.Name,
		Streams:   f.Streams,
		SourceOps: f.NumOps(),
	}
	var addr uint64
	branchSites := 0
	asn := newAssigner(&m)
	for bi, blk := range f.Blocks {
		sched, err := compileBlock(f, blk, &m, asn)
		if err != nil {
			return nil, fmt.Errorf("compiler: %s.%s: %w", f.Name, blk.Name, err)
		}
		pb := program.Block{
			Name:         blk.Name,
			Instrs:       sched,
			BranchTarget: -1,
			BranchStream: -1,
			Next:         (bi + 1) % len(f.Blocks),
		}
		if blk.Branch != nil {
			pb.BranchTarget = f.BlockIndex(blk.Branch.Target)
			pb.Behavior = blk.Branch.Behavior
			pb.BranchStream = branchSites
			branchSites++
		}
		pb.Addrs = make([]uint64, len(sched))
		for ii := range sched {
			pb.Addrs[ii] = addr
			addr += uint64(sched[ii].EncodedSize())
		}
		p.Blocks = append(p.Blocks, pb)
	}
	p.CodeSize = addr
	p.NumBranchSites = branchSites
	if err := p.Validate(&m); err != nil {
		return nil, err
	}
	return p, nil
}

// Unroll replicates the bodies of self-loop blocks factor times, chaining
// carried dependencies between the replicated iterations and dividing loop
// trip counts accordingly. Blocks that are not counted self-loops are
// copied unchanged.
func Unroll(f *ir.Function, factor int) *ir.Function {
	out := &ir.Function{Name: f.Name, Streams: f.Streams}
	for _, blk := range f.Blocks {
		br := blk.Branch
		selfLoop := br != nil && br.Target == blk.Name && br.Behavior.Kind == ir.BranchLoop
		if !selfLoop || factor <= 1 || len(blk.Ops) == 0 {
			out.Blocks = append(out.Blocks, blk)
			continue
		}
		n := len(blk.Ops)
		nb := &ir.Block{Name: blk.Name}
		for k := 0; k < factor; k++ {
			for _, op := range blk.Ops {
				nop := ir.Op{Class: op.Class, Stream: op.Stream, IsStore: op.IsStore}
				for _, a := range op.Args {
					nop.Args = append(nop.Args, ir.Value(k*n+int(a)))
				}
				for _, c := range op.Carried {
					if k == 0 {
						// First iteration: the carried value comes from
						// before the loop; it imposes no constraint here
						// but remains carried across the unrolled body.
						nop.Carried = append(nop.Carried, ir.Value((factor-1)*n+int(c)))
						continue
					}
					nop.Args = append(nop.Args, ir.Value((k-1)*n+int(c)))
				}
				nb.Ops = append(nb.Ops, nop)
			}
		}
		trip := br.Behavior.TripCount / factor
		if trip < 1 {
			trip = 1
		}
		nbr := &ir.Branch{Target: br.Target, Behavior: ir.Loop(trip)}
		for _, a := range br.Args {
			nbr.Args = append(nbr.Args, ir.Value((factor-1)*n+int(a)))
		}
		nb.Branch = nbr
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}
