package sweep

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vliwmt/internal/sim"
	"vliwmt/internal/telemetry"
)

// ProgressFunc observes sweep progress: done jobs out of total, plus the
// result that just completed. The engine serialises calls, so the
// callback needs no locking of its own.
//
// Contract: the callback MUST NOT block. It runs on a worker goroutine
// under the engine's completion mutex, so while it executes no other
// job can report completion — a slow callback stretches the sweep's
// wall-clock and a callback that never returns (waiting on something
// that itself waits for sweep progress) deadlocks the pool. Hand
// long-running work to another goroutine; the server's NDJSON
// broadcaster, for example, only appends to a log and performs
// non-blocking channel sends. Completion order as seen by the callback
// is always monotonic: done increments by exactly one per call.
type ProgressFunc func(done, total int, r Result)

// ResultStore caches completed job results across sweeps (and, for a
// disk-backed implementation, across processes). Get must return only
// results the determinism contract vouches for — a hit is served in
// place of a simulation, with the stored wall-clock time replayed on
// the Result. Implementations must be safe for concurrent use; the
// engine calls them from every worker.
type ResultStore interface {
	Get(Job) (*sim.Result, time.Duration, bool)
	Put(Job, *sim.Result, time.Duration) error
}

// Engine executes job sets on a bounded worker pool with a shared
// compile cache. An Engine is safe for use by a single sweep at a time
// per Run call; the compile cache it owns is shared across Runs, so
// repeated sweeps on the same machine reuse compiled kernels.
type Engine struct {
	workers  int
	cache    *CompileCache
	progress ProgressFunc
	store    ResultStore
	batch    int
}

// autoBatchCap bounds auto-formed batch units. Beyond a few dozen
// lanes the shared-plan and selection-memo wins are already amortised,
// while bigger units coarsen cancellation and progress granularity and
// grow the batch's working set past cache comfort.
const autoBatchCap = 32

// PoolSize resolves a requested worker count to the effective pool
// size: values <= 0 select runtime.NumCPU(). It is the single owner of
// that policy; CLIs reporting the effective count use it too.
func PoolSize(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// New returns an engine running up to PoolSize(workers) jobs
// concurrently, with a fresh private compile cache; attach the
// process-wide one with SetCache(SharedCache()) to reuse kernels
// across engines.
func New(workers int) *Engine {
	return &Engine{workers: PoolSize(workers), cache: NewCompileCache()}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Cache exposes the engine's compile cache (for stats and pre-warming).
func (e *Engine) Cache() *CompileCache { return e.cache }

// SetCache replaces the engine's compile cache, typically with
// SharedCache() to share compiled kernels across engines.
func (e *Engine) SetCache(c *CompileCache) {
	if c != nil {
		e.cache = c
	}
}

// SetProgress installs a progress callback for subsequent Runs.
func (e *Engine) SetProgress(fn ProgressFunc) { e.progress = fn }

// SetStore attaches a result store. Each job is looked up before it is
// compiled or simulated — a hit skips both and marks the Result Cached
// — and every successfully simulated job is written back, so partial
// overlaps between sweeps reuse exactly the shared jobs. Store write
// failures are ignored: persistence is an optimisation, never a
// correctness dependency.
func (e *Engine) SetStore(s ResultStore) { e.store = s }

// SetBatch configures job batching through sim.RunBatch: n <= 0 (the
// default) groups pending jobs by shape — same machine, same benchmark
// list — into units of at most autoBatchCap lanes; n == 1 disables
// batching (every job runs the solo sim.Run path); n > 1 caps units at
// n lanes. Batching is a scheduling decision only: per-job results,
// seeds, ordering, progress and store interactions are identical at
// every setting — the batched core is bit-identical to the solo one.
func (e *Engine) SetBatch(n int) { e.batch = n }

// Batch returns the configured batching cap (0 = auto).
func (e *Engine) Batch() int { return e.batch }

// Run executes every job and returns one Result per job, ordered by job
// index regardless of completion order. Individual job failures are
// collected on their Result (and joined into the returned error); they
// do not stop the sweep. Cancelling ctx stops dispatching new jobs:
// already-running jobs finish, skipped jobs carry the context's error,
// and the partial results are returned with that error.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sweepID := telemetry.EnsureSweepID(ctx)
	logger := telemetry.TraceLogger().With("sweep", sweepID)
	perJob := logger.Enabled(ctx, slog.LevelDebug)
	//vliwvet:allow detpure sweep wall time is reporting, not simulation state
	start := time.Now()
	logger.Info("sweep start", "jobs", len(jobs), "workers", e.workers)
	metSweepsStarted.Inc()
	metQueueDepth.Add(int64(len(jobs)))

	results := make([]Result, len(jobs))
	for i := range jobs {
		results[i] = Result{Index: i, Job: jobs[i]}
	}

	// Dispatch in shape-homogeneous units: each unit's jobs share
	// compiled programs (same machine, same benchmarks) and run through
	// one batched cycle loop. SetBatch(1) degrades every unit to a
	// single job, which is exactly the pre-batching engine.
	units := e.batchUnits(jobs)
	unitCh := make(chan []int)
	go func() {
		defer close(unitCh)
		for _, u := range units {
			select {
			case unitCh <- u:
			case <-ctx.Done():
				return
			}
		}
	}()

	st := &sweepState{jobs: jobs, results: results, perJob: perJob, logger: logger}
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for unit := range unitCh {
				if err := ctx.Err(); err != nil {
					// Cancellation is unit-granular: a unit already
					// dispatched runs to completion, later units are
					// skipped whole.
					for _, i := range unit {
						results[i].Err = err
						metJobsErrored.Inc()
						metQueueDepth.Add(-1)
						st.processed.Add(1)
					}
					continue
				}
				if len(unit) == 1 {
					e.runSolo(st, unit[0])
				} else {
					e.runUnit(st, unit)
				}
			}
		}()
	}
	wg.Wait()
	// Jobs the producer never handed to a worker (context cancelled
	// before dispatch) still occupy the queue gauge; release them.
	metQueueDepth.Add(st.processed.Load() - int64(len(jobs)))

	var errs []error
	if err := ctx.Err(); err != nil {
		// Jobs never handed to a worker keep the context error too.
		for i := range results {
			if results[i].Res == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
		errs = append(errs, err)
	}
	for i := range results {
		if results[i].Err != nil && !errors.Is(results[i].Err, ctx.Err()) {
			errs = append(errs, fmt.Errorf("job %d (%s): %w", i, results[i].Job.Describe(), results[i].Err))
		}
	}
	//vliwvet:allow detpure sweep wall time is reporting, not simulation state
	sum := Summarize(results, time.Since(start))
	logger.Info("sweep finish",
		"jobs", sum.Jobs, "errors", sum.Errors, "store_hits", sum.CacheHits,
		"p50", sum.P50, "p99", sum.P99, "elapsed", sum.Wall, "jobs_per_sec", sum.JobsPerSec)
	return results, errors.Join(errs...)
}

// errString flattens an error for log attributes; nil logs as "".
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// sweepState is the per-Run bookkeeping the workers share.
type sweepState struct {
	jobs      []Job
	results   []Result
	mu        sync.Mutex // serialises progress callbacks and the done count
	done      int
	processed atomic.Int64 // jobs a worker finished, for queue-depth accounting
	perJob    bool
	logger    *slog.Logger
}

// shapeKey renders the part of a job the batched core requires to be
// common across a batch: the machine (which determines compilation)
// and the exact benchmark list (which determines the task vector and
// the per-task seeds/relocations). Everything else — scheme, contexts,
// caches, budgets, seeds — may vary freely between lanes.
func shapeKey(j Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%+v", j.Machine)
	for _, n := range j.Benchmarks {
		b.WriteByte('|')
		b.WriteString(n)
	}
	return b.String()
}

// batchUnits partitions job indices into dispatch units: singleton
// units when batching is off, else shape groups in first-seen order,
// chunked to the configured cap. Unit formation is deterministic in
// the job list alone, and per-job results never depend on it.
func (e *Engine) batchUnits(jobs []Job) [][]int {
	limit := e.batch
	if limit == 1 {
		units := make([][]int, len(jobs))
		for i := range jobs {
			units[i] = []int{i}
		}
		return units
	}
	if limit <= 0 {
		limit = autoBatchCap
	}
	groupOf := map[string]int{}
	var groups [][]int
	for i := range jobs {
		k := shapeKey(jobs[i])
		gi, ok := groupOf[k]
		if !ok {
			gi = len(groups)
			groupOf[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	units := make([][]int, 0, len(groups))
	for _, g := range groups {
		for len(g) > limit {
			units = append(units, g[:limit])
			g = g[limit:]
		}
		units = append(units, g)
	}
	return units
}

// runSolo processes one job exactly as the pre-batching engine did:
// store probe, compile through the shared cache, solo sim.Run.
func (e *Engine) runSolo(st *sweepState, i int) {
	metJobsStarted.Inc()
	//vliwvet:allow detpure job wall time feeds the duration histogram only
	jobStart := time.Now()
	if e.store != nil {
		if res, elapsed, ok := e.store.Get(st.jobs[i]); ok {
			st.results[i].Res, st.results[i].Elapsed, st.results[i].Cached = res, elapsed, true
		}
	}
	if !st.results[i].Cached {
		//vliwvet:allow detpure Elapsed is a wall-clock column, excluded from the determinism contract
		simStart := time.Now()
		res, err := e.runJob(st.jobs[i])
		st.results[i].Res, st.results[i].Err = res, err
		//vliwvet:allow detpure Elapsed is a wall-clock column, excluded from the determinism contract
		st.results[i].Elapsed = time.Since(simStart)
		if err == nil && e.store != nil {
			_ = e.store.Put(st.jobs[i], res, st.results[i].Elapsed)
		}
	}
	// The histogram observes actual processing time (probe + compile +
	// simulate), not the replayed Elapsed a store hit carries — the
	// metric answers "where does this sweep's time go", the Result
	// answers "what did the simulation cost".
	//vliwvet:allow detpure job wall time feeds the duration histogram only
	e.finishJob(st, i, time.Since(jobStart))
}

// runUnit processes a shape-homogeneous unit through the batched core.
// Every per-job interaction is preserved: each job gets its own store
// probe (hits drop out of the batch), its own validation and its own
// compile-cache lookups, and progress/telemetry fire once per job.
// Only the cycle loop is shared — and sim.RunBatch is bit-identical to
// sim.Run lane by lane, so results cannot depend on unit formation.
func (e *Engine) runUnit(st *sweepState, unit []int) {
	//vliwvet:allow detpure job wall time feeds the duration histogram only
	unitStart := time.Now()
	lanes := make([]int, 0, len(unit))
	cfgs := make([]sim.Config, 0, len(unit))
	var tasks []sim.Task
	for _, i := range unit {
		metJobsStarted.Inc()
		if e.store != nil {
			if res, elapsed, ok := e.store.Get(st.jobs[i]); ok {
				st.results[i].Res, st.results[i].Elapsed, st.results[i].Cached = res, elapsed, true
				continue
			}
		}
		if err := st.jobs[i].Validate(); err != nil {
			st.results[i].Err = err
			continue
		}
		// Compile through the cache per job, not once per unit: the
		// hit/miss accounting and pre-warm semantics must not depend on
		// batching. Lookups past the unit's first are cheap map hits
		// returning the same *Program pointers.
		jt, err := e.compileTasks(st.jobs[i])
		if err != nil {
			st.results[i].Err = err
			continue
		}
		if tasks == nil {
			tasks = jt
		}
		cfgs = append(cfgs, st.jobs[i].config())
		lanes = append(lanes, i)
	}
	if len(lanes) > 0 {
		//vliwvet:allow detpure Elapsed is a wall-clock column, excluded from the determinism contract
		simStart := time.Now()
		ress, err := sim.RunBatch(cfgs, tasks)
		if err != nil {
			// A lane the batch entry rejects (a config defect Validate
			// does not cover, e.g. a non-positive instruction budget)
			// falls back to solo runs so the failure stays attributed to
			// its job instead of poisoning the unit.
			for _, i := range lanes {
				//vliwvet:allow detpure Elapsed is a wall-clock column, excluded from the determinism contract
				soloStart := time.Now()
				res, jerr := sim.Run(st.jobs[i].config(), tasks)
				st.results[i].Res, st.results[i].Err = res, jerr
				//vliwvet:allow detpure Elapsed is a wall-clock column, excluded from the determinism contract
				st.results[i].Elapsed = time.Since(soloStart)
				if jerr == nil && e.store != nil {
					_ = e.store.Put(st.jobs[i], res, st.results[i].Elapsed)
				}
			}
		} else {
			// Elapsed is the amortised per-lane share of the batch's
			// wall-clock. Wall time is informational and excluded from
			// the determinism contract; the share keeps sweep summaries
			// and stored replay times meaningful.
			//vliwvet:allow detpure Elapsed is a wall-clock column, excluded from the determinism contract
			share := time.Since(simStart) / time.Duration(len(lanes))
			for k, i := range lanes {
				st.results[i].Res = ress[k]
				st.results[i].Elapsed = share
				if e.store != nil {
					_ = e.store.Put(st.jobs[i], ress[k], share)
				}
			}
		}
	}
	//vliwvet:allow detpure job wall time feeds the duration histogram only
	took := time.Since(unitStart) / time.Duration(len(unit))
	for _, i := range unit {
		e.finishJob(st, i, took)
	}
}

// finishJob is the per-job completion tail shared by the solo and
// batched paths: the duration observation, outcome counters,
// queue-depth release, per-job trace and the serialised progress
// callback (done increments by exactly one per call, as documented on
// ProgressFunc, at any batch setting).
func (e *Engine) finishJob(st *sweepState, i int, took time.Duration) {
	metJobDuration.Observe(took.Seconds())
	if st.results[i].Err != nil {
		metJobsErrored.Inc()
	} else {
		metJobsCompleted.Inc()
	}
	metQueueDepth.Add(-1)
	st.processed.Add(1)
	if st.perJob {
		st.logger.Debug("job done",
			"index", i, "job", st.jobs[i].Describe(),
			"cached", st.results[i].Cached,
			"err", errString(st.results[i].Err),
			"elapsed", took)
	}
	if e.progress != nil {
		st.mu.Lock()
		st.done++
		e.progress(st.done, len(st.jobs), st.results[i])
		st.mu.Unlock()
	}
}

// compileTasks compiles the job's benchmarks through the shared cache.
func (e *Engine) compileTasks(j Job) ([]sim.Task, error) {
	tasks := make([]sim.Task, 0, len(j.Benchmarks))
	for _, name := range j.Benchmarks {
		p, err := e.cache.Get(name, j.Machine)
		if err != nil {
			return nil, fmt.Errorf("compile %s: %w", name, err)
		}
		tasks = append(tasks, sim.Task{Name: name, Prog: p})
	}
	return tasks, nil
}

// runJob compiles the job's benchmarks through the shared cache and
// simulates them on the solo path.
func (e *Engine) runJob(j Job) (*sim.Result, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	tasks, err := e.compileTasks(j)
	if err != nil {
		return nil, err
	}
	return sim.Run(j.config(), tasks)
}
