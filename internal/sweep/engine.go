package sweep

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vliwmt/internal/sim"
	"vliwmt/internal/telemetry"
)

// ProgressFunc observes sweep progress: done jobs out of total, plus the
// result that just completed. The engine serialises calls, so the
// callback needs no locking of its own.
//
// Contract: the callback MUST NOT block. It runs on a worker goroutine
// under the engine's completion mutex, so while it executes no other
// job can report completion — a slow callback stretches the sweep's
// wall-clock and a callback that never returns (waiting on something
// that itself waits for sweep progress) deadlocks the pool. Hand
// long-running work to another goroutine; the server's NDJSON
// broadcaster, for example, only appends to a log and performs
// non-blocking channel sends. Completion order as seen by the callback
// is always monotonic: done increments by exactly one per call.
type ProgressFunc func(done, total int, r Result)

// ResultStore caches completed job results across sweeps (and, for a
// disk-backed implementation, across processes). Get must return only
// results the determinism contract vouches for — a hit is served in
// place of a simulation, with the stored wall-clock time replayed on
// the Result. Implementations must be safe for concurrent use; the
// engine calls them from every worker.
type ResultStore interface {
	Get(Job) (*sim.Result, time.Duration, bool)
	Put(Job, *sim.Result, time.Duration) error
}

// Engine executes job sets on a bounded worker pool with a shared
// compile cache. An Engine is safe for use by a single sweep at a time
// per Run call; the compile cache it owns is shared across Runs, so
// repeated sweeps on the same machine reuse compiled kernels.
type Engine struct {
	workers  int
	cache    *CompileCache
	progress ProgressFunc
	store    ResultStore
}

// PoolSize resolves a requested worker count to the effective pool
// size: values <= 0 select runtime.NumCPU(). It is the single owner of
// that policy; CLIs reporting the effective count use it too.
func PoolSize(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// New returns an engine running up to PoolSize(workers) jobs
// concurrently, with a fresh private compile cache; attach the
// process-wide one with SetCache(SharedCache()) to reuse kernels
// across engines.
func New(workers int) *Engine {
	return &Engine{workers: PoolSize(workers), cache: NewCompileCache()}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Cache exposes the engine's compile cache (for stats and pre-warming).
func (e *Engine) Cache() *CompileCache { return e.cache }

// SetCache replaces the engine's compile cache, typically with
// SharedCache() to share compiled kernels across engines.
func (e *Engine) SetCache(c *CompileCache) {
	if c != nil {
		e.cache = c
	}
}

// SetProgress installs a progress callback for subsequent Runs.
func (e *Engine) SetProgress(fn ProgressFunc) { e.progress = fn }

// SetStore attaches a result store. Each job is looked up before it is
// compiled or simulated — a hit skips both and marks the Result Cached
// — and every successfully simulated job is written back, so partial
// overlaps between sweeps reuse exactly the shared jobs. Store write
// failures are ignored: persistence is an optimisation, never a
// correctness dependency.
func (e *Engine) SetStore(s ResultStore) { e.store = s }

// Run executes every job and returns one Result per job, ordered by job
// index regardless of completion order. Individual job failures are
// collected on their Result (and joined into the returned error); they
// do not stop the sweep. Cancelling ctx stops dispatching new jobs:
// already-running jobs finish, skipped jobs carry the context's error,
// and the partial results are returned with that error.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sweepID := telemetry.EnsureSweepID(ctx)
	logger := telemetry.TraceLogger().With("sweep", sweepID)
	perJob := logger.Enabled(ctx, slog.LevelDebug)
	//vliwvet:allow detpure sweep wall time is reporting, not simulation state
	start := time.Now()
	logger.Info("sweep start", "jobs", len(jobs), "workers", e.workers)
	metSweepsStarted.Inc()
	metQueueDepth.Add(int64(len(jobs)))

	results := make([]Result, len(jobs))
	for i := range jobs {
		results[i] = Result{Index: i, Job: jobs[i]}
	}

	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := range jobs {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex // serialises progress callbacks and the done count
		done      int
		processed atomic.Int64 // jobs a worker finished, for queue-depth accounting
	)
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					metJobsErrored.Inc()
					metQueueDepth.Add(-1)
					processed.Add(1)
					continue
				}
				metJobsStarted.Inc()
				//vliwvet:allow detpure job wall time feeds the duration histogram only
				jobStart := time.Now()
				if e.store != nil {
					if res, elapsed, ok := e.store.Get(jobs[i]); ok {
						results[i].Res, results[i].Elapsed, results[i].Cached = res, elapsed, true
					}
				}
				if !results[i].Cached {
					//vliwvet:allow detpure Elapsed is a wall-clock column, excluded from the determinism contract
					simStart := time.Now()
					res, err := e.runJob(jobs[i])
					results[i].Res, results[i].Err = res, err
					//vliwvet:allow detpure Elapsed is a wall-clock column, excluded from the determinism contract
					results[i].Elapsed = time.Since(simStart)
					if err == nil && e.store != nil {
						_ = e.store.Put(jobs[i], res, results[i].Elapsed)
					}
				}
				// The histogram observes actual processing time (probe +
				// compile + simulate), not the replayed Elapsed a store hit
				// carries — the metric answers "where does this sweep's time
				// go", the Result answers "what did the simulation cost".
				//vliwvet:allow detpure job wall time feeds the duration histogram only
				metJobDuration.Observe(time.Since(jobStart).Seconds())
				if results[i].Err != nil {
					metJobsErrored.Inc()
				} else {
					metJobsCompleted.Inc()
				}
				metQueueDepth.Add(-1)
				processed.Add(1)
				if perJob {
					logger.Debug("job done",
						"index", i, "job", jobs[i].Describe(),
						"cached", results[i].Cached,
						"err", errString(results[i].Err),
						//vliwvet:allow detpure trace attribute, not simulation state
						"elapsed", time.Since(jobStart))
				}
				if e.progress != nil {
					mu.Lock()
					done++
					e.progress(done, len(jobs), results[i])
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Jobs the producer never handed to a worker (context cancelled
	// before dispatch) still occupy the queue gauge; release them.
	metQueueDepth.Add(processed.Load() - int64(len(jobs)))

	var errs []error
	if err := ctx.Err(); err != nil {
		// Jobs never handed to a worker keep the context error too.
		for i := range results {
			if results[i].Res == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
		errs = append(errs, err)
	}
	for i := range results {
		if results[i].Err != nil && !errors.Is(results[i].Err, ctx.Err()) {
			errs = append(errs, fmt.Errorf("job %d (%s): %w", i, results[i].Job.Describe(), results[i].Err))
		}
	}
	//vliwvet:allow detpure sweep wall time is reporting, not simulation state
	sum := Summarize(results, time.Since(start))
	logger.Info("sweep finish",
		"jobs", sum.Jobs, "errors", sum.Errors, "store_hits", sum.CacheHits,
		"p50", sum.P50, "p99", sum.P99, "elapsed", sum.Wall, "jobs_per_sec", sum.JobsPerSec)
	return results, errors.Join(errs...)
}

// errString flattens an error for log attributes; nil logs as "".
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// runJob compiles the job's benchmarks through the shared cache and
// simulates them.
func (e *Engine) runJob(j Job) (*sim.Result, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	tasks := make([]sim.Task, 0, len(j.Benchmarks))
	for _, name := range j.Benchmarks {
		p, err := e.cache.Get(name, j.Machine)
		if err != nil {
			return nil, fmt.Errorf("compile %s: %w", name, err)
		}
		tasks = append(tasks, sim.Task{Name: name, Prog: p})
	}
	return sim.Run(j.config(), tasks)
}
