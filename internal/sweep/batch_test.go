package sweep

import (
	"context"
	"testing"
)

// TestBatchingDeterministic pins the engine-level half of the batching
// contract: at every batch setting (off, auto, odd explicit caps) and
// worker count the sweep returns the same results in the same job
// order. Unit formation is a dispatch detail, never a semantic one.
func TestBatchingDeterministic(t *testing.T) {
	jobs, err := testGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, batch := range []int{1, 0, 3, 100} {
		for _, workers := range []int{1, 4} {
			results, err := func() ([]Result, error) {
				e := New(workers)
				e.SetBatch(batch)
				return e.Run(context.Background(), jobs)
			}()
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
			}
			for i, r := range results {
				if r.Index != i {
					t.Fatalf("batch=%d workers=%d: results reordered: index %d at position %d", batch, workers, r.Index, i)
				}
			}
			got := fingerprint(t, results)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("batch=%d workers=%d diverged from the unbatched sweep:\n%s\nvs:\n%s",
					batch, workers, got, want)
			}
		}
	}
}

// TestBatchingProgressMonotonic verifies the ProgressFunc contract
// survives batched dispatch: done increments by exactly one per call,
// reaches the total, and every reported result is final (non-nil or
// errored), even though a whole unit completes before its jobs report.
func TestBatchingProgressMonotonic(t *testing.T) {
	jobs, err := testGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	e := New(4)
	e.SetBatch(0)
	var seq []int
	e.SetProgress(func(done, total int, r Result) {
		seq = append(seq, done)
		if total != len(jobs) {
			t.Errorf("progress total = %d, want %d", total, len(jobs))
		}
		if r.Res == nil && r.Err == nil {
			t.Errorf("progress delivered a job with neither result nor error: %s", r.Job.Describe())
		}
	})
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(jobs) {
		t.Fatalf("progress fired %d times for %d jobs", len(seq), len(jobs))
	}
	for i, d := range seq {
		if d != i+1 {
			t.Fatalf("progress done sequence not monotonic: got %v", seq)
		}
	}
}

// TestBatchUnitsShapeAndCap checks unit formation directly: units
// partition the index space, each unit is shape-homogeneous (same
// machine and benchmark list), units respect the cap, and batch=1
// degenerates to singleton units.
func TestBatchUnitsShapeAndCap(t *testing.T) {
	jobs, err := testGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{0, 1, 2, 3} {
		e := New(1)
		e.SetBatch(batch)
		units := e.batchUnits(jobs)
		cap := batch
		if cap <= 0 {
			cap = autoBatchCap
		}
		seen := make([]bool, len(jobs))
		for _, u := range units {
			if len(u) == 0 || len(u) > cap {
				t.Fatalf("batch=%d: unit size %d outside (0,%d]", batch, len(u), cap)
			}
			key := shapeKey(jobs[u[0]])
			for _, i := range u {
				if seen[i] {
					t.Fatalf("batch=%d: job %d dispatched twice", batch, i)
				}
				seen[i] = true
				if shapeKey(jobs[i]) != key {
					t.Fatalf("batch=%d: unit mixes shapes: %q vs %q", batch, shapeKey(jobs[i]), key)
				}
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("batch=%d: job %d never dispatched", batch, i)
			}
		}
		if batch == 1 && len(units) != len(jobs) {
			t.Fatalf("batch=1 must yield singleton units, got %d units for %d jobs", len(units), len(jobs))
		}
	}
}
