package sweep

// Observability of the engine: the ProgressFunc serialisation
// contract, and the process-wide telemetry the engine feeds
// (job/sweep counters, the queue-depth gauge, the job-duration
// histogram and the compile-cache counters).

import (
	"context"
	"errors"
	"testing"
	"time"

	"vliwmt/internal/telemetry"
)

// TestSlowProgressDelaysButNeverDeadlocks pins the documented
// ProgressFunc contract: calls are serialised under the engine's
// completion mutex, so a slow callback stretches the sweep's
// wall-clock — but it must never deadlock the pool, and the done
// count it observes still increments by exactly one per call.
func TestSlowProgressDelaysButNeverDeadlocks(t *testing.T) {
	g := testGrid()
	g.InstrLimit = 2_000
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	const delay = 10 * time.Millisecond
	e := New(8)
	var seen []int
	e.SetProgress(func(done, total int, r Result) {
		seen = append(seen, done) // no locking: the engine serialises calls
		time.Sleep(delay)
	})

	start := time.Now()
	finished := make(chan error, 1)
	go func() {
		_, err := e.Run(context.Background(), jobs)
		finished <- err
	}()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep with a slow progress callback never finished — the pool deadlocked")
	}

	// The callbacks are serialised, so their sleeps cannot overlap:
	// the sweep must have been delayed by at least one delay per job.
	if elapsed := time.Since(start); elapsed < time.Duration(len(jobs))*delay {
		t.Errorf("sweep finished in %v, below the %v the serialised callbacks must take — callbacks overlapped", elapsed, time.Duration(len(jobs))*delay)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("%d progress calls, want %d", len(seen), len(jobs))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("done sequence %v not an increment-by-one series", seen)
		}
	}
}

// TestEngineTelemetry runs one sweep and checks every engine
// instrument moved by exactly the sweep's shape: counters by job
// count, the duration histogram by one observation per job, and the
// queue-depth gauge back to where it started.
func TestEngineTelemetry(t *testing.T) {
	jobs, err := testGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	before := telemetry.Default().Snapshot()
	if _, err := New(4).Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	after := telemetry.Default().Snapshot()
	delta := func(name string) int64 { return after.Counter(name) - before.Counter(name) }

	n := int64(len(jobs))
	if d := delta("sweep_runs_total"); d != 1 {
		t.Errorf("sweep_runs_total moved by %d, want 1", d)
	}
	if d := delta("sweep_jobs_started_total"); d != n {
		t.Errorf("sweep_jobs_started_total moved by %d, want %d", d, n)
	}
	if d := delta("sweep_jobs_completed_total"); d != n {
		t.Errorf("sweep_jobs_completed_total moved by %d, want %d", d, n)
	}
	if d := delta("sweep_jobs_errored_total"); d != 0 {
		t.Errorf("sweep_jobs_errored_total moved by %d on an error-free sweep", d)
	}
	if b, a := before.Gauge("sweep_queue_depth"), after.Gauge("sweep_queue_depth"); a != b {
		t.Errorf("sweep_queue_depth did not return to its baseline: %d -> %d", b, a)
	}
	hb, ha := before.Histograms["sweep_job_duration_seconds"], after.Histograms["sweep_job_duration_seconds"]
	if d := ha.Count - hb.Count; d != n {
		t.Errorf("sweep_job_duration_seconds observed %d jobs, want %d", d, n)
	}
	// 12 jobs x 4 threads = 48 compile-cache lookups, split between
	// hits and misses however the workers race.
	if d := delta("sweep_compile_cache_hits_total") + delta("sweep_compile_cache_misses_total"); d != 48 {
		t.Errorf("compile-cache lookups moved by %d, want 48", d)
	}
}

// TestQueueDepthReleasedOnCancel checks the gauge accounting under
// cancellation: jobs the producer never handed to a worker must still
// be released, or every cancelled sweep would leak queue depth
// forever.
func TestQueueDepthReleasedOnCancel(t *testing.T) {
	g := testGrid()
	g.InstrLimit = 2_000
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	before := telemetry.Default().Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := New(1)
	e.SetProgress(func(done, total int, r Result) {
		if done == 1 {
			cancel()
		}
	})
	if _, err := e.Run(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after := telemetry.Default().Snapshot()
	if b, a := before.Gauge("sweep_queue_depth"), after.Gauge("sweep_queue_depth"); a != b {
		t.Errorf("cancelled sweep leaked queue depth: %d -> %d", b, a)
	}
}
