package sweep

import (
	"fmt"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/workload"
)

// DefaultSchemes returns the paper's sixteen Figure 9 schemes.
func DefaultSchemes() []string { return merge.PaperSchemes4() }

// Grid declares a factor cross-product of merge schemes and workload
// mixes. Jobs expands it mix-major (all schemes of the first mix, then
// the second), matching the paper's Figure 10 layout.
//
// Zero-valued fields assume the paper's defaults: Default machine and
// caches, a 300k-instruction budget with a 1%-of-budget timeslice, and
// seed 1.
type Grid struct {
	// Schemes are merge-control names — paper names, baselines,
	// registered custom schemes or canonical tree expressions; empty
	// selects the paper's sixteen Figure 9 schemes.
	Schemes []string
	// Mixes are Table 2 mix names; empty selects all nine.
	Mixes []string
	// Machine, ICache, DCache configure the processor (zero: defaults).
	Machine isa.Machine
	ICache  cache.Config
	DCache  cache.Config
	// InstrLimit is the per-thread budget (zero: 300k, the scaled-down
	// default that converges on the synthetic kernels).
	InstrLimit int64
	// TimesliceCycles is the OS quantum (zero: InstrLimit/100, floored
	// at 1000, the paper's proportion).
	TimesliceCycles int64
	// Seed seeds the sweep. Each job derives its own seed from it and
	// the job index (splitmix64), so results are deterministic at any
	// worker count yet jobs are decorrelated.
	Seed uint64
	// SharedSeed gives every job the sweep seed verbatim instead of a
	// derived one. Required when comparing schemes the paper treats as
	// functionally identical (e.g. C4 vs 3CCC), where the OS scheduling
	// sequence must match across jobs.
	SharedSeed bool
}

// deriveSeed spreads the sweep seed over job indices (splitmix64).
func deriveSeed(base uint64, idx int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(idx+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Jobs expands the grid into a job set, validating scheme and mix names.
func (g Grid) Jobs() ([]Job, error) {
	schemes := g.Schemes
	if len(schemes) == 0 {
		schemes = DefaultSchemes()
	}
	for _, s := range schemes {
		if _, err := merge.Resolve(s); err != nil {
			return nil, fmt.Errorf("sweep: grid: scheme %s: %w", s, err)
		}
	}
	mixNames := g.Mixes
	if len(mixNames) == 0 {
		for _, m := range workload.Mixes() {
			mixNames = append(mixNames, m.Name)
		}
	}
	machine := g.Machine
	if machine.Clusters == 0 {
		machine = isa.Default()
	}
	icache, dcache := g.ICache, g.DCache
	if icache == (cache.Config{}) {
		icache = cache.DefaultConfig()
	}
	if dcache == (cache.Config{}) {
		dcache = cache.DefaultConfig()
	}
	instr := g.InstrLimit
	if instr <= 0 {
		instr = 300_000
	}
	slice := g.TimesliceCycles
	if slice <= 0 {
		slice = instr / 100
		if slice < 1000 {
			slice = 1000
		}
	}
	base := g.Seed
	if base == 0 {
		base = 1
	}

	var jobs []Job
	for _, mixName := range mixNames {
		mix, err := workload.MixByName(mixName)
		if err != nil {
			return nil, fmt.Errorf("sweep: grid: %w", err)
		}
		for _, scheme := range schemes {
			seed := base
			if !g.SharedSeed {
				seed = deriveSeed(base, len(jobs))
			}
			jobs = append(jobs, Job{
				Label:           mix.Name + "/" + scheme,
				Scheme:          scheme,
				Benchmarks:      append([]string(nil), mix.Members[:]...),
				Machine:         machine,
				ICache:          icache,
				DCache:          dcache,
				InstrLimit:      instr,
				TimesliceCycles: slice,
				Seed:            seed,
			})
		}
	}
	return jobs, nil
}
