package sweep

import "vliwmt/internal/telemetry"

// The engine's process-wide instruments. Counters are lifetime values
// shared by every Engine (and therefore every Runner and the server);
// per-sweep numbers come from Summarize and the server's status
// documents, not from here.
var (
	metSweepsStarted = telemetry.NewCounter("sweep_runs_total",
		"Sweeps started (Engine.Run calls).")
	metJobsStarted = telemetry.NewCounter("sweep_jobs_started_total",
		"Jobs handed to a worker.")
	metJobsCompleted = telemetry.NewCounter("sweep_jobs_completed_total",
		"Jobs finished without error (simulated or served from the store).")
	metJobsErrored = telemetry.NewCounter("sweep_jobs_errored_total",
		"Jobs finished with an error (including jobs skipped by cancellation).")
	metQueueDepth = telemetry.NewGauge("sweep_queue_depth",
		"Jobs submitted to running sweeps and not yet finished.")
	metJobDuration = telemetry.NewHistogram("sweep_job_duration_seconds",
		"Wall-clock job processing time (store probe + compile + simulate; a store hit observes the probe time, not the replayed original).",
		telemetry.DurationBuckets)
	metCompileHits = telemetry.NewCounter("sweep_compile_cache_hits_total",
		"Compile-cache lookups served from memory.")
	metCompileMisses = telemetry.NewCounter("sweep_compile_cache_misses_total",
		"Compile-cache lookups that compiled the kernel.")
)
