package sweep

import (
	"sync"
	"sync/atomic"

	"vliwmt/internal/isa"
	"vliwmt/internal/program"
	"vliwmt/internal/workload"
)

// compileKey identifies one compiled program: both Benchmark names and
// isa.Machine are flat comparable values, so the pair keys a map directly.
type compileKey struct {
	bench   string
	machine isa.Machine
}

// compileEntry memoizes one compilation. The sync.Once serialises the
// compile itself while letting unrelated keys compile concurrently.
type compileEntry struct {
	once sync.Once
	prog *program.Program
	err  error
}

// CompileCache memoizes kernel compilation per (benchmark, machine), so a
// sweep compiles each kernel once no matter how many jobs reference it.
// Compiled programs are read-only to the simulator and safe to share
// between concurrent jobs. The zero value is not usable; call NewCompileCache.
type CompileCache struct {
	mu      sync.Mutex
	entries map[compileKey]*compileEntry

	compiles atomic.Int64
	hits     atomic.Int64
}

// NewCompileCache returns an empty cache.
func NewCompileCache() *CompileCache {
	return &CompileCache{entries: map[compileKey]*compileEntry{}}
}

// shared is the process-wide cache behind SharedCache.
var shared = NewCompileCache()

// SharedCache returns a process-wide compile cache. Sharing is
// semantically transparent — entries are keyed by (benchmark, machine)
// and compiled programs are immutable — so callers running many sweeps
// (the experiments drivers, the public Sweep API) attach it to avoid
// recompiling kernels on every sweep.
func SharedCache() *CompileCache { return shared }

// Get returns the compiled program for the named benchmark on machine m,
// compiling it on first use. Concurrent callers of the same key block on
// one compilation; callers of different keys proceed in parallel.
func (c *CompileCache) Get(bench string, m isa.Machine) (*program.Program, error) {
	key := compileKey{bench: bench, machine: m}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &compileEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		metCompileHits.Inc()
	} else {
		metCompileMisses.Inc()
	}
	e.once.Do(func() {
		c.compiles.Add(1)
		b, err := workload.ByName(bench)
		if err != nil {
			e.err = err
			return
		}
		e.prog, e.err = b.Compile(m)
	})
	return e.prog, e.err
}

// Stats reports how many compilations the cache performed and how many
// lookups it served from memory.
func (c *CompileCache) Stats() (compiles, hits int64) {
	return c.compiles.Load(), c.hits.Load()
}
