package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"vliwmt/internal/isa"
)

// testGrid is a small but non-trivial sweep: 4 schemes x 3 mixes with a
// budget large enough to exercise the OS scheduler and caches.
func testGrid() Grid {
	return Grid{
		Schemes:    []string{"1S", "3CCC", "2SC3", "3SSS"},
		Mixes:      []string{"LLLL", "LLHH", "HHHH"},
		InstrLimit: 10_000,
		Seed:       7,
	}
}

// fingerprint renders every deterministic field of a result set; Elapsed
// is deliberately excluded.
func fingerprint(t *testing.T, results []Result) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", r.Index, r.Job.Describe(), r.Err)
		}
		fmt.Fprintf(&b, "%d %s seed=%d cycles=%d instrs=%d ops=%d ipc=%.12f\n",
			r.Index, r.Job.Label, r.Job.Seed, r.Res.Cycles, r.Res.Instrs, r.Res.Ops, r.Res.IPC)
	}
	return b.String()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs, err := testGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 12 {
		t.Fatalf("got %d jobs, want 12", len(jobs))
	}
	var want string
	for _, workers := range []int{1, 4, 16} {
		results, err := New(workers).Run(context.Background(), jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := fingerprint(t, results)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d produced different results:\n%s\nvs workers=1:\n%s", workers, got, want)
		}
	}
}

func TestGridSeedModes(t *testing.T) {
	g := testGrid()
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[uint64]bool{}
	for _, j := range jobs {
		seeds[j.Seed] = true
	}
	if len(seeds) != len(jobs) {
		t.Errorf("derived seeds collide: %d distinct over %d jobs", len(seeds), len(jobs))
	}
	g.SharedSeed = true
	shared, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range shared {
		if j.Seed != 7 {
			t.Errorf("shared-seed job %s got seed %d, want 7", j.Label, j.Seed)
		}
	}
}

// TestSchemeIdentitiesUnderSharedSeed checks that the engine preserves
// the paper's functional identities (C4 == 3CCC) when jobs share a seed.
func TestSchemeIdentitiesUnderSharedSeed(t *testing.T) {
	g := Grid{
		Schemes:    []string{"C4", "3CCC"},
		Mixes:      []string{"LLHH"},
		InstrLimit: 10_000,
		Seed:       3,
		SharedSeed: true,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := New(4).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	a, errA := results[0].IPC()
	b, errB := results[1].IPC()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if a != b {
		t.Errorf("C4 (%.9f) and 3CCC (%.9f) differ under a shared seed", a, b)
	}
}

func TestCompileCacheMemoizes(t *testing.T) {
	jobs, err := testGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	e := New(8)
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	compiles, hits := e.Cache().Stats()
	// 3 mixes reference at most 12 distinct benchmarks; 12 jobs x 4
	// threads = 48 lookups in total.
	if compiles > 12 {
		t.Errorf("%d compilations, want at most one per distinct benchmark (12)", compiles)
	}
	if compiles+hits != 48 {
		t.Errorf("compiles+hits = %d, want 48 lookups", compiles+hits)
	}
	// A second sweep on the same engine is fully served from cache.
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	again, _ := e.Cache().Stats()
	if again != compiles {
		t.Errorf("second sweep recompiled: %d -> %d", compiles, again)
	}
}

func TestSetCacheSharesAcrossEngines(t *testing.T) {
	g := Grid{Schemes: []string{"3SSS"}, Mixes: []string{"LLLL"}, InstrLimit: 2_000}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompileCache()
	for _, workers := range []int{1, 2} {
		e := New(workers)
		e.SetCache(c)
		if _, err := e.Run(context.Background(), jobs); err != nil {
			t.Fatal(err)
		}
	}
	compiles, _ := c.Stats()
	if compiles > 4 {
		t.Errorf("%d compilations across two engines, want at most the mix's 4 benchmarks", compiles)
	}
	if PoolSize(0) < 1 || PoolSize(3) != 3 {
		t.Errorf("PoolSize policy broken: %d, %d", PoolSize(0), PoolSize(3))
	}
}

func TestCancellationReturnsPartialResults(t *testing.T) {
	g := testGrid()
	g.InstrLimit = 2_000
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := New(2)
	e.SetProgress(func(done, total int, r Result) {
		if done == 2 {
			cancel()
		}
	})
	results, err := e.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	completed, skipped := 0, 0
	for _, r := range results {
		switch {
		case r.Err == nil && r.Res != nil:
			completed++
		case errors.Is(r.Err, context.Canceled):
			skipped++
		default:
			t.Errorf("job %d: unexpected state res=%v err=%v", r.Index, r.Res, r.Err)
		}
	}
	if completed < 2 {
		t.Errorf("%d completed jobs, want at least the 2 that triggered cancel", completed)
	}
	if skipped == 0 {
		t.Error("no job was skipped by cancellation")
	}
}

func TestProgressSerialised(t *testing.T) {
	jobs, err := testGrid().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	e := New(8)
	var seen []int
	e.SetProgress(func(done, total int, r Result) {
		if total != len(jobs) {
			t.Errorf("total = %d, want %d", total, len(jobs))
		}
		seen = append(seen, done)
	})
	if _, err := e.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("%d progress calls, want %d", len(seen), len(jobs))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not monotonic", seen)
		}
	}
}

func TestJobErrorsCollected(t *testing.T) {
	jobs := []Job{
		{Label: "bad", Scheme: "3SSS", Benchmarks: []string{"no-such-bench"},
			Machine: isa.Default(), PerfectMemory: true, InstrLimit: 1000},
		{Label: "good", Scheme: "", Benchmarks: []string{"mcf"},
			Machine: isa.Default(), PerfectMemory: true, InstrLimit: 1000},
	}
	results, err := New(2).Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("want joined error for the failing job")
	}
	if results[0].Err == nil {
		t.Error("failing job has no error")
	}
	if results[1].Err != nil || results[1].Res == nil {
		t.Errorf("good job failed: %v", results[1].Err)
	}
}

// TestJobValidateScheme checks scheme names are validated up front
// with a descriptive error instead of failing deep in the simulator.
func TestJobValidateScheme(t *testing.T) {
	base := Job{Benchmarks: []string{"mcf"}, Machine: isa.Default(), PerfectMemory: true, InstrLimit: 1000}

	bad := base
	bad.Scheme = "bogus!"
	err := bad.Validate()
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if !strings.Contains(err.Error(), "bogus!") {
		t.Errorf("error does not name the scheme: %v", err)
	}

	mismatch := base
	mismatch.Scheme = "2SC3" // merges 4 threads
	mismatch.Contexts = 3
	if err := mismatch.Validate(); err == nil {
		t.Error("scheme/context mismatch accepted")
	}

	for _, scheme := range []string{"", "1S", "2SC3", "C4", "IMT", "BMT"} {
		ok := base
		ok.Scheme = scheme
		if err := ok.Validate(); err != nil {
			t.Errorf("valid scheme %q rejected: %v", scheme, err)
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := (Grid{Mixes: []string{"no-such-mix"}}).Jobs(); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := (Grid{Schemes: []string{"bogus!"}}).Jobs(); err == nil {
		t.Error("unknown scheme accepted")
	}
	jobs, err := Grid{}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 16*9 {
		t.Errorf("default grid has %d jobs, want 144", len(jobs))
	}
	for _, j := range jobs[:3] {
		if j.Machine.Clusters == 0 || j.ICache.Size == 0 || j.InstrLimit == 0 || j.TimesliceCycles == 0 {
			t.Errorf("defaults not applied: %+v", j)
		}
	}
}
