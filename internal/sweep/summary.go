package sweep

import (
	"fmt"
	"sort"
	"time"
)

// Summary is the lifecycle roll-up of one finished sweep: job and
// error counts, store cache traffic, the per-job latency distribution
// and aggregate throughput. It is computed from the result slice after
// the fact (Summarize), so it works identically for in-process sweeps,
// the server's status documents and results fetched over the wire.
type Summary struct {
	// Jobs is the number of submitted jobs; Errors of them failed (or
	// were skipped by cancellation) and CacheHits were served from the
	// persistent result store.
	Jobs, Errors, CacheHits int
	// Wall is the sweep's end-to-end wall-clock time.
	Wall time.Duration
	// P50 and P99 are percentiles of the per-job elapsed times (for
	// cached jobs that is the replayed original simulation time).
	P50, P99 time.Duration
	// JobsPerSec is Jobs divided by Wall — the "sims/s" throughput
	// headline (cache hits count: a served job is a completed job).
	JobsPerSec float64
}

// CacheHitRatio returns CacheHits / Jobs, or 0 for an empty sweep.
func (s Summary) CacheHitRatio() float64 {
	if s.Jobs == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Jobs)
}

// String renders the one-line lifecycle summary vliwsweep -stats
// prints, e.g.
//
//	sweep: 144 jobs in 1.52s (94.7 jobs/s), 72 store hits (50.0%), 0 errors, job p50=9.8ms p99=31.2ms
func (s Summary) String() string {
	return fmt.Sprintf("sweep: %d jobs in %.2fs (%.1f jobs/s), %d store hits (%.1f%%), %d errors, job p50=%s p99=%s",
		s.Jobs, s.Wall.Seconds(), s.JobsPerSec, s.CacheHits, 100*s.CacheHitRatio(),
		s.Errors, s.P50.Round(100*time.Microsecond), s.P99.Round(100*time.Microsecond))
}

// percentile returns the p-th percentile (0..1) of sorted durations
// using nearest-rank; empty input yields 0.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// Summarize rolls a finished sweep's results up into a Summary. wall
// is the sweep's end-to-end wall-clock time (pass 0 when unknown; the
// throughput field is then left 0 too).
func Summarize(results []Result, wall time.Duration) Summary {
	s := Summary{Jobs: len(results), Wall: wall}
	elapsed := make([]time.Duration, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			s.Errors++
			continue
		}
		if r.Cached {
			s.CacheHits++
		}
		elapsed = append(elapsed, r.Elapsed)
	}
	sort.Slice(elapsed, func(i, j int) bool { return elapsed[i] < elapsed[j] })
	s.P50 = percentile(elapsed, 0.50)
	s.P99 = percentile(elapsed, 0.99)
	if wall > 0 {
		s.JobsPerSec = float64(s.Jobs) / wall.Seconds()
	}
	return s
}
