// Package sweep is the experiment-orchestration engine: it expresses a
// simulation run as a declarative Job, expands factor grids (scheme x
// workload mix) into job sets, and executes them on a bounded worker
// pool with a shared memoizing compile cache, so a 16-scheme x 9-mix
// sweep saturates every core instead of one.
//
// Results are aggregated deterministically: the returned slice is
// ordered by job index regardless of completion order, and each job
// carries its own seed, so the aggregate is bit-identical at any worker
// count. The engine supports context cancellation (partial results are
// returned), per-job error collection and progress callbacks.
package sweep

import (
	"fmt"
	"time"

	"vliwmt/internal/cache"
	"vliwmt/internal/isa"
	"vliwmt/internal/merge"
	"vliwmt/internal/sim"
	"vliwmt/internal/workload"
)

// Job is one independent simulation: a workload (a list of Table 1
// benchmark names) run under one merge scheme on one machine/cache
// configuration. Jobs are plain values; the engine never mutates them.
type Job struct {
	// Label identifies the job in progress reports and results,
	// e.g. "LLHH/2SC3". Optional; Describe derives one when empty.
	Label string
	// Scheme names the merge control: a paper name ("3SSS", "2SC3",
	// "C4", ...), a baseline ("IMT", "BMT"), a name registered via
	// merge.Register, or a canonical tree expression such as
	// "C(S(T0,T1),T2,T3)". Empty means no merging (single-context
	// multitasking) unless Merge is set.
	Scheme string
	// Merge, when set, is the merge control as a first-class scheme
	// and takes precedence over Scheme. It lets jobs carry custom
	// trees that have no resolvable name (e.g. across the wire).
	Merge merge.Scheme
	// Benchmarks are the software threads, by Table 1 benchmark name.
	Benchmarks []string
	// Contexts is the hardware context count; 0 derives it from the
	// resolved merge scheme, or 1 when no scheme is set.
	Contexts int
	// Machine, ICache and DCache describe the simulated processor.
	Machine isa.Machine
	ICache  cache.Config
	DCache  cache.Config
	// PerfectMemory disables the caches (the paper's IPCp runs).
	PerfectMemory bool
	// InstrLimit is the per-thread instruction budget.
	InstrLimit int64
	// TimesliceCycles is the OS scheduling quantum.
	TimesliceCycles int64
	// Seed drives OS scheduling and per-thread behaviours. The engine
	// uses it verbatim; Grid derives per-job seeds from the sweep seed.
	Seed uint64
}

// scheme resolves the job's merge control: the typed Merge field when
// set, else the Scheme name through merge.Resolve. A zero Scheme with
// no error means single-context multitasking.
func (j Job) scheme() (merge.Scheme, error) {
	if !j.Merge.IsZero() {
		return j.Merge, nil
	}
	if j.Scheme == "" {
		return merge.Scheme{}, nil
	}
	return merge.Resolve(j.Scheme)
}

// EffectiveContexts returns the hardware context count the job runs
// with: Contexts when set, else derived from the merge scheme. An
// unresolvable scheme yields 0; Validate reports the actual error.
func (j Job) EffectiveContexts() int {
	if j.Contexts > 0 {
		return j.Contexts
	}
	s, err := j.scheme()
	if err != nil {
		return 0
	}
	if s.IsZero() {
		return 1
	}
	return s.Ports()
}

// Describe returns the job's label, deriving "bench+.../scheme" when no
// explicit label was set.
func (j Job) Describe() string {
	if j.Label != "" {
		return j.Label
	}
	w := "?"
	if len(j.Benchmarks) > 0 {
		w = j.Benchmarks[0]
		if len(j.Benchmarks) > 1 {
			w += fmt.Sprintf("+%d", len(j.Benchmarks)-1)
		}
	}
	s := j.Scheme
	if s == "" && !j.Merge.IsZero() {
		s = j.Merge.Name()
	}
	if s == "" {
		s = "ST"
	}
	return w + "/" + s
}

// config lowers the job to a simulator configuration.
func (j Job) config() sim.Config {
	return sim.Config{
		Machine:         j.Machine,
		ICache:          j.ICache,
		DCache:          j.DCache,
		PerfectMemory:   j.PerfectMemory,
		Contexts:        j.EffectiveContexts(),
		Scheme:          j.Scheme,
		Merge:           j.Merge,
		TimesliceCycles: j.TimesliceCycles,
		InstrLimit:      j.InstrLimit,
		Seed:            j.Seed,
	}
}

// Validate rejects jobs the engine cannot run: unknown benchmarks,
// unparseable merge scheme names, and scheme/context mismatches are all
// reported up front with a descriptive error instead of surfacing deep
// inside the simulator.
func (j Job) Validate() error {
	if len(j.Benchmarks) == 0 {
		return fmt.Errorf("sweep: job %s has no benchmarks", j.Describe())
	}
	for _, name := range j.Benchmarks {
		if _, err := workload.ByName(name); err != nil {
			return fmt.Errorf("sweep: job %s: %w", j.Describe(), err)
		}
	}
	s, err := j.scheme()
	if err != nil {
		return fmt.Errorf("sweep: job %s: scheme %q: %w", j.Describe(), j.Scheme, err)
	}
	if !s.IsZero() {
		// Selector also rejects scheme/port mismatches, so an explicit
		// Contexts that disagrees with the scheme fails here too.
		if _, err := s.Selector(j.EffectiveContexts()); err != nil {
			return fmt.Errorf("sweep: job %s: %w", j.Describe(), err)
		}
	}
	return nil
}

// Result is one job's outcome, delivered at the job's submission index.
type Result struct {
	// Index is the job's position in the submitted slice; the engine
	// returns results ordered by it, independent of completion order.
	Index int
	Job   Job
	// Res is the simulation outcome; nil when Err is set.
	Res *sim.Result
	// Err carries the job's failure, or the sweep context's error for
	// jobs skipped after cancellation.
	Err error
	// Elapsed is the job's wall-clock simulation time. It is the only
	// non-deterministic field of a Result; for a Cached result it is
	// the original simulation's time, replayed from the store so warm
	// and cold sweeps report identical rows.
	Elapsed time.Duration
	// Cached reports that Res was served from a result store instead of
	// being simulated. It is informational: a cached result is
	// bit-identical to a fresh one under the determinism contract.
	Cached bool
	// Worker and Shard attribute a result computed by the distributed
	// sweep fabric: the worker address that simulated it and the
	// 1-based shard it travelled in (zero values mean the job ran
	// locally / unsharded). Like Elapsed and Cached they are
	// informational — which box computed a result can never change it.
	Worker string
	Shard  int
}

// IPC returns the achieved IPC, or an error if the job failed or the
// simulation hit its cycle bound before retiring the budget.
func (r Result) IPC() (float64, error) {
	if r.Err != nil {
		return 0, r.Err
	}
	if r.Res == nil {
		return 0, fmt.Errorf("sweep: job %s has no result", r.Job.Describe())
	}
	if r.Res.TimedOut {
		return 0, fmt.Errorf("sweep: job %s timed out after %d cycles", r.Job.Describe(), r.Res.Cycles)
	}
	return r.Res.IPC, nil
}
