package vliwmt_test

import (
	"fmt"

	"vliwmt"
)

// ExampleDescribeScheme shows how scheme names map to merge trees.
func ExampleDescribeScheme() {
	for _, s := range []string{"1S", "3CCC", "2SC3", "2CC"} {
		desc, _ := vliwmt.DescribeScheme(s)
		fmt.Printf("%s = %s\n", s, desc)
	}
	// Output:
	// 1S = S(T0,T1)
	// 3CCC = C(C(C(T0,T1),T2),T3)
	// 2SC3 = C3(S(T0,T1),T2,T3)
	// 2CC = C(C(T0,T1),C(T2,T3))
}

// ExampleCost compares merge-control hardware costs.
func ExampleCost() {
	m := vliwmt.DefaultMachine()
	a, _ := vliwmt.Cost(m, "3SSS")
	b, _ := vliwmt.Cost(m, "2SC3")
	fmt.Printf("2SC3 costs %.0f%% of 3SSS's transistors\n",
		100*float64(b.Transistors)/float64(a.Transistors))
	// Output:
	// 2SC3 costs 33% of 3SSS's transistors
}

// ExampleRunMix simulates a Table 2 workload under a merging scheme.
func ExampleRunMix() {
	cfg := vliwmt.DefaultConfig()
	cfg.Scheme = "2SC3"
	cfg.InstrLimit = 50_000
	cfg.TimesliceCycles = 5_000
	res, err := vliwmt.RunMix(cfg, "HHHH")
	if err != nil {
		panic(err)
	}
	fmt.Printf("four high-ILP threads sustain IPC above 6: %v\n", res.IPC > 6)
	// Output:
	// four high-ILP threads sustain IPC above 6: true
}

// ExampleNewKernel builds, compiles and measures a custom kernel.
func ExampleNewKernel() {
	k := vliwmt.NewKernel("saxpy")
	x := k.Stream(vliwmt.MemStream{Kind: vliwmt.StreamStride, Stride: 4, Footprint: 1 << 16})
	k.Block("body")
	v := k.Load(x)
	k.Store(x, k.ALU(k.Mul(v)))
	k.Branch("body", vliwmt.Loop(64))
	kern, err := k.Finish()
	if err != nil {
		panic(err)
	}
	m := vliwmt.DefaultMachine()
	prog, err := vliwmt.CompileKernel(kern, m, 8)
	if err != nil {
		panic(err)
	}
	ipc, err := vliwmt.SingleThreadIPC(m, prog, 50_000, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("unrolled saxpy reaches IPC above 2: %v\n", ipc > 2)
	// Output:
	// unrolled saxpy reaches IPC above 2: true
}
