package vliwmt

import (
	"context"

	"vliwmt/internal/resultstore"
	"vliwmt/internal/sim"
	"vliwmt/internal/sweep"
	"vliwmt/internal/workload"
)

// ResultStore is a disk-backed, content-addressed cache of completed
// sweep jobs: every successfully simulated job is persisted under a
// canonical hash of its full configuration (scheme tree, machine,
// caches, memory model, budget, seed, result-schema version), and any
// later sweep — in this process or another — that contains an
// identical job is served from disk instead of re-simulating it.
// Served results are marked SweepResult.Cached and replay the original
// run's elapsed time, so warm output is byte-identical to cold output.
//
// A ResultStore is safe for concurrent use and for sharing between
// Runners (the server shares one across every sweep it executes).
// Corrupt, truncated or schema-mismatched entries are treated as cache
// misses, never served.
type ResultStore = resultstore.Store

// StoreStats is a snapshot of a ResultStore handle's traffic counters
// (hits, misses, puts).
type StoreStats = resultstore.Stats

// OpenResultStore returns a result store rooted at dir. The directory
// is created on first write; opening a nonexistent or empty directory
// is valid (everything misses until the first sweep completes).
func OpenResultStore(dir string) *ResultStore { return resultstore.Open(dir) }

// CompileCache memoizes kernel compilation per (benchmark, machine).
// Compiled programs are immutable, so a cache is safe to share between
// Runners and across concurrent sweeps.
type CompileCache = sweep.CompileCache

// NewCompileCache returns an empty compile cache.
func NewCompileCache() *CompileCache { return sweep.NewCompileCache() }

// SharedCompileCache returns the process-wide compile cache used by the
// package-level Run/RunMix/Sweep functions.
func SharedCompileCache() *CompileCache { return sweep.SharedCache() }

// Runner is a long-lived experiment session. All of its methods — Run,
// RunMix, Sweep, SweepJobs — share one compile cache, so a Runner that
// serves many calls (a REPL, a service handler, a benchmark harness)
// compiles each (benchmark, machine) kernel exactly once. A Runner is
// safe for concurrent use; results obey the same determinism contract
// as the engine (index-ordered, seed-derived, bit-identical at any
// worker count).
//
// The zero configuration — NewRunner() — uses a private compile cache
// and one worker per core. The package-level functions are thin
// wrappers over a default Runner attached to the process-wide cache.
type Runner struct {
	workers  int
	cache    *CompileCache
	progress func(done, total int, r SweepResult)
	seed     uint64
	store    *ResultStore
	batch    int
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithWorkers bounds the sweep worker pool; 0 (the default) selects
// runtime.NumCPU().
func WithWorkers(n int) RunnerOption {
	return func(r *Runner) { r.workers = n }
}

// WithCache attaches an explicit compile cache, typically to share
// compiled kernels between Runners. A nil cache is ignored.
func WithCache(c *CompileCache) RunnerOption {
	return func(r *Runner) {
		if c != nil {
			r.cache = c
		}
	}
}

// WithSharedCache attaches the process-wide compile cache, sharing
// compiled kernels with the package-level functions and every other
// Runner constructed with this option.
func WithSharedCache() RunnerOption {
	return func(r *Runner) { r.cache = sweep.SharedCache() }
}

// WithProgress installs a progress sink called after each sweep job
// completes (done jobs, total jobs, the completed result). Calls are
// serialised by the engine.
func WithProgress(fn func(done, total int, r SweepResult)) RunnerOption {
	return func(r *Runner) { r.progress = fn }
}

// WithSeed sets the Runner's default sweep seed: a Grid submitted with
// Seed zero inherits it before expansion. Explicit Grid or Job seeds
// always win.
func WithSeed(seed uint64) RunnerOption {
	return func(r *Runner) { r.seed = seed }
}

// WithResultStore enables result persistence rooted at dir: every
// successfully simulated job is written to the content-addressed store
// and any job with an identical configuration — in this sweep, a later
// sweep, or a later process — is served from disk instead of
// re-simulating. Lookups are per job, so a sweep that overlaps an
// earlier one only simulates the jobs that actually changed. Store
// write failures are silently ignored (persistence is an optimisation,
// never a correctness dependency); corrupt entries are misses.
func WithResultStore(dir string) RunnerOption {
	return func(r *Runner) {
		if dir != "" {
			r.store = resultstore.Open(dir)
		}
	}
}

// WithStore attaches an existing result store handle, typically to
// share one store (and its hit/miss counters) between Runners, as the
// sweep server does. A nil store is ignored.
func WithStore(s *ResultStore) RunnerOption {
	return func(r *Runner) {
		if s != nil {
			r.store = s
		}
	}
}

// WithBatch sets the sweep batching cap: how many shape-compatible
// jobs (same machine, same benchmark list) the engine may advance
// through one batched cycle loop. 0 (the default) groups automatically
// up to the engine's cap; 1 disables batching and runs every job solo.
// Batching is a throughput lever only — per-job results are
// bit-identical at every setting.
func WithBatch(n int) RunnerOption {
	return func(r *Runner) { r.batch = n }
}

// WithResultDir enables result persistence.
//
// Deprecated: WithResultDir is the original spelling of
// WithResultStore and behaves identically; new code should use
// WithResultStore.
func WithResultDir(dir string) RunnerOption { return WithResultStore(dir) }

// NewRunner returns a session configured by opts.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{cache: sweep.NewCompileCache()}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Cache exposes the Runner's compile cache (for stats and pre-warming).
func (r *Runner) Cache() *CompileCache { return r.cache }

// Store exposes the Runner's result store (nil when persistence is
// disabled), for stats, snapshots and sharing.
func (r *Runner) Store() *ResultStore { return r.store }

// Run simulates the given software threads under cfg.
func (r *Runner) Run(cfg Config, tasks []Task) (*Result, error) {
	return sim.Run(cfg, tasks)
}

// RunMix compiles the named Table 2 mix through the Runner's compile
// cache and simulates it under cfg. Repeated calls on one Runner reuse
// the compiled kernels.
func (r *Runner) RunMix(cfg Config, mixName string) (*Result, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	var tasks []Task
	for _, name := range mix.Members {
		p, err := r.cache.Get(name, cfg.Machine)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, Task{Name: name, Prog: p})
	}
	return sim.Run(cfg, tasks)
}

// Sweep expands the grid (applying the Runner's default seed when the
// grid leaves Seed zero) and executes it; see SweepJobs.
func (r *Runner) Sweep(ctx context.Context, g Grid) ([]SweepResult, error) {
	if g.Seed == 0 && r.seed != 0 {
		g.Seed = r.seed
	}
	jobs, err := g.Jobs()
	if err != nil {
		return nil, err
	}
	return r.SweepJobs(ctx, jobs)
}

// SweepJobs executes an explicit job set on the Runner's worker pool
// with its shared compile cache. Results come back ordered by job
// index, bit-identical at any worker count. When result persistence is
// enabled, each job is looked up in the store before being compiled or
// simulated — previously completed jobs come back marked Cached with
// the original elapsed time — and every fresh simulation is persisted,
// so repeating a sweep against a warm store performs zero simulations.
func (r *Runner) SweepJobs(ctx context.Context, jobs []SweepJob) ([]SweepResult, error) {
	e := sweep.New(r.workers)
	e.SetCache(r.cache)
	if r.progress != nil {
		e.SetProgress(r.progress)
	}
	if r.store != nil {
		e.SetStore(r.store)
	}
	e.SetBatch(r.batch)
	return e.Run(ctx, jobs)
}
