package vliwmt

import (
	"context"

	"vliwmt/internal/api"
	"vliwmt/internal/sim"
	"vliwmt/internal/sweep"
	"vliwmt/internal/workload"
)

// CompileCache memoizes kernel compilation per (benchmark, machine).
// Compiled programs are immutable, so a cache is safe to share between
// Runners and across concurrent sweeps.
type CompileCache = sweep.CompileCache

// NewCompileCache returns an empty compile cache.
func NewCompileCache() *CompileCache { return sweep.NewCompileCache() }

// SharedCompileCache returns the process-wide compile cache used by the
// package-level Run/RunMix/Sweep functions.
func SharedCompileCache() *CompileCache { return sweep.SharedCache() }

// Runner is a long-lived experiment session. All of its methods — Run,
// RunMix, Sweep, SweepJobs — share one compile cache, so a Runner that
// serves many calls (a REPL, a service handler, a benchmark harness)
// compiles each (benchmark, machine) kernel exactly once. A Runner is
// safe for concurrent use; results obey the same determinism contract
// as the engine (index-ordered, seed-derived, bit-identical at any
// worker count).
//
// The zero configuration — NewRunner() — uses a private compile cache
// and one worker per core. The package-level functions are thin
// wrappers over a default Runner attached to the process-wide cache.
type Runner struct {
	workers   int
	cache     *CompileCache
	progress  func(done, total int, r SweepResult)
	seed      uint64
	resultDir string
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithWorkers bounds the sweep worker pool; 0 (the default) selects
// runtime.NumCPU().
func WithWorkers(n int) RunnerOption {
	return func(r *Runner) { r.workers = n }
}

// WithCache attaches an explicit compile cache, typically to share
// compiled kernels between Runners. A nil cache is ignored.
func WithCache(c *CompileCache) RunnerOption {
	return func(r *Runner) {
		if c != nil {
			r.cache = c
		}
	}
}

// WithSharedCache attaches the process-wide compile cache, sharing
// compiled kernels with the package-level functions and every other
// Runner constructed with this option.
func WithSharedCache() RunnerOption {
	return func(r *Runner) { r.cache = sweep.SharedCache() }
}

// WithProgress installs a progress sink called after each sweep job
// completes (done jobs, total jobs, the completed result). Calls are
// serialised by the engine.
func WithProgress(fn func(done, total int, r SweepResult)) RunnerOption {
	return func(r *Runner) { r.progress = fn }
}

// WithSeed sets the Runner's default sweep seed: a Grid submitted with
// Seed zero inherits it before expansion. Explicit Grid or Job seeds
// always win.
func WithSeed(seed uint64) RunnerOption {
	return func(r *Runner) { r.seed = seed }
}

// WithResultDir enables result persistence: completed sweeps are
// spilled to dir as wire-format JSON keyed by a content hash of the
// job set (jobs embed seed and machine), and a repeated identical
// sweep is served from disk instead of re-simulating. Only fully
// successful sweeps are stored; spill failures are silently ignored
// (persistence is an optimisation, never a correctness dependency).
func WithResultDir(dir string) RunnerOption {
	return func(r *Runner) { r.resultDir = dir }
}

// NewRunner returns a session configured by opts.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{cache: sweep.NewCompileCache()}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Cache exposes the Runner's compile cache (for stats and pre-warming).
func (r *Runner) Cache() *CompileCache { return r.cache }

// Run simulates the given software threads under cfg.
func (r *Runner) Run(cfg Config, tasks []Task) (*Result, error) {
	return sim.Run(cfg, tasks)
}

// RunMix compiles the named Table 2 mix through the Runner's compile
// cache and simulates it under cfg. Repeated calls on one Runner reuse
// the compiled kernels.
func (r *Runner) RunMix(cfg Config, mixName string) (*Result, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	var tasks []Task
	for _, name := range mix.Members {
		p, err := r.cache.Get(name, cfg.Machine)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, Task{Name: name, Prog: p})
	}
	return sim.Run(cfg, tasks)
}

// Sweep expands the grid (applying the Runner's default seed when the
// grid leaves Seed zero) and executes it; see SweepJobs.
func (r *Runner) Sweep(ctx context.Context, g Grid) ([]SweepResult, error) {
	if g.Seed == 0 && r.seed != 0 {
		g.Seed = r.seed
	}
	jobs, err := g.Jobs()
	if err != nil {
		return nil, err
	}
	return r.SweepJobs(ctx, jobs)
}

// SweepJobs executes an explicit job set on the Runner's worker pool
// with its shared compile cache. Results come back ordered by job
// index, bit-identical at any worker count. When result persistence is
// enabled and an identical job set has completed before, the stored
// results are returned (replaying progress callbacks) without
// simulating.
func (r *Runner) SweepJobs(ctx context.Context, jobs []SweepJob) ([]SweepResult, error) {
	store := api.Store{Dir: r.resultDir}
	if results, ok := store.Load(jobs); ok {
		if r.progress != nil {
			for i, res := range results {
				r.progress(i+1, len(results), res)
			}
		}
		return results, nil
	}
	e := sweep.New(r.workers)
	e.SetCache(r.cache)
	if r.progress != nil {
		e.SetProgress(r.progress)
	}
	results, err := e.Run(ctx, jobs)
	if err == nil {
		// Best-effort spill; Save itself skips partially failed sweeps.
		_ = store.Save(jobs, results)
	}
	return results, err
}
